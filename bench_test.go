package cloudviews

// One benchmark per table and figure of the paper's evaluation, plus one
// per ablation called out in DESIGN.md. Each benchmark executes the full
// experiment and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every number the paper reports (EXPERIMENTS.md records the
// paper-vs-measured comparison).

import (
	"testing"

	"cloudviews/internal/bench"
)

// BenchmarkFigure1ClusterOverlap regenerates Figure 1: the percentage of
// overlapping jobs, users with overlap, and overlapping subgraphs across
// five clusters.
func BenchmarkFigure1ClusterOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var jobs, users, subs float64
			for _, r := range rows {
				jobs += r.Stats.PctJobsOverlapping
				users += r.Stats.PctUsersOverlapping
				subs += r.Stats.PctSubgraphsOverlapping
			}
			n := float64(len(rows))
			b.ReportMetric(jobs/n, "%jobs-overlap")
			b.ReportMetric(users/n, "%users-overlap")
			b.ReportMetric(subs/n, "%subgraphs-overlap")
		}
	}
}

// BenchmarkFigure2VCOverlap regenerates Figure 2: per-VC job overlap and
// average overlap frequency in the largest cluster.
func BenchmarkFigure2VCOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			over50 := 0
			for _, p := range r.PctJobsOverlapping {
				if p > 50 {
					over50++
				}
			}
			b.ReportMetric(float64(len(r.PctJobsOverlapping)), "VCs")
			b.ReportMetric(float64(over50)/float64(len(r.PctJobsOverlapping))*100, "%VCs>50%overlap")
		}
	}
}

// BenchmarkFigure3BusinessUnitCDFs regenerates Figure 3: per-job,
// per-input, per-user, and per-VC overlap distributions in the largest
// business unit.
func BenchmarkFigure3BusinessUnitCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(r.Stats.OverlapsPerJob)), "jobs")
			b.ReportMetric(float64(len(r.Stats.OverlapsPerInput)), "inputs")
			b.ReportMetric(float64(len(r.Stats.OverlapsPerUser)), "users")
		}
	}
}

// BenchmarkFigure4OperatorOverlap regenerates Figure 4: operator breakdown
// of overlapping subgraph roots and per-operator frequency distributions.
func BenchmarkFigure4OperatorOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(r.Breakdown) > 0 {
			b.ReportMetric(r.Breakdown[0].Pct, "%top-operator")
			b.ReportMetric(float64(len(r.Breakdown)), "operators")
		}
	}
}

// BenchmarkFigure5ImpactCDFs regenerates Figure 5: distributions of view
// frequency, runtime, size, and view-to-query cost ratio.
func BenchmarkFigure5ImpactCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Stats.AvgFrequency, "avg-frequency")
			b.ReportMetric(float64(len(r.Stats.Frequencies)), "overlapping-views")
		}
	}
}

// BenchmarkFigure11ProductionLatency regenerates Figure 11: end-to-end
// latency of the production-style 32-job workload, baseline vs CloudViews
// (paper: average 43%, overall 60% improvement).
func BenchmarkFigure11ProductionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunProduction(bench.DefaultProdConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AvgLatencyImprovementPct, "%avg-latency-improvement")
			b.ReportMetric(r.TotalLatencyImprovementPct, "%total-latency-improvement")
			b.ReportMetric(float64(len(r.Jobs)), "jobs")
		}
	}
}

// BenchmarkFigure12ProductionCPUHours regenerates Figure 12: resource
// consumption of the same workload (paper: average 36%, overall 54% drop).
func BenchmarkFigure12ProductionCPUHours(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunProduction(bench.DefaultProdConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AvgCPUImprovementPct, "%avg-cpu-improvement")
			b.ReportMetric(r.TotalCPUImprovementPct, "%total-cpu-improvement")
		}
	}
}

// BenchmarkFigure13TPCDS regenerates Figure 13: per-query runtime
// improvement across all 99 TPC-DS queries with the top-10 views (paper:
// 79/99 improved, average 12.5%, total 17%).
func BenchmarkFigure13TPCDS(b *testing.B) {
	if testing.Short() {
		b.Skip("full 99-query TPC-DS run; skipped in -short smoke mode")
	}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTPCDS(bench.DefaultTPCDSConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Improved), "queries-improved")
			b.ReportMetric(r.AvgImprovementPct, "%avg-improvement")
			b.ReportMetric(r.TotalImprovementPct, "%total-improvement")
		}
	}
}

// BenchmarkConcurrentSubmit measures the concurrent submission pipeline:
// the same pure-reuse workload run serially and through SubmitBatch on
// identically warmed services, reporting batched throughput and the
// wall-clock speedup. The speedup is bounded by GOMAXPROCS — expect ≥2x
// on a 4-core machine, and ~1x on a single-core one — while outputs and
// view-reuse decisions must be identical regardless (the benchmark fails
// otherwise).
func BenchmarkConcurrentSubmit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunConcurrentSubmit(0)
		if err != nil {
			b.Fatal(err)
		}
		if r.OutputMismatches != 0 || r.DecisionMismatches != 0 {
			b.Fatalf("concurrency changed results: %d output, %d decision mismatches",
				r.OutputMismatches, r.DecisionMismatches)
		}
		if i == b.N-1 {
			b.ReportMetric(r.JobsPerSec, "jobs/s")
			b.ReportMetric(r.Speedup, "x-speedup")
			b.ReportMetric(float64(r.Jobs), "jobs")
		}
	}
}

// BenchmarkOverheadAnalyzer regenerates the §7.3 analyzer-cost
// measurement: wall time to analyze a cluster's history.
func BenchmarkOverheadAnalyzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunOverheads(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.AnalyzerJobs)/r.AnalyzerWall.Seconds(), "jobs/s")
			b.ReportMetric(float64(r.AnalyzerSubgraphs), "subgraphs")
		}
	}
}

// BenchmarkOverheadMetadataLookup regenerates the §7.3 metadata lookup
// measurement (paper: 19 ms at 1 thread, 14.3 ms at 5 threads; ours run
// in-process so the absolute scale is microseconds).
func BenchmarkOverheadMetadataLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunOverheads(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.LookupAvg1Thread.Microseconds()), "us/lookup-1thread")
			b.ReportMetric(float64(r.LookupAvg5Threads.Microseconds()), "us/lookup-5threads")
		}
	}
}

// BenchmarkOverheadOptimizer regenerates the §7.3 optimizer-time
// measurement (paper: +28% when creating a view, −17% when using one).
func BenchmarkOverheadOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunOverheads(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric((float64(r.OptimizeCreate)/float64(r.OptimizePlain)-1)*100, "%create-overhead")
			b.ReportMetric((float64(r.OptimizeUse)/float64(r.OptimizePlain)-1)*100, "%use-overhead")
		}
	}
}

// BenchmarkAblationFeedbackVsEstimates compares view selection by measured
// runtime statistics against naive compile-time estimates (§5.1).
func BenchmarkAblationFeedbackVsEstimates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFeedbackAblation(2024)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.MeasuredStatsPct, "%improvement-feedback")
			b.ReportMetric(r.EstimatesPct, "%improvement-estimates")
		}
	}
}

// BenchmarkAblationPhysicalDesign compares consumer latency against views
// with the elected physical design vs a naive single-partition layout
// (§5.3).
func BenchmarkAblationPhysicalDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunPhysicalDesignAblation(2024)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.ElectedLatency, "latency-elected")
			b.ReportMetric(r.NaiveLatency, "latency-naive")
		}
	}
}

// BenchmarkAblationJobCoordination compares coordinated submission order
// (builders first, §6.5) against uncoordinated concurrent arrival.
func BenchmarkAblationJobCoordination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunCoordinationAblation(2024)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.CoordinatedPct, "%improvement-coordinated")
			b.ReportMetric(r.UncoordinatedPct, "%improvement-uncoordinated")
		}
	}
}

// BenchmarkAblationEarlyMaterialization compares crash-recovery cost with
// early view publication on vs off (§6.4).
func BenchmarkAblationEarlyMaterialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunEarlyMatAblation(2024)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.EarlyCPU, "recovery-cpu-early")
			b.ReportMetric(r.LateCPU, "recovery-cpu-late")
		}
	}
}

// BenchmarkAblationViewLimit compares per-job materialization limits
// (§6.2).
func BenchmarkAblationViewLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunViewLimitAblation(2024)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.ImprovementPct[1], "%improvement-limit1")
			b.ReportMetric(r.ImprovementPct[4], "%improvement-limit4")
		}
	}
}
