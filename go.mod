module cloudviews

go 1.24
