// Command metadataservice runs the CloudViews metadata service as a
// standalone HTTP server — the deployment shape of paper §6.1, where the
// service fronts a consistent store and every SCOPE compiler, optimizer,
// and job manager in the cluster talks to it.
//
// Clients use metadata.NewClient (or any JSON/HTTP caller) against the
// endpoints documented in internal/metadata/http.go. Analyzer output is
// pushed with POST /load.
//
//	metadataservice -addr :8439
//	metadataservice -addr :8439 -offline-vc batch_vc,etl_vc
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"cloudviews/internal/metadata"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("metadataservice: ")
	addr := flag.String("addr", ":8439", "listen address")
	offlineVCs := flag.String("offline-vc", "", "comma-separated VCs configured for offline materialization")
	statsEvery := flag.Duration("stats", time.Minute, "interval for logging service counters (0 disables)")
	statePath := flag.String("state", "", "snapshot file: restored at startup, saved periodically (the AzureSQL-durability stand-in)")
	saveEvery := flag.Duration("save-every", 30*time.Second, "snapshot interval when -state is set")
	flag.Parse()

	svc := metadata.NewService()
	if *statePath != "" {
		if f, err := os.Open(*statePath); err == nil {
			restored, rerr := metadata.Restore(f)
			f.Close()
			if rerr != nil {
				log.Fatalf("restore %s: %v", *statePath, rerr)
			}
			svc = restored
			anns, views, _, _, _ := svc.Stats()
			log.Printf("restored %s: %d annotations, %d views", *statePath, anns, views)
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
		go func() {
			for range time.Tick(*saveEvery) {
				if err := saveSnapshot(svc, *statePath); err != nil {
					log.Printf("snapshot: %v", err)
				}
			}
		}()
	}
	if *offlineVCs != "" {
		for _, vc := range strings.Split(*offlineVCs, ",") {
			svc.SetOfflineVC(strings.TrimSpace(vc), true)
			log.Printf("VC %q configured for offline materialization", vc)
		}
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				anns, views, locks, lookups, proposals := svc.Stats()
				log.Printf("annotations=%d views=%d locks=%d lookups=%d proposals=%d",
					anns, views, locks, lookups, proposals)
			}
		}()
	}

	log.Printf("serving CloudViews metadata on %s", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           metadata.Handler(svc),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// saveSnapshot writes the snapshot atomically (write temp, rename).
func saveSnapshot(svc *metadata.Service, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := svc.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
