// Command tpcdsbench regenerates Figure 13 of the paper: all 99 TPC-DS
// queries run once without CloudViews (the analysis history), the analyzer
// selects the top-K overlapping computations, and the workload reruns with
// CloudViews on using the job-coordination submission order.
//
// Usage:
//
//	tpcdsbench [-scale 1.0] [-seed 42] [-views 10]
package main

import (
	"flag"
	"log"
	"os"

	"cloudviews/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tpcdsbench: ")
	cfg := bench.DefaultTPCDSConfig()
	scale := flag.Float64("scale", cfg.Scale, "TPC-DS scale factor")
	seed := flag.Int64("seed", cfg.Seed, "data generator seed")
	views := flag.Int("views", cfg.TopViews, "overlapping computations to select (paper: 10)")
	flag.Parse()

	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.TopViews = *views

	r, err := bench.RunTPCDS(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench.WriteTPCDS(os.Stdout, r)
}
