// Command overheadbench regenerates the §7.3 overhead measurements: the
// CloudViews analyzer's wall time over a cluster's history, the metadata
// service's per-job lookup latency over its HTTP front end (1 vs 5 client
// threads), and the optimizer-time impact of creating vs consuming views.
//
// Usage:
//
//	overheadbench [-seed 7]
package main

import (
	"flag"
	"log"
	"os"

	"cloudviews/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overheadbench: ")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	r, err := bench.RunOverheads(*seed)
	if err != nil {
		log.Fatal(err)
	}
	bench.WriteOverheads(os.Stdout, r)
}
