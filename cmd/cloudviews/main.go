// Command cloudviews is the admin interface of paper §5.5: it runs the
// CloudViews analyzer over a cluster's workload with custom constraints,
// prints the overlap summary, drills into the most overlapping
// computations (the Power BI dashboard stand-in), and emits the selected
// annotations and job-coordination hints.
//
// The workload is a generated cluster (this repository's substitute for a
// SCOPE workload repository); all analyzer knobs are exposed:
//
//	cloudviews -templates 200 -topk 10 -minfreq 3 -ratio 0.2
//	cloudviews -vc bu0_vc1 -strategy pack -budget 1000000
//	cloudviews -drilldown 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/bench"
	"cloudviews/internal/report"
	"cloudviews/internal/workgen"
	"cloudviews/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cloudviews: ")

	seed := flag.Int64("seed", 1, "workload seed")
	templates := flag.Int("templates", 150, "recurring templates in the cluster")
	loadPath := flag.String("load", "", "load a saved workload repository instead of generating one")
	savePath := flag.String("save", "", "save the analyzed workload repository to this file")
	vcs := flag.String("vc", "", "comma-separated VC filter (empty = all)")
	bus := flag.String("bu", "", "comma-separated business-unit filter")
	windowFrom := flag.Int64("from", 0, "analysis window start (instance)")
	windowTo := flag.Int64("to", 0, "analysis window end (0 = open)")
	minFreq := flag.Int("minfreq", 2, "minimum overlap frequency")
	ratio := flag.Float64("ratio", 0, "minimum view-to-job cost ratio")
	minRuntime := flag.Float64("minruntime", 0, "minimum subgraph runtime (cost-s)")
	topK := flag.Int("topk", 10, "views to select (0 = unlimited)")
	maxPerJob := flag.Int("maxperjob", 0, "1 = at most one view per job")
	strategy := flag.String("strategy", "utility", "selection strategy: utility | density | pack | packopt")
	budget := flag.Int64("budget", 0, "storage budget in bytes (pack strategy)")
	drill := flag.Int("drilldown", 10, "top-N computations to drill into")
	flag.Parse()

	var repo *workload.Repository
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		repo, err = workload.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded workload repository %s: %d jobs\n\n", *loadPath, repo.NumJobs())
	} else {
		p := workgen.DefaultProfile("admincluster", *seed)
		p.Templates = *templates
		w := workgen.Generate(p)
		var err error
		repo, err = bench.RunWorkload(w, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := repo.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved workload repository to %s\n\n", *savePath)
	}

	cfg := analyzer.Config{
		WindowFrom:   *windowFrom,
		WindowTo:     *windowTo,
		MinFrequency: *minFreq,
		MinCostRatio: *ratio,
		MinRuntime:   *minRuntime,
		MaxPerJob:    *maxPerJob,
		TopK:         *topK,
	}
	if *vcs != "" {
		cfg.VCs = strings.Split(*vcs, ",")
	}
	if *bus != "" {
		cfg.BusinessUnits = strings.Split(*bus, ",")
	}
	switch *strategy {
	case "utility":
		cfg.Strategy = analyzer.TopKUtility
	case "density":
		cfg.Strategy = analyzer.TopKUtilityPerByte
	case "pack":
		cfg.Strategy = analyzer.PackStorageBudget
		cfg.StorageBudget = *budget
	case "packopt":
		cfg.Strategy = analyzer.PackStorageBudgetOptimal
		cfg.StorageBudget = *budget
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	a := analyzer.New(repo)
	an := a.Analyze(cfg)
	st := a.OverlapStats(cfg)

	fmt.Printf("== Overlap summary (%d jobs, %d subgraph occurrences) ==\n", st.TotalJobs, st.TotalOccurrences)
	fmt.Printf("jobs overlapping:      %.1f%%\n", st.PctJobsOverlapping)
	fmt.Printf("users with overlap:    %.1f%%\n", st.PctUsersOverlapping)
	fmt.Printf("subgraphs overlapping: %.1f%% (avg frequency %.2f)\n\n",
		st.PctSubgraphsOverlapping, st.AvgFrequency)

	fmt.Printf("== Top-%d overlapping computations ==\n", *drill)
	t := &report.Table{Header: []string{"#", "root", "freq", "jobs", "users",
		"avg cost", "avg bytes", "cost ratio", "net utility", "expiry", "multi-design"}}
	for i, c := range an.Candidates {
		if i >= *drill {
			break
		}
		t.Add(i+1, c.RootOp.String(), c.Frequency, c.JobCount, c.UserCount,
			c.AvgCost, c.AvgBytes, c.CostRatio, c.Utility, c.ExpiryDelta, c.MultiDesign)
	}
	t.Write(os.Stdout)

	fmt.Printf("\n== Selected views (%d) ==\n", len(an.Selected))
	ts := &report.Table{Header: []string{"#", "signature", "root", "freq", "utility", "partitioning", "tags"}}
	for i, c := range an.Selected {
		tags := strings.Join(c.Tags, ",")
		if len(tags) > 48 {
			tags = tags[:45] + "..."
		}
		ts.Add(i+1, c.NormSig[:16], c.RootOp.String(), c.Frequency, c.Utility,
			fmt.Sprintf("%s%v x%d", c.Props.Part.Kind, c.Props.Part.Cols, c.Props.Part.Count), tags)
	}
	ts.Write(os.Stdout)

	if len(an.JobOrder) > 0 {
		fmt.Printf("\n== Job coordination hints (submit first, in order) ==\n")
		for i, j := range an.JobOrder {
			fmt.Printf("%2d. %s\n", i+1, j)
		}
	}
}
