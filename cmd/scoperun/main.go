// Command scoperun compiles and executes a SCOPE-like script (see
// internal/script for the grammar) against a generated catalog, printing
// the outputs and the per-job execution profile. It is the "run my script"
// developer experience on top of the engine.
//
// Catalogs:
//
//	-catalog tpcds     the 24-table TPC-DS catalog (default)
//	-catalog cluster   a generated recurring-workload cluster's tables
//
// Parameters bind with repeated -p name=value flags; values parse as
// int, float, or string (date values as plain ints).
//
//	scoperun -catalog tpcds query.scope
//	scoperun -p day=17003 -p minScore=12.5 daily.scope
//	echo 'r = EXTRACT FROM store_sales; OUTPUT r TO all;' | scoperun -
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/plan"
	"cloudviews/internal/report"
	"cloudviews/internal/script"
	"cloudviews/internal/storage"
	"cloudviews/internal/tpcds"
	"cloudviews/internal/workgen"
)

// paramFlags collects repeated -p name=value flags.
type paramFlags struct {
	params script.Params
}

func (p *paramFlags) String() string { return fmt.Sprintf("%v", p.params) }

func (p *paramFlags) Set(v string) error {
	name, raw, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", v)
	}
	if p.params == nil {
		p.params = script.Params{}
	}
	p.params[name] = parseValue(raw)
	return nil
}

func parseValue(raw string) data.Value {
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return data.Int(i)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return data.Float(f)
	}
	switch raw {
	case "true":
		return data.Bool(true)
	case "false":
		return data.Bool(false)
	}
	return data.String_(raw)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scoperun: ")
	catName := flag.String("catalog", "tpcds", "catalog to run against: tpcds | cluster")
	scale := flag.Float64("scale", 1.0, "TPC-DS scale factor")
	seed := flag.Int64("seed", 42, "catalog seed")
	maxRows := flag.Int("rows", 20, "output rows to print per sink")
	var params paramFlags
	flag.Var(&params, "p", "bind a script parameter: -p name=value (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: scoperun [flags] <script.scope | ->")
	}
	src, err := readScript(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	var cat *catalog.Catalog
	switch *catName {
	case "tpcds":
		cat = tpcds.Generate(*scale, *seed)
	case "cluster":
		cat = workgen.Generate(workgen.DefaultProfile("scoperun", *seed)).Catalog
	default:
		log.Fatalf("unknown catalog %q", *catName)
	}

	compiled, err := script.Compile(src, cat, params.params)
	if err != nil {
		log.Fatal(err)
	}
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	for i, root := range compiled.Outputs {
		res, err := ex.Run(root, fmt.Sprintf("scoperun-%d", i), 0)
		if err != nil {
			log.Fatal(err)
		}
		printResult(root, res, *maxRows)
	}
}

func readScript(arg string) (string, error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}

func printResult(root *plan.Node, res *exec.Result, maxRows int) {
	for name, rows := range res.Outputs {
		fmt.Printf("== output %s: %d row(s) ==\n", name, len(rows))
		t := &report.Table{Header: root.Schema().Names()}
		for i, r := range rows {
			if i >= maxRows {
				fmt.Printf("... %d more\n", len(rows)-maxRows)
				break
			}
			cells := make([]any, len(r))
			for j, v := range r {
				cells[j] = v.String()
			}
			t.Add(cells...)
		}
		t.Write(os.Stdout)
	}
	fmt.Printf("\nprofile: %d operators, simulated CPU %.1f cost-s, latency %.1f cost-s\n",
		len(res.NodeStats), res.TotalCPU, res.Latency)
}
