// Command overlapbench regenerates the workload-analysis figures of the
// paper (§2): Figure 1 (per-cluster overlap), Figure 2 (per-VC overlap in
// the largest cluster), Figure 3 (per-entity overlap CDFs in the largest
// business unit), Figure 4 (operator-wise overlap), and Figure 5 (overlap
// impact distributions).
//
// Usage:
//
//	overlapbench            # all figures
//	overlapbench -figure 4  # one figure
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cloudviews/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlapbench: ")
	figure := flag.Int("figure", 0, "figure to regenerate (1-5); 0 = all")
	flag.Parse()

	run := func(n int) {
		fmt.Printf("==== Figure %d ====\n", n)
		switch n {
		case 1:
			rows, err := bench.Figure1()
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteFigure1(os.Stdout, rows)
		case 2:
			r, err := bench.Figure2()
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteFigure2(os.Stdout, r)
		case 3:
			r, err := bench.Figure3()
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteFigure3(os.Stdout, r)
		case 4:
			r, err := bench.Figure4()
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteFigure4(os.Stdout, r)
		case 5:
			r, err := bench.Figure5()
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteFigure5(os.Stdout, r)
		default:
			log.Fatalf("unknown figure %d (want 1-5)", n)
		}
		fmt.Println()
	}

	if *figure != 0 {
		run(*figure)
		return
	}
	for n := 1; n <= 5; n++ {
		run(n)
	}
}
