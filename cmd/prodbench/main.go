// Command prodbench regenerates Figures 11 and 12 of the paper: the
// production-style experiment where the analyzer's top views are
// materialized by the first job of each view group and reused by the rest,
// measured against a CloudViews-off baseline.
//
// Usage:
//
//	prodbench [-views 3] [-minfreq 3] [-ratio 0.4] [-jobs 32] [-seed 2024]
package main

import (
	"flag"
	"log"
	"os"

	"cloudviews/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prodbench: ")
	cfg := bench.DefaultProdConfig()
	views := flag.Int("views", cfg.TopViews, "number of views to select (paper: 3)")
	minFreq := flag.Int("minfreq", cfg.MinFrequency, "minimum overlap frequency (paper: 3)")
	ratio := flag.Float64("ratio", cfg.MinCostRatio, "minimum view-to-job cost ratio")
	jobs := flag.Int("jobs", cfg.MaxJobs, "maximum relevant jobs (paper: 32)")
	seed := flag.Int64("seed", cfg.Profile.Seed, "workload seed")
	flag.Parse()

	cfg.TopViews = *views
	cfg.MinFrequency = *minFreq
	cfg.MinCostRatio = *ratio
	cfg.MaxJobs = *jobs
	cfg.Profile.Seed = *seed

	r, err := bench.RunProduction(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bench.WriteProd(os.Stdout, r)
}
