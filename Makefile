.PHONY: check test race bench

check:
	./scripts/check.sh

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/core/ ./internal/exec/ ./internal/cluster/

bench:
	go test -run='^$$' -bench=. -benchmem ./...
