.PHONY: check test race bench bench-json chaos

check:
	./scripts/check.sh

bench-json:
	./scripts/bench.sh

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/core/ ./internal/exec/ ./internal/cluster/

# Long chaos soak: hundreds of concurrent jobs per round under a seeded
# fault schedule, race detector on. CHAOS_ROUNDS scales the length.
chaos:
	CHAOS_ROUNDS=$${CHAOS_ROUNDS:-25} go test -race -run='TestChaosSoak' -count=1 -v ./internal/core/

bench:
	go test -run='^$$' -bench=. -benchmem ./...
