.PHONY: check test race bench bench-json bench-analyzer chaos

check:
	./scripts/check.sh

bench-json:
	./scripts/bench.sh
	./scripts/bench_analyzer.sh

# Analyzer scale-out sweep only: serial vs parallel at 10k/100k/500k
# observations, written to BENCH_analyzer.json.
bench-analyzer:
	./scripts/bench_analyzer.sh

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/core/ ./internal/exec/ ./internal/cluster/

# Long chaos soak: hundreds of concurrent jobs per round under a seeded
# fault schedule, race detector on. CHAOS_ROUNDS scales the length.
chaos:
	CHAOS_ROUNDS=$${CHAOS_ROUNDS:-25} go test -race -run='TestChaosSoak' -count=1 -v ./internal/core/

bench:
	go test -run='^$$' -bench=. -benchmem ./...
