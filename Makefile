.PHONY: check test race bench bench-json

check:
	./scripts/check.sh

bench-json:
	./scripts/bench.sh

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/core/ ./internal/exec/ ./internal/cluster/

bench:
	go test -run='^$$' -bench=. -benchmem ./...
