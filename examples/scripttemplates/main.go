// Script templates: jobs authored as SCOPE-like text scripts, the way the
// paper's users actually write them. Two teams' scripts share their data
// preparation; the scripts are recurring templates (the @day parameter
// binds per instance), so one analyzer pass makes every later day build
// the shared computation once and reuse it — with the script text
// untouched.
//
//	go run ./examples/scripttemplates
package main

import (
	"context"
	"fmt"
	"log"

	cv "cloudviews"
)

const reportScript = `
-- team A: daily engagement leaderboard
rows  = EXTRACT FROM events;
today = FILTER rows WHERE day == @day;
part  = SHUFFLE today BY user INTO 8;
agg   = AGGREGATE part BY user SUM(score), COUNT(action);
rank  = SORT agg BY sum_score DESC;
best  = TOP rank 10;
OUTPUT best TO leaderboard;
`

const alertScript = `
-- team B: clones team A's preparation, then finds noisy users
rows  = EXTRACT FROM events;
today = FILTER rows WHERE day == @day;
part  = SHUFFLE today BY user INTO 8;
agg   = AGGREGATE part BY user SUM(score), COUNT(action);
noisy = FILTER agg WHERE count_action > 12;
OUTPUT noisy TO alerts;
`

var schema = cv.Schema{
	{Name: "user", Kind: cv.KindInt},
	{Name: "action", Kind: cv.KindString},
	{Name: "day", Kind: cv.KindDate},
	{Name: "score", Kind: cv.KindFloat},
}

func deliver(cat *cv.Catalog, d int64) {
	fill := func(t *cv.Table) {
		rr := 0
		for i := 0; i < 2500; i++ {
			t.AppendHash(cv.Row{
				cv.Int(int64(i % 150)),
				cv.Str(fmt.Sprintf("a%d", i%9)),
				cv.Date(17100 + d),
				cv.Float(float64((i*13)%500) / 2),
			}, []int{0}, &rr)
		}
	}
	if d == 0 {
		t := cv.NewTable("events", "events-day0", schema, 8)
		fill(t)
		cat.Register(t)
		return
	}
	if err := cat.Deliver("events", fmt.Sprintf("events-day%d", d), fill); err != nil {
		log.Fatal(err)
	}
}

func main() {
	log.SetFlags(0)
	cat := cv.NewCatalog()
	deliver(cat, 0)
	svc := cv.NewService(cat, cv.Config{Enabled: true, ValidateResults: true})

	submit := func(tpl, src string, d int64) *cv.JobResult {
		compiled, err := cv.CompileScript(src, cat, cv.ScriptParams{"day": cv.Date(17100 + d)})
		if err != nil {
			log.Fatalf("%s: %v", tpl, err)
		}
		root, err := compiled.Root()
		if err != nil {
			log.Fatal(err)
		}
		r, err := svc.Run(context.Background(), cv.JobSpec{
			Meta: cv.JobMeta{
				JobID: fmt.Sprintf("%s-day%d", tpl, d), VC: "scripts_vc",
				User: tpl, TemplateID: tpl, Instance: d, Period: 1,
			},
			Root: root,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	for d := int64(0); d < 3; d++ {
		if d > 0 {
			deliver(cat, d)
		}
		svc.BeginInstance(d)
		fmt.Printf("--- day %d ---\n", d)
		for _, job := range []struct{ tpl, src string }{
			{"leaderboard", reportScript},
			{"alerts", alertScript},
		} {
			r := submit(job.tpl, job.src, d)
			action := "recomputed"
			if len(r.Decision.ViewsBuilt) > 0 {
				action = "built shared view"
			}
			if len(r.Decision.ViewsUsed) > 0 {
				action = "reused shared view"
			}
			fmt.Printf("  %-12s %-18s CPU %6.0f (baseline %6.0f)\n",
				job.tpl, action, r.Result.TotalCPU, r.BaselineResult.TotalCPU)
		}
		if d == 0 {
			an := svc.RunAnalyzer(cv.AnalyzerConfig{MinFrequency: 2, TopK: 1})
			fmt.Printf("  [analyzer] selected the shared %v computation (frequency %d)\n",
				an.Selected[0].RootOp, an.Selected[0].Frequency)
		}
	}
}
