// Admin report: the §5.5 experience through the public API. A VC admin
// generates (or, in production, already has) a day of workload history,
// inspects the cluster's overlap profile, drills into the most overlapping
// computations, compares selection strategies under a storage budget, and
// gets the job-coordination hints.
//
//	go run ./examples/adminreport
package main

import (
	"context"
	"fmt"
	"log"

	cv "cloudviews"
)

func main() {
	log.SetFlags(0)

	// One day of a production-like cluster.
	profile := cv.DefaultWorkloadProfile("contoso", 7)
	profile.Templates = 100
	w := cv.GenerateWorkload(profile)
	svc := cv.NewService(w.Catalog, cv.Config{Enabled: false})
	for _, j := range w.JobsForInstance(0) {
		if _, err := svc.Run(context.Background(), cv.JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
			log.Fatal(err)
		}
	}

	// One Snapshot covers what used to take several accessors: job
	// ledger, storage gauges, breakers, and the analyzer-facing counters.
	snap := svc.Snapshot()
	fmt.Printf("service snapshot (schema v%d): %d jobs completed, %d views resident (%d encoded bytes)\n",
		snap.SchemaVersion, snap.Metrics.Counters["jobs.completed"],
		snap.Storage.Views, snap.Storage.ResidentEncodedBytes)

	// The overlap profile (what the Power BI dashboard summarizes).
	stats := cv.ComputeOverlapStats(svc.Repo.Observations())
	fmt.Printf("cluster %q: %d jobs, %d users, %d subgraph occurrences\n",
		profile.Name, stats.TotalJobs, stats.TotalUsers, stats.TotalOccurrences)
	fmt.Printf("  %.0f%% of jobs overlap, %.0f%% of users have overlap, avg frequency %.1f\n\n",
		stats.PctJobsOverlapping, stats.PctUsersOverlapping, stats.AvgFrequency)

	// Drill-down: top overlapping computations with mined statistics.
	an := svc.RunAnalyzer(cv.AnalyzerConfig{MinFrequency: 2, TopK: 5})
	fmt.Println("top overlapping computations:")
	for i, c := range an.Candidates {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-10s freq=%-3d jobs=%-3d users=%-2d cost=%.0f ratio=%.2f utility=%.0f\n",
			i+1, c.RootOp, c.Frequency, c.JobCount, c.UserCount, c.AvgCost, c.CostRatio, c.Utility)
	}

	// Strategy comparison under a storage budget: pure utility vs
	// density-packing (the §5.2 pluggable heuristics).
	var budget int64
	for _, c := range an.Selected {
		budget += int64(c.AvgBytes)
	}
	budget = budget * 2 / 3
	fmt.Printf("\nselection under a %d-byte budget:\n", budget)
	for _, s := range []struct {
		name     string
		strategy cv.AnalyzerConfig
	}{
		{"top-k by net utility", cv.AnalyzerConfig{MinFrequency: 2, TopK: 5}},
		{"utility per byte", cv.AnalyzerConfig{MinFrequency: 2, TopK: 5, Strategy: cv.TopKUtilityPerByte}},
		{"pack under budget", cv.AnalyzerConfig{MinFrequency: 2, Strategy: cv.PackStorageBudget, StorageBudget: budget}},
	} {
		res := svc.RunAnalyzer(s.strategy)
		var bytes int64
		var utility float64
		for _, c := range res.Selected {
			bytes += int64(c.AvgBytes)
			utility += c.Utility
		}
		fmt.Printf("  %-22s -> %d views, %d bytes, total utility %.0f\n",
			s.name, len(res.Selected), bytes, utility)
	}

	// Coordination hints (§6.5): submit these jobs first so each view is
	// built exactly once.
	final := svc.RunAnalyzer(cv.AnalyzerConfig{MinFrequency: 2, TopK: 3})
	fmt.Println("\nsubmit-first hints for tomorrow's instance:")
	for i, id := range final.JobOrder {
		fmt.Printf("  %d. %s\n", i+1, id)
	}
}
