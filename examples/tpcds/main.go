// TPC-DS with CloudViews: run a family of TPC-DS queries that share a
// common core (the store_sales ⋈ date_dim ⋈ item join of the classic
// brand-revenue queries q3/q42/q52/q55) with computation reuse on and off,
// and compare.
//
//	go run ./examples/tpcds
package main

import (
	"context"
	"fmt"
	"log"

	cv "cloudviews"
)

// The query family: q3, q42, q52, q55 share one core; q7, q19, q98 bring
// adjacent shapes into the mix so the analyzer has real choices.
var queryIDs = []int{3, 42, 52, 55, 7, 19, 98}

func main() {
	log.SetFlags(0)

	cat := cv.GenerateTPCDS(1.0, 42)
	builder := &cv.TPCDSBuilder{Cat: cat}

	meta := func(q cv.TPCDSQuery, suffix string) cv.JobMeta {
		return cv.JobMeta{
			JobID: q.Name + suffix, VC: "tpcds", User: "analyst",
			TemplateID: q.Name, Period: 1,
		}
	}

	// Baseline pass: CloudViews off. This also builds the history the
	// analyzer mines — exactly how the paper ran its TPC-DS evaluation.
	baseSvc := cv.NewService(cat, cv.Config{Enabled: false})
	baseline := map[int]float64{}
	for _, id := range queryIDs {
		q := builder.Query(id)
		r, err := baseSvc.Run(context.Background(), cv.JobSpec{Meta: meta(q, ""), Root: q.Root})
		if err != nil {
			log.Fatal(err)
		}
		baseline[id] = r.Result.Latency
	}

	// Analyze the baseline history and load annotations into a fresh
	// CloudViews-enabled service over the same catalog.
	cvSvc := cv.NewService(cat, cv.Config{Enabled: true, ValidateResults: true})
	analysis := analyze(baseSvc)
	cvSvc.Meta.LoadAnalysis(analysis.Annotations)
	fmt.Printf("analyzer selected %d overlapping computation(s) from %d candidates\n\n",
		len(analysis.Selected), len(analysis.Candidates))

	fmt.Printf("%-6s %12s %12s %10s\n", "query", "baseline", "cloudviews", "change")
	var sumB, sumC float64
	for _, id := range queryIDs {
		q := builder.Query(id)
		r, err := cvSvc.Run(context.Background(), cv.JobSpec{Meta: meta(q, "-cv"), Root: q.Root})
		if err != nil {
			log.Fatal(err)
		}
		b, c := baseline[id], r.Result.Latency
		sumB += b
		sumC += c
		note := ""
		if len(r.Decision.ViewsBuilt) > 0 {
			note = " (built view)"
		} else if len(r.Decision.ViewsUsed) > 0 {
			note = " (reused view)"
		}
		fmt.Printf("q%-5d %12.1f %12.1f %+9.1f%%%s\n", id, b, c, (1-c/b)*100, note)
	}
	fmt.Printf("\ntotal runtime improvement: %.1f%%\n", (1-sumC/sumB)*100)
}

// analyze runs the CloudViews analyzer over the baseline service's
// workload repository.
func analyze(baseSvc *cv.Service) *cv.Analysis {
	return baseSvc.RunAnalyzer(cv.AnalyzerConfig{
		MinFrequency: 3,
		TopK:         2,
	})
}
