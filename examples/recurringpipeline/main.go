// Recurring pipeline: the paper's core scenario end to end. A producer
// delivers a fresh batch of telemetry every day; three consumer teams run
// recurring templates over it that share an expensive preparation step.
//
// Day 0 runs cold and populates the workload repository. The analyzer then
// installs annotations. From day 1 on, the first job of each day
// materializes the shared computation over that day's data and the others
// reuse it; stale views expire automatically as days roll over.
//
//	go run ./examples/recurringpipeline
package main

import (
	"context"
	"fmt"
	"log"

	cv "cloudviews"
)

const days = 4

var telemetrySchema = cv.Schema{
	{Name: "device", Kind: cv.KindInt},
	{Name: "metric", Kind: cv.KindString},
	{Name: "day", Kind: cv.KindDate},
	{Name: "value", Kind: cv.KindFloat},
}

// deliver installs day d's batch (the producer side of the pipeline).
func deliver(cat *cv.Catalog, d int64) {
	guid := fmt.Sprintf("telemetry-day%d", d)
	fill := func(t *cv.Table) {
		rr := 0
		for i := 0; i < 3000; i++ {
			t.AppendHash(cv.Row{
				cv.Int(int64(i % 200)),
				cv.Str(fmt.Sprintf("m%d", i%12)),
				cv.Date(17000 + d),
				cv.Float(float64((i*7)%1000) / 3),
			}, []int{0}, &rr)
		}
	}
	if d == 0 {
		// Day 0 registers the table; later days use Deliver.
		t := cv.NewTable("telemetry", guid, telemetrySchema, 8)
		fill(t)
		cat.Register(t)
		return
	}
	if err := cat.Deliver("telemetry", guid, fill); err != nil {
		log.Fatal(err)
	}
}

// prepared is the shared preparation: today's rows, shuffled by device and
// aggregated. Note the recurring parameter — each day binds a new date, so
// the normalized signature stays stable across days while the precise one
// changes with the data.
func prepared(cat *cv.Catalog, d int64) *cv.Plan {
	return cv.Scan("telemetry", cat.GUID("telemetry"), telemetrySchema).
		Filter(cv.Eq(cv.Col(2, "day"), cv.Param("day", cv.Date(17000+d)))).
		ShuffleHash([]int{0}, 8).
		HashAgg([]int{0}, []cv.AggSpec{{Fn: cv.AggSum, Col: 3}, {Fn: cv.AggMax, Col: 3}})
}

func main() {
	log.SetFlags(0)
	cat := cv.NewCatalog()
	deliver(cat, 0)
	svc := cv.NewService(cat, cv.Config{Enabled: true, ValidateResults: true})

	templates := []struct {
		id    string
		user  string
		build func(d int64) *cv.Plan
	}{
		{"health-report", "alice", func(d int64) *cv.Plan {
			return prepared(cat, d).Sort([]int{1}, []bool{true}).Top(20).Output("health")
		}},
		{"anomaly-alerts", "bob", func(d int64) *cv.Plan {
			return prepared(cat, d).
				Filter(cv.Bin(cv.OpGt, cv.Col(2, "max_value"), cv.Lit(cv.Float(300)))).
				Output("alerts")
		}},
		{"capacity-plan", "carol", func(d int64) *cv.Plan {
			return prepared(cat, d).
				Project([]string{"device", "load"}, []cv.Expr{
					cv.Col(0, "device"),
					cv.Bin(cv.OpDiv, cv.Col(1, "sum_value"), cv.Lit(cv.Float(24))),
				}).
				Sort([]int{1}, []bool{true}).
				Output("capacity")
		}},
	}

	for d := int64(0); d < days; d++ {
		if d > 0 {
			deliver(cat, d)
		}
		svc.BeginInstance(d) // purge views that expired before today
		fmt.Printf("--- day %d (views in store: %d) ---\n", d, svc.Store.Len())
		for _, tpl := range templates {
			r, err := svc.Run(context.Background(), cv.JobSpec{
				Meta: cv.JobMeta{
					JobID: fmt.Sprintf("%s-day%d", tpl.id, d), VC: "telemetry_vc",
					User: tpl.user, TemplateID: tpl.id, Instance: d, Period: 1,
				},
				Root: tpl.build(d),
			})
			if err != nil {
				log.Fatal(err)
			}
			action := "recomputed"
			if len(r.Decision.ViewsBuilt) > 0 {
				action = "built the shared view"
			}
			if len(r.Decision.ViewsUsed) > 0 {
				action = "reused the shared view"
			}
			fmt.Printf("  %-22s %-24s CPU %7.0f (baseline %7.0f)\n",
				tpl.id, action, r.Result.TotalCPU, r.BaselineResult.TotalCPU)
		}
		if d == 0 {
			an := svc.RunAnalyzer(cv.AnalyzerConfig{MinFrequency: 2, TopK: 1})
			fmt.Printf("  [analyzer] selected %d view(s); expiry %d day(s); submit-first hint: %v\n",
				len(an.Selected), an.Selected[0].ExpiryDelta, an.JobOrder)
		}
	}
	fmt.Printf("final: %d view(s) in store, %d registered in metadata\n",
		svc.Store.Len(), len(svc.Meta.Views()))
}
