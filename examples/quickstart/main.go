// Quickstart: two jobs share a computation; CloudViews materializes it
// during the first job and rewrites the second to reuse it — with zero
// changes to how either job is written.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	cv "cloudviews"
)

func main() {
	log.SetFlags(0)

	// 1. A catalog with one base table: a day of click events.
	cat := cv.NewCatalog()
	clicks := cv.NewTable("clicks", "batch-2018-06-10", cv.Schema{
		{Name: "user", Kind: cv.KindInt},
		{Name: "url", Kind: cv.KindString},
		{Name: "ms", Kind: cv.KindFloat},
	}, 4)
	rr := 0
	for i := 0; i < 2000; i++ {
		clicks.AppendHash(cv.Row{
			cv.Int(int64(i % 100)),
			cv.Str(fmt.Sprintf("/page/%d", i%37)),
			cv.Float(float64(i%500) + 0.25),
		}, []int{0}, &rr)
	}
	cat.Register(clicks)

	// 2. Two teams write jobs that both start from the same expensive
	//    aggregation: time per user, shuffled and grouped.
	perUser := func() *cv.Plan {
		return cv.Scan("clicks", "batch-2018-06-10", clicks.Schema).
			ShuffleHash([]int{0}, 8).
			HashAgg([]int{0}, []cv.AggSpec{{Fn: cv.AggSum, Col: 2}, {Fn: cv.AggCount, Col: 1}})
	}
	reportJob := perUser().Sort([]int{1}, []bool{true}).Top(10).Output("top_users")
	alertJob := perUser().
		Filter(cv.Bin(cv.OpGt, cv.Col(2, "count_url"), cv.Lit(cv.Int(15)))).
		Output("heavy_users")

	// 3. A CloudViews-enabled service. ValidateResults makes every job
	//    double-checked against an unoptimized run.
	svc := cv.NewService(cat, cv.Config{Enabled: true, ValidateResults: true})

	submit := func(id string, root *cv.Plan) *cv.JobResult {
		r, err := svc.Run(context.Background(), cv.JobSpec{
			Meta: cv.JobMeta{JobID: id, VC: "demo", User: "quickstart", TemplateID: id, Period: 1},
			Root: root,
		})
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		return r
	}

	// 4. First, run both jobs once so the feedback loop has history, then
	//    let the analyzer find the overlap.
	submit("report-day0", reportJob)
	submit("alert-day0", alertJob)
	an := svc.RunAnalyzer(cv.AnalyzerConfig{MinFrequency: 2, TopK: 1})
	fmt.Printf("analyzer: %d candidates, selected %d (frequency %d, net utility %.0f)\n",
		len(an.Candidates), len(an.Selected), an.Selected[0].Frequency, an.Selected[0].Utility)

	// 5. Run the jobs again: the first builds the view, the second reuses.
	r1 := submit("report-day0-rerun", reportJob)
	r2 := submit("alert-day0-rerun", alertJob)
	fmt.Printf("report job: built %d view(s), CPU %.0f (baseline %.0f)\n",
		len(r1.Decision.ViewsBuilt), r1.Result.TotalCPU, r1.BaselineResult.TotalCPU)
	fmt.Printf("alert job:  reused %d view(s), CPU %.0f (baseline %.0f) -> %.0f%% saved\n",
		len(r2.Decision.ViewsUsed), r2.Result.TotalCPU, r2.BaselineResult.TotalCPU,
		(1-r2.Result.TotalCPU/r2.BaselineResult.TotalCPU)*100)

	for _, row := range r1.Result.Outputs["top_users"][:3] {
		fmt.Println("top user:", row)
	}
}
