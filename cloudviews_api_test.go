package cloudviews

// cloudviews_api_test.go pins the redesigned public API surface: every
// re-exported observability symbol must resolve at compile time, the
// canonical Run/RunBatch pair must exist with its ctx-first shape, and
// the deprecated Submit quartet must delegate to it with field-identical
// results.

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestAPISurface is a compile-time contract: assigning each method and
// symbol to an explicitly typed variable fails the build if a signature
// drifts. The runtime assertions are minimal sanity.
func TestAPISurface(t *testing.T) {
	cat := facadeCatalog(t)
	svc := NewService(cat, Config{Enabled: true})

	// Canonical submission pair.
	var run func(context.Context, JobSpec) (*JobResult, error) = svc.Run
	var runBatch func(context.Context, []JobSpec, BatchOptions) ([]*JobResult, error) = svc.RunBatch
	// Deprecated wrappers, kept source-compatible.
	var submit func(JobSpec) (*JobResult, error) = svc.Submit
	var submitCtx func(context.Context, JobSpec) (*JobResult, error) = svc.SubmitCtx
	var submitBatch func([]JobSpec, int) ([]*JobResult, error) = svc.SubmitBatch
	var submitBatchCtx func(context.Context, []JobSpec, int) ([]*JobResult, error) = svc.SubmitBatchCtx
	// Unified stats and tracing surface.
	var snapshot func() ServiceStats = svc.Snapshot
	var trace func(string) (*Trace, bool) = svc.Trace
	var setObserver func(*ServiceObserver) = svc.SetObserver
	var observer func() *ServiceObserver = svc.Observer
	for _, fn := range []any{run, runBatch, submit, submitCtx, submitBatch,
		submitBatchCtx, snapshot, trace, setObserver, observer} {
		if fn == nil {
			t.Fatal("nil method value")
		}
	}

	// Re-exported observability types must be usable as values.
	var st ServiceStats = svc.Snapshot()
	if st.SchemaVersion != StatsSchemaVersion {
		t.Fatalf("SchemaVersion = %d, want %d", st.SchemaVersion, StatsSchemaVersion)
	}
	var _ SchedulerStats = st.Scheduler
	var _ []BreakerStats = st.Breakers
	var _ Metrics = st.Metrics
	var _ *ServiceObserver = NewObserver(0)

	res, err := svc.Run(context.Background(), JobSpec{Meta: facadeMeta("api-job"),
		Root: Scan("purchases", "v1", mustSchema(cat, t)).Output("all")})
	if err != nil || res == nil {
		t.Fatalf("Run: %v", err)
	}
	tr, ok := svc.Trace("api-job")
	if !ok {
		t.Fatal("Trace returned no trace for a completed job")
	}
	var root *Span = tr.Root
	if root.Name != "submit" {
		t.Fatalf("root span %q, want submit", root.Name)
	}
	if !bytes.Contains(tr.JSON(), []byte(`"outcome":"ok"`)) {
		t.Fatalf("trace outcome missing: %s", tr.JSON())
	}
}

// sameJobResult compares the observable fields of two results for the
// delegation tests (pointers and plan identities necessarily differ).
func sameJobResult(t *testing.T, label string, a, b *JobResult) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", label)
	}
	if a == nil {
		return
	}
	if a.Result.TotalCPU != b.Result.TotalCPU || a.Result.Latency != b.Result.Latency {
		t.Fatalf("%s: cost mismatch cpu %v vs %v, latency %v vs %v",
			label, a.Result.TotalCPU, b.Result.TotalCPU, a.Result.Latency, b.Result.Latency)
	}
	if len(a.Result.Outputs) != len(b.Result.Outputs) {
		t.Fatalf("%s: output count %d vs %d", label, len(a.Result.Outputs), len(b.Result.Outputs))
	}
	for name, rows := range a.Result.Outputs {
		if !reflect.DeepEqual(rows, b.Result.Outputs[name]) {
			t.Fatalf("%s: output %q differs", label, name)
		}
	}
	if !reflect.DeepEqual(a.Result.MaterializedPaths, b.Result.MaterializedPaths) {
		t.Fatalf("%s: materialized paths %v vs %v",
			label, a.Result.MaterializedPaths, b.Result.MaterializedPaths)
	}
	if len(a.Decision.ViewsUsed) != len(b.Decision.ViewsUsed) ||
		len(a.Decision.ViewsBuilt) != len(b.Decision.ViewsBuilt) {
		t.Fatalf("%s: decision mismatch %+v vs %+v", label, a.Decision, b.Decision)
	}
}

// TestDeprecatedWrappersDelegate proves Submit/SubmitCtx/SubmitBatch/
// SubmitBatchCtx produce results identical to Run/RunBatch on identical
// fresh services — they are wrappers, not parallel implementations.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	build := func() (*Service, *Catalog) {
		cat := facadeCatalog(t)
		return NewService(cat, Config{Enabled: true}), cat
	}
	job := func(cat *Catalog, id string) JobSpec {
		return JobSpec{Meta: facadeMeta(id),
			Root: Scan("purchases", "v1", mustSchema(cat, t)).
				ShuffleHash([]int{0}, 4).
				HashAgg([]int{0}, []AggSpec{{Fn: AggSum, Col: 3}}).
				Output("spend")}
	}

	// Single-job: Run vs Submit vs SubmitCtx.
	sv1, c1 := build()
	r1, e1 := sv1.Run(context.Background(), job(c1, "j"))
	sv2, c2 := build()
	r2, e2 := sv2.Submit(job(c2, "j"))
	sv3, c3 := build()
	r3, e3 := sv3.SubmitCtx(context.Background(), job(c3, "j"))
	if e1 != nil || e2 != nil || e3 != nil {
		t.Fatal(e1, e2, e3)
	}
	sameJobResult(t, "Submit vs Run", r2, r1)
	sameJobResult(t, "SubmitCtx vs Run", r3, r1)

	// Batch: RunBatch vs SubmitBatch vs SubmitBatchCtx.
	batch := func(cat *Catalog) []JobSpec {
		return []JobSpec{job(cat, "b0"), job(cat, "b1"), job(cat, "b2")}
	}
	sv4, c4 := build()
	rb1, eb1 := sv4.RunBatch(context.Background(), batch(c4), BatchOptions{Concurrency: 2})
	sv5, c5 := build()
	rb2, eb2 := sv5.SubmitBatch(batch(c5), 2)
	sv6, c6 := build()
	rb3, eb3 := sv6.SubmitBatchCtx(context.Background(), batch(c6), 2)
	if eb1 != nil || eb2 != nil || eb3 != nil {
		t.Fatal(eb1, eb2, eb3)
	}
	for i := range rb1 {
		sameJobResult(t, "SubmitBatch vs RunBatch", rb2[i], rb1[i])
		sameJobResult(t, "SubmitBatchCtx vs RunBatch", rb3[i], rb1[i])
	}

	// Error paths delegate too: a cancelled context yields the same typed
	// JobError through the wrapper as through Run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errRun := sv1.Run(ctx, job(c1, "cancelled"))
	_, errWrap := sv1.SubmitCtx(ctx, job(c1, "cancelled"))
	var jeRun, jeWrap *JobError
	if !errors.As(errRun, &jeRun) || !errors.As(errWrap, &jeWrap) {
		t.Fatalf("expected JobErrors, got %v / %v", errRun, errWrap)
	}
	if jeRun.Reason != ReasonCancelled || jeWrap.Reason != jeRun.Reason {
		t.Fatalf("reason mismatch: %v vs %v", jeRun.Reason, jeWrap.Reason)
	}
}
