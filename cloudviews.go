// Package cloudviews is the public API of the CloudViews reproduction —
// an end-to-end computation-reuse framework for an analytics job service,
// after "Computation Reuse in Analytics Job Service at Microsoft"
// (SIGMOD 2018).
//
// The package re-exports the stable surface of the internal packages:
//
//   - building base tables and delivering recurring data batches (Catalog,
//     Table, Schema),
//   - authoring jobs as operator DAGs (Scan and the builder methods on
//     *Plan),
//   - running a CloudViews-enabled job service (NewService, Service,
//     JobSpec),
//   - mining the workload and selecting views (AnalyzerConfig, Analysis),
//   - and generating evaluation workloads (production-like recurring
//     clusters and TPC-DS).
//
// The quickest tour is examples/quickstart: two overlapping jobs, where
// the first materializes the shared computation and the second reuses it.
package cloudviews

import (
	"context"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/catalog"
	"cloudviews/internal/core"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/fault"
	"cloudviews/internal/metadata"
	"cloudviews/internal/obs"
	"cloudviews/internal/plan"
	"cloudviews/internal/script"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
	"cloudviews/internal/tpcds"
	"cloudviews/internal/workgen"
	"cloudviews/internal/workload"
)

// ---- Data layer ----------------------------------------------------------

// Value is a dynamically typed scalar; Row a tuple; Schema an ordered list
// of columns; Table a named, partitioned row set whose GUID identifies the
// delivered data version.
type (
	Value  = data.Value
	Row    = data.Row
	Column = data.Column
	Schema = data.Schema
	Table  = data.Table
)

// Value constructors.
var (
	Int   = data.Int
	Float = data.Float
	Str   = data.String_
	Bool  = data.Bool
	Date  = data.Date
	Null  = data.Null
)

// Kind constants for schema columns.
const (
	KindInt    = data.KindInt
	KindFloat  = data.KindFloat
	KindString = data.KindString
	KindBool   = data.KindBool
	KindDate   = data.KindDate
)

// NewTable creates an empty partitioned table.
var NewTable = data.NewTable

// Catalog tracks base tables and their delivered versions.
type Catalog = catalog.Catalog

// NewCatalog returns an empty catalog.
var NewCatalog = catalog.New

// ---- Plans and expressions ------------------------------------------------

// Plan is one operator of a job DAG; jobs are built fluently from Scan.
type (
	Plan    = plan.Node
	AggSpec = plan.AggSpec
	Expr    = expr.Expr
)

// Operator and aggregate constructors.
var (
	Scan = plan.Scan
	// Expression constructors: column reference, literal, recurring
	// parameter, binary op, function call.
	Col   = expr.C
	Lit   = expr.Lit
	Param = expr.P
	Bin   = expr.B
	Fn    = expr.F
	Eq    = expr.Eq
	And   = expr.And
)

// Aggregate functions.
const (
	AggSum   = plan.AggSum
	AggCount = plan.AggCount
	AggMin   = plan.AggMin
	AggMax   = plan.AggMax
	AggAvg   = plan.AggAvg
)

// Comparison and arithmetic operators for Bin.
const (
	OpAdd = expr.OpAdd
	OpSub = expr.OpSub
	OpMul = expr.OpMul
	OpDiv = expr.OpDiv
	OpEq  = expr.OpEq
	OpNe  = expr.OpNe
	OpLt  = expr.OpLt
	OpLe  = expr.OpLe
	OpGt  = expr.OpGt
	OpGe  = expr.OpGe
	OpAnd = expr.OpAnd
	OpOr  = expr.OpOr
)

// Signature pairs the precise and normalized hashes of a computation.
type Signature = signature.Signature

// SignatureOf computes the signature of a plan subgraph.
var SignatureOf = signature.Of

// ---- The job service -------------------------------------------------------

// Service is the CloudViews-enabled job service; Config its switches;
// JobSpec one submission; JobResult one completed job; JobMeta the job's
// identity and recurrence metadata.
type (
	Service   = core.Service
	Config    = core.Config
	JobSpec   = core.JobSpec
	JobResult = core.JobResult
	JobMeta   = workload.JobMeta
)

// NewService wires a complete in-process job service around a catalog.
var NewService = core.NewService

// BatchOptions configures Service.RunBatch, the canonical ctx-first batch
// submission entry point (Service.Run is its single-job sibling). The
// Submit/SubmitCtx/SubmitBatch/SubmitBatchCtx quartet remains as thin
// deprecated wrappers.
type BatchOptions = core.BatchOptions

// ---- Observability ---------------------------------------------------------

// ServiceStats is the unified, versioned stats surface returned by
// Service.Snapshot — recovery, storage, scheduler, breaker, and metric
// counters in one consistent value. SchedulerStats and BreakerStats are
// its nested slices; ServiceObserver is the observability layer itself
// (Service.SetObserver swaps or removes it).
type (
	ServiceStats    = core.ServiceStats
	SchedulerStats  = core.SchedulerStats
	BreakerStats    = core.BreakerStats
	ServiceObserver = core.Observer
)

// StatsSchemaVersion identifies the ServiceStats layout.
const StatsSchemaVersion = core.StatsSchemaVersion

// NewObserver builds an observability layer for Service.SetObserver:
// capacity 0 keeps the default trace ring, negative disables tracing.
var NewObserver = core.NewObserver

// Span is one node of a job trace (a logical-clock interval with
// attributes and children); Trace is a job's span tree, exported as
// stable order-normalized JSON by Trace.JSON; Metrics is the counter /
// gauge / histogram snapshot inside ServiceStats. Traces are retrieved
// with Service.Trace(jobID) and are byte-deterministic for a fixed seed
// across serial and parallel execution.
type (
	Span    = obs.Span
	Trace   = obs.Trace
	Metrics = obs.MetricsSnapshot
)

// JobError is the typed failure the lifecycle layer returns — the job
// that failed, a JobErrorReason (cancelled / deadline / shed /
// dependency), and the underlying cause reachable via errors.Is/As.
// Submissions with per-job deadlines (JobSpec.Deadline on the logical
// clock) or cancellable contexts go through Service.SubmitCtx; graceful
// shutdown through Service.Drain, after which submissions fail shed with
// ErrDraining as the cause.
type (
	JobError       = core.JobError
	JobErrorReason = core.JobErrorReason
)

// Lifecycle failure reasons carried by JobError.
const (
	ReasonCancelled  = core.ReasonCancelled
	ReasonDeadline   = core.ReasonDeadline
	ReasonShed       = core.ReasonShed
	ReasonDependency = core.ReasonDependency
)

// ErrDraining is the cause inside the shed JobError returned for
// submissions arriving after Service.Drain began.
var ErrDraining = core.ErrDraining

// FaultConfig sets the per-class probabilities of a seeded fault schedule;
// FaultInjector is the deterministic injector Service.InstallFaults wires
// into every layer; RecoveryStats is the service-wide recovery counters
// returned by Service.Recovery.
type (
	FaultConfig   = fault.Config
	FaultInjector = fault.Injector
	RecoveryStats = core.RecoveryStats
)

// StorageStats is the storage byte gauges returned by
// Service.StorageStats: resident encoded view bytes plus the decoded
// hot-view cache's entries, bytes, and hit/miss/eviction counters
// (CacheStats).
type (
	StorageStats = core.StorageStats
	CacheStats   = storage.CacheStats
)

// NewFaultInjector builds an injector from a seeded fault schedule.
var NewFaultInjector = fault.NewInjector

// Annotation is one analyzer-selected view the metadata service serves.
type Annotation = metadata.Annotation

// ---- The analyzer -----------------------------------------------------------

// AnalyzerConfig tunes one analyzer run; Analysis is its output;
// Candidate one overlapping computation; OverlapStats the workload's
// overlap profile (the paper's Figures 1–5 raw material).
type (
	AnalyzerConfig = analyzer.Config
	Analysis       = analyzer.Analysis
	Candidate      = analyzer.Candidate
	OverlapStats   = analyzer.OverlapStats
)

// Selection strategies for AnalyzerConfig.Strategy.
const (
	TopKUtility              = analyzer.TopKUtility
	TopKUtilityPerByte       = analyzer.TopKUtilityPerByte
	PackStorageBudget        = analyzer.PackStorageBudget
	PackStorageBudgetOptimal = analyzer.PackStorageBudgetOptimal
)

// Repository is the workload repository behind the feedback loop;
// Observation is one subgraph occurrence reconciled with runtime
// statistics.
type (
	Repository  = workload.Repository
	Observation = workload.Observation
)

// ComputeOverlapStats derives the overlap profile of a set of subgraph
// observations (the §2 analysis).
var ComputeOverlapStats = analyzer.ComputeOverlapStats

// LoadRepository reads a workload repository previously written with
// Repository.Save — the durable form the offline analyzer consumes.
var LoadRepository = workload.Load

// ---- Workload generators ------------------------------------------------------

// WorkloadProfile configures a generated production-like cluster;
// GeneratedWorkload is the cluster; GeneratedJob one submittable job.
type (
	WorkloadProfile   = workgen.Profile
	GeneratedWorkload = workgen.Workload
	GeneratedJob      = workgen.Job
)

// GenerateWorkload builds a recurring, overlapping cluster workload, and
// DefaultWorkloadProfile returns a mid-sized starting point.
var (
	GenerateWorkload       = workgen.Generate
	DefaultWorkloadProfile = workgen.DefaultProfile
)

// TPCDSBuilder builds the 99 TPC-DS queries; TPCDSQuery is one of them.
type (
	TPCDSBuilder = tpcds.Builder
	TPCDSQuery   = tpcds.Query
)

// GenerateTPCDS builds a TPC-DS catalog at the given scale factor.
var GenerateTPCDS = tpcds.Generate

// SubmitJob is a convenience wrapper: it builds a JobSpec from a plan and
// metadata and runs it.
func SubmitJob(s *Service, meta JobMeta, root *Plan) (*JobResult, error) {
	return s.Run(context.Background(), JobSpec{Meta: meta, Root: root})
}

// SubmitBatch runs a batch of jobs with up to concurrency in flight
// (≤ 1 means one per CPU), returning results in submission order. Jobs in
// a batch coordinate view builds through the metadata service exactly as
// concurrently arriving production jobs do (§6.5). When jobs fail, the
// returned error joins every per-job failure (errors.Join) and the result
// slice keeps the successful jobs at their submission indexes.
func SubmitBatch(s *Service, specs []JobSpec, concurrency int) ([]*JobResult, error) {
	return s.RunBatch(context.Background(), specs, BatchOptions{Concurrency: concurrency})
}

// ---- Scripts -----------------------------------------------------------------

// ScriptParams binds recurring parameters (@day, …) for one instance;
// CompiledScript is a compiled script's plans.
type (
	ScriptParams   = script.Params
	CompiledScript = script.Compiled
)

// CompileScript compiles a SCOPE-like script (see package
// internal/script's doc comment for the grammar) against the catalog's
// current table versions. Scripts are recurring templates: recompiling
// with new parameter bindings yields plans with the same normalized but
// new precise signatures.
var CompileScript = script.Compile
