package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	e, p := setup(t)
	repo := NewRepository()
	for i := int64(0); i < 3; i++ {
		res, err := e.Run(p, "j", i)
		if err != nil {
			t.Fatal(err)
		}
		repo.Record(meta("job-"+string(rune('a'+i)), i), p, res)
	}

	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumJobs() != repo.NumJobs() {
		t.Errorf("jobs = %d, want %d", loaded.NumJobs(), repo.NumJobs())
	}
	a, b := repo.Observations(), loaded.Observations()
	if len(a) != len(b) {
		t.Fatalf("observations = %d, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].PreciseSig != b[i].PreciseSig || a[i].NormSig != b[i].NormSig {
			t.Fatalf("obs %d signature mismatch", i)
		}
		if a[i].Rows != b[i].Rows || a[i].CumulativeCost != b[i].CumulativeCost {
			t.Fatalf("obs %d stats mismatch", i)
		}
		if a[i].Job != b[i].Job {
			t.Fatalf("obs %d job meta mismatch", i)
		}
		if len(a[i].Inputs) != len(b[i].Inputs) {
			t.Fatalf("obs %d inputs mismatch", i)
		}
	}
	// The loaded repository supports the analyzer's queries.
	if got := len(loaded.Window(1, 2)); got != len(repo.Window(1, 2)) {
		t.Errorf("window query differs after load: %d", got)
	}
	if loaded.InputPeriods()["events"] != repo.InputPeriods()["events"] {
		t.Error("input periods differ after load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"Format":"something-else","Version":1}`,
		`{"Format":"cloudviews-workload","Version":99}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q) should fail", c)
		}
	}
	// Truncated observation stream.
	e, p := setup(t)
	repo := NewRepository()
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	repo.Record(meta("j", 0), p, res)
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.String()[:buf.Len()-10]
	if _, err := Load(strings.NewReader(trunc)); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestSaveEmptyRepository(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRepository().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumJobs() != 0 || len(loaded.Observations()) != 0 {
		t.Error("empty round trip not empty")
	}
}
