package workload

import (
	"reflect"
	"testing"
)

func obsFor(job string, instance int64, sig string) Observation {
	return Observation{
		Job:     JobMeta{JobID: job, Instance: instance, Period: 1},
		NormSig: sig,
		JobCPU:  100,
	}
}

// TestScanMatchesWindow pins Scan's streaming walk to the windowed copy it
// replaces for the analyzer.
func TestScanMatchesWindow(t *testing.T) {
	r := NewRepository()
	r.Append(
		obsFor("j1", 0, "a"),
		obsFor("j2", 1, "b"),
		obsFor("j3", 2, "a"),
		obsFor("j4", 3, "c"),
	)
	for _, win := range [][2]int64{{0, 3}, {1, 2}, {2, 2}, {5, 9}} {
		want := r.Window(win[0], win[1])
		var got []Observation
		r.Scan(win[0], win[1], func(o *Observation) {
			got = append(got, *o)
		})
		if !reflect.DeepEqual(want, got) {
			t.Errorf("window [%d,%d]: Scan = %v, Window = %v", win[0], win[1], got, want)
		}
	}
}

// TestSnapshotAliasesLiveStorage pins the zero-copy contract: Snapshot
// returns the repository's own slice, and a snapshot taken before more
// appends still sees a consistent generation.
func TestSnapshotAliasesLiveStorage(t *testing.T) {
	r := NewRepository()
	r.Append(obsFor("j1", 0, "a"), obsFor("j2", 0, "b"))
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	r.Append(obsFor("j3", 1, "c"))
	if len(snap) != 2 {
		t.Errorf("old snapshot grew to %d", len(snap))
	}
	if snap[0].Job.JobID != "j1" || snap[1].Job.JobID != "j2" {
		t.Errorf("old snapshot mutated: %v", snap)
	}
	if got := r.Snapshot(); len(got) != 3 {
		t.Errorf("new snapshot len = %d, want 3", len(got))
	}
}

// TestAppendBuildsJobRecords pins bulk ingestion: one summary job record
// per distinct job ID, in first-appearance order, with subgraph indexes
// and totals — matching what Load reconstructs.
func TestAppendBuildsJobRecords(t *testing.T) {
	r := NewRepository()
	o1 := obsFor("j1", 0, "a")
	o1.JobCPU, o1.JobLatency = 50, 7
	r.Append(o1, obsFor("j2", 0, "b"), obsFor("j1", 0, "c"))
	if r.NumJobs() != 2 {
		t.Fatalf("NumJobs = %d, want 2", r.NumJobs())
	}
	jobs := r.Jobs()
	if jobs[0].Meta.JobID != "j1" || jobs[1].Meta.JobID != "j2" {
		t.Fatalf("job order = %s, %s", jobs[0].Meta.JobID, jobs[1].Meta.JobID)
	}
	if jobs[0].CPU != 50 || jobs[0].Latency != 7 {
		t.Errorf("j1 totals = %v/%v, want 50/7", jobs[0].CPU, jobs[0].Latency)
	}
	if !reflect.DeepEqual(jobs[0].Subgraphs, []int{0, 2}) {
		t.Errorf("j1 subgraphs = %v, want [0 2]", jobs[0].Subgraphs)
	}
	if !reflect.DeepEqual(jobs[1].Subgraphs, []int{1}) {
		t.Errorf("j2 subgraphs = %v, want [1]", jobs[1].Subgraphs)
	}
	// A later batch extends an existing job's record instead of duplicating.
	r.Append(obsFor("j2", 1, "d"))
	jobs = r.Jobs()
	if r.NumJobs() != 2 || !reflect.DeepEqual(jobs[1].Subgraphs, []int{1, 3}) {
		t.Errorf("after second batch: jobs=%d j2 subgraphs=%v", r.NumJobs(), jobs[1].Subgraphs)
	}
}
