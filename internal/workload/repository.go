// Package workload implements the SCOPE workload repository and the
// feedback loop of paper §5.1: it joins compile-time query plans with the
// run-time statistics observed during execution, producing per-subgraph
// observations keyed by precise and normalized signature.
//
// The analyzer mines these observations to pick views; because every
// candidate has actually executed, its utility (runtime saved) and cost
// (bytes stored) are measured rather than estimated — the paper's answer
// to optimizer estimates being "often way off".
package workload

import (
	"sync"

	"cloudviews/internal/exec"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
)

// JobMeta describes one submitted job: identity, placement, and recurrence.
type JobMeta struct {
	JobID        string
	Cluster      string
	BusinessUnit string
	VC           string
	User         string
	// TemplateID names the recurring script template the job instantiates;
	// jobs from the same template share it across instances.
	TemplateID string
	// Instance is the recurring instance index (simulated time unit).
	Instance int64
	// Period is the template's recurrence period in instance units
	// (1 = every instance, 7 = weekly for daily instances, …). It drives
	// view-expiry lineage (§5.4).
	Period int64
	// SubmitOrder is the arrival position within the instance.
	SubmitOrder int
}

// Observation is one subgraph occurrence reconciled with its runtime
// statistics — the unit the feedback loop produces.
type Observation struct {
	Job        JobMeta
	PreciseSig string
	NormSig    string
	RootOp     plan.OpKind
	// Runtime statistics from the execution of this subgraph.
	Rows           int64
	Bytes          int64
	ExclusiveCost  float64
	CumulativeCost float64
	Latency        float64
	// JobCPU and JobLatency are the enclosing job's totals, for
	// view-to-query cost ratios (paper Figure 5d).
	JobCPU     float64
	JobLatency float64
	// Inputs are the logical tables the subgraph reads.
	Inputs []string
	// Props is the subgraph's derived output physical design (§5.3).
	Props plan.PhysicalProps
	// Ops is the operator count of the subgraph (view "size" in plan terms).
	Ops int
}

// JobRecord is one executed job with its plan and totals.
type JobRecord struct {
	Meta    JobMeta
	Root    *plan.Node
	CPU     float64
	Latency float64
	// Subgraphs are the job's observation indexes into the repository.
	Subgraphs []int
}

// Repository accumulates executed jobs and their subgraph observations.
// It is safe for concurrent Record/snapshot use.
type Repository struct {
	mu   sync.RWMutex
	jobs []*JobRecord
	obs  []Observation
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{}
}

// Record reconciles the compiled plan of a finished job with the runtime
// statistics of its execution, appending one observation per distinct
// non-transparent subgraph. This is the feedback-loop join: the executed
// data flow is linked back to the query tree node by node (§5.1).
func (r *Repository) Record(meta JobMeta, root *plan.Node, res *exec.Result) *JobRecord {
	comp := signature.NewComputer()
	subs := comp.AllSubgraphs(root)

	rec := &JobRecord{
		Meta:    meta,
		Root:    root,
		CPU:     res.TotalCPU,
		Latency: res.Latency,
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range subs {
		st, ok := res.NodeStats[s.Node]
		if !ok {
			// Node did not execute (should not happen for a completed
			// job); skip rather than fabricate statistics.
			continue
		}
		o := Observation{
			Job:            meta,
			PreciseSig:     s.Sig.Precise,
			NormSig:        s.Sig.Normalized,
			RootOp:         s.Node.Kind,
			Rows:           st.Rows,
			Bytes:          st.Bytes,
			ExclusiveCost:  st.ExclusiveCost,
			CumulativeCost: st.CumulativeCost,
			Latency:        st.Latency,
			JobCPU:         res.TotalCPU,
			JobLatency:     res.Latency,
			Inputs:         plan.Inputs(s.Node),
			Props:          plan.DeriveProps(s.Node),
			Ops:            plan.Count(s.Node),
		}
		rec.Subgraphs = append(rec.Subgraphs, len(r.obs))
		r.obs = append(r.obs, o)
	}
	r.jobs = append(r.jobs, rec)
	return rec
}

// Jobs returns a snapshot of all recorded jobs.
func (r *Repository) Jobs() []*JobRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*JobRecord(nil), r.jobs...)
}

// Observations returns a snapshot of all subgraph observations.
func (r *Repository) Observations() []Observation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Observation(nil), r.obs...)
}

// Window returns the observations of jobs whose instance index lies in
// [from, to] — the analyzer's time-window filter.
func (r *Repository) Window(from, to int64) []Observation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Observation
	for _, o := range r.obs {
		if o.Job.Instance >= from && o.Job.Instance <= to {
			out = append(out, o)
		}
	}
	return out
}

// Snapshot returns a zero-copy view of every observation recorded so far.
//
// Aliasing contract: the returned slice aliases repository-internal
// storage. Recorded observations are immutable — writers only ever append —
// so the snapshot is a stable, internally consistent generation that stays
// valid while Record keeps running; callers must treat it as read-only.
// This is what lets the analyzer's parallel fold run several passes over
// one consistent generation without copying hundreds of thousands of
// observations first.
func (r *Repository) Snapshot() []Observation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.obs
}

// Scan streams every observation whose job instance lies in [from, to] to
// fn, in record order, without materializing a windowed copy the way
// Window does. The *Observation handed to fn is owned by the repository
// (see Snapshot's aliasing contract): fn must not retain or mutate it
// past the call. Scan is safe to call concurrently, including from
// multiple analyzer workers folding the same window.
func (r *Repository) Scan(from, to int64, fn func(o *Observation)) {
	obs := r.Snapshot()
	for i := range obs {
		if o := &obs[i]; o.Job.Instance >= from && o.Job.Instance <= to {
			fn(o)
		}
	}
}

// Append ingests already-reconciled observations directly — the offline
// log-ingestion path: production workload repositories are populated from
// cluster telemetry as well as live Record calls, and the analyzer's
// large-workload tests and benchmarks build repositories the same way.
// Job records are reconstructed in summary form, one per distinct job ID
// in first-appearance order, exactly as Load does; plans are not part of
// an ingested observation.
func (r *Repository) Append(obs ...Observation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	byJob := make(map[string]*JobRecord, len(r.jobs))
	for _, rec := range r.jobs {
		byJob[rec.Meta.JobID] = rec
	}
	for _, o := range obs {
		idx := len(r.obs)
		r.obs = append(r.obs, o)
		rec, ok := byJob[o.Job.JobID]
		if !ok {
			rec = &JobRecord{Meta: o.Job, CPU: o.JobCPU, Latency: o.JobLatency}
			byJob[o.Job.JobID] = rec
			r.jobs = append(r.jobs, rec)
		}
		rec.Subgraphs = append(rec.Subgraphs, idx)
	}
}

// NumJobs returns the number of recorded jobs.
func (r *Repository) NumJobs() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.jobs)
}

// InputPeriods returns, per logical input, the longest recurrence period
// of any template reading it. The view-expiry heuristic of §5.4 uses this
// lineage: a view over an input also consumed by weekly jobs must outlive
// the week.
func (r *Repository) InputPeriods() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := map[string]int64{}
	for _, o := range r.obs {
		for _, in := range o.Inputs {
			if o.Job.Period > out[in] {
				out[in] = o.Job.Period
			}
		}
	}
	return out
}
