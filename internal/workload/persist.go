package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// persist.go makes the repository durable: observations stream out as
// JSON-lines and load back into a repository the analyzer can mine. This
// is how the production system works — the workload repository is durable
// cluster state, and the CloudViews analyzer is an offline tool that runs
// over it (§4, Figure 6) — and it lets the admin CLI analyze yesterday's
// history without re-executing anything.

// persistHeader identifies the stream format.
type persistHeader struct {
	Format  string
	Version int
}

const (
	persistFormat  = "cloudviews-workload"
	persistVersion = 1
)

// Save streams every observation to w as JSON lines, preceded by a header
// line. Plans are not persisted — signatures and statistics are what the
// analyzer needs; plans live with their jobs.
func (r *Repository) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(persistHeader{Format: persistFormat, Version: persistVersion}); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	r.mu.RLock()
	obs := append([]Observation(nil), r.obs...)
	r.mu.RUnlock()
	for i := range obs {
		if err := enc.Encode(&obs[i]); err != nil {
			return fmt.Errorf("workload: write observation %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Load reads a stream written by Save into a fresh repository. Job records
// are reconstructed in summary form (one per distinct job ID) so NumJobs
// and the analyzer's aggregates work; plans are not restored.
func Load(rd io.Reader) (*Repository, error) {
	dec := json.NewDecoder(bufio.NewReader(rd))
	var h persistHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("workload: read header: %w", err)
	}
	if h.Format != persistFormat {
		return nil, fmt.Errorf("workload: not a workload stream (format %q)", h.Format)
	}
	if h.Version != persistVersion {
		return nil, fmt.Errorf("workload: unsupported version %d", h.Version)
	}
	repo := NewRepository()
	var obs []Observation
	for {
		var o Observation
		if err := dec.Decode(&o); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: read observation: %w", err)
		}
		obs = append(obs, o)
	}
	repo.Append(obs...)
	return repo, nil
}
