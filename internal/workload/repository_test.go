package workload

import (
	"testing"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

func setup(t *testing.T) (*exec.Executor, *plan.Node) {
	t.Helper()
	cat := catalog.New()
	sch := data.Schema{{Name: "k", Kind: data.KindInt}, {Name: "v", Kind: data.KindFloat}}
	tab := data.NewTable("events", "g1", sch, 2)
	data.NewGenerator(1).Fill(tab, 100, 10)
	cat.Register(tab)
	e := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	p := plan.Scan("events", "g1", sch).
		Filter(expr.B(expr.OpGe, expr.C(0, "k"), expr.Lit(data.Int(2)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 1}}).
		Output("o")
	return e, p
}

func meta(job string, instance int64) JobMeta {
	return JobMeta{
		JobID: job, Cluster: "c1", BusinessUnit: "bu1", VC: "vc1",
		User: "u1", TemplateID: "tpl1", Instance: instance, Period: 1,
	}
}

func TestRecordReconcilesPlanWithStats(t *testing.T) {
	e, p := setup(t)
	res, err := e.Run(p, "j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewRepository()
	rec := repo.Record(meta("j1", 0), p, res)

	if repo.NumJobs() != 1 {
		t.Fatalf("NumJobs = %d", repo.NumJobs())
	}
	obs := repo.Observations()
	if len(obs) != 5 { // scan, filter, exchange, agg, output
		t.Fatalf("observations = %d, want 5", len(obs))
	}
	if len(rec.Subgraphs) != 5 {
		t.Errorf("job record subgraphs = %d", len(rec.Subgraphs))
	}
	// Every observation carries real runtime stats and correct identity.
	comp := signature.NewComputer()
	bySig := map[string]Observation{}
	for _, o := range obs {
		if o.ExclusiveCost <= 0 {
			t.Errorf("observation %v has no cost", o.RootOp)
		}
		if o.Job.JobID != "j1" {
			t.Errorf("job meta lost: %+v", o.Job)
		}
		bySig[o.PreciseSig] = o
	}
	// The filter subgraph's observation matches its freshly computed sig
	// and its executed cardinality.
	filterNode := p.Children[0].Children[0].Children[0]
	if filterNode.Kind != plan.OpFilter {
		t.Fatalf("test walked to %v", filterNode.Kind)
	}
	sig := comp.Of(filterNode)
	o, ok := bySig[sig.Precise]
	if !ok {
		t.Fatal("filter observation missing")
	}
	if o.Rows != res.NodeStats[filterNode].Rows {
		t.Errorf("rows %d != executed %d", o.Rows, res.NodeStats[filterNode].Rows)
	}
	if o.RootOp != plan.OpFilter {
		t.Errorf("root op = %v", o.RootOp)
	}
	if len(o.Inputs) != 1 || o.Inputs[0] != "events" {
		t.Errorf("inputs = %v", o.Inputs)
	}
}

func TestWindowFilter(t *testing.T) {
	e, p := setup(t)
	repo := NewRepository()
	for i := int64(0); i < 3; i++ {
		res, err := e.Run(p, "j", i)
		if err != nil {
			t.Fatal(err)
		}
		repo.Record(meta("j", i), p, res)
	}
	if got := len(repo.Window(1, 2)); got != 10 {
		t.Errorf("window obs = %d, want 10", got)
	}
	if got := len(repo.Window(5, 9)); got != 0 {
		t.Errorf("empty window obs = %d", got)
	}
	if got := len(repo.Jobs()); got != 3 {
		t.Errorf("jobs = %d", got)
	}
}

func TestSameTemplateSharesNormalizedSigAcrossInstances(t *testing.T) {
	// Two instances of the same template over different GUIDs must yield
	// observations with equal normalized but distinct precise signatures.
	cat := catalog.New()
	sch := data.Schema{{Name: "k", Kind: data.KindInt}}
	tab := data.NewTable("t", "g1", sch, 1)
	data.NewGenerator(2).Fill(tab, 10, 5)
	cat.Register(tab)
	e := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	repo := NewRepository()

	mk := func(guid string) *plan.Node {
		return plan.Scan("t", guid, sch).
			Filter(expr.B(expr.OpGt, expr.C(0, "k"), expr.Lit(data.Int(1)))).
			Output("o")
	}
	p1 := mk("g1")
	res1, err := e.Run(p1, "j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	repo.Record(meta("j1", 0), p1, res1)

	if err := cat.Deliver("t", "g2", func(nt *data.Table) {
		data.NewGenerator(3).Fill(nt, 10, 5)
	}); err != nil {
		t.Fatal(err)
	}
	p2 := mk("g2")
	res2, err := e.Run(p2, "j2", 1)
	if err != nil {
		t.Fatal(err)
	}
	repo.Record(meta("j2", 1), p2, res2)

	obs := repo.Observations()
	byNorm := map[string][]Observation{}
	for _, o := range obs {
		byNorm[o.NormSig] = append(byNorm[o.NormSig], o)
	}
	// Each of the 3 subgraph shapes appears twice under one normalized sig.
	if len(byNorm) != 3 {
		t.Fatalf("distinct normalized sigs = %d, want 3", len(byNorm))
	}
	for sig, group := range byNorm {
		if len(group) != 2 {
			t.Errorf("norm sig %s has %d occurrences, want 2", sig, len(group))
		}
		if group[0].PreciseSig == group[1].PreciseSig {
			t.Errorf("instances share precise sig for %s", sig)
		}
	}
}

func TestInputPeriods(t *testing.T) {
	e, p := setup(t)
	repo := NewRepository()
	res, err := e.Run(p, "daily", 0)
	if err != nil {
		t.Fatal(err)
	}
	m1 := meta("daily", 0)
	repo.Record(m1, p, res)
	m2 := meta("weekly", 0)
	m2.Period = 7
	res2, err := e.Run(p, "weekly", 0)
	if err != nil {
		t.Fatal(err)
	}
	repo.Record(m2, p, res2)
	periods := repo.InputPeriods()
	if periods["events"] != 7 {
		t.Errorf("events period = %d, want 7 (longest consumer)", periods["events"])
	}
}
