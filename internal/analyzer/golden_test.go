package analyzer

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"cloudviews/internal/plan"
	"cloudviews/internal/workgen"
	"cloudviews/internal/workload"
)

// forceWorkers raises GOMAXPROCS for the duration of the test so the
// multi-worker fold and merge paths run even on a single-CPU machine —
// goroutines still interleave, so the concurrent shape is real.
func forceWorkers(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// goldenProfiles are three workload shapes spanning the overlap spectrum:
// the default mid-overlap cluster, a bespoke low-overlap cluster, and a
// clone-heavy duplicate-ridden one.
func goldenProfiles() []workgen.Profile {
	p1 := workgen.DefaultProfile("gold1", 11)
	p2 := workgen.DefaultProfile("gold2", 22)
	p2.CloneRate = 0.15
	p2.UniqueInputRate = 0.9
	p2.Templates = 60
	p3 := workgen.DefaultProfile("gold3", 33)
	p3.CloneRate = 0.9
	p3.DuplicateJobRate = 0.3
	p3.Templates = 80
	return []workgen.Profile{p1, p2, p3}
}

func goldenRepo(t testing.TB, p workgen.Profile, minObs int) *workload.Repository {
	t.Helper()
	obs := workgen.Generate(p).SyntheticUntil(minObs)
	if len(obs) < minObs {
		t.Fatalf("profile %s: generated %d observations, want >= %d", p.Name, len(obs), minObs)
	}
	repo := workload.NewRepository()
	repo.Append(obs...)
	return repo
}

// goldenConfigs exercises every Strategy and every admin knob, including
// the combinations that steer selectViews between the bounded heap and the
// full sort, scoped runs, windowed runs, and the estimates ablation.
func goldenConfigs(cluster string) []Config {
	return []Config{
		{},
		{Strategy: TopKUtility, TopK: 5},
		{Strategy: TopKUtility, TopK: 5, MaxPerJob: 1},
		{Strategy: TopKUtilityPerByte, TopK: 8},
		{Strategy: TopKUtilityPerByte, TopK: 8, MaxPerJob: 1},
		{Strategy: TopKUtilityPerByte},
		{Strategy: PackStorageBudget, TopK: 6},
		{Strategy: PackStorageBudget, TopK: 6, StorageBudget: 1 << 22},
		{Strategy: PackStorageBudget, StorageBudget: 1 << 21},
		{Strategy: PackStorageBudgetOptimal, StorageBudget: 1 << 21},
		{MinFrequency: 3, MinCostRatio: 0.05, MinRuntime: 10, TopK: 10, Strategy: TopKUtilityPerByte},
		{WindowFrom: 1, WindowTo: 3},
		{VCs: []string{"bu1_vc0", "bu2_vc1"}, Strategy: TopKUtilityPerByte, TopK: 4},
		{Clusters: []string{cluster}, BusinessUnits: []string{"bu0", "bu3"}},
		{UseEstimates: true, EstimateCost: func(o workload.Observation) float64 { return float64(o.Rows) * 0.5 }},
	}
}

// TestAnalyzerGolden pins the parallel sharded pipeline to the serial
// reference: for every profile and config, Analyze must equal Serial on
// every field — candidate order, selection, annotations, job order, and
// every float bit in between.
func TestAnalyzerGolden(t *testing.T) {
	forceWorkers(t)
	for pi, p := range goldenProfiles() {
		minObs := 6000
		if pi == 0 {
			// One profile comfortably above minParallelObs even after
			// windowing, so the multi-worker path is really exercised.
			minObs = 12000
		}
		repo := goldenRepo(t, p, minObs)
		a := New(repo)
		for ci, cfg := range goldenConfigs(p.Name) {
			want := a.Serial(cfg)
			got := a.Analyze(cfg)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("profile %s config %d: parallel Analyze diverges from Serial\nserial:   %+v\nparallel: %+v",
					p.Name, ci, summary(want), summary(got))
			}
		}
	}
}

func summary(an *Analysis) string {
	return fmt.Sprintf("jobs=%d subs=%d cands=%d selected=%d anns=%d order=%v",
		an.TotalJobs, an.TotalSubgraphs, len(an.Candidates), len(an.Selected),
		len(an.Annotations), an.JobOrder)
}

// TestOverlapStatsGolden pins the sharded statistics fold to the serial
// reference over the same profile/config matrix, plus the public
// ComputeOverlapStats entry point and the empty input.
func TestOverlapStatsGolden(t *testing.T) {
	forceWorkers(t)
	for _, p := range goldenProfiles() {
		repo := goldenRepo(t, p, 6000)
		a := New(repo)
		for ci, cfg := range goldenConfigs(p.Name) {
			from, to := analysisWindow(cfg)
			want := computeOverlapStatsSerial(filterScope(repo.Window(from, to), cfg))
			got := a.OverlapStats(cfg)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("profile %s config %d: sharded OverlapStats diverges from serial", p.Name, ci)
			}
		}
		obs := repo.Observations()
		if want, got := computeOverlapStatsSerial(obs), ComputeOverlapStats(obs); !reflect.DeepEqual(want, got) {
			t.Errorf("profile %s: ComputeOverlapStats diverges from serial", p.Name)
		}
	}
	if want, got := computeOverlapStatsSerial(nil), ComputeOverlapStats(nil); !reflect.DeepEqual(want, got) {
		t.Errorf("empty input: ComputeOverlapStats = %+v, serial = %+v", got, want)
	}
}

// TestAnalyzerConcurrent runs Analyze and OverlapStats from several
// goroutines while Append keeps growing the repository — the race-detector
// companion to the Snapshot aliasing contract.
func TestAnalyzerConcurrent(t *testing.T) {
	forceWorkers(t)
	p := workgen.DefaultProfile("conc", 7)
	obs := workgen.Generate(p).SyntheticUntil(9000)
	repo := workload.NewRepository()
	repo.Append(obs[:4500]...)
	a := New(repo)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 4500; i < len(obs); i += 500 {
			end := i + 500
			if end > len(obs) {
				end = len(obs)
			}
			repo.Append(obs[i:end]...)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := Config{Strategy: Strategy(g % 3), TopK: 5 + g}
			for i := 0; i < 3; i++ {
				an := a.Analyze(cfg)
				if an.TotalSubgraphs < 4500 {
					t.Errorf("goroutine %d: analysis saw %d subgraphs, want >= 4500", g, an.TotalSubgraphs)
				}
				st := a.OverlapStats(cfg)
				if st.TotalOccurrences < 4500 {
					t.Errorf("goroutine %d: stats saw %d occurrences, want >= 4500", g, st.TotalOccurrences)
				}
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles the result must match a serial run over the
	// complete repository.
	cfg := Config{Strategy: TopKUtilityPerByte, TopK: 10}
	if want, got := a.Serial(cfg), a.Analyze(cfg); !reflect.DeepEqual(want, got) {
		t.Errorf("post-concurrency analysis diverges from serial")
	}
}

// TestTopKByDensity pins the bounded heap against the full sort it
// replaces, across random pools and every cut point.
func TestTopKByDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		pool := make([]Candidate, n)
		for i := range pool {
			pool[i] = Candidate{
				NormSig:  fmt.Sprintf("sig%04d", rng.Intn(1000)),
				Utility:  float64(rng.Intn(50)), // duplicates force tie-breaks
				AvgBytes: float64(rng.Intn(5)),  // zeros hit the bytes<=0 branch
			}
		}
		want := append([]Candidate(nil), pool...)
		sort.Slice(want, func(i, j int) bool { return denseBefore(want[i], want[j]) })
		k := 1 + rng.Intn(n+2)
		if k < len(want) {
			want = want[:k]
		}
		got := topKByDensity(append([]Candidate(nil), pool...), k)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (n=%d k=%d): heap top-k != sort prefix\nwant %v\ngot  %v", trial, n, k, want, got)
		}
	}
}

// TestDesignKeyReference pins the append-based designKey to the fmt format
// it replaced — election tie-breaks compare these strings.
func TestDesignKeyReference(t *testing.T) {
	cases := []plan.PhysicalProps{
		{},
		{Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0, 3}, Count: 16}},
		{Part: plan.Partitioning{Kind: plan.PartRange, Cols: []int{2}, Count: 8},
			Sort: plan.SortOrder{Cols: []int{2, 1}, Desc: []bool{true, false}}},
		{Sort: plan.SortOrder{Cols: []int{0}, Desc: []bool{false}}},
	}
	for _, p := range cases {
		want := fmt.Sprintf("%v|%v|%d|%v|%v", p.Part.Kind, p.Part.Cols, p.Part.Count, p.Sort.Cols, p.Sort.Desc)
		if got := designKey(p); got != want {
			t.Errorf("designKey(%+v) = %q, want %q", p, got, want)
		}
	}
}

// TestFilterScopeAliasing pins filterScope's zero-copy fast path: an
// unscoped config returns the input slice itself, a scoped one a fresh
// slice.
func TestFilterScopeAliasing(t *testing.T) {
	obs := []workload.Observation{
		{Job: workload.JobMeta{JobID: "a", VC: "vc1"}},
		{Job: workload.JobMeta{JobID: "b", VC: "vc2"}},
	}
	if got := filterScope(obs, Config{}); len(got) != 2 || &got[0] != &obs[0] {
		t.Errorf("unscoped filterScope should alias its input")
	}
	got := filterScope(obs, Config{VCs: []string{"vc2"}})
	if len(got) != 1 || got[0].Job.JobID != "b" {
		t.Fatalf("scoped filterScope = %v", got)
	}
	if &got[0] == &obs[0] || &got[0] == &obs[1] {
		t.Errorf("scoped filterScope must copy")
	}
}
