package analyzer

import (
	"testing"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/expr"
	"cloudviews/internal/metadata"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
	"cloudviews/internal/workload"
)

func logSchema() data.Schema {
	return data.Schema{
		{Name: "uid", Kind: data.KindInt},
		{Name: "page", Kind: data.KindString},
		{Name: "dur", Kind: data.KindFloat},
	}
}

func dimSchema() data.Schema {
	return data.Schema{
		{Name: "id", Kind: data.KindInt},
		{Name: "grp", Kind: data.KindString},
	}
}

type fixture struct {
	repo *workload.Repository
	ex   *exec.Executor
	// sharedAggSig is the signature of the pipeline shared by tplA/tplB.
	sharedAgg signature.Signature
}

// sharedPipeline is the subgraph that overlaps across templates A and B.
func sharedPipeline() *plan.Node {
	return plan.Scan("logs", "g1", logSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "dur"), expr.Lit(data.Float(50)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 2}})
}

func buildFixture(t testing.TB) *fixture {
	t.Helper()
	cat := catalog.New()
	logs := data.NewTable("logs", "g1", logSchema(), 4)
	data.NewGenerator(5).Fill(logs, 600, 40)
	dims := data.NewTable("dims", "d1", dimSchema(), 2)
	data.NewGenerator(6).Fill(dims, 40, 40)
	misc := data.NewTable("misc", "m1", dimSchema(), 2)
	data.NewGenerator(7).Fill(misc, 40, 40)
	cat.Register(logs)
	cat.Register(dims)
	cat.Register(misc)
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	repo := workload.NewRepository()

	run := func(job, user, vc, tpl string, period int64, root *plan.Node) {
		t.Helper()
		res, err := ex.Run(root, job, 0)
		if err != nil {
			t.Fatal(err)
		}
		repo.Record(workload.JobMeta{
			JobID: job, Cluster: "c1", BusinessUnit: "bu1", VC: vc,
			User: user, TemplateID: tpl, Instance: 0, Period: period,
		}, root, res)
	}

	// Template A appears twice (j1, j4); template B shares A's pipeline
	// as a subgraph (j2); template C is disjoint (j3).
	run("j1", "u1", "vc1", "tplA", 1, sharedPipeline().Output("a"))
	run("j2", "u2", "vc1", "tplB", 7, sharedPipeline().
		HashJoin(plan.Scan("dims", "d1", dimSchema()), []int{0}, []int{0}).
		Output("b"))
	run("j3", "u3", "vc2", "tplC", 1, plan.Scan("misc", "m1", dimSchema()).
		Sort([]int{0}, nil).Output("c"))
	run("j4", "u1", "vc1", "tplA", 1, sharedPipeline().Output("a"))

	return &fixture{repo: repo, ex: ex, sharedAgg: signature.Of(sharedPipeline())}
}

func TestAnalyzeFindsOverlappingCandidates(t *testing.T) {
	f := buildFixture(t)
	an := New(f.repo).Analyze(Config{MinFrequency: 2})
	if an.TotalJobs != 4 {
		t.Errorf("TotalJobs = %d", an.TotalJobs)
	}
	byName := map[string]Candidate{}
	for _, c := range an.Candidates {
		byName[c.NormSig] = c
	}
	agg, ok := byName[f.sharedAgg.Normalized]
	if !ok {
		t.Fatal("shared agg pipeline not found as candidate")
	}
	if agg.Frequency != 3 { // j1, j2, j4
		t.Errorf("frequency = %d, want 3", agg.Frequency)
	}
	if agg.JobCount != 3 || agg.UserCount != 2 {
		t.Errorf("jobs=%d users=%d, want 3/2", agg.JobCount, agg.UserCount)
	}
	if agg.RootOp != plan.OpHashGbAgg {
		t.Errorf("root op = %v", agg.RootOp)
	}
	if agg.AvgCost <= 0 || agg.AvgLatency <= 0 || agg.AvgRows <= 0 {
		t.Errorf("missing measured stats: %+v", agg)
	}
	saving := agg.AvgCost - agg.ReadCost
	if agg.Utility <= 0 || agg.Utility != float64(agg.Frequency-1)*saving {
		t.Errorf("utility = %f, want (freq-1)*(avgCost-readCost) = %f",
			agg.Utility, float64(agg.Frequency-1)*saving)
	}
	if agg.CostRatio <= 0 || agg.CostRatio > 1 {
		t.Errorf("cost ratio = %f", agg.CostRatio)
	}
	// j3's sort pipeline appears once -> not a candidate.
	for _, c := range an.Candidates {
		if c.RootOp == plan.OpSort {
			t.Error("non-overlapping subgraph selected as candidate")
		}
	}
	// Candidates sorted by utility descending.
	for i := 1; i < len(an.Candidates); i++ {
		if an.Candidates[i-1].Utility < an.Candidates[i].Utility {
			t.Error("candidates not utility-sorted")
		}
	}
}

func TestSelectionFilters(t *testing.T) {
	f := buildFixture(t)
	a := New(f.repo)

	// Frequency filter: demanding 4+ occurrences of cross-template overlap
	// leaves only subgraphs occurring in all three A/B jobs... none have 4.
	an := a.Analyze(Config{MinFrequency: 4})
	if len(an.Selected) != 0 {
		t.Errorf("freq>=4 selected %d", len(an.Selected))
	}

	// Cost-ratio filter: 99% of job cost excludes everything.
	an = a.Analyze(Config{MinFrequency: 2, MinCostRatio: 0.99})
	if len(an.Selected) != 0 {
		t.Errorf("ratio>=0.99 selected %d", len(an.Selected))
	}

	// Extract-rooted overlaps are never selected even though scans of
	// "logs" appear in 3 jobs.
	an = a.Analyze(Config{MinFrequency: 2})
	for _, c := range an.Selected {
		if c.RootOp == plan.OpExtract || c.RootOp == plan.OpOutput {
			t.Errorf("selected unmaterializable root %v", c.RootOp)
		}
	}
	if len(an.Selected) == 0 {
		t.Fatal("default config selected nothing")
	}
}

func TestTopKAndMaxPerJob(t *testing.T) {
	f := buildFixture(t)
	a := New(f.repo)
	an := a.Analyze(Config{MinFrequency: 2, TopK: 1})
	if len(an.Selected) != 1 {
		t.Fatalf("topK=1 selected %d", len(an.Selected))
	}
	// The single selection must be the highest-utility candidate that
	// passes filters.
	best := an.Selected[0]
	an2 := a.Analyze(Config{MinFrequency: 2})
	if len(an2.Selected) <= 1 {
		t.Skip("fixture yields a single selectable candidate")
	}
	if best.Utility < an2.Selected[1].Utility {
		t.Error("topK did not pick by utility")
	}

	// MaxPerJob=1: all shared subgraphs live in the same jobs (j1/j2/j4),
	// so only one gets selected.
	an3 := a.Analyze(Config{MinFrequency: 2, MaxPerJob: 1})
	if len(an3.Selected) != 1 {
		t.Errorf("maxPerJob=1 selected %d", len(an3.Selected))
	}
}

func TestStorageBudgetPacking(t *testing.T) {
	f := buildFixture(t)
	a := New(f.repo)
	full := a.Analyze(Config{MinFrequency: 2, Strategy: PackStorageBudget, StorageBudget: 1 << 40})
	if len(full.Selected) == 0 {
		t.Fatal("unbounded budget selected nothing")
	}
	var totalBytes int64
	for _, c := range full.Selected {
		totalBytes += int64(c.AvgBytes)
	}
	// A budget below the full footprint must select fewer views and stay
	// within budget.
	budget := totalBytes - 1
	capped := a.Analyze(Config{MinFrequency: 2, Strategy: PackStorageBudget, StorageBudget: budget})
	if len(capped.Selected) >= len(full.Selected) {
		t.Errorf("capped selected %d, full %d", len(capped.Selected), len(full.Selected))
	}
	var used int64
	for _, c := range capped.Selected {
		used += int64(c.AvgBytes)
	}
	if used > budget {
		t.Errorf("packing exceeded budget: %d > %d", used, budget)
	}
}

func TestExpiryFromLineage(t *testing.T) {
	f := buildFixture(t)
	an := New(f.repo).Analyze(Config{MinFrequency: 2})
	// The shared pipeline reads "logs", which template B (weekly,
	// period 7) also consumes: expiry must cover the weekly consumer.
	for _, c := range an.Selected {
		if c.NormSig == f.sharedAgg.Normalized {
			if c.ExpiryDelta != 8 { // max period 7 + 1 slack
				t.Errorf("expiry = %d, want 8", c.ExpiryDelta)
			}
			return
		}
	}
	// If the shared agg was not selected, check it among candidates.
	for _, c := range an.Candidates {
		if c.NormSig == f.sharedAgg.Normalized && c.ExpiryDelta != 8 {
			t.Errorf("expiry = %d, want 8", c.ExpiryDelta)
		}
	}
}

func TestAnnotationsFeedMetadataService(t *testing.T) {
	f := buildFixture(t)
	an := New(f.repo).Analyze(Config{MinFrequency: 2, TopK: 2})
	if len(an.Annotations) != len(an.Selected) {
		t.Fatal("annotation count mismatch")
	}
	ms := metadata.NewService()
	ms.LoadAnalysis(an.Annotations)
	// Jobs reading "logs" must discover the shared-pipeline annotation
	// via the inverted index.
	rel := ms.RelevantViews("vc1", []string{"logs"})
	found := false
	for _, r := range rel {
		if r.NormSig == f.sharedAgg.Normalized {
			found = true
			if r.AvgRuntime <= 0 {
				t.Error("annotation lost mined runtime")
			}
			if r.ExpiryDelta != 8 {
				t.Errorf("annotation expiry = %d", r.ExpiryDelta)
			}
		}
	}
	if !found {
		t.Error("inverted index lookup missed the shared pipeline")
	}
	// Template tags work too.
	if len(ms.RelevantViews("vc1", []string{"tplA"})) == 0 {
		t.Error("template tag lookup missed")
	}
}

func TestCoordinationOrder(t *testing.T) {
	f := buildFixture(t)
	an := New(f.repo).Analyze(Config{MinFrequency: 2, TopK: 1})
	if len(an.JobOrder) == 0 {
		t.Fatal("no job order produced")
	}
	// The builder must be one of the jobs containing the selected view,
	// specifically the one with the smallest runtime.
	sel := an.Selected[0]
	jobRuntime := map[string]float64{}
	for _, o := range f.repo.Observations() {
		if o.JobLatency > jobRuntime[o.Job.JobID] {
			jobRuntime[o.Job.JobID] = o.JobLatency
		}
	}
	best := ""
	for _, j := range sel.Jobs {
		if best == "" || jobRuntime[j] < jobRuntime[best] {
			best = j
		}
	}
	if an.JobOrder[0] != best {
		t.Errorf("builder = %s, want shortest job %s", an.JobOrder[0], best)
	}
}

func TestWindowAndScopeFilters(t *testing.T) {
	f := buildFixture(t)
	a := New(f.repo)
	// Out-of-window analysis sees nothing.
	an := a.Analyze(Config{WindowFrom: 5, WindowTo: 9, MinFrequency: 2})
	if an.TotalJobs != 0 || len(an.Candidates) != 0 {
		t.Errorf("out-of-window: jobs=%d cands=%d", an.TotalJobs, len(an.Candidates))
	}
	// VC filter: vc2 only contains the disjoint job.
	an = a.Analyze(Config{VCs: []string{"vc2"}, MinFrequency: 2})
	if len(an.Candidates) != 0 {
		t.Errorf("vc2 candidates = %d", len(an.Candidates))
	}
	// Cluster filter for an unknown cluster sees nothing.
	an = a.Analyze(Config{Clusters: []string{"nope"}, MinFrequency: 2})
	if an.TotalJobs != 0 {
		t.Error("unknown cluster should see no jobs")
	}
}

func TestElectDesignPopularityAndMultiDesign(t *testing.T) {
	hash4 := plan.PhysicalProps{Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0}, Count: 4}}
	hash8 := plan.PhysicalProps{Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{1}, Count: 8}}
	obs := []workload.Observation{
		{Props: hash4}, {Props: hash4}, {Props: hash8},
	}
	props, multi := electDesign(obs)
	if !multi {
		t.Error("multi-design not flagged")
	}
	if props.Part.Count != 4 {
		t.Errorf("elected %+v, want the popular hash4", props.Part)
	}
	// Single design: not multi.
	props, multi = electDesign(obs[:2])
	if multi || props.Part.Count != 4 {
		t.Errorf("single design wrong: %+v %v", props, multi)
	}
}

func TestUseEstimatesAblationChangesUtility(t *testing.T) {
	f := buildFixture(t)
	a := New(f.repo)
	measured := a.Analyze(Config{MinFrequency: 2})
	// A deliberately broken estimator that inverts costs.
	estimated := a.Analyze(Config{
		MinFrequency: 2,
		UseEstimates: true,
		EstimateCost: func(o workload.Observation) float64 {
			return 1e6 / (o.CumulativeCost + 1)
		},
	})
	if len(measured.Candidates) == 0 || len(estimated.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if measured.Candidates[0].NormSig == estimated.Candidates[0].NormSig &&
		measured.Candidates[0].Utility == estimated.Candidates[0].Utility {
		t.Error("estimate ablation had no effect on ranking")
	}
}

func TestOverlapStats(t *testing.T) {
	f := buildFixture(t)
	st := New(f.repo).OverlapStats(Config{})
	if st.TotalJobs != 4 || st.TotalUsers != 3 {
		t.Errorf("jobs=%d users=%d", st.TotalJobs, st.TotalUsers)
	}
	// j1, j2, j4 overlap; j3 does not: 75% of jobs.
	if st.PctJobsOverlapping != 75 {
		t.Errorf("PctJobsOverlapping = %.1f, want 75", st.PctJobsOverlapping)
	}
	// u1, u2 overlap; u3 does not.
	if st.PctUsersOverlapping < 66 || st.PctUsersOverlapping > 67 {
		t.Errorf("PctUsersOverlapping = %.1f", st.PctUsersOverlapping)
	}
	if st.PctSubgraphsOverlapping <= 0 {
		t.Error("no subgraph overlap measured")
	}
	// vc1 has all overlapping jobs, vc2 none.
	if st.VCJobOverlapPct["vc1"] != 100 || st.VCJobOverlapPct["vc2"] != 0 {
		t.Errorf("VC overlap = %v", st.VCJobOverlapPct)
	}
	// The agg operator is among the overlapping roots.
	if st.OperatorPct[plan.OpHashGbAgg] <= 0 {
		t.Errorf("operator breakdown = %v", st.OperatorPct)
	}
	// Percentages sum to ~100.
	var sum float64
	for _, p := range st.OperatorPct {
		sum += p
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("operator pct sum = %.2f", sum)
	}
	if st.AvgFrequency < 2 {
		t.Errorf("avg frequency = %.2f", st.AvgFrequency)
	}
	if len(st.Frequencies) == 0 || len(st.Runtimes) == 0 || len(st.CostRatios) == 0 {
		t.Error("missing figure-5 distributions")
	}
	// Empty workload edge case.
	empty := ComputeOverlapStats(nil)
	if empty.TotalJobs != 0 || empty.PctJobsOverlapping != 0 {
		t.Error("empty stats wrong")
	}
}
