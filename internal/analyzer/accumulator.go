package analyzer

import (
	"sort"

	"cloudviews/internal/exec"
	"cloudviews/internal/plan"
	"cloudviews/internal/workload"
)

// candidateAccumulator folds one normalized signature's occurrences into
// running statistics, replacing the serial walk's materialized observation
// group. Most signatures never overlap, so the accumulator starts as a
// single pending pointer into the repository snapshot and only allocates
// its maps when a second occurrence proves the signature is a candidate:
// peak memory scales with the number of candidates, not observations.
type candidateAccumulator struct {
	// first is the pending singleton occurrence; nil once promoted.
	first  *workload.Observation
	freq   int
	rootOp plan.OpKind
	// Running sums, folded in repository record order so the final
	// averages are bit-identical to the serial group fold.
	cost, lat, rows, bytes, ratio float64
	jobs, users, inputs, tags     map[string]bool
	designs                       map[string]*designTally
}

// fold adds one occurrence. The first occurrence is merely parked; the
// second promotes the accumulator, folding the parked observation before
// the current one so the sum order stays the record order.
func (a *candidateAccumulator) fold(o *workload.Observation, cfg *Config) {
	a.freq++
	if a.freq == 1 {
		a.first = o
		return
	}
	if f := a.first; f != nil {
		a.first = nil
		a.rootOp = f.RootOp
		a.jobs = map[string]bool{}
		a.users = map[string]bool{}
		a.inputs = map[string]bool{}
		a.tags = map[string]bool{}
		a.designs = map[string]*designTally{}
		a.foldObs(f, cfg)
	}
	a.foldObs(o, cfg)
}

// foldObs is the per-occurrence fold body — the exact statement sequence
// of the serial aggregate loop.
func (a *candidateAccumulator) foldObs(o *workload.Observation, cfg *Config) {
	a.jobs[o.Job.JobID] = true
	a.users[o.Job.User] = true
	for _, in := range o.Inputs {
		a.inputs[in] = true
		a.tags[in] = true
	}
	a.tags[o.Job.TemplateID] = true
	oc := o.CumulativeCost
	if cfg.UseEstimates && cfg.EstimateCost != nil {
		oc = cfg.EstimateCost(*o)
	}
	a.cost += oc
	a.lat += o.Latency
	a.rows += float64(o.Rows)
	a.bytes += float64(o.Bytes)
	if o.JobCPU > 0 {
		a.ratio += oc / o.JobCPU
	}
	tallyDesign(a.designs, o.Props)
}

// finalize renders the accumulated statistics as a Candidate, mirroring
// the serial aggregate's per-group epilogue. Only promoted accumulators
// (freq ≥ 2) may be finalized.
func (a *candidateAccumulator) finalize(sig string, periods map[string]int64) Candidate {
	c := Candidate{NormSig: sig, Frequency: a.freq, RootOp: a.rootOp}
	n := float64(a.freq)
	c.AvgCost = a.cost / n
	c.AvgLatency = a.lat / n
	c.AvgRuntime = c.AvgLatency
	c.AvgRows = a.rows / n
	c.AvgBytes = a.bytes / n
	c.CostRatio = a.ratio / n
	c.ReadCost = exec.OperatorCost(plan.OpViewScan, 0, int64(c.AvgRows), int64(c.AvgBytes))
	saving := c.AvgCost - c.ReadCost
	if saving < 0 {
		saving = 0
	}
	c.Utility = float64(c.Frequency-1) * saving
	c.JobCount = len(a.jobs)
	c.UserCount = len(a.users)
	c.Jobs = sortedKeys(a.jobs)
	c.Inputs = sortedKeys(a.inputs)
	c.Tags = sortedKeys(a.tags)
	c.Props, c.MultiDesign = electFromTally(a.designs)
	c.ExpiryDelta = expiryFromLineage(c.Inputs, periods)
	return c
}

// aggregateSharded mines candidates from the snapshot in parallel: each
// worker walks the full snapshot in record order, folds the observations
// whose shard it owns into per-signature accumulators, and finalizes its
// overlaps. Because a signature's every occurrence hashes to one shard and
// shard ranges partition the shard space, each signature is folded by
// exactly one worker in record order — the serial fold order — and the
// merged, utility-sorted candidate list is byte-identical to the serial
// aggregate. Also returns the distinct-job and in-scope observation counts
// the workers tally for free along the way.
func aggregateSharded(obs []workload.Observation, shards []uint8, periods map[string]int64, cfg Config) (cands []Candidate, totalJobs, totalSubgraphs int) {
	workers := foldWorkers(len(obs))
	type workerOut struct {
		cands []Candidate
		jobs  map[string]bool
		count int
	}
	outs := make([]workerOut, workers)
	runWorkers(workers, func(w int) {
		lo, hi := workerShardRange(w, workers)
		accs := map[string]*candidateAccumulator{}
		jobs := map[string]bool{}
		count := 0
		for i := range obs {
			if s := shards[i]; s < lo || s >= hi {
				continue
			}
			o := &obs[i]
			count++
			jobs[o.Job.JobID] = true
			acc := accs[o.NormSig]
			if acc == nil {
				acc = &candidateAccumulator{}
				accs[o.NormSig] = acc
			}
			acc.fold(o, &cfg)
		}
		var out []Candidate
		for sig, acc := range accs {
			if acc.freq < 2 {
				continue // not an overlap
			}
			out = append(out, acc.finalize(sig, periods))
		}
		outs[w] = workerOut{cands: out, jobs: jobs, count: count}
	})

	allJobs := map[string]bool{}
	for _, wo := range outs {
		cands = append(cands, wo.cands...)
		totalSubgraphs += wo.count
		for j := range wo.jobs {
			allJobs[j] = true
		}
	}
	totalJobs = len(allJobs)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Utility != cands[j].Utility {
			return cands[i].Utility > cands[j].Utility
		}
		return cands[i].NormSig < cands[j].NormSig
	})
	return cands, totalJobs, totalSubgraphs
}
