package analyzer

import "testing"

// TestPackOptimalCapKeepsDensestCandidates is the regression test for the
// candidate-cap ordering bug: the safety cap used to truncate the incoming
// pool (utility order) BEFORE sorting by density, so a large pool whose
// densest candidates sat past the cap index lost them before the solver
// ever saw them. The cap must apply to the density-sorted, budget-fitting
// items.
func TestPackOptimalCapKeepsDensestCandidates(t *testing.T) {
	const budget = 100
	// 52 bulky candidates lead the pool in utility order — each fits the
	// budget alone (so the fit filter keeps them) but at density ~1.1.
	var pool []Candidate
	for i := 0; i < 52; i++ {
		pool = append(pool, mkCand(i, 100, 90))
	}
	// The 8 truly dense candidates sit past the old cap index (48).
	for i := 52; i < 60; i++ {
		pool = append(pool, mkCand(i, 90, 10))
	}

	got := packOptimal(pool, budget)
	if b := totalBytes(got); b > budget {
		t.Fatalf("packing uses %d bytes, budget %d", b, budget)
	}
	// Optimal is the 8 dense candidates (80 bytes, utility 720); any
	// pre-sort truncation caps utility at a single bulky candidate (100).
	if u := totalUtil(got); u < 720 {
		t.Errorf("total utility %.0f, want >= 720 (cap dropped the dense candidates)", u)
	}
	if len(got) != 8 {
		t.Errorf("selected %d candidates, want the 8 dense ones", len(got))
	}
	for _, c := range got {
		if c.AvgBytes != 10 {
			t.Errorf("selected non-dense candidate %s (bytes %.0f)", c.NormSig, c.AvgBytes)
		}
	}
}
