package analyzer

import "sort"

// packOptimal solves the view-packing problem exactly: choose the subset
// of candidates maximizing total utility with total storage at most
// budget. This is the 0/1-knapsack core of the companion subexpression-
// packing work the paper defers to (§5.2); greedy density packing (the
// PackStorageBudget strategy) is its fast approximation.
//
// The solver is branch-and-bound with the fractional-relaxation upper
// bound, exploring density order. View counts after the admin filters are
// small (tens), so exact search is cheap; a safety cap restricts the
// search to the highest-utility candidates for adversarially large pools.
const packOptimalMaxCandidates = 48

func packOptimal(pool []Candidate, budget int64) []Candidate {
	if budget <= 0 || len(pool) == 0 {
		return nil
	}
	// Work in density order; skip candidates that can never fit. The cap is
	// applied only AFTER the density sort: capping the incoming pool (which
	// arrives in utility order, or in whatever order a caller built it)
	// would truncate to an arbitrary prefix and silently drop the dense
	// candidates an optimal packing is made of.
	items := make([]Candidate, 0, len(pool))
	for _, c := range pool {
		if int64(c.AvgBytes) <= budget {
			items = append(items, c)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		di, dj := density(items[i]), density(items[j])
		if di != dj {
			return di > dj
		}
		return items[i].NormSig < items[j].NormSig
	})
	if len(items) > packOptimalMaxCandidates {
		items = items[:packOptimalMaxCandidates]
	}

	best := make([]bool, len(items))
	cur := make([]bool, len(items))
	var bestUtil float64
	var rec func(i int, usedBytes int64, util float64)
	rec = func(i int, usedBytes int64, util float64) {
		if util > bestUtil {
			bestUtil = util
			copy(best, cur)
		}
		if i >= len(items) {
			return
		}
		// Fractional upper bound: fill the remaining budget greedily by
		// density, allowing a fractional last item.
		if util+fractionalBound(items[i:], budget-usedBytes) <= bestUtil {
			return
		}
		// Branch: take item i if it fits.
		if usedBytes+int64(items[i].AvgBytes) <= budget {
			cur[i] = true
			rec(i+1, usedBytes+int64(items[i].AvgBytes), util+items[i].Utility)
			cur[i] = false
		}
		// Branch: skip item i.
		rec(i+1, usedBytes, util)
	}
	rec(0, 0, 0)

	var out []Candidate
	for i, take := range best {
		if take {
			out = append(out, items[i])
		}
	}
	// Present in utility order like the other strategies.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utility != out[j].Utility {
			return out[i].Utility > out[j].Utility
		}
		return out[i].NormSig < out[j].NormSig
	})
	return out
}

// fractionalBound is the LP-relaxation optimum over items with the given
// remaining budget; items must already be density-sorted.
func fractionalBound(items []Candidate, budget int64) float64 {
	var util float64
	for _, c := range items {
		b := int64(c.AvgBytes)
		if b <= 0 {
			util += c.Utility
			continue
		}
		if b <= budget {
			util += c.Utility
			budget -= b
			continue
		}
		util += c.Utility * float64(budget) / float64(b)
		break
	}
	return util
}
