package analyzer

import (
	"runtime"
	"sync"

	"cloudviews/internal/signature"
	"cloudviews/internal/workload"
)

// shard.go is the scale-out substrate of the analyzer (DESIGN.md §12):
// the mining passes shard every observation by the top bits of its
// normalized-signature hash, so all occurrences of one computation land in
// exactly one shard, each worker owns a contiguous shard range, and a
// worker folding its shards in repository order reproduces the serial
// walk's per-signature fold order bit for bit — no locks, no cross-worker
// merges of partially-folded floats.

const (
	// aggShardBits/aggShardCount size the signature shard space. 64 shards
	// comfortably over-partition any realistic GOMAXPROCS while keeping a
	// shard index in one byte.
	aggShardBits  = 6
	aggShardCount = 1 << aggShardBits

	// shardSkip marks observations excluded by the window or scope filter;
	// it compares above every owned shard range, so workers skip it for
	// free.
	shardSkip = 0xFF

	// minParallelObs is the input size below which the fold runs on a
	// single worker: fan-out costs more than the work it would split.
	minParallelObs = 4096
)

// sigShard maps a normalized signature to its fold shard — the top
// aggShardBits of the interned signature string's 64-bit hash.
func sigShard(sig string) uint8 {
	return uint8(signature.Hash64(sig) >> (64 - aggShardBits))
}

// shardObservations computes each observation's fold shard in parallel
// chunks: shardSkip for observations outside [from, to] or outside the
// cfg scope (nil cfg means unscoped), sigShard otherwise. The single byte
// per observation it allocates is what lets every later pass — aggregate,
// overlap stats, coordination — fan out over the same snapshot without
// re-filtering or re-hashing, and is the only per-observation state the
// parallel pipeline materializes.
func shardObservations(obs []workload.Observation, from, to int64, cfg *Config) []uint8 {
	shards := make([]uint8, len(obs))
	scoped := cfg != nil &&
		(len(cfg.Clusters) > 0 || len(cfg.BusinessUnits) > 0 || len(cfg.VCs) > 0)
	chunk := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o := &obs[i]
			if o.Job.Instance < from || o.Job.Instance > to ||
				(scoped && !scopeMatch(o, cfg)) {
				shards[i] = shardSkip
				continue
			}
			shards[i] = sigShard(o.NormSig)
		}
	}
	workers := foldWorkers(len(obs))
	if workers == 1 {
		chunk(0, len(obs))
		return shards
	}
	runWorkers(workers, func(w int) {
		chunk(w*len(obs)/workers, (w+1)*len(obs)/workers)
	})
	return shards
}

// foldWorkers returns the worker count for a sharded fold over n
// observations: GOMAXPROCS capped by the shard count, or one worker when
// the input is too small to be worth splitting.
func foldWorkers(n int) int {
	if n < minParallelObs {
		return 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > aggShardCount {
		workers = aggShardCount
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// workerShardRange returns the contiguous shard range [lo, hi) owned by
// worker w of workers. The ranges tile [0, aggShardCount) exactly, so
// every non-skipped observation is folded by exactly one worker.
func workerShardRange(w, workers int) (lo, hi uint8) {
	return uint8(w * aggShardCount / workers), uint8((w + 1) * aggShardCount / workers)
}

// runWorkers runs fn(0..workers-1) concurrently and waits for all of them.
func runWorkers(workers int, fn func(w int)) {
	if workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
