// Package analyzer implements the CloudViews analyzer of paper §5: it
// mines the workload repository for overlapping computations, selects the
// views to materialize under pluggable heuristics and constraints, elects
// each view's physical design, derives its expiry from input lineage, and
// emits the annotations the metadata service serves to future jobs — plus
// the job-coordination submission order of §6.5.
package analyzer

import (
	"sort"
	"strconv"

	"cloudviews/internal/exec"
	"cloudviews/internal/metadata"
	"cloudviews/internal/plan"
	"cloudviews/internal/workload"
)

// Strategy selects among the view-selection methods of §5.2.
type Strategy int

// Selection strategies.
const (
	// TopKUtility picks the k candidates with the highest total utility
	// (frequency × average runtime saved).
	TopKUtility Strategy = iota
	// TopKUtilityPerByte normalizes utility by storage cost.
	TopKUtilityPerByte
	// PackStorageBudget greedily packs candidates by utility density
	// under a total storage budget (the practical stand-in for the
	// companion subexpression-packing work).
	PackStorageBudget
	// PackStorageBudgetOptimal solves the same packing problem exactly
	// with branch-and-bound — total utility is maximized, never below the
	// greedy solution.
	PackStorageBudgetOptimal
)

// Config tunes one analyzer run — the §5.5 admin knobs.
type Config struct {
	// WindowFrom/WindowTo restrict analysis to recurring instances in the
	// inclusive range. Zero values with WindowTo==0 mean "everything".
	WindowFrom, WindowTo int64
	// Clusters/BusinessUnits/VCs filter the workload; empty means all.
	Clusters      []string
	BusinessUnits []string
	VCs           []string
	// MinFrequency is the minimum occurrence count (paper's production
	// run used "appearing at least thrice").
	MinFrequency int
	// MinCostRatio prunes candidates whose subgraph cost is below this
	// fraction of their job's cost ("at least 20% of the overall job
	// cost" in §7.1).
	MinCostRatio float64
	// MinRuntime prunes trivially cheap subgraphs (26% of overlaps run
	// ≤1s, §2.4).
	MinRuntime float64
	// MaxPerJob, when 1, keeps at most one candidate per job (§7.1).
	MaxPerJob int
	// TopK bounds the number of selected views (0 = unlimited).
	TopK int
	// Strategy picks the selection method.
	Strategy Strategy
	// StorageBudget bounds total view bytes for PackStorageBudget.
	StorageBudget int64
	// UseEstimates replaces measured runtime statistics with the naive
	// compile-time estimate for utility (the feedback-loop ablation). The
	// estimate function must be supplied via EstimateCost.
	UseEstimates bool
	// EstimateCost maps an observation to an estimated cost when
	// UseEstimates is set.
	EstimateCost func(o workload.Observation) float64
}

// Candidate is one overlapping computation with its mined statistics.
type Candidate struct {
	NormSig string
	// Frequency is the number of occurrences in the window; JobCount the
	// number of distinct jobs; UserCount distinct users.
	Frequency int
	JobCount  int
	UserCount int
	// Measured averages from the feedback loop.
	AvgCost    float64 // average cumulative subgraph cost
	AvgLatency float64
	AvgRows    float64
	AvgBytes   float64
	// CostRatio is the average view-to-query cost ratio (Figure 5d).
	CostRatio float64
	// ReadCost is the measured cost of scanning the materialized view
	// (from its observed output size).
	ReadCost float64
	// Utility is the estimated total *net* saving:
	// (Frequency-1) × max(0, AvgCost − ReadCost) — every occurrence after
	// the first reads the view instead of recomputing, and reading is not
	// free. Ranking by net saving is what keeps scan-shaped subgraphs
	// (output ≈ input) from crowding out expensive reductions.
	Utility float64
	// Props is the elected physical design; MultiDesign reports that the
	// occurrences disagreed on the design (§5.3).
	Props       plan.PhysicalProps
	MultiDesign bool
	// ExpiryDelta is the lifetime in instance units from input lineage.
	ExpiryDelta int64
	// Tags are the inverted-index keys (inputs and template IDs).
	Tags []string
	// RootOp is the operator at the subgraph root (Figure 4a).
	RootOp plan.OpKind
	// Jobs lists distinct job IDs containing the computation.
	Jobs []string
	// Inputs lists the logical inputs the computation reads.
	Inputs []string
	// AvgRuntime is the mined average latency, used for build-lock TTLs.
	AvgRuntime float64
}

// Analysis is one analyzer run's full output.
type Analysis struct {
	// Window actually analyzed.
	WindowFrom, WindowTo int64
	// TotalJobs and TotalSubgraphs describe the analyzed workload.
	TotalJobs      int
	TotalSubgraphs int
	// Candidates are all overlapping computations (frequency ≥ 2),
	// before selection filters.
	Candidates []Candidate
	// Selected are the computations chosen to materialize.
	Selected []Candidate
	// Annotations is Selected rendered for the metadata service.
	Annotations []metadata.Annotation
	// JobOrder is the §6.5 coordination hint: submit these jobs first, in
	// order, so views are built once and reused by everyone else.
	JobOrder []string
}

// ObsHook is the analyzer's observability seam (see internal/obs):
// AnalyzeDone fires once per completed Analyze with the run's sizes. A
// nil hook costs nothing.
type ObsHook interface {
	AnalyzeDone(jobs, subgraphs, candidates, selected int)
}

// Analyzer mines a workload repository.
type Analyzer struct {
	Repo *workload.Repository

	// Obs, if set, observes completed runs (see ObsHook).
	Obs ObsHook
}

// New returns an analyzer over the repository.
func New(repo *workload.Repository) *Analyzer {
	return &Analyzer{Repo: repo}
}

// analysisWindow resolves the configured window; zero values with
// WindowTo==0 mean "everything".
func analysisWindow(cfg Config) (from, to int64) {
	from, to = cfg.WindowFrom, cfg.WindowTo
	if to == 0 {
		to = 1<<62 - 1
	}
	return from, to
}

// Analyze runs the full pipeline — enumerate → aggregate → filter →
// select → annotate → order — as a parallel, sharded, streaming fold:
// observations are scanned off one zero-copy repository snapshot, sharded
// by the top bits of the normalized-signature hash, and folded by
// GOMAXPROCS workers into per-candidate accumulators of running sums, so
// peak memory scales with the number of candidates rather than with
// materialized observation groups. The output is byte-identical to the
// serial reference walk (Serial): every signature's statistics fold in
// repository order inside exactly one worker, and every ordering the
// pipeline emits is a total order (see DESIGN.md §12).
func (a *Analyzer) Analyze(cfg Config) *Analysis {
	from, to := analysisWindow(cfg)
	obs := a.Repo.Snapshot()
	shards := shardObservations(obs, from, to, &cfg)

	an := &Analysis{WindowFrom: from, WindowTo: to}
	periods := a.Repo.InputPeriods()
	an.Candidates, an.TotalJobs, an.TotalSubgraphs = aggregateSharded(obs, shards, periods, cfg)
	an.Selected = selectViews(an.Candidates, cfg, true)
	an.Annotations = annotate(an.Selected)
	an.JobOrder = coordinate(an.Selected, func(fn func(o *workload.Observation)) {
		for i := range obs {
			if shards[i] != shardSkip {
				fn(&obs[i])
			}
		}
	})
	if a.Obs != nil {
		a.Obs.AnalyzeDone(an.TotalJobs, an.TotalSubgraphs, len(an.Candidates), len(an.Selected))
	}
	return an
}

// Serial is the single-threaded reference walk — the pre-scale-out
// analyzer, kept verbatim as the golden oracle the parallel Analyze is
// diffed against. It materializes the windowed copy, the scoped copy, and
// the per-signature observation groups that Analyze streams past.
func (a *Analyzer) Serial(cfg Config) *Analysis {
	from, to := analysisWindow(cfg)
	obs := a.Repo.Window(from, to)
	obs = filterScope(obs, cfg)

	an := &Analysis{WindowFrom: from, WindowTo: to, TotalSubgraphs: len(obs)}
	jobs := map[string]bool{}
	for _, o := range obs {
		jobs[o.Job.JobID] = true
	}
	an.TotalJobs = len(jobs)

	periods := a.Repo.InputPeriods()
	an.Candidates = aggregate(obs, periods, cfg)
	selected := selectViews(an.Candidates, cfg, false)
	an.Selected = selected
	an.Annotations = annotate(selected)
	an.JobOrder = coordinate(selected, func(fn func(o *workload.Observation)) {
		for i := range obs {
			fn(&obs[i])
		}
	})
	return an
}

// scopeMatch reports whether the observation passes the Clusters /
// BusinessUnits / VCs admin filters.
func scopeMatch(o *workload.Observation, cfg *Config) bool {
	match := func(v string, allow []string) bool {
		if len(allow) == 0 {
			return true
		}
		for _, a := range allow {
			if a == v {
				return true
			}
		}
		return false
	}
	return match(o.Job.Cluster, cfg.Clusters) &&
		match(o.Job.BusinessUnit, cfg.BusinessUnits) &&
		match(o.Job.VC, cfg.VCs)
}

func filterScope(obs []workload.Observation, cfg Config) []workload.Observation {
	if len(cfg.Clusters) == 0 && len(cfg.BusinessUnits) == 0 && len(cfg.VCs) == 0 {
		// Nothing to filter: every observation passes, so the input can be
		// returned as-is instead of copied.
		return obs
	}
	out := make([]workload.Observation, 0, len(obs))
	for i := range obs {
		if scopeMatch(&obs[i], &cfg) {
			out = append(out, obs[i])
		}
	}
	return out
}

// aggregate groups observations by normalized signature and computes the
// per-candidate statistics.
func aggregate(obs []workload.Observation, periods map[string]int64, cfg Config) []Candidate {
	groups := map[string][]workload.Observation{}
	for _, o := range obs {
		groups[o.NormSig] = append(groups[o.NormSig], o)
	}
	var out []Candidate
	for sig, g := range groups {
		if len(g) < 2 {
			continue // not an overlap
		}
		c := Candidate{NormSig: sig, Frequency: len(g), RootOp: g[0].RootOp}
		jobSet := map[string]bool{}
		userSet := map[string]bool{}
		inputSet := map[string]bool{}
		tagSet := map[string]bool{}
		var cost, lat, rows, bytes, ratio float64
		for _, o := range g {
			jobSet[o.Job.JobID] = true
			userSet[o.Job.User] = true
			for _, in := range o.Inputs {
				inputSet[in] = true
				tagSet[in] = true
			}
			tagSet[o.Job.TemplateID] = true
			oc := o.CumulativeCost
			if cfg.UseEstimates && cfg.EstimateCost != nil {
				oc = cfg.EstimateCost(o)
			}
			cost += oc
			lat += o.Latency
			rows += float64(o.Rows)
			bytes += float64(o.Bytes)
			if o.JobCPU > 0 {
				ratio += oc / o.JobCPU
			}
		}
		n := float64(len(g))
		c.AvgCost = cost / n
		c.AvgLatency = lat / n
		c.AvgRuntime = c.AvgLatency
		c.AvgRows = rows / n
		c.AvgBytes = bytes / n
		c.CostRatio = ratio / n
		c.ReadCost = exec.OperatorCost(plan.OpViewScan, 0, int64(c.AvgRows), int64(c.AvgBytes))
		saving := c.AvgCost - c.ReadCost
		if saving < 0 {
			saving = 0
		}
		c.Utility = float64(c.Frequency-1) * saving
		c.JobCount = len(jobSet)
		c.UserCount = len(userSet)
		c.Jobs = sortedKeys(jobSet)
		c.Inputs = sortedKeys(inputSet)
		c.Tags = sortedKeys(tagSet)
		c.Props, c.MultiDesign = electDesign(g)
		c.ExpiryDelta = expiryFromLineage(c.Inputs, periods)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utility != out[j].Utility {
			return out[i].Utility > out[j].Utility
		}
		return out[i].NormSig < out[j].NormSig
	})
	return out
}

// designTally counts occurrences of one physical design.
type designTally struct {
	props plan.PhysicalProps
	count int
}

// electDesign picks the most popular output physical design among the
// occurrences (§5.3). It reports whether multiple designs were in play.
func electDesign(g []workload.Observation) (plan.PhysicalProps, bool) {
	counts := map[string]*designTally{}
	for _, o := range g {
		tallyDesign(counts, o.Props)
	}
	return electFromTally(counts)
}

// tallyDesign folds one occurrence's design into the tally.
func tallyDesign(counts map[string]*designTally, props plan.PhysicalProps) {
	key := designKey(props)
	if b, ok := counts[key]; ok {
		b.count++
	} else {
		counts[key] = &designTally{props: props, count: 1}
	}
}

// electFromTally resolves the election: highest count wins, ties broken by
// the smaller design key — a total order, so the winner is independent of
// map iteration order (and of which fold path built the tally).
func electFromTally(counts map[string]*designTally) (plan.PhysicalProps, bool) {
	var best *designTally
	var bestKey string
	for k, b := range counts {
		if best == nil || b.count > best.count || (b.count == best.count && k < bestKey) {
			best, bestKey = b, k
		}
	}
	return best.props, len(counts) > 1
}

// designKey renders a physical design as a comparable string. The format
// is pinned — election ties break on it — and matches what
// fmt.Sprintf("%v|%v|%d|%v|%v", ...) produced before this append-based
// version removed the fmt overhead from the per-observation fold path
// (a designKeyReference test holds the two together).
func designKey(p plan.PhysicalProps) string {
	var buf [64]byte
	b := append(buf[:0], p.Part.Kind.String()...)
	b = append(b, '|')
	b = appendIntSlice(b, p.Part.Cols)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(p.Part.Count), 10)
	b = append(b, '|')
	b = appendIntSlice(b, p.Sort.Cols)
	b = append(b, '|')
	b = appendBoolSlice(b, p.Sort.Desc)
	return string(b)
}

func appendIntSlice(dst []byte, xs []int) []byte {
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendInt(dst, int64(x), 10)
	}
	return append(dst, ']')
}

func appendBoolSlice(dst []byte, xs []bool) []byte {
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendBool(dst, x)
	}
	return append(dst, ']')
}

// expiryFromLineage returns the view lifetime: the longest recurrence
// period of any template consuming any of the view's inputs, plus one
// instance of slack (§5.4).
func expiryFromLineage(inputs []string, periods map[string]int64) int64 {
	var maxP int64 = 1
	for _, in := range inputs {
		if p := periods[in]; p > maxP {
			maxP = p
		}
	}
	return maxP + 1
}

// selectViews applies the admin filters and the selection strategy. With
// bounded set, the density strategies replace their full pool sort with a
// TopK-bounded heap whenever no selection-stage skip (MaxPerJob, storage
// budget) can consume more than the k densest candidates; the serial
// reference passes bounded=false so the golden diff pins the heap against
// the full sort.
func selectViews(cands []Candidate, cfg Config, bounded bool) []Candidate {
	var pool []Candidate
	for _, c := range cands {
		if cfg.MinFrequency > 0 && c.Frequency < cfg.MinFrequency {
			continue
		}
		if c.CostRatio < cfg.MinCostRatio {
			continue
		}
		if c.AvgLatency < cfg.MinRuntime {
			continue
		}
		// Materializing a bare scan or an output sink never saves work.
		if c.RootOp == plan.OpExtract || c.RootOp == plan.OpOutput {
			continue
		}
		pool = append(pool, c)
	}

	switch cfg.Strategy {
	case TopKUtilityPerByte, PackStorageBudget:
		if bounded && cfg.TopK > 0 && cfg.MaxPerJob != 1 &&
			!(cfg.Strategy == PackStorageBudget && cfg.StorageBudget > 0) {
			// The selection loop below takes the first TopK of the sorted
			// pool verbatim (no skips are configured), so the k best under
			// the density order are all it can ever see.
			pool = topKByDensity(pool, cfg.TopK)
		} else {
			sort.Slice(pool, func(i, j int) bool {
				return denseBefore(pool[i], pool[j])
			})
		}
	case PackStorageBudgetOptimal:
		pool = packOptimal(pool, cfg.StorageBudget)
	default:
		// already utility-sorted by aggregate
	}

	var out []Candidate
	usedJobs := map[string]bool{}
	var usedBytes int64
	for _, c := range pool {
		if cfg.TopK > 0 && len(out) >= cfg.TopK {
			break
		}
		if cfg.MaxPerJob == 1 && anyUsed(c.Jobs, usedJobs) {
			continue
		}
		if cfg.Strategy == PackStorageBudget && cfg.StorageBudget > 0 &&
			usedBytes+int64(c.AvgBytes) > cfg.StorageBudget {
			continue
		}
		out = append(out, c)
		usedBytes += int64(c.AvgBytes)
		for _, j := range c.Jobs {
			usedJobs[j] = true
		}
	}
	return out
}

func density(c Candidate) float64 {
	if c.AvgBytes <= 0 {
		return c.Utility
	}
	return c.Utility / c.AvgBytes
}

// denseBefore is the density-strategy sort order: density descending, ties
// by NormSig ascending. NormSig is unique per candidate, so this is a
// total order — what makes heap selection reproduce the full sort exactly.
func denseBefore(a, b Candidate) bool {
	da, db := density(a), density(b)
	if da != db {
		return da > db
	}
	return a.NormSig < b.NormSig
}

func anyUsed(jobs []string, used map[string]bool) bool {
	for _, j := range jobs {
		if used[j] {
			return true
		}
	}
	return false
}

// annotate renders selected candidates as metadata-service annotations.
func annotate(selected []Candidate) []metadata.Annotation {
	out := make([]metadata.Annotation, len(selected))
	for i, c := range selected {
		out[i] = metadata.Annotation{
			NormSig:      c.NormSig,
			Tags:         c.Tags,
			Props:        c.Props,
			AvgRuntime:   c.AvgRuntime,
			ExpiryDelta:  c.ExpiryDelta,
			Utility:      c.Utility,
			StorageBytes: int64(c.AvgBytes),
			Frequency:    c.Frequency,
		}
	}
	return out
}

// obsStream invokes fn once per in-scope observation, in repository
// record order. It abstracts where the observations live: the serial walk
// streams its materialized scoped slice, the parallel pipeline streams the
// repository snapshot through its precomputed shard filter.
type obsStream func(fn func(o *workload.Observation))

// coordinate produces the job submission order of §6.5: per selected view,
// jobs containing it form a group; the group's builder is its shortest job
// (ties broken by fewer overlaps, then ID). Deduplicated builders run
// first — ordered by runtime, ties by overlap count — so each view is
// built exactly once before its consumers arrive. Both maps it folds are
// order-insensitive (max and count), so any stream over the same
// observation set yields the same order.
func coordinate(selected []Candidate, stream obsStream) []string {
	if len(selected) == 0 {
		return nil
	}
	jobRuntime := map[string]float64{}
	jobOverlaps := map[string]int{}
	selectedSigs := map[string]bool{}
	for _, c := range selected {
		selectedSigs[c.NormSig] = true
	}
	stream(func(o *workload.Observation) {
		if o.JobLatency > jobRuntime[o.Job.JobID] {
			jobRuntime[o.Job.JobID] = o.JobLatency
		}
		if selectedSigs[o.NormSig] {
			jobOverlaps[o.Job.JobID]++
		}
	})
	builderSet := map[string]bool{}
	for _, c := range selected {
		best := ""
		for _, j := range c.Jobs {
			if best == "" || less(j, best, jobRuntime, jobOverlaps) {
				best = j
			}
		}
		if best != "" {
			builderSet[best] = true
		}
	}
	builders := sortedKeys(builderSet)
	sort.Slice(builders, func(i, j int) bool {
		return less(builders[i], builders[j], jobRuntime, jobOverlaps)
	})
	return builders
}

// less orders jobs by runtime, then by overlap count, then by ID.
func less(a, b string, runtime map[string]float64, overlaps map[string]int) bool {
	if runtime[a] != runtime[b] {
		return runtime[a] < runtime[b]
	}
	if overlaps[a] != overlaps[b] {
		return overlaps[a] < overlaps[b]
	}
	return a < b
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
