// Package analyzer implements the CloudViews analyzer of paper §5: it
// mines the workload repository for overlapping computations, selects the
// views to materialize under pluggable heuristics and constraints, elects
// each view's physical design, derives its expiry from input lineage, and
// emits the annotations the metadata service serves to future jobs — plus
// the job-coordination submission order of §6.5.
package analyzer

import (
	"fmt"
	"sort"

	"cloudviews/internal/exec"
	"cloudviews/internal/metadata"
	"cloudviews/internal/plan"
	"cloudviews/internal/workload"
)

// Strategy selects among the view-selection methods of §5.2.
type Strategy int

// Selection strategies.
const (
	// TopKUtility picks the k candidates with the highest total utility
	// (frequency × average runtime saved).
	TopKUtility Strategy = iota
	// TopKUtilityPerByte normalizes utility by storage cost.
	TopKUtilityPerByte
	// PackStorageBudget greedily packs candidates by utility density
	// under a total storage budget (the practical stand-in for the
	// companion subexpression-packing work).
	PackStorageBudget
	// PackStorageBudgetOptimal solves the same packing problem exactly
	// with branch-and-bound — total utility is maximized, never below the
	// greedy solution.
	PackStorageBudgetOptimal
)

// Config tunes one analyzer run — the §5.5 admin knobs.
type Config struct {
	// WindowFrom/WindowTo restrict analysis to recurring instances in the
	// inclusive range. Zero values with WindowTo==0 mean "everything".
	WindowFrom, WindowTo int64
	// Clusters/BusinessUnits/VCs filter the workload; empty means all.
	Clusters      []string
	BusinessUnits []string
	VCs           []string
	// MinFrequency is the minimum occurrence count (paper's production
	// run used "appearing at least thrice").
	MinFrequency int
	// MinCostRatio prunes candidates whose subgraph cost is below this
	// fraction of their job's cost ("at least 20% of the overall job
	// cost" in §7.1).
	MinCostRatio float64
	// MinRuntime prunes trivially cheap subgraphs (26% of overlaps run
	// ≤1s, §2.4).
	MinRuntime float64
	// MaxPerJob, when 1, keeps at most one candidate per job (§7.1).
	MaxPerJob int
	// TopK bounds the number of selected views (0 = unlimited).
	TopK int
	// Strategy picks the selection method.
	Strategy Strategy
	// StorageBudget bounds total view bytes for PackStorageBudget.
	StorageBudget int64
	// UseEstimates replaces measured runtime statistics with the naive
	// compile-time estimate for utility (the feedback-loop ablation). The
	// estimate function must be supplied via EstimateCost.
	UseEstimates bool
	// EstimateCost maps an observation to an estimated cost when
	// UseEstimates is set.
	EstimateCost func(o workload.Observation) float64
}

// Candidate is one overlapping computation with its mined statistics.
type Candidate struct {
	NormSig string
	// Frequency is the number of occurrences in the window; JobCount the
	// number of distinct jobs; UserCount distinct users.
	Frequency int
	JobCount  int
	UserCount int
	// Measured averages from the feedback loop.
	AvgCost    float64 // average cumulative subgraph cost
	AvgLatency float64
	AvgRows    float64
	AvgBytes   float64
	// CostRatio is the average view-to-query cost ratio (Figure 5d).
	CostRatio float64
	// ReadCost is the measured cost of scanning the materialized view
	// (from its observed output size).
	ReadCost float64
	// Utility is the estimated total *net* saving:
	// (Frequency-1) × max(0, AvgCost − ReadCost) — every occurrence after
	// the first reads the view instead of recomputing, and reading is not
	// free. Ranking by net saving is what keeps scan-shaped subgraphs
	// (output ≈ input) from crowding out expensive reductions.
	Utility float64
	// Props is the elected physical design; MultiDesign reports that the
	// occurrences disagreed on the design (§5.3).
	Props       plan.PhysicalProps
	MultiDesign bool
	// ExpiryDelta is the lifetime in instance units from input lineage.
	ExpiryDelta int64
	// Tags are the inverted-index keys (inputs and template IDs).
	Tags []string
	// RootOp is the operator at the subgraph root (Figure 4a).
	RootOp plan.OpKind
	// Jobs lists distinct job IDs containing the computation.
	Jobs []string
	// Inputs lists the logical inputs the computation reads.
	Inputs []string
	// AvgRuntime is the mined average latency, used for build-lock TTLs.
	AvgRuntime float64
}

// Analysis is one analyzer run's full output.
type Analysis struct {
	// Window actually analyzed.
	WindowFrom, WindowTo int64
	// TotalJobs and TotalSubgraphs describe the analyzed workload.
	TotalJobs      int
	TotalSubgraphs int
	// Candidates are all overlapping computations (frequency ≥ 2),
	// before selection filters.
	Candidates []Candidate
	// Selected are the computations chosen to materialize.
	Selected []Candidate
	// Annotations is Selected rendered for the metadata service.
	Annotations []metadata.Annotation
	// JobOrder is the §6.5 coordination hint: submit these jobs first, in
	// order, so views are built once and reused by everyone else.
	JobOrder []string
}

// Analyzer mines a workload repository.
type Analyzer struct {
	Repo *workload.Repository
}

// New returns an analyzer over the repository.
func New(repo *workload.Repository) *Analyzer {
	return &Analyzer{Repo: repo}
}

// Analyze runs the full pipeline: enumerate → aggregate → filter → select
// → annotate → order.
func (a *Analyzer) Analyze(cfg Config) *Analysis {
	from, to := cfg.WindowFrom, cfg.WindowTo
	if to == 0 {
		to = 1<<62 - 1
	}
	obs := a.Repo.Window(from, to)
	obs = filterScope(obs, cfg)

	an := &Analysis{WindowFrom: from, WindowTo: to, TotalSubgraphs: len(obs)}
	jobs := map[string]bool{}
	for _, o := range obs {
		jobs[o.Job.JobID] = true
	}
	an.TotalJobs = len(jobs)

	periods := a.Repo.InputPeriods()
	an.Candidates = aggregate(obs, periods, cfg)
	selected := selectViews(an.Candidates, cfg)
	an.Selected = selected
	an.Annotations = annotate(selected)
	an.JobOrder = coordinate(selected, obs)
	return an
}

func filterScope(obs []workload.Observation, cfg Config) []workload.Observation {
	match := func(v string, allow []string) bool {
		if len(allow) == 0 {
			return true
		}
		for _, a := range allow {
			if a == v {
				return true
			}
		}
		return false
	}
	var out []workload.Observation
	for _, o := range obs {
		if match(o.Job.Cluster, cfg.Clusters) &&
			match(o.Job.BusinessUnit, cfg.BusinessUnits) &&
			match(o.Job.VC, cfg.VCs) {
			out = append(out, o)
		}
	}
	return out
}

// aggregate groups observations by normalized signature and computes the
// per-candidate statistics.
func aggregate(obs []workload.Observation, periods map[string]int64, cfg Config) []Candidate {
	groups := map[string][]workload.Observation{}
	for _, o := range obs {
		groups[o.NormSig] = append(groups[o.NormSig], o)
	}
	var out []Candidate
	for sig, g := range groups {
		if len(g) < 2 {
			continue // not an overlap
		}
		c := Candidate{NormSig: sig, Frequency: len(g), RootOp: g[0].RootOp}
		jobSet := map[string]bool{}
		userSet := map[string]bool{}
		inputSet := map[string]bool{}
		tagSet := map[string]bool{}
		var cost, lat, rows, bytes, ratio float64
		for _, o := range g {
			jobSet[o.Job.JobID] = true
			userSet[o.Job.User] = true
			for _, in := range o.Inputs {
				inputSet[in] = true
				tagSet[in] = true
			}
			tagSet[o.Job.TemplateID] = true
			oc := o.CumulativeCost
			if cfg.UseEstimates && cfg.EstimateCost != nil {
				oc = cfg.EstimateCost(o)
			}
			cost += oc
			lat += o.Latency
			rows += float64(o.Rows)
			bytes += float64(o.Bytes)
			if o.JobCPU > 0 {
				ratio += oc / o.JobCPU
			}
		}
		n := float64(len(g))
		c.AvgCost = cost / n
		c.AvgLatency = lat / n
		c.AvgRuntime = c.AvgLatency
		c.AvgRows = rows / n
		c.AvgBytes = bytes / n
		c.CostRatio = ratio / n
		c.ReadCost = exec.OperatorCost(plan.OpViewScan, 0, int64(c.AvgRows), int64(c.AvgBytes))
		saving := c.AvgCost - c.ReadCost
		if saving < 0 {
			saving = 0
		}
		c.Utility = float64(c.Frequency-1) * saving
		c.JobCount = len(jobSet)
		c.UserCount = len(userSet)
		c.Jobs = sortedKeys(jobSet)
		c.Inputs = sortedKeys(inputSet)
		c.Tags = sortedKeys(tagSet)
		c.Props, c.MultiDesign = electDesign(g)
		c.ExpiryDelta = expiryFromLineage(c.Inputs, periods)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utility != out[j].Utility {
			return out[i].Utility > out[j].Utility
		}
		return out[i].NormSig < out[j].NormSig
	})
	return out
}

// electDesign picks the most popular output physical design among the
// occurrences (§5.3). It reports whether multiple designs were in play.
func electDesign(g []workload.Observation) (plan.PhysicalProps, bool) {
	type bucket struct {
		props plan.PhysicalProps
		count int
	}
	counts := map[string]*bucket{}
	for _, o := range g {
		key := designKey(o.Props)
		if b, ok := counts[key]; ok {
			b.count++
		} else {
			counts[key] = &bucket{props: o.Props, count: 1}
		}
	}
	var best *bucket
	var bestKey string
	for k, b := range counts {
		if best == nil || b.count > best.count || (b.count == best.count && k < bestKey) {
			best, bestKey = b, k
		}
	}
	return best.props, len(counts) > 1
}

func designKey(p plan.PhysicalProps) string {
	return fmt.Sprintf("%v|%v|%d|%v|%v", p.Part.Kind, p.Part.Cols, p.Part.Count, p.Sort.Cols, p.Sort.Desc)
}

// expiryFromLineage returns the view lifetime: the longest recurrence
// period of any template consuming any of the view's inputs, plus one
// instance of slack (§5.4).
func expiryFromLineage(inputs []string, periods map[string]int64) int64 {
	var maxP int64 = 1
	for _, in := range inputs {
		if p := periods[in]; p > maxP {
			maxP = p
		}
	}
	return maxP + 1
}

// selectViews applies the admin filters and the selection strategy.
func selectViews(cands []Candidate, cfg Config) []Candidate {
	var pool []Candidate
	for _, c := range cands {
		if cfg.MinFrequency > 0 && c.Frequency < cfg.MinFrequency {
			continue
		}
		if c.CostRatio < cfg.MinCostRatio {
			continue
		}
		if c.AvgLatency < cfg.MinRuntime {
			continue
		}
		// Materializing a bare scan or an output sink never saves work.
		if c.RootOp == plan.OpExtract || c.RootOp == plan.OpOutput {
			continue
		}
		pool = append(pool, c)
	}

	switch cfg.Strategy {
	case TopKUtilityPerByte, PackStorageBudget:
		sort.Slice(pool, func(i, j int) bool {
			di, dj := density(pool[i]), density(pool[j])
			if di != dj {
				return di > dj
			}
			return pool[i].NormSig < pool[j].NormSig
		})
	case PackStorageBudgetOptimal:
		pool = packOptimal(pool, cfg.StorageBudget)
	default:
		// already utility-sorted by aggregate
	}

	var out []Candidate
	usedJobs := map[string]bool{}
	var usedBytes int64
	for _, c := range pool {
		if cfg.TopK > 0 && len(out) >= cfg.TopK {
			break
		}
		if cfg.MaxPerJob == 1 && anyUsed(c.Jobs, usedJobs) {
			continue
		}
		if cfg.Strategy == PackStorageBudget && cfg.StorageBudget > 0 &&
			usedBytes+int64(c.AvgBytes) > cfg.StorageBudget {
			continue
		}
		out = append(out, c)
		usedBytes += int64(c.AvgBytes)
		for _, j := range c.Jobs {
			usedJobs[j] = true
		}
	}
	return out
}

func density(c Candidate) float64 {
	if c.AvgBytes <= 0 {
		return c.Utility
	}
	return c.Utility / c.AvgBytes
}

func anyUsed(jobs []string, used map[string]bool) bool {
	for _, j := range jobs {
		if used[j] {
			return true
		}
	}
	return false
}

// annotate renders selected candidates as metadata-service annotations.
func annotate(selected []Candidate) []metadata.Annotation {
	out := make([]metadata.Annotation, len(selected))
	for i, c := range selected {
		out[i] = metadata.Annotation{
			NormSig:      c.NormSig,
			Tags:         c.Tags,
			Props:        c.Props,
			AvgRuntime:   c.AvgRuntime,
			ExpiryDelta:  c.ExpiryDelta,
			Utility:      c.Utility,
			StorageBytes: int64(c.AvgBytes),
			Frequency:    c.Frequency,
		}
	}
	return out
}

// coordinate produces the job submission order of §6.5: per selected view,
// jobs containing it form a group; the group's builder is its shortest job
// (ties broken by fewer overlaps, then ID). Deduplicated builders run
// first — ordered by runtime, ties by overlap count — so each view is
// built exactly once before its consumers arrive.
func coordinate(selected []Candidate, obs []workload.Observation) []string {
	if len(selected) == 0 {
		return nil
	}
	jobRuntime := map[string]float64{}
	jobOverlaps := map[string]int{}
	selectedSigs := map[string]bool{}
	for _, c := range selected {
		selectedSigs[c.NormSig] = true
	}
	for _, o := range obs {
		if o.JobLatency > jobRuntime[o.Job.JobID] {
			jobRuntime[o.Job.JobID] = o.JobLatency
		}
		if selectedSigs[o.NormSig] {
			jobOverlaps[o.Job.JobID]++
		}
	}
	builderSet := map[string]bool{}
	for _, c := range selected {
		best := ""
		for _, j := range c.Jobs {
			if best == "" || less(j, best, jobRuntime, jobOverlaps) {
				best = j
			}
		}
		if best != "" {
			builderSet[best] = true
		}
	}
	builders := sortedKeys(builderSet)
	sort.Slice(builders, func(i, j int) bool {
		return less(builders[i], builders[j], jobRuntime, jobOverlaps)
	})
	return builders
}

// less orders jobs by runtime, then by overlap count, then by ID.
func less(a, b string, runtime map[string]float64, overlaps map[string]int) bool {
	if runtime[a] != runtime[b] {
		return runtime[a] < runtime[b]
	}
	if overlaps[a] != overlaps[b] {
		return overlaps[a] < overlaps[b]
	}
	return a < b
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
