package analyzer

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkCand(id int, utility float64, bytes float64) Candidate {
	return Candidate{NormSig: fmt.Sprintf("sig%02d", id), Utility: utility, AvgBytes: bytes}
}

func totalUtil(cs []Candidate) float64 {
	var u float64
	for _, c := range cs {
		u += c.Utility
	}
	return u
}

func totalBytes(cs []Candidate) int64 {
	var b int64
	for _, c := range cs {
		b += int64(c.AvgBytes)
	}
	return b
}

// greedyPack mirrors the PackStorageBudget strategy for comparison.
func greedyPack(pool []Candidate, budget int64) []Candidate {
	sorted := append([]Candidate(nil), pool...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && density(sorted[j]) > density(sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var out []Candidate
	var used int64
	for _, c := range sorted {
		if used+int64(c.AvgBytes) <= budget {
			out = append(out, c)
			used += int64(c.AvgBytes)
		}
	}
	return out
}

func TestPackOptimalBeatsGreedyOnClassicInstance(t *testing.T) {
	// Classic knapsack trap: greedy-by-density takes the small dense item
	// and wastes capacity; optimal takes the two big ones.
	pool := []Candidate{
		mkCand(1, 60, 10),  // density 6
		mkCand(2, 100, 20), // density 5
		mkCand(3, 120, 30), // density 4
	}
	budget := int64(50)
	opt := packOptimal(pool, budget)
	greedy := greedyPack(pool, budget)
	if totalUtil(opt) != 220 { // items 2 + 3
		t.Errorf("optimal utility = %v, want 220 (%v)", totalUtil(opt), opt)
	}
	if totalUtil(greedy) >= totalUtil(opt) {
		t.Errorf("instance does not separate greedy (%v) from optimal (%v)",
			totalUtil(greedy), totalUtil(opt))
	}
	if totalBytes(opt) > budget {
		t.Error("optimal exceeded budget")
	}
}

func TestPackOptimalEdgeCases(t *testing.T) {
	if got := packOptimal(nil, 100); got != nil {
		t.Error("empty pool should pack nothing")
	}
	if got := packOptimal([]Candidate{mkCand(1, 5, 10)}, 0); got != nil {
		t.Error("zero budget should pack nothing")
	}
	// Oversized single item skipped.
	if got := packOptimal([]Candidate{mkCand(1, 5, 1000)}, 10); len(got) != 0 {
		t.Error("oversized item selected")
	}
	// Zero-byte candidates are free utility.
	got := packOptimal([]Candidate{mkCand(1, 5, 0), mkCand(2, 7, 0)}, 1)
	if totalUtil(got) != 12 {
		t.Errorf("free items util = %v", totalUtil(got))
	}
}

// exhaustive computes the true optimum for small pools.
func exhaustive(pool []Candidate, budget int64) float64 {
	best := 0.0
	n := len(pool)
	for mask := 0; mask < 1<<n; mask++ {
		var util float64
		var bytes int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				util += pool[i].Utility
				bytes += int64(pool[i].AvgBytes)
			}
		}
		if bytes <= budget && util > best {
			best = util
		}
	}
	return best
}

func TestPackOptimalMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		pool := make([]Candidate, n)
		for i := range pool {
			pool[i] = mkCand(i, float64(1+r.Intn(100)), float64(1+r.Intn(50)))
		}
		budget := int64(10 + r.Intn(200))
		opt := packOptimal(pool, budget)
		if totalBytes(opt) > budget {
			return false
		}
		return totalUtil(opt) == exhaustive(pool, budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackOptimalNeverBelowGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		pool := make([]Candidate, n)
		for i := range pool {
			pool[i] = mkCand(i, float64(1+r.Intn(1000)), float64(1+r.Intn(100)))
		}
		budget := int64(20 + r.Intn(500))
		return totalUtil(packOptimal(pool, budget)) >= totalUtil(greedyPack(pool, budget))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalStrategyEndToEnd(t *testing.T) {
	f := buildFixture(t)
	a := New(f.repo)
	// Budget below the full footprint forces a real packing decision.
	full := a.Analyze(Config{MinFrequency: 2})
	var bytes int64
	for _, c := range full.Selected {
		bytes += int64(c.AvgBytes)
	}
	budget := bytes * 2 / 3
	greedy := a.Analyze(Config{MinFrequency: 2, Strategy: PackStorageBudget, StorageBudget: budget})
	optimal := a.Analyze(Config{MinFrequency: 2, Strategy: PackStorageBudgetOptimal, StorageBudget: budget})
	gu, ou := 0.0, 0.0
	var ob int64
	for _, c := range greedy.Selected {
		gu += c.Utility
	}
	for _, c := range optimal.Selected {
		ou += c.Utility
		ob += int64(c.AvgBytes)
	}
	if ob > budget {
		t.Errorf("optimal selection exceeds budget: %d > %d", ob, budget)
	}
	if ou < gu {
		t.Errorf("optimal utility %.0f below greedy %.0f", ou, gu)
	}
}
