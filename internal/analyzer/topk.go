package analyzer

import "sort"

// topKByDensity returns the k best candidates under denseBefore, sorted by
// it — exactly the first k elements a full denseBefore sort of pool would
// produce, found in O(n log k) with a k-bounded min-heap instead of
// O(n log n). denseBefore is a total order (NormSig breaks ties), so the
// top-k set is unique and the equivalence is exact, not approximate.
// pool is consumed: the result reuses its backing array.
func topKByDensity(pool []Candidate, k int) []Candidate {
	if k >= len(pool) {
		sort.Slice(pool, func(i, j int) bool {
			return denseBefore(pool[i], pool[j])
		})
		return pool
	}
	// Min-heap of the k best seen so far, with the WORST of them at the
	// root: a candidate beats the field only if it sorts before the root.
	h := pool[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftDensity(h, i)
	}
	for _, c := range pool[k:] {
		if denseBefore(c, h[0]) {
			h[0] = c
			siftDensity(h, 0)
		}
	}
	sort.Slice(h, func(i, j int) bool {
		return denseBefore(h[i], h[j])
	})
	return h
}

// siftDensity restores the heap property below i: every parent sorts
// after (is worse than) its children under denseBefore.
func siftDensity(h []Candidate, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && denseBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && denseBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
