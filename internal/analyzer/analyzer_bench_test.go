package analyzer

import (
	"fmt"
	"testing"

	"cloudviews/internal/workgen"
	"cloudviews/internal/workload"
)

// benchCfg is the representative production-shaped analyzer run: the
// paper's thrice-appearing / 20%-of-job-cost thresholds with density
// selection bounded at 20 views.
var benchCfg = Config{
	MinFrequency: 3,
	MinCostRatio: 0.05,
	MinRuntime:   10,
	TopK:         20,
	Strategy:     TopKUtilityPerByte,
}

// benchRepos caches one repository per observation count — generation
// costs more than a benchmark iteration and must not be re-paid per size
// sweep.
var benchRepos = map[int]*workload.Repository{}

func benchRepo(b *testing.B, n int) *workload.Repository {
	if r, ok := benchRepos[n]; ok {
		return r
	}
	p := workgen.DefaultProfile("bench", 99)
	obs := workgen.Generate(p).SyntheticUntil(n)
	if len(obs) < n {
		b.Fatalf("generated %d observations, want >= %d", len(obs), n)
	}
	r := workload.NewRepository()
	r.Append(obs[:n]...)
	benchRepos[n] = r
	return r
}

func benchSizes(b *testing.B) []int {
	if testing.Short() {
		return []int{10_000, 100_000}
	}
	return []int{10_000, 100_000, 500_000}
}

// BenchmarkAnalyzerAnalyze is the end-to-end parallel pipeline: shard,
// fold, select, annotate, coordinate.
func BenchmarkAnalyzerAnalyze(b *testing.B) {
	for _, n := range benchSizes(b) {
		repo := benchRepo(b, n)
		b.Run(fmt.Sprintf("obs=%d", n), func(b *testing.B) {
			a := New(repo)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				an := a.Analyze(benchCfg)
				if an.TotalSubgraphs != n {
					b.Fatalf("analyzed %d subgraphs, want %d", an.TotalSubgraphs, n)
				}
			}
		})
	}
}

// BenchmarkAnalyzerSerial is the pinned single-threaded reference over the
// same repositories — the before-side of the scale-out comparison.
func BenchmarkAnalyzerSerial(b *testing.B) {
	for _, n := range benchSizes(b) {
		repo := benchRepo(b, n)
		b.Run(fmt.Sprintf("obs=%d", n), func(b *testing.B) {
			a := New(repo)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				an := a.Serial(benchCfg)
				if an.TotalSubgraphs != n {
					b.Fatalf("analyzed %d subgraphs, want %d", an.TotalSubgraphs, n)
				}
			}
		})
	}
}

// BenchmarkAnalyzerAggregate isolates the candidate-mining fold (shard
// pass + sharded aggregation), without selection or coordination.
func BenchmarkAnalyzerAggregate(b *testing.B) {
	for _, n := range benchSizes(b) {
		repo := benchRepo(b, n)
		b.Run(fmt.Sprintf("obs=%d", n), func(b *testing.B) {
			obs := repo.Snapshot()
			periods := repo.InputPeriods()
			from, to := analysisWindow(benchCfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shards := shardObservations(obs, from, to, &benchCfg)
				cands, _, _ := aggregateSharded(obs, shards, periods, benchCfg)
				if len(cands) == 0 {
					b.Fatal("no candidates mined")
				}
			}
		})
	}
}

// BenchmarkAnalyzerAggregateSerial is the group-materializing serial
// aggregation the fold replaced.
func BenchmarkAnalyzerAggregateSerial(b *testing.B) {
	for _, n := range benchSizes(b) {
		repo := benchRepo(b, n)
		b.Run(fmt.Sprintf("obs=%d", n), func(b *testing.B) {
			periods := repo.InputPeriods()
			from, to := analysisWindow(benchCfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obs := filterScope(repo.Window(from, to), benchCfg)
				if cands := aggregate(obs, periods, benchCfg); len(cands) == 0 {
					b.Fatal("no candidates mined")
				}
			}
		})
	}
}

// BenchmarkAnalyzerOverlapStats is the sharded Figures 1–5 statistics
// pass.
func BenchmarkAnalyzerOverlapStats(b *testing.B) {
	for _, n := range benchSizes(b) {
		repo := benchRepo(b, n)
		b.Run(fmt.Sprintf("obs=%d", n), func(b *testing.B) {
			a := New(repo)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := a.OverlapStats(benchCfg)
				if st.TotalOccurrences != n {
					b.Fatalf("stats over %d occurrences, want %d", st.TotalOccurrences, n)
				}
			}
		})
	}
}

// BenchmarkAnalyzerOverlapStatsSerial is the serial statistics reference.
func BenchmarkAnalyzerOverlapStatsSerial(b *testing.B) {
	for _, n := range benchSizes(b) {
		repo := benchRepo(b, n)
		b.Run(fmt.Sprintf("obs=%d", n), func(b *testing.B) {
			from, to := analysisWindow(benchCfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obs := filterScope(repo.Window(from, to), benchCfg)
				st := computeOverlapStatsSerial(obs)
				if st.TotalOccurrences != n {
					b.Fatalf("stats over %d occurrences, want %d", st.TotalOccurrences, n)
				}
			}
		})
	}
}
