package analyzer

import (
	"sort"

	"cloudviews/internal/plan"
	"cloudviews/internal/workload"
)

// OverlapStats quantifies the computation-overlap in a workload — the raw
// material of the paper's Figures 1–5. An occurrence is "overlapping" when
// its normalized signature appears at least twice in the analyzed window;
// a job/user "has overlap" when it shares a subgraph with another job.
type OverlapStats struct {
	TotalJobs        int
	TotalUsers       int
	TotalOccurrences int

	// Figure 1 style aggregates.
	PctJobsOverlapping      float64
	PctUsersOverlapping     float64
	PctSubgraphsOverlapping float64

	// Figure 2: per-VC view.
	VCJobOverlapPct map[string]float64
	VCAvgFrequency  map[string]float64
	VCNames         []string // sorted
	// Figure 3: overlap counts per entity (inputs to CDFs).
	OverlapsPerJob   []float64
	OverlapsPerInput []float64
	OverlapsPerUser  []float64
	OverlapsPerVC    []float64

	// Figure 4: operator breakdown of overlapping occurrences, and the
	// per-operator frequency samples behind Figures 4(b)–(d).
	OperatorPct         map[plan.OpKind]float64
	OperatorFrequencies map[plan.OpKind][]float64

	// Figure 5: per-overlapping-signature distributions.
	Frequencies  []float64 // occurrence count per signature
	Runtimes     []float64 // average latency per signature
	SizesBytes   []float64 // average output bytes per signature
	CostRatios   []float64 // average view-to-query cost ratio per signature
	AvgFrequency float64
}

// ComputeOverlapStats derives the overlap statistics of a set of subgraph
// observations.
func ComputeOverlapStats(obs []workload.Observation) *OverlapStats {
	st := &OverlapStats{
		VCJobOverlapPct:     map[string]float64{},
		VCAvgFrequency:      map[string]float64{},
		OperatorPct:         map[plan.OpKind]float64{},
		OperatorFrequencies: map[plan.OpKind][]float64{},
	}
	if len(obs) == 0 {
		return st
	}

	bySig := map[string][]workload.Observation{}
	sigJobs := map[string]map[string]bool{}
	for _, o := range obs {
		bySig[o.NormSig] = append(bySig[o.NormSig], o)
		if sigJobs[o.NormSig] == nil {
			sigJobs[o.NormSig] = map[string]bool{}
		}
		sigJobs[o.NormSig][o.Job.JobID] = true
	}
	crossJob := func(sig string) bool { return len(sigJobs[sig]) >= 2 }
	overlapping := func(sig string) bool { return len(bySig[sig]) >= 2 }

	jobs := map[string]bool{}
	users := map[string]bool{}
	jobsOverlapping := map[string]bool{}
	usersOverlapping := map[string]bool{}
	vcJobs := map[string]map[string]bool{}
	vcJobsOverlap := map[string]map[string]bool{}
	vcFreqSamples := map[string][]float64{}
	perJob := map[string]float64{}
	perInput := map[string]float64{}
	perUser := map[string]float64{}
	perVC := map[string]float64{}
	overlapOccurrences := 0

	for _, o := range obs {
		jobs[o.Job.JobID] = true
		users[o.Job.User] = true
		if vcJobs[o.Job.VC] == nil {
			vcJobs[o.Job.VC] = map[string]bool{}
			vcJobsOverlap[o.Job.VC] = map[string]bool{}
		}
		vcJobs[o.Job.VC][o.Job.JobID] = true

		if overlapping(o.NormSig) {
			overlapOccurrences++
			perJob[o.Job.JobID]++
			perUser[o.Job.User]++
			perVC[o.Job.VC]++
			for _, in := range o.Inputs {
				perInput[in]++
			}
		}
		if crossJob(o.NormSig) {
			jobsOverlapping[o.Job.JobID] = true
			usersOverlapping[o.Job.User] = true
			vcJobsOverlap[o.Job.VC][o.Job.JobID] = true
		}
	}

	st.TotalJobs = len(jobs)
	st.TotalUsers = len(users)
	st.TotalOccurrences = len(obs)
	st.PctJobsOverlapping = pct(len(jobsOverlapping), len(jobs))
	st.PctUsersOverlapping = pct(len(usersOverlapping), len(users))
	st.PctSubgraphsOverlapping = pct(overlapOccurrences, len(obs))

	// Per-signature distributions (Figure 5), operator breakdown over
	// *distinct* overlapping computations (Figure 4a's "percentage of
	// subgraphs"), and within-VC frequency samples for Figure 2b.
	var freqSum float64
	distinctOverlaps := 0
	for _, g := range bySig {
		if len(g) < 2 {
			continue
		}
		distinctOverlaps++
		f := float64(len(g))
		st.Frequencies = append(st.Frequencies, f)
		freqSum += f
		var lat, bytes, ratio float64
		vcCounts := map[string]float64{}
		for _, o := range g {
			lat += o.Latency
			bytes += float64(o.Bytes)
			if o.JobCPU > 0 {
				ratio += o.CumulativeCost / o.JobCPU
			}
			vcCounts[o.Job.VC]++
		}
		n := float64(len(g))
		st.Runtimes = append(st.Runtimes, lat/n)
		st.SizesBytes = append(st.SizesBytes, bytes/n)
		st.CostRatios = append(st.CostRatios, ratio/n)
		st.OperatorPct[g[0].RootOp]++
		st.OperatorFrequencies[g[0].RootOp] = append(st.OperatorFrequencies[g[0].RootOp], f)
		// Figure 2b samples the computation's frequency *within* each VC
		// it occurs in.
		for vc, c := range vcCounts {
			vcFreqSamples[vc] = append(vcFreqSamples[vc], c)
		}
	}
	if len(st.Frequencies) > 0 {
		st.AvgFrequency = freqSum / float64(len(st.Frequencies))
	}

	// Normalize operator breakdown to percentages.
	if distinctOverlaps > 0 {
		for op, c := range st.OperatorPct {
			st.OperatorPct[op] = c / float64(distinctOverlaps) * 100
		}
	}

	// Per-VC aggregates (Figure 2).
	for vc, jset := range vcJobs {
		st.VCNames = append(st.VCNames, vc)
		st.VCJobOverlapPct[vc] = pct(len(vcJobsOverlap[vc]), len(jset))
		if samples := vcFreqSamples[vc]; len(samples) > 0 {
			var s float64
			for _, x := range samples {
				s += x
			}
			st.VCAvgFrequency[vc] = s / float64(len(samples))
		}
	}
	sort.Strings(st.VCNames)

	st.OverlapsPerJob = values(perJob)
	st.OverlapsPerInput = values(perInput)
	st.OverlapsPerUser = values(perUser)
	st.OverlapsPerVC = values(perVC)
	return st
}

// OverlapStats computes the statistics for the configured window/scope.
func (a *Analyzer) OverlapStats(cfg Config) *OverlapStats {
	to := cfg.WindowTo
	if to == 0 {
		to = 1<<62 - 1
	}
	obs := filterScope(a.Repo.Window(cfg.WindowFrom, to), cfg)
	return ComputeOverlapStats(obs)
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total) * 100
}

func values(m map[string]float64) []float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
