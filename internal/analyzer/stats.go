package analyzer

import (
	"sort"

	"cloudviews/internal/plan"
	"cloudviews/internal/workload"
)

// OverlapStats quantifies the computation-overlap in a workload — the raw
// material of the paper's Figures 1–5. An occurrence is "overlapping" when
// its normalized signature appears at least twice in the analyzed window;
// a job/user "has overlap" when it shares a subgraph with another job.
type OverlapStats struct {
	TotalJobs        int
	TotalUsers       int
	TotalOccurrences int

	// Figure 1 style aggregates.
	PctJobsOverlapping      float64
	PctUsersOverlapping     float64
	PctSubgraphsOverlapping float64

	// Figure 2: per-VC view.
	VCJobOverlapPct map[string]float64
	VCAvgFrequency  map[string]float64
	VCNames         []string // sorted
	// Figure 3: overlap counts per entity (inputs to CDFs).
	OverlapsPerJob   []float64
	OverlapsPerInput []float64
	OverlapsPerUser  []float64
	OverlapsPerVC    []float64

	// Figure 4: operator breakdown of overlapping occurrences, and the
	// per-operator frequency samples behind Figures 4(b)–(d).
	OperatorPct         map[plan.OpKind]float64
	OperatorFrequencies map[plan.OpKind][]float64

	// Figure 5: per-overlapping-signature distributions, emitted in
	// normalized-signature order so repeated runs (and the parallel and
	// serial paths) produce identical slices.
	Frequencies  []float64 // occurrence count per signature
	Runtimes     []float64 // average latency per signature
	SizesBytes   []float64 // average output bytes per signature
	CostRatios   []float64 // average view-to-query cost ratio per signature
	AvgFrequency float64
}

// newOverlapStats returns the empty-statistics value both paths start from.
func newOverlapStats() *OverlapStats {
	return &OverlapStats{
		VCJobOverlapPct:     map[string]float64{},
		VCAvgFrequency:      map[string]float64{},
		OperatorPct:         map[plan.OpKind]float64{},
		OperatorFrequencies: map[plan.OpKind][]float64{},
	}
}

// ComputeOverlapStats derives the overlap statistics of a set of subgraph
// observations, using the same sharded parallel fold as Analyze.
func ComputeOverlapStats(obs []workload.Observation) *OverlapStats {
	shards := shardObservations(obs, -1<<62, 1<<62-1, nil)
	return overlapStatsSharded(obs, shards)
}

// OverlapStats computes the statistics for the configured window/scope,
// streaming off the zero-copy repository snapshot — the window and scope
// filters fold into the shard pass instead of materializing filtered
// copies of the observation set.
func (a *Analyzer) OverlapStats(cfg Config) *OverlapStats {
	from, to := analysisWindow(cfg)
	obs := a.Repo.Snapshot()
	shards := shardObservations(obs, from, to, &cfg)
	return overlapStatsSharded(obs, shards)
}

// sigStat folds one normalized signature's occurrences for the statistics
// pass. Like candidateAccumulator it parks the first occurrence and only
// allocates per-signature maps when a second occurrence arrives, so the
// long tail of non-overlapping signatures costs one pointer each.
type sigStat struct {
	first *workload.Observation
	count int
	// Sums folded in record order; used only for overlapping signatures.
	lat, bytes, ratio float64
	rootOp            plan.OpKind
	jobs              map[string]bool
	vcCounts          map[string]float64
}

func (s *sigStat) fold(o *workload.Observation) {
	s.count++
	if s.count == 1 {
		s.first = o
		return
	}
	if f := s.first; f != nil {
		s.first = nil
		s.rootOp = f.RootOp
		s.jobs = map[string]bool{}
		s.vcCounts = map[string]float64{}
		s.foldObs(f)
	}
	s.foldObs(o)
}

func (s *sigStat) foldObs(o *workload.Observation) {
	s.lat += o.Latency
	s.bytes += float64(o.Bytes)
	if o.JobCPU > 0 {
		s.ratio += o.CumulativeCost / o.JobCPU
	}
	s.jobs[o.Job.JobID] = true
	s.vcCounts[o.Job.VC]++
}

// statsWorker is one worker's private fold state: per-signature statistics
// for its owned shards plus the entity aggregates over its owned
// observations. Entity keys (jobs, users, VCs, inputs) cut across shards,
// so those maps are set-unioned / count-summed in the merge; signatures
// never are — each lives wholly inside one worker.
type statsWorker struct {
	stats                             map[string]*sigStat
	count                             int
	jobs, users                       map[string]bool
	jobsOverlapping, usersOverlapping map[string]bool
	vcJobs, vcJobsOverlap             map[string]map[string]bool
	perJob, perInput, perUser, perVC  map[string]float64
	overlapOccurrences                int
}

// overlapStatsSharded computes OverlapStats over the observations whose
// shard is not shardSkip, byte-identical to computeOverlapStatsSerial over
// the equivalent filtered slice. Each worker runs two passes over its
// owned shards: first the per-signature fold, then the entity pass, which
// needs the finished per-signature counts to evaluate the "overlapping"
// (count ≥ 2) and "cross-job" (distinct jobs ≥ 2) predicates — both
// worker-local, since a signature's occurrences all land in one worker.
// Entity aggregates merge exactly (set unions and sums of integer-valued
// counts), and the per-signature distributions are emitted in sorted
// signature order, the same canonical order the serial path uses.
func overlapStatsSharded(obs []workload.Observation, shards []uint8) *OverlapStats {
	st := newOverlapStats()
	workers := foldWorkers(len(obs))
	ws := make([]*statsWorker, workers)
	runWorkers(workers, func(wi int) {
		lo, hi := workerShardRange(wi, workers)
		w := &statsWorker{
			stats:            map[string]*sigStat{},
			jobs:             map[string]bool{},
			users:            map[string]bool{},
			jobsOverlapping:  map[string]bool{},
			usersOverlapping: map[string]bool{},
			vcJobs:           map[string]map[string]bool{},
			vcJobsOverlap:    map[string]map[string]bool{},
			perJob:           map[string]float64{},
			perInput:         map[string]float64{},
			perUser:          map[string]float64{},
			perVC:            map[string]float64{},
		}
		for i := range obs {
			if s := shards[i]; s < lo || s >= hi {
				continue
			}
			o := &obs[i]
			sig := w.stats[o.NormSig]
			if sig == nil {
				sig = &sigStat{}
				w.stats[o.NormSig] = sig
			}
			sig.fold(o)
		}
		for i := range obs {
			if s := shards[i]; s < lo || s >= hi {
				continue
			}
			o := &obs[i]
			w.count++
			w.jobs[o.Job.JobID] = true
			w.users[o.Job.User] = true
			vj := w.vcJobs[o.Job.VC]
			if vj == nil {
				vj = map[string]bool{}
				w.vcJobs[o.Job.VC] = vj
			}
			vj[o.Job.JobID] = true

			sig := w.stats[o.NormSig]
			if sig.count >= 2 {
				w.overlapOccurrences++
				w.perJob[o.Job.JobID]++
				w.perUser[o.Job.User]++
				w.perVC[o.Job.VC]++
				for _, in := range o.Inputs {
					w.perInput[in]++
				}
			}
			if len(sig.jobs) >= 2 {
				w.jobsOverlapping[o.Job.JobID] = true
				w.usersOverlapping[o.Job.User] = true
				vo := w.vcJobsOverlap[o.Job.VC]
				if vo == nil {
					vo = map[string]bool{}
					w.vcJobsOverlap[o.Job.VC] = vo
				}
				vo[o.Job.JobID] = true
			}
		}
		ws[wi] = w
	})

	total := 0
	for _, w := range ws {
		total += w.count
	}
	if total == 0 {
		// Matches the serial empty-input early return: counters zero,
		// distribution slices nil.
		return st
	}

	jobs := map[string]bool{}
	users := map[string]bool{}
	jobsOverlapping := map[string]bool{}
	usersOverlapping := map[string]bool{}
	vcJobs := map[string]map[string]bool{}
	vcJobsOverlap := map[string]map[string]bool{}
	perJob := map[string]float64{}
	perInput := map[string]float64{}
	perUser := map[string]float64{}
	perVC := map[string]float64{}
	overlapOccurrences := 0
	type sigEntry struct {
		sig string
		st  *sigStat
	}
	var entries []sigEntry
	for _, w := range ws {
		union(jobs, w.jobs)
		union(users, w.users)
		union(jobsOverlapping, w.jobsOverlapping)
		union(usersOverlapping, w.usersOverlapping)
		for vc, js := range w.vcJobs {
			if vcJobs[vc] == nil {
				vcJobs[vc] = map[string]bool{}
			}
			union(vcJobs[vc], js)
		}
		for vc, js := range w.vcJobsOverlap {
			if vcJobsOverlap[vc] == nil {
				vcJobsOverlap[vc] = map[string]bool{}
			}
			union(vcJobsOverlap[vc], js)
		}
		sumCounts(perJob, w.perJob)
		sumCounts(perInput, w.perInput)
		sumCounts(perUser, w.perUser)
		sumCounts(perVC, w.perVC)
		overlapOccurrences += w.overlapOccurrences
		for sig, s := range w.stats {
			if s.count >= 2 {
				entries = append(entries, sigEntry{sig: sig, st: s})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].sig < entries[j].sig })

	st.TotalJobs = len(jobs)
	st.TotalUsers = len(users)
	st.TotalOccurrences = total
	st.PctJobsOverlapping = pct(len(jobsOverlapping), len(jobs))
	st.PctUsersOverlapping = pct(len(usersOverlapping), len(users))
	st.PctSubgraphsOverlapping = pct(overlapOccurrences, total)

	var freqSum float64
	vcFreqSamples := map[string][]float64{}
	for _, e := range entries {
		f := float64(e.st.count)
		st.Frequencies = append(st.Frequencies, f)
		freqSum += f
		n := float64(e.st.count)
		st.Runtimes = append(st.Runtimes, e.st.lat/n)
		st.SizesBytes = append(st.SizesBytes, e.st.bytes/n)
		st.CostRatios = append(st.CostRatios, e.st.ratio/n)
		st.OperatorPct[e.st.rootOp]++
		st.OperatorFrequencies[e.st.rootOp] = append(st.OperatorFrequencies[e.st.rootOp], f)
		for vc, c := range e.st.vcCounts {
			vcFreqSamples[vc] = append(vcFreqSamples[vc], c)
		}
	}
	if len(st.Frequencies) > 0 {
		st.AvgFrequency = freqSum / float64(len(st.Frequencies))
	}
	if len(entries) > 0 {
		for op, c := range st.OperatorPct {
			st.OperatorPct[op] = c / float64(len(entries)) * 100
		}
	}
	for vc, jset := range vcJobs {
		st.VCNames = append(st.VCNames, vc)
		st.VCJobOverlapPct[vc] = pct(len(vcJobsOverlap[vc]), len(jset))
		if samples := vcFreqSamples[vc]; len(samples) > 0 {
			var s float64
			for _, x := range samples {
				s += x
			}
			st.VCAvgFrequency[vc] = s / float64(len(samples))
		}
	}
	sort.Strings(st.VCNames)

	st.OverlapsPerJob = values(perJob)
	st.OverlapsPerInput = values(perInput)
	st.OverlapsPerUser = values(perUser)
	st.OverlapsPerVC = values(perVC)
	return st
}

// computeOverlapStatsSerial is the single-threaded reference the sharded
// path is diffed against — the pre-scale-out walk, with one fix pinned into
// both: per-signature distributions emit in sorted signature order rather
// than map iteration order, so the output is deterministic at all.
func computeOverlapStatsSerial(obs []workload.Observation) *OverlapStats {
	st := newOverlapStats()
	if len(obs) == 0 {
		return st
	}

	bySig := map[string][]workload.Observation{}
	sigJobs := map[string]map[string]bool{}
	for _, o := range obs {
		bySig[o.NormSig] = append(bySig[o.NormSig], o)
		if sigJobs[o.NormSig] == nil {
			sigJobs[o.NormSig] = map[string]bool{}
		}
		sigJobs[o.NormSig][o.Job.JobID] = true
	}
	crossJob := func(sig string) bool { return len(sigJobs[sig]) >= 2 }
	overlapping := func(sig string) bool { return len(bySig[sig]) >= 2 }

	jobs := map[string]bool{}
	users := map[string]bool{}
	jobsOverlapping := map[string]bool{}
	usersOverlapping := map[string]bool{}
	vcJobs := map[string]map[string]bool{}
	vcJobsOverlap := map[string]map[string]bool{}
	vcFreqSamples := map[string][]float64{}
	perJob := map[string]float64{}
	perInput := map[string]float64{}
	perUser := map[string]float64{}
	perVC := map[string]float64{}
	overlapOccurrences := 0

	for _, o := range obs {
		jobs[o.Job.JobID] = true
		users[o.Job.User] = true
		if vcJobs[o.Job.VC] == nil {
			vcJobs[o.Job.VC] = map[string]bool{}
			vcJobsOverlap[o.Job.VC] = map[string]bool{}
		}
		vcJobs[o.Job.VC][o.Job.JobID] = true

		if overlapping(o.NormSig) {
			overlapOccurrences++
			perJob[o.Job.JobID]++
			perUser[o.Job.User]++
			perVC[o.Job.VC]++
			for _, in := range o.Inputs {
				perInput[in]++
			}
		}
		if crossJob(o.NormSig) {
			jobsOverlapping[o.Job.JobID] = true
			usersOverlapping[o.Job.User] = true
			vcJobsOverlap[o.Job.VC][o.Job.JobID] = true
		}
	}

	st.TotalJobs = len(jobs)
	st.TotalUsers = len(users)
	st.TotalOccurrences = len(obs)
	st.PctJobsOverlapping = pct(len(jobsOverlapping), len(jobs))
	st.PctUsersOverlapping = pct(len(usersOverlapping), len(users))
	st.PctSubgraphsOverlapping = pct(overlapOccurrences, len(obs))

	// Per-signature distributions (Figure 5), operator breakdown over
	// *distinct* overlapping computations (Figure 4a's "percentage of
	// subgraphs"), and within-VC frequency samples for Figure 2b, in
	// canonical signature order.
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	var freqSum float64
	distinctOverlaps := 0
	for _, sig := range sigs {
		g := bySig[sig]
		if len(g) < 2 {
			continue
		}
		distinctOverlaps++
		f := float64(len(g))
		st.Frequencies = append(st.Frequencies, f)
		freqSum += f
		var lat, bytes, ratio float64
		vcCounts := map[string]float64{}
		for _, o := range g {
			lat += o.Latency
			bytes += float64(o.Bytes)
			if o.JobCPU > 0 {
				ratio += o.CumulativeCost / o.JobCPU
			}
			vcCounts[o.Job.VC]++
		}
		n := float64(len(g))
		st.Runtimes = append(st.Runtimes, lat/n)
		st.SizesBytes = append(st.SizesBytes, bytes/n)
		st.CostRatios = append(st.CostRatios, ratio/n)
		st.OperatorPct[g[0].RootOp]++
		st.OperatorFrequencies[g[0].RootOp] = append(st.OperatorFrequencies[g[0].RootOp], f)
		// Figure 2b samples the computation's frequency *within* each VC
		// it occurs in.
		for vc, c := range vcCounts {
			vcFreqSamples[vc] = append(vcFreqSamples[vc], c)
		}
	}
	if len(st.Frequencies) > 0 {
		st.AvgFrequency = freqSum / float64(len(st.Frequencies))
	}

	// Normalize operator breakdown to percentages.
	if distinctOverlaps > 0 {
		for op, c := range st.OperatorPct {
			st.OperatorPct[op] = c / float64(distinctOverlaps) * 100
		}
	}

	// Per-VC aggregates (Figure 2).
	for vc, jset := range vcJobs {
		st.VCNames = append(st.VCNames, vc)
		st.VCJobOverlapPct[vc] = pct(len(vcJobsOverlap[vc]), len(jset))
		if samples := vcFreqSamples[vc]; len(samples) > 0 {
			var s float64
			for _, x := range samples {
				s += x
			}
			st.VCAvgFrequency[vc] = s / float64(len(samples))
		}
	}
	sort.Strings(st.VCNames)

	st.OverlapsPerJob = values(perJob)
	st.OverlapsPerInput = values(perInput)
	st.OverlapsPerUser = values(perUser)
	st.OverlapsPerVC = values(perVC)
	return st
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total) * 100
}

func values(m map[string]float64) []float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// union adds src's keys to dst.
func union(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

// sumCounts adds src's counts into dst. The counts are integer-valued
// floats (increments of 1), so the cross-worker sum is exact and
// order-independent.
func sumCounts(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}
