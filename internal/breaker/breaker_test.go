package breaker

import (
	"errors"
	"sync"
	"testing"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := New("dep", 3, 10)
	if b.State() != Closed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}
	for i := 0; i < 2; i++ {
		if !b.Allow(0) {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Observe(0, false)
	}
	if b.State() != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	if !b.Allow(0) {
		t.Fatal("closed breaker rejected request at threshold-1")
	}
	b.Observe(5, false)
	if b.State() != Open {
		t.Fatalf("state after 3/3 failures = %v, want open", b.State())
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b := New("dep", 3, 10)
	b.Observe(0, false)
	b.Observe(0, false)
	b.Observe(0, true) // resets the consecutive-failure run
	b.Observe(0, false)
	b.Observe(0, false)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (run was reset)", b.State())
	}
	b.Observe(0, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
}

func TestBreakerShortCircuitsWhileOpen(t *testing.T) {
	b := New("dep", 1, 10)
	b.Observe(0, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	for now := int64(1); now < 10; now++ {
		if b.Allow(now) {
			t.Fatalf("open breaker admitted a request at t=%d (cooldown ends at 10)", now)
		}
	}
	if got := b.ShortCircuits(); got != 9 {
		t.Fatalf("ShortCircuits = %d, want 9", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := New("dep", 1, 10)
	b.Observe(0, false) // open at t=0

	if !b.Ready(10) {
		t.Fatal("Ready(10) = false, want true (cooldown elapsed)")
	}
	if b.State() != Open {
		t.Fatal("Ready must not transition state")
	}
	if !b.Allow(10) {
		t.Fatal("breaker rejected the half-open probe at cooldown expiry")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// While the probe is outstanding, everything else short-circuits.
	if b.Allow(11) {
		t.Fatal("half-open breaker admitted a second request")
	}
	// Probe failure re-opens for a fresh cooldown from its observation time.
	b.Observe(12, false)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow(20) {
		t.Fatal("re-opened breaker admitted a request before the fresh cooldown (ends at 22)")
	}
	if !b.Allow(22) {
		t.Fatal("breaker rejected the second probe after the fresh cooldown")
	}
	// Probe success closes the breaker.
	b.Observe(22, true)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow(23) {
		t.Fatal("closed breaker rejected a request")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens = %d, want 2", got)
	}
}

func TestBreakerIgnoresStragglersWhileOpen(t *testing.T) {
	b := New("dep", 2, 100)
	if !b.Allow(0) || !b.Allow(0) || !b.Allow(0) {
		t.Fatal("closed breaker rejected requests")
	}
	b.Observe(0, false)
	b.Observe(0, false) // trips
	// A straggler success from a request admitted before the trip must not
	// close the breaker.
	b.Observe(1, true)
	if b.State() != Open {
		t.Fatalf("state after straggler success = %v, want open", b.State())
	}
}

func TestBreakerParamFloors(t *testing.T) {
	b := New("dep", 0, 0)
	b.Observe(0, false) // threshold floored to 1
	if b.State() != Open {
		t.Fatalf("state = %v, want open with threshold floor 1", b.State())
	}
	if !b.Allow(1) { // cooldown floored to 1
		t.Fatal("breaker rejected probe after floored cooldown")
	}
}

func TestOpenErrorMessage(t *testing.T) {
	err := error(&OpenError{Dep: "metadata"})
	var oe *OpenError
	if !errors.As(err, &oe) || oe.Dep != "metadata" {
		t.Fatalf("errors.As failed on %v", err)
	}
	if want := "breaker: metadata circuit open, request short-circuited"; err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	// Race-detector exercise: concurrent Allow/Observe/State/counters must
	// be safe; the breaker must end in a consistent state (open, since every
	// outcome is a failure).
	b := New("dep", 5, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for now := int64(0); now < 200; now++ {
				if b.Allow(now) {
					b.Observe(now, false)
				}
				_ = b.State()
				_ = b.Opens()
				_ = b.ShortCircuits()
				_ = b.Ready(now)
			}
		}()
	}
	wg.Wait()
	if b.State() != Open {
		t.Fatalf("state = %v, want open after all-failure traffic", b.State())
	}
	if b.Opens() == 0 {
		t.Fatal("Opens = 0, want > 0")
	}
}

// TestBreakerProbeCounters pins the half-open probe accounting: every
// probe admitted after a cooldown is counted, and its observed outcome
// lands in exactly one of ProbeSuccesses/ProbeFailures. Earlier versions
// counted opens only, so dashboards could not tell "still failing at
// every probe" from "never probed at all".
func TestBreakerProbeCounters(t *testing.T) {
	b := New("dep", 1, 10)
	var transitions []string
	b.OnStateChange = func(name string, from, to State, now int64) {
		transitions = append(transitions, from.String()+">"+to.String())
	}

	b.Observe(0, false) // trip at t=0
	if !b.Allow(10) {   // probe 1
		t.Fatal("probe 1 rejected")
	}
	b.Observe(10, false) // probe 1 fails, re-open
	if !b.Allow(20) {    // probe 2
		t.Fatal("probe 2 rejected")
	}
	b.Observe(20, true) // probe 2 succeeds, close

	if got := b.Probes(); got != 2 {
		t.Fatalf("Probes = %d, want 2", got)
	}
	if got := b.ProbeFailures(); got != 1 {
		t.Fatalf("ProbeFailures = %d, want 1", got)
	}
	if got := b.ProbeSuccesses(); got != 1 {
		t.Fatalf("ProbeSuccesses = %d, want 1", got)
	}
	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}
