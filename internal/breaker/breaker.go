// Package breaker implements a per-dependency circuit breaker on the
// job service's logical clock.
//
// A breaker guards one downstream dependency (the metadata service, the
// view store). It is Closed in healthy operation; a run of consecutive
// failures trips it Open, after which requests are short-circuited —
// rejected instantly with an OpenError instead of being attempted — so a
// failing dependency is not hammered by the very traffic it is already
// unable to serve (the amplification the paper's operating regime of tens
// of thousands of concurrent jobs would otherwise produce). Once a
// cooldown has elapsed on the logical clock, the next request is admitted
// as a half-open probe: its success closes the breaker, its failure
// re-opens it for another cooldown.
//
// Time is the cluster's simulated clock (abstract seconds), never the
// wall clock, so breaker behavior in tests is as deterministic as the
// fault schedule driving it. The caller contract is Allow → operation →
// Observe: every operation admitted by Allow must report its outcome to
// Observe exactly once.
package breaker

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// State is the breaker position.
type State int32

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed State = iota
	// Open: requests are short-circuited until the cooldown elapses.
	Open
	// HalfOpen: one probe is in flight; everything else short-circuits.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// OpenError is the short-circuit error returned on behalf of an open
// breaker: the dependency was not contacted at all. It is permanent for
// the attempt (retrying immediately cannot help — the breaker will keep
// rejecting until its cooldown elapses), so the executor's transient-retry
// loop does not spin on it; the job frontend degrades instead.
type OpenError struct{ Dep string }

func (e *OpenError) Error() string {
	return fmt.Sprintf("breaker: %s circuit open, request short-circuited", e.Dep)
}

// Breaker is one dependency's circuit breaker. Safe for concurrent use.
type Breaker struct {
	name      string
	threshold int
	cooldown  int64

	// OnStateChange, if set, is invoked after every state transition
	// (outside the breaker's lock, so it may take its own locks but the
	// reported transition can be momentarily stale under contention). The
	// observability layer wires metric bumps here. Set before first use;
	// it is read without synchronization.
	OnStateChange func(name string, from, to State, now int64)

	mu          sync.Mutex
	state       State
	consecutive int
	openedAt    int64

	opens          atomic.Int64
	shorts         atomic.Int64
	probes         atomic.Int64
	probeSuccesses atomic.Int64
	probeFailures  atomic.Int64
}

// New returns a Closed breaker named for its dependency. threshold is the
// consecutive-failure count that trips it (min 1); cooldown is how long it
// stays Open, in logical-clock seconds (min 1), before admitting a probe.
func New(name string, threshold int, cooldown int64) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown < 1 {
		cooldown = 1
	}
	return &Breaker{name: name, threshold: threshold, cooldown: cooldown}
}

// Name returns the dependency name the breaker guards.
func (b *Breaker) Name() string { return b.name }

// Allow reports whether a request may proceed at logical time now.
// Closed always admits. Open admits nothing until the cooldown elapses,
// then flips to HalfOpen and admits exactly one probe; while that probe is
// outstanding every other request is short-circuited. A rejected request
// increments the short-circuit counter — the caller should fail fast with
// an OpenError (or degrade) without touching the dependency.
func (b *Breaker) Allow(now int64) bool {
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true
	case Open:
		if now >= b.openedAt+b.cooldown {
			b.state = HalfOpen
			b.probes.Add(1)
			b.mu.Unlock()
			b.notify(Open, HalfOpen, now)
			return true // the probe
		}
	}
	b.shorts.Add(1)
	b.mu.Unlock()
	return false
}

// Ready is Allow without side effects: it reports whether a request at
// logical time now would be admitted, changing nothing. Planning code uses
// it to decide whether to take a dependency into a plan at all.
func (b *Breaker) Ready(now int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == Closed || (b.state == Open && now >= b.openedAt+b.cooldown)
}

// Observe reports the outcome of a request Allow admitted. In Closed
// state, a failure extends the consecutive-failure run (tripping Open at
// the threshold) and a success resets it. In HalfOpen state the outcome is
// the probe's verdict: success closes the breaker (counted in
// ProbeSuccesses), failure re-opens it for a fresh cooldown (counted in
// ProbeFailures). Outcomes arriving while Open — stragglers admitted
// before the trip — are ignored.
func (b *Breaker) Observe(now int64, ok bool) {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case Closed:
		if ok {
			b.consecutive = 0
			b.mu.Unlock()
			return
		}
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.trip(now)
			b.mu.Unlock()
			b.notify(from, Open, now)
			return
		}
	case HalfOpen:
		if ok {
			b.state = Closed
			b.consecutive = 0
			b.probeSuccesses.Add(1)
			b.mu.Unlock()
			b.notify(from, Closed, now)
			return
		}
		b.probeFailures.Add(1)
		b.trip(now)
		b.mu.Unlock()
		b.notify(from, Open, now)
		return
	}
	b.mu.Unlock()
}

// trip moves the breaker to Open at time now. Callers hold b.mu.
func (b *Breaker) trip(now int64) {
	b.state = Open
	b.openedAt = now
	b.consecutive = 0
	b.opens.Add(1)
}

// notify reports a state transition to OnStateChange, if set. Called
// after the breaker's lock is released.
func (b *Breaker) notify(from, to State, now int64) {
	if b.OnStateChange != nil {
		b.OnStateChange(b.name, from, to, now)
	}
}

// State returns the current position without transitioning it (an Open
// breaker past its cooldown still reads Open until Allow admits a probe).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts Closed→Open and HalfOpen→Open transitions.
func (b *Breaker) Opens() int64 { return b.opens.Load() }

// ShortCircuits counts requests rejected without touching the dependency.
func (b *Breaker) ShortCircuits() int64 { return b.shorts.Load() }

// Probes counts half-open probes admitted after a cooldown;
// ProbeSuccesses and ProbeFailures count their observed outcomes (a probe
// whose caller never reports to Observe is admitted but has no outcome).
func (b *Breaker) Probes() int64         { return b.probes.Load() }
func (b *Breaker) ProbeSuccesses() int64 { return b.probeSuccesses.Load() }
func (b *Breaker) ProbeFailures() int64  { return b.probeFailures.Load() }
