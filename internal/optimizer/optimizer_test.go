package optimizer

import (
	"testing"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/expr"
	"cloudviews/internal/metadata"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

func logSchema() data.Schema {
	return data.Schema{
		{Name: "uid", Kind: data.KindInt},
		{Name: "page", Kind: data.KindString},
		{Name: "dur", Kind: data.KindFloat},
	}
}

type testEnv struct {
	cat  *catalog.Catalog
	st   *storage.Store
	meta *metadata.Service
	ex   *exec.Executor
	opt  *Optimizer
}

func newEnv(t testing.TB) *testEnv {
	t.Helper()
	cat := catalog.New()
	tab := data.NewTable("logs", "g1", logSchema(), 4)
	data.NewGenerator(11).Fill(tab, 400, 30)
	cat.Register(tab)
	st := storage.NewStore()
	meta := metadata.NewService()
	return &testEnv{
		cat:  cat,
		st:   st,
		meta: meta,
		ex:   &exec.Executor{Catalog: cat, Store: st},
		opt: &Optimizer{
			Meta:                 meta,
			Est:                  &Estimator{Catalog: cat},
			MaxMaterializePerJob: 1,
		},
	}
}

// pipeline is the shared computation used in most tests.
func pipeline(guid string) *plan.Node {
	return plan.Scan("logs", guid, logSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "dur"), expr.Lit(data.Float(100)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 2}})
}

// annotate installs an annotation for the pipeline's agg subgraph.
func annotate(t testing.TB, env *testEnv, n *plan.Node, offline bool) signature.Signature {
	t.Helper()
	sig := signature.Of(n)
	env.meta.LoadAnalysis([]metadata.Annotation{{
		NormSig:     sig.Normalized,
		Tags:        []string{"logs"},
		Props:       plan.PhysicalProps{Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0}, Count: 4}},
		AvgRuntime:  50,
		ExpiryDelta: 3,
		Offline:     offline,
	}})
	return sig
}

func TestEstimatorBasics(t *testing.T) {
	env := newEnv(t)
	est := env.opt.Est
	scan := plan.Scan("logs", "g1", logSchema())
	e := est.Estimate(scan)
	if e.Rows != 400 {
		t.Errorf("scan estimate = %d rows, want catalog's 400", e.Rows)
	}
	filt := scan.Filter(expr.B(expr.OpGt, expr.C(0, "uid"), expr.Lit(data.Int(0))))
	ef := est.Estimate(filt)
	if ef.Rows != 40 { // fixed 10% selectivity
		t.Errorf("filter estimate = %d, want 40", ef.Rows)
	}
	if ef.Cost <= e.Cost {
		t.Error("filter must add cost")
	}
	// Unknown table falls back to the default guess.
	unknown := est.Estimate(plan.Scan("mystery", "g", logSchema()))
	if unknown.Rows != estDefaultTableRows {
		t.Errorf("unknown table estimate = %d", unknown.Rows)
	}
	// View scans report actual stats.
	vs := plan.ViewScan("/v/1", logSchema(), "p", "n")
	vs.ViewRows, vs.ViewBytes = 7, 700
	ev := est.Estimate(vs)
	if ev.Rows != 7 || !ev.Actual {
		t.Errorf("view estimate = %+v", ev)
	}
}

func TestFirstJobBuildsSecondJobReuses(t *testing.T) {
	env := newEnv(t)
	agg := pipeline("g1")
	sig := annotate(t, env, agg, false)

	// Job 1: no view exists yet -> follow-up phase injects Materialize.
	job1 := agg.Output("o")
	anns := env.meta.RelevantViews("vc1", []string{"logs"})
	p1, d1 := env.opt.Optimize(job1, "job1", anns, 0)
	if len(d1.ViewsBuilt) != 1 || len(d1.ViewsUsed) != 0 {
		t.Fatalf("job1 decision: built=%d used=%d", len(d1.ViewsBuilt), len(d1.ViewsUsed))
	}
	if d1.ViewsBuilt[0].PreciseSig != sig.Precise {
		t.Error("built wrong signature")
	}
	res1, err := env.ex.Run(p1, "job1", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the job manager reporting the view.
	v, err := env.st.Get(d1.ViewsBuilt[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	env.meta.ReportMaterialized(metadata.ViewInfo{
		PreciseSig: v.PreciseSig, NormSig: v.NormSig, Path: v.Path,
		Schema: v.Schema, Props: v.Props, Rows: v.Rows, Bytes: v.LogicalBytes, EncodedBytes: v.Bytes,
		ProducerJobID: "job1", ExpiresAt: 100,
	})

	// Job 2 (same recurring instance): plan search rewrites to the view.
	job2 := pipeline("g1").Output("o")
	p2, d2 := env.opt.Optimize(job2, "job2", anns, 1)
	if len(d2.ViewsUsed) != 1 || len(d2.ViewsBuilt) != 0 {
		t.Fatalf("job2 decision: used=%d built=%d", len(d2.ViewsUsed), len(d2.ViewsBuilt))
	}
	res2, err := env.ex.Run(p2, "job2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !data.RowsEqual(res1.Outputs["o"], res2.Outputs["o"]) {
		t.Error("reuse changed job output")
	}
	if res2.TotalCPU >= res1.TotalCPU {
		t.Errorf("reuse CPU %.1f should beat build CPU %.1f", res2.TotalCPU, res1.TotalCPU)
	}
	// The estimated cost of the rewritten plan must be lower too.
	if d2.EstimatedCost >= d1.EstimatedCost {
		t.Error("rewritten plan should be estimated cheaper")
	}
}

func TestNewInstanceDoesNotMatchOldView(t *testing.T) {
	env := newEnv(t)
	agg := pipeline("g1")
	annotate(t, env, agg, false)
	anns := env.meta.RelevantViews("vc1", []string{"logs"})

	// Build the view for GUID g1.
	p1, d1 := env.opt.Optimize(pipeline("g1").Output("o"), "job1", anns, 0)
	if _, err := env.ex.Run(p1, "job1", 0); err != nil {
		t.Fatal(err)
	}
	v, _ := env.st.Get(d1.ViewsBuilt[0].Path)
	env.meta.ReportMaterialized(metadata.ViewInfo{
		PreciseSig: v.PreciseSig, NormSig: v.NormSig, Path: v.Path,
		Rows: v.Rows, Bytes: v.LogicalBytes, EncodedBytes: v.Bytes, ExpiresAt: 100,
	})

	// Next recurring instance: new data delivered.
	if err := env.cat.Deliver("logs", "g2", func(nt *data.Table) {
		data.NewGenerator(12).Fill(nt, 400, 30)
	}); err != nil {
		t.Fatal(err)
	}
	// Same template, new GUID: the normalized signature matches the
	// annotation, but the precise signature differs, so the optimizer
	// must *build* (not reuse) — the stale view can never be read.
	p2, d2 := env.opt.Optimize(pipeline("g2").Output("o"), "job2", anns, 1)
	if len(d2.ViewsUsed) != 0 {
		t.Fatal("stale view reused across data versions")
	}
	if len(d2.ViewsBuilt) != 1 {
		t.Fatal("new instance should build its own view")
	}
	if _, err := env.ex.Run(p2, "job2", 1); err != nil {
		t.Fatal(err)
	}
}

func TestCostBasedRejection(t *testing.T) {
	env := newEnv(t)
	agg := pipeline("g1")
	sig := annotate(t, env, agg, false)
	anns := env.meta.RelevantViews("vc1", []string{"logs"})
	// Register a view whose read cost dwarfs recomputation.
	env.meta.ReportMaterialized(metadata.ViewInfo{
		PreciseSig: sig.Precise, NormSig: sig.Normalized, Path: "/v/huge",
		Rows: 50_000_000, Bytes: 4_000_000_000, ExpiresAt: 100,
	})
	p, d := env.opt.Optimize(pipeline("g1").Output("o"), "job", anns, 0)
	if len(d.ViewsUsed) != 0 {
		t.Fatal("optimizer must reject an over-expensive view")
	}
	if len(d.ViewsRejected) != 1 || d.ViewsRejected[0] != sig.Precise {
		t.Errorf("rejected = %v", d.ViewsRejected)
	}
	// And it must not rebuild a view that already exists.
	if len(d.ViewsBuilt) != 0 {
		t.Error("must not rebuild existing view")
	}
	// The job still runs fine (recomputes).
	if _, err := env.ex.Run(p, "job", 0); err != nil {
		t.Fatal(err)
	}
}

func TestPerJobMaterializationLimit(t *testing.T) {
	env := newEnv(t)
	// Annotate two nested subgraphs: the filter and the agg above it.
	filt := plan.Scan("logs", "g1", logSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "dur"), expr.Lit(data.Float(100))))
	agg := filt.ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 2}})
	sigF := signature.Of(filt)
	sigA := signature.Of(agg)
	env.meta.LoadAnalysis([]metadata.Annotation{
		{NormSig: sigF.Normalized, Tags: []string{"logs"}, AvgRuntime: 10},
		{NormSig: sigA.Normalized, Tags: []string{"logs"}, AvgRuntime: 10},
	})
	anns := env.meta.RelevantViews("vc1", []string{"logs"})

	// Limit 1: bottom-up order materializes the *smaller* subgraph (filter).
	_, d := env.opt.Optimize(agg.Output("o"), "job", anns, 0)
	if len(d.ViewsBuilt) != 1 {
		t.Fatalf("built %d views, want 1", len(d.ViewsBuilt))
	}
	if d.ViewsBuilt[0].PreciseSig != sigF.Precise {
		t.Error("bottom-up order should pick the smaller subgraph first")
	}

	// Limit 2 on a fresh metadata state: both get materialized.
	env2 := newEnv(t)
	env2.meta.LoadAnalysis([]metadata.Annotation{
		{NormSig: sigF.Normalized, Tags: []string{"logs"}, AvgRuntime: 10},
		{NormSig: sigA.Normalized, Tags: []string{"logs"}, AvgRuntime: 10},
	})
	env2.opt.MaxMaterializePerJob = 2
	p2, d2 := env2.opt.Optimize(agg.Output("o"), "job", env2.meta.RelevantViews("vc1", []string{"logs"}), 0)
	if len(d2.ViewsBuilt) != 2 {
		t.Fatalf("built %d views, want 2", len(d2.ViewsBuilt))
	}
	// Nested materializations execute correctly.
	res, err := env2.ex.Run(p2, "job", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MaterializedPaths) != 2 {
		t.Errorf("executed materializations = %v", res.MaterializedPaths)
	}
}

func TestConcurrentBuildLockPreventsDoubleMaterialization(t *testing.T) {
	env := newEnv(t)
	agg := pipeline("g1")
	annotate(t, env, agg, false)
	anns := env.meta.RelevantViews("vc1", []string{"logs"})

	// Two concurrent jobs optimized before either executes: only the
	// first gets to materialize (build-build synchronization).
	_, d1 := env.opt.Optimize(pipeline("g1").Output("o"), "jobA", anns, 0)
	_, d2 := env.opt.Optimize(pipeline("g1").Output("o"), "jobB", anns, 0)
	if len(d1.ViewsBuilt) != 1 {
		t.Error("jobA should build")
	}
	if len(d2.ViewsBuilt) != 0 {
		t.Error("jobB should be locked out")
	}
}

func TestNoAnnotationsMeansUntouchedPlan(t *testing.T) {
	env := newEnv(t)
	job := pipeline("g1").Output("o")
	p, d := env.opt.Optimize(job, "job", nil, 0)
	if p != job {
		t.Error("plan should be returned unchanged with no annotations")
	}
	if len(d.ViewsBuilt)+len(d.ViewsUsed) != 0 {
		t.Error("no decisions expected")
	}
}

func TestMaterializeEnforcesAnnotatedPhysicalDesign(t *testing.T) {
	env := newEnv(t)
	agg := pipeline("g1")
	annotate(t, env, agg, false)
	anns := env.meta.RelevantViews("vc1", []string{"logs"})
	p, d := env.opt.Optimize(agg.Output("o"), "job", anns, 0)
	if _, err := env.ex.Run(p, "job", 0); err != nil {
		t.Fatal(err)
	}
	v, err := env.st.Get(d.ViewsBuilt[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if v.PartitionCount() != 4 || v.Props.Part.Kind != plan.PartHash {
		t.Errorf("view design not enforced: %d partitions, %v", v.PartitionCount(), v.Props.Part.Kind)
	}
}

func TestOfflineViewPlans(t *testing.T) {
	env := newEnv(t)
	agg := pipeline("g1")
	sig := annotate(t, env, agg, true) // offline mode
	anns := env.meta.RelevantViews("vc1", []string{"logs"})

	plans, intents := env.opt.OfflineViewPlans(agg.Output("o"), "offline-job", anns, 0)
	if len(plans) != 1 || len(intents) != 1 {
		t.Fatalf("offline plans = %d, intents = %d", len(plans), len(intents))
	}
	// The offline plan materializes the view without running the full job.
	res, err := env.ex.Run(plans[0], "offline-job", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MaterializedPaths) != 1 {
		t.Error("offline plan did not materialize")
	}
	if env.st.LookupPrecise(sig.Precise) == nil {
		t.Error("view not in store after offline run")
	}
	// Second call: lock/exists checks prevent duplicates.
	env.meta.ReportMaterialized(metadata.ViewInfo{PreciseSig: sig.Precise, Path: "/v", ExpiresAt: 10})
	plans2, _ := env.opt.OfflineViewPlans(agg.Output("o"), "offline-2", anns, 1)
	if len(plans2) != 0 {
		t.Error("offline must not rebuild existing views")
	}
	// Online annotations are ignored by the offline extractor.
	annotate(t, env, agg, false)
	plans3, _ := env.opt.OfflineViewPlans(agg.Output("o"), "offline-3",
		env.meta.RelevantViews("vc1", []string{"logs"}), 2)
	if len(plans3) != 0 {
		t.Error("online annotations must not produce offline plans")
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	env := newEnv(t)
	agg := pipeline("g1")
	annotate(t, env, agg, false)
	anns := env.meta.RelevantViews("vc1", []string{"logs"})
	job := agg.Output("o")
	before := job.EncodeString(expr.Precise)
	_, _ = env.opt.Optimize(job, "job", anns, 0)
	if job.EncodeString(expr.Precise) != before {
		t.Error("Optimize mutated the input plan")
	}
	if plan.Count(job) != 5 {
		t.Error("input plan structure changed")
	}
}

func TestEstimatorOperatorCoverage(t *testing.T) {
	env := newEnv(t)
	est := env.opt.Est
	scan := plan.Scan("logs", "g1", logSchema()) // 400 rows in catalog

	// Join: foreign-key assumption keeps probe cardinality.
	j := scan.HashJoin(plan.Scan("logs", "g1", logSchema()), []int{0}, []int{0})
	ej := est.Estimate(j)
	if ej.Rows != 400 {
		t.Errorf("join estimate = %d", ej.Rows)
	}
	if ej.Cost <= 2*est.Estimate(scan).Cost {
		t.Error("join cost must include build side")
	}

	// Aggregate: fixed reduction.
	agg := scan.HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 0}})
	if got := est.Estimate(agg).Rows; got != 40 {
		t.Errorf("agg estimate = %d", got)
	}

	// Top clamps.
	if got := est.Estimate(scan.Top(5)).Rows; got != 5 {
		t.Errorf("top estimate = %d", got)
	}
	if got := est.Estimate(scan.Top(1 << 40)).Rows; got != 400 {
		t.Errorf("top overclamp = %d", got)
	}

	// Union adds.
	u := scan.UnionAll(plan.Scan("logs", "g1", logSchema()))
	if got := est.Estimate(u).Rows; got != 800 {
		t.Errorf("union estimate = %d", got)
	}

	// Process keeps cardinality, costs heavily.
	pr := scan.Process("udo", "h")
	ep := est.Estimate(pr)
	if ep.Rows != 400 {
		t.Errorf("process estimate = %d", ep.Rows)
	}
	if ep.Cost <= est.Estimate(scan).Cost+400 {
		t.Error("UDO cost too cheap in estimate")
	}

	// Sort/exchange/output pass cardinality through.
	for _, n := range []*plan.Node{scan.Sort([]int{0}, nil), scan.Gather(), scan.Output("o")} {
		if got := est.Estimate(n).Rows; got != 400 {
			t.Errorf("%v estimate = %d", n.Kind, got)
		}
	}

	// ViewReadCost is monotone in rows and bytes.
	if ViewReadCost(100, 1000) >= ViewReadCost(1000, 1000) {
		t.Error("read cost not monotone in rows")
	}
	if ViewReadCost(100, 1000) >= ViewReadCost(100, 100000) {
		t.Error("read cost not monotone in bytes")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	// Optimizing an already-optimized plan must be stable: the rewritten
	// plan reuses the same views and builds nothing new.
	env := newEnv(t)
	agg := pipeline("g1")
	annotate(t, env, agg, false)
	anns := env.meta.RelevantViews("vc1", []string{"logs"})
	p1, _ := env.opt.Optimize(pipeline("g1").Output("o"), "job1", anns, 0)
	if _, err := env.ex.Run(p1, "job1", 0); err != nil {
		t.Fatal(err)
	}
	v, _ := env.st.Get(storageLookup(env, t))
	env.meta.ReportMaterialized(metadata.ViewInfo{
		PreciseSig: v.PreciseSig, NormSig: v.NormSig, Path: v.Path,
		Rows: v.Rows, Bytes: v.LogicalBytes, EncodedBytes: v.Bytes, ExpiresAt: 100,
	})
	p2, d2 := env.opt.Optimize(pipeline("g1").Output("o"), "job2", anns, 1)
	if len(d2.ViewsUsed) != 1 {
		t.Fatal("no reuse")
	}
	// Second optimization of the rewritten plan: no further changes.
	p3, d3 := env.opt.Optimize(p2, "job3", anns, 2)
	if len(d3.ViewsBuilt) != 0 {
		t.Error("re-optimization built views")
	}
	if p3.EncodeString(expr.Precise) != p2.EncodeString(expr.Precise) {
		t.Error("re-optimization changed an already-optimal plan")
	}
}

// storageLookup finds the single stored view's path.
func storageLookup(env *testEnv, t *testing.T) string {
	t.Helper()
	vs := env.st.Views()
	if len(vs) != 1 {
		t.Fatalf("store has %d views", len(vs))
	}
	return vs[0].Path
}

func TestInvertedIndexFalsePositivesAreHarmless(t *testing.T) {
	// §6.1: the metadata lookup may return annotations whose signatures do
	// not occur in the job (tag collisions). The optimizer must match
	// actual signatures and leave the plan untouched.
	env := newEnv(t)
	env.meta.LoadAnalysis([]metadata.Annotation{{
		NormSig:    "ffff-not-in-this-job",
		Tags:       []string{"logs"}, // tag matches the job's input
		AvgRuntime: 10,
	}})
	anns := env.meta.RelevantViews("vc1", []string{"logs"})
	if len(anns) != 1 {
		t.Fatalf("lookup = %d", len(anns))
	}
	job := pipeline("g1").Output("o")
	p, d := env.opt.Optimize(job, "job", anns, 0)
	if len(d.ViewsBuilt)+len(d.ViewsUsed)+len(d.ViewsRejected) != 0 {
		t.Errorf("false positive caused decisions: %+v", d)
	}
	if p.EncodeString(expr.Precise) != job.EncodeString(expr.Precise) {
		t.Error("false positive changed the plan")
	}
	// And no build lock was taken.
	if _, _, locks, _, _ := env.meta.Stats(); locks != 0 {
		t.Errorf("locks = %d", locks)
	}
}
