// Package optimizer implements the plan-search extensions of paper
// Figure 10: cost estimation, top-down view matching (query rewriting with
// materialized views), and the follow-up bottom-up view-materialization
// phase, all driven by annotations fetched from the metadata service.
package optimizer

import (
	"cloudviews/internal/catalog"
	"cloudviews/internal/exec"
	"cloudviews/internal/plan"
)

// Estimate is a compile-time guess at a subgraph's output and cost.
type Estimate struct {
	Rows  int64
	Bytes int64
	// Cost is the cumulative estimated CPU cost of the subgraph.
	Cost float64
	// Actual reports whether the estimate is grounded in observed
	// statistics (true below a view scan) rather than heuristics.
	Actual bool
}

// Estimator produces deliberately naive compile-time estimates, standing
// in for the production optimizer whose estimates are "often way off"
// (§5.1) — fixed selectivities, independence assumptions, no UDO insight.
// When a subgraph reads a materialized view, the view's actual statistics
// are propagated instead, which is the accuracy benefit §6.3 describes.
type Estimator struct {
	Catalog *catalog.Catalog
}

// Default guesses, intentionally crude.
const (
	estFilterSelectivity  = 0.1
	estAggReduction       = 0.1
	estJoinMultiplier     = 1.0 // foreign-key assumption: |join| = |probe|
	estUDOMultiplier      = 1.0
	estDefaultTableRows   = 100000
	estBytesPerRow        = 64
	estProcessBytesPerRow = 80
)

// Estimate computes the estimate for the subgraph rooted at n. Results are
// not memoized: plans are small and estimation is called per optimization.
func (e *Estimator) Estimate(n *plan.Node) Estimate {
	children := make([]Estimate, len(n.Children))
	var childCost float64
	for i, c := range n.Children {
		children[i] = e.Estimate(c)
		childCost += children[i].Cost
	}
	var est Estimate
	switch n.Kind {
	case plan.OpExtract:
		rows := int64(estDefaultTableRows)
		var bytes int64
		if e.Catalog != nil {
			if t, err := e.Catalog.Get(n.Table); err == nil {
				// Table cardinalities are in the catalog at compile time;
				// SCOPE knows input sizes, it is selectivities it guesses.
				rows = t.NumRows()
				bytes = t.ByteSize()
			}
		}
		if bytes == 0 {
			bytes = rows * estBytesPerRow
		}
		est = Estimate{Rows: rows, Bytes: bytes}
	case plan.OpViewScan:
		// Actual statistics, loaded from the materialized view (§6.3).
		est = Estimate{Rows: n.ViewRows, Bytes: n.ViewBytes, Actual: true}
	case plan.OpFilter:
		est = scaleEstimate(children[0], estFilterSelectivity)
	case plan.OpProject:
		est = Estimate{Rows: children[0].Rows, Bytes: children[0].Rows * estBytesPerRow, Actual: children[0].Actual}
	case plan.OpHashJoin, plan.OpMergeJoin:
		rows := int64(float64(children[0].Rows) * estJoinMultiplier)
		est = Estimate{Rows: rows, Bytes: rows * 2 * estBytesPerRow}
	case plan.OpHashGbAgg, plan.OpStreamGbAgg:
		est = scaleEstimate(children[0], estAggReduction)
	case plan.OpSort, plan.OpExchange, plan.OpSpool, plan.OpOutput, plan.OpMaterialize:
		est = children[0]
	case plan.OpTop:
		rows := children[0].Rows
		if rows > n.N {
			rows = n.N
		}
		est = Estimate{Rows: rows, Bytes: rows * estBytesPerRow, Actual: children[0].Actual}
	case plan.OpUnionAll:
		for _, c := range children {
			est.Rows += c.Rows
			est.Bytes += c.Bytes
		}
	case plan.OpProcess, plan.OpReduce:
		rows := int64(float64(children[0].Rows) * estUDOMultiplier)
		est = Estimate{Rows: rows, Bytes: rows * estProcessBytesPerRow}
	default:
		est = Estimate{}
	}

	inRows := int64(0)
	inBytes := int64(0)
	if len(children) > 0 {
		inRows = children[0].Rows
		inBytes = children[0].Bytes
	} else if n.Kind == plan.OpExtract {
		// Leaf scans are costed on what they read, mirroring the
		// executor's accounting.
		inRows = est.Rows
		inBytes = est.Bytes
	}
	est.Cost = childCost + exec.OperatorCost(n.Kind, inRows, est.Rows, inBytes)
	if n.Kind == plan.OpHashJoin || n.Kind == plan.OpMergeJoin {
		est.Cost += float64(children[1].Rows) * 1.2 // build side
	}
	return est
}

func scaleEstimate(in Estimate, sel float64) Estimate {
	rows := int64(float64(in.Rows) * sel)
	if rows < 1 {
		rows = 1
	}
	return Estimate{Rows: rows, Bytes: rows * estBytesPerRow, Actual: false}
}

// ViewReadCost estimates the cost of scanning a materialized view with the
// given actual statistics, including the startup of the replacement scan.
func ViewReadCost(rows, bytes int64) float64 {
	return exec.OperatorCost(plan.OpViewScan, 0, rows, bytes)
}
