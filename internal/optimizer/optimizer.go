package optimizer

import (
	"cloudviews/internal/metadata"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

// BuildIntent records a view materialization the optimizer injected into
// the plan; the job manager reports completion against it.
type BuildIntent struct {
	PreciseSig string
	NormSig    string
	Path       string
	Props      plan.PhysicalProps
	// ExpiryDelta is copied from the annotation for the runtime to stamp
	// an absolute expiry at publication time.
	ExpiryDelta int64
}

// Decision summarizes what the optimizer did to a job's plan.
type Decision struct {
	// ViewsUsed lists materialized views the final plan reads.
	ViewsUsed []metadata.ViewInfo
	// ViewsBuilt lists materializations injected into the plan.
	ViewsBuilt []BuildIntent
	// ViewsRejected lists precise signatures of available views the
	// cost-based check declined (§4 goal 4, §6.3).
	ViewsRejected []string
	// EstimatedCost is the estimated cost of the final plan.
	EstimatedCost float64
	// MetaUnavailable records that the metadata lookup failed and the job
	// gracefully degraded to no-reuse (the frontend skipped optimization
	// rather than aborting — see core.Config.MetadataStrict).
	MetaUnavailable bool
	// QuarantinedViews lists paths of views that failed integrity or
	// existence checks mid-execution and were quarantined, forcing the job
	// to re-optimize without them.
	QuarantinedViews []string
	// BreakerOpen names the dependency ("metadata", "viewstore") whose
	// circuit breaker was open when this plan was chosen, forcing the job
	// to skip reuse without contacting the dependency at all. Empty when
	// no breaker interfered.
	BreakerOpen string
}

// Optimizer is the CloudViews-extended plan search. It consults the
// metadata service through the API interface, so it works identically
// against the in-process service and the HTTP client.
type Optimizer struct {
	Meta metadata.API
	Est  *Estimator
	// MaxMaterializePerJob bounds how many views one job may build
	// (paper §6.2: "limit the number of views that could be materialized
	// in a job", adjustable per submission). Zero means no builds.
	MaxMaterializePerJob int
}

// Optimize applies the two CloudViews tasks of Figure 10 to the plan:
//
//  1. Plan-search view matching (top-down, largest subgraphs first): any
//     subgraph whose normalized signature has an annotation and whose
//     precise signature has an available view is replaced by a scan of
//     that view — if the cost-based check approves.
//  2. Follow-up optimization (bottom-up, smallest subgraphs first): for
//     annotated subgraphs not yet materialized, propose materialization
//     to the metadata service; each successful proposal wraps the
//     subgraph in a Materialize operator enforcing the mined physical
//     design, up to the per-job limit.
//
// The input plan is never modified. Both rewrite tasks are copy-on-write:
// the returned plan shares every untouched subtree with the input, and a
// job with no reuse opportunities gets the input plan back without copying
// a single node. now is the simulated time used for lock acquisition.
func (o *Optimizer) Optimize(root *plan.Node, jobID string, anns []metadata.Annotation, now int64) (*plan.Node, *Decision) {
	dec := &Decision{}
	annByNorm := make(map[string]metadata.Annotation, len(anns))
	for _, a := range anns {
		annByNorm[a.NormSig] = a
	}
	if len(annByNorm) == 0 {
		dec.EstimatedCost = o.Est.Estimate(root).Cost
		return root, dec
	}

	// One signature computer serves all passes: copy-on-write rewrites
	// alias copied nodes to their originals (a view scan hashes to the
	// computation it replaced, so copies denote identical signatures),
	// which makes every later pass hash each subgraph at most once.
	comp := signature.NewComputer()
	missed := map[string]bool{}
	rewritten := o.matchViews(root, comp, annByNorm, dec, missed)
	final := o.injectMaterializations(rewritten, jobID, annByNorm, dec, now, comp, missed)
	if len(dec.ViewsBuilt) > 0 && (len(missed) > 0 || len(dec.ViewsRejected) > 0) {
		// Figure 10's closing step: re-optimize the new plan. The
		// injected output operators changed the tree, so the plan search
		// runs once more over it (this is the paper's +28% optimizer-time
		// cost of creating a view; consuming one shrinks the tree and
		// costs less than a plain optimization). A scratch decision
		// absorbs re-detections; only genuinely new matches (a view a
		// concurrent job published between the passes) are kept.
		//
		// The pass is skipped when it provably cannot add a match: every
		// annotated subgraph that lacked a view is now covered by a build
		// lock this job holds (no concurrent job can publish it), and
		// nothing was cost-rejected (an injected materialization raises an
		// enclosing subgraph's recompute estimate, which can flip a
		// rejection, so rejections force the re-match).
		scratch := &Decision{}
		final = o.matchViews(final, comp, annByNorm, scratch, nil)
		dec.ViewsUsed = append(dec.ViewsUsed, scratch.ViewsUsed...)
	}
	dec.EstimatedCost = o.Est.Estimate(final).Cost
	return final, dec
}

// matchViews is the top-down matching task: it tries the current node
// before descending, so the largest materialized views win (§6.3). The
// rewrite is copy-on-write: nodes are copied only on the path from a
// replacement to the root, and the input tree is never mutated. missed,
// when non-nil, collects precise signatures of annotated subgraphs that
// had no materialized view yet — the candidates a later pass could serve.
func (o *Optimizer) matchViews(n *plan.Node, comp *signature.Computer, anns map[string]metadata.Annotation, dec *Decision, missed map[string]bool) *plan.Node {
	if n.Kind != plan.OpExtract && n.Kind != plan.OpViewScan && !n.Transparent() {
		sig := comp.Of(n)
		if _, ok := anns[sig.Normalized]; ok {
			if v, ok := o.Meta.LookupView(sig.Precise); ok {
				if scan := o.tryUseView(n, sig, v, dec); scan != nil {
					return scan
				}
			} else if missed != nil {
				missed[sig.Precise] = true
			}
		}
	}
	var cp *plan.Node
	for i, c := range n.Children {
		r := o.matchViews(c, comp, anns, dec, missed)
		if r != c && cp == nil {
			cp = n.CopyWithChildren()
			comp.Alias(n, cp)
		}
		if cp != nil {
			cp.Children[i] = r
		}
	}
	if cp != nil {
		return cp
	}
	return n
}

// tryUseView performs the cost-based accept/reject: the view is used only
// if scanning it (with its *actual* statistics) is estimated cheaper than
// recomputing the subgraph. Returns the replacement node or nil.
func (o *Optimizer) tryUseView(n *plan.Node, sig signature.Signature, v metadata.ViewInfo, dec *Decision) *plan.Node {
	recompute := o.Est.Estimate(n).Cost
	readCost := ViewReadCost(v.Rows, v.Bytes)
	if readCost >= recompute {
		dec.ViewsRejected = append(dec.ViewsRejected, sig.Precise)
		return nil
	}
	scan := plan.ViewScan(v.Path, n.Schema(), sig.Precise, sig.Normalized)
	scan.ViewRows = v.Rows
	scan.ViewBytes = v.Bytes
	dec.ViewsUsed = append(dec.ViewsUsed, v)
	return scan
}

// injectMaterializations is the follow-up task: bottom-up (post-order), so
// smaller subgraphs — which typically overlap more (§6.2) — are proposed
// first, bounded by the per-job limit. Like matchViews it is copy-on-write
// with one visit per distinct node: only ancestors of an injected
// Materialize are copied. Precise signatures of candidates this job
// acquired a build lock for are removed from missed — no concurrent job
// can publish those views while the lock is held.
func (o *Optimizer) injectMaterializations(root *plan.Node, jobID string, anns map[string]metadata.Annotation, dec *Decision, now int64, comp *signature.Computer, missed map[string]bool) *plan.Node {
	builds := 0
	memo := map[*plan.Node]*plan.Node{}
	var rec func(*plan.Node) *plan.Node
	rec = func(n *plan.Node) *plan.Node {
		if n == nil {
			return nil
		}
		if r, ok := memo[n]; ok {
			return r
		}
		cur := n
		var cp *plan.Node
		for i, ch := range n.Children {
			r := rec(ch)
			if r != ch && cp == nil {
				cp = n.CopyWithChildren()
				comp.Alias(n, cp)
				cur = cp
			}
			if cp != nil {
				cp.Children[i] = r
			}
		}
		res := cur
		switch {
		case n.Kind == plan.OpExtract || n.Kind == plan.OpViewScan ||
			n.Kind == plan.OpOutput || n.Transparent():
		default:
			sig := comp.Of(cur)
			ann, ok := anns[sig.Normalized]
			switch {
			case !ok:
			case ann.Offline:
				// Offline-mode annotations (§6.2) are materialized by the
				// ahead-of-workload phase, never inline — online jobs only
				// consume them (handled by the matching task above).
			case builds >= o.MaxMaterializePerJob:
			case o.viewExists(sig.Precise):
				// Already materialized (maybe used above, maybe rejected by
				// cost); never rebuild.
			case !o.Meta.ProposeMaterialize(sig.Normalized, sig.Precise, jobID, now):
				// Another concurrent job holds the build lock.
			default:
				builds++
				delete(missed, sig.Precise)
				path := storage.PathFor(sig.Precise, jobID)
				dec.ViewsBuilt = append(dec.ViewsBuilt, BuildIntent{
					PreciseSig:  sig.Precise,
					NormSig:     sig.Normalized,
					Path:        path,
					Props:       ann.Props,
					ExpiryDelta: ann.ExpiryDelta,
				})
				res = cur.Materialize(path, sig.Precise, sig.Normalized, ann.Props)
			}
		}
		memo[n] = res
		return res
	}
	return rec(root)
}

func (o *Optimizer) viewExists(preciseSig string) bool {
	_, exists := o.Meta.LookupView(preciseSig)
	return exists
}

// OfflineViewPlans extracts materialize-only plans for annotated subgraphs
// of root, for VCs configured with offline (ahead-of-workload) view
// creation (§6.2). Each returned plan computes exactly one view and
// nothing else; locks are acquired exactly as in the online path.
func (o *Optimizer) OfflineViewPlans(root *plan.Node, jobID string, anns []metadata.Annotation, now int64) ([]*plan.Node, []BuildIntent) {
	annByNorm := make(map[string]metadata.Annotation, len(anns))
	for _, a := range anns {
		if a.Offline {
			annByNorm[a.NormSig] = a
		}
	}
	if len(annByNorm) == 0 {
		return nil, nil
	}
	comp := signature.NewComputer()
	var plans []*plan.Node
	var intents []BuildIntent
	seen := map[string]bool{}
	plan.Walk(root, func(n *plan.Node) {
		if n.Kind == plan.OpExtract || n.Kind == plan.OpViewScan ||
			n.Kind == plan.OpOutput || n.Transparent() {
			return
		}
		sig := comp.Of(n)
		ann, ok := annByNorm[sig.Normalized]
		if !ok || seen[sig.Precise] {
			return
		}
		seen[sig.Precise] = true
		if _, exists := o.Meta.LookupView(sig.Precise); exists {
			return
		}
		if !o.Meta.ProposeMaterialize(sig.Normalized, sig.Precise, jobID, now) {
			return
		}
		path := storage.PathFor(sig.Precise, jobID)
		intents = append(intents, BuildIntent{
			PreciseSig:  sig.Precise,
			NormSig:     sig.Normalized,
			Path:        path,
			Props:       ann.Props,
			ExpiryDelta: ann.ExpiryDelta,
		})
		plans = append(plans, plan.Clone(n).
			Materialize(path, sig.Precise, sig.Normalized, ann.Props).
			Output("__offline__"+sig.Precise))
	})
	return plans, intents
}
