package optimizer

import (
	"net/http/httptest"
	"sync"
	"testing"

	"cloudviews/internal/metadata"
	"cloudviews/internal/signature"
)

// TestDistributedOptimizersOverHTTP wires two optimizer instances (two
// "compiler machines") to one metadata service through its HTTP front end
// — the deployment shape of the production system, where SCOPE compilers
// talk to an AzureSQL-backed service. The Figure 9 protocol must hold
// across the wire: one builder wins the lock, the view published by its
// job manager becomes visible to the other machine's optimizer, and the
// rewrite uses the actual view statistics.
func TestDistributedOptimizersOverHTTP(t *testing.T) {
	env := newEnv(t) // in-process service backs the HTTP handler
	agg := pipeline("g1")
	sig := annotate(t, env, agg, false)

	srv := httptest.NewServer(metadata.Handler(env.meta))
	defer srv.Close()

	mk := func() *Optimizer {
		return &Optimizer{
			Meta:                 metadata.NewClient(srv.URL),
			Est:                  &Estimator{Catalog: env.cat},
			MaxMaterializePerJob: 1,
		}
	}
	optA, optB := mk(), mk()
	anns := optA.Meta.(*metadata.Client).RelevantViews("vc1", []string{"logs"})
	if len(anns) != 1 {
		t.Fatalf("annotations over HTTP = %d", len(anns))
	}

	// Both machines optimize concurrently: exactly one wins the build lock.
	var wg sync.WaitGroup
	decs := make([]*Decision, 2)
	for i, o := range []*Optimizer{optA, optB} {
		wg.Add(1)
		go func(i int, o *Optimizer) {
			defer wg.Done()
			job := []string{"jobA", "jobB"}[i]
			_, decs[i] = o.Optimize(pipeline("g1").Output("o"), job, anns, 0)
		}(i, o)
	}
	wg.Wait()
	builds := len(decs[0].ViewsBuilt) + len(decs[1].ViewsBuilt)
	if builds != 1 {
		t.Fatalf("%d builders across machines, want 1", builds)
	}

	// The winner's job manager executes and reports over HTTP. Re-optimizing
	// under the winner's job ID re-acquires its own lock (owner re-proposal
	// is idempotent), yielding the executable plan with the Materialize.
	var winner *Decision
	winnerJob := "jobA"
	for i, d := range decs {
		if len(d.ViewsBuilt) == 1 {
			winner = d
			winnerJob = []string{"jobA", "jobB"}[i]
		}
	}
	p, _ := env.opt.Optimize(pipeline("g1").Output("o"), winnerJob, anns, 0)
	if _, err := env.ex.Run(p, winnerJob, 0); err != nil {
		t.Fatal(err)
	}
	v, err := env.st.Get(winner.ViewsBuilt[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	client := metadata.NewClient(srv.URL)
	client.ReportMaterialized(metadata.ViewInfo{
		PreciseSig: v.PreciseSig, NormSig: v.NormSig, Path: v.Path,
		Schema: v.Schema, Rows: v.Rows, Bytes: v.LogicalBytes, EncodedBytes: v.Bytes, ExpiresAt: 100,
	})

	// Machine B's next optimization sees and uses the view, with actual
	// statistics injected across the wire.
	p2, d2 := optB.Optimize(pipeline("g1").Output("o"), "jobB2", anns, 1)
	if len(d2.ViewsUsed) != 1 {
		t.Fatalf("machine B did not reuse: %+v", d2)
	}
	res, err := env.ex.Run(p2, "jobB2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["o"]) == 0 {
		t.Error("empty reused result")
	}
	// Signature identity across machines.
	if signature.Of(agg).Precise != sig.Precise {
		t.Error("signature drift")
	}
}
