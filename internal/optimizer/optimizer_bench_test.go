package optimizer

import (
	"testing"

	"cloudviews/internal/metadata"
)

// BenchmarkOptimizeFrontend measures the per-job optimizer cost across the
// three frontend paths a submission can take:
//
//   - noreuse: annotations come back from the lookup but none match the
//     job's signatures (an inverted-index false positive) — the common case
//     for jobs with nothing to share;
//   - use: a materialized view exists and the plan search rewrites the
//     matching subgraph to a ViewScan (the paper's −17% path);
//   - build: no view exists yet, so the follow-up phase injects a
//     materialization and re-runs the plan search (the paper's +28% path).
func BenchmarkOptimizeFrontend(b *testing.B) {
	b.Run("noreuse", func(b *testing.B) {
		env := newEnv(b)
		env.meta.LoadAnalysis([]metadata.Annotation{{
			NormSig:    "ffff-not-in-this-job",
			Tags:       []string{"logs"},
			AvgRuntime: 10,
		}})
		anns := env.meta.RelevantViews("vc1", []string{"logs"})
		job := pipeline("g1").Output("o")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, d := env.opt.Optimize(job, "bench-job", anns, 0)
			if len(d.ViewsBuilt)+len(d.ViewsUsed) != 0 {
				b.Fatal("unexpected decisions on no-reuse path")
			}
		}
	})

	b.Run("use", func(b *testing.B) {
		env := newEnv(b)
		agg := pipeline("g1")
		sig := annotate(b, env, agg, false)
		env.meta.ReportMaterialized(metadata.ViewInfo{
			PreciseSig: sig.Precise, NormSig: sig.Normalized, Path: "/v/bench",
			Rows: 40, Bytes: 4000, ExpiresAt: 1 << 40,
		})
		anns := env.meta.RelevantViews("vc1", []string{"logs"})
		job := pipeline("g1").Output("o")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, d := env.opt.Optimize(job, "bench-job", anns, 0)
			if len(d.ViewsUsed) != 1 {
				b.Fatal("view not used")
			}
		}
	})

	b.Run("build", func(b *testing.B) {
		env := newEnv(b)
		agg := pipeline("g1")
		annotate(b, env, agg, false)
		anns := env.meta.RelevantViews("vc1", []string{"logs"})
		job := pipeline("g1").Output("o")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Same jobID every iteration: the build lock is re-entrant for
			// its holder, so every iteration takes the full build path.
			_, d := env.opt.Optimize(job, "bench-job", anns, 0)
			if len(d.ViewsBuilt) != 1 {
				b.Fatal("view not built")
			}
		}
	})
}
