package signature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

func logSchema() data.Schema {
	return data.Schema{
		{Name: "uid", Kind: data.KindInt},
		{Name: "page", Kind: data.KindString},
		{Name: "day", Kind: data.KindDate},
	}
}

// template builds one recurring instance of a pipeline parameterized by
// data guid and day.
func template(guid string, day int64) *plan.Node {
	return plan.Scan("logs", guid, logSchema()).
		Filter(expr.Eq(expr.C(2, "day"), expr.P("day", data.Date(day)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}}).
		Output("report")
}

func TestRecurringInstancesShareNormalizedSig(t *testing.T) {
	a := Of(template("guid-day1", 100))
	b := Of(template("guid-day2", 101))
	if a.Normalized != b.Normalized {
		t.Error("recurring instances must share normalized signature")
	}
	if a.Precise == b.Precise {
		t.Error("recurring instances must have distinct precise signatures")
	}
}

func TestIdenticalPlansShareBothSigs(t *testing.T) {
	a := Of(template("g", 100))
	b := Of(template("g", 100))
	if a != b {
		t.Errorf("identical plans differ: %+v vs %+v", a, b)
	}
}

func TestGUIDChangeInvalidatesPrecise(t *testing.T) {
	// The GDPR/update scenario from paper §8: new input data, same
	// template, same parameters — reuse must not match.
	a := Of(template("data-v1", 100))
	b := Of(template("data-v2", 100))
	if a.Precise == b.Precise {
		t.Error("new input GUID must change precise signature")
	}
	if a.Normalized != b.Normalized {
		t.Error("new input GUID must not change normalized signature")
	}
}

func TestStructuralChangeChangesBoth(t *testing.T) {
	a := Of(template("g", 100))
	mutated := plan.Scan("logs", "g", logSchema()).
		Filter(expr.Eq(expr.C(2, "day"), expr.P("day", data.Date(100)))).
		ShuffleHash([]int{1}, 4). // different shuffle key
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}}).
		Output("report")
	b := Of(mutated)
	if a.Normalized == b.Normalized || a.Precise == b.Precise {
		t.Error("structural change must alter both signatures")
	}
}

func TestSubgraphSignatureMatchesStandalone(t *testing.T) {
	// The signature of an inner node computed via AllSubgraphs must equal
	// the signature of that subgraph computed in isolation.
	root := template("g", 100)
	c := NewComputer()
	subs := c.AllSubgraphs(root)
	if len(subs) != 5 { // scan, filter, exchange, agg, output
		t.Fatalf("got %d subgraphs, want 5", len(subs))
	}
	for _, s := range subs {
		fresh := Of(s.Node)
		if fresh != s.Sig {
			t.Errorf("memoized sig differs from fresh sig for %v", s.Node)
		}
	}
}

func TestViewScanPreservesAncestorSigs(t *testing.T) {
	base := plan.Scan("logs", "g", logSchema()).
		Filter(expr.B(expr.OpGt, expr.C(0, "uid"), expr.Lit(data.Int(10))))
	sig := Of(base)
	top := base.HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}})
	topSig := Of(top)

	vs := plan.ViewScan("/v/1", base.Schema(), sig.Precise, sig.Normalized)
	if got := Of(vs); got != sig {
		t.Errorf("view scan sig %+v, want %+v", got, sig)
	}
	rewritten := vs.HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}})
	if got := Of(rewritten); got != topSig {
		t.Errorf("ancestor sig changed by rewrite: %+v vs %+v", got, topSig)
	}
}

func TestMaterializeAndSpoolTransparent(t *testing.T) {
	base := plan.Scan("logs", "g", logSchema()).ShuffleHash([]int{0}, 2)
	sig := Of(base)
	mat := base.Materialize("/v/x", sig.Precise, sig.Normalized, plan.PhysicalProps{})
	if Of(mat) != sig {
		t.Error("Materialize must not change signature")
	}
	if Of(base.Spool()) != sig {
		t.Error("Spool must not change signature")
	}
	// AllSubgraphs skips transparent nodes.
	c := NewComputer()
	subs := c.AllSubgraphs(mat.Output("o"))
	for _, s := range subs {
		if s.Node.Transparent() {
			t.Error("AllSubgraphs yielded a transparent node")
		}
	}
}

func TestHashAgreesWithFullEncoding(t *testing.T) {
	// The incremental (bottom-up) hash must distinguish exactly what the
	// full canonical encoding distinguishes, across random plan pairs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomPlan(r)
		b := randomPlan(r)
		encEq := a.EncodeString(expr.Precise) == b.EncodeString(expr.Precise)
		sigEq := Of(a).Precise == Of(b).Precise
		if encEq != sigEq {
			return false
		}
		encEqN := a.EncodeString(expr.Normalized) == b.EncodeString(expr.Normalized)
		sigEqN := Of(a).Normalized == Of(b).Normalized
		return encEqN == sigEqN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// randomPlan builds a small random pipeline with deliberately few degrees
// of freedom so random pairs collide often enough to test both directions.
func randomPlan(r *rand.Rand) *plan.Node {
	guids := []string{"g1", "g2"}
	n := plan.Scan("t", guids[r.Intn(2)], logSchema())
	steps := r.Intn(4)
	for i := 0; i < steps; i++ {
		switch r.Intn(4) {
		case 0:
			n = n.Filter(expr.Eq(expr.C(0, "uid"), expr.Lit(data.Int(r.Int63n(2)))))
		case 1:
			n = n.ShuffleHash([]int{r.Intn(2)}, 4)
		case 2:
			n = n.HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}})
			return n.Output("o")
		default:
			n = n.Sort([]int{r.Intn(2)}, nil)
		}
	}
	return n.Output("o")
}

func BenchmarkAllSubgraphs(b *testing.B) {
	root := template("g", 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewComputer()
		c.AllSubgraphs(root)
	}
}
