package signature

import "sync"

// Signature strings are 32-byte hex values recomputed for every job, and
// recurring workloads produce the same handful of strings millions of
// times. A process-wide intern table collapses them to one allocation
// each; sharding keeps concurrent submissions from serializing on one
// lock, and a per-shard cap bounds the table on adversarial workloads
// (past the cap strings are returned un-interned, which is only a lost
// optimization).
const (
	internShardCount = 64
	internShardCap   = 1 << 14
)

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var internShards [internShardCount]internShard

// internShardFor picks a shard by FNV-1a over the bytes. Signature strings
// are hex, so indexing by the first byte alone would use 16 of the shards.
func internShardFor(b []byte) *internShard {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return &internShards[h%internShardCount]
}

// InternBytes returns the canonical string for b, allocating only the
// first time a given value is seen. The read path does not allocate: the
// map lookup with string(b) is recognized by the compiler.
func InternBytes(b []byte) string {
	sh := internShardFor(b)
	sh.mu.RLock()
	s, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.m[string(b)]; ok {
		return s
	}
	s = string(b)
	if sh.m == nil {
		sh.m = make(map[string]string, 64)
	}
	if len(sh.m) < internShardCap {
		sh.m[s] = s
	}
	return s
}

// Hash64 returns the 64-bit FNV-1a hash of s. Signature-keyed parallel
// structures (the analyzer's sharded fold) shard by its top bits, so the
// whole hash must be well-mixed — FNV-1a is, and over the 32-byte hex
// strings signatures intern to it costs a few tens of nanoseconds.
func Hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Intern returns the canonical instance of s, so equal signature strings
// arriving from outside the hash path (view scans, metadata annotations)
// share storage with computed ones.
func Intern(s string) string {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	sh := &internShards[h%internShardCount]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.m[s]; ok {
		return c
	}
	if sh.m == nil {
		sh.m = make(map[string]string, 64)
	}
	if len(sh.m) < internShardCap {
		sh.m[s] = s
	}
	return s
}
