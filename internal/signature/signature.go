// Package signature computes the precise and normalized signatures of plan
// subgraphs (paper §3, Figure 7).
//
// The precise signature identifies a computation exactly: it covers the
// operator structure, input GUIDs, recurring parameter values, and UDO code
// hashes. Matching precise signatures is what makes reuse safe — two
// subgraphs with the same precise signature compute byte-identical results.
//
// The normalized signature strips recurring deltas (GUIDs, parameter
// values, code hashes) so that recurring instances of the same script
// template hash identically. The analyzer selects views by normalized
// signature from past instances; the runtime then materializes matching
// subgraphs of future instances and records their precise signatures for
// reuse within the instance.
package signature

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"

	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

// Signature pairs the two hashes of one subgraph.
type Signature struct {
	Precise    string
	Normalized string
}

// Of computes the signature of the subgraph rooted at n.
func Of(n *plan.Node) Signature {
	c := NewComputer()
	return c.Of(n)
}

// Computer memoizes per-node signatures so enumerating every subgraph of a
// plan costs O(nodes), not O(nodes²). A Computer is not safe for concurrent
// use; create one per goroutine.
type Computer struct {
	precise map[*plan.Node]string
	norm    map[*plan.Node]string
}

// NewComputer returns an empty Computer.
func NewComputer() *Computer {
	return &Computer{
		precise: map[*plan.Node]string{},
		norm:    map[*plan.Node]string{},
	}
}

// Of returns the signature of the subgraph rooted at n, reusing any
// previously computed child hashes.
func (c *Computer) Of(n *plan.Node) Signature {
	return Signature{
		Precise:    c.hash(n, expr.Precise),
		Normalized: c.hash(n, expr.Normalized),
	}
}

// AllSubgraphs returns the signature of every distinct subgraph (node) of
// the plan, in post-order. Transparent wrappers (Spool, Materialize) are
// skipped: they denote the same computation as their child.
func (c *Computer) AllSubgraphs(root *plan.Node) []SubgraphSig {
	var out []SubgraphSig
	plan.Walk(root, func(n *plan.Node) {
		if n.Transparent() {
			return
		}
		out = append(out, SubgraphSig{Node: n, Sig: c.Of(n)})
	})
	return out
}

// SubgraphSig pairs a subgraph root with its signature.
type SubgraphSig struct {
	Node *plan.Node
	Sig  Signature
}

func (c *Computer) hash(n *plan.Node, mode expr.Mode) string {
	memo := c.precise
	if mode == expr.Normalized {
		memo = c.norm
	}
	if s, ok := memo[n]; ok {
		return s
	}
	var s string
	switch {
	case n.Transparent():
		s = c.hash(n.Children[0], mode)
	case n.Kind == plan.OpViewScan:
		// A view scan *is* the computation it replaced; reuse its hash so
		// ancestor signatures are unchanged by the rewrite.
		if mode == expr.Precise {
			s = n.ViewPreciseSig
		} else {
			s = n.ViewNormSig
		}
	default:
		h := sha256.New()
		var local bytes.Buffer
		n.EncodeLocal(&local, mode)
		h.Write(local.Bytes())
		for _, ch := range n.Children {
			h.Write([]byte{0})
			h.Write([]byte(c.hash(ch, mode)))
		}
		s = hex.EncodeToString(h.Sum(nil))[:32]
	}
	memo[n] = s
	return s
}
