// Package signature computes the precise and normalized signatures of plan
// subgraphs (paper §3, Figure 7).
//
// The precise signature identifies a computation exactly: it covers the
// operator structure, input GUIDs, recurring parameter values, and UDO code
// hashes. Matching precise signatures is what makes reuse safe — two
// subgraphs with the same precise signature compute byte-identical results.
//
// The normalized signature strips recurring deltas (GUIDs, parameter
// values, code hashes) so that recurring instances of the same script
// template hash identically. The analyzer selects views by normalized
// signature from past instances; the runtime then materializes matching
// subgraphs of future instances and records their precise signatures for
// reuse within the instance.
package signature

import (
	"crypto/sha256"
	"encoding/hex"

	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

// Signature pairs the two hashes of one subgraph.
type Signature struct {
	Precise    string
	Normalized string
}

// Of computes the signature of the subgraph rooted at n.
func Of(n *plan.Node) Signature {
	c := NewComputer()
	return c.Of(n)
}

// Computer memoizes per-node signatures so enumerating every subgraph of a
// plan costs O(nodes), not O(nodes²). Both hashes of a node are computed
// together in one bottom-up pass, local encodings go through a reused
// scratch buffer instead of per-node allocations, and the resulting hex
// strings are interned process-wide so recurring instances share one
// allocation. A Computer is not safe for concurrent use; create one per
// goroutine.
type Computer struct {
	memo map[*plan.Node]Signature
	buf  []byte
}

// NewComputer returns an empty Computer.
func NewComputer() *Computer {
	return &Computer{
		memo: map[*plan.Node]Signature{},
		buf:  make([]byte, 0, 512),
	}
}

// Of returns the signature of the subgraph rooted at n, reusing any
// previously computed child hashes.
func (c *Computer) Of(n *plan.Node) Signature {
	if s, ok := c.memo[n]; ok {
		return s
	}
	var s Signature
	switch {
	case n.Transparent():
		s = c.Of(n.Children[0])
	case n.Kind == plan.OpViewScan:
		// A view scan *is* the computation it replaced; reuse its hash so
		// ancestor signatures are unchanged by the rewrite.
		s = Signature{
			Precise:    Intern(n.ViewPreciseSig),
			Normalized: Intern(n.ViewNormSig),
		}
	default:
		// One bottom-up pass: resolve every child first, then derive both
		// of this node's hashes from the memoized child signatures.
		for _, ch := range n.Children {
			c.Of(ch)
		}
		s = Signature{
			Precise:    c.hashLocal(n, expr.Precise),
			Normalized: c.hashLocal(n, expr.Normalized),
		}
	}
	c.memo[n] = s
	return s
}

// hashLocal hashes the node-local encoding combined with the already
// memoized child hashes for one mode. The message layout (local encoding,
// then a zero byte plus child hash per child) and the truncated-hex output
// are a stable format: signatures persist in workload repositories and
// metadata snapshots across versions.
func (c *Computer) hashLocal(n *plan.Node, mode expr.Mode) string {
	buf := n.AppendLocal(c.buf[:0], mode)
	for _, ch := range n.Children {
		cs := c.memo[ch]
		buf = append(buf, 0)
		if mode == expr.Precise {
			buf = append(buf, cs.Precise...)
		} else {
			buf = append(buf, cs.Normalized...)
		}
	}
	c.buf = buf[:0]
	sum := sha256.Sum256(buf)
	var hexSum [2 * sha256.Size]byte
	hex.Encode(hexSum[:], sum[:])
	return InternBytes(hexSum[:32])
}

// Alias records that clone denotes the same computation as orig, so
// copy-on-write plan rewrites can transfer memoized signatures to copied
// nodes instead of rehashing their subtrees.
func (c *Computer) Alias(orig, clone *plan.Node) {
	if s, ok := c.memo[orig]; ok {
		c.memo[clone] = s
	}
}

// AllSubgraphs returns the signature of every distinct subgraph (node) of
// the plan, in post-order. Transparent wrappers (Spool, Materialize) are
// skipped: they denote the same computation as their child.
func (c *Computer) AllSubgraphs(root *plan.Node) []SubgraphSig {
	var out []SubgraphSig
	plan.Walk(root, func(n *plan.Node) {
		if n.Transparent() {
			return
		}
		out = append(out, SubgraphSig{Node: n, Sig: c.Of(n)})
	})
	return out
}

// SubgraphSig pairs a subgraph root with its signature.
type SubgraphSig struct {
	Node *plan.Node
	Sig  Signature
}
