package signature

import (
	"testing"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

// benchPlan builds a production-shaped job: two scan→filter→shuffle arms
// joined, aggregated, sorted, and topped — 12 non-transparent nodes with
// parameters, constants, and UDF-free expressions, so the encoding work per
// node is representative of the workgen pipelines.
func benchPlan() *plan.Node {
	logs := plan.Scan("logs", "g-bench-logs", logSchema()).
		Filter(expr.Eq(expr.C(2, "day"), expr.P("day", data.Date(17432)))).
		ShuffleHash([]int{0}, 8)
	users := plan.Scan("users", "g-bench-users", logSchema()).
		Filter(expr.B(expr.OpGt, expr.C(0, "uid"), expr.Lit(data.Int(100)))).
		ShuffleHash([]int{0}, 8)
	return logs.HashJoin(users, []int{0}, []int{0}).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}, {Fn: plan.AggSum, Col: 0}}).
		Sort([]int{1}, []bool{true}).
		Top(100).
		Output("report")
}

// BenchmarkSignature measures the per-job frontend signing cost: a fresh
// Computer hashing every subgraph of the plan in both modes, exactly as the
// submission path does for each incoming job.
func BenchmarkSignature(b *testing.B) {
	root := benchPlan()
	// Warm once so schema memoization inside plan nodes does not count.
	if n := len(NewComputer().AllSubgraphs(root)); n != 11 {
		b.Fatalf("bench plan has %d subgraphs, want 11", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewComputer()
		if subs := c.AllSubgraphs(root); len(subs) == 0 {
			b.Fatal("no subgraphs")
		}
	}
}
