package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cloudviews/internal/data"
)

func TestCacheHitServesSameDecode(t *testing.T) {
	s := NewStore()
	v := write(t, s, "hot", 32, 100)
	_, first, err := s.Consume(v.Path)
	if err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after cold consume: %+v", st)
	}
	if st.Bytes != v.LogicalBytes {
		t.Errorf("cache gauge %d bytes, want logical %d", st.Bytes, v.LogicalBytes)
	}
	_, second, err := s.Consume(v.Path)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-copy: the hot path returns the resident decode, not a fresh one.
	if &second[0][0] != &first[0][0] {
		t.Error("hot consume re-decoded instead of serving the cache")
	}
	st = s.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("after hot consume: %+v", st)
	}
	if got := s.CachedPaths(); len(got) != 1 || got[0] != v.Path {
		t.Errorf("CachedPaths = %v", got)
	}
}

func TestCacheDisabledAndResize(t *testing.T) {
	s := NewStore()
	if s.CacheBudget() != DefaultCacheBudget {
		t.Fatalf("default budget = %d", s.CacheBudget())
	}
	s.SetCacheBudget(-1)
	v := write(t, s, "nc", 16, 100)
	if _, _, err := s.Consume(v.Path); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("disabled cache admitted an entry: %+v", st)
	}
	// Re-enabling starts empty and admits on the next consume.
	s.SetCacheBudget(DefaultCacheBudget)
	if _, _, err := s.Consume(v.Path); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 1 {
		t.Fatalf("re-enabled cache did not admit: %+v", st)
	}
	// Shrinking drops residents.
	s.SetCacheBudget(1)
	if st := s.CacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("resize kept entries: %+v", st)
	}
}

func TestCacheEvictsLowestUtility(t *testing.T) {
	s := NewStore()
	v1 := write(t, s, "e1", 64, 100)
	write(t, s, "e2", 64, 100)
	write(t, s, "e3", 64, 100)
	// Budget: room for two of the three equal-sized decoded views, so the
	// third admit must displace the least-useful resident.
	s.SetCacheBudget(v1.LogicalBytes*2 + 1)
	paths := []string{PathFor("e1", "job-e1"), PathFor("e2", "job-e2"), PathFor("e3", "job-e3")}
	for _, p := range paths {
		if _, _, err := s.Consume(p); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	if st.Evictions == 0 {
		t.Error("over-budget admits evicted nothing")
	}
	if st.Entries == 0 || st.Entries > 2 || st.Bytes > s.CacheBudget() {
		t.Errorf("cache over budget: %+v (budget %d)", st, s.CacheBudget())
	}
	// Everything still decodes correctly whether cached or evicted.
	for _, p := range paths {
		if _, parts, err := s.Consume(p); err != nil || len(parts[0]) != 64 {
			t.Fatalf("consume %s after eviction pressure: %v", p, err)
		}
	}
	for _, p := range s.CachedPaths() {
		if _, err := s.Get(p); err != nil {
			t.Errorf("cached path %s not in store", p)
		}
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	s := NewStore()
	v := write(t, s, "big", 512, 100)
	// A budget smaller than the decoded entry: never admitted, nothing
	// else evicted for it.
	s.SetCacheBudget(v.LogicalBytes / 2)
	if _, _, err := s.Consume(v.Path); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("oversized entry admitted: %+v", st)
	}
}

func TestDeleteDropsCacheEntry(t *testing.T) {
	s := NewStore()
	v := write(t, s, "d1", 8, 100)
	write(t, s, "d2", 8, 0) // expired
	for _, p := range []string{v.Path, PathFor("d2", "job-d2")} {
		if _, _, err := s.Consume(p); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.CacheStats(); st.Entries != 2 {
		t.Fatalf("setup: %+v", st)
	}
	// Purge reclaims the expired view; its cache entry must go with it.
	s.Purge(50)
	if got := s.CachedPaths(); len(got) != 1 || got[0] != v.Path {
		t.Fatalf("after purge, CachedPaths = %v", got)
	}
	s.Delete(v.Path)
	if st := s.CacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after delete: %+v", st)
	}
}

// TestConsumeCacheConcurrent hammers one store from many goroutines —
// mixed hot/cold consumes, deletes, rewrites — and checks under the race
// detector that the cache never serves wrong rows and every cached path
// stays a stored path.
func TestConsumeCacheConcurrent(t *testing.T) {
	s := NewStore()
	const views = 8
	for i := 0; i < views; i++ {
		sig := fmt.Sprintf("cc%d", i)
		parts := [][]data.Row{{{data.Int(int64(i)), data.String_(sig)}}}
		if _, err := s.Write(mkView(sig, 1000), parts); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := (g + i) % views
				sig := fmt.Sprintf("cc%d", idx)
				path := PathFor(sig, "job-"+sig)
				_, parts, err := s.Consume(path)
				if err != nil {
					var nf *NotFoundError
					if !errors.As(err, &nf) {
						t.Errorf("consume: %v", err)
					}
					continue
				}
				if parts[0][0][0].I != int64(idx) || parts[0][0][1].S != sig {
					t.Errorf("consume %s returned wrong rows: %#v", path, parts[0][0])
				}
				if g == 0 && i%25 == 24 {
					// Churn: drop a view, then re-install it under a fresh
					// producer (first-writer-wins keeps this race legal).
					s.Delete(path)
					v := mkView(sig, 1000)
					v.Path = path
					freshParts := [][]data.Row{{{data.Int(int64(idx)), data.String_(sig)}}}
					if _, err := s.Write(v, freshParts); err != nil {
						t.Errorf("rewrite: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, p := range s.CachedPaths() {
		if _, err := s.Get(p); err != nil {
			t.Errorf("cached path %s not stored", p)
		}
	}
}
