package storage

import (
	"fmt"
	"testing"

	"cloudviews/internal/data"
)

// benchParts builds a view payload shaped like real materialized views: a
// sorted int key, a run-heavy date, a low-cardinality dimension string, a
// float measure, a bool flag — spread over nparts partitions.
func benchParts(nparts, rowsPer int) [][]data.Row {
	words := []string{"store", "web", "catalog", "outlet", "kiosk", "phone", "mail", "partner"}
	parts := make([][]data.Row, nparts)
	for p := range parts {
		rows := make([]data.Row, rowsPer)
		for i := range rows {
			k := p*rowsPer + i
			rows[i] = data.Row{
				data.Int(int64(1_000_000 + k*3)),
				data.Date(int64(17000 + k/32)),
				data.String_(words[k%len(words)]),
				data.Float(float64(k%977) + 0.25),
				data.Bool(k%3 == 0),
			}
		}
		parts[p] = rows
	}
	return parts
}

func logicalSize(parts [][]data.Row) int64 {
	var n int64
	for _, p := range parts {
		for _, r := range p {
			n += r.ByteSize()
		}
	}
	return n
}

// BenchmarkStorageWrite measures the producer path — parallel columnar
// encode plus checksum plus install — in MB/s of row data consumed, and
// reports the at-rest compression as row-bytes per encoded byte ("ratio";
// the seed's boxed-row store was 1.0 by construction).
func BenchmarkStorageWrite(b *testing.B) {
	for _, nparts := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("parts=%d", nparts), func(b *testing.B) {
			parts := benchParts(nparts, 2048)
			b.SetBytes(logicalSize(parts))
			b.ResetTimer()
			var last *View
			for i := 0; i < b.N; i++ {
				s := NewStore()
				v := mkView(fmt.Sprintf("w%d", i), 100)
				if _, err := s.Write(v, parts); err != nil {
					b.Fatal(err)
				}
				last = v
			}
			b.ReportMetric(float64(last.LogicalBytes)/float64(last.Bytes), "ratio")
		})
	}
}

// BenchmarkStorageConsumeCold measures a first consume: checksum walk over
// the encoded payload plus parallel decode (cache disabled so every
// iteration is cold).
func BenchmarkStorageConsumeCold(b *testing.B) {
	for _, nparts := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("parts=%d", nparts), func(b *testing.B) {
			s := NewStore()
			s.SetCacheBudget(-1)
			parts := benchParts(nparts, 2048)
			v := mkView("cold", 100)
			if _, err := s.Write(v, parts); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(logicalSize(parts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Consume(v.Path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStorageConsumeHot measures a repeat consume served from the
// decoded hot-view cache — the zero-copy fast path recurring jobs hit.
func BenchmarkStorageConsumeHot(b *testing.B) {
	for _, nparts := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("parts=%d", nparts), func(b *testing.B) {
			s := NewStore()
			parts := benchParts(nparts, 2048)
			v := mkView("hot", 100)
			if _, err := s.Write(v, parts); err != nil {
				b.Fatal(err)
			}
			if _, _, err := s.Consume(v.Path); err != nil {
				b.Fatal(err) // warm the cache
			}
			b.SetBytes(logicalSize(parts))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Consume(v.Path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
