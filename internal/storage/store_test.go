package storage

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cloudviews/internal/data"
)

// mkParts builds one single-partition payload of rows int/string rows.
func mkParts(rows int) [][]data.Row {
	part := make([]data.Row, rows)
	for i := range part {
		part[i] = data.Row{data.Int(int64(i)), data.String_("x")}
	}
	return [][]data.Row{part}
}

func mkView(sig string, expiry int64) *View {
	return &View{
		Path:       PathFor(sig, "job-"+sig),
		PreciseSig: sig,
		NormSig:    "n-" + sig,
		ExpiresAt:  expiry,
		Schema:     data.Schema{{Name: "k", Kind: data.KindInt}, {Name: "v", Kind: data.KindString}},
	}
}

// write is the test shorthand for Write(mkView(...), mkParts(rows)).
func write(t *testing.T, s *Store, sig string, rows int, expiry int64) *View {
	t.Helper()
	v := mkView(sig, expiry)
	if created, err := s.Write(v, mkParts(rows)); err != nil || !created {
		t.Fatalf("write %s: created=%v err=%v", sig, created, err)
	}
	return v
}

func TestPathForEmbedsSigAndJob(t *testing.T) {
	p := PathFor("abc123", "job9")
	if !strings.Contains(p, "abc123") || !strings.Contains(p, "job9") {
		t.Errorf("path %q must embed signature and job id", p)
	}
}

func TestWriteGetLookup(t *testing.T) {
	s := NewStore()
	v := write(t, s, "sig1", 10, 100)
	if v.Rows != 10 || v.Bytes <= 0 {
		t.Errorf("Write did not account rows/bytes: %d/%d", v.Rows, v.Bytes)
	}
	// The at-rest footprint is the encoded payload; the logical size is the
	// row representation a consumer materializes — and for this compressible
	// data the encoding must be strictly smaller.
	if v.LogicalBytes <= v.Bytes {
		t.Errorf("encoded %d bytes not smaller than logical %d", v.Bytes, v.LogicalBytes)
	}
	var enc int64
	for _, b := range v.Encoded {
		enc += int64(len(b))
	}
	if enc != v.Bytes {
		t.Errorf("View.Bytes=%d but encoded blocks total %d", v.Bytes, enc)
	}
	if v.PartitionCount() != 1 {
		t.Errorf("PartitionCount = %d", v.PartitionCount())
	}
	got, err := s.Get(v.Path)
	if err != nil || got != v {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if s.LookupPrecise("sig1") != v {
		t.Error("LookupPrecise missed")
	}
	if s.LookupPrecise("nope") != nil {
		t.Error("LookupPrecise false positive")
	}
	if _, err := s.Get("/nope"); err == nil {
		t.Error("Get missing should error")
	}
	if s.Len() != 1 || s.TotalBytes() != v.Bytes {
		t.Errorf("Len/TotalBytes = %d/%d", s.Len(), s.TotalBytes())
	}
}

func TestDuplicateWrites(t *testing.T) {
	s := NewStore()
	first := write(t, s, "sig1", 1, 10)
	// Same path, same signature, same producer: the producer's own retry
	// (its vertex crashed after the write landed). Idempotent, not an
	// error — the installed copy stands.
	if created, err := s.Write(mkView("sig1", 10), mkParts(1)); err != nil || created {
		t.Errorf("producer retry: created=%v err=%v, want false, nil", created, err)
	}
	if s.Len() != 1 {
		t.Fatalf("retry must not install a second view, Len=%d", s.Len())
	}
	// Same path, different signature: a genuine collision is a hard error.
	clash := mkView("sig2", 10)
	clash.Path = first.Path
	if _, err := s.Write(clash, mkParts(1)); err == nil {
		t.Error("conflicting duplicate path accepted")
	}
	// Same signature, different path: a takeover builder losing the
	// first-writer-wins race (§6.1 fault tolerance). Not an error, but
	// the losing copy must be discarded.
	v := mkView("sig1", 10)
	v.Path = "/views/other"
	if created, err := s.Write(v, mkParts(1)); err != nil || created {
		t.Errorf("lost race: created=%v err=%v, want false, nil", created, err)
	}
	if s.Len() != 1 || s.LookupPrecise("sig1").Path != first.Path {
		t.Error("losing write must leave the first writer in place")
	}
	if _, err := s.Get("/views/other"); err == nil {
		t.Error("losing write must not install its path")
	}
}

func TestDeleteAndPurge(t *testing.T) {
	s := NewStore()
	for i, exp := range []int64{5, 10, 15} {
		write(t, s, fmt.Sprintf("s%d", i), 2, exp)
	}
	purged := s.Purge(10)
	if len(purged) != 2 {
		t.Fatalf("Purge(10) removed %d, want 2", len(purged))
	}
	if s.Len() != 1 || s.LookupPrecise("s2") == nil {
		t.Error("wrong survivor after purge")
	}
	if s.LookupPrecise("s0") != nil {
		t.Error("purged view still findable")
	}
	s.Delete(PathFor("s2", "job-s2"))
	if s.Len() != 0 || s.TotalBytes() != 0 {
		t.Errorf("after delete: len=%d bytes=%d", s.Len(), s.TotalBytes())
	}
	s.Delete("/already/gone") // idempotent
}

func TestViewsSnapshotOrdered(t *testing.T) {
	s := NewStore()
	for _, sig := range []string{"c", "a", "b"} {
		write(t, s, sig, 1, 99)
	}
	vs := s.Views()
	if len(vs) != 3 {
		t.Fatalf("Views len = %d", len(vs))
	}
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Path >= vs[i].Path {
			t.Error("Views not ordered by path")
		}
	}
}

func TestReclaimLowestUtility(t *testing.T) {
	s := NewStore()
	// Three views, utility = expiry for the test. Sizes equal.
	for i, sig := range []string{"low", "mid", "high"} {
		write(t, s, sig, 4, int64(i))
	}
	one := s.Views()[0].Bytes
	purged := s.ReclaimLowestUtility(one+1, func(v *View) float64 { return float64(v.ExpiresAt) })
	if len(purged) != 2 {
		t.Fatalf("reclaimed %d views, want 2", len(purged))
	}
	if s.LookupPrecise("high") == nil {
		t.Error("highest-utility view should survive")
	}
	if s.LookupPrecise("low") != nil || s.LookupPrecise("mid") != nil {
		t.Error("low-utility views should be gone")
	}
}

func TestConcurrentStoreOps(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sig := fmt.Sprintf("g%d-%d", g, i)
				if _, err := s.Write(mkView(sig, int64(i)), mkParts(1)); err != nil {
					t.Errorf("write: %v", err)
				}
				s.LookupPrecise(sig)
				if i%10 == 0 {
					s.Purge(int64(i / 2))
				}
			}
		}(g)
	}
	wg.Wait()
}

// ---- integrity and fault-injection ----------------------------------------

// stubFaults is a scriptable FaultHook for storage tests.
type stubFaults struct {
	readErr  error
	writeErr error
	corrupt  bool
}

func (f *stubFaults) ReadView(string) error { return f.readErr }
func (f *stubFaults) WriteView(string) (bool, error) {
	return f.corrupt, f.writeErr
}

func TestConsumeVerifiesChecksum(t *testing.T) {
	s := NewStore()
	v := write(t, s, "ok", 8, 100)
	if v.Checksum == 0 {
		t.Fatal("Write recorded no checksum")
	}
	got, parts, err := s.Consume(v.Path)
	if err != nil || got != v {
		t.Fatalf("Consume = %v, %v", got, err)
	}
	if len(parts) != 1 || len(parts[0]) != 8 {
		t.Fatalf("Consume decoded %d parts", len(parts))
	}
	for i, r := range parts[0] {
		if r[0].I != int64(i) || r[1].S != "x" {
			t.Fatalf("row %d decoded as %#v", i, r)
		}
	}
	// Second consume hits the hot cache and serves the same decoded rows.
	_, again, err := s.Consume(v.Path)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0][0] != &parts[0][0] {
		t.Error("repeat consume did not share the cached decode")
	}
	// A missing path is a typed NotFoundError.
	var nf *NotFoundError
	if _, _, err := s.Consume("/nope"); !errors.As(err, &nf) {
		t.Fatalf("Consume missing = %v, want NotFoundError", err)
	}
}

func TestCorruptWriteDetectedOnConsume(t *testing.T) {
	s := NewStore()
	s.Faults = &stubFaults{corrupt: true}
	v := mkView("bad", 100)
	created, err := s.Write(v, mkParts(8))
	if err != nil || !created {
		t.Fatalf("corrupted write should still succeed silently: %v %v", created, err)
	}
	s.Faults = nil
	// The injected fault damaged the stored payload bytes underneath the
	// clean checksum.
	if checksumEncoded(v.Encoded) == v.Checksum {
		t.Fatal("corrupt write left payload matching its checksum")
	}
	// The raw accessor returns the view; only Consume verifies.
	if _, err := s.Get(v.Path); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := s.Consume(v.Path); !errors.As(err, &ce) {
		t.Fatalf("Consume corrupt = %v, want CorruptError", err)
	}
	if ce.Path != v.Path || ce.PreciseSig != "bad" {
		t.Errorf("CorruptError carries %q/%q", ce.Path, ce.PreciseSig)
	}
	// Corruption is sticky: a later consume still fails (no false cache).
	if _, _, err := s.Consume(v.Path); !errors.As(err, &ce) {
		t.Error("corrupt view passed verification on retry")
	}
	if len(s.CachedPaths()) != 0 {
		t.Error("corrupt view must never enter the hot cache")
	}
}

func TestInjectedReadAndWriteFaults(t *testing.T) {
	s := NewStore()
	f := &stubFaults{}
	s.Faults = f

	f.writeErr = errInjected{}
	if _, err := s.Write(mkView("w", 10), mkParts(2)); err == nil {
		t.Fatal("write fault not surfaced")
	}
	if s.Len() != 0 {
		t.Fatal("failed write left state behind")
	}
	f.writeErr = nil
	if _, err := s.Write(mkView("w", 10), mkParts(2)); err != nil {
		t.Fatal("retried write should succeed")
	}

	f.readErr = errInjected{}
	if _, _, err := s.Consume(PathFor("w", "job-w")); err == nil {
		t.Fatal("read fault not surfaced")
	}
	f.readErr = nil
	if _, _, err := s.Consume(PathFor("w", "job-w")); err != nil {
		t.Fatalf("retried read failed: %v", err)
	}
}

type errInjected struct{}

func (errInjected) Error() string   { return "injected" }
func (errInjected) Transient() bool { return true }

// TestPurgeDeregistersBeforeDelete is the orphan-window regression: every
// storage-initiated reclamation must drop the metadata registration (via
// Deregister) before the file disappears, so metadata never references a
// deleted path.
func TestPurgeDeregistersBeforeDelete(t *testing.T) {
	s := NewStore()
	for i, sig := range []string{"a", "b", "c"} {
		write(t, s, sig, 2, int64(i))
	}
	var order []string
	s.Deregister = func(sig, path string) {
		// At deregistration time the file must still exist.
		if _, err := s.Get(path); err != nil {
			t.Errorf("Deregister(%s): file already deleted", path)
		}
		order = append(order, sig)
	}
	purged := s.Purge(1) // expiries 0 and 1
	if len(purged) != 2 || len(order) != 2 {
		t.Fatalf("purged %v, deregistered %v", purged, order)
	}
	for _, p := range purged {
		if _, err := s.Get(p); err == nil {
			t.Errorf("purged path %s still stored", p)
		}
	}

	// Same contract for min-utility reclamation.
	order = nil
	reclaimed := s.ReclaimLowestUtility(1, func(v *View) float64 { return 0 })
	if len(reclaimed) != 1 || len(order) != 1 {
		t.Fatalf("reclaimed %v, deregistered %v", reclaimed, order)
	}
}

// TestMultiPartitionRoundTrip covers parallel encode/decode over many
// partitions: every partition must come back in position, bit-exact.
func TestMultiPartitionRoundTrip(t *testing.T) {
	s := NewStore()
	parts := make([][]data.Row, 64)
	for p := range parts {
		rows := make([]data.Row, 50+p)
		for i := range rows {
			rows[i] = data.Row{data.Int(int64(p*1000 + i)), data.String_(fmt.Sprintf("p%d", p)), data.Float(float64(i) / 3)}
		}
		parts[p] = rows
	}
	v := mkView("multi", 100)
	if _, err := s.Write(v, parts); err != nil {
		t.Fatal(err)
	}
	if v.PartitionCount() != 64 {
		t.Fatalf("PartitionCount = %d", v.PartitionCount())
	}
	_, got, err := s.Consume(v.Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(parts) {
		t.Fatalf("decoded %d partitions, want %d", len(got), len(parts))
	}
	for p := range parts {
		if len(got[p]) != len(parts[p]) {
			t.Fatalf("partition %d: %d rows, want %d", p, len(got[p]), len(parts[p]))
		}
		for i := range parts[p] {
			for c := range parts[p][i] {
				a, b := got[p][i][c], parts[p][i][c]
				if a.K != b.K || a.I != b.I || a.F != b.F || a.S != b.S {
					t.Fatalf("partition %d row %d col %d: %#v != %#v", p, i, c, a, b)
				}
			}
		}
	}
}
