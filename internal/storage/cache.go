package storage

import (
	"sort"
	"sync"
	"sync/atomic"

	"cloudviews/internal/data"
)

// DefaultCacheBudget is the hot-view cache budget a NewStore starts with.
// 64 MiB of decoded rows covers the working set of a busy recurring
// workload without competing with the executor for memory.
const DefaultCacheBudget int64 = 64 << 20

// cacheShardCount spreads the hot-view cache over independently locked
// shards so concurrent consumers of different views never contend. A
// power of two keeps the shard pick a mask.
const cacheShardCount = 16

// CacheStats is a point-in-time snapshot of the hot-view cache.
type CacheStats struct {
	// Hits and Misses count Consume calls served from / past the cache.
	Hits   int64
	Misses int64
	// Evictions counts entries displaced to fit the byte budget (drops
	// from Delete/quarantine are not evictions).
	Evictions int64
	// Entries and Bytes are the resident decoded views and their decoded
	// (row-representation) footprint.
	Entries int64
	Bytes   int64
}

// cacheEntry holds one decoded view and its utility bookkeeping. bytes is
// the decoded (logical) size — that is what the entry costs in memory.
type cacheEntry struct {
	parts    [][]data.Row
	bytes    int64
	hits     int64
	lastUsed int64
}

// viewCache is a sharded, utility-ranked cache of decoded view partitions.
// Admission is miss-driven (Consume decodes, then offers the result);
// eviction ranks resident entries by (hits, recency) across all shards and
// displaces the least useful until the newcomer fits the byte budget.
// Entries larger than the whole budget are never admitted — a single giant
// view must not wipe the working set.
//
// Locking: the hot path (get) takes only its shard's mutex. Admission and
// eviction serialize on admitMu and then take shard mutexes one at a time
// (admitMu → shard.mu, never the reverse), so lookups on other shards
// proceed while an admit evicts.
type viewCache struct {
	budget atomic.Int64 // total budget; <=0 disables the cache
	bytes  atomic.Int64 // resident decoded bytes across all shards
	clock  atomic.Int64 // logical use counter ordering recency

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	admitMu sync.Mutex // serializes admit/evict; get never takes it
	shards  [cacheShardCount]cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

func (c *viewCache) init(budget int64) {
	c.budget.Store(budget)
	for i := range c.shards {
		c.shards[i].entries = map[string]*cacheEntry{}
	}
}

// shardFor picks the shard by FNV-1a over the path.
func (c *viewCache) shardFor(path string) *cacheShard {
	const prime32 = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint32(path[i])) * prime32
	}
	return &c.shards[h&(cacheShardCount-1)]
}

func (c *viewCache) tick() int64 { return c.clock.Add(1) }

func (c *viewCache) get(path string) ([][]data.Row, bool) {
	if c.budget.Load() <= 0 {
		return nil, false
	}
	sh := c.shardFor(path)
	sh.mu.Lock()
	e, ok := sh.entries[path]
	if ok {
		e.hits++
		e.lastUsed = c.tick()
	}
	parts := [][]data.Row(nil)
	if ok {
		parts = e.parts
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return parts, ok
}

// admit offers a freshly decoded view to the cache and returns the
// partitions the caller should hand out: if a concurrent consumer already
// admitted the same path, the resident copy wins so all consumers share
// one decode. bytes is the decoded (logical) size used for budgeting.
func (c *viewCache) admit(path string, parts [][]data.Row, bytes int64) [][]data.Row {
	budget := c.budget.Load()
	if budget <= 0 || bytes > budget {
		return parts
	}
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	sh := c.shardFor(path)
	sh.mu.Lock()
	if e, ok := sh.entries[path]; ok {
		e.hits++
		e.lastUsed = c.tick()
		resident := e.parts
		sh.mu.Unlock()
		return resident
	}
	sh.mu.Unlock()
	// Evict lowest-utility entries (fewest hits, then least recent, over
	// every shard) until the newcomer fits. Only admitters rank and evict;
	// the ranking walk takes one shard lock at a time.
	if c.bytes.Load()+bytes > budget {
		type ranked struct {
			path     string
			shard    *cacheShard
			bytes    int64
			hits     int64
			lastUsed int64
		}
		var all []ranked
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			for p, e := range s.entries {
				all = append(all, ranked{p, s, e.bytes, e.hits, e.lastUsed})
			}
			s.mu.Unlock()
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].hits != all[j].hits {
				return all[i].hits < all[j].hits
			}
			if all[i].lastUsed != all[j].lastUsed {
				return all[i].lastUsed < all[j].lastUsed
			}
			return all[i].path < all[j].path
		})
		var evicted int64
		for _, r := range all {
			if c.bytes.Load()+bytes <= budget {
				break
			}
			r.shard.mu.Lock()
			// Re-check under the lock: a concurrent drop may have won.
			if e, ok := r.shard.entries[r.path]; ok {
				delete(r.shard.entries, r.path)
				c.bytes.Add(-e.bytes)
				evicted++
			}
			r.shard.mu.Unlock()
		}
		c.evictions.Add(evicted)
	}
	sh.mu.Lock()
	sh.entries[path] = &cacheEntry{parts: parts, bytes: bytes, lastUsed: c.tick()}
	sh.mu.Unlock()
	c.bytes.Add(bytes)
	return parts
}

// contains reports residency without touching hit/miss counters or
// recency — the read-only probe behind Store.CacheContains.
func (c *viewCache) contains(path string) bool {
	if c.budget.Load() <= 0 {
		return false
	}
	sh := c.shardFor(path)
	sh.mu.Lock()
	_, ok := sh.entries[path]
	sh.mu.Unlock()
	return ok
}

func (c *viewCache) drop(path string) {
	sh := c.shardFor(path)
	sh.mu.Lock()
	if e, ok := sh.entries[path]; ok {
		delete(sh.entries, path)
		c.bytes.Add(-e.bytes)
	}
	sh.mu.Unlock()
}

func (c *viewCache) dropAll() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			c.bytes.Add(-e.bytes)
		}
		sh.entries = map[string]*cacheEntry{}
		sh.mu.Unlock()
	}
}

func (c *viewCache) stats() CacheStats {
	var st CacheStats
	st.Hits = c.hits.Load()
	st.Misses = c.misses.Load()
	st.Evictions = c.evictions.Load()
	st.Bytes = c.bytes.Load()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return st
}

func (c *viewCache) paths() []string {
	var out []string
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for p := range sh.entries {
			out = append(out, p)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// SetCacheBudget resizes the hot-view cache byte budget. Zero or negative
// disables the cache; resizing drops resident entries (they re-admit on
// the next consume), keeping the policy trivially consistent.
func (s *Store) SetCacheBudget(budget int64) {
	s.cache.admitMu.Lock()
	defer s.cache.admitMu.Unlock()
	s.cache.dropAll()
	s.cache.budget.Store(budget)
}

// CacheBudget returns the hot-view cache's total byte budget.
func (s *Store) CacheBudget() int64 { return s.cache.budget.Load() }

// CacheStats returns a snapshot of hot-view cache counters and gauges.
func (s *Store) CacheStats() CacheStats { return s.cache.stats() }

// CacheContains reports whether the hot-view cache currently holds a
// decoded copy of path, without counting a hit or miss and without
// touching the entry's recency. The executor uses it for deterministic
// trace attribution: the cache verdict recorded on a ViewScan span must
// reflect the cache as of job start, not which concurrent consumer's
// decode happened to land first.
func (s *Store) CacheContains(path string) bool { return s.cache.contains(path) }

// CachedPaths returns the paths currently resident in the hot-view cache,
// sorted. Every cached path refers to a stored view — Delete, Purge, and
// ReclaimLowestUtility drop cache entries with the view.
func (s *Store) CachedPaths() []string { return s.cache.paths() }
