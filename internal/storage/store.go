// Package storage implements the cluster store for materialized views.
//
// Following the paper, a materialized view is a set of partitioned files
// whose "physical path" embeds the precise signature of the computation it
// captures, the ID of the job that produced it (provenance), and its expiry
// (§5.4, §6.2). The storage manager purges expired views; the metadata
// service must be cleaned first so in-flight jobs never read a dangling
// path — Store enforces that ordering by keeping purged views readable by
// open handles while removing them from lookup.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

// View is one materialized view: the output rows of a subgraph, laid out
// with an explicit physical design.
type View struct {
	Path          string
	PreciseSig    string
	NormSig       string
	ProducerJobID string
	// ExpiresAt is the simulated time after which the storage manager may
	// purge the view (derived from input lineage, §5.4).
	ExpiresAt int64
	CreatedAt int64
	Schema    data.Schema
	Props     plan.PhysicalProps
	// Partitions hold the rows in the view's physical design.
	Partitions [][]data.Row
	Bytes      int64
	Rows       int64
}

// PathFor builds the canonical physical path of a view, embedding the
// precise signature and producing job — the paper's trick for provenance
// and matching without extra metadata state.
func PathFor(preciseSig, jobID string) string {
	return fmt.Sprintf("/views/%s/%s.ss", preciseSig, jobID)
}

// Store is a concurrent view store with signature lookup and expiry.
type Store struct {
	mu        sync.RWMutex
	byPath    map[string]*View
	byPrecise map[string]string // precise sig -> path
	bytes     int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byPath:    map[string]*View{},
		byPrecise: map[string]string{},
	}
}

// Write installs a view and reports whether this call created it. A second
// view for an already-materialized precise signature is not an error:
// build-lock expiry (§6.1 fault tolerance) can hand the lock to a takeover
// builder while the original is still running, and equal precise signatures
// compute byte-identical results, so the race resolves first-writer-wins —
// the losing write is discarded and Write returns created=false. Reusing a
// path is still rejected: paths embed the producing job ID, so a collision
// means one job wrote the same view twice.
func (s *Store) Write(v *View) (created bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byPath[v.Path]; ok {
		return false, fmt.Errorf("storage: path %q already exists", v.Path)
	}
	if _, ok := s.byPrecise[v.PreciseSig]; ok {
		return false, nil
	}
	var rows, bytes int64
	for _, p := range v.Partitions {
		rows += int64(len(p))
		for _, r := range p {
			bytes += r.ByteSize()
		}
	}
	v.Rows, v.Bytes = rows, bytes
	s.byPath[v.Path] = v
	s.byPrecise[v.PreciseSig] = v.Path
	s.bytes += bytes
	return true, nil
}

// Get returns the view at path.
func (s *Store) Get(path string) (*View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.byPath[path]
	if !ok {
		return nil, fmt.Errorf("storage: no view at %q", path)
	}
	return v, nil
}

// LookupPrecise returns the view materialized for the precise signature,
// or nil if none exists.
func (s *Store) LookupPrecise(sig string) *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.byPrecise[sig]; ok {
		return s.byPath[p]
	}
	return nil
}

// Delete removes the view at path. It is idempotent.
func (s *Store) Delete(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.byPath[path]
	if !ok {
		return
	}
	delete(s.byPath, path)
	delete(s.byPrecise, v.PreciseSig)
	s.bytes -= v.Bytes
}

// Purge removes every view whose expiry is at or before now and returns
// the purged paths.
func (s *Store) Purge(now int64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var purged []string
	for path, v := range s.byPath {
		if v.ExpiresAt <= now {
			delete(s.byPath, path)
			delete(s.byPrecise, v.PreciseSig)
			s.bytes -= v.Bytes
			purged = append(purged, path)
		}
	}
	sort.Strings(purged)
	return purged
}

// TotalBytes returns the bytes currently held by all views.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Len returns the number of stored views.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byPath)
}

// Views returns a snapshot of all stored views, ordered by path.
func (s *Store) Views() []*View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*View, 0, len(s.byPath))
	for _, v := range s.byPath {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ReclaimLowestUtility removes views in ascending order of the utility
// score provided by rank until at least wantBytes have been reclaimed.
// This is the admin "reclaim storage by min-utility" operation of §5.4.
// It returns the purged paths.
func (s *Store) ReclaimLowestUtility(wantBytes int64, rank func(*View) float64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	type scored struct {
		v     *View
		score float64
	}
	all := make([]scored, 0, len(s.byPath))
	for _, v := range s.byPath {
		all = append(all, scored{v, rank(v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score < all[j].score
		}
		return all[i].v.Path < all[j].v.Path
	})
	var purged []string
	var freed int64
	for _, sc := range all {
		if freed >= wantBytes {
			break
		}
		delete(s.byPath, sc.v.Path)
		delete(s.byPrecise, sc.v.PreciseSig)
		s.bytes -= sc.v.Bytes
		freed += sc.v.Bytes
		purged = append(purged, sc.v.Path)
	}
	return purged
}
