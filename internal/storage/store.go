// Package storage implements the cluster store for materialized views.
//
// Following the paper, a materialized view is a set of partitioned files
// whose "physical path" embeds the precise signature of the computation it
// captures, the ID of the job that produced it (provenance), and its expiry
// (§5.4, §6.2). The storage manager purges expired views; the metadata
// service must be cleaned first so in-flight jobs never read a dangling
// path — Store enforces that ordering by keeping purged views readable by
// open handles while removing them from lookup, and by invoking the
// Deregister callback for every storage-initiated reclamation before the
// file goes away.
//
// At rest a view is *encoded*: each partition is one columnar byte block
// (internal/data/colenc — typed vectors, dictionaries, null bitmaps), so
// the resident footprint is the compressed payload, not boxed rows.
// Write encodes partitions in parallel; Consume — the data-plane read used
// by executing jobs — verifies the payload checksum, decodes in parallel,
// and serves repeat consumers out of a sharded, byte-budgeted hot-view
// cache of decoded partitions (zero-copy under the engine's read-only
// aliasing contract). Metadata-level accessors (Get, Views, LookupPrecise)
// never decode: listing, ranking, and reclaim work off headers alone.
//
// Integrity: Write records a checksum of the encoded payload on the view;
// Consume verifies it and reports a CorruptError on mismatch, so silent
// corruption (or an injected fault, see internal/fault — a bit flip in the
// encoded bytes) is caught at consume time and the runtime can quarantine
// the view instead of returning wrong rows.
package storage

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cloudviews/internal/data"
	"cloudviews/internal/data/colenc"
	"cloudviews/internal/plan"
)

// FaultHook is the storage fault-injection surface (implemented by
// *fault.Injector). A nil hook costs nothing.
type FaultHook interface {
	// ReadView is consulted by Consume; an error fails the read. Injected
	// errors are transient — the executor's vertex retry re-reads.
	ReadView(path string) error
	// WriteView is consulted by Write for a view about to be created: err
	// fails the write before anything is installed; corrupt=true lets the
	// write proceed but silently damages the stored payload (detected
	// later by checksum verification on consume).
	WriteView(path string) (corrupt bool, err error)
}

// ObsHook is the storage observability seam (see the Obs field). A nil
// hook costs nothing.
type ObsHook interface {
	ViewConsumed(path string, cacheHit bool, err error)
	ViewWritten(path string, encodedBytes int64, created bool)
}

// NotFoundError reports a read of a path the store does not hold — a
// dangling metadata registration or a premature purge. It is permanent:
// retrying the read cannot help, but the consuming job can be re-planned
// without the view (graceful degradation).
type NotFoundError struct{ Path string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("storage: no view at %q", e.Path) }

// CorruptError reports a checksum mismatch between a view's recorded
// checksum and its stored payload. Like NotFoundError it is permanent for
// this copy of the view; the runtime quarantines it and re-plans.
type CorruptError struct {
	Path       string
	PreciseSig string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: view %q failed integrity verification", e.Path)
}

// View is one materialized view: the output rows of a subgraph, laid out
// with an explicit physical design and stored as encoded columnar blocks.
type View struct {
	Path          string
	PreciseSig    string
	NormSig       string
	ProducerJobID string
	// ExpiresAt is the simulated time after which the storage manager may
	// purge the view (derived from input lineage, §5.4).
	ExpiresAt int64
	CreatedAt int64
	Schema    data.Schema
	Props     plan.PhysicalProps
	// Encoded holds the at-rest payload: one columnar block per partition
	// of the view's physical design (see internal/data/colenc). Set by
	// Store.Write; read through Store.Consume, which decodes.
	Encoded [][]byte
	// Bytes is the true at-rest footprint — the total size of the encoded
	// blocks. Storage accounting (TotalBytes, Purge, ReclaimLowestUtility)
	// evicts on this real footprint.
	Bytes int64
	// LogicalBytes is the decoded row-representation size (the sum of
	// Row.ByteSize). The cost model and the optimizer's reuse estimates
	// price a view scan on this — what the consumer materializes in
	// memory — independent of at-rest compression.
	LogicalBytes int64
	Rows         int64
	// Checksum is the content hash of the encoded payload recorded by
	// Store.Write; Consume verifies the stored blocks against it.
	Checksum uint64
}

// PartitionCount returns the number of partitions in the view's physical
// design without decoding any of them.
func (v *View) PartitionCount() int { return len(v.Encoded) }

// PathFor builds the canonical physical path of a view, embedding the
// precise signature and producing job — the paper's trick for provenance
// and matching without extra metadata state.
func PathFor(preciseSig, jobID string) string {
	return fmt.Sprintf("/views/%s/%s.ss", preciseSig, jobID)
}

// Store is a concurrent view store with signature lookup, expiry,
// consume-time integrity verification, and a decoded hot-view cache.
type Store struct {
	// Faults, if set, injects storage failures (reads, writes, silent
	// corruption). Wired by fault-injection tests and chaos soaks.
	Faults FaultHook
	// Deregister, if set, is invoked for every view selected by Purge or
	// ReclaimLowestUtility just before its file is removed, giving the
	// owner the chance to drop the metadata registration first (the §5.4
	// ordering). Without it, storage-initiated reclamation would leave the
	// metadata service referencing deleted paths.
	Deregister func(preciseSig, path string)

	// Gate, if set, is consulted before every Consume touches the store —
	// the circuit-breaker admission seam. A non-nil error short-circuits
	// the read (nothing is looked up, verified, or decoded) and is returned
	// as-is, so the owner controls its classification; the job frontend
	// wires the store breaker's OpenError here and replans without the
	// view. Gate rejections are never reported to OnConsume: the breaker
	// already accounted for them.
	Gate func(path string) error
	// OnConsume, if set, observes the outcome of every real consume attempt
	// (after Gate admission): err == nil is a healthy read, anything else a
	// dependency failure. Attempts abandoned by context cancellation are
	// not reported — they say nothing about the store's health.
	OnConsume func(path string, err error)

	// Obs, if set, is the storage observability seam (see internal/obs):
	// ViewConsumed fires per real consume attempt (Gate rejections and
	// context-abandoned reads excluded, like OnConsume) with whether the
	// hot cache served it; ViewWritten fires per write that reached the
	// install step, with the encoded footprint and whether this call
	// created the view (false = deduplicated against a resident copy).
	// Hooks must not call back into the store. Nil costs one branch.
	Obs ObsHook

	mu        sync.RWMutex
	byPath    map[string]*View
	byPrecise map[string]string // precise sig -> path
	bytes     int64             // encoded (at-rest) bytes

	cache viewCache
}

// NewStore returns an empty store with the hot-view cache at its default
// budget (DefaultCacheBudget; SetCacheBudget adjusts or disables it).
func NewStore() *Store {
	s := &Store{
		byPath:    map[string]*View{},
		byPrecise: map[string]string{},
	}
	s.cache.init(DefaultCacheBudget)
	return s
}

// checksumEncoded folds every encoded partition block with its partition
// index (FNV-1a over the block bytes). Ordering matters: the physical
// layout is part of what Write sealed, so reordered, truncated, or
// bit-damaged payloads must verify differently.
func checksumEncoded(blocks [][]byte) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i, b := range blocks {
		h = h*prime64 ^ uint64(i+1)
		for _, c := range b {
			h = (h ^ uint64(c)) * prime64
		}
	}
	return h
}

// corruptPayload returns a damaged copy of the encoded payload: one bit is
// flipped in the middle of the first non-empty block. Only that block (and
// the outer slice) is fresh — the remaining blocks alias the clean
// payload. This models silent at-rest data damage; only consume-time
// checksum verification can catch it.
func corruptPayload(blocks [][]byte) [][]byte {
	out := make([][]byte, len(blocks))
	copy(out, blocks)
	for i, b := range out {
		if len(b) > 0 {
			dam := append([]byte(nil), b...)
			dam[len(dam)/2] ^= 0x10
			out[i] = dam
			break
		}
	}
	return out
}

// encodeParallel encodes every partition into its columnar block, fanning
// out across partitions, and returns the blocks plus the payload accounting
// (encoded bytes, decoded row bytes, rows).
func encodeParallel(ctx context.Context, parts [][]data.Row) (blocks [][]byte, encBytes, logicalBytes, rows int64, err error) {
	blocks = make([][]byte, len(parts))
	logical := make([]int64, len(parts))
	errs := make([]error, len(parts))
	partitionRange(len(parts), func(i int) {
		// Chunk-boundary cancellation poll: skipped partitions leave nil
		// blocks; WriteCtx re-checks the context before installing anything,
		// so a partial encode never becomes a resident view.
		if ctx.Err() != nil {
			return
		}
		blocks[i], errs[i] = colenc.Encode(parts[i])
		var lb int64
		for _, r := range parts[i] {
			lb += r.ByteSize()
		}
		logical[i] = lb
	})
	for i := range parts {
		if errs[i] != nil {
			return nil, 0, 0, 0, errs[i]
		}
		encBytes += int64(len(blocks[i]))
		logicalBytes += logical[i]
		rows += int64(len(parts[i]))
	}
	return blocks, encBytes, logicalBytes, rows, nil
}

// decodeParallel decodes every block back into rows, fanning out across
// partitions.
func decodeParallel(ctx context.Context, blocks [][]byte) ([][]data.Row, error) {
	parts := make([][]data.Row, len(blocks))
	errs := make([]error, len(blocks))
	partitionRange(len(blocks), func(i int) {
		// Chunk-boundary cancellation poll: skipped partitions stay nil;
		// ConsumeCtx re-checks the context before serving or caching, so a
		// partial decode is never observed.
		if ctx.Err() != nil {
			return
		}
		parts[i], errs[i] = colenc.Decode(blocks[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// partitionRange runs fn(i) for i in [0, n) with up to GOMAXPROCS
// goroutines. fn writes only slot i, and the join establishes the
// happens-before edge back to the caller. Small inputs run inline — the
// codec on a few rows is cheaper than a handoff.
func partitionRange(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n <= 1 || workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Write encodes parts into the view's at-rest payload and installs it,
// reporting whether this call created the view. A second view for an
// already-materialized precise signature is not an error: build-lock
// expiry (§6.1 fault tolerance) can hand the lock to a takeover builder
// while the original is still running, and equal precise signatures
// compute byte-identical results, so the race resolves first-writer-wins —
// the losing write is discarded and Write returns created=false. A path
// collision where the resident view has the same precise signature and
// producer is the producer's own retry — a vertex that crashed after its
// write landed re-runs, and the installed copy already is this payload —
// so it too returns created=false. Any other path reuse is rejected:
// paths embed the producing job ID, so that collision means one job wrote
// two different views to the same place.
//
// Write records the payload checksum on the view. An injected write fault
// fails the call before anything is installed (safe to retry); an injected
// corruption stores a bit-damaged payload under the clean checksum,
// modeling silent data loss that only consume-time verification can catch.
func (s *Store) Write(v *View, parts [][]data.Row) (created bool, err error) {
	return s.WriteCtx(context.Background(), v, parts)
}

// WriteCtx is Write under a job lifecycle: the partition-parallel encode
// polls ctx at chunk boundaries, and the context is re-checked before the
// install lock — a cancelled job's write fails with the context's error
// and never installs a (possibly partial) payload.
func (s *Store) WriteCtx(ctx context.Context, v *View, parts [][]data.Row) (created bool, err error) {
	// Cheap pre-check so a write that lost the build race does not pay for
	// an encode it will discard. Results are revalidated under the lock.
	s.mu.RLock()
	resident, pathDup := s.byPath[v.Path]
	_, sigDup := s.byPrecise[v.PreciseSig]
	s.mu.RUnlock()
	if pathDup {
		if resident.PreciseSig == v.PreciseSig && resident.ProducerJobID == v.ProducerJobID {
			return false, nil // the producer's own retry; already installed
		}
		return false, fmt.Errorf("storage: path %q already exists", v.Path)
	}
	if sigDup {
		return false, nil
	}

	// Encode outside the lock: the payload walk is the expensive part, and
	// concurrent writers of distinct views must not serialize on it.
	blocks, encBytes, logicalBytes, rows, err := encodeParallel(ctx, parts)
	if err != nil {
		return false, fmt.Errorf("storage: encode %q: %w", v.Path, err)
	}
	// A cancel during the encode leaves nil blocks behind; fail the write
	// here, before anything is installed. (A cancel arriving after this
	// check means the encode ran to completion — installing is safe.)
	if cerr := ctx.Err(); cerr != nil {
		return false, fmt.Errorf("storage: write %q: %w", v.Path, cerr)
	}
	checksum := checksumEncoded(blocks)

	created, err = s.install(v, blocks, checksum, encBytes, logicalBytes, rows)
	// Observability fires outside the store lock (hooks must not call back
	// into the store, but they may take their own locks) and only for
	// attempts that reached the install step — failed or deduplicated
	// writes included, pre-check short-circuits not.
	if err == nil && s.Obs != nil {
		s.Obs.ViewWritten(v.Path, encBytes, created)
	}
	return created, err
}

// install revalidates the dedup conditions under the write lock and
// publishes the encoded payload (see WriteCtx for the semantics).
func (s *Store) install(v *View, blocks [][]byte, checksum uint64, encBytes, logicalBytes, rows int64) (created bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if res, ok := s.byPath[v.Path]; ok {
		if res.PreciseSig == v.PreciseSig && res.ProducerJobID == v.ProducerJobID {
			return false, nil
		}
		return false, fmt.Errorf("storage: path %q already exists", v.Path)
	}
	if _, ok := s.byPrecise[v.PreciseSig]; ok {
		return false, nil
	}
	corrupt := false
	if s.Faults != nil {
		var ferr error
		corrupt, ferr = s.Faults.WriteView(v.Path)
		if ferr != nil {
			return false, fmt.Errorf("storage: write %q: %w", v.Path, ferr)
		}
	}
	// Rows, bytes, and the checksum describe the payload the producer
	// sealed; an injected corruption swaps in a damaged payload underneath
	// them, so consume-time verification detects the mismatch.
	v.Rows, v.Bytes, v.LogicalBytes = rows, encBytes, logicalBytes
	v.Encoded = blocks
	v.Checksum = checksum
	if corrupt {
		v.Encoded = corruptPayload(blocks)
	}
	s.byPath[v.Path] = v
	s.byPrecise[v.PreciseSig] = v.Path
	s.bytes += v.Bytes
	return true, nil
}

// Get returns the view at path without integrity verification or decoding
// — the metadata-level accessor used by maintenance and tests. Listing and
// reclaim ranking work off the returned headers alone; executing jobs read
// views through Consume.
func (s *Store) Get(path string) (*View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.byPath[path]
	if !ok {
		return nil, &NotFoundError{Path: path}
	}
	return v, nil
}

// Consume returns the view at path, decoded, for a consuming job: injected
// read faults surface first (transient — the vertex retry re-reads), then
// the hot cache is tried, and on a miss the encoded payload is verified
// against the checksum recorded at Write and decoded partition-parallel. A
// mismatch (or an undecodable block) is a CorruptError; the caller is
// expected to quarantine the view and re-plan without it.
//
// The returned partitions may be shared with other consumers (the cache
// serves them zero-copy): callers must treat rows as immutable, the same
// read-only aliasing contract every view scan already obeys.
func (s *Store) Consume(path string) (*View, [][]data.Row, error) {
	return s.ConsumeCtx(context.Background(), path)
}

// ConsumeCtx is Consume under a job lifecycle. The Gate (circuit breaker)
// is consulted first — a rejection returns without touching the store and
// without an OnConsume report. Admitted reads poll ctx at the partition
// boundaries of the parallel decode and re-check it before classifying
// failures or caching: an attempt abandoned by cancellation returns the
// context's error (never a spurious CorruptError from an interrupted
// decode) and is not reported to OnConsume.
func (s *Store) ConsumeCtx(ctx context.Context, path string) (*View, [][]data.Row, error) {
	if s.Gate != nil {
		if err := s.Gate(path); err != nil {
			return nil, nil, err
		}
	}
	v, parts, hit, err := s.consume(ctx, path)
	if ctx.Err() == nil {
		if s.OnConsume != nil {
			s.OnConsume(path, err)
		}
		if s.Obs != nil {
			s.Obs.ViewConsumed(path, hit, err)
		}
	}
	return v, parts, err
}

func (s *Store) consume(ctx context.Context, path string) (*View, [][]data.Row, bool, error) {
	if s.Faults != nil {
		if err := s.Faults.ReadView(path); err != nil {
			return nil, nil, false, fmt.Errorf("storage: read %q: %w", path, err)
		}
	}
	s.mu.RLock()
	v, ok := s.byPath[path]
	s.mu.RUnlock()
	if !ok {
		return nil, nil, false, &NotFoundError{Path: path}
	}
	if parts, hit := s.cache.get(path); hit {
		return v, parts, true, nil
	}
	// Verify and decode outside the lock: the payload is immutable.
	// Concurrent first consumers may both decode; both admit the same
	// answer and the cache keeps one. The checksum fold itself is never
	// interrupted mid-walk — a partial hash would misreport a healthy view
	// as corrupt — so the cancellation check sits between the stages.
	if checksumEncoded(v.Encoded) != v.Checksum {
		return nil, nil, false, &CorruptError{Path: path, PreciseSig: v.PreciseSig}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, nil, false, fmt.Errorf("storage: read %q: %w", path, cerr)
	}
	parts, err := decodeParallel(ctx, v.Encoded)
	if err != nil {
		// The checksum matched but the payload does not parse: damage that
		// slipped under the hash, still quarantinable corruption.
		return nil, nil, false, &CorruptError{Path: path, PreciseSig: v.PreciseSig}
	}
	// A cancel during the decode leaves nil partitions; return the
	// context's error rather than serving — or worse, caching — a partial
	// decode.
	if cerr := ctx.Err(); cerr != nil {
		return nil, nil, false, fmt.Errorf("storage: read %q: %w", path, cerr)
	}
	parts = s.cache.admit(path, parts, v.LogicalBytes)
	return v, parts, false, nil
}

// LookupPrecise returns the view materialized for the precise signature,
// or nil if none exists. Header-only: nothing is decoded.
func (s *Store) LookupPrecise(sig string) *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.byPrecise[sig]; ok {
		return s.byPath[p]
	}
	return nil
}

// Delete removes the view at path, including any hot-cache entry for it —
// a deleted (or quarantined) view must not be served from cache. It is
// idempotent.
func (s *Store) Delete(path string) {
	s.mu.Lock()
	s.deleteLocked(path)
	s.mu.Unlock()
	s.cache.drop(path)
}

func (s *Store) deleteLocked(path string) {
	v, ok := s.byPath[path]
	if !ok {
		return
	}
	delete(s.byPath, path)
	delete(s.byPrecise, v.PreciseSig)
	s.bytes -= v.Bytes
}

// reap deregisters (metadata first, per §5.4) and deletes the selected
// views, in path order. victims maps path -> precise signature.
func (s *Store) reap(victims map[string]string) []string {
	if len(victims) == 0 {
		return nil
	}
	paths := make([]string, 0, len(victims))
	for p := range victims {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if s.Deregister != nil {
			s.Deregister(victims[p], p)
		}
		s.Delete(p)
	}
	return paths
}

// Purge removes every view whose expiry is at or before now and returns
// the purged paths. Each victim's metadata registration is dropped (via
// the Deregister callback) before its file, so a consumer that raced the
// purge sees at worst a missing view — never a registered-but-deleted one
// surviving the purge.
func (s *Store) Purge(now int64) []string {
	s.mu.Lock()
	victims := map[string]string{}
	for path, v := range s.byPath {
		if v.ExpiresAt <= now {
			victims[path] = v.PreciseSig
		}
	}
	s.mu.Unlock()
	return s.reap(victims)
}

// TotalBytes returns the at-rest (encoded) bytes currently held by all
// views — the real resident footprint, not the decoded row size.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Len returns the number of stored views.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byPath)
}

// Views returns a snapshot of all stored views, ordered by path. Nothing
// is decoded: maintenance and ranking consume headers only.
func (s *Store) Views() []*View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*View, 0, len(s.byPath))
	for _, v := range s.byPath {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ReclaimLowestUtility removes views in ascending order of the utility
// score provided by rank until at least wantBytes have been reclaimed.
// This is the admin "reclaim storage by min-utility" operation of §5.4.
// Victims are deregistered from metadata (Deregister callback) before
// their files are deleted — which also drops their hot-cache entries, so
// eviction and the cache stay coordinated. Reclamation accounts in real
// (encoded) bytes. It returns the purged paths.
func (s *Store) ReclaimLowestUtility(wantBytes int64, rank func(*View) float64) []string {
	s.mu.Lock()
	type scored struct {
		v     *View
		score float64
	}
	all := make([]scored, 0, len(s.byPath))
	for _, v := range s.byPath {
		all = append(all, scored{v, rank(v)})
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score < all[j].score
		}
		return all[i].v.Path < all[j].v.Path
	})
	victims := map[string]string{}
	var freed int64
	for _, sc := range all {
		if freed >= wantBytes {
			break
		}
		victims[sc.v.Path] = sc.v.PreciseSig
		freed += sc.v.Bytes
	}
	return s.reap(victims)
}
