// Package storage implements the cluster store for materialized views.
//
// Following the paper, a materialized view is a set of partitioned files
// whose "physical path" embeds the precise signature of the computation it
// captures, the ID of the job that produced it (provenance), and its expiry
// (§5.4, §6.2). The storage manager purges expired views; the metadata
// service must be cleaned first so in-flight jobs never read a dangling
// path — Store enforces that ordering by keeping purged views readable by
// open handles while removing them from lookup, and by invoking the
// Deregister callback for every storage-initiated reclamation before the
// file goes away.
//
// Integrity: Write records a checksum of the encoded payload on the view;
// Consume — the data-plane read used by executing jobs — verifies it and
// reports a CorruptError on mismatch, so silent corruption (or an injected
// fault, see internal/fault) is caught at consume time and the runtime can
// quarantine the view instead of returning wrong rows.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

// FaultHook is the storage fault-injection surface (implemented by
// *fault.Injector). A nil hook costs nothing.
type FaultHook interface {
	// ReadView is consulted by Consume; an error fails the read. Injected
	// errors are transient — the executor's vertex retry re-reads.
	ReadView(path string) error
	// WriteView is consulted by Write for a view about to be created: err
	// fails the write before anything is installed; corrupt=true lets the
	// write proceed but silently damages the stored payload (detected
	// later by checksum verification on consume).
	WriteView(path string) (corrupt bool, err error)
}

// NotFoundError reports a read of a path the store does not hold — a
// dangling metadata registration or a premature purge. It is permanent:
// retrying the read cannot help, but the consuming job can be re-planned
// without the view (graceful degradation).
type NotFoundError struct{ Path string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("storage: no view at %q", e.Path) }

// CorruptError reports a checksum mismatch between a view's recorded
// checksum and its stored payload. Like NotFoundError it is permanent for
// this copy of the view; the runtime quarantines it and re-plans.
type CorruptError struct {
	Path       string
	PreciseSig string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: view %q failed integrity verification", e.Path)
}

// View is one materialized view: the output rows of a subgraph, laid out
// with an explicit physical design.
type View struct {
	Path          string
	PreciseSig    string
	NormSig       string
	ProducerJobID string
	// ExpiresAt is the simulated time after which the storage manager may
	// purge the view (derived from input lineage, §5.4).
	ExpiresAt int64
	CreatedAt int64
	Schema    data.Schema
	Props     plan.PhysicalProps
	// Partitions hold the rows in the view's physical design.
	Partitions [][]data.Row
	Bytes      int64
	Rows       int64
	// Checksum is the content hash of Partitions recorded by Store.Write;
	// Consume verifies the stored payload against it.
	Checksum uint64
}

// PathFor builds the canonical physical path of a view, embedding the
// precise signature and producing job — the paper's trick for provenance
// and matching without extra metadata state.
func PathFor(preciseSig, jobID string) string {
	return fmt.Sprintf("/views/%s/%s.ss", preciseSig, jobID)
}

// Store is a concurrent view store with signature lookup, expiry, and
// consume-time integrity verification.
type Store struct {
	// Faults, if set, injects storage failures (reads, writes, silent
	// corruption). Wired by fault-injection tests and chaos soaks.
	Faults FaultHook
	// Deregister, if set, is invoked for every view selected by Purge or
	// ReclaimLowestUtility just before its file is removed, giving the
	// owner the chance to drop the metadata registration first (the §5.4
	// ordering). Without it, storage-initiated reclamation would leave the
	// metadata service referencing deleted paths.
	Deregister func(preciseSig, path string)

	mu        sync.RWMutex
	byPath    map[string]*View
	byPrecise map[string]string // precise sig -> path
	verified  map[string]bool   // paths whose checksum already verified
	bytes     int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byPath:    map[string]*View{},
		byPrecise: map[string]string{},
		verified:  map[string]bool{},
	}
}

// checksumPartitions folds every row's content hash with its partition
// index. Ordering within and across partitions matters: the physical
// layout is part of what Write sealed, so a reordered or truncated payload
// must verify differently.
func checksumPartitions(parts [][]data.Row) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i, p := range parts {
		h = h*prime64 ^ uint64(i+1)
		for _, r := range p {
			h = h*prime64 ^ r.Hash64()
		}
	}
	return h
}

// corruptCopy returns a damaged copy of parts: the last row of the first
// non-empty partition is dropped. Only the outer slice headers are fresh —
// the rows themselves are never touched, since they may alias live job
// state (the engine's row-immutability contract).
func corruptCopy(parts [][]data.Row) [][]data.Row {
	out := make([][]data.Row, len(parts))
	copy(out, parts)
	for i, p := range out {
		if len(p) > 0 {
			out[i] = p[:len(p)-1:len(p)-1]
			break
		}
	}
	return out
}

// Write installs a view and reports whether this call created it. A second
// view for an already-materialized precise signature is not an error:
// build-lock expiry (§6.1 fault tolerance) can hand the lock to a takeover
// builder while the original is still running, and equal precise signatures
// compute byte-identical results, so the race resolves first-writer-wins —
// the losing write is discarded and Write returns created=false. Reusing a
// path is still rejected: paths embed the producing job ID, so a collision
// means one job wrote the same view twice.
//
// Write records the payload checksum on the view. An injected write fault
// fails the call before anything is installed (safe to retry); an injected
// corruption stores a damaged payload under the clean checksum, modeling
// silent data loss that only consume-time verification can catch.
func (s *Store) Write(v *View) (created bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byPath[v.Path]; ok {
		return false, fmt.Errorf("storage: path %q already exists", v.Path)
	}
	if _, ok := s.byPrecise[v.PreciseSig]; ok {
		return false, nil
	}
	corrupt := false
	if s.Faults != nil {
		var ferr error
		corrupt, ferr = s.Faults.WriteView(v.Path)
		if ferr != nil {
			return false, fmt.Errorf("storage: write %q: %w", v.Path, ferr)
		}
	}
	var rows, bytes int64
	for _, p := range v.Partitions {
		rows += int64(len(p))
		for _, r := range p {
			bytes += r.ByteSize()
		}
	}
	// Rows, bytes, and the checksum describe the payload the producer
	// sealed; an injected corruption swaps in a damaged payload underneath
	// them, so consume-time verification detects the mismatch.
	v.Rows, v.Bytes = rows, bytes
	v.Checksum = checksumPartitions(v.Partitions)
	if corrupt {
		v.Partitions = corruptCopy(v.Partitions)
	}
	s.byPath[v.Path] = v
	s.byPrecise[v.PreciseSig] = v.Path
	s.bytes += bytes
	return true, nil
}

// Get returns the view at path without integrity verification — the raw
// metadata-level accessor used by maintenance and tests. Executing jobs
// read views through Consume.
func (s *Store) Get(path string) (*View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.byPath[path]
	if !ok {
		return nil, &NotFoundError{Path: path}
	}
	return v, nil
}

// Consume returns the view at path for a consuming job: injected read
// faults surface first (transient — the vertex retry re-reads), then the
// stored payload is verified against the checksum recorded at Write. A
// mismatch is a CorruptError; the caller is expected to quarantine the
// view and re-plan without it. Successful verification is cached — views
// are immutable once written, so one payload walk amortizes across every
// recurring consumer.
func (s *Store) Consume(path string) (*View, error) {
	if s.Faults != nil {
		if err := s.Faults.ReadView(path); err != nil {
			return nil, fmt.Errorf("storage: read %q: %w", path, err)
		}
	}
	s.mu.RLock()
	v, ok := s.byPath[path]
	verified := ok && s.verified[path]
	s.mu.RUnlock()
	if !ok {
		return nil, &NotFoundError{Path: path}
	}
	if verified {
		return v, nil
	}
	// Verify outside the lock: the payload is immutable and the walk is
	// O(rows). Concurrent first consumers may both verify; both cache the
	// same answer.
	if checksumPartitions(v.Partitions) != v.Checksum {
		return nil, &CorruptError{Path: path, PreciseSig: v.PreciseSig}
	}
	s.mu.Lock()
	if cur, ok := s.byPath[path]; ok && cur == v {
		s.verified[path] = true
	}
	s.mu.Unlock()
	return v, nil
}

// LookupPrecise returns the view materialized for the precise signature,
// or nil if none exists.
func (s *Store) LookupPrecise(sig string) *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.byPrecise[sig]; ok {
		return s.byPath[p]
	}
	return nil
}

// Delete removes the view at path. It is idempotent.
func (s *Store) Delete(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deleteLocked(path)
}

func (s *Store) deleteLocked(path string) {
	v, ok := s.byPath[path]
	if !ok {
		return
	}
	delete(s.byPath, path)
	delete(s.byPrecise, v.PreciseSig)
	delete(s.verified, path)
	s.bytes -= v.Bytes
}

// reap deregisters (metadata first, per §5.4) and deletes the selected
// views, in path order. victims maps path -> precise signature.
func (s *Store) reap(victims map[string]string) []string {
	if len(victims) == 0 {
		return nil
	}
	paths := make([]string, 0, len(victims))
	for p := range victims {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if s.Deregister != nil {
			s.Deregister(victims[p], p)
		}
		s.Delete(p)
	}
	return paths
}

// Purge removes every view whose expiry is at or before now and returns
// the purged paths. Each victim's metadata registration is dropped (via
// the Deregister callback) before its file, so a consumer that raced the
// purge sees at worst a missing view — never a registered-but-deleted one
// surviving the purge.
func (s *Store) Purge(now int64) []string {
	s.mu.Lock()
	victims := map[string]string{}
	for path, v := range s.byPath {
		if v.ExpiresAt <= now {
			victims[path] = v.PreciseSig
		}
	}
	s.mu.Unlock()
	return s.reap(victims)
}

// TotalBytes returns the bytes currently held by all views.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Len returns the number of stored views.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byPath)
}

// Views returns a snapshot of all stored views, ordered by path.
func (s *Store) Views() []*View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*View, 0, len(s.byPath))
	for _, v := range s.byPath {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ReclaimLowestUtility removes views in ascending order of the utility
// score provided by rank until at least wantBytes have been reclaimed.
// This is the admin "reclaim storage by min-utility" operation of §5.4.
// Victims are deregistered from metadata (Deregister callback) before
// their files are deleted. It returns the purged paths.
func (s *Store) ReclaimLowestUtility(wantBytes int64, rank func(*View) float64) []string {
	s.mu.Lock()
	type scored struct {
		v     *View
		score float64
	}
	all := make([]scored, 0, len(s.byPath))
	for _, v := range s.byPath {
		all = append(all, scored{v, rank(v)})
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score < all[j].score
		}
		return all[i].v.Path < all[j].v.Path
	})
	victims := map[string]string{}
	var freed int64
	for _, sc := range all {
		if freed >= wantBytes {
			break
		}
		victims[sc.v.Path] = sc.v.PreciseSig
		freed += sc.v.Bytes
	}
	return s.reap(victims)
}
