// Expression compilation: Compile turns an Expr tree into fused,
// kind-specialized closures so the executor's scalar hot path (filter
// predicates, projection expressions) pays neither the per-row virtual
// Eval dispatch nor the per-row operator switch of the interpreter.
// Column references and literals are fused into their consuming operator's
// closure — the archetypal `col <op> literal` predicate runs as a single
// closure call per row with a direct row load inside.
//
// The compiled form is an exact semantic twin of the interpreter — the
// same null propagation, the same div-by-zero-to-NULL rule, the same
// Truth() coercions — pinned by the table-driven semantics tests, the
// golden compiled-vs-interpreted sweep, and FuzzCompiledEval. Arithmetic
// falls back to the interpreter's own evalArith and comparisons to
// data.Compare whenever a kind guard fails, so specialization can only
// ever change speed, not results. The only observable differences are
// deliberate and invisible on well-formed inputs: And/Or short-circuit
// their right operand and constant subtrees fold at compile time, both
// safe because expression evaluation is pure.
//
// A Compiled program is immutable after Compile returns: every closure
// captures only compile-time constants, so one program is shared race-free
// across partition workers. Per-row mutable state (the hoisted argument
// buffers of Func/UDF calls) lives in a Ctx, one per worker; programs
// without Func/UDF nodes run on a nil Ctx and allocate nothing.
package expr

import (
	"cloudviews/internal/data"
)

// Ctx is the per-worker mutable scratch of a compiled program: a flat
// argument arena into which Func/UDF closures evaluate their operands,
// replacing the interpreter's per-row `make([]data.Value, n)`. Each
// Func/UDF node owns a disjoint compile-time-assigned range, so nested
// calls never clobber each other. A Ctx must not be shared between
// goroutines; NewCtx is cheap enough to call once per partition.
type Ctx struct {
	args []data.Value
}

// evalFn is the compiled form of one expression: value semantics identical
// to Expr.Eval on the same row.
type evalFn func(ctx *Ctx, row data.Row) data.Value

// boolFn is the compiled predicate form: identical to Expr.Eval(row).Truth().
type boolFn func(ctx *Ctx, row data.Row) bool

// Compiled is an expression compiled to fused closures, with both a value
// entry point (projection columns) and a predicate entry point (filters,
// which skip boxing comparison results into data.Bool values entirely).
type Compiled struct {
	eval    evalFn
	pred    boolFn
	scratch int
}

// Compile compiles e against the input schema. The schema supplies static
// kind hints for int/float specializations; it may be nil (or stale), in
// which case the compiled program simply takes its general paths — hints
// are guarded by runtime kind checks and never change results.
func Compile(e Expr, schema data.Schema) *Compiled {
	c := &compiler{schema: schema}
	ef, _ := c.value(e)
	pf, _ := c.boolean(e)
	return &Compiled{eval: ef, pred: pf, scratch: c.scratch}
}

// NewCtx returns a fresh evaluation context for one worker. Programs with
// no Func/UDF scratch return nil — their closures never touch the context.
func (c *Compiled) NewCtx() *Ctx {
	if c.scratch == 0 {
		return nil
	}
	return &Ctx{args: make([]data.Value, c.scratch)}
}

// Eval evaluates the compiled expression against a row.
func (c *Compiled) Eval(ctx *Ctx, row data.Row) data.Value { return c.eval(ctx, row) }

// Truth evaluates the compiled predicate form: Expr.Eval(row).Truth().
func (c *Compiled) Truth(ctx *Ctx, row data.Row) bool { return c.pred(ctx, row) }

// SelectInto is the batch predicate entry point: it appends the index of
// every row satisfying the predicate to sel (a reusable selection buffer)
// and returns the extended buffer. Indexes are appended in row order, so
// the caller's gather preserves scan order exactly like the interpreter's
// append-if-true loop.
func (c *Compiled) SelectInto(ctx *Ctx, rows []data.Row, sel []int32) []int32 {
	pred := c.pred
	for j, r := range rows {
		if pred(ctx, r) {
			sel = append(sel, int32(j))
		}
	}
	return sel
}

// Projector is a compiled projection list: one fused evaluator per output
// column, with column-reference and constant columns special-cased to a
// direct copy (no closure call at all).
type Projector struct {
	cols    []colEval
	scratch int
}

// colEval modes: a compiled closure, a direct input-column copy, or a
// compile-time constant.
const (
	ceFn uint8 = iota
	ceCol
	ceConst
)

type colEval struct {
	mode uint8
	idx  int
	val  data.Value
	fn   evalFn
}

// CompileProject compiles a projection expression list against the input
// schema.
func CompileProject(exprs []Expr, schema data.Schema) *Projector {
	c := &compiler{schema: schema}
	cols := make([]colEval, len(exprs))
	for i, e := range exprs {
		if col, ok := e.(*Col); ok {
			cols[i] = colEval{mode: ceCol, idx: col.Index}
			continue
		}
		f, k := c.value(e)
		if k != nil {
			cols[i] = colEval{mode: ceConst, val: *k}
			continue
		}
		cols[i] = colEval{mode: ceFn, fn: f}
	}
	return &Projector{cols: cols, scratch: c.scratch}
}

// Width returns the number of output columns.
func (p *Projector) Width() int { return len(p.cols) }

// NewCtx returns a fresh evaluation context for one worker (nil when the
// projection has no Func/UDF scratch).
func (p *Projector) NewCtx() *Ctx {
	if p.scratch == 0 {
		return nil
	}
	return &Ctx{args: make([]data.Value, p.scratch)}
}

// EmitInto is the batch projection entry point: out[j] must already be a
// writable row of Width() values (carved from the caller's RowArena);
// EmitInto fills out[j] from part[j] for every j and returns the exact
// summed data.Value.ByteSize of everything written — the caller reports it
// as the operator's output byte count instead of re-walking the rows.
func (p *Projector) EmitInto(ctx *Ctx, part, out []data.Row) int64 {
	cols := p.cols
	var bytes int64
	for j, r := range part {
		nr := out[j]
		for k := range cols {
			ce := &cols[k]
			var v data.Value
			switch ce.mode {
			case ceCol:
				v = r[ce.idx]
			case ceConst:
				v = ce.val
			default:
				v = ce.fn(ctx, r)
			}
			nr[k] = v
			bytes += v.ByteSize()
		}
	}
	return bytes
}

// compiler carries compile state: the schema for kind hints and the running
// scratch-arena size for Func/UDF argument hoisting.
type compiler struct {
	schema  data.Schema
	scratch int
}

func constFn(v data.Value) evalFn {
	return func(*Ctx, data.Row) data.Value { return v }
}

func constBool(b bool) boolFn {
	return func(*Ctx, data.Row) bool { return b }
}

// colOf reports the column index when e is a plain column reference — the
// operand shape every binary specialization fuses into a direct row load.
func colOf(e Expr) (int, bool) {
	if c, ok := e.(*Col); ok {
		return c.Index, true
	}
	return -1, false
}

// value compiles the value form of e. The second result is non-nil when
// the expression is a compile-time constant (folded), pointing at the
// constant value.
func (c *compiler) value(e Expr) (evalFn, *data.Value) {
	switch t := e.(type) {
	case *Col:
		idx := t.Index
		return func(_ *Ctx, row data.Row) data.Value { return row[idx] }, nil
	case *Const:
		v := t.V
		return constFn(v), &v
	case *Param:
		// A Param is bound per recurring instance: constant for the life of
		// this compiled program.
		v := t.V
		return constFn(v), &v
	case *Not:
		pf, pc := c.boolean(t.E)
		if pc != nil {
			v := data.Bool(!*pc)
			return constFn(v), &v
		}
		return func(ctx *Ctx, row data.Row) data.Value { return data.Bool(!pf(ctx, row)) }, nil
	case *Bin:
		return c.bin(t)
	case *Func:
		return c.fn(t)
	case *UDF:
		return c.udf(t)
	default:
		// Unknown Expr implementations fall back to the interpreter:
		// compilation is an optimization, never a semantics gate.
		return func(_ *Ctx, row data.Row) data.Value { return e.Eval(row) }, nil
	}
}

func (c *compiler) bin(b *Bin) (evalFn, *data.Value) {
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return c.arith(b)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr:
		pf, pc := c.boolean(b)
		if pc != nil {
			v := data.Bool(*pc)
			return constFn(v), &v
		}
		return func(ctx *Ctx, row data.Row) data.Value { return data.Bool(pf(ctx, row)) }, nil
	default:
		// Unknown operator: the interpreter evaluates both operands and
		// yields NULL. Keep the operand evaluation (it is where a malformed
		// row would surface) and the NULL.
		lf, _ := c.value(b.L)
		rf, _ := c.value(b.R)
		return func(ctx *Ctx, row data.Row) data.Value {
			lf(ctx, row)
			rf(ctx, row)
			return data.Null()
		}, nil
	}
}

// arithIntFast computes an arithmetic op over two values already guarded
// KindInt, matching evalArith's integer branch exactly (div/mod by zero
// yield NULL). The op switch predicts perfectly — op is a closure
// constant — which beats an indirect call to a per-op function.
func arithIntFast(op Op, l, r int64) data.Value {
	switch op {
	case OpAdd:
		return data.Int(l + r)
	case OpSub:
		return data.Int(l - r)
	case OpMul:
		return data.Int(l * r)
	case OpDiv:
		if r == 0 {
			return data.Null()
		}
		return data.Int(l / r)
	default: // OpMod
		if r == 0 {
			return data.Null()
		}
		return data.Int(l % r)
	}
}

// arithFloatFast computes an arithmetic op over two float operands already
// converted by the caller, matching evalArith's float branch exactly
// (div by zero and any float mod yield NULL).
func arithFloatFast(op Op, l, r float64) data.Value {
	switch op {
	case OpAdd:
		return data.Float(l + r)
	case OpSub:
		return data.Float(l - r)
	case OpMul:
		return data.Float(l * r)
	case OpDiv:
		if r == 0 {
			return data.Null()
		}
		return data.Float(l / r)
	default: // OpMod
		return data.Null()
	}
}

// arith compiles the five arithmetic operators. All paths bottom out in
// the interpreter's own evalArith — the specializations only fuse operand
// loads (column refs, constants) into the closure and lead with a guarded
// fast path matched to the kinds the schema promises (both-int, or the
// mixed int/float shapes that take evalArith's float branch).
func (c *compiler) arith(b *Bin) (evalFn, *data.Value) {
	op := b.Op
	lf, lc := c.value(b.L)
	rf, rc := c.value(b.R)
	if lc != nil && rc != nil {
		v := evalArith(op, *lc, *rc)
		return constFn(v), &v
	}
	lk, rk := b.L.ResultKind(c.schema), b.R.ResultKind(c.schema)
	intHint := lk == data.KindInt && rk == data.KindInt
	// numHint: both operands numeric with at least one float — the shape
	// that takes evalArith's float branch when the kinds hold at runtime.
	numeric := func(k data.Kind) bool { return k == data.KindInt || k == data.KindFloat }
	numHint := numeric(lk) && numeric(rk) && (lk == data.KindFloat || rk == data.KindFloat)
	li, lCol := colOf(b.L)
	ri, rCol := colOf(b.R)
	switch {
	case lCol && rCol && intHint:
		return func(_ *Ctx, row data.Row) data.Value {
			l, r := row[li], row[ri]
			if l.K == data.KindInt && r.K == data.KindInt {
				return arithIntFast(op, l.I, r.I)
			}
			return evalArith(op, l, r)
		}, nil
	case lCol && rCol && numHint:
		// The hinted kind pair is known exactly at compile time, so each
		// shape guards just its own pair and converts without AsFloat's
		// switch; any runtime surprise falls back to evalArith.
		switch {
		case lk == data.KindFloat && rk == data.KindFloat:
			return func(_ *Ctx, row data.Row) data.Value {
				l, r := row[li], row[ri]
				if l.K == data.KindFloat && r.K == data.KindFloat {
					return arithFloatFast(op, l.F, r.F)
				}
				return evalArith(op, l, r)
			}, nil
		case lk == data.KindInt:
			return func(_ *Ctx, row data.Row) data.Value {
				l, r := row[li], row[ri]
				if l.K == data.KindInt && r.K == data.KindFloat {
					return arithFloatFast(op, float64(l.I), r.F)
				}
				return evalArith(op, l, r)
			}, nil
		default: // lk float, rk int
			return func(_ *Ctx, row data.Row) data.Value {
				l, r := row[li], row[ri]
				if l.K == data.KindFloat && r.K == data.KindInt {
					return arithFloatFast(op, l.F, float64(r.I))
				}
				return evalArith(op, l, r)
			}, nil
		}
	case lCol && rCol:
		return func(_ *Ctx, row data.Row) data.Value {
			return evalArith(op, row[li], row[ri])
		}, nil
	case lCol && rc != nil && intHint && rc.K == data.KindInt:
		rv, rcv := rc.I, *rc
		return func(_ *Ctx, row data.Row) data.Value {
			l := row[li]
			if l.K == data.KindInt {
				return arithIntFast(op, l.I, rv)
			}
			return evalArith(op, l, rcv)
		}, nil
	case lCol && rc != nil:
		rcv := *rc
		return func(_ *Ctx, row data.Row) data.Value {
			return evalArith(op, row[li], rcv)
		}, nil
	case lCol:
		return func(ctx *Ctx, row data.Row) data.Value {
			return evalArith(op, row[li], rf(ctx, row))
		}, nil
	case rCol:
		return func(ctx *Ctx, row data.Row) data.Value {
			return evalArith(op, lf(ctx, row), row[ri])
		}, nil
	case lc != nil:
		lcv := *lc
		return func(ctx *Ctx, row data.Row) data.Value {
			return evalArith(op, lcv, rf(ctx, row))
		}, nil
	case rc != nil:
		rcv := *rc
		return func(ctx *Ctx, row data.Row) data.Value {
			return evalArith(op, lf(ctx, row), rcv)
		}, nil
	case intHint:
		return func(ctx *Ctx, row data.Row) data.Value {
			l, r := lf(ctx, row), rf(ctx, row)
			if l.K == data.KindInt && r.K == data.KindInt {
				return arithIntFast(op, l.I, r.I)
			}
			return evalArith(op, l, r)
		}, nil
	default:
		return func(ctx *Ctx, row data.Row) data.Value {
			return evalArith(op, lf(ctx, row), rf(ctx, row))
		}, nil
	}
}

// boolean compiles the predicate form of e: identical to
// e.Eval(row).Truth(), without materializing intermediate data.Bool values
// for comparisons and logic. The second result is non-nil when the truth
// value is a compile-time constant.
func (c *compiler) boolean(e Expr) (boolFn, *bool) {
	switch t := e.(type) {
	case *Const:
		k := t.V.Truth()
		return constBool(k), &k
	case *Param:
		k := t.V.Truth()
		return constBool(k), &k
	case *Not:
		pf, pc := c.boolean(t.E)
		if pc != nil {
			k := !*pc
			return constBool(k), &k
		}
		return func(ctx *Ctx, row data.Row) bool { return !pf(ctx, row) }, nil
	case *Bin:
		switch t.Op {
		case OpAnd:
			// The interpreter evaluates both sides eagerly; evaluation is
			// pure, so short-circuiting (and folding a constant side) cannot
			// change the observable result.
			lf, lc := c.boolean(t.L)
			rf, rc := c.boolean(t.R)
			if lc != nil {
				if !*lc {
					k := false
					return constBool(false), &k
				}
				return rf, rc
			}
			if rc != nil {
				if !*rc {
					k := false
					return constBool(false), &k
				}
				return lf, nil
			}
			return func(ctx *Ctx, row data.Row) bool { return lf(ctx, row) && rf(ctx, row) }, nil
		case OpOr:
			lf, lc := c.boolean(t.L)
			rf, rc := c.boolean(t.R)
			if lc != nil {
				if *lc {
					k := true
					return constBool(true), &k
				}
				return rf, rc
			}
			if rc != nil {
				if *rc {
					k := true
					return constBool(true), &k
				}
				return lf, nil
			}
			return func(ctx *Ctx, row data.Row) bool { return lf(ctx, row) || rf(ctx, row) }, nil
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return c.cmp(t)
		}
	}
	// Generic: any other expression's truth is Eval(row).Truth().
	vf, vc := c.value(e)
	if vc != nil {
		k := vc.Truth()
		return constBool(k), &k
	}
	return func(ctx *Ctx, row data.Row) bool { return vf(ctx, row).Truth() }, nil
}

// intLikeKind reports the kinds data.Compare orders by the integer payload
// whenever both sides are one of them (ints, dates, bools — the non-float
// numeric class shares rank 1 and compares on .I even across kinds).
func intLikeKind(k data.Kind) bool {
	return k == data.KindInt || k == data.KindDate || k == data.KindBool
}

// cmpIntFast compares two int-payload values (both already guarded
// int-like), matching data.Compare's integer branch exactly.
func cmpIntFast(op Op, l, r int64) bool {
	switch op {
	case OpEq:
		return l == r
	case OpNe:
		return l != r
	case OpLt:
		return l < r
	case OpLe:
		return l <= r
	case OpGt:
		return l > r
	default: // OpGe
		return l >= r
	}
}

// cmpFloatFast compares two float payloads (both already guarded
// KindFloat), phrased only in < and > so NaN behaves exactly like
// data.Compare, which reports NaN equal to everything.
func cmpFloatFast(op Op, l, r float64) bool {
	switch op {
	case OpEq:
		return !(l < r) && !(l > r)
	case OpNe:
		return l < r || l > r
	case OpLt:
		return l < r
	case OpLe:
		return !(l > r)
	case OpGt:
		return l > r
	default: // OpGe
		return !(l < r)
	}
}

// cmpGeneric evaluates a comparison with the interpreter's exact
// semantics: data.Equal / data.Compare.
func cmpGeneric(op Op, l, r data.Value) bool {
	switch op {
	case OpEq:
		return data.Equal(l, r)
	case OpNe:
		return !data.Equal(l, r)
	case OpLt:
		return data.Compare(l, r) < 0
	case OpLe:
		return data.Compare(l, r) <= 0
	case OpGt:
		return data.Compare(l, r) > 0
	default: // OpGe
		return data.Compare(l, r) >= 0
	}
}

// cmp compiles the six comparison operators to predicate closures. Like
// arith, every guard failure lands in cmpGeneric (data.Compare), so the
// int/float fast paths are speed-only. The right-constant variants cover
// the archetypal filter shape `col <op> literal` with a single fused
// closure: one row load, one guarded compare.
func (c *compiler) cmp(b *Bin) (boolFn, *bool) {
	op := b.Op
	lf, lc := c.value(b.L)
	rf, rc := c.value(b.R)
	if lc != nil && rc != nil {
		k := cmpGeneric(op, *lc, *rc)
		return constBool(k), &k
	}
	lk, rk := b.L.ResultKind(c.schema), b.R.ResultKind(c.schema)
	intHint := intLikeKind(lk) && intLikeKind(rk)
	floatHint := lk == data.KindFloat && rk == data.KindFloat
	li, lCol := colOf(b.L)
	ri, rCol := colOf(b.R)
	switch {
	case intHint && rc != nil && intLikeKind(rc.K):
		rv, rcv := rc.I, *rc
		if lCol {
			return func(_ *Ctx, row data.Row) bool {
				l := row[li]
				if intLikeKind(l.K) {
					return cmpIntFast(op, l.I, rv)
				}
				return cmpGeneric(op, l, rcv)
			}, nil
		}
		return func(ctx *Ctx, row data.Row) bool {
			l := lf(ctx, row)
			if intLikeKind(l.K) {
				return cmpIntFast(op, l.I, rv)
			}
			return cmpGeneric(op, l, rcv)
		}, nil
	case floatHint && rc != nil && rc.K == data.KindFloat:
		rv, rcv := rc.F, *rc
		if lCol {
			return func(_ *Ctx, row data.Row) bool {
				l := row[li]
				if l.K == data.KindFloat {
					return cmpFloatFast(op, l.F, rv)
				}
				return cmpGeneric(op, l, rcv)
			}, nil
		}
		return func(ctx *Ctx, row data.Row) bool {
			l := lf(ctx, row)
			if l.K == data.KindFloat {
				return cmpFloatFast(op, l.F, rv)
			}
			return cmpGeneric(op, l, rcv)
		}, nil
	case intHint && lCol && rCol:
		return func(_ *Ctx, row data.Row) bool {
			l, r := row[li], row[ri]
			if intLikeKind(l.K) && intLikeKind(r.K) {
				return cmpIntFast(op, l.I, r.I)
			}
			return cmpGeneric(op, l, r)
		}, nil
	case intHint:
		return func(ctx *Ctx, row data.Row) bool {
			l, r := lf(ctx, row), rf(ctx, row)
			if intLikeKind(l.K) && intLikeKind(r.K) {
				return cmpIntFast(op, l.I, r.I)
			}
			return cmpGeneric(op, l, r)
		}, nil
	case floatHint && lCol && rCol:
		return func(_ *Ctx, row data.Row) bool {
			l, r := row[li], row[ri]
			if l.K == data.KindFloat && r.K == data.KindFloat {
				return cmpFloatFast(op, l.F, r.F)
			}
			return cmpGeneric(op, l, r)
		}, nil
	case floatHint:
		return func(ctx *Ctx, row data.Row) bool {
			l, r := lf(ctx, row), rf(ctx, row)
			if l.K == data.KindFloat && r.K == data.KindFloat {
				return cmpFloatFast(op, l.F, r.F)
			}
			return cmpGeneric(op, l, r)
		}, nil
	case lCol && rCol:
		return func(_ *Ctx, row data.Row) bool {
			return cmpGeneric(op, row[li], row[ri])
		}, nil
	case lCol:
		return func(ctx *Ctx, row data.Row) bool {
			return cmpGeneric(op, row[li], rf(ctx, row))
		}, nil
	case rCol:
		return func(ctx *Ctx, row data.Row) bool {
			return cmpGeneric(op, lf(ctx, row), row[ri])
		}, nil
	case rc != nil:
		rcv := *rc
		return func(ctx *Ctx, row data.Row) bool {
			return cmpGeneric(op, lf(ctx, row), rcv)
		}, nil
	case lc != nil:
		lcv := *lc
		return func(ctx *Ctx, row data.Row) bool {
			return cmpGeneric(op, lcv, rf(ctx, row))
		}, nil
	default:
		return func(ctx *Ctx, row data.Row) bool {
			return cmpGeneric(op, lf(ctx, row), rf(ctx, row))
		}, nil
	}
}

// tryFold evaluates a pure built-in over constant arguments at compile
// time. A body that panics (arity abuse on a malformed tree) declines the
// fold so the panic surfaces at evaluation time, exactly where the
// interpreter would raise it.
func tryFold(fn builtinFn, args []data.Value) (v data.Value, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return fn(args), true
}

func (c *compiler) fn(f *Func) (evalFn, *data.Value) {
	n := len(f.Args)
	afs := make([]evalFn, n)
	consts := make([]data.Value, n)
	allConst := true
	for i, a := range f.Args {
		af, ac := c.value(a)
		afs[i] = af
		if ac != nil {
			consts[i] = *ac
		} else {
			allConst = false
		}
	}
	bf := builtins[f.Name]
	if bf == nil {
		// Unknown function: the interpreter evaluates the arguments and
		// yields NULL; keep the argument evaluation.
		if allConst {
			v := data.Null()
			return constFn(v), &v
		}
		return func(ctx *Ctx, row data.Row) data.Value {
			for _, af := range afs {
				af(ctx, row)
			}
			return data.Null()
		}, nil
	}
	if allConst {
		if v, ok := tryFold(bf, consts); ok {
			return constFn(v), &v
		}
	}
	if n == 0 {
		return func(*Ctx, data.Row) data.Value { return bf(nil) }, nil
	}
	off := c.scratch
	c.scratch += n
	return func(ctx *Ctx, row data.Row) data.Value {
		args := ctx.args[off : off+n]
		for i, af := range afs {
			args[i] = af(ctx, row)
		}
		return bf(args)
	}, nil
}

func (c *compiler) udf(u *UDF) (evalFn, *data.Value) {
	// UDFs are never folded: a user-supplied Fn is called once per row like
	// the interpreter does, in case it is not a pure function.
	n := len(u.Args)
	afs := make([]evalFn, n)
	for i, a := range u.Args {
		afs[i], _ = c.value(a)
	}
	fn := u.Fn
	if fn != nil {
		if n == 0 {
			return func(*Ctx, data.Row) data.Value { return fn(nil) }, nil
		}
		off := c.scratch
		c.scratch += n
		return func(ctx *Ctx, row data.Row) data.Value {
			args := ctx.args[off : off+n]
			for i, af := range afs {
				args[i] = af(ctx, row)
			}
			return fn(args)
		}, nil
	}
	codeHash := data.String_(u.CodeHash).Hash64()
	if n == 0 {
		// With no arguments the default body is a pure function of the code
		// hash, so the result really is a constant.
		v := data.Int(int64((data.Row(nil).Hash64() ^ codeHash) & 0x7fffffffffffffff))
		return constFn(v), &v
	}
	off := c.scratch
	c.scratch += n
	return func(ctx *Ctx, row data.Row) data.Value {
		args := ctx.args[off : off+n]
		for i, af := range afs {
			args[i] = af(ctx, row)
		}
		h := data.Row(args).Hash64() ^ codeHash
		return data.Int(int64(h & 0x7fffffffffffffff))
	}, nil
}
