package expr

import (
	"testing"

	"cloudviews/internal/data"
)

// benchPred is the canonical filter shape from the exec kernel benchmarks:
// a conjunctive range predicate mixing an int comparison with float
// arithmetic, over a 4-column row.
func benchPred() Expr {
	return And(
		B(OpGt, C(0, "a"), Lit(data.Int(1))),
		B(OpLt, B(OpMul, C(0, "a"), C(2, "f")), Lit(data.Float(1500.0))),
	)
}

// benchProj is a projection column with real scalar work: arithmetic plus
// a builtin call.
func benchProj() Expr {
	return F("if",
		B(OpGt, C(0, "a"), Lit(data.Int(5))),
		B(OpMul, C(2, "f"), Lit(data.Float(0.9))),
		C(2, "f"))
}

var benchRows = func() []data.Row {
	rows := make([]data.Row, 4096)
	for i := range rows {
		rows[i] = data.Row{
			data.Int(int64(i % 13)),
			data.String_("brand_x"),
			data.Float(float64(i%37) * 3.25),
			data.Date(int64(i % 365)),
		}
	}
	return rows
}()

// BenchmarkExprCompile measures the one-time per-vertex compilation cost —
// the price paid once per operator, amortized over every row it touches.
func BenchmarkExprCompile(b *testing.B) {
	e := benchPred()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := Compile(e, testSchema)
		if c.pred == nil {
			b.Fatal("no predicate form")
		}
	}
}

// BenchmarkExprEval compares the tree-walking interpreter against the
// compiled closure on the same predicate, per row.
func BenchmarkExprEval(b *testing.B) {
	e := benchPred()
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			if e.Eval(benchRows[i%len(benchRows)]).Truth() {
				n++
			}
		}
		sinkInt = n
	})
	b.Run("compiled", func(b *testing.B) {
		c := Compile(e, testSchema)
		ctx := c.NewCtx()
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			if c.Truth(ctx, benchRows[i%len(benchRows)]) {
				n++
			}
		}
		sinkInt = n
	})
}

// BenchmarkExprProject compares interpreted vs compiled projection of a
// builtin-bearing expression, per row.
func BenchmarkExprProject(b *testing.B) {
	e := benchProj()
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		var acc int64
		for i := 0; i < b.N; i++ {
			acc += e.Eval(benchRows[i%len(benchRows)]).I
		}
		sinkInt = int(acc)
	})
	b.Run("compiled", func(b *testing.B) {
		c := Compile(e, testSchema)
		ctx := c.NewCtx()
		b.ReportAllocs()
		var acc int64
		for i := 0; i < b.N; i++ {
			acc += c.Eval(ctx, benchRows[i%len(benchRows)]).I
		}
		sinkInt = int(acc)
	})
}

// BenchmarkExprSelectInto measures the batch predicate entry point used by
// the filter kernel: one call per partition, selection buffer reused.
func BenchmarkExprSelectInto(b *testing.B) {
	c := Compile(benchPred(), testSchema)
	ctx := c.NewCtx()
	sel := make([]int32, 0, len(benchRows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = c.SelectInto(ctx, benchRows, sel[:0])
	}
	sinkInt = len(sel)
}

var sinkInt int
