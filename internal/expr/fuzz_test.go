package expr

import (
	"math"
	"testing"

	"cloudviews/internal/data"
)

// FuzzCompiledEval decodes the fuzz input into a random expression tree
// plus a random row (wrong-kind and NULL values included, so the compiled
// kind-guard fallbacks are exercised), then requires the compiled program
// to be bit-identical to the interpreter in both the value and predicate
// forms, under both the hinted schema and no schema. The decoder only ever
// builds trees the interpreter itself evaluates without panicking —
// in-range column indexes, correct builtin arities — because the contract
// under test is equivalence on well-formed inputs.
//
// scripts/check.sh runs this for a few seconds alongside
// FuzzColencRoundTrip; `go test -fuzz=FuzzCompiledEval ./internal/expr/`
// runs it open-ended.
func FuzzCompiledEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	// A conjunctive filter shape: (col > lit) and (col*col < lit).
	f.Add([]byte{0xc1, 0x07, 0x00, 0x10, 0xc2, 0x02, 0x11, 0x22, 0x33, 0x44})
	// Function calls and UDFs over string/float columns.
	f.Add([]byte{0xe0, 0x41, 0x01, 0xe5, 0x99, 0x17, 0xaa, 0x05, 0x3c})
	// Deep arithmetic with nulls and division.
	f.Add([]byte{0x83, 0x83, 0x83, 0x03, 0x00, 0xff, 0x7f, 0x80, 0x00, 0x00, 0x9d, 0x42})
	f.Fuzz(func(t *testing.T, in []byte) {
		g := &fuzzGen{b: in}
		e := g.expr(4)
		rows := []data.Row{g.row(), g.row()}
		c := Compile(e, sweepSchema)
		cn := Compile(e, nil)
		ctx, ctxn := c.NewCtx(), cn.NewCtx()
		for i, row := range rows {
			want := e.Eval(row)
			if got := c.Eval(ctx, row); !valueIdentical(got, want) {
				t.Fatalf("row %d: compiled %s = %#v, interpreter %#v", i, e, got, want)
			}
			if got := cn.Eval(ctxn, row); !valueIdentical(got, want) {
				t.Fatalf("row %d: nil-schema compiled %s = %#v, interpreter %#v", i, e, got, want)
			}
			if got := c.Truth(ctx, row); got != want.Truth() {
				t.Fatalf("row %d: compiled pred %s = %v, interpreter Truth %v", i, e, got, want.Truth())
			}
		}
	})
}

// fuzzGen deterministically decodes an expression tree and row values from
// a byte stream; an exhausted stream reads as zeros, so every input is
// valid and small inputs produce small trees.
type fuzzGen struct {
	b []byte
	i int
}

func (g *fuzzGen) byte_() byte {
	if g.i >= len(g.b) {
		return 0
	}
	v := g.b[g.i]
	g.i++
	return v
}

func (g *fuzzGen) value() data.Value {
	switch g.byte_() % 10 {
	case 0:
		return data.Null()
	case 1, 2:
		return data.Int(int64(int8(g.byte_())))
	case 3, 4:
		return data.Float(float64(int8(g.byte_())) / 4)
	case 5:
		switch g.byte_() % 4 {
		case 0:
			return data.Float(math.NaN())
		case 1:
			return data.Float(math.Inf(-1))
		case 2:
			return data.Float(0)
		default:
			return data.Float(-0.0)
		}
	case 6:
		s := [...]string{"", "a", "Hello", "brand_x", "零"}
		return data.String_(s[int(g.byte_())%len(s)])
	case 7:
		return data.Bool(g.byte_()%2 == 0)
	case 8:
		return data.Date(int64(g.byte_()) * 97)
	default:
		return data.Int(0)
	}
}

func (g *fuzzGen) row() data.Row {
	row := make(data.Row, len(sweepSchema))
	for i := range row {
		row[i] = g.value()
	}
	return row
}

func (g *fuzzGen) col() *Col {
	return C(int(g.byte_())%len(sweepSchema), "")
}

func (g *fuzzGen) expr(depth int) Expr {
	op := g.byte_()
	if depth <= 0 || op < 0x40 {
		switch op % 3 {
		case 0:
			return g.col()
		case 1:
			return Lit(g.value())
		default:
			return P("p", g.value())
		}
	}
	switch op % 8 {
	case 0, 1, 2:
		// All real binary operators plus one out-of-range op (the
		// interpreter's default: evaluate operands, yield NULL).
		ops := [...]Op{
			OpAdd, OpSub, OpMul, OpDiv, OpMod,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
			OpAnd, OpOr, Op(77),
		}
		o := ops[int(g.byte_())%len(ops)]
		return B(o, g.expr(depth-1), g.expr(depth-1))
	case 3:
		return &Not{g.expr(depth - 1)}
	case 4:
		switch g.byte_() % 7 {
		case 0:
			return F("upper", g.expr(depth-1))
		case 1:
			return F("lower", g.expr(depth-1))
		case 2:
			return F("len", g.expr(depth-1))
		case 3:
			return F("abs", g.expr(depth-1))
		case 4:
			return F("hash", g.expr(depth-1))
		case 5:
			return F("year", g.expr(depth-1))
		default:
			return F("nosuchfn", g.expr(depth-1))
		}
	case 5:
		return F("substr", g.expr(depth-1),
			Lit(data.Int(int64(int8(g.byte_())))), Lit(data.Int(int64(int8(g.byte_())))))
	case 6:
		switch g.byte_() % 3 {
		case 0:
			return F("if", g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
		case 1:
			return F("concat", g.expr(depth-1), g.expr(depth-1))
		default:
			return F("month", g.expr(depth-1))
		}
	default:
		u := &UDF{Name: "u", CodeHash: string('a' + rune(g.byte_()%3)), Args: []Expr{g.expr(depth - 1)}}
		if g.byte_()%2 == 0 {
			u.Fn = sweepUDFBody
		}
		return u
	}
}
