package expr

import (
	"math"
	"testing"

	"cloudviews/internal/data"
)

// TestInterpreterScalarSemantics pins the interpreter's edge-case scalar
// semantics with a table the compiler is required to reproduce: every case
// is evaluated through Expr.Eval AND through the compiled program (value
// form and predicate form), so a compiler that drifts from the interpreter
// on any of these fails here by name rather than deep inside a golden
// sweep. The rules pinned:
//
//   - float OpMod → NULL (mod is integer-only)
//   - int and float division by zero → NULL (and int mod by zero → NULL)
//   - NULL on either side of any arithmetic op → NULL (null propagation
//     happens before kind dispatch in evalArith)
//   - Truth() of NULL is false, and Not/And/Or treat non-bool operands
//     (including NULL) as false rather than erroring
func TestInterpreterScalarSemantics(t *testing.T) {
	null := Lit(data.Null())
	cases := []struct {
		name string
		e    Expr
		want data.Value
	}{
		// Float mod is undefined: NULL regardless of operand values, even
		// when only one side is float.
		{"float mod -> null", B(OpMod, Lit(data.Float(7.5)), Lit(data.Float(2))), data.Null()},
		{"mixed mod -> null", B(OpMod, Lit(data.Int(7)), Lit(data.Float(2))), data.Null()},
		{"float mod by zero -> null", B(OpMod, Lit(data.Float(7)), Lit(data.Float(0))), data.Null()},

		// Division by zero: NULL on both the int and float branches; int
		// mod by zero likewise (no panic, no Inf).
		{"int div by zero", B(OpDiv, Lit(data.Int(7)), Lit(data.Int(0))), data.Null()},
		{"float div by zero", B(OpDiv, Lit(data.Float(7)), Lit(data.Float(0))), data.Null()},
		{"mixed div by float zero", B(OpDiv, Lit(data.Int(7)), Lit(data.Float(0))), data.Null()},
		{"int mod by zero", B(OpMod, Lit(data.Int(7)), Lit(data.Int(0))), data.Null()},
		{"div by nonzero sanity", B(OpDiv, Lit(data.Int(7)), Lit(data.Int(2))), data.Int(3)},

		// Null propagation through evalArith: checked before the float/int
		// kind split, so NULL + anything is NULL on every operator.
		{"null + int", B(OpAdd, null, Lit(data.Int(1))), data.Null()},
		{"int - null", B(OpSub, Lit(data.Int(1)), null), data.Null()},
		{"null * float", B(OpMul, null, Lit(data.Float(2))), data.Null()},
		{"null / null", B(OpDiv, null, null), data.Null()},
		{"null % int", B(OpMod, null, Lit(data.Int(2))), data.Null()},
		// Null wins over div-by-zero: the null check runs first.
		{"null / zero", B(OpDiv, null, Lit(data.Int(0))), data.Null()},

		// Truth() of NULL (and of non-bool values) is false; Not/And/Or
		// build on Truth, so NULL behaves as false, and Not(NULL) is true.
		{"not null -> true", &Not{null}, data.Bool(true)},
		{"null and true -> false", And(null, Lit(data.Bool(true))), data.Bool(false)},
		{"true and null -> false", And(Lit(data.Bool(true)), null), data.Bool(false)},
		{"null or true -> true", B(OpOr, null, Lit(data.Bool(true))), data.Bool(true)},
		{"null or false -> false", B(OpOr, null, Lit(data.Bool(false))), data.Bool(false)},
		// Non-bool truthiness: ints and strings are NOT truthy — Truth
		// requires KindBool — so 1 AND 1 is false.
		{"int and int -> false", And(Lit(data.Int(1)), Lit(data.Int(1))), data.Bool(false)},
		{"not int -> true", &Not{Lit(data.Int(1))}, data.Bool(true)},

		// Comparison NULL semantics inherited from data.Compare: NULL ranks
		// below everything and equals itself.
		{"null = null", Eq(null, null), data.Bool(true)},
		{"null < int", B(OpLt, null, Lit(data.Int(-5))), data.Bool(true)},
		{"null = int", Eq(null, Lit(data.Int(0))), data.Bool(false)},

		// Mixed int/float arithmetic promotes to float.
		{"int + float", B(OpAdd, Lit(data.Int(1)), Lit(data.Float(0.5))), data.Float(1.5)},

		// NaN compares equal to everything under data.Compare's </> rules.
		{"nan = float", Eq(Lit(data.Float(math.NaN())), Lit(data.Float(1))), data.Bool(true)},
		{"nan < float", B(OpLt, Lit(data.Float(math.NaN())), Lit(data.Float(1))), data.Bool(false)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interp := tc.e.Eval(testRow)
			if !valueIdentical(interp, tc.want) {
				t.Fatalf("interpreter: %s = %v, want %v", tc.e, interp, tc.want)
			}
			c := Compile(tc.e, testSchema)
			if got := c.Eval(c.NewCtx(), testRow); !valueIdentical(got, interp) {
				t.Errorf("compiled: %s = %v, interpreter says %v", tc.e, got, interp)
			}
			if got := c.Truth(c.NewCtx(), testRow); got != interp.Truth() {
				t.Errorf("compiled pred: %s = %v, interpreter Truth says %v", tc.e, got, interp.Truth())
			}
			// And with a nil schema: hints disappear, results must not.
			cn := Compile(tc.e, nil)
			if got := cn.Eval(cn.NewCtx(), testRow); !valueIdentical(got, interp) {
				t.Errorf("compiled (nil schema): %s = %v, interpreter says %v", tc.e, got, interp)
			}
		})
	}
}

// valueIdentical is the byte-level equality the compiled path is held to:
// same kind, same integer payload, same float bits (so Int(3) != Float(3),
// unlike data.Equal, and NaN payloads must match exactly), same string.
func valueIdentical(a, b data.Value) bool {
	return a.K == b.K && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}
