package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudviews/internal/data"
)

var testSchema = data.Schema{
	{Name: "a", Kind: data.KindInt},
	{Name: "s", Kind: data.KindString},
	{Name: "f", Kind: data.KindFloat},
	{Name: "d", Kind: data.KindDate},
}

var testRow = data.Row{data.Int(10), data.String_("Hello"), data.Float(2.5), data.Date(365)}

func TestColAndConst(t *testing.T) {
	if got := C(0, "a").Eval(testRow); got.AsInt() != 10 {
		t.Errorf("col eval = %v", got)
	}
	if got := Lit(data.Int(7)).Eval(testRow); got.AsInt() != 7 {
		t.Errorf("const eval = %v", got)
	}
	if C(1, "s").ResultKind(testSchema) != data.KindString {
		t.Error("col kind wrong")
	}
	if Lit(data.Float(1)).ResultKind(testSchema) != data.KindFloat {
		t.Error("const kind wrong")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want data.Value
	}{
		{B(OpAdd, Lit(data.Int(2)), Lit(data.Int(3))), data.Int(5)},
		{B(OpSub, Lit(data.Int(2)), Lit(data.Int(3))), data.Int(-1)},
		{B(OpMul, Lit(data.Int(4)), Lit(data.Float(0.5))), data.Float(2)},
		{B(OpDiv, Lit(data.Int(7)), Lit(data.Int(2))), data.Int(3)},
		{B(OpDiv, Lit(data.Int(7)), Lit(data.Int(0))), data.Null()},
		{B(OpDiv, Lit(data.Float(1)), Lit(data.Float(0))), data.Null()},
		{B(OpMod, Lit(data.Int(7)), Lit(data.Int(4))), data.Int(3)},
		{B(OpMod, Lit(data.Int(7)), Lit(data.Int(0))), data.Null()},
		{B(OpAdd, Lit(data.Null()), Lit(data.Int(1))), data.Null()},
	}
	for _, c := range cases {
		if got := c.e.Eval(testRow); !data.Equal(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(C(0, "a"), Lit(data.Int(10))), true},
		{B(OpNe, C(0, "a"), Lit(data.Int(10))), false},
		{B(OpLt, Lit(data.Int(1)), Lit(data.Int(2))), true},
		{B(OpLe, Lit(data.Int(2)), Lit(data.Int(2))), true},
		{B(OpGt, Lit(data.Float(2.5)), Lit(data.Int(2))), true},
		{B(OpGe, Lit(data.Int(1)), Lit(data.Int(2))), false},
		{And(Lit(data.Bool(true)), Lit(data.Bool(true))), true},
		{And(Lit(data.Bool(true)), Lit(data.Bool(false))), false},
		{B(OpOr, Lit(data.Bool(false)), Lit(data.Bool(true))), true},
		{(&Not{Lit(data.Bool(false))}), true},
	}
	for _, c := range cases {
		if got := c.e.Eval(testRow).Truth(); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestFunctions(t *testing.T) {
	cases := []struct {
		e    Expr
		want data.Value
	}{
		{F("upper", C(1, "s")), data.String_("HELLO")},
		{F("lower", C(1, "s")), data.String_("hello")},
		{F("len", C(1, "s")), data.Int(5)},
		{F("substr", C(1, "s"), Lit(data.Int(1)), Lit(data.Int(3))), data.String_("ell")},
		{F("substr", C(1, "s"), Lit(data.Int(3)), Lit(data.Int(99))), data.String_("lo")},
		{F("substr", C(1, "s"), Lit(data.Int(-1)), Lit(data.Int(2))), data.String_("")},
		{F("concat", C(1, "s"), Lit(data.String_("!"))), data.String_("Hello!")},
		{F("abs", Lit(data.Int(-5))), data.Int(5)},
		{F("abs", Lit(data.Float(-2.5))), data.Float(2.5)},
		{F("year", C(3, "d")), data.Int(1971)},
		{F("if", Lit(data.Bool(true)), Lit(data.Int(1)), Lit(data.Int(2))), data.Int(1)},
		{F("if", Lit(data.Bool(false)), Lit(data.Int(1)), Lit(data.Int(2))), data.Int(2)},
		{F("nosuchfn"), data.Null()},
	}
	for _, c := range cases {
		got := c.e.Eval(testRow)
		if !(got.IsNull() && c.want.IsNull()) && !data.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestParamEncodingModes(t *testing.T) {
	p1 := P("startDate", data.Date(17000))
	p2 := P("startDate", data.Date(17001))
	if EncodeString(p1, Normalized) != EncodeString(p2, Normalized) {
		t.Error("normalized encodings of same param name should match")
	}
	if EncodeString(p1, Precise) == EncodeString(p2, Precise) {
		t.Error("precise encodings with different values should differ")
	}
	p3 := P("endDate", data.Date(17000))
	if EncodeString(p1, Normalized) == EncodeString(p3, Normalized) {
		t.Error("different param names should differ even normalized")
	}
}

func TestUDFEncodingAndEval(t *testing.T) {
	u1 := &UDF{Name: "clean", CodeHash: "v1", Args: []Expr{C(0, "a")}}
	u2 := &UDF{Name: "clean", CodeHash: "v2", Args: []Expr{C(0, "a")}}
	if EncodeString(u1, Normalized) != EncodeString(u2, Normalized) {
		t.Error("normalized UDF encoding should ignore code hash")
	}
	if EncodeString(u1, Precise) == EncodeString(u2, Precise) {
		t.Error("precise UDF encoding must include code hash")
	}
	// Default body: deterministic, code-hash sensitive.
	r1 := u1.Eval(testRow)
	r1b := u1.Eval(testRow)
	r2 := u2.Eval(testRow)
	if !data.Equal(r1, r1b) {
		t.Error("UDF default body not deterministic")
	}
	if data.Equal(r1, r2) {
		t.Error("different code hashes should change default UDF output")
	}
	// Custom body wins.
	u3 := &UDF{Name: "c", CodeHash: "h", Fn: func(_ []data.Value) data.Value { return data.Int(99) }}
	if u3.Eval(testRow).AsInt() != 99 {
		t.Error("custom UDF body not used")
	}
}

func TestEncodeDistinguishesStructure(t *testing.T) {
	pairs := [][2]Expr{
		{B(OpAdd, C(0, ""), C(1, "")), B(OpAdd, C(1, ""), C(0, ""))},
		{B(OpAdd, C(0, ""), C(1, "")), B(OpSub, C(0, ""), C(1, ""))},
		{Lit(data.Int(1)), Lit(data.Int(2))},
		{Lit(data.Int(1)), Lit(data.Float(1))},
		{F("upper", C(0, "")), F("lower", C(0, ""))},
		{C(0, "x"), C(1, "x")},
	}
	for _, p := range pairs {
		if EncodeString(p[0], Precise) == EncodeString(p[1], Precise) {
			t.Errorf("distinct expressions encode identically: %s vs %s", p[0], p[1])
		}
	}
	// Column names must NOT affect encodings.
	if EncodeString(C(2, "x"), Precise) != EncodeString(C(2, "y"), Precise) {
		t.Error("column name leaked into encoding")
	}
}

func TestResultKinds(t *testing.T) {
	cases := []struct {
		e    Expr
		want data.Kind
	}{
		{B(OpAdd, C(0, "a"), C(0, "a")), data.KindInt},
		{B(OpAdd, C(0, "a"), C(2, "f")), data.KindFloat},
		{Eq(C(0, "a"), C(0, "a")), data.KindBool},
		{F("upper", C(1, "s")), data.KindString},
		{F("len", C(1, "s")), data.KindInt},
		{F("abs", C(2, "f")), data.KindFloat},
		{&Not{Lit(data.Bool(true))}, data.KindBool},
		{P("d", data.Date(1)), data.KindDate},
		{&UDF{Name: "u"}, data.KindInt},
	}
	for _, c := range cases {
		if got := c.e.ResultKind(testSchema); got != c.want {
			t.Errorf("%s kind = %v, want %v", c.e, got, c.want)
		}
	}
}

// randomExpr builds a random expression of bounded depth over testSchema's
// integer column, for property testing determinism of Eval and Encode.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return C(0, "a")
		case 1:
			return Lit(data.Int(r.Int63n(100)))
		default:
			return P("p", data.Int(r.Int63n(100)))
		}
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpEq, OpLt}
	return B(ops[r.Intn(len(ops))], randomExpr(r, depth-1), randomExpr(r, depth-1))
}

func TestEvalDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		row := data.Row{data.Int(r.Int63n(1000))}
		a, b := e.Eval(row), e.Eval(row)
		if !data.Equal(a, b) && !(a.IsNull() && b.IsNull()) {
			return false
		}
		// Encoding is stable across calls and modes are self-consistent.
		return EncodeString(e, Precise) == EncodeString(e, Precise) &&
			EncodeString(e, Normalized) == EncodeString(e, Normalized)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	e := And(Eq(C(0, "a"), P("lo", data.Int(5))), B(OpLt, C(2, "f"), Lit(data.Float(9))))
	if e.String() == "" {
		t.Error("empty render")
	}
	if got := B(OpAdd, C(0, "a"), Lit(data.Int(1))).String(); got != "(a + 1)" {
		t.Errorf("render = %q", got)
	}
}

func TestMoreFunctionsAndRenderings(t *testing.T) {
	// Date helper functions.
	if got := F("month", Lit(data.Date(65))).Eval(testRow); got.AsInt() != 3 {
		t.Errorf("month = %v", got)
	}
	if got := F("dayofweek", Lit(data.Date(0))).Eval(testRow); got.AsInt() != 4 { // 1970-01-01 was Thursday
		t.Errorf("dayofweek = %v", got)
	}
	// hash is deterministic and non-negative.
	h1 := F("hash", Lit(data.String_("x"))).Eval(testRow)
	h2 := F("hash", Lit(data.String_("x"))).Eval(testRow)
	if !data.Equal(h1, h2) || h1.AsInt() < 0 {
		t.Errorf("hash = %v/%v", h1, h2)
	}
	// Not rendering and encode.
	n := &Not{Lit(data.Bool(true))}
	if n.String() != "not true" {
		t.Errorf("Not render = %q", n.String())
	}
	if EncodeString(n, Precise) != "(not (const bool true))" {
		t.Errorf("Not encode = %q", EncodeString(n, Precise))
	}
	// Bad-arity `if` has null kind; abs with no args defaults.
	if (&Func{Name: "if"}).ResultKind(testSchema) != data.KindNull {
		t.Error("bad-arity if kind")
	}
	if (&Func{Name: "abs"}).ResultKind(testSchema) != data.KindInt {
		t.Error("argless abs kind")
	}
	// Renderings for Func, UDF, Param, unnamed Col.
	if got := F("len", C(1, "s")).String(); got != "len(s)" {
		t.Errorf("func render = %q", got)
	}
	u := &UDF{Name: "clean", CodeHash: "h", Args: []Expr{C(0, "a")}}
	if u.String() != "udf:clean(a)" {
		t.Errorf("udf render = %q", u.String())
	}
	if P("x", data.Int(3)).String() != "@x=3" {
		t.Errorf("param render = %q", P("x", data.Int(3)).String())
	}
	if C(4, "").String() != "$4" {
		t.Errorf("anon col render = %q", C(4, "").String())
	}
	if C(99, "oob").ResultKind(testSchema) != data.KindNull {
		t.Error("out-of-range col kind")
	}
	// Op fallback strings.
	if Op(99).String() == "" || data.Kind(99).String() == "" {
		t.Error("fallback strings empty")
	}
}

func TestArithmeticFloatPaths(t *testing.T) {
	// Float mod is undefined -> NULL; float sub/arith paths.
	if got := B(OpMod, Lit(data.Float(7)), Lit(data.Float(2))).Eval(testRow); !got.IsNull() {
		t.Errorf("float mod = %v", got)
	}
	if got := B(OpSub, Lit(data.Float(5)), Lit(data.Int(2))).Eval(testRow); got.AsFloat() != 3 {
		t.Errorf("float sub = %v", got)
	}
	if got := B(OpDiv, Lit(data.Float(5)), Lit(data.Int(2))).Eval(testRow); got.AsFloat() != 2.5 {
		t.Errorf("float div = %v", got)
	}
	// Unknown binary op evaluates to NULL and renders via fallback.
	weird := B(Op(99), Lit(data.Int(1)), Lit(data.Int(1)))
	if got := weird.Eval(testRow); !got.IsNull() {
		t.Errorf("unknown op = %v", got)
	}
}
