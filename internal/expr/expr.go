// Package expr implements the scalar expression trees that appear inside
// plan operators: column references, constants, recurring parameters,
// arithmetic and boolean operators, built-in functions, and scalar UDFs.
//
// Expressions carry two canonical encodings used by the signature layer:
// a precise encoding that includes recurring parameter values and UDF code
// hashes, and a normalized encoding that strips recurring deltas so the same
// script template hashes identically across recurring instances (paper §3).
package expr

import (
	"fmt"
	"strconv"
	"strings"

	"cloudviews/internal/data"
)

// Mode selects which canonical encoding Encode emits.
type Mode int

// Encoding modes.
const (
	// Precise encodes every run-specific detail: parameter values and UDF
	// code hashes. Two subgraphs with equal precise encodings compute the
	// same result on the same inputs.
	Precise Mode = iota
	// Normalized strips recurring deltas (parameter values) so recurring
	// instances of the same script template encode identically.
	Normalized
)

// Expr is a scalar expression over a row.
type Expr interface {
	// Eval evaluates the expression against a row.
	Eval(row data.Row) data.Value
	// AppendTo appends the canonical encoding in the given mode to dst and
	// returns the extended slice, fmt-free so the signature hot path does
	// not allocate per node.
	AppendTo(dst []byte, mode Mode) []byte
	// ResultKind infers the static result kind given the input schema.
	ResultKind(schema data.Schema) data.Kind
	// String renders the expression for debugging and plan display.
	String() string
}

// Col references an input column by position. Name is carried for display
// only; the encoding uses the index so column renames don't break matching.
type Col struct {
	Index int
	Name  string
}

// C is shorthand for a column reference.
func C(index int, name string) *Col { return &Col{Index: index, Name: name} }

// Eval implements Expr.
func (c *Col) Eval(row data.Row) data.Value { return row[c.Index] }

// AppendTo implements Expr.
func (c *Col) AppendTo(dst []byte, _ Mode) []byte {
	dst = append(dst, "(col "...)
	dst = strconv.AppendInt(dst, int64(c.Index), 10)
	return append(dst, ')')
}

// ResultKind implements Expr.
func (c *Col) ResultKind(schema data.Schema) data.Kind {
	if c.Index >= 0 && c.Index < len(schema) {
		return schema[c.Index].Kind
	}
	return data.KindNull
}

// String implements Expr.
func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Index)
}

// Const is a literal constant. Constants are part of the script template,
// so they appear in both precise and normalized encodings.
type Const struct {
	V data.Value
}

// Lit is shorthand for a constant.
func Lit(v data.Value) *Const { return &Const{V: v} }

// Eval implements Expr.
func (c *Const) Eval(_ data.Row) data.Value { return c.V }

// AppendTo implements Expr.
func (c *Const) AppendTo(dst []byte, _ Mode) []byte {
	dst = append(dst, "(const "...)
	dst = append(dst, c.V.K.String()...)
	dst = append(dst, ' ')
	dst = c.V.AppendString(dst)
	return append(dst, ')')
}

// ResultKind implements Expr.
func (c *Const) ResultKind(_ data.Schema) data.Kind { return c.V.K }

// String implements Expr.
func (c *Const) String() string { return c.V.String() }

// Param is a recurring parameter: a value bound per recurring instance
// (dates, run ids, cut-off timestamps). The normalized encoding keeps only
// the parameter name; the precise encoding includes the bound value. This
// is the heart of the normalized-vs-precise signature split of paper §3.
type Param struct {
	Name string
	V    data.Value
}

// P is shorthand for a bound recurring parameter.
func P(name string, v data.Value) *Param { return &Param{Name: name, V: v} }

// Eval implements Expr.
func (p *Param) Eval(_ data.Row) data.Value { return p.V }

// AppendTo implements Expr.
func (p *Param) AppendTo(dst []byte, mode Mode) []byte {
	dst = append(dst, "(param @"...)
	dst = append(dst, p.Name...)
	if mode == Normalized {
		return append(dst, ')')
	}
	dst = append(dst, ' ')
	dst = append(dst, p.V.K.String()...)
	dst = append(dst, ' ')
	dst = p.V.AppendString(dst)
	return append(dst, ')')
}

// ResultKind implements Expr.
func (p *Param) ResultKind(_ data.Schema) data.Kind { return p.V.K }

// String implements Expr.
func (p *Param) String() string { return "@" + p.Name + "=" + p.V.String() }

// Op enumerates binary operators.
type Op int

// Binary operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = [...]string{"+", "-", "*", "/", "%", "=", "!=", "<", "<=", ">", ">=", "and", "or"}

// String returns the operator symbol.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
}

// B is shorthand for a binary operation.
func B(op Op, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) *Bin { return B(OpEq, l, r) }

// And builds l AND r.
func And(l, r Expr) *Bin { return B(OpAnd, l, r) }

// Eval implements Expr.
func (b *Bin) Eval(row data.Row) data.Value {
	l := b.L.Eval(row)
	r := b.R.Eval(row)
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(b.Op, l, r)
	case OpEq:
		return data.Bool(data.Equal(l, r))
	case OpNe:
		return data.Bool(!data.Equal(l, r))
	case OpLt:
		return data.Bool(data.Compare(l, r) < 0)
	case OpLe:
		return data.Bool(data.Compare(l, r) <= 0)
	case OpGt:
		return data.Bool(data.Compare(l, r) > 0)
	case OpGe:
		return data.Bool(data.Compare(l, r) >= 0)
	case OpAnd:
		return data.Bool(l.Truth() && r.Truth())
	case OpOr:
		return data.Bool(l.Truth() || r.Truth())
	default:
		return data.Null()
	}
}

func evalArith(op Op, l, r data.Value) data.Value {
	if l.IsNull() || r.IsNull() {
		return data.Null()
	}
	if l.K == data.KindFloat || r.K == data.KindFloat {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case OpAdd:
			return data.Float(lf + rf)
		case OpSub:
			return data.Float(lf - rf)
		case OpMul:
			return data.Float(lf * rf)
		case OpDiv:
			if rf == 0 {
				return data.Null()
			}
			return data.Float(lf / rf)
		case OpMod:
			return data.Null()
		}
	}
	li, ri := l.AsInt(), r.AsInt()
	switch op {
	case OpAdd:
		return data.Int(li + ri)
	case OpSub:
		return data.Int(li - ri)
	case OpMul:
		return data.Int(li * ri)
	case OpDiv:
		if ri == 0 {
			return data.Null()
		}
		return data.Int(li / ri)
	case OpMod:
		if ri == 0 {
			return data.Null()
		}
		return data.Int(li % ri)
	}
	return data.Null()
}

// AppendTo implements Expr.
func (b *Bin) AppendTo(dst []byte, mode Mode) []byte {
	dst = append(dst, '(')
	dst = append(dst, b.Op.String()...)
	dst = append(dst, ' ')
	dst = b.L.AppendTo(dst, mode)
	dst = append(dst, ' ')
	dst = b.R.AppendTo(dst, mode)
	return append(dst, ')')
}

// ResultKind implements Expr.
func (b *Bin) ResultKind(schema data.Schema) data.Kind {
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if b.L.ResultKind(schema) == data.KindFloat || b.R.ResultKind(schema) == data.KindFloat {
			return data.KindFloat
		}
		return data.KindInt
	default:
		return data.KindBool
	}
}

// String implements Expr.
func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// Eval implements Expr.
func (n *Not) Eval(row data.Row) data.Value { return data.Bool(!n.E.Eval(row).Truth()) }

// AppendTo implements Expr.
func (n *Not) AppendTo(dst []byte, mode Mode) []byte {
	dst = append(dst, "(not "...)
	dst = n.E.AppendTo(dst, mode)
	return append(dst, ')')
}

// ResultKind implements Expr.
func (n *Not) ResultKind(_ data.Schema) data.Kind { return data.KindBool }

// String implements Expr.
func (n *Not) String() string { return "not " + n.E.String() }

// Func is a built-in scalar function call.
type Func struct {
	Name string
	Args []Expr
}

// F is shorthand for a function call.
func F(name string, args ...Expr) *Func { return &Func{Name: name, Args: args} }

// Eval implements Expr.
func (f *Func) Eval(row data.Row) data.Value {
	args := make([]data.Value, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Eval(row)
	}
	return evalFunc(f.Name, args)
}

// builtinFn is the body of one scalar built-in. Bodies are pure functions
// of their arguments — the compiler relies on that to fold constant calls
// and to resolve the name→body lookup once per vertex instead of per row.
type builtinFn func(args []data.Value) data.Value

// builtins maps function names to bodies. The map is populated once at init
// and never written afterwards, so the interpreter and compiled programs on
// concurrent partition workers read it without synchronization.
var builtins = map[string]builtinFn{
	"upper":     builtinUpper,
	"lower":     builtinLower,
	"len":       builtinLen,
	"concat":    builtinConcat,
	"substr":    builtinSubstr,
	"abs":       builtinAbs,
	"year":      builtinYear,
	"month":     builtinMonth,
	"dayofweek": builtinDayOfWeek,
	"hash":      builtinHash,
	"if":        builtinIf,
}

func builtinUpper(args []data.Value) data.Value { return data.String_(strings.ToUpper(args[0].S)) }

func builtinLower(args []data.Value) data.Value { return data.String_(strings.ToLower(args[0].S)) }

func builtinLen(args []data.Value) data.Value { return data.Int(int64(len(args[0].S))) }

func builtinConcat(args []data.Value) data.Value {
	var sb strings.Builder
	for _, a := range args {
		sb.WriteString(a.String())
	}
	return data.String_(sb.String())
}

func builtinSubstr(args []data.Value) data.Value {
	s := args[0].S
	start := int(args[1].AsInt())
	n := int(args[2].AsInt())
	if start < 0 || start >= len(s) || n <= 0 {
		return data.String_("")
	}
	end := start + n
	if end > len(s) {
		end = len(s)
	}
	return data.String_(s[start:end])
}

func builtinAbs(args []data.Value) data.Value {
	if args[0].K == data.KindFloat {
		f := args[0].F
		if f < 0 {
			f = -f
		}
		return data.Float(f)
	}
	i := args[0].AsInt()
	if i < 0 {
		i = -i
	}
	return data.Int(i)
}

// builtinYear approximates the civil year from epoch days; exactness is
// irrelevant to reuse semantics, determinism is what matters.
func builtinYear(args []data.Value) data.Value { return data.Int(1970 + args[0].AsInt()/365) }

func builtinMonth(args []data.Value) data.Value { return data.Int(1 + (args[0].AsInt()/30)%12) }

func builtinDayOfWeek(args []data.Value) data.Value { return data.Int((4 + args[0].AsInt()) % 7) }

func builtinHash(args []data.Value) data.Value {
	return data.Int(int64(args[0].Hash64() & 0x7fffffffffffffff))
}

func builtinIf(args []data.Value) data.Value {
	if args[0].Truth() {
		return args[1]
	}
	return args[2]
}

func evalFunc(name string, args []data.Value) data.Value {
	if fn, ok := builtins[name]; ok {
		return fn(args)
	}
	return data.Null()
}

// AppendTo implements Expr.
func (f *Func) AppendTo(dst []byte, mode Mode) []byte {
	dst = append(dst, "(fn "...)
	dst = append(dst, f.Name...)
	for _, a := range f.Args {
		dst = append(dst, ' ')
		dst = a.AppendTo(dst, mode)
	}
	return append(dst, ')')
}

// ResultKind implements Expr.
func (f *Func) ResultKind(schema data.Schema) data.Kind {
	switch f.Name {
	case "upper", "lower", "concat", "substr":
		return data.KindString
	case "len", "year", "month", "dayofweek", "hash":
		return data.KindInt
	case "abs":
		if len(f.Args) > 0 {
			return f.Args[0].ResultKind(schema)
		}
		return data.KindInt
	case "if":
		if len(f.Args) == 3 {
			return f.Args[1].ResultKind(schema)
		}
		return data.KindNull
	default:
		return data.KindNull
	}
}

// String implements Expr.
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// UDF is a scalar user-defined function. Name identifies the function in
// the user's library; CodeHash fingerprints the implementation (and its
// external libraries). The precise encoding includes CodeHash — so shipping
// new UDF code invalidates reuse — while the normalized encoding keeps only
// the name, matching the paper's treatment of user code (§3, §8).
type UDF struct {
	Name     string
	CodeHash string
	Args     []Expr
	// Fn is the executable body. If nil, the UDF evaluates to a
	// deterministic hash of its arguments and code hash, which is enough
	// for the simulator: distinct code hashes yield distinct results.
	Fn func(args []data.Value) data.Value
}

// Eval implements Expr.
func (u *UDF) Eval(row data.Row) data.Value {
	args := make([]data.Value, len(u.Args))
	for i, a := range u.Args {
		args[i] = a.Eval(row)
	}
	if u.Fn != nil {
		return u.Fn(args)
	}
	h := data.Row(args).Hash64()
	h ^= data.String_(u.CodeHash).Hash64()
	return data.Int(int64(h & 0x7fffffffffffffff))
}

// AppendTo implements Expr.
func (u *UDF) AppendTo(dst []byte, mode Mode) []byte {
	dst = append(dst, "(udf "...)
	dst = append(dst, u.Name...)
	if mode == Precise {
		dst = append(dst, " #"...)
		dst = append(dst, u.CodeHash...)
	}
	for _, a := range u.Args {
		dst = append(dst, ' ')
		dst = a.AppendTo(dst, mode)
	}
	return append(dst, ')')
}

// ResultKind implements Expr.
func (u *UDF) ResultKind(_ data.Schema) data.Kind { return data.KindInt }

// String implements Expr.
func (u *UDF) String() string {
	parts := make([]string, len(u.Args))
	for i, a := range u.Args {
		parts[i] = a.String()
	}
	return "udf:" + u.Name + "(" + strings.Join(parts, ", ") + ")"
}

// EncodeString returns the canonical encoding of e in the given mode.
func EncodeString(e Expr, mode Mode) string {
	return string(e.AppendTo(nil, mode))
}
