package expr

import (
	"math"
	"math/rand"
	"testing"

	"cloudviews/internal/data"
)

// fuzzSchema is the four-kind input shape the equivalence sweeps run over.
// Rows generated against it deliberately include wrong-kind and NULL
// values, so the compiled programs' kind-hint guards get exercised on both
// the hit and the fallback side.
var sweepSchema = data.Schema{
	{Name: "i", Kind: data.KindInt},
	{Name: "s", Kind: data.KindString},
	{Name: "f", Kind: data.KindFloat},
	{Name: "d", Kind: data.KindDate},
}

// sweepValue draws a value of any kind — including NULLs, NaN/zero floats,
// bools, and empty strings — so arithmetic, comparison, and Truth paths
// all see hostile inputs.
func sweepValue(r *rand.Rand) data.Value {
	switch r.Intn(8) {
	case 0:
		return data.Null()
	case 1:
		return data.Int(r.Int63n(40) - 20)
	case 2:
		return data.Float(float64(r.Int63n(40)-20) / 4)
	case 3:
		switch r.Intn(4) {
		case 0:
			return data.Float(math.NaN())
		case 1:
			return data.Float(0)
		case 2:
			return data.Float(math.Inf(1))
		default:
			return data.Float(-1.5)
		}
	case 4:
		return data.String_([]string{"", "a", "brand_x", "Hello"}[r.Intn(4)])
	case 5:
		return data.Bool(r.Intn(2) == 0)
	case 6:
		return data.Date(r.Int63n(20000))
	default:
		return data.Int(0)
	}
}

func sweepRow(r *rand.Rand) data.Row {
	row := make(data.Row, len(sweepSchema))
	for i := range row {
		row[i] = sweepValue(r)
	}
	return row
}

// sweepExpr builds a random expression over sweepSchema using every node
// type the compiler handles: all 13 binary operators plus an out-of-range
// one, Not, Params, every builtin at correct arity, an unknown function,
// and UDFs with and without custom bodies.
func sweepExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return C(r.Intn(len(sweepSchema)), "")
		case 1:
			return Lit(sweepValue(r))
		case 2:
			return P("p", sweepValue(r))
		default:
			return C(r.Intn(len(sweepSchema)), "")
		}
	}
	switch r.Intn(8) {
	case 0, 1, 2, 3:
		ops := []Op{
			OpAdd, OpSub, OpMul, OpDiv, OpMod,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
			OpAnd, OpOr, Op(99),
		}
		return B(ops[r.Intn(len(ops))], sweepExpr(r, depth-1), sweepExpr(r, depth-1))
	case 4:
		return &Not{sweepExpr(r, depth-1)}
	case 5:
		switch r.Intn(6) {
		case 0:
			return F("upper", sweepExpr(r, depth-1))
		case 1:
			return F("len", sweepExpr(r, depth-1))
		case 2:
			return F("substr", sweepExpr(r, depth-1), Lit(data.Int(r.Int63n(4))), Lit(data.Int(r.Int63n(4))))
		case 3:
			return F("abs", sweepExpr(r, depth-1))
		case 4:
			return F("if", sweepExpr(r, depth-1), sweepExpr(r, depth-1), sweepExpr(r, depth-1))
		default:
			return F("nosuchfn", sweepExpr(r, depth-1))
		}
	case 6:
		u := &UDF{Name: "u", CodeHash: "h1", Args: []Expr{sweepExpr(r, depth-1)}}
		if r.Intn(2) == 0 {
			u.Fn = sweepUDFBody
		}
		return u
	default:
		return F("concat", sweepExpr(r, depth-1), sweepExpr(r, depth-1))
	}
}

// sweepUDFBody is a deterministic custom UDF body (pure, like real scalar
// UDFs are assumed to be for reuse).
func sweepUDFBody(args []data.Value) data.Value {
	return data.Int(args[0].AsInt()*3 + 1)
}

// TestCompiledGoldenEquivalence is the golden sweep: thousands of random
// expression trees × random (frequently wrong-kind) rows, compiled output
// bit-identical to the interpreter in both the value and predicate forms,
// under both the real schema and a nil schema (no hints).
func TestCompiledGoldenEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4000; trial++ {
		e := sweepExpr(r, 4)
		c := Compile(e, sweepSchema)
		cn := Compile(e, nil)
		ctx, ctxn := c.NewCtx(), cn.NewCtx()
		for i := 0; i < 4; i++ {
			row := sweepRow(r)
			want := e.Eval(row)
			if got := c.Eval(ctx, row); !valueIdentical(got, want) {
				t.Fatalf("trial %d row %d: compiled %s = %v, interpreter %v", trial, i, e, got, want)
			}
			if got := cn.Eval(ctxn, row); !valueIdentical(got, want) {
				t.Fatalf("trial %d row %d: nil-schema compiled %s = %v, interpreter %v", trial, i, e, got, want)
			}
			if got := c.Truth(ctx, row); got != want.Truth() {
				t.Fatalf("trial %d row %d: compiled pred %s = %v, interpreter Truth %v", trial, i, e, got, want.Truth())
			}
		}
	}
}

// TestCompiledConstantFolding pins that constant subtrees fold: the
// compiled closure for a constant expression returns the folded value even
// on a nil row (a row-dependent closure would panic indexing it), and
// Func folding declines on arity panics so they stay at eval time.
func TestCompiledConstantFolding(t *testing.T) {
	cases := []struct {
		e    Expr
		want data.Value
	}{
		{B(OpAdd, Lit(data.Int(2)), Lit(data.Int(3))), data.Int(5)},
		{B(OpDiv, Lit(data.Int(1)), Lit(data.Int(0))), data.Null()},
		{Eq(Lit(data.Int(2)), Lit(data.Int(2))), data.Bool(true)},
		{F("upper", Lit(data.String_("ab"))), data.String_("AB")},
		{F("len", F("concat", Lit(data.String_("a")), Lit(data.String_("bc")))), data.Int(3)},
		{&Not{Lit(data.Bool(true))}, data.Bool(false)},
		{And(Lit(data.Bool(true)), Lit(data.Bool(false))), data.Bool(false)},
		{B(OpOr, Lit(data.Bool(true)), Lit(data.Bool(false))), data.Bool(true)},
		{P("p", data.Int(9)), data.Int(9)},
		{&UDF{Name: "u", CodeHash: "h"}, (&UDF{Name: "u", CodeHash: "h"}).Eval(nil)},
	}
	for _, tc := range cases {
		c := Compile(tc.e, nil)
		if got := c.Eval(c.NewCtx(), nil); !valueIdentical(got, tc.want) {
			t.Errorf("%s folded to %v, want %v", tc.e, got, tc.want)
		}
	}
	// A folded And/Or side with a row-dependent other side still works —
	// and a constant-false left side short-circuits the whole predicate.
	e := And(Lit(data.Bool(false)), B(OpGt, C(0, "i"), Lit(data.Int(1))))
	c := Compile(e, sweepSchema)
	if c.Truth(c.NewCtx(), nil) {
		t.Error("constant-false And side should fold the predicate to false")
	}
	// Arity abuse must NOT panic at compile time — the fold declines and
	// the panic surfaces at eval time, exactly like the interpreter.
	bad := F("substr", Lit(data.String_("abc")))
	cBad := Compile(bad, nil)
	assertPanics(t, "interpreter bad arity", func() { bad.Eval(testRow) })
	assertPanics(t, "compiled bad arity", func() { cBad.Eval(cBad.NewCtx(), testRow) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestCompiledGuardFallbacks drives each kind-specialized fast path with
// rows whose runtime kinds contradict the schema hints, so every guard's
// fallback branch is known to reproduce the interpreter.
func TestCompiledGuardFallbacks(t *testing.T) {
	// Schema says (int, int) / (int, float); rows disagree.
	schema := data.Schema{{Name: "a", Kind: data.KindInt}, {Name: "b", Kind: data.KindInt}, {Name: "c", Kind: data.KindFloat}}
	exprs := []Expr{
		B(OpAdd, C(0, "a"), C(1, "b")),                // int arith col-col
		B(OpMul, C(0, "a"), C(2, "c")),                // mixed arith col-col
		B(OpDiv, C(0, "a"), Lit(data.Int(3))),         // int arith col-const
		B(OpGt, C(0, "a"), Lit(data.Int(5))),          // int cmp col-const
		B(OpLt, C(2, "c"), Lit(data.Float(2))),        // float cmp col-const
		B(OpLe, C(0, "a"), C(1, "b")),                 // int cmp col-col
		Eq(C(2, "c"), B(OpAdd, C(2, "c"), C(0, "a"))), // float cmp general
		And(B(OpGt, C(0, "a"), Lit(data.Int(0))), B(OpLt, C(1, "b"), Lit(data.Int(9)))),
	}
	rows := []data.Row{
		{data.Int(7), data.Int(3), data.Float(1.5)},             // hints hold
		{data.Null(), data.Int(3), data.Float(1.5)},             // null where int promised
		{data.String_("x"), data.Bool(true), data.Int(2)},       // strings/bools/ints everywhere
		{data.Float(1.5), data.Float(2.5), data.String_("y")},   // floats where ints promised
		{data.Date(100), data.Date(50), data.Float(math.NaN())}, // dates + NaN
		{data.Int(0), data.Int(0), data.Float(0)},               // zeros (div/mod-by-zero)
	}
	for _, e := range exprs {
		c := Compile(e, schema)
		for i, row := range rows {
			want := e.Eval(row)
			if got := c.Eval(c.NewCtx(), row); !valueIdentical(got, want) {
				t.Errorf("row %d: compiled %s = %v, interpreter %v", i, e, got, want)
			}
			if got := c.Truth(c.NewCtx(), row); got != want.Truth() {
				t.Errorf("row %d: compiled pred %s = %v, interpreter Truth %v", i, e, got, want.Truth())
			}
		}
	}
}

// TestCompiledFuncScratch pins the argument-hoisting machinery: nested
// calls own disjoint scratch ranges (inner evaluation must not clobber the
// outer call's already-evaluated arguments), and custom UDF bodies are
// called with the right arguments.
func TestCompiledFuncScratch(t *testing.T) {
	// concat(upper(s), lower(s), substr(s,0,2)): the outer concat's args
	// are produced by inner calls that use their own scratch.
	e := F("concat",
		F("upper", C(1, "s")),
		F("lower", C(1, "s")),
		F("substr", C(1, "s"), Lit(data.Int(0)), Lit(data.Int(2))))
	c := Compile(e, testSchema)
	want := e.Eval(testRow)
	if got := c.Eval(c.NewCtx(), testRow); !valueIdentical(got, want) {
		t.Fatalf("nested funcs: compiled %v, interpreter %v", got, want)
	}
	// The same Ctx is reusable across rows.
	ctx := c.NewCtx()
	for i := 0; i < 3; i++ {
		if got := c.Eval(ctx, testRow); !valueIdentical(got, want) {
			t.Fatalf("ctx reuse iteration %d: %v != %v", i, got, want)
		}
	}
	// UDFs: custom body and default (hash) body, nested under a Func.
	u := &UDF{Name: "x3", CodeHash: "h", Args: []Expr{C(0, "a")}, Fn: sweepUDFBody}
	ud := &UDF{Name: "hash", CodeHash: "h2", Args: []Expr{C(0, "a"), C(2, "f")}}
	for _, e := range []Expr{u, ud, F("abs", u), F("if", B(OpGt, C(0, "a"), Lit(data.Int(0))), u, ud)} {
		c := Compile(e, testSchema)
		want := e.Eval(testRow)
		if got := c.Eval(c.NewCtx(), testRow); !valueIdentical(got, want) {
			t.Errorf("udf %s: compiled %v, interpreter %v", e, got, want)
		}
	}
}

// TestSelectInto pins the batch predicate form: indexes of passing rows in
// scan order, appended to the caller's buffer.
func TestSelectInto(t *testing.T) {
	rows := []data.Row{
		{data.Int(5)}, {data.Int(1)}, {data.Int(9)}, {data.Null()}, {data.Int(7)},
	}
	e := B(OpGt, C(0, "i"), Lit(data.Int(4)))
	c := Compile(e, data.Schema{{Name: "i", Kind: data.KindInt}})
	sel := c.SelectInto(c.NewCtx(), rows, nil)
	want := []int32{0, 2, 4}
	if len(sel) != len(want) {
		t.Fatalf("sel = %v, want %v", sel, want)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel = %v, want %v", sel, want)
		}
	}
	// Appending into a reused buffer keeps prior content.
	sel2 := c.SelectInto(c.NewCtx(), rows[:2], sel[:0])
	if len(sel2) != 1 || sel2[0] != 0 {
		t.Fatalf("reused sel = %v", sel2)
	}
}

// TestCompileProjectEmitInto pins the batch projector: per-column modes
// (direct copy, constant, closure), byte accounting identical to a
// ByteSize walk of the emitted rows, and rows equal to the interpreter's.
func TestCompileProjectEmitInto(t *testing.T) {
	exprs := []Expr{
		C(1, "s"),                      // direct copy
		B(OpMul, C(0, "a"), C(2, "f")), // compiled closure
		B(OpAdd, Lit(data.Int(2)), Lit(data.Int(3))), // folds to constant
		F("len", C(1, "s")),                          // func with scratch
	}
	p := CompileProject(exprs, testSchema)
	if p.Width() != len(exprs) {
		t.Fatalf("width = %d", p.Width())
	}
	part := []data.Row{
		testRow,
		{data.Null(), data.String_(""), data.Float(math.NaN()), data.Date(1)},
		{data.String_("wrongkind"), data.Int(3), data.Int(4), data.Bool(true)},
	}
	arena := data.NewRowArenaSized(len(part) * p.Width())
	out := make([]data.Row, len(part))
	arena.NewRows(out, p.Width())
	bytes := p.EmitInto(p.NewCtx(), part, out)
	var wantBytes int64
	for j, r := range part {
		for k, e := range exprs {
			want := e.Eval(r)
			if !valueIdentical(out[j][k], want) {
				t.Errorf("row %d col %d: emitted %v, interpreter %v", j, k, out[j][k], want)
			}
			wantBytes += want.ByteSize()
		}
	}
	if bytes != wantBytes {
		t.Errorf("EmitInto bytes = %d, ByteSize walk = %d", bytes, wantBytes)
	}
}

// TestCompiledSharedAcrossGoroutines runs one compiled program (with
// Func/UDF scratch, so the per-worker Ctx machinery is in play) over many
// goroutines; run under -race this pins the read-only-after-Compile
// contract the executor relies on.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	e := And(
		B(OpGt, &UDF{Name: "u", CodeHash: "h", Args: []Expr{C(0, "a")}}, Lit(data.Int(0))),
		B(OpLt, F("len", C(1, "s")), Lit(data.Int(100))))
	c := Compile(e, testSchema)
	want := c.Truth(c.NewCtx(), testRow)
	if want != e.Eval(testRow).Truth() {
		t.Fatal("compiled disagrees with interpreter before concurrency")
	}
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			ctx := c.NewCtx()
			ok := true
			for i := 0; i < 500; i++ {
				if c.Truth(ctx, testRow) != want {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent evaluation diverged")
		}
	}
}
