// Package report provides the small statistics and tabulation helpers the
// benchmark harnesses share: percentiles, cumulative distributions, and
// fixed-width table rendering for regenerating the paper's figures as text.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy. An empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDFPoint is one point of a cumulative distribution: the fraction of
// samples with value <= X.
type CDFPoint struct {
	X        float64
	Fraction float64
}

// CDF evaluates the empirical CDF of xs at each threshold, returning one
// point per threshold.
func CDF(xs []float64, thresholds []float64) []CDFPoint {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(thresholds))
	for i, t := range thresholds {
		// count of samples <= t
		n := sort.SearchFloat64s(s, t)
		for n < len(s) && s[n] <= t {
			n++
		}
		frac := 0.0
		if len(s) > 0 {
			frac = float64(n) / float64(len(s))
		}
		out[i] = CDFPoint{X: t, Fraction: frac}
	}
	return out
}

// FractionAtLeast returns the fraction of samples >= x.
func FractionAtLeast(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v >= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAtMost returns the fraction of samples <= x.
func FractionAtMost(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// LogThresholds returns thresholds at powers of base covering [lo, hi],
// the x-axes of the paper's log-scale CDF figures.
func LogThresholds(lo, hi, base float64) []float64 {
	var out []float64
	for x := lo; x <= hi; x *= base {
		out = append(out, x)
	}
	return out
}

// Table renders rows as a fixed-width text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of cells formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
