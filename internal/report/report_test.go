package report

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {-5, 1}, {120, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if Median([]float64{9, 1, 5}) != 5 {
		t.Error("median wrong")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 10}
	pts := CDF(xs, []float64{0, 2, 5, 10})
	want := []float64{0, 0.6, 0.8, 1.0}
	for i, p := range pts {
		if p.Fraction != want[i] {
			t.Errorf("CDF at %v = %v, want %v", p.X, p.Fraction, want[i])
		}
	}
	if pts := CDF(nil, []float64{1}); pts[0].Fraction != 0 {
		t.Error("empty CDF should be 0")
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if FractionAtLeast(xs, 3) != 0.5 {
		t.Error("FractionAtLeast wrong")
	}
	if FractionAtMost(xs, 2) != 0.5 {
		t.Error("FractionAtMost wrong")
	}
	if FractionAtLeast(nil, 1) != 0 || FractionAtMost(nil, 1) != 0 {
		t.Error("empty fractions should be 0")
	}
}

func TestLogThresholds(t *testing.T) {
	ts := LogThresholds(1, 1000, 10)
	want := []float64{1, 10, 100, 1000}
	if len(ts) != len(want) {
		t.Fatalf("thresholds = %v", ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("threshold[%d] = %v", i, ts[i])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("alpha", 1.5)
	tab.Add("b", 42)
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "1.50") {
		t.Errorf("bad render:\n%s", out)
	}
	// Columns align: every line at least as wide as the widest cell.
	if len(lines[1]) < len("name")+len("value") {
		t.Error("separator too narrow")
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		p := r.Float64() * 100
		v := Percentile(xs, p)
		// Result is always one of the samples and within [min, max].
		return v >= sorted[0] && v <= sorted[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(40))
		for i := range xs {
			xs[i] = r.Float64() * 10
		}
		pts := CDF(xs, LogThresholds(0.1, 100, 2))
		for i := 1; i < len(pts); i++ {
			if pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return len(pts) == 0 || pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
