package script

import (
	"fmt"
	"strconv"
	"strings"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

// Params binds recurring parameter names to this instance's values.
type Params map[string]data.Value

// Compiled is the result of compiling a script: the plans rooted at each
// OUTPUT statement (most scripts have exactly one).
type Compiled struct {
	Outputs []*plan.Node
	// Params lists the parameter names the script references, sorted by
	// first use — callers can validate bindings per instance.
	Params []string
}

// Root returns the single output plan, or an error if the script has more
// or fewer than one OUTPUT.
func (c *Compiled) Root() (*plan.Node, error) {
	if len(c.Outputs) != 1 {
		return nil, fmt.Errorf("script: %d OUTPUT statements, want exactly 1", len(c.Outputs))
	}
	return c.Outputs[0], nil
}

// Compile parses src and builds plans against the catalog's current table
// versions, binding @parameters from params. UDO code versions default to
// "<name>-v1" unless a PROCESS/REDUCE statement carries VERSION 'x'.
func Compile(src string, cat *catalog.Catalog, params Params) (*Compiled, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:   toks,
		cat:    cat,
		params: params,
		env:    map[string]*plan.Node{},
	}
	return p.script()
}

type parser struct {
	toks   []token
	pos    int
	cat    *catalog.Catalog
	params Params
	env    map[string]*plan.Node
	used   []string // parameter names in first-use order
	seen   map[string]bool
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) acceptOp(op string) bool {
	if t := p.cur(); t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if t := p.cur(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return errAt(p.cur(), "expected %q, found %q", op, p.cur().text)
	}
	return nil
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return errAt(p.cur(), "expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, errAt(t, "expected identifier, found %q", t.text)
	}
	p.pos++
	return t, nil
}

// script := stmt+ EOF
func (p *parser) script() (*Compiled, error) {
	out := &Compiled{}
	for p.cur().kind != tokEOF {
		if p.acceptKw("OUTPUT") {
			node, err := p.outputStmt()
			if err != nil {
				return nil, err
			}
			out.Outputs = append(out.Outputs, node)
			continue
		}
		if err := p.assignStmt(); err != nil {
			return nil, err
		}
	}
	if len(out.Outputs) == 0 {
		return nil, errAt(p.cur(), "script has no OUTPUT statement")
	}
	out.Params = p.used
	return out, nil
}

// outputStmt := 'OUTPUT' ident 'TO' ident ';'
func (p *parser) outputStmt() (*plan.Node, error) {
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	node, ok := p.env[src.text]
	if !ok {
		return nil, errAt(src, "unknown dataset %q", src.text)
	}
	if err := p.expectKw("TO"); err != nil {
		return nil, err
	}
	sink, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	return node.Output(sink.text), nil
}

// assignStmt := ident '=' opexpr ';'
func (p *parser) assignStmt() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectOp("="); err != nil {
		return err
	}
	node, err := p.opExpr()
	if err != nil {
		return err
	}
	if err := p.expectOp(";"); err != nil {
		return err
	}
	if _, dup := p.env[name.text]; dup {
		return errAt(name, "dataset %q already defined", name.text)
	}
	p.env[name.text] = node
	return nil
}

// input resolves a named dataset.
func (p *parser) input() (*plan.Node, error) {
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	node, ok := p.env[t.text]
	if !ok {
		return nil, errAt(t, "unknown dataset %q", t.text)
	}
	return node, nil
}

// colIndex resolves a column name in the node's schema.
func colIndex(n *plan.Node, t token) (int, error) {
	i := n.Schema().ColumnIndex(t.text)
	if i < 0 {
		return 0, errAt(t, "no column %q in (%s)", t.text, n.Schema())
	}
	return i, nil
}

// colList := ident (',' ident)*
func (p *parser) colList(n *plan.Node) ([]int, error) {
	var cols []int
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		i, err := colIndex(n, t)
		if err != nil {
			return nil, err
		}
		cols = append(cols, i)
		if !p.acceptOp(",") {
			return cols, nil
		}
	}
}

// opExpr dispatches on the leading keyword.
func (p *parser) opExpr() (*plan.Node, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, errAt(t, "expected an operator keyword, found %q", t.text)
	}
	p.pos++
	switch t.text {
	case "EXTRACT":
		return p.extract()
	case "FILTER":
		return p.filter()
	case "SHUFFLE":
		return p.shuffle()
	case "GATHER":
		in, err := p.input()
		if err != nil {
			return nil, err
		}
		return in.Gather(), nil
	case "AGGREGATE":
		return p.aggregate()
	case "SELECT":
		return p.selectStmt()
	case "JOIN":
		return p.join()
	case "SORT":
		return p.sort()
	case "TOP":
		return p.top()
	case "PROCESS":
		return p.udo(false)
	case "REDUCE":
		return p.udo(true)
	case "UNION":
		return p.union()
	default:
		return nil, errAt(t, "unexpected keyword %s", t.text)
	}
}

// extract := 'EXTRACT' 'FROM' ident
func (p *parser) extract() (*plan.Node, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tab, err := p.cat.Get(t.text)
	if err != nil {
		return nil, errAt(t, "unknown table %q", t.text)
	}
	return plan.Scan(tab.Name, tab.GUID, tab.Schema), nil
}

// filter := 'FILTER' ident 'WHERE' expr
func (p *parser) filter() (*plan.Node, error) {
	in, err := p.input()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("WHERE"); err != nil {
		return nil, err
	}
	pred, err := p.expr(in)
	if err != nil {
		return nil, err
	}
	return in.Filter(pred), nil
}

// shuffle := 'SHUFFLE' ident 'BY' colList ['INTO' number]
func (p *parser) shuffle() (*plan.Node, error) {
	in, err := p.input()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("BY"); err != nil {
		return nil, err
	}
	cols, err := p.colList(in)
	if err != nil {
		return nil, err
	}
	parts := 8
	if p.acceptKw("INTO") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, errAt(t, "expected partition count, found %q", t.text)
		}
		p.pos++
		parts, err = strconv.Atoi(t.text)
		if err != nil || parts < 1 {
			return nil, errAt(t, "bad partition count %q", t.text)
		}
	}
	return in.ShuffleHash(cols, parts), nil
}

// aggregate := 'AGGREGATE' ident 'BY' colList aggItem (',' aggItem)*
// An aggItem interleaves with group columns, so we parse: BY collist then
// a comma-separated list of AGGFN '(' ident ')'.
func (p *parser) aggregate() (*plan.Node, error) {
	in, err := p.input()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("BY"); err != nil {
		return nil, err
	}
	cols, err := p.colList(in)
	if err != nil {
		return nil, err
	}
	var aggs []plan.AggSpec
	for {
		t := p.cur()
		fn, ok := aggFn(t)
		if !ok {
			break
		}
		p.pos++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		ct, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ci, err := colIndex(in, ct)
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		aggs = append(aggs, plan.AggSpec{Fn: fn, Col: ci})
		if !p.acceptOp(",") {
			break
		}
	}
	if len(aggs) == 0 {
		return nil, errAt(p.cur(), "AGGREGATE needs at least one aggregate function")
	}
	return in.HashAgg(cols, aggs), nil
}

func aggFn(t token) (plan.AggFn, bool) {
	if t.kind != tokKeyword {
		return 0, false
	}
	switch t.text {
	case "SUM":
		return plan.AggSum, true
	case "COUNT":
		return plan.AggCount, true
	case "MIN":
		return plan.AggMin, true
	case "MAX":
		return plan.AggMax, true
	case "AVG":
		return plan.AggAvg, true
	}
	return 0, false
}

// selectStmt := 'SELECT' selItem (',' selItem)* 'FROM' ident
// selItem := expr ['AS' ident]
func (p *parser) selectStmt() (*plan.Node, error) {
	// The input is named at the end, so record item token spans and
	// re-parse after resolution. Simpler: scan ahead for FROM.
	start := p.pos
	depth := 0
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return nil, errAt(t, "SELECT without FROM")
		}
		if t.kind == tokOp && t.text == "(" {
			depth++
		}
		if t.kind == tokOp && t.text == ")" {
			depth--
		}
		if t.kind == tokKeyword && t.text == "FROM" && depth == 0 {
			break
		}
		p.pos++
	}
	fromPos := p.pos
	p.pos++
	in, err := p.input()
	if err != nil {
		return nil, err
	}
	endPos := p.pos

	// Re-parse the item list against the resolved input schema.
	p.pos = start
	var names []string
	var exprs []expr.Expr
	for {
		e, err := p.expr(in)
		if err != nil {
			return nil, err
		}
		name := ""
		if p.acceptKw("AS") {
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = t.text
		} else if c, ok := e.(*expr.Col); ok {
			name = c.Name
		}
		if name == "" {
			name = fmt.Sprintf("c%d", len(names))
		}
		names = append(names, name)
		exprs = append(exprs, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.pos != fromPos {
		return nil, errAt(p.cur(), "unexpected %q before FROM", p.cur().text)
	}
	p.pos = endPos
	return in.Project(names, exprs), nil
}

// join := 'JOIN' ident 'WITH' ident 'ON' ident '==' ident (',' ident '==' ident)*
func (p *parser) join() (*plan.Node, error) {
	left, err := p.input()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("WITH"); err != nil {
		return nil, err
	}
	right, err := p.input()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	var lk, rk []int
	for {
		lt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		li, err := colIndex(left, lt)
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("=="); err != nil {
			return nil, err
		}
		rt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ri, err := colIndex(right, rt)
		if err != nil {
			return nil, err
		}
		lk = append(lk, li)
		rk = append(rk, ri)
		if !p.acceptOp(",") {
			break
		}
	}
	return left.HashJoin(right, lk, rk), nil
}

// sort := 'SORT' ident 'BY' ident ['DESC'|'ASC'] (',' ...)*
func (p *parser) sort() (*plan.Node, error) {
	in, err := p.input()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("BY"); err != nil {
		return nil, err
	}
	var keys []int
	var desc []bool
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		i, err := colIndex(in, t)
		if err != nil {
			return nil, err
		}
		keys = append(keys, i)
		switch {
		case p.acceptKw("DESC"):
			desc = append(desc, true)
		case p.acceptKw("ASC"):
			desc = append(desc, false)
		default:
			desc = append(desc, false)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	return in.Sort(keys, desc), nil
}

// top := 'TOP' ident number
func (p *parser) top() (*plan.Node, error) {
	in, err := p.input()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokNumber {
		return nil, errAt(t, "expected row count, found %q", t.text)
	}
	p.pos++
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil || n < 0 {
		return nil, errAt(t, "bad row count %q", t.text)
	}
	return in.Top(n), nil
}

// udo := ('PROCESS'|'REDUCE' ident 'BY' colList) ident 'USING' ident ['VERSION' string]
func (p *parser) udo(reduce bool) (*plan.Node, error) {
	in, err := p.input()
	if err != nil {
		return nil, err
	}
	var cols []int
	if reduce {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		cols, err = p.colList(in)
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("USING"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	version := name.text + "-v1"
	if p.acceptKw("VERSION") {
		t := p.cur()
		if t.kind != tokString {
			return nil, errAt(t, "expected version string, found %q", t.text)
		}
		p.pos++
		version = name.text + "-" + t.text
	}
	if reduce {
		return in.Reduce(name.text, version, cols), nil
	}
	return in.Process(name.text, version), nil
}

// union := 'UNION' ident (',' ident)+
func (p *parser) union() (*plan.Node, error) {
	first, err := p.input()
	if err != nil {
		return nil, err
	}
	var rest []*plan.Node
	for p.acceptOp(",") {
		n, err := p.input()
		if err != nil {
			return nil, err
		}
		if n.Schema().String() != first.Schema().String() {
			return nil, errAt(p.cur(), "UNION inputs have different schemas")
		}
		rest = append(rest, n)
	}
	if len(rest) == 0 {
		return nil, errAt(p.cur(), "UNION needs at least two inputs")
	}
	return first.UnionAll(rest...), nil
}

// ---- scalar expressions -------------------------------------------------

// expr := orExpr
func (p *parser) expr(in *plan.Node) (expr.Expr, error) { return p.orExpr(in) }

func (p *parser) orExpr(in *plan.Node) (expr.Expr, error) {
	l, err := p.andExpr(in)
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr(in)
		if err != nil {
			return nil, err
		}
		l = expr.B(expr.OpOr, l, r)
	}
	return l, nil
}

func (p *parser) andExpr(in *plan.Node) (expr.Expr, error) {
	l, err := p.cmpExpr(in)
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.cmpExpr(in)
		if err != nil {
			return nil, err
		}
		l = expr.And(l, r)
	}
	return l, nil
}

var cmpOps = map[string]expr.Op{
	"==": expr.OpEq, "!=": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) cmpExpr(in *plan.Node) (expr.Expr, error) {
	l, err := p.addExpr(in)
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.pos++
			r, err := p.addExpr(in)
			if err != nil {
				return nil, err
			}
			return expr.B(op, l, r), nil
		}
	}
	return l, nil
}

func (p *parser) addExpr(in *plan.Node) (expr.Expr, error) {
	l, err := p.mulExpr(in)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.pos++
		r, err := p.mulExpr(in)
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			l = expr.B(expr.OpAdd, l, r)
		} else {
			l = expr.B(expr.OpSub, l, r)
		}
	}
}

func (p *parser) mulExpr(in *plan.Node) (expr.Expr, error) {
	l, err := p.unaryExpr(in)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.pos++
		r, err := p.unaryExpr(in)
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "*":
			l = expr.B(expr.OpMul, l, r)
		case "/":
			l = expr.B(expr.OpDiv, l, r)
		default:
			l = expr.B(expr.OpMod, l, r)
		}
	}
}

func (p *parser) unaryExpr(in *plan.Node) (expr.Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.unaryExpr(in)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: e}, nil
	}
	return p.primary(in)
}

func (p *parser) primary(in *plan.Node) (expr.Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errAt(t, "bad number %q", t.text)
			}
			return expr.Lit(data.Float(f)), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errAt(t, "bad number %q", t.text)
		}
		return expr.Lit(data.Int(n)), nil
	case tokString:
		return expr.Lit(data.String_(t.text)), nil
	case tokParam:
		v, ok := p.params[t.text]
		if !ok {
			return nil, errAt(t, "unbound parameter @%s", t.text)
		}
		p.recordParam(t.text)
		return expr.P(t.text, v), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			return expr.Lit(data.Bool(true)), nil
		case "FALSE":
			return expr.Lit(data.Bool(false)), nil
		case "DATE":
			nt := p.next()
			if nt.kind != tokNumber {
				return nil, errAt(nt, "DATE needs a day number, found %q", nt.text)
			}
			d, err := strconv.ParseInt(nt.text, 10, 64)
			if err != nil {
				return nil, errAt(nt, "bad day number %q", nt.text)
			}
			return expr.Lit(data.Date(d)), nil
		}
		return nil, errAt(t, "unexpected %s in expression", t.text)
	case tokIdent:
		// Function call or column reference.
		if p.acceptOp("(") {
			var args []expr.Expr
			if !p.acceptOp(")") {
				for {
					a, err := p.expr(in)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptOp(")") {
						break
					}
					if err := p.expectOp(","); err != nil {
						return nil, err
					}
				}
			}
			return expr.F(strings.ToLower(t.text), args...), nil
		}
		i, err := colIndex(in, t)
		if err != nil {
			return nil, err
		}
		return expr.C(i, t.text), nil
	case tokOp:
		if t.text == "(" {
			e, err := p.expr(in)
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			e, err := p.unaryExpr(in)
			if err != nil {
				return nil, err
			}
			return expr.B(expr.OpSub, expr.Lit(data.Int(0)), e), nil
		}
	}
	return nil, errAt(t, "unexpected %q in expression", t.text)
}

func (p *parser) recordParam(name string) {
	if p.seen == nil {
		p.seen = map[string]bool{}
	}
	if !p.seen[name] {
		p.seen[name] = true
		p.used = append(p.used, name)
	}
}
