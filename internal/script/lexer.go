// Package script implements a small SCOPE-like scripting language for
// authoring jobs as text, the way the paper's users write recurring
// templates. A script is a sequence of named operator statements ending in
// one or more OUTPUT statements:
//
//	rows = EXTRACT FROM clicks;
//	today = FILTER rows WHERE day == @day AND dur > 100;
//	part = SHUFFLE today BY user INTO 8;
//	agg = AGGREGATE part BY user SUM(dur), COUNT(url);
//	top = SORT agg BY sum_dur DESC;
//	OUTPUT top TO report;
//
// Parameters (@day) are recurring deltas: the compiler binds their values
// per instance, and they compile to expr.Param so the normalized signature
// is identical across instances while the precise signature tracks the
// binding — scripts are templates by construction.
package script

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam // @name
	tokOp    // punctuation / operators
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// keywords are case-insensitive; they are stored uppercase.
var keywords = map[string]bool{
	"EXTRACT": true, "FROM": true, "FILTER": true, "WHERE": true,
	"SHUFFLE": true, "BY": true, "INTO": true, "AGGREGATE": true,
	"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "AVG": true,
	"SELECT": true, "AS": true, "JOIN": true, "WITH": true, "ON": true,
	"SORT": true, "DESC": true, "ASC": true, "TOP": true,
	"PROCESS": true, "REDUCE": true, "USING": true, "VERSION": true,
	"UNION": true, "OUTPUT": true, "TO": true, "GATHER": true,
	"AND": true, "OR": true, "NOT": true, "TRUE": true, "FALSE": true,
	"DATE": true,
}

// Error is a script compilation error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("script:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// lex splits the source into tokens. Comments run from "--" to newline.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start, l0, c0 := i, line, col
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, l0, c0})
			} else {
				toks = append(toks, token{tokIdent, word, l0, c0})
			}
		case unicode.IsDigit(rune(c)):
			start, l0, c0 := i, line, col
			seenDot := false
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || (src[i] == '.' && !seenDot)) {
				if src[i] == '.' {
					seenDot = true
				}
				advance(1)
			}
			toks = append(toks, token{tokNumber, src[start:i], l0, c0})
		case c == '\'':
			l0, c0 := line, col
			advance(1)
			start := i
			for i < len(src) && src[i] != '\'' {
				advance(1)
			}
			if i >= len(src) {
				return nil, &Error{Line: l0, Col: c0, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{tokString, src[start:i], l0, c0})
			advance(1)
		case c == '@':
			l0, c0 := line, col
			advance(1)
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			if start == i {
				return nil, &Error{Line: l0, Col: c0, Msg: "empty parameter name after '@'"}
			}
			toks = append(toks, token{tokParam, src[start:i], l0, c0})
		default:
			l0, c0 := line, col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, token{tokOp, two, l0, c0})
				advance(2)
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';':
				toks = append(toks, token{tokOp, string(c), l0, c0})
				advance(1)
			default:
				return nil, &Error{Line: l0, Col: c0, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}
