package script

import (
	"strings"
	"testing"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/exec"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	clicks := data.NewTable("clicks", "g1", data.Schema{
		{Name: "user", Kind: data.KindInt},
		{Name: "url", Kind: data.KindString},
		{Name: "day", Kind: data.KindDate},
		{Name: "dur", Kind: data.KindFloat},
	}, 4)
	rr := 0
	for i := 0; i < 300; i++ {
		clicks.AppendHash(data.Row{
			data.Int(int64(i % 30)),
			data.String_("u" + string(rune('a'+i%5))),
			data.Date(17000 + int64(i%2)),
			data.Float(float64(i % 400)),
		}, []int{0}, &rr)
	}
	cat.Register(clicks)
	users := data.NewTable("users", "g2", data.Schema{
		{Name: "id", Kind: data.KindInt},
		{Name: "region", Kind: data.KindString},
	}, 2)
	for i := 0; i < 30; i++ {
		users.AppendHash(data.Row{data.Int(int64(i)), data.String_("r" + string(rune('0'+i%3)))}, []int{0}, &rr)
	}
	cat.Register(users)
	return cat
}

const fullScript = `
-- recurring template: today's per-user activity joined with user regions
rows   = EXTRACT FROM clicks;
today  = FILTER rows WHERE day == @day AND dur > 10;
part   = SHUFFLE today BY user INTO 8;
agg    = AGGREGATE part BY user SUM(dur), COUNT(url);
dim    = EXTRACT FROM users;
joined = JOIN agg WITH dim ON user == id;
ranked = SORT joined BY sum_dur DESC;
best   = TOP ranked 5;
OUTPUT best TO leaderboard;
`

func TestCompileAndExecuteFullScript(t *testing.T) {
	cat := testCatalog(t)
	c, err := Compile(fullScript, cat, Params{"day": data.Date(17000)})
	if err != nil {
		t.Fatal(err)
	}
	root, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != plan.OpOutput || root.OutputName != "leaderboard" {
		t.Fatalf("root = %v", root)
	}
	if len(c.Params) != 1 || c.Params[0] != "day" {
		t.Errorf("params = %v", c.Params)
	}
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	res, err := ex.Run(root, "job", 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Outputs["leaderboard"]
	if len(rows) != 5 {
		t.Fatalf("leaderboard rows = %d", len(rows))
	}
	// Sorted by sum_dur descending.
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].AsFloat() < rows[i][1].AsFloat() {
			t.Error("not sorted desc")
		}
	}
	// Join attached a region column.
	last := rows[0][len(rows[0])-1]
	if last.K != data.KindString || !strings.HasPrefix(last.S, "r") {
		t.Errorf("join region col = %v", last)
	}
}

func TestScriptsAreRecurringTemplates(t *testing.T) {
	// The same script with different @day bindings must produce plans with
	// equal normalized and distinct precise signatures — scripts ARE the
	// paper's recurring templates.
	cat := testCatalog(t)
	compile := func(day int64) *plan.Node {
		c, err := Compile(fullScript, cat, Params{"day": data.Date(day)})
		if err != nil {
			t.Fatal(err)
		}
		root, err := c.Root()
		if err != nil {
			t.Fatal(err)
		}
		return root
	}
	s1 := signature.Of(compile(17000))
	s2 := signature.Of(compile(17001))
	if s1.Normalized != s2.Normalized {
		t.Error("same template must share normalized signature across bindings")
	}
	if s1.Precise == s2.Precise {
		t.Error("different bindings must differ precisely")
	}
}

func TestSelectProjection(t *testing.T) {
	cat := testCatalog(t)
	src := `
rows = EXTRACT FROM clicks;
proj = SELECT user, dur * 2 AS dur2, upper(url) AS loud FROM rows;
OUTPUT proj TO o;
`
	c, err := Compile(src, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := c.Root()
	sch := root.Schema()
	if sch.String() != "user:int, dur2:float, loud:string" {
		t.Fatalf("schema = %q", sch)
	}
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	res, err := ex.Run(root, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Outputs["o"][0]
	if r[2].S != strings.ToUpper(r[2].S) {
		t.Error("upper() not applied")
	}
}

func TestProcessReduceUnionGatherTop(t *testing.T) {
	cat := testCatalog(t)
	src := `
a = EXTRACT FROM users;
b = EXTRACT FROM users;
u = UNION a, b;
g = GATHER u;
p = PROCESS g USING scrub VERSION 'v2';
r = REDUCE p BY region USING grouper;
OUTPUT r TO o;
`
	c, err := Compile(src, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := c.Root()
	kinds := map[plan.OpKind]int{}
	plan.Walk(root, func(n *plan.Node) { kinds[n.Kind]++ })
	for _, k := range []plan.OpKind{plan.OpUnionAll, plan.OpExchange, plan.OpProcess, plan.OpReduce} {
		if kinds[k] == 0 {
			t.Errorf("missing %v in compiled plan", k)
		}
	}
	// The VERSION clause feeds the precise signature.
	var proc *plan.Node
	plan.Walk(root, func(n *plan.Node) {
		if n.Kind == plan.OpProcess {
			proc = n
		}
	})
	if proc.UDOCodeHash != "scrub-v2" {
		t.Errorf("code hash = %q", proc.UDOCodeHash)
	}
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	if _, err := ex.Run(root, "j", 0); err != nil {
		t.Fatal(err)
	}
}

func TestExpressionGrammar(t *testing.T) {
	cat := testCatalog(t)
	src := `
rows = EXTRACT FROM clicks;
f = FILTER rows WHERE (dur + 1) * 2 >= 100 AND NOT (user == 3) OR url != 'ua';
OUTPUT f TO o;
`
	c, err := Compile(src, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := c.Root()
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	if _, err := ex.Run(root, "j", 0); err != nil {
		t.Fatal(err)
	}
	// Negative literal and modulo.
	src2 := `
rows = EXTRACT FROM clicks;
f = FILTER rows WHERE user % 2 == 0 AND dur > -5;
OUTPUT f TO o;
`
	if _, err := Compile(src2, cat, nil); err != nil {
		t.Fatal(err)
	}
	// DATE literal.
	src3 := `
rows = EXTRACT FROM clicks;
f = FILTER rows WHERE day == DATE 17000;
OUTPUT f TO o;
`
	if _, err := Compile(src3, cat, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleOutputs(t *testing.T) {
	cat := testCatalog(t)
	src := `
rows = EXTRACT FROM clicks;
hot = FILTER rows WHERE dur > 200;
OUTPUT rows TO all;
OUTPUT hot TO hot_only;
`
	c, err := Compile(src, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Outputs) != 2 {
		t.Fatalf("outputs = %d", len(c.Outputs))
	}
	if _, err := c.Root(); err == nil {
		t.Error("Root() should reject multi-output scripts")
	}
}

func TestCompileErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no output", `rows = EXTRACT FROM clicks;`, "no OUTPUT"},
		{"unknown table", `r = EXTRACT FROM nope; OUTPUT r TO o;`, "unknown table"},
		{"unknown dataset", `f = FILTER ghost WHERE 1 == 1; OUTPUT f TO o;`, "unknown dataset"},
		{"unknown column", `r = EXTRACT FROM clicks; f = FILTER r WHERE bogus > 1; OUTPUT f TO o;`, "no column"},
		{"unbound param", `r = EXTRACT FROM clicks; f = FILTER r WHERE day == @d; OUTPUT f TO o;`, "unbound parameter"},
		{"redefined", `r = EXTRACT FROM clicks; r = EXTRACT FROM clicks; OUTPUT r TO o;`, "already defined"},
		{"missing semicolon", `r = EXTRACT FROM clicks OUTPUT r TO o;`, `expected ";"`},
		{"bad char", "r = EXTRACT FROM clicks; # ; OUTPUT r TO o;", "unexpected character"},
		{"unterminated string", `r = EXTRACT FROM clicks; f = FILTER r WHERE url == 'oops; OUTPUT f TO o;`, "unterminated"},
		{"empty aggregate", `r = EXTRACT FROM clicks; a = AGGREGATE r BY user; OUTPUT a TO o;`, "at least one aggregate"},
		{"union schema", `a = EXTRACT FROM clicks; b = EXTRACT FROM users; u = UNION a, b; OUTPUT u TO o;`, "different schemas"},
		{"empty param", `r = EXTRACT FROM clicks; f = FILTER r WHERE day == @; OUTPUT f TO o;`, "empty parameter"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, cat, nil)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
			// Errors carry positions.
			if se, ok := err.(*Error); ok {
				if se.Line < 1 || se.Col < 1 {
					t.Errorf("bad position %d:%d", se.Line, se.Col)
				}
			}
		})
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	cat := testCatalog(t)
	src := `
rows = extract from clicks;
f = filter rows where dur > 100;
output f to o;
`
	if _, err := Compile(src, cat, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScriptEquivalentToBuilderAPI(t *testing.T) {
	// A script and the equivalent builder-API plan must have identical
	// signatures — the script layer adds no semantic surface.
	cat := testCatalog(t)
	src := `
rows = EXTRACT FROM clicks;
f = FILTER rows WHERE dur > 50;
s = SHUFFLE f BY user INTO 4;
a = AGGREGATE s BY user SUM(dur);
OUTPUT a TO o;
`
	c, err := Compile(src, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := c.Root()

	tab, _ := cat.Get("clicks")
	manual := plan.Scan("clicks", tab.GUID, tab.Schema).
		Filter(expr.B(expr.OpGt, expr.C(3, "dur"), expr.Lit(data.Int(50)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}}).
		Output("o")
	if signature.Of(root) != signature.Of(manual) {
		t.Errorf("script plan differs from builder plan:\n%s\nvs\n%s",
			root.EncodeString(expr.Precise), manual.EncodeString(expr.Precise))
	}
}

func TestMoreGrammarCoverage(t *testing.T) {
	cat := testCatalog(t)
	// All aggregate functions, multi-column shuffle, ASC sort, multi-key
	// join, default shuffle width.
	src := `
rows = EXTRACT FROM clicks;
s = SHUFFLE rows BY user, day;
a = AGGREGATE s BY user SUM(dur), COUNT(url), MIN(dur), MAX(dur), AVG(dur);
b = AGGREGATE rows BY user, day SUM(dur);
j = JOIN a WITH b ON user == user;
o = SORT j BY user ASC, sum_dur DESC;
OUTPUT o TO out;
`
	c, err := Compile(src, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := c.Root()
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	if _, err := ex.Run(root, "j", 0); err != nil {
		t.Fatal(err)
	}
}

func TestMoreErrorPaths(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct{ name, src, want string }{
		{"output unknown", `OUTPUT ghost TO o;`, "unknown dataset"},
		{"output missing TO", `r = EXTRACT FROM clicks; OUTPUT r o;`, "expected TO"},
		{"bad shuffle count", `r = EXTRACT FROM clicks; s = SHUFFLE r BY user INTO x; OUTPUT s TO o;`, "partition count"},
		{"bad top count", `r = EXTRACT FROM clicks; s = TOP r many; OUTPUT s TO o;`, "row count"},
		{"join bad right col", `a = EXTRACT FROM clicks; b = EXTRACT FROM users; j = JOIN a WITH b ON user == nope; OUTPUT j TO o;`, "no column"},
		{"select no from", `r = EXTRACT FROM clicks; s = SELECT user; OUTPUT s TO o;`, "SELECT without FROM"},
		{"reduce missing by", `r = EXTRACT FROM clicks; s = REDUCE r USING f; OUTPUT s TO o;`, "expected BY"},
		{"process bad version", `r = EXTRACT FROM clicks; s = PROCESS r USING f VERSION 3; OUTPUT s TO o;`, "version string"},
		{"union single", `r = EXTRACT FROM clicks; u = UNION r; OUTPUT u TO o;`, "at least two"},
		{"keyword as op", `r = FROM clicks; OUTPUT r TO o;`, "unexpected keyword"},
		{"stray expr token", `r = EXTRACT FROM clicks; f = FILTER r WHERE ;; OUTPUT f TO o;`, "unexpected"},
		{"date needs number", `r = EXTRACT FROM clicks; f = FILTER r WHERE day == DATE x; OUTPUT f TO o;`, "day number"},
		{"not an operator", `r = 42; OUTPUT r TO o;`, "operator keyword"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, cat, nil)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestSelectComputedAndParenthesized(t *testing.T) {
	cat := testCatalog(t)
	src := `
rows = EXTRACT FROM clicks;
p = SELECT (dur + 1.0) * 2.0, user AS who FROM rows;
OUTPUT p TO o;
`
	c, err := Compile(src, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := c.Root()
	// Unnamed computed column gets a positional name.
	if root.Schema()[0].Name != "c0" || root.Schema()[1].Name != "who" {
		t.Errorf("schema = %s", root.Schema())
	}
}
