package plan

import (
	"bytes"
	"fmt"

	"cloudviews/internal/expr"
)

// Encode appends the canonical encoding of the subgraph rooted at n.
//
// In expr.Precise mode the encoding includes input GUIDs, recurring
// parameter values, and UDO code hashes — two subgraphs with equal precise
// encodings compute the same result. In expr.Normalized mode those
// recurring deltas are stripped, so recurring instances of the same script
// template encode identically (paper §3).
//
// OpViewScan encodes as the signature of the computation it replaced and
// OpMaterialize encodes as its child, so rewriting a plan to use or build
// views never changes the encoding of surrounding operators.
func (n *Node) Encode(w *bytes.Buffer, mode expr.Mode) {
	if n.Transparent() {
		// Transparent wrappers: a spooled or materialized computation is
		// the same computation.
		n.Children[0].Encode(w, mode)
		return
	}
	if n.Kind == OpExtract || n.Kind == OpViewScan {
		n.EncodeLocal(w, mode)
		return
	}
	n.EncodeLocal(w, mode)
	for _, c := range n.Children {
		w.WriteByte(' ')
		c.Encode(w, mode)
	}
	w.WriteByte(')')
}

// Transparent reports whether n is invisible to encodings and signatures:
// its computation is exactly its child's computation.
func (n *Node) Transparent() bool {
	return n.Kind == OpMaterialize || n.Kind == OpSpool
}

// EncodeLocal appends only the node-local portion of the canonical
// encoding: the operator token and its arguments, without the children.
// Leaf operators (Extract, ViewScan) emit complete encodings; for all
// other operators the caller is responsible for the closing parenthesis.
// The signature layer combines local encodings with child hashes to
// compute subgraph signatures in O(n) per plan.
func (n *Node) EncodeLocal(w *bytes.Buffer, mode expr.Mode) {
	switch n.Kind {
	case OpExtract:
		if mode == expr.Precise {
			fmt.Fprintf(w, "(extract %s @%s)", n.Table, n.GUID)
		} else {
			fmt.Fprintf(w, "(extract %s)", n.Table)
		}
		return
	case OpViewScan:
		if mode == expr.Precise {
			w.WriteString(n.ViewPreciseSig)
		} else {
			w.WriteString(n.ViewNormSig)
		}
		return
	}
	w.WriteByte('(')
	w.WriteString(opToken(n.Kind))
	switch n.Kind {
	case OpFilter:
		w.WriteByte(' ')
		n.Pred.Encode(w, mode)
	case OpProject:
		for _, e := range n.Exprs {
			w.WriteByte(' ')
			e.Encode(w, mode)
		}
	case OpHashJoin, OpMergeJoin:
		fmt.Fprintf(w, " %v %v", n.LeftKeys, n.RightKeys)
	case OpHashGbAgg, OpStreamGbAgg:
		fmt.Fprintf(w, " %v", n.GroupBy)
		for _, a := range n.Aggs {
			fmt.Fprintf(w, " (%s %d)", a.Fn, a.Col)
		}
	case OpSort:
		fmt.Fprintf(w, " %v %v", n.SortKeys, n.Desc)
	case OpExchange:
		fmt.Fprintf(w, " %s %v %d", n.Part.Kind, n.Part.Cols, n.Part.Count)
	case OpTop:
		fmt.Fprintf(w, " %d", n.N)
	case OpProcess, OpReduce:
		if mode == expr.Precise {
			fmt.Fprintf(w, " %s #%s", n.UDOName, n.UDOCodeHash)
		} else {
			fmt.Fprintf(w, " %s", n.UDOName)
		}
		if n.Kind == OpReduce {
			fmt.Fprintf(w, " %v", n.GroupBy)
		}
	case OpOutput:
		fmt.Fprintf(w, " %s", n.OutputName)
	}
}

// opToken returns the stable token used in canonical encodings. It is
// decoupled from OpKind.String so renaming display strings can never
// silently change every signature in a workload repository.
func opToken(k OpKind) string {
	switch k {
	case OpFilter:
		return "filter"
	case OpProject:
		return "project"
	case OpHashJoin:
		return "hashjoin"
	case OpMergeJoin:
		return "mergejoin"
	case OpHashGbAgg:
		return "hashagg"
	case OpStreamGbAgg:
		return "streamagg"
	case OpSort:
		return "sort"
	case OpExchange:
		return "exchange"
	case OpUnionAll:
		return "unionall"
	case OpTop:
		return "top"
	case OpProcess:
		return "process"
	case OpReduce:
		return "reduce"
	case OpOutput:
		return "output"
	default:
		return fmt.Sprintf("op%d", int(k))
	}
}

// EncodeString returns the canonical encoding of the subgraph at n.
func (n *Node) EncodeString(mode expr.Mode) string {
	var b bytes.Buffer
	n.Encode(&b, mode)
	return b.String()
}
