package plan

import (
	"fmt"
	"strconv"

	"cloudviews/internal/expr"
)

// AppendEncode appends the canonical encoding of the subgraph rooted at n
// to dst and returns the extended slice.
//
// In expr.Precise mode the encoding includes input GUIDs, recurring
// parameter values, and UDO code hashes — two subgraphs with equal precise
// encodings compute the same result. In expr.Normalized mode those
// recurring deltas are stripped, so recurring instances of the same script
// template encode identically (paper §3).
//
// OpViewScan encodes as the signature of the computation it replaced and
// OpMaterialize encodes as its child, so rewriting a plan to use or build
// views never changes the encoding of surrounding operators.
func (n *Node) AppendEncode(dst []byte, mode expr.Mode) []byte {
	if n.Transparent() {
		// Transparent wrappers: a spooled or materialized computation is
		// the same computation.
		return n.Children[0].AppendEncode(dst, mode)
	}
	if n.Kind == OpExtract || n.Kind == OpViewScan {
		return n.AppendLocal(dst, mode)
	}
	dst = n.AppendLocal(dst, mode)
	for _, c := range n.Children {
		dst = append(dst, ' ')
		dst = c.AppendEncode(dst, mode)
	}
	return append(dst, ')')
}

// Transparent reports whether n is invisible to encodings and signatures:
// its computation is exactly its child's computation.
func (n *Node) Transparent() bool {
	return n.Kind == OpMaterialize || n.Kind == OpSpool
}

// AppendLocal appends only the node-local portion of the canonical
// encoding: the operator token and its arguments, without the children.
// Leaf operators (Extract, ViewScan) emit complete encodings; for all
// other operators the caller is responsible for the closing parenthesis.
// The signature layer combines local encodings with child hashes to
// compute subgraph signatures in O(n) per plan; it is fmt-free and
// allocation-free when dst has capacity.
func (n *Node) AppendLocal(dst []byte, mode expr.Mode) []byte {
	switch n.Kind {
	case OpExtract:
		dst = append(dst, "(extract "...)
		dst = append(dst, n.Table...)
		if mode == expr.Precise {
			dst = append(dst, " @"...)
			dst = append(dst, n.GUID...)
		}
		return append(dst, ')')
	case OpViewScan:
		if mode == expr.Precise {
			return append(dst, n.ViewPreciseSig...)
		}
		return append(dst, n.ViewNormSig...)
	}
	dst = append(dst, '(')
	dst = append(dst, opToken(n.Kind)...)
	switch n.Kind {
	case OpFilter:
		dst = append(dst, ' ')
		dst = n.Pred.AppendTo(dst, mode)
	case OpProject:
		for _, e := range n.Exprs {
			dst = append(dst, ' ')
			dst = e.AppendTo(dst, mode)
		}
	case OpHashJoin, OpMergeJoin:
		dst = append(dst, ' ')
		dst = appendInts(dst, n.LeftKeys)
		dst = append(dst, ' ')
		dst = appendInts(dst, n.RightKeys)
	case OpHashGbAgg, OpStreamGbAgg:
		dst = append(dst, ' ')
		dst = appendInts(dst, n.GroupBy)
		for _, a := range n.Aggs {
			dst = append(dst, " ("...)
			dst = append(dst, a.Fn.String()...)
			dst = append(dst, ' ')
			dst = strconv.AppendInt(dst, int64(a.Col), 10)
			dst = append(dst, ')')
		}
	case OpSort:
		dst = append(dst, ' ')
		dst = appendInts(dst, n.SortKeys)
		dst = append(dst, ' ')
		dst = appendBools(dst, n.Desc)
	case OpExchange:
		dst = append(dst, ' ')
		dst = append(dst, n.Part.Kind.String()...)
		dst = append(dst, ' ')
		dst = appendInts(dst, n.Part.Cols)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(n.Part.Count), 10)
	case OpTop:
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, n.N, 10)
	case OpProcess, OpReduce:
		dst = append(dst, ' ')
		dst = append(dst, n.UDOName...)
		if mode == expr.Precise {
			dst = append(dst, " #"...)
			dst = append(dst, n.UDOCodeHash...)
		}
		if n.Kind == OpReduce {
			dst = append(dst, ' ')
			dst = appendInts(dst, n.GroupBy)
		}
	case OpOutput:
		dst = append(dst, ' ')
		dst = append(dst, n.OutputName...)
	}
	return dst
}

// appendInts appends xs in fmt's %v rendering: "[1 2 3]", "[]" when empty.
func appendInts(dst []byte, xs []int) []byte {
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendInt(dst, int64(x), 10)
	}
	return append(dst, ']')
}

// appendBools appends xs in fmt's %v rendering: "[true false]".
func appendBools(dst []byte, xs []bool) []byte {
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		if x {
			dst = append(dst, "true"...)
		} else {
			dst = append(dst, "false"...)
		}
	}
	return append(dst, ']')
}

// opToken returns the stable token used in canonical encodings. It is
// decoupled from OpKind.String so renaming display strings can never
// silently change every signature in a workload repository.
func opToken(k OpKind) string {
	switch k {
	case OpFilter:
		return "filter"
	case OpProject:
		return "project"
	case OpHashJoin:
		return "hashjoin"
	case OpMergeJoin:
		return "mergejoin"
	case OpHashGbAgg:
		return "hashagg"
	case OpStreamGbAgg:
		return "streamagg"
	case OpSort:
		return "sort"
	case OpExchange:
		return "exchange"
	case OpUnionAll:
		return "unionall"
	case OpTop:
		return "top"
	case OpProcess:
		return "process"
	case OpReduce:
		return "reduce"
	case OpOutput:
		return "output"
	default:
		return fmt.Sprintf("op%d", int(k))
	}
}

// EncodeString returns the canonical encoding of the subgraph at n.
func (n *Node) EncodeString(mode expr.Mode) string {
	return string(n.AppendEncode(nil, mode))
}
