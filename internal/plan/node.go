// Package plan defines the logical operator DAGs that represent SCOPE-style
// jobs: scans, filters, projections, joins, aggregations, sorts, exchanges
// (shuffles), user-defined operators, and outputs.
//
// A plan is the unit the whole system operates on: signatures hash plan
// subgraphs, the analyzer enumerates them, the optimizer rewrites them to
// read from or write to materialized views, and the executor runs them.
package plan

import (
	"fmt"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
)

// OpKind identifies the operator type of a node. The names mirror the
// operator breakdown of paper Figure 4(a).
type OpKind int

// Operator kinds.
const (
	OpExtract OpKind = iota // leaf scan of a base table (SCOPE "Extract"/"Range")
	OpFilter
	OpProject // SCOPE "ComputeScalar"/"RestrRemap"
	OpHashJoin
	OpMergeJoin
	OpHashGbAgg
	OpStreamGbAgg
	OpSort
	OpExchange // shuffle
	OpUnionAll
	OpTop
	OpProcess // row-wise user-defined operator
	OpReduce  // group-wise user-defined operator
	OpSpool   // shared subtree marker (DAG fan-out point)
	OpOutput  // job output sink
	// OpViewScan reads a materialized view in a rewritten plan. It encodes
	// as the signature of the computation it replaces, so signatures of
	// ancestor operators are unaffected by the rewrite.
	OpViewScan
	// OpMaterialize tees its child's rows into a materialized view while
	// passing them through unchanged ("spool and materialize", paper §4).
	// It is transparent to signatures.
	OpMaterialize
)

var opKindNames = [...]string{
	"Extract", "Filter", "Project", "HashJoin", "MergeJoin", "HashGbAgg",
	"StreamGbAgg", "Sort", "Exchange", "UnionAll", "Top", "Process",
	"Reduce", "Spool", "Output", "ViewScan", "Materialize",
}

// String returns the operator name.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("Op(%d)", int(k))
}

// AggFn enumerates aggregate functions.
type AggFn int

// Aggregate functions.
const (
	AggSum AggFn = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

var aggNames = [...]string{"sum", "count", "min", "max", "avg"}

// String returns the aggregate function name.
func (a AggFn) String() string {
	if int(a) < len(aggNames) {
		return aggNames[a]
	}
	return fmt.Sprintf("agg(%d)", int(a))
}

// AggSpec is one aggregate in a group-by: Fn applied to input column Col.
type AggSpec struct {
	Fn  AggFn
	Col int
}

// PartitionKind classifies how an operator's output is partitioned.
type PartitionKind int

// Partitioning kinds.
const (
	PartNone       PartitionKind = iota // unknown / arbitrary
	PartHash                            // hash-partitioned on Cols
	PartRoundRobin                      // balanced, no key affinity
	PartSingleton                       // gathered to a single partition
	// PartRange splits on key ranges (equi-depth): partition i holds keys
	// below partition i+1's, and rows are sorted within each partition —
	// the layout SCOPE's parallel sorts produce and one of the physical
	// designs the analyzer can elect for views (§5.3).
	PartRange
)

var partNames = [...]string{"none", "hash", "roundrobin", "singleton", "range"}

// String returns the partitioning kind name.
func (p PartitionKind) String() string {
	if int(p) < len(partNames) {
		return partNames[p]
	}
	return fmt.Sprintf("part(%d)", int(p))
}

// Partitioning is an output partitioning property: kind, key columns, and
// partition count. It is both a derived property (what an operator emits)
// and a required property (what Exchange enforces).
type Partitioning struct {
	Kind  PartitionKind
	Cols  []int
	Count int
}

// SortOrder is an output ordering property.
type SortOrder struct {
	Cols []int
	Desc []bool
}

// PhysicalProps bundles the physical design of an operator output — the
// properties paper §5.3 mines for view physical design.
type PhysicalProps struct {
	Part Partitioning
	Sort SortOrder
}

// Node is one operator in a plan DAG. Exactly the fields relevant to Kind
// are populated; the rest stay zero. Children are inputs in operator order
// (join: [left, right]).
type Node struct {
	Kind     OpKind
	Children []*Node

	// OpExtract
	Table       string      // logical (normalized) input name
	GUID        string      // concrete data version (precise)
	TableSchema data.Schema // schema of the base table

	// OpFilter
	Pred expr.Expr

	// OpProject
	Exprs []expr.Expr
	Names []string

	// OpHashJoin / OpMergeJoin
	LeftKeys, RightKeys []int

	// OpHashGbAgg / OpStreamGbAgg / OpReduce (GroupBy only)
	GroupBy []int
	Aggs    []AggSpec

	// OpSort
	SortKeys []int
	Desc     []bool

	// OpExchange
	Part Partitioning

	// OpTop
	N int64

	// OpProcess / OpReduce
	UDOName     string
	UDOCodeHash string

	// OpOutput
	OutputName string

	// OpViewScan
	ViewPath       string
	ViewSchema     data.Schema
	ViewPreciseSig string
	ViewNormSig    string
	// ViewRows and ViewBytes are the *actual* statistics of the
	// materialized view, injected by the optimizer when it rewrites a
	// plan to read the view. The estimator propagates them up the tree,
	// which is how view reuse improves cost estimates (§6.3, §8).
	ViewRows  int64
	ViewBytes int64

	// OpMaterialize
	MatPath       string
	MatPreciseSig string
	MatNormSig    string
	MatProps      PhysicalProps // physical design enforced for the view

	schema data.Schema // memoized derived schema
}

// Child returns the i-th input.
func (n *Node) Child(i int) *Node { return n.Children[i] }

// Schema derives (and memoizes) the output schema of the operator.
func (n *Node) Schema() data.Schema {
	if n.schema != nil {
		return n.schema
	}
	n.schema = n.deriveSchema()
	return n.schema
}

func (n *Node) deriveSchema() data.Schema {
	switch n.Kind {
	case OpExtract:
		return n.TableSchema
	case OpViewScan:
		return n.ViewSchema
	case OpFilter, OpSort, OpExchange, OpTop, OpSpool, OpOutput, OpMaterialize:
		return n.Children[0].Schema()
	case OpUnionAll:
		return n.Children[0].Schema()
	case OpProject:
		in := n.Children[0].Schema()
		out := make(data.Schema, len(n.Exprs))
		for i, e := range n.Exprs {
			name := ""
			if i < len(n.Names) {
				name = n.Names[i]
			}
			if name == "" {
				name = fmt.Sprintf("c%d", i)
			}
			out[i] = data.Column{Name: name, Kind: e.ResultKind(in)}
		}
		return out
	case OpHashJoin, OpMergeJoin:
		return n.Children[0].Schema().Concat(n.Children[1].Schema())
	case OpHashGbAgg, OpStreamGbAgg:
		in := n.Children[0].Schema()
		out := make(data.Schema, 0, len(n.GroupBy)+len(n.Aggs))
		for _, g := range n.GroupBy {
			out = append(out, in[g])
		}
		for _, a := range n.Aggs {
			kind := data.KindInt
			switch a.Fn {
			case AggAvg:
				kind = data.KindFloat
			case AggCount:
				kind = data.KindInt
			default:
				kind = in[a.Col].Kind
				if kind == data.KindDate || kind == data.KindBool {
					kind = data.KindInt
				}
			}
			out = append(out, data.Column{
				Name: fmt.Sprintf("%s_%s", a.Fn, in[a.Col].Name),
				Kind: kind,
			})
		}
		return out
	case OpProcess, OpReduce:
		in := n.Children[0].Schema()
		return in.Concat(data.Schema{{Name: "udo_" + n.UDOName, Kind: data.KindInt}})
	default:
		return nil
	}
}

// String renders the operator with its salient argument for display.
func (n *Node) String() string {
	switch n.Kind {
	case OpExtract:
		return fmt.Sprintf("Extract(%s@%s)", n.Table, n.GUID)
	case OpFilter:
		return fmt.Sprintf("Filter(%s)", n.Pred)
	case OpProject:
		return fmt.Sprintf("Project(%d exprs)", len(n.Exprs))
	case OpHashJoin, OpMergeJoin:
		return fmt.Sprintf("%s(%v=%v)", n.Kind, n.LeftKeys, n.RightKeys)
	case OpHashGbAgg, OpStreamGbAgg:
		return fmt.Sprintf("%s(by %v, %d aggs)", n.Kind, n.GroupBy, len(n.Aggs))
	case OpSort:
		return fmt.Sprintf("Sort(%v)", n.SortKeys)
	case OpExchange:
		return fmt.Sprintf("Exchange(%s %v x%d)", n.Part.Kind, n.Part.Cols, n.Part.Count)
	case OpTop:
		return fmt.Sprintf("Top(%d)", n.N)
	case OpProcess, OpReduce:
		return fmt.Sprintf("%s(%s)", n.Kind, n.UDOName)
	case OpOutput:
		return fmt.Sprintf("Output(%s)", n.OutputName)
	case OpViewScan:
		return fmt.Sprintf("ViewScan(%s)", n.ViewPath)
	case OpMaterialize:
		return fmt.Sprintf("Materialize(%s)", n.MatPath)
	default:
		return n.Kind.String()
	}
}
