package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
)

// randomDAG builds a random plan, sometimes with a shared (spooled)
// subtree, covering every operator kind the generators emit.
func randomDAG(r *rand.Rand) *Node {
	schema := clicksSchema()
	n := Scan("t", []string{"g1", "g2"}[r.Intn(2)], schema)
	depth := 1 + r.Intn(5)
	for i := 0; i < depth; i++ {
		switch r.Intn(9) {
		case 0:
			n = n.Filter(expr.B(expr.OpGt, expr.C(0, "user"), expr.Lit(data.Int(r.Int63n(10)))))
		case 1:
			n = n.ShuffleHash([]int{0}, 1+r.Intn(8))
		case 2:
			n = n.RangePartition([]int{0}, 1+r.Intn(4))
		case 3:
			n = n.Sort([]int{r.Intn(2)}, []bool{r.Intn(2) == 0})
		case 4:
			n = n.HashAgg([]int{0}, []AggSpec{{Fn: AggFn(r.Intn(5)), Col: r.Intn(2)}})
		case 5:
			n = n.Process("udo", []string{"v1", "v2"}[r.Intn(2)])
		case 6:
			n = n.Top(int64(1 + r.Intn(50)))
		case 7:
			// Shared subtree: spool feeding a self-join.
			sp := n.Spool()
			n = sp.HashJoin(sp, []int{0}, []int{0})
		default:
			n = n.ProjectCols(0, 1)
		}
	}
	return n.Output("o")
}

func TestCloneAndRewritePreserveEncodingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomDAG(r)
		pre := p.EncodeString(expr.Precise)
		norm := p.EncodeString(expr.Normalized)

		c := Clone(p)
		if c.EncodeString(expr.Precise) != pre || c.EncodeString(expr.Normalized) != norm {
			return false
		}
		// Identity rewrite is a no-op on encodings and node counts.
		rw := Rewrite(p, func(n *Node) *Node { return n })
		if rw.EncodeString(expr.Precise) != pre || Count(rw) != Count(p) {
			return false
		}
		// The original is untouched by both.
		return p.EncodeString(expr.Precise) == pre
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemaStableUnderCloneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomDAG(r)
		c := Clone(p)
		return p.Schema().String() == c.Schema().String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDerivePropsDeterministicProperty(t *testing.T) {
	// DeriveProps is a pure function of structure: equal plans derive
	// equal properties, and deriving twice agrees.
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		a, b := randomDAG(r1), randomDAG(r2)
		pa1 := DeriveProps(a)
		pa2 := DeriveProps(a)
		pb := DeriveProps(b)
		return propsEqual(pa1, pa2) && propsEqual(pa1, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func propsEqual(a, b PhysicalProps) bool {
	if a.Part.Kind != b.Part.Kind || a.Part.Count != b.Part.Count {
		return false
	}
	if !intsEqual(a.Part.Cols, b.Part.Cols) || !intsEqual(a.Sort.Cols, b.Sort.Cols) {
		return false
	}
	if len(a.Sort.Desc) != len(b.Sort.Desc) {
		return false
	}
	for i := range a.Sort.Desc {
		if a.Sort.Desc[i] != b.Sort.Desc[i] {
			return false
		}
	}
	return true
}

func TestWalkVisitsEachNodeOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomDAG(r)
		seen := map[*Node]int{}
		Walk(p, func(n *Node) { seen[n]++ })
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return len(seen) == Count(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
