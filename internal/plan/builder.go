package plan

import (
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
)

// Scan builds a base-table leaf. table is the logical name shared across
// recurring instances; guid identifies the concrete data version.
func Scan(table, guid string, schema data.Schema) *Node {
	return &Node{Kind: OpExtract, Table: table, GUID: guid, TableSchema: schema}
}

// Filter builds a selection over n.
func (n *Node) Filter(pred expr.Expr) *Node {
	return &Node{Kind: OpFilter, Children: []*Node{n}, Pred: pred}
}

// Project builds a projection; names and exprs are parallel.
func (n *Node) Project(names []string, exprs []expr.Expr) *Node {
	return &Node{Kind: OpProject, Children: []*Node{n}, Names: names, Exprs: exprs}
}

// ProjectCols projects a subset of input columns by index, preserving names.
func (n *Node) ProjectCols(cols ...int) *Node {
	in := n.Schema()
	names := make([]string, len(cols))
	exprs := make([]expr.Expr, len(cols))
	for i, c := range cols {
		names[i] = in[c].Name
		exprs[i] = expr.C(c, in[c].Name)
	}
	return n.Project(names, exprs)
}

// HashJoin builds an inner hash join of n (left) with right on the key
// column indexes.
func (n *Node) HashJoin(right *Node, leftKeys, rightKeys []int) *Node {
	return &Node{Kind: OpHashJoin, Children: []*Node{n, right},
		LeftKeys: leftKeys, RightKeys: rightKeys}
}

// MergeJoin builds an inner merge join (inputs assumed sorted on the keys).
func (n *Node) MergeJoin(right *Node, leftKeys, rightKeys []int) *Node {
	return &Node{Kind: OpMergeJoin, Children: []*Node{n, right},
		LeftKeys: leftKeys, RightKeys: rightKeys}
}

// HashAgg builds a hash group-by aggregation.
func (n *Node) HashAgg(groupBy []int, aggs []AggSpec) *Node {
	return &Node{Kind: OpHashGbAgg, Children: []*Node{n}, GroupBy: groupBy, Aggs: aggs}
}

// StreamAgg builds a streaming group-by aggregation (input assumed sorted
// on the group columns).
func (n *Node) StreamAgg(groupBy []int, aggs []AggSpec) *Node {
	return &Node{Kind: OpStreamGbAgg, Children: []*Node{n}, GroupBy: groupBy, Aggs: aggs}
}

// Sort builds a total sort on the key columns.
func (n *Node) Sort(keys []int, desc []bool) *Node {
	return &Node{Kind: OpSort, Children: []*Node{n}, SortKeys: keys, Desc: desc}
}

// Exchange builds a shuffle that enforces the given partitioning.
func (n *Node) Exchange(part Partitioning) *Node {
	return &Node{Kind: OpExchange, Children: []*Node{n}, Part: part}
}

// ShuffleHash is shorthand for a hash repartitioning exchange.
func (n *Node) ShuffleHash(cols []int, count int) *Node {
	return n.Exchange(Partitioning{Kind: PartHash, Cols: cols, Count: count})
}

// Gather is shorthand for an exchange that merges to a single partition.
func (n *Node) Gather() *Node {
	return n.Exchange(Partitioning{Kind: PartSingleton, Count: 1})
}

// RangePartition is shorthand for a range-partitioning exchange: the
// parallel-sort primitive. Output partitions cover disjoint ascending key
// ranges and each partition is sorted on cols.
func (n *Node) RangePartition(cols []int, count int) *Node {
	return n.Exchange(Partitioning{Kind: PartRange, Cols: cols, Count: count})
}

// UnionAll concatenates n with the other inputs.
func (n *Node) UnionAll(others ...*Node) *Node {
	return &Node{Kind: OpUnionAll, Children: append([]*Node{n}, others...)}
}

// Top keeps the first k rows (after any enclosing sort).
func (n *Node) Top(k int64) *Node {
	return &Node{Kind: OpTop, Children: []*Node{n}, N: k}
}

// Process applies a row-wise user-defined operator, appending one column.
func (n *Node) Process(udoName, codeHash string) *Node {
	return &Node{Kind: OpProcess, Children: []*Node{n}, UDOName: udoName, UDOCodeHash: codeHash}
}

// Reduce applies a group-wise user-defined operator on the group columns,
// appending one column.
func (n *Node) Reduce(udoName, codeHash string, groupBy []int) *Node {
	return &Node{Kind: OpReduce, Children: []*Node{n}, UDOName: udoName,
		UDOCodeHash: codeHash, GroupBy: groupBy}
}

// Spool marks a shared subtree that feeds multiple consumers.
func (n *Node) Spool() *Node {
	return &Node{Kind: OpSpool, Children: []*Node{n}}
}

// Output terminates the plan with a named sink.
func (n *Node) Output(name string) *Node {
	return &Node{Kind: OpOutput, Children: []*Node{n}, OutputName: name}
}

// ViewScan builds a leaf that reads a materialized view.
func ViewScan(path string, schema data.Schema, preciseSig, normSig string) *Node {
	return &Node{Kind: OpViewScan, ViewPath: path, ViewSchema: schema,
		ViewPreciseSig: preciseSig, ViewNormSig: normSig}
}

// Materialize wraps n so its output is also written to a view at path with
// the given physical design.
func (n *Node) Materialize(path, preciseSig, normSig string, props PhysicalProps) *Node {
	return &Node{Kind: OpMaterialize, Children: []*Node{n}, MatPath: path,
		MatPreciseSig: preciseSig, MatNormSig: normSig, MatProps: props}
}
