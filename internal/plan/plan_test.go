package plan

import (
	"testing"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
)

func clicksSchema() data.Schema {
	return data.Schema{
		{Name: "user", Kind: data.KindInt},
		{Name: "url", Kind: data.KindString},
		{Name: "ts", Kind: data.KindDate},
		{Name: "dur", Kind: data.KindFloat},
	}
}

func usersSchema() data.Schema {
	return data.Schema{
		{Name: "id", Kind: data.KindInt},
		{Name: "region", Kind: data.KindString},
	}
}

// samplePlan builds a representative pipeline:
// scan -> filter(date param) -> shuffle(user) -> agg -> join users -> output.
func samplePlan(guid string, day int64) *Node {
	clicks := Scan("clicks", guid, clicksSchema()).
		Filter(expr.Eq(expr.C(2, "ts"), expr.P("day", data.Date(day)))).
		ShuffleHash([]int{0}, 8).
		HashAgg([]int{0}, []AggSpec{{Fn: AggSum, Col: 3}, {Fn: AggCount, Col: 1}})
	users := Scan("users", "uguid", usersSchema()).ShuffleHash([]int{0}, 8)
	return clicks.HashJoin(users, []int{0}, []int{0}).Output("daily_report")
}

func TestSchemaDerivation(t *testing.T) {
	s := Scan("clicks", "g", clicksSchema())
	if got := s.Schema().String(); got != "user:int, url:string, ts:date, dur:float" {
		t.Errorf("scan schema = %q", got)
	}
	f := s.Filter(expr.Eq(expr.C(0, "user"), expr.Lit(data.Int(1))))
	if len(f.Schema()) != 4 {
		t.Error("filter should preserve schema")
	}
	p := s.Project([]string{"u2", "l"}, []expr.Expr{
		expr.B(expr.OpMul, expr.C(0, "user"), expr.Lit(data.Int(2))),
		expr.F("len", expr.C(1, "url")),
	})
	if got := p.Schema().String(); got != "u2:int, l:int" {
		t.Errorf("project schema = %q", got)
	}
	agg := s.HashAgg([]int{0}, []AggSpec{{Fn: AggSum, Col: 3}, {Fn: AggAvg, Col: 3}, {Fn: AggCount, Col: 1}, {Fn: AggMax, Col: 2}})
	if got := agg.Schema().String(); got != "user:int, sum_dur:float, avg_dur:float, count_url:int, max_ts:int" {
		t.Errorf("agg schema = %q", got)
	}
	j := s.HashJoin(Scan("users", "g2", usersSchema()), []int{0}, []int{0})
	if len(j.Schema()) != 6 {
		t.Errorf("join schema has %d cols", len(j.Schema()))
	}
	pr := s.Process("scrub", "h1")
	if got := pr.Schema()[len(pr.Schema())-1].Name; got != "udo_scrub" {
		t.Errorf("process appended col = %q", got)
	}
	pc := s.ProjectCols(1, 0)
	if got := pc.Schema().String(); got != "url:string, user:int" {
		t.Errorf("ProjectCols schema = %q", got)
	}
}

func TestEncodingPreciseVsNormalized(t *testing.T) {
	// Two recurring instances: same template, new GUID and date.
	day1 := samplePlan("guid-jan1", 17001)
	day2 := samplePlan("guid-jan2", 17002)
	if day1.EncodeString(expr.Normalized) != day2.EncodeString(expr.Normalized) {
		t.Error("recurring instances must have equal normalized encodings")
	}
	if day1.EncodeString(expr.Precise) == day2.EncodeString(expr.Precise) {
		t.Error("different instances must have different precise encodings")
	}
	// Same instance: precise encodings equal.
	if samplePlan("g", 17001).EncodeString(expr.Precise) != samplePlan("g", 17001).EncodeString(expr.Precise) {
		t.Error("identical plans must encode identically")
	}
	// Structural change shows in both modes.
	other := samplePlan("guid-jan1", 17001)
	mutated := Rewrite(other, func(n *Node) *Node {
		if n.Kind == OpHashGbAgg {
			n.GroupBy = []int{1}
		}
		return n
	})
	if mutated.EncodeString(expr.Normalized) == day1.EncodeString(expr.Normalized) {
		t.Error("structural change must alter normalized encoding")
	}
}

func TestEncodingUDOCodeHash(t *testing.T) {
	a := Scan("t", "g", clicksSchema()).Process("clean", "hash_v1").Output("o")
	b := Scan("t", "g", clicksSchema()).Process("clean", "hash_v2").Output("o")
	if a.EncodeString(expr.Normalized) != b.EncodeString(expr.Normalized) {
		t.Error("UDO code hash must not affect normalized encoding")
	}
	if a.EncodeString(expr.Precise) == b.EncodeString(expr.Precise) {
		t.Error("UDO code hash must affect precise encoding")
	}
}

func TestViewScanAndMaterializeTransparency(t *testing.T) {
	base := Scan("clicks", "g", clicksSchema()).Filter(
		expr.B(expr.OpGt, expr.C(3, "dur"), expr.Lit(data.Float(1))))
	pre := base.EncodeString(expr.Precise)
	norm := base.EncodeString(expr.Normalized)

	mat := base.Materialize("/views/v1", pre, norm, PhysicalProps{})
	if mat.EncodeString(expr.Precise) != pre {
		t.Error("Materialize must be signature-transparent")
	}
	vs := ViewScan("/views/v1", base.Schema(), pre, norm)
	if vs.EncodeString(expr.Precise) != pre {
		t.Error("ViewScan must encode as the replaced computation (precise)")
	}
	if vs.EncodeString(expr.Normalized) != norm {
		t.Error("ViewScan must encode as the replaced computation (normalized)")
	}
	// An ancestor over the view scan encodes identically to the original.
	origTop := base.Sort([]int{0}, nil)
	rewrTop := (&Node{Kind: OpSort, Children: []*Node{vs}, SortKeys: []int{0}}).EncodeString(expr.Precise)
	if origTop.EncodeString(expr.Precise) != rewrTop {
		t.Error("rewrite changed ancestor encoding")
	}
	// Spool is also transparent.
	if base.Spool().EncodeString(expr.Precise) != pre {
		t.Error("Spool must be signature-transparent")
	}
}

func TestWalkCloneRewriteSharing(t *testing.T) {
	shared := Scan("t", "g", usersSchema()).Filter(
		expr.B(expr.OpGt, expr.C(0, "id"), expr.Lit(data.Int(0)))).Spool()
	left := shared.HashAgg([]int{0}, []AggSpec{{Fn: AggCount, Col: 1}})
	top := left.HashJoin(shared, []int{0}, []int{0}).Output("o")

	// Walk visits shared nodes once: scan, filter, spool, agg, join, output = 6.
	if got := Count(top); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}

	cl := Clone(top)
	if cl.EncodeString(expr.Precise) != top.EncodeString(expr.Precise) {
		t.Error("clone changed encoding")
	}
	// Sharing preserved in clone: the spool node reached via both paths is
	// the same pointer.
	join := cl.Children[0]
	if join.Children[0].Children[0] != join.Children[1] {
		t.Error("clone broke DAG sharing")
	}
	// Mutating the clone must not affect the original.
	cl.Children[0].LeftKeys = []int{9}
	if top.Children[0].LeftKeys[0] != 0 {
		t.Error("clone aliases original")
	}

	// Rewrite replaces each distinct node once.
	calls := 0
	re := Rewrite(top, func(n *Node) *Node {
		calls++
		return n
	})
	if calls != 6 {
		t.Errorf("Rewrite visited %d nodes, want 6", calls)
	}
	if re.EncodeString(expr.Precise) != top.EncodeString(expr.Precise) {
		t.Error("identity rewrite changed plan")
	}
}

func TestInputsAndGUIDs(t *testing.T) {
	p := samplePlan("g-clicks", 17001)
	in := Inputs(p)
	if len(in) != 2 || in[0] != "clicks" || in[1] != "users" {
		t.Errorf("Inputs = %v", in)
	}
	gd := InputGUIDs(p)
	if gd["clicks"] != "g-clicks" || gd["users"] != "uguid" {
		t.Errorf("InputGUIDs = %v", gd)
	}
}

func TestDerivePropsExchangeSortFilter(t *testing.T) {
	s := Scan("t", "g", clicksSchema())
	if p := DeriveProps(s); p.Part.Kind != PartNone {
		t.Errorf("scan props = %+v", p)
	}
	ex := s.ShuffleHash([]int{0}, 16)
	p := DeriveProps(ex)
	if p.Part.Kind != PartHash || p.Part.Cols[0] != 0 || p.Part.Count != 16 {
		t.Errorf("exchange props = %+v", p)
	}
	srt := ex.Sort([]int{2}, []bool{true})
	p = DeriveProps(srt)
	if p.Part.Kind != PartHash {
		t.Error("sort should preserve partitioning")
	}
	if len(p.Sort.Cols) != 1 || p.Sort.Cols[0] != 2 || !p.Sort.Desc[0] {
		t.Errorf("sort order = %+v", p.Sort)
	}
	// Filter preserves both.
	f := srt.Filter(expr.B(expr.OpGt, expr.C(0, "user"), expr.Lit(data.Int(0))))
	p2 := DeriveProps(f)
	if p2.Part.Kind != PartHash || len(p2.Sort.Cols) != 1 {
		t.Errorf("filter props = %+v", p2)
	}
	// A second exchange destroys the sort.
	ex2 := srt.ShuffleHash([]int{1}, 4)
	p3 := DeriveProps(ex2)
	if len(p3.Sort.Cols) != 0 {
		t.Error("exchange should destroy sort order")
	}
}

func TestDerivePropsProjectRemap(t *testing.T) {
	s := Scan("t", "g", clicksSchema()).ShuffleHash([]int{0}, 8)
	// Project keeps user (as col 1) and url (as col 0): partitioning on
	// user remaps to output col 1.
	pr := s.ProjectCols(1, 0)
	p := DeriveProps(pr)
	if p.Part.Kind != PartHash || len(p.Part.Cols) != 1 || p.Part.Cols[0] != 1 {
		t.Errorf("project remap props = %+v", p)
	}
	// Projecting away the partition column loses the property.
	pr2 := s.ProjectCols(1, 2)
	if p2 := DeriveProps(pr2); p2.Part.Kind != PartNone {
		t.Errorf("dropped partition col should clear props, got %+v", p2)
	}
}

func TestDerivePropsAggAndJoin(t *testing.T) {
	s := Scan("t", "g", clicksSchema()).ShuffleHash([]int{0}, 8)
	agg := s.HashAgg([]int{0}, []AggSpec{{Fn: AggSum, Col: 3}})
	p := DeriveProps(agg)
	if p.Part.Kind != PartHash || p.Part.Cols[0] != 0 {
		t.Errorf("agg props = %+v", p)
	}
	right := Scan("u", "g2", usersSchema()).ShuffleHash([]int{0}, 8)
	join := s.HashJoin(right, []int{0}, []int{0})
	pj := DeriveProps(join)
	if pj.Part.Kind != PartHash || pj.Part.Cols[0] != 0 {
		t.Errorf("join props = %+v", pj)
	}
	// Join on non-partition keys: no derived partitioning.
	join2 := s.HashJoin(right, []int{1}, []int{1})
	if pj2 := DeriveProps(join2); pj2.Part.Kind != PartNone {
		t.Errorf("join2 props = %+v", pj2)
	}
}

func TestStreamAggPreservesSort(t *testing.T) {
	s := Scan("t", "g", clicksSchema()).Gather().Sort([]int{0}, nil)
	agg := s.StreamAgg([]int{0}, []AggSpec{{Fn: AggCount, Col: 1}})
	p := DeriveProps(agg)
	if len(p.Sort.Cols) != 1 || p.Sort.Cols[0] != 0 {
		t.Errorf("stream agg sort props = %+v", p)
	}
	if p.Part.Kind != PartSingleton {
		t.Errorf("stream agg part props = %+v", p)
	}
}

func TestNodeStrings(t *testing.T) {
	p := samplePlan("g", 17001)
	for _, n := range Nodes(p) {
		if n.String() == "" {
			t.Errorf("empty String for kind %v", n.Kind)
		}
	}
	if OpExtract.String() != "Extract" || OpViewScan.String() != "ViewScan" {
		t.Error("OpKind names wrong")
	}
	if AggSum.String() != "sum" || AggAvg.String() != "avg" {
		t.Error("AggFn names wrong")
	}
	if PartHash.String() != "hash" {
		t.Error("PartitionKind names wrong")
	}
}
