package plan

import (
	"cloudviews/internal/expr"
)

// Walk visits the subgraph rooted at n in post-order (children before
// parents), visiting shared (spooled) nodes exactly once.
func Walk(n *Node, visit func(*Node)) {
	seen := map[*Node]bool{}
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil || seen[m] {
			return
		}
		seen[m] = true
		for _, c := range m.Children {
			rec(c)
		}
		visit(m)
	}
	rec(n)
}

// Nodes returns all distinct nodes of the subgraph in post-order.
func Nodes(n *Node) []*Node {
	var out []*Node
	Walk(n, func(m *Node) { out = append(out, m) })
	return out
}

// Count returns the number of distinct operators in the subgraph.
func Count(n *Node) int {
	c := 0
	Walk(n, func(*Node) { c++ })
	return c
}

// Clone deep-copies the subgraph, preserving internal sharing: a node that
// feeds two parents in the original feeds the same copies in the clone.
func Clone(n *Node) *Node {
	memo := map[*Node]*Node{}
	var rec func(*Node) *Node
	rec = func(m *Node) *Node {
		if m == nil {
			return nil
		}
		if c, ok := memo[m]; ok {
			return c
		}
		cp := *m
		cp.schema = nil
		cp.Children = make([]*Node, len(m.Children))
		memo[m] = &cp
		for i, ch := range m.Children {
			cp.Children[i] = rec(ch)
		}
		return &cp
	}
	return rec(n)
}

// CopyWithChildren returns a shallow copy of n with a freshly allocated
// Children slice (holding the same child pointers) and a cleared schema
// cache. It is the building block for copy-on-write rewrites: the caller
// swaps individual children on the copy while the original node — and
// every untouched subtree — stays shared and unmodified.
func (n *Node) CopyWithChildren() *Node {
	cp := *n
	cp.schema = nil
	cp.Children = append([]*Node(nil), n.Children...)
	return &cp
}

// Rewrite applies fn bottom-up: children are rewritten first, then fn may
// replace the node itself (returning a different node). Shared nodes are
// rewritten once and the replacement is reused at every consumer. The
// original plan is not modified; Rewrite operates on an internal clone.
func Rewrite(n *Node, fn func(*Node) *Node) *Node {
	memo := map[*Node]*Node{}
	var rec func(*Node) *Node
	rec = func(m *Node) *Node {
		if m == nil {
			return nil
		}
		if r, ok := memo[m]; ok {
			return r
		}
		cp := *m
		cp.schema = nil
		cp.Children = make([]*Node, len(m.Children))
		for i, ch := range m.Children {
			cp.Children[i] = rec(ch)
		}
		r := fn(&cp)
		memo[m] = r
		return r
	}
	return rec(n)
}

// Inputs returns the distinct logical input names (Extract tables) read by
// the subgraph, in first-encounter order.
func Inputs(n *Node) []string {
	var out []string
	seen := map[string]bool{}
	Walk(n, func(m *Node) {
		if m.Kind == OpExtract && !seen[m.Table] {
			seen[m.Table] = true
			out = append(out, m.Table)
		}
	})
	return out
}

// InputGUIDs returns the distinct (table, guid) pairs read by the subgraph.
func InputGUIDs(n *Node) map[string]string {
	out := map[string]string{}
	Walk(n, func(m *Node) {
		if m.Kind == OpExtract {
			out[m.Table] = m.GUID
		}
	})
	return out
}

// Equal reports whether two subgraphs are structurally identical under the
// given encoding mode.
func Equal(a, b *Node, mode expr.Mode) bool {
	return a.EncodeString(mode) == b.EncodeString(mode)
}

// DeriveProps computes the output physical properties of the subgraph at n
// — the partitioning and sort order the operator's output satisfies. When an
// operator neither establishes nor destroys a property it inherits from its
// child, which realizes the paper's "traverse down until we hit one or more
// physical properties" rule (§5.3).
func DeriveProps(n *Node) PhysicalProps {
	switch n.Kind {
	case OpExtract, OpUnionAll:
		return PhysicalProps{}
	case OpViewScan:
		return PhysicalProps{}
	case OpExchange:
		// A shuffle establishes partitioning and destroys any order —
		// except a range exchange, which leaves each partition sorted on
		// the range columns (the parallel-sort layout).
		p := PhysicalProps{Part: n.Part}
		if n.Part.Kind == PartRange {
			p.Sort = SortOrder{Cols: append([]int(nil), n.Part.Cols...),
				Desc: make([]bool, len(n.Part.Cols))}
		}
		return p
	case OpSort:
		p := DeriveProps(n.Children[0])
		p.Sort = SortOrder{Cols: append([]int(nil), n.SortKeys...), Desc: append([]bool(nil), n.Desc...)}
		return p
	case OpFilter, OpTop, OpSpool, OpOutput, OpMaterialize, OpProcess, OpReduce:
		// Pass-through operators preserve both properties. Process/Reduce
		// append a column, which does not disturb existing columns.
		return DeriveProps(n.Children[0])
	case OpProject:
		return remapProjectProps(n)
	case OpHashJoin, OpMergeJoin:
		left := DeriveProps(n.Children[0])
		p := PhysicalProps{}
		if left.Part.Kind == PartHash && intsEqual(left.Part.Cols, n.LeftKeys) {
			// Join preserves the left child's key partitioning: left
			// columns keep their indexes in the concatenated output.
			p.Part = left.Part
		}
		if n.Kind == OpMergeJoin {
			p.Sort = left.Sort
		}
		return p
	case OpHashGbAgg, OpStreamGbAgg:
		return remapAggProps(n)
	default:
		return PhysicalProps{}
	}
}

func remapProjectProps(n *Node) PhysicalProps {
	child := DeriveProps(n.Children[0])
	// Map input column index -> output index for identity column refs.
	remap := map[int]int{}
	for i, e := range n.Exprs {
		if c, ok := e.(*expr.Col); ok {
			if _, dup := remap[c.Index]; !dup {
				remap[c.Index] = i
			}
		}
	}
	var out PhysicalProps
	if cols, ok := remapCols(child.Part.Cols, remap); ok && child.Part.Kind == PartHash {
		out.Part = Partitioning{Kind: PartHash, Cols: cols, Count: child.Part.Count}
	} else if child.Part.Kind == PartSingleton || child.Part.Kind == PartRoundRobin {
		out.Part = child.Part
	}
	if cols, ok := remapCols(child.Sort.Cols, remap); ok && len(cols) > 0 {
		out.Sort = SortOrder{Cols: cols, Desc: append([]bool(nil), child.Sort.Desc...)}
	}
	return out
}

func remapAggProps(n *Node) PhysicalProps {
	child := DeriveProps(n.Children[0])
	// Output column i corresponds to input column GroupBy[i].
	remap := map[int]int{}
	for i, g := range n.GroupBy {
		remap[g] = i
	}
	var out PhysicalProps
	if cols, ok := remapCols(child.Part.Cols, remap); ok && child.Part.Kind == PartHash {
		out.Part = Partitioning{Kind: PartHash, Cols: cols, Count: child.Part.Count}
	} else if child.Part.Kind == PartSingleton {
		out.Part = child.Part
	}
	if n.Kind == OpStreamGbAgg {
		if cols, ok := remapCols(child.Sort.Cols, remap); ok && len(cols) > 0 {
			out.Sort = SortOrder{Cols: cols, Desc: append([]bool(nil), child.Sort.Desc...)}
		}
	}
	return out
}

func remapCols(cols []int, remap map[int]int) ([]int, bool) {
	if len(cols) == 0 {
		return nil, true
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		nc, ok := remap[c]
		if !ok {
			return nil, false
		}
		out[i] = nc
	}
	return out, true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
