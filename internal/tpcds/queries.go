package tpcds

import (
	"fmt"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

// Channel describes one of the three TPC-DS sales channels; queries are
// frequently channel-rotated variants of the same shape, which is exactly
// where the benchmark's common subexpressions come from.
type Channel struct {
	Fact     string
	DateCol  string
	ItemCol  string
	CustCol  string
	QtyCol   string
	PriceCol string
	ExtCol   string
	ProfCol  string
}

// The three sales channels.
var (
	StoreChannel   = Channel{"store_sales", "ss_sold_date_sk", "ss_item_sk", "ss_customer_sk", "ss_quantity", "ss_sales_price", "ss_ext_sales_price", "ss_net_profit"}
	CatalogChannel = Channel{"catalog_sales", "cs_sold_date_sk", "cs_item_sk", "cs_bill_customer_sk", "cs_quantity", "cs_sales_price", "cs_ext_sales_price", "cs_net_profit"}
	WebChannel     = Channel{"web_sales", "ws_sold_date_sk", "ws_item_sk", "ws_bill_customer_sk", "ws_quantity", "ws_sales_price", "ws_ext_sales_price", "ws_net_profit"}
)

// returnsChannel mirrors Channel for the three returns fact tables.
var returnsChannels = map[string][3]string{
	// fact -> [dateCol, itemCol, amountCol]
	"store_returns":   {"sr_returned_date_sk", "sr_item_sk", "sr_return_amt"},
	"catalog_returns": {"cr_returned_date_sk", "cr_item_sk", "cr_return_amount"},
	"web_returns":     {"wr_returned_date_sk", "wr_item_sk", "wr_return_amt"},
}

// Builder constructs query plans against a generated catalog.
type Builder struct {
	Cat *catalog.Catalog
}

// scan builds a leaf over a catalog table at its current GUID.
func (b *Builder) scan(table string) *plan.Node {
	t, err := b.Cat.Get(table)
	if err != nil {
		panic(fmt.Sprintf("tpcds: %v", err))
	}
	return plan.Scan(t.Name, t.GUID, t.Schema)
}

// ix resolves a column position by name; query construction is static, so
// a miss is a programming error.
func ix(n *plan.Node, name string) int {
	i := n.Schema().ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("tpcds: column %s not in (%s)", name, n.Schema()))
	}
	return i
}

func c(n *plan.Node, name string) *expr.Col { return expr.C(ix(n, name), name) }

// ---- Shared cores -------------------------------------------------------
//
// Each core is a subplan shared verbatim by many queries (same constants,
// same shape), the TPC-DS analogue of the paper's overlapping
// computations. Cores are parameterized by channel and year: queries using
// the same (core, channel, year) produce byte-identical subgraphs.

// salesByYear joins a sales channel with date_dim and keeps one year.
// This is the single most shared computation in TPC-DS.
func (b *Builder) salesByYear(ch Channel, year int64) *plan.Node {
	fact := b.scan(ch.Fact).ShuffleHash([]int{0}, 8)
	dd := b.scan("date_dim").
		Filter(expr.Eq(expr.C(1, "d_year"), expr.Lit(data.Int(year)))).
		ShuffleHash([]int{0}, 8)
	return fact.HashJoin(dd, []int{ix(fact, ch.DateCol)}, []int{0})
}

// salesByYearItem extends salesByYear with the item dimension.
func (b *Builder) salesByYearItem(ch Channel, year int64) *plan.Node {
	sales := b.salesByYear(ch, year)
	item := b.scan("item")
	return sales.HashJoin(item, []int{ix(sales, ch.ItemCol)}, []int{0})
}

// salesByYearCustomer extends salesByYear with the customer dimension.
func (b *Builder) salesByYearCustomer(ch Channel, year int64) *plan.Node {
	sales := b.salesByYear(ch, year)
	cust := b.scan("customer")
	return sales.HashJoin(cust, []int{ix(sales, ch.CustCol)}, []int{0})
}

// storeSalesByYearStore extends the store channel with the store dimension.
func (b *Builder) storeSalesByYearStore(year int64) *plan.Node {
	sales := b.salesByYear(StoreChannel, year)
	return sales.HashJoin(b.scan("store"), []int{ix(sales, "ss_store_sk")}, []int{0})
}

// returnsByYear joins a returns fact with date_dim for one year.
func (b *Builder) returnsByYear(fact string, year int64) *plan.Node {
	cols := returnsChannels[fact]
	f := b.scan(fact).ShuffleHash([]int{0}, 4)
	dd := b.scan("date_dim").
		Filter(expr.Eq(expr.C(1, "d_year"), expr.Lit(data.Int(year)))).
		ShuffleHash([]int{0}, 4)
	return f.HashJoin(dd, []int{ix(f, cols[0])}, []int{0})
}

// inventoryByYear joins inventory with date_dim for one year.
func (b *Builder) inventoryByYear(year int64) *plan.Node {
	inv := b.scan("inventory").ShuffleHash([]int{0}, 4)
	dd := b.scan("date_dim").
		Filter(expr.Eq(expr.C(1, "d_year"), expr.Lit(data.Int(year)))).
		ShuffleHash([]int{0}, 4)
	return inv.HashJoin(dd, []int{0}, []int{0})
}

// customerByAddress joins customer with customer_address — shared by the
// demographic query family.
func (b *Builder) customerByAddress() *plan.Node {
	cu := b.scan("customer").ShuffleHash([]int{1}, 4)
	return cu.HashJoin(b.scan("customer_address"), []int{1}, []int{0})
}

// ---- Query tails --------------------------------------------------------

type tailKind int

const (
	tailBrandRevenue    tailKind = iota // group by brand, sum ext price, top N
	tailCategoryClass                   // filter category, group by class, sum
	tailStoreState                      // group by store state, sum profit
	tailCustomerTop                     // group by customer, sum, top N
	tailMonthlySales                    // filter month, group by day-of-month
	tailQuantityStats                   // avg/min/max quantity by item attr
	tailPriceBand                       // filter price, count + sum
	tailManufactRank                    // group by manufacturer, sort, top
	tailReturnsSummary                  // group returns by item, sum amount
	tailInventoryHealth                 // group inventory by warehouse
	tailDemographics                    // group customers by state/gender
	tailPromoEffect                     // join promotion, compare promo sales
)

// Query is one benchmark query: an ID (1..99) and its plan.
type Query struct {
	ID   int
	Name string
	Root *plan.Node
}

type spec struct {
	core string // which shared core
	ch   Channel
	year int64
	tail tailKind
	p1   int64
	s1   string
}

// specs returns the 99 query definitions. The distribution mirrors the
// benchmark's structure: the store channel dominates, catalog and web
// rotate the same shapes, and a minority touch returns, inventory, and
// pure-dimension queries. Queries sharing (core, channel, year) share an
// exact subexpression.
func specs() [99]spec {
	var out [99]spec
	cats := []string{"Books", "Electronics", "Home", "Sports", "Music", "Jewelry"}
	channels := []Channel{StoreChannel, CatalogChannel, WebChannel}
	retFacts := []string{"store_returns", "catalog_returns", "web_returns"}
	years := []int64{1998, 1999, 2000, 2001, 2002}

	for i := 0; i < 99; i++ {
		q := i + 1
		ch := channels[i%3]
		year := years[(i/3)%3] // concentrate on 3 years so cores repeat
		switch {
		case q == 21 || q == 22 || q == 37 || q == 82:
			// The classic inventory queries.
			out[i] = spec{core: "inventory", year: years[i%2], tail: tailInventoryHealth, p1: int64(10 + i%20)}
		case q == 30 || q == 81 || q == 25 || q == 50 || q == 93:
			// Returns-heavy queries.
			out[i] = spec{core: "returns", s1: retFacts[i%3], year: year, tail: tailReturnsSummary, p1: int64(5 + i%10)}
		case q == 34 || q == 73 || q == 84 || q == 91:
			// Customer/demographic queries.
			out[i] = spec{core: "custaddr", tail: tailDemographics, s1: stringDomains["ca_state"][i%6]}
		case q == 7 || q == 26 || q == 27:
			// avg quantity family (same shape, rotated channel).
			out[i] = spec{core: "salesItem", ch: channels[(q/7)%3], year: 2000, tail: tailQuantityStats, p1: int64(q)}
		case q == 3 || q == 42 || q == 52 || q == 55:
			// Brand revenue family — famously identical shape.
			out[i] = spec{core: "salesItem", ch: StoreChannel, year: 2000, tail: tailBrandRevenue, p1: 10}
		case q == 19 || q == 98 || q == 12 || q == 20:
			// Category/class revenue family.
			out[i] = spec{core: "salesItem", ch: channels[i%3], year: 1999, tail: tailCategoryClass, s1: cats[i%6]}
		case q%11 == 0:
			out[i] = spec{core: "salesStore", year: year, tail: tailStoreState, p1: int64(q)}
		case q%7 == 0:
			out[i] = spec{core: "salesCust", ch: ch, year: year, tail: tailCustomerTop, p1: int64(10 + q%40)}
		case q%5 == 0:
			out[i] = spec{core: "sales", ch: ch, year: year, tail: tailMonthlySales, p1: int64(1 + q%12)}
		case q%4 == 0:
			out[i] = spec{core: "salesItem", ch: ch, year: year, tail: tailManufactRank, p1: int64(5 + q%25)}
		case q%3 == 0:
			out[i] = spec{core: "sales", ch: ch, year: year, tail: tailPriceBand, p1: int64(20 + q%60)}
		case q%2 == 0:
			out[i] = spec{core: "salesItem", ch: ch, year: year, tail: tailCategoryClass, s1: cats[q%6]}
		default:
			out[i] = spec{core: "sales", ch: ch, year: year, tail: tailPromoEffect, p1: int64(q % 3)}
		}
	}
	return out
}

// Queries builds all 99 queries against the catalog.
func (b *Builder) Queries() []Query {
	sp := specs()
	out := make([]Query, 99)
	for i, s := range sp {
		out[i] = Query{
			ID:   i + 1,
			Name: fmt.Sprintf("q%d", i+1),
			Root: b.build(i+1, s),
		}
	}
	return out
}

// Query builds a single query by ID (1..99).
func (b *Builder) Query(id int) Query {
	s := specs()[id-1]
	return Query{ID: id, Name: fmt.Sprintf("q%d", id), Root: b.build(id, s)}
}

func (b *Builder) build(id int, s spec) *plan.Node {
	var core *plan.Node
	ch := s.ch
	switch s.core {
	case "sales":
		core = b.salesByYear(ch, s.year)
	case "salesItem":
		core = b.salesByYearItem(ch, s.year)
	case "salesCust":
		core = b.salesByYearCustomer(ch, s.year)
	case "salesStore":
		ch = StoreChannel
		core = b.storeSalesByYearStore(s.year)
	case "returns":
		core = b.returnsByYear(s.s1, s.year)
	case "inventory":
		core = b.inventoryByYear(s.year)
	case "custaddr":
		core = b.customerByAddress()
	default:
		panic("tpcds: unknown core " + s.core)
	}
	// Query-specific post-processing stage: every TPC-DS query does
	// substantial work of its own beyond the shared core (window
	// computations, case expressions, per-query repartitioning, UDF-like
	// derivations). Modeled as a per-query UDO plus a repartition and a
	// sort over the full core output, it keeps the shared core a modest
	// fraction of total query cost — without it, reusing a core would
	// eliminate ~90% of a query and inflate Figure 13 far beyond the
	// paper's 17%.
	core = core.
		Process(fmt.Sprintf("q%d_derive", id), fmt.Sprintf("q%d-code-v1", id)).
		ShuffleHash([]int{0}, 8).
		Sort([]int{0}, nil)
	return b.tail(id, s, ch, core)
}

func (b *Builder) tail(id int, s spec, ch Channel, core *plan.Node) *plan.Node {
	out := func(n *plan.Node) *plan.Node { return n.Output(fmt.Sprintf("q%d", id)) }
	switch s.tail {
	case tailBrandRevenue:
		agg := core.HashAgg([]int{ix(core, "i_brand_id")},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(core, ch.ExtCol)}})
		return out(agg.Sort([]int{1}, []bool{true}).Top(s.p1))
	case tailCategoryClass:
		f := core.Filter(expr.Eq(c(core, "i_category"), expr.Lit(data.String_(s.s1))))
		agg := f.HashAgg([]int{ix(f, "i_class_id")},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(f, ch.ExtCol)}, {Fn: plan.AggCount, Col: ix(f, "i_item_sk")}})
		return out(agg.Sort([]int{0}, nil))
	case tailStoreState:
		agg := core.HashAgg([]int{ix(core, "s_state")},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(core, "ss_net_profit")}, {Fn: plan.AggAvg, Col: ix(core, "ss_sales_price")}})
		return out(agg.Sort([]int{1}, []bool{true}))
	case tailCustomerTop:
		agg := core.HashAgg([]int{ix(core, "c_customer_sk")},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(core, ch.ExtCol)}})
		return out(agg.Sort([]int{1}, []bool{true}).Top(s.p1))
	case tailMonthlySales:
		f := core.Filter(expr.Eq(c(core, "d_moy"), expr.Lit(data.Int(1+s.p1%12))))
		agg := f.HashAgg([]int{ix(f, "d_dom")},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(f, ch.ExtCol)}, {Fn: plan.AggCount, Col: ix(f, ch.QtyCol)}})
		return out(agg.Sort([]int{0}, nil))
	case tailQuantityStats:
		agg := core.HashAgg([]int{ix(core, "i_category_id")},
			[]plan.AggSpec{
				{Fn: plan.AggAvg, Col: ix(core, ch.QtyCol)},
				{Fn: plan.AggMin, Col: ix(core, ch.PriceCol)},
				{Fn: plan.AggMax, Col: ix(core, ch.PriceCol)},
			})
		return out(agg.Sort([]int{0}, nil))
	case tailPriceBand:
		f := core.Filter(expr.B(expr.OpGt, c(core, ch.PriceCol), expr.Lit(data.Float(float64(s.p1)))))
		agg := f.HashAgg([]int{ix(f, "d_qoy")},
			[]plan.AggSpec{{Fn: plan.AggCount, Col: ix(f, ch.QtyCol)}, {Fn: plan.AggSum, Col: ix(f, ch.ExtCol)}})
		return out(agg.Sort([]int{0}, nil))
	case tailManufactRank:
		agg := core.HashAgg([]int{ix(core, "i_manufact_id")},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(core, ch.ExtCol)}})
		return out(agg.Sort([]int{1}, []bool{true}).Top(s.p1))
	case tailReturnsSummary:
		cols := returnsChannels[s.s1]
		agg := core.HashAgg([]int{ix(core, cols[1])},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(core, cols[2])}, {Fn: plan.AggCount, Col: ix(core, cols[1])}})
		return out(agg.Sort([]int{1}, []bool{true}).Top(s.p1))
	case tailInventoryHealth:
		agg := core.HashAgg([]int{ix(core, "inv_warehouse_sk")},
			[]plan.AggSpec{{Fn: plan.AggAvg, Col: ix(core, "inv_quantity_on_hand")}, {Fn: plan.AggCount, Col: ix(core, "inv_item_sk")}})
		return out(agg.Sort([]int{0}, nil))
	case tailDemographics:
		f := core.Filter(expr.Eq(c(core, "ca_state"), expr.Lit(data.String_(s.s1))))
		agg := f.HashAgg([]int{ix(f, "ca_county")},
			[]plan.AggSpec{{Fn: plan.AggCount, Col: ix(f, "c_customer_sk")}})
		return out(agg.Sort([]int{1}, []bool{true}))
	case tailPromoEffect:
		var promoCol string
		switch ch.Fact {
		case "store_sales":
			promoCol = "ss_promo_sk"
		case "catalog_sales":
			promoCol = "cs_promo_sk"
		default:
			promoCol = "ws_promo_sk"
		}
		j := core.HashJoin(b.scan("promotion"), []int{ix(core, promoCol)}, []int{0})
		f := j.Filter(expr.Eq(c(j, "p_channel_email"), expr.Lit(data.String_("Y"))))
		agg := f.HashAgg([]int{ix(f, "p_promo_sk")},
			[]plan.AggSpec{{Fn: plan.AggSum, Col: ix(f, ch.ExtCol)}})
		return out(agg.Sort([]int{1}, []bool{true}).Top(20))
	default:
		panic("tpcds: unknown tail")
	}
}
