package tpcds

import (
	"testing"

	"cloudviews/internal/exec"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

func TestGenerateCatalog(t *testing.T) {
	cat := Generate(1.0, 42)
	defs := Tables()
	if len(defs) != 24 {
		t.Fatalf("tables = %d, want 24", len(defs))
	}
	for _, def := range defs {
		tab, err := cat.Get(def.Name)
		if err != nil {
			t.Fatalf("missing table %s: %v", def.Name, err)
		}
		if tab.NumRows() == 0 {
			t.Errorf("table %s empty", def.Name)
		}
		if err := tab.Validate(); err != nil {
			t.Errorf("table %s invalid: %v", def.Name, err)
		}
	}
	// Determinism.
	again := Generate(1.0, 42)
	a, _ := cat.Get("store_sales")
	b, _ := again.Get("store_sales")
	if a.NumRows() != b.NumRows() || a.GUID != b.GUID {
		t.Error("generation not deterministic")
	}
}

func TestScaleFactor(t *testing.T) {
	small := Generate(0.5, 1)
	big := Generate(2.0, 1)
	ss, _ := small.Get("store_sales")
	sb, _ := big.Get("store_sales")
	if sb.NumRows() <= ss.NumRows() {
		t.Error("fact tables must grow with scale")
	}
	ds, _ := small.Get("date_dim")
	db, _ := big.Get("date_dim")
	// Dimensions grow sublinearly but still grow.
	if db.NumRows() <= ds.NumRows() {
		t.Error("dimensions must grow with scale")
	}
	factRatio := float64(sb.NumRows()) / float64(ss.NumRows())
	dimRatio := float64(db.NumRows()) / float64(ds.NumRows())
	if dimRatio >= factRatio {
		t.Error("dimensions should scale sublinearly vs facts")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	cat := Generate(1.0, 7)
	ss, _ := cat.Get("store_sales")
	dd, _ := cat.Get("date_dim")
	maxKey := dd.NumRows()
	for _, p := range ss.Partitions {
		for _, r := range p {
			if r[0].AsInt() < 0 || r[0].AsInt() >= maxKey {
				t.Fatalf("ss_sold_date_sk %d outside date_dim range %d", r[0].AsInt(), maxKey)
			}
		}
	}
}

func TestAll99QueriesBuildAndRun(t *testing.T) {
	cat := Generate(1.0, 42)
	b := &Builder{Cat: cat}
	qs := b.Queries()
	if len(qs) != 99 {
		t.Fatalf("queries = %d", len(qs))
	}
	ex := &exec.Executor{Catalog: cat, Store: storage.NewStore()}
	for _, q := range qs {
		if q.Root.Kind != plan.OpOutput {
			t.Fatalf("%s root is %v", q.Name, q.Root.Kind)
		}
		res, err := ex.Run(q.Root, q.Name, 0)
		if err != nil {
			t.Fatalf("%s failed: %v", q.Name, err)
		}
		if res.TotalCPU <= 0 {
			t.Errorf("%s has zero cost", q.Name)
		}
		// Most queries should return rows over FK-consistent data; at
		// minimum the plan executed, but flag empty results for the
		// aggregate families where data must hit.
		if len(res.Outputs[q.Name]) == 0 && (q.ID == 3 || q.ID == 7 || q.ID == 21) {
			t.Errorf("%s returned no rows", q.Name)
		}
	}
}

func TestQueriesShareCommonSubexpressions(t *testing.T) {
	// The benchmark's reuse opportunity: a substantial number of precise
	// subgraph signatures appear in more than one query.
	cat := Generate(1.0, 42)
	b := &Builder{Cat: cat}
	comp := signature.NewComputer()
	sigQueries := map[string]map[int]bool{}
	for _, q := range b.Queries() {
		for _, s := range comp.AllSubgraphs(q.Root) {
			if s.Node.Kind == plan.OpExtract || s.Node.Kind == plan.OpOutput {
				continue
			}
			if sigQueries[s.Sig.Precise] == nil {
				sigQueries[s.Sig.Precise] = map[int]bool{}
			}
			sigQueries[s.Sig.Precise][q.ID] = true
		}
	}
	shared := 0
	maxShare := 0
	for _, qs := range sigQueries {
		if len(qs) >= 2 {
			shared++
			if len(qs) > maxShare {
				maxShare = len(qs)
			}
		}
	}
	if shared < 10 {
		t.Errorf("only %d shared subexpressions across queries; benchmark should have many", shared)
	}
	if maxShare < 4 {
		t.Errorf("max sharing degree %d; expected a hot core shared by several queries", maxShare)
	}
	t.Logf("shared subexpressions: %d, hottest shared by %d queries", shared, maxShare)
}

func TestBrandRevenueFamilySharesCore(t *testing.T) {
	// q3/q42/q52/q55 are the classic "same query, different constants"
	// family; in our rendition they share the exact salesItem core.
	cat := Generate(1.0, 42)
	b := &Builder{Cat: cat}
	core3 := b.salesByYearItem(StoreChannel, 2000)
	sig := signature.Of(core3)
	comp := signature.NewComputer()
	for _, id := range []int{3, 42, 52, 55} {
		q := b.Query(id)
		found := false
		for _, s := range comp.AllSubgraphs(q.Root) {
			if s.Sig.Precise == sig.Precise {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("q%d does not contain the shared brand-revenue core", id)
		}
	}
}

func TestQueryByIDMatchesBatch(t *testing.T) {
	cat := Generate(1.0, 42)
	b := &Builder{Cat: cat}
	all := b.Queries()
	for _, id := range []int{1, 21, 30, 34, 50, 77, 99} {
		single := b.Query(id)
		sa := signature.Of(single.Root)
		sb := signature.Of(all[id-1].Root)
		if sa != sb {
			t.Errorf("q%d differs between Query() and Queries()", id)
		}
	}
}

func TestTableDefByName(t *testing.T) {
	if _, ok := TableDefByName("store_sales"); !ok {
		t.Error("store_sales missing")
	}
	if _, ok := TableDefByName("nope"); ok {
		t.Error("false positive")
	}
}
