// Package tpcds provides the TPC-DS substrate of the evaluation (§7.2): a
// compact rendition of the benchmark's 24-table retail schema, a scaled
// synthetic data generator with foreign-key consistency, and all 99
// queries expressed as plan builders.
//
// The queries preserve what matters for computation reuse: TPC-DS's real
// common subexpressions. Dozens of queries share the same fact⋈date_dim
// (⋈item/customer) cores, which is precisely the overlap CloudViews mines.
// Selectivities and constants are simplified; column sets are trimmed to
// the ones the queries touch. Absolute data volume comes from a scale
// factor, defaulting far below 1 TB so the whole benchmark runs in seconds
// on the simulator (substitution documented in DESIGN.md).
package tpcds

import (
	"cloudviews/internal/data"
)

// TableDef describes one schema table and its scaled cardinality.
type TableDef struct {
	Name   string
	Schema data.Schema
	// BaseRows is the row count at Scale = 1.0; dimensions scale with the
	// square root of the scale factor (as TPC-DS dimensions grow sublinearly).
	BaseRows  int
	Dimension bool
	// Partitions is the table's physical partition count.
	Partitions int
}

func ints(names ...string) data.Schema {
	s := make(data.Schema, len(names))
	for i, n := range names {
		s[i] = data.Column{Name: n, Kind: data.KindInt}
	}
	return s
}

func withFloat(s data.Schema, names ...string) data.Schema {
	for _, n := range names {
		s = append(s, data.Column{Name: n, Kind: data.KindFloat})
	}
	return s
}

func withString(s data.Schema, names ...string) data.Schema {
	for _, n := range names {
		s = append(s, data.Column{Name: n, Kind: data.KindString})
	}
	return s
}

// Tables returns the 24 TPC-DS tables with trimmed schemas. Column order
// is part of the public contract: query builders index columns by position.
func Tables() []TableDef {
	return []TableDef{
		// Fact tables (7).
		{Name: "store_sales", BaseRows: 4000, Partitions: 8,
			Schema: withFloat(ints("ss_sold_date_sk", "ss_item_sk", "ss_customer_sk", "ss_store_sk", "ss_promo_sk", "ss_quantity"),
				"ss_sales_price", "ss_ext_sales_price", "ss_net_profit")},
		{Name: "store_returns", BaseRows: 400, Partitions: 4,
			Schema: withFloat(ints("sr_returned_date_sk", "sr_item_sk", "sr_customer_sk", "sr_store_sk", "sr_reason_sk"),
				"sr_return_amt", "sr_net_loss")},
		{Name: "catalog_sales", BaseRows: 2800, Partitions: 8,
			Schema: withFloat(ints("cs_sold_date_sk", "cs_item_sk", "cs_bill_customer_sk", "cs_call_center_sk", "cs_promo_sk", "cs_quantity"),
				"cs_sales_price", "cs_ext_sales_price", "cs_net_profit")},
		{Name: "catalog_returns", BaseRows: 280, Partitions: 4,
			Schema: withFloat(ints("cr_returned_date_sk", "cr_item_sk", "cr_refunded_customer_sk", "cr_call_center_sk", "cr_reason_sk"),
				"cr_return_amount", "cr_net_loss")},
		{Name: "web_sales", BaseRows: 1400, Partitions: 8,
			Schema: withFloat(ints("ws_sold_date_sk", "ws_item_sk", "ws_bill_customer_sk", "ws_web_site_sk", "ws_promo_sk", "ws_quantity"),
				"ws_sales_price", "ws_ext_sales_price", "ws_net_profit")},
		{Name: "web_returns", BaseRows: 140, Partitions: 4,
			Schema: withFloat(ints("wr_returned_date_sk", "wr_item_sk", "wr_refunded_customer_sk", "wr_web_page_sk", "wr_reason_sk"),
				"wr_return_amt", "wr_net_loss")},
		{Name: "inventory", BaseRows: 2000, Partitions: 8,
			Schema: ints("inv_date_sk", "inv_item_sk", "inv_warehouse_sk", "inv_quantity_on_hand")},

		// Dimension tables (17).
		{Name: "date_dim", BaseRows: 1461, Dimension: true, Partitions: 2,
			Schema: ints("d_date_sk", "d_year", "d_moy", "d_dom", "d_qoy", "d_dow")},
		{Name: "time_dim", BaseRows: 288, Dimension: true, Partitions: 1,
			Schema: ints("t_time_sk", "t_hour", "t_minute", "t_shift")},
		{Name: "item", BaseRows: 300, Dimension: true, Partitions: 2,
			Schema: withFloat(withString(ints("i_item_sk", "i_brand_id", "i_class_id", "i_category_id", "i_manufact_id"),
				"i_category", "i_brand"), "i_current_price")},
		{Name: "customer", BaseRows: 500, Dimension: true, Partitions: 2,
			Schema: withString(ints("c_customer_sk", "c_current_addr_sk", "c_current_cdemo_sk", "c_current_hdemo_sk", "c_birth_year"),
				"c_last_name", "c_preferred_cust_flag")},
		{Name: "customer_address", BaseRows: 250, Dimension: true, Partitions: 2,
			Schema: withString(ints("ca_address_sk", "ca_gmt_offset"), "ca_state", "ca_county", "ca_city")},
		{Name: "customer_demographics", BaseRows: 200, Dimension: true, Partitions: 2,
			Schema: withString(ints("cd_demo_sk", "cd_dep_count"), "cd_gender", "cd_marital_status", "cd_education_status")},
		{Name: "household_demographics", BaseRows: 72, Dimension: true, Partitions: 1,
			Schema: withString(ints("hd_demo_sk", "hd_income_band_sk", "hd_dep_count", "hd_vehicle_count"), "hd_buy_potential")},
		{Name: "income_band", BaseRows: 20, Dimension: true, Partitions: 1,
			Schema: ints("ib_income_band_sk", "ib_lower_bound", "ib_upper_bound")},
		{Name: "store", BaseRows: 12, Dimension: true, Partitions: 1,
			Schema: withString(ints("s_store_sk", "s_number_employees", "s_floor_space"), "s_state", "s_county", "s_store_name")},
		{Name: "call_center", BaseRows: 6, Dimension: true, Partitions: 1,
			Schema: withString(ints("cc_call_center_sk", "cc_employees"), "cc_name", "cc_manager")},
		{Name: "catalog_page", BaseRows: 60, Dimension: true, Partitions: 1,
			Schema: withString(ints("cp_catalog_page_sk", "cp_catalog_number"), "cp_department")},
		{Name: "web_site", BaseRows: 10, Dimension: true, Partitions: 1,
			Schema: withString(ints("web_site_sk", "web_open_date_sk"), "web_name", "web_manager")},
		{Name: "web_page", BaseRows: 20, Dimension: true, Partitions: 1,
			Schema: withString(ints("wp_web_page_sk", "wp_char_count", "wp_link_count"), "wp_type")},
		{Name: "warehouse", BaseRows: 5, Dimension: true, Partitions: 1,
			Schema: withString(ints("w_warehouse_sk", "w_warehouse_sq_ft"), "w_warehouse_name", "w_state")},
		{Name: "promotion", BaseRows: 30, Dimension: true, Partitions: 1,
			Schema: withString(ints("p_promo_sk", "p_response_target"), "p_channel_email", "p_promo_name")},
		{Name: "reason", BaseRows: 35, Dimension: true, Partitions: 1,
			Schema: withString(ints("r_reason_sk"), "r_reason_desc")},
		{Name: "ship_mode", BaseRows: 20, Dimension: true, Partitions: 1,
			Schema: withString(ints("sm_ship_mode_sk"), "sm_type", "sm_carrier")},
	}
}

// TableDefByName returns the definition of one table.
func TableDefByName(name string) (TableDef, bool) {
	for _, t := range Tables() {
		if t.Name == name {
			return t, true
		}
	}
	return TableDef{}, false
}
