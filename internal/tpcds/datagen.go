package tpcds

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
)

// Generate builds a TPC-DS catalog at the given scale factor with
// foreign-key-consistent synthetic data: every fact-table surrogate key
// falls inside its dimension's key range, so joins have realistic hit
// rates. The data is deterministic in (scale, seed).
func Generate(scale float64, seed int64) *catalog.Catalog {
	if scale <= 0 {
		scale = 1
	}
	cat := catalog.New()
	rng := rand.New(rand.NewSource(seed))
	defs := Tables()

	// Dimension key ranges: dim name -> row count (keys are 0..n-1).
	dimRows := map[string]int{}
	for _, def := range defs {
		n := scaledRows(def, scale)
		if def.Dimension {
			dimRows[def.Name] = n
		}
	}

	for _, def := range defs {
		n := scaledRows(def, scale)
		tab := data.NewTable(def.Name, fmt.Sprintf("tpcds-%s-sf%.2f", def.Name, scale), def.Schema, def.Partitions)
		rr := 0
		for i := 0; i < n; i++ {
			tab.AppendHash(genRow(def, i, dimRows, rng), []int{0}, &rr)
		}
		cat.Register(tab)
	}
	return cat
}

func scaledRows(def TableDef, scale float64) int {
	f := scale
	if def.Dimension {
		// Dimensions grow sublinearly with scale, as in real TPC-DS.
		f = math.Sqrt(scale)
	}
	n := int(float64(def.BaseRows) * f)
	if n < 1 {
		n = 1
	}
	return n
}

// fkTarget maps a foreign-key column name to its dimension table.
var fkTarget = map[string]string{
	"date_sk": "date_dim", "sold_date_sk": "date_dim", "returned_date_sk": "date_dim",
	"item_sk": "item", "customer_sk": "customer", "bill_customer_sk": "customer",
	"refunded_customer_sk": "customer", "store_sk": "store", "call_center_sk": "call_center",
	"web_site_sk": "web_site", "web_page_sk": "web_page", "warehouse_sk": "warehouse",
	"promo_sk": "promotion", "reason_sk": "reason", "addr_sk": "customer_address",
	"cdemo_sk": "customer_demographics", "hdemo_sk": "household_demographics",
	"income_band_sk": "income_band", "time_sk": "time_dim", "open_date_sk": "date_dim",
}

// fkDim resolves the dimension a column references, if any.
func fkDim(col string) (string, bool) {
	for suffix, dim := range fkTarget {
		if strings.HasSuffix(col, suffix) {
			return dim, true
		}
	}
	return "", false
}

func genRow(def TableDef, i int, dimRows map[string]int, rng *rand.Rand) data.Row {
	row := make(data.Row, len(def.Schema))
	for c, col := range def.Schema {
		switch {
		case c == 0 && def.Dimension:
			// Dimension primary key: dense 0..n-1.
			row[c] = data.Int(int64(i))
		case col.Kind == data.KindInt:
			if dim, ok := fkDim(col.Name); ok {
				row[c] = data.Int(int64(rng.Intn(max(1, dimRows[dim]))))
				break
			}
			row[c] = data.Int(genIntAttr(col.Name, i, rng))
		case col.Kind == data.KindFloat:
			row[c] = data.Float(float64(rng.Intn(10000)) / 100.0)
		case col.Kind == data.KindString:
			row[c] = data.String_(genStringAttr(col.Name, rng))
		default:
			row[c] = data.Null()
		}
	}
	return row
}

// genIntAttr produces plausible attribute domains for the columns queries
// filter on.
func genIntAttr(name string, i int, rng *rand.Rand) int64 {
	switch {
	case strings.HasSuffix(name, "d_year"):
		return int64(1998 + i/366%5)
	case strings.HasSuffix(name, "d_moy"):
		return int64(1 + i/30%12)
	case strings.HasSuffix(name, "d_dom"):
		return int64(1 + i%28)
	case strings.HasSuffix(name, "d_qoy"):
		return int64(1 + i/91%4)
	case strings.HasSuffix(name, "d_dow"):
		return int64(i % 7)
	case strings.HasSuffix(name, "t_hour"):
		return int64(i / 12 % 24)
	case strings.HasSuffix(name, "t_minute"):
		return int64(i % 60)
	case strings.HasSuffix(name, "quantity"), strings.HasSuffix(name, "quantity_on_hand"):
		return int64(1 + rng.Intn(100))
	case strings.HasSuffix(name, "brand_id"):
		return int64(rng.Intn(50))
	case strings.HasSuffix(name, "class_id"):
		return int64(rng.Intn(16))
	case strings.HasSuffix(name, "category_id"):
		return int64(rng.Intn(10))
	case strings.HasSuffix(name, "manufact_id"):
		return int64(rng.Intn(100))
	case strings.HasSuffix(name, "birth_year"):
		return int64(1940 + rng.Intn(60))
	case strings.HasSuffix(name, "dep_count"):
		return int64(rng.Intn(10))
	case strings.HasSuffix(name, "vehicle_count"):
		return int64(rng.Intn(5))
	case strings.HasSuffix(name, "gmt_offset"):
		return int64(-8 + rng.Intn(6))
	default:
		return int64(rng.Intn(1000))
	}
}

var stringDomains = map[string][]string{
	"i_category":            {"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"},
	"i_brand":               {"brand#1", "brand#2", "brand#3", "brand#4", "brand#5", "brand#6", "brand#7", "brand#8"},
	"ca_state":              {"CA", "TX", "WA", "NY", "GA", "OH", "IL", "MI"},
	"ca_county":             {"King", "Orange", "Dallas", "Cook", "Fulton", "Wayne"},
	"ca_city":               {"Seattle", "Austin", "Fairview", "Midway", "Oakland"},
	"cd_gender":             {"M", "F"},
	"cd_marital_status":     {"S", "M", "D", "W", "U"},
	"cd_education_status":   {"Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree"},
	"hd_buy_potential":      {"0-500", "501-1000", "1001-5000", ">10000", "Unknown"},
	"s_state":               {"TN", "SD", "AL", "GA", "OH"},
	"s_county":              {"Williamson", "Ziebach", "Walker"},
	"c_preferred_cust_flag": {"Y", "N"},
	"p_channel_email":       {"Y", "N"},
	"sm_type":               {"EXPRESS", "OVERNIGHT", "REGULAR", "TWO DAY", "LIBRARY"},
	"wp_type":               {"order", "review", "dynamic", "feedback", "general"},
	"w_state":               {"TN", "SD", "AL"},
}

func genStringAttr(name string, rng *rand.Rand) string {
	if dom, ok := stringDomains[name]; ok {
		return dom[rng.Intn(len(dom))]
	}
	return fmt.Sprintf("%s_%d", name, rng.Intn(64))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
