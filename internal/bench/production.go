package bench

import (
	"context"
	"fmt"
	"io"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/core"
	"cloudviews/internal/report"
	"cloudviews/internal/signature"
	"cloudviews/internal/workgen"
)

// ProdJob is one job's baseline-vs-CloudViews measurement (one bar pair of
// Figures 11 and 12).
type ProdJob struct {
	JobID           string
	ViewGroup       int // which of the selected views the job contains
	Builder         bool
	BaselineLatency float64
	CVLatency       float64
	BaselineCPU     float64
	CVCPU           float64
}

// LatencyImprovementPct returns the per-job latency improvement
// (negative = slowdown), as plotted in Figure 11.
func (j ProdJob) LatencyImprovementPct() float64 {
	return (1 - j.CVLatency/j.BaselineLatency) * 100
}

// CPUImprovementPct returns the per-job CPU improvement (Figure 12).
func (j ProdJob) CPUImprovementPct() float64 {
	return (1 - j.CVCPU/j.BaselineCPU) * 100
}

// ProdResult is the full production experiment of §7.1.
type ProdResult struct {
	Jobs []ProdJob
	// Aggregates as the paper reports them.
	AvgLatencyImprovementPct   float64 // mean of per-job improvements (paper ≈43%)
	TotalLatencyImprovementPct float64 // 1 - ΣCV/ΣBase (paper ≈60%)
	AvgCPUImprovementPct       float64 // paper ≈36%
	TotalCPUImprovementPct     float64 // paper ≈54%
	ViewsSelected              int
}

// ProdConfig parameterizes the §7.1 experiment. Defaults mirror the paper:
// overlaps appearing at least thrice, costing at least 20% of their job, at
// most one per job, top-3 by utility, and the jobs relevant to those views.
type ProdConfig struct {
	Profile      workgen.Profile
	TopViews     int
	MinFrequency int
	MinCostRatio float64
	MaxJobs      int
	// GroupSizes caps how many jobs are taken per selected view; the
	// paper's workload was 16, 12, and 4 jobs for its three views.
	GroupSizes []int
}

// DefaultProdConfig returns the paper-mirroring configuration. The paper
// hand-picked the three most overlapping computations of a heavy-sharing
// customer workload, so the profile here is the tight producer/consumer
// pipeline case: deep sharing, short private tails.
func DefaultProdConfig() ProdConfig {
	p := workgen.DefaultProfile("prod", 7)
	p.Templates = 420
	p.Users = 56
	p.CloneRate = 0.7
	p.UniqueInputRate = 0.45
	p.MaxExtraSteps = 2
	p.MaxSideBranches = 0
	return ProdConfig{
		Profile:      p,
		TopViews:     3,
		MinFrequency: 3,
		MinCostRatio: 0.4,
		MaxJobs:      32,
		GroupSizes:   []int{16, 12, 4},
	}
}

// RunProduction executes the §7.1 experiment:
//
//  1. run one day (instance 0) of the business-unit workload as history,
//  2. run the CloudViews analyzer with the paper's filters,
//  3. deliver the next instance and pick the jobs relevant to the selected
//     views,
//  4. run each of those jobs twice over the new instance — once with
//     CloudViews off and once with it on, jobs ordered per view group so
//     the first job of each group builds and the rest reuse.
func RunProduction(cfg ProdConfig) (*ProdResult, error) {
	w := workgen.Generate(cfg.Profile)

	// History + analysis. CloudViews is off, so history jobs are fully
	// independent and run through the concurrent pipeline; the analyzer is
	// insensitive to repository observation order.
	hist := core.NewService(w.Catalog, core.Config{Enabled: false})
	histJobs := w.JobsForInstance(0)
	histSpecs := make([]core.JobSpec, len(histJobs))
	for i, j := range histJobs {
		histSpecs[i] = core.JobSpec{Meta: j.Meta, Root: j.Root}
	}
	if _, err := hist.RunBatch(context.Background(), histSpecs, core.BatchOptions{}); err != nil {
		return nil, err
	}
	an := analyzer.New(hist.Repo).Analyze(analyzer.Config{
		MinFrequency: cfg.MinFrequency,
		MinCostRatio: cfg.MinCostRatio,
		MaxPerJob:    1,
		TopK:         cfg.TopViews,
	})
	if len(an.Selected) == 0 {
		return nil, fmt.Errorf("bench: analyzer selected no views; workload too sparse")
	}

	// Next instance: fresh data, same templates.
	w.DeliverInstance(1)
	jobs := w.JobsForInstance(1)

	// Relevant jobs: those whose plan contains a selected computation,
	// grouped by view and ordered so group members run consecutively
	// (the paper ran each view's jobs as a sequence).
	selectedSigs := make([]string, len(an.Selected))
	for i, c := range an.Selected {
		selectedSigs[i] = c.NormSig
	}
	type pick struct {
		job   workgen.Job
		group int
	}
	var picks []pick
	seen := map[string]bool{}
	comp := signature.NewComputer()
	for g, sig := range selectedSigs {
		groupCap := 0
		if g < len(cfg.GroupSizes) {
			groupCap = cfg.GroupSizes[g]
		}
		inGroup := 0
		for _, j := range jobs {
			if seen[j.Meta.JobID] {
				continue
			}
			if planContainsNorm(comp, j, sig) {
				picks = append(picks, pick{job: j, group: g})
				seen[j.Meta.JobID] = true
				inGroup++
				if groupCap > 0 && inGroup >= groupCap {
					break
				}
				if cfg.MaxJobs > 0 && len(picks) >= cfg.MaxJobs {
					break
				}
			}
		}
		if cfg.MaxJobs > 0 && len(picks) >= cfg.MaxJobs {
			break
		}
	}
	if len(picks) < 2 {
		return nil, fmt.Errorf("bench: only %d relevant jobs found", len(picks))
	}

	// Baseline pass (CloudViews off) over the new instance. Baseline jobs
	// are independent, so the whole pass goes through the concurrent
	// submission pipeline; simulated latency/CPU are unaffected.
	baseline := core.NewService(w.Catalog, core.Config{Enabled: false})
	baseSpecs := make([]core.JobSpec, len(picks))
	for i, p := range picks {
		baseSpecs[i] = core.JobSpec{Meta: p.job.Meta, Root: p.job.Root}
	}
	baseBatch, err := baseline.RunBatch(context.Background(), baseSpecs, core.BatchOptions{})
	if err != nil {
		return nil, err
	}
	baseRes := map[string]*core.JobResult{}
	for i, p := range picks {
		baseRes[p.job.Meta.JobID] = baseBatch[i]
	}

	// CloudViews pass: same catalog, annotations loaded, group order. The
	// first job of each view group builds (submitted alone, as the paper's
	// sequences did), then the rest of the group runs as a concurrent
	// batch of reusers.
	cv := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: 1})
	cv.Meta.LoadAnalysis(an.Annotations)
	cvRes := make([]*core.JobResult, 0, len(picks))
	for lo := 0; lo < len(picks); {
		hi := lo + 1
		for hi < len(picks) && picks[hi].group == picks[lo].group {
			hi++
		}
		head, err := cv.Run(context.Background(), core.JobSpec{Meta: picks[lo].job.Meta, Root: picks[lo].job.Root})
		if err != nil {
			return nil, err
		}
		cvRes = append(cvRes, head)
		if hi > lo+1 {
			rest := make([]core.JobSpec, 0, hi-lo-1)
			for _, p := range picks[lo+1 : hi] {
				rest = append(rest, core.JobSpec{Meta: p.job.Meta, Root: p.job.Root})
			}
			batch, err := cv.RunBatch(context.Background(), rest, core.BatchOptions{})
			if err != nil {
				return nil, err
			}
			cvRes = append(cvRes, batch...)
		}
		lo = hi
	}
	res := &ProdResult{ViewsSelected: len(an.Selected)}
	var sumBaseLat, sumCVLat, sumBaseCPU, sumCVCPU, sumLatImp, sumCPUImp float64
	for i, p := range picks {
		r := cvRes[i]
		b := baseRes[p.job.Meta.JobID]
		pj := ProdJob{
			JobID:           p.job.Meta.JobID,
			ViewGroup:       p.group,
			Builder:         len(r.Decision.ViewsBuilt) > 0,
			BaselineLatency: b.Result.Latency,
			CVLatency:       r.Result.Latency,
			BaselineCPU:     b.Result.TotalCPU,
			CVCPU:           r.Result.TotalCPU,
		}
		res.Jobs = append(res.Jobs, pj)
		sumBaseLat += pj.BaselineLatency
		sumCVLat += pj.CVLatency
		sumBaseCPU += pj.BaselineCPU
		sumCVCPU += pj.CVCPU
		sumLatImp += pj.LatencyImprovementPct()
		sumCPUImp += pj.CPUImprovementPct()
	}
	n := float64(len(res.Jobs))
	res.AvgLatencyImprovementPct = sumLatImp / n
	res.TotalLatencyImprovementPct = (1 - sumCVLat/sumBaseLat) * 100
	res.AvgCPUImprovementPct = sumCPUImp / n
	res.TotalCPUImprovementPct = (1 - sumCVCPU/sumBaseCPU) * 100
	return res, nil
}

func planContainsNorm(comp *signature.Computer, j workgen.Job, normSig string) bool {
	for _, s := range comp.AllSubgraphs(j.Root) {
		if s.Sig.Normalized == normSig {
			return true
		}
	}
	return false
}

// WriteProd renders the Figures 11 and 12 tables plus the paper-style
// aggregates.
func WriteProd(w io.Writer, r *ProdResult) {
	t := &report.Table{Header: []string{"job", "view", "builder",
		"base latency", "cv latency", "latency Δ%", "base CPU", "cv CPU", "CPU Δ%"}}
	for i, j := range r.Jobs {
		t.Add(fmt.Sprintf("%d", i+1), j.ViewGroup+1, j.Builder,
			j.BaselineLatency, j.CVLatency, j.LatencyImprovementPct(),
			j.BaselineCPU, j.CVCPU, j.CPUImprovementPct())
	}
	t.Write(w)
	fmt.Fprintf(w, "\nFigure 11 (latency): average improvement %.1f%%, overall %.1f%%\n",
		r.AvgLatencyImprovementPct, r.TotalLatencyImprovementPct)
	fmt.Fprintf(w, "Figure 12 (CPU):     average improvement %.1f%%, overall %.1f%%\n",
		r.AvgCPUImprovementPct, r.TotalCPUImprovementPct)
	var maxUp, maxDown float64
	for _, j := range r.Jobs {
		if v := j.LatencyImprovementPct(); v > maxUp {
			maxUp = v
		}
		if v := j.LatencyImprovementPct(); v < maxDown {
			maxDown = v
		}
	}
	fmt.Fprintf(w, "max latency speedup %.1f%%, max slowdown %.1f%% (builders pay materialization)\n",
		maxUp, maxDown)
}
