package bench

// Golden pin of the frontend: the exact signatures the signature package
// computes and the exact Decisions the optimizer takes on the two paper
// workloads (§7.1 production and §7.2 TPC-DS). The files under testdata/
// were recorded before the frontend fast path landed; any byte-level drift
// in signature computation, view matching, cost-based rejection, or
// materialization injection fails these tests. Regenerate deliberately with
//
//	go test ./internal/bench -run TestGoldenFrontend -update
//
// Both workloads run fully serially here — the golden contract includes
// decision order, which concurrent submission legitimately perturbs.

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/core"
	"cloudviews/internal/optimizer"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/tpcds"
	"cloudviews/internal/workgen"
	"cloudviews/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the frontend golden files")

func TestGoldenFrontendProduction(t *testing.T) {
	cfg := DefaultProdConfig()
	w := workgen.Generate(cfg.Profile)

	// History instance, serially: the analyzer input must be identical to
	// RunProduction's (it is order-insensitive, but serial keeps the golden
	// run self-contained and deterministic).
	hist := core.NewService(w.Catalog, core.Config{Enabled: false})
	for _, j := range w.JobsForInstance(0) {
		if _, err := hist.Submit(core.JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
			t.Fatal(err)
		}
	}
	an := analyzer.New(hist.Repo).Analyze(analyzer.Config{
		MinFrequency: cfg.MinFrequency,
		MinCostRatio: cfg.MinCostRatio,
		MaxPerJob:    1,
		TopK:         cfg.TopViews,
	})
	if len(an.Selected) == 0 {
		t.Fatal("analyzer selected no views")
	}

	w.DeliverInstance(1)
	jobs := w.JobsForInstance(1)

	// Same relevant-job picking as RunProduction: per selected view, in
	// group order.
	comp := signature.NewComputer()
	var picks []workgen.Job
	seen := map[string]bool{}
	for g, c := range an.Selected {
		groupCap := 0
		if g < len(cfg.GroupSizes) {
			groupCap = cfg.GroupSizes[g]
		}
		inGroup := 0
		for _, j := range jobs {
			if seen[j.Meta.JobID] {
				continue
			}
			if planContainsNorm(comp, j, c.NormSig) {
				picks = append(picks, j)
				seen[j.Meta.JobID] = true
				inGroup++
				if groupCap > 0 && inGroup >= groupCap {
					break
				}
				if cfg.MaxJobs > 0 && len(picks) >= cfg.MaxJobs {
					break
				}
			}
		}
		if cfg.MaxJobs > 0 && len(picks) >= cfg.MaxJobs {
			break
		}
	}
	if len(picks) < 2 {
		t.Fatalf("only %d relevant jobs", len(picks))
	}

	cv := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: 1})
	cv.Meta.LoadAnalysis(an.Annotations)

	var lines []string
	for _, j := range picks {
		lines = append(lines, sigLine(comp, j.Meta.JobID, j.Root))
		r, err := cv.Submit(core.JobSpec{Meta: j.Meta, Root: j.Root})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, decLine(j.Meta.JobID, r.Decision))
	}
	checkGolden(t, "golden_frontend_production.txt", lines)
}

func TestGoldenFrontendTPCDS(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-DS golden run; skipped in -short mode")
	}
	cfg := DefaultTPCDSConfig()
	cat := tpcds.Generate(cfg.Scale, cfg.Seed)
	builder := &tpcds.Builder{Cat: cat}
	queries := builder.Queries()

	meta := func(q tpcds.Query) workload.JobMeta {
		return workload.JobMeta{
			JobID: q.Name, Cluster: "tpcds", BusinessUnit: "tpcds",
			VC: "tpcds_vc", User: "bench", TemplateID: q.Name, Period: 1,
		}
	}

	base := core.NewService(cat, core.Config{Enabled: false})
	for _, q := range queries {
		if _, err := base.Submit(core.JobSpec{Meta: meta(q), Root: q.Root}); err != nil {
			t.Fatal(err)
		}
	}
	an := analyzer.New(base.Repo).Analyze(analyzer.Config{
		MinFrequency: 3,
		MinCostRatio: 0.05,
		TopK:         cfg.TopViews,
	})
	if len(an.Selected) == 0 {
		t.Fatal("analyzer selected no views")
	}

	cv := core.NewService(cat, core.Config{Enabled: true, MaxViewsPerJob: 1})
	cv.Meta.LoadAnalysis(an.Annotations)
	order := coordinateOrder(queries, an.JobOrder)

	comp := signature.NewComputer()
	var lines []string
	for _, q := range order {
		lines = append(lines, sigLine(comp, q.Name, q.Root))
		r, err := cv.Submit(core.JobSpec{Meta: meta(q), Root: q.Root})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, decLine(q.Name, r.Decision))
	}
	checkGolden(t, "golden_frontend_tpcds.txt", lines)
}

// sigLine pins every signature of the job: the root pair verbatim plus a
// digest over all subgraph pairs in post-order, so any byte drift in any
// subgraph signature shows up.
func sigLine(comp *signature.Computer, jobID string, root *plan.Node) string {
	subs := comp.AllSubgraphs(root)
	h := sha256.New()
	for _, s := range subs {
		h.Write([]byte(s.Sig.Precise))
		h.Write([]byte{'|'})
		h.Write([]byte(s.Sig.Normalized))
		h.Write([]byte{'\n'})
	}
	rootSig := comp.Of(root)
	return fmt.Sprintf("sig %s root=%s/%s subgraphs=%d all=%s",
		jobID, rootSig.Precise, rootSig.Normalized, len(subs),
		hex.EncodeToString(h.Sum(nil))[:16])
}

func decLine(jobID string, d *optimizer.Decision) string {
	used := make([]string, len(d.ViewsUsed))
	for i, v := range d.ViewsUsed {
		used[i] = v.PreciseSig
	}
	built := make([]string, len(d.ViewsBuilt))
	for i, v := range d.ViewsBuilt {
		built[i] = v.PreciseSig
	}
	// Order is part of the contract: ViewsUsed in match order, ViewsBuilt
	// in injection (post-order) order, rejections in match order.
	return fmt.Sprintf("dec %s used=%s built=%s rejected=%s cost=%s",
		jobID,
		strings.Join(used, ","),
		strings.Join(built, ","),
		strings.Join(d.ViewsRejected, ","),
		strconv.FormatFloat(d.EstimatedCost, 'x', -1, 64))
}

func checkGolden(t *testing.T, name string, lines []string) {
	t.Helper()
	got := strings.Join(lines, "\n") + "\n"
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", path, len(lines))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s line %d:\n got: %s\nwant: %s", name, i+1, g, w)
		}
	}
	t.Fatalf("%s differs in trailing whitespace", name)
}
