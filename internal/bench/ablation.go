package bench

import (
	"context"
	"errors"
	"fmt"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/core"
	"cloudviews/internal/metadata"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/workgen"
	"cloudviews/internal/workload"
)

// The ablation harnesses isolate the design choices DESIGN.md calls out:
// the feedback loop, view physical design, job coordination, early
// materialization, and the per-job view limit. Each returns the metric
// pair "with the mechanism" vs "without".

// FeedbackAblationResult compares view selection driven by measured
// runtime statistics (the feedback loop, §5.1) against selection driven by
// naive compile-time estimates.
type FeedbackAblationResult struct {
	// Realized total CPU improvement over the consumer instance.
	MeasuredStatsPct float64
	EstimatesPct     float64
}

// RunFeedbackAblation runs the production experiment twice with identical
// workloads, swapping only the utility source.
func RunFeedbackAblation(seed int64) (*FeedbackAblationResult, error) {
	withStats, err := runSelectionVariant(seed, false)
	if err != nil {
		return nil, err
	}
	withEst, err := runSelectionVariant(seed, true)
	if err != nil {
		return nil, err
	}
	return &FeedbackAblationResult{MeasuredStatsPct: withStats, EstimatesPct: withEst}, nil
}

// naiveEstimate mimics the classic what-if-optimizer failure of §5.1:
// fixed per-operator selectivities compound with depth, so deep subgraphs
// — precisely the expensive reductions worth materializing — are estimated
// absurdly cheap, while shallow scans look relatively attractive.
func naiveEstimate(o workload.Observation) float64 {
	cost := 600.0
	for i := 2; i < o.Ops && i < 10; i++ {
		cost *= 0.55
	}
	return cost * float64(o.Ops)
}

func runSelectionVariant(seed int64, useEstimates bool) (float64, error) {
	cfg := DefaultProdConfig()
	cfg.Profile.Seed = seed
	w := workgen.Generate(cfg.Profile)
	hist := core.NewService(w.Catalog, core.Config{Enabled: false})
	for _, j := range w.JobsForInstance(0) {
		if _, err := hist.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
			return 0, err
		}
	}
	acfg := analyzer.Config{
		MinFrequency: cfg.MinFrequency,
		MinCostRatio: cfg.MinCostRatio,
		MaxPerJob:    1,
		TopK:         cfg.TopViews,
	}
	if useEstimates {
		acfg.UseEstimates = true
		acfg.EstimateCost = naiveEstimate
		acfg.MinCostRatio = 0 // estimate-based ratios are incomparable
	}
	an := analyzer.New(hist.Repo).Analyze(acfg)
	if len(an.Selected) == 0 {
		return 0, errors.New("bench: ablation selected no views")
	}

	// Consumer instance: run every job, annotations loaded; measure the
	// realized total CPU against a baseline pass.
	w.DeliverInstance(1)
	jobs := w.JobsForInstance(1)
	base := core.NewService(w.Catalog, core.Config{Enabled: false})
	var baseCPU float64
	for _, j := range jobs {
		r, err := base.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root})
		if err != nil {
			return 0, err
		}
		baseCPU += r.Result.TotalCPU
	}
	cv := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: 1})
	cv.Meta.LoadAnalysis(an.Annotations)
	var cvCPU float64
	for _, j := range jobs {
		r, err := cv.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root})
		if err != nil {
			return 0, err
		}
		cvCPU += r.Result.TotalCPU
	}
	return (1 - cvCPU/baseCPU) * 100, nil
}

// DesignAblationResult compares consumer latency when views are laid out
// with the analyzer-elected physical design (§5.3) vs a naive
// single-partition layout.
type DesignAblationResult struct {
	ElectedLatency float64
	NaiveLatency   float64
}

// RunPhysicalDesignAblation builds the same view twice — once with the
// elected design, once gathered to one partition — and measures a
// consumer's simulated latency against each. A single-partition view
// collapses the consumer's downstream parallelism, which is exactly why
// §5.3 says poorly designed views end up unused.
func RunPhysicalDesignAblation(seed int64) (*DesignAblationResult, error) {
	cfg := DefaultProdConfig()
	cfg.Profile.Seed = seed
	w := workgen.Generate(cfg.Profile)
	hist := core.NewService(w.Catalog, core.Config{Enabled: false})
	for _, j := range w.JobsForInstance(0) {
		if _, err := hist.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
			return nil, err
		}
	}
	an := analyzer.New(hist.Repo).Analyze(analyzer.Config{
		MinFrequency: cfg.MinFrequency, MinCostRatio: cfg.MinCostRatio,
		MaxPerJob: 1, TopK: 1,
	})
	if len(an.Selected) == 0 {
		return nil, errors.New("bench: no view selected")
	}
	w.DeliverInstance(1)
	jobs := w.JobsForInstance(1)
	sel := an.Selected[0].NormSig
	comp := signature.NewComputer()
	var builder, consumer *workgen.Job
	for i := range jobs {
		if planContainsNorm(comp, jobs[i], sel) {
			if builder == nil {
				builder = &jobs[i]
			} else if consumer == nil {
				consumer = &jobs[i]
				break
			}
		}
	}
	if consumer == nil {
		return nil, errors.New("bench: not enough jobs contain the view")
	}

	run := func(anns []metadata.Annotation) (float64, error) {
		svc := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: 1})
		svc.Meta.LoadAnalysis(anns)
		if _, err := svc.Run(context.Background(), core.JobSpec{Meta: builder.Meta, Root: builder.Root}); err != nil {
			return 0, err
		}
		r, err := svc.Run(context.Background(), core.JobSpec{Meta: consumer.Meta, Root: consumer.Root})
		if err != nil {
			return 0, err
		}
		if len(r.Decision.ViewsUsed) == 0 {
			return 0, errors.New("bench: consumer did not reuse")
		}
		return r.Result.Latency, nil
	}

	elected, err := run(an.Annotations)
	if err != nil {
		return nil, err
	}
	naiveAnns := append([]metadata.Annotation(nil), an.Annotations...)
	for i := range naiveAnns {
		naiveAnns[i].Props = plan.PhysicalProps{
			Part: plan.Partitioning{Kind: plan.PartSingleton, Count: 1},
		}
	}
	naive, err := run(naiveAnns)
	if err != nil {
		return nil, err
	}
	return &DesignAblationResult{ElectedLatency: elected, NaiveLatency: naive}, nil
}

// CoordinationAblationResult compares the realized improvement when jobs
// are submitted in the analyzer's coordinated order (§6.5: builders first)
// vs an adversarial order (all consumers before the builder, as happens
// with concurrent uncoordinated arrival).
type CoordinationAblationResult struct {
	CoordinatedPct   float64
	UncoordinatedPct float64
}

// RunCoordinationAblation measures both orders on the production workload.
func RunCoordinationAblation(seed int64) (*CoordinationAblationResult, error) {
	cfg := DefaultProdConfig()
	cfg.Profile.Seed = seed
	w := workgen.Generate(cfg.Profile)
	hist := core.NewService(w.Catalog, core.Config{Enabled: false})
	for _, j := range w.JobsForInstance(0) {
		if _, err := hist.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
			return nil, err
		}
	}
	an := analyzer.New(hist.Repo).Analyze(analyzer.Config{
		MinFrequency: cfg.MinFrequency, MinCostRatio: cfg.MinCostRatio,
		MaxPerJob: 1, TopK: cfg.TopViews,
	})
	if len(an.Selected) == 0 {
		return nil, errors.New("bench: no views selected")
	}
	w.DeliverInstance(1)
	jobs := w.JobsForInstance(1)

	base := core.NewService(w.Catalog, core.Config{Enabled: false})
	var baseCPU float64
	for _, j := range jobs {
		r, err := base.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root})
		if err != nil {
			return nil, err
		}
		baseCPU += r.Result.TotalCPU
	}

	run := func(order []workgen.Job, concurrent bool) (float64, error) {
		svc := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: 1})
		svc.Meta.LoadAnalysis(an.Annotations)
		var cpu float64
		if concurrent {
			// Uncoordinated concurrent arrival: every job is optimized
			// before any finishes, so no job sees another's views.
			plans := make([]*plan.Node, len(order))
			for i, j := range order {
				anns := svc.Meta.RelevantViews(j.Meta.VC, []string{j.Meta.TemplateID, j.Template.Input})
				plans[i], _ = svc.Opt.Optimize(j.Root, j.Meta.JobID, anns, 0)
			}
			for i, j := range order {
				res, err := svc.Exec.Run(plans[i], j.Meta.JobID, 0)
				if err != nil {
					return 0, err
				}
				cpu += res.TotalCPU
			}
			return cpu, nil
		}
		for _, j := range order {
			r, err := svc.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root})
			if err != nil {
				return 0, err
			}
			cpu += r.Result.TotalCPU
		}
		return cpu, nil
	}

	coordCPU, err := run(coordinatedJobOrder(jobs, an.JobOrder), false)
	if err != nil {
		return nil, err
	}
	uncoordCPU, err := run(jobs, true)
	if err != nil {
		return nil, err
	}
	return &CoordinationAblationResult{
		CoordinatedPct:   (1 - coordCPU/baseCPU) * 100,
		UncoordinatedPct: (1 - uncoordCPU/baseCPU) * 100,
	}, nil
}

// coordinatedJobOrder puts the analyzer's builder jobs first. The hints
// name instance-0 job IDs; recurring instances map by template.
func coordinatedJobOrder(jobs []workgen.Job, hints []string) []workgen.Job {
	rank := map[string]int{}
	for i, h := range hints {
		rank[templateOf(h)] = i + 1
	}
	out := append([]workgen.Job(nil), jobs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less2(out[j], out[j-1], rank); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less2(a, b workgen.Job, rank map[string]int) bool {
	ra, rb := rank[a.Meta.TemplateID], rank[b.Meta.TemplateID]
	if ra == 0 {
		ra = 1 << 30
	}
	if rb == 0 {
		rb = 1 << 30
	}
	return ra < rb
}

// templateOf strips the instance suffix from a generated job ID.
func templateOf(jobID string) string {
	for i := len(jobID) - 1; i >= 0; i-- {
		if jobID[i] == '-' {
			return jobID[:i]
		}
	}
	return jobID
}

// EarlyMatAblationResult compares recovery cost after a builder crash with
// early materialization on vs off: with early publication the next job
// reuses the checkpointed view; without, it recomputes and rebuilds.
type EarlyMatAblationResult struct {
	EarlyCPU float64
	LateCPU  float64
}

// crashAtKind is an exec.FaultHook that permanently crashes the first
// operator of the targeted kind — the builder-failure probe for the
// early-materialization ablation.
type crashAtKind struct{ kind plan.OpKind }

func (c crashAtKind) VertexDone(_, _ string, k plan.OpKind, _ int) error {
	if k == c.kind {
		return fmt.Errorf("injected builder crash")
	}
	return nil
}

func (c crashAtKind) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

// RunEarlyMatAblation injects a builder failure after the view seals and
// measures the follow-up job's CPU under both publication modes.
func RunEarlyMatAblation(seed int64) (*EarlyMatAblationResult, error) {
	runMode := func(late bool) (float64, error) {
		cfg := DefaultProdConfig()
		cfg.Profile.Seed = seed
		w := workgen.Generate(cfg.Profile)
		hist := core.NewService(w.Catalog, core.Config{Enabled: false})
		for _, j := range w.JobsForInstance(0) {
			if _, err := hist.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
				return 0, err
			}
		}
		an := analyzer.New(hist.Repo).Analyze(analyzer.Config{
			MinFrequency: cfg.MinFrequency, MinCostRatio: cfg.MinCostRatio,
			MaxPerJob: 1, TopK: 1,
		})
		if len(an.Selected) == 0 {
			return 0, errors.New("bench: no view selected")
		}
		w.DeliverInstance(1)
		jobs := w.JobsForInstance(1)
		comp := signature.NewComputer()
		var builder, next *workgen.Job
		for i := range jobs {
			if planContainsNorm(comp, jobs[i], an.Selected[0].NormSig) {
				if builder == nil {
					builder = &jobs[i]
				} else {
					next = &jobs[i]
					break
				}
			}
		}
		if next == nil {
			return 0, errors.New("bench: not enough relevant jobs")
		}
		svc := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: 1, LatePublish: late})
		svc.Meta.LoadAnalysis(an.Annotations)
		// The builder crashes right after the Materialize operator runs.
		// The crash is permanent (not Transient), so the vertex-retry loop
		// fails the job on the first attempt.
		svc.Exec.Faults = crashAtKind{plan.OpMaterialize}
		if _, err := svc.Run(context.Background(), core.JobSpec{Meta: builder.Meta, Root: builder.Root}); err == nil {
			return 0, errors.New("bench: expected injected failure")
		}
		svc.Exec.Faults = nil
		r, err := svc.Run(context.Background(), core.JobSpec{Meta: next.Meta, Root: next.Root})
		if err != nil {
			return 0, err
		}
		return r.Result.TotalCPU, nil
	}
	early, err := runMode(false)
	if err != nil {
		return nil, err
	}
	late, err := runMode(true)
	if err != nil {
		return nil, err
	}
	return &EarlyMatAblationResult{EarlyCPU: early, LateCPU: late}, nil
}

// ViewLimitAblationResult compares realized improvement under different
// per-job materialization limits (§6.2).
type ViewLimitAblationResult struct {
	// ImprovementPct maps limit -> total CPU improvement.
	ImprovementPct map[int]float64
}

// RunViewLimitAblation reruns the production workload with per-job limits
// of 1, 2, and 4 views.
func RunViewLimitAblation(seed int64) (*ViewLimitAblationResult, error) {
	cfg := DefaultProdConfig()
	cfg.Profile.Seed = seed
	w := workgen.Generate(cfg.Profile)
	hist := core.NewService(w.Catalog, core.Config{Enabled: false})
	for _, j := range w.JobsForInstance(0) {
		if _, err := hist.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
			return nil, err
		}
	}
	an := analyzer.New(hist.Repo).Analyze(analyzer.Config{
		MinFrequency: 2, MinCostRatio: 0.1, TopK: 12,
	})
	if len(an.Selected) == 0 {
		return nil, errors.New("bench: no views selected")
	}
	w.DeliverInstance(1)
	jobs := w.JobsForInstance(1)
	base := core.NewService(w.Catalog, core.Config{Enabled: false})
	var baseCPU float64
	for _, j := range jobs {
		r, err := base.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root})
		if err != nil {
			return nil, err
		}
		baseCPU += r.Result.TotalCPU
	}
	res := &ViewLimitAblationResult{ImprovementPct: map[int]float64{}}
	for _, limit := range []int{1, 2, 4} {
		svc := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: limit})
		svc.Meta.LoadAnalysis(an.Annotations)
		var cpu float64
		for _, j := range jobs {
			r, err := svc.Run(context.Background(), core.JobSpec{Meta: j.Meta, Root: j.Root})
			if err != nil {
				return nil, err
			}
			cpu += r.Result.TotalCPU
		}
		res.ImprovementPct[limit] = (1 - cpu/baseCPU) * 100
	}
	return res, nil
}
