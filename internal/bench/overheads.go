package bench

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"time"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/core"
	"cloudviews/internal/metadata"
	"cloudviews/internal/signature"
	"cloudviews/internal/workgen"
)

// OverheadResult reports the §7.3 overhead measurements.
type OverheadResult struct {
	// Analyzer throughput over a generated history.
	AnalyzerJobs      int
	AnalyzerSubgraphs int
	AnalyzerWall      time.Duration

	// Metadata lookup latency over the HTTP front end.
	LookupAvg1Thread  time.Duration
	LookupAvg5Threads time.Duration
	Lookups           int

	// Optimizer wall time per job: plain (no annotations), when creating
	// a materialized view, and when consuming one. The paper observed
	// +28% when creating and −17% when consuming relative to plain.
	OptimizePlain  time.Duration
	OptimizeCreate time.Duration
	OptimizeUse    time.Duration
}

// RunOverheads measures all three §7.3 overheads on a generated workload.
func RunOverheads(seed int64) (*OverheadResult, error) {
	p := workgen.DefaultProfile("overheads", seed)
	p.Templates = 150
	w := workgen.Generate(p)
	repo, err := RunWorkload(w, 0)
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{AnalyzerJobs: repo.NumJobs(), AnalyzerSubgraphs: len(repo.Observations())}

	// 1. Analyzer wall time.
	start := time.Now()
	an := analyzer.New(repo).Analyze(analyzer.Config{MinFrequency: 2, TopK: 20})
	res.AnalyzerWall = time.Since(start)

	// 2. Metadata service lookup latency over HTTP, 1 vs 5 client threads.
	svc := metadata.NewService()
	svc.LoadAnalysis(an.Annotations)
	srv := httptest.NewServer(metadata.Handler(svc))
	defer srv.Close()
	tags := [][]string{}
	for _, j := range w.JobsForInstance(0) {
		tags = append(tags, []string{j.Meta.TemplateID, j.Template.Input})
		if len(tags) >= 200 {
			break
		}
	}
	res.Lookups = len(tags)
	res.LookupAvg1Thread = lookupLatency(srv.URL, tags, 1)
	res.LookupAvg5Threads = lookupLatency(srv.URL, tags, 5)

	// 3. Optimizer time: pick a job that contains a selected view.
	res.OptimizePlain, res.OptimizeCreate, res.OptimizeUse, err = optimizerOverheads(w, an)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// lookupLatency measures the mean RelevantViews round trip with the given
// client concurrency (the paper's 19 ms single-thread vs 14.3 ms with 5
// threads — ours are in-process, so absolute values are microseconds).
func lookupLatency(url string, tags [][]string, threads int) time.Duration {
	client := metadata.NewClient(url)
	var wg sync.WaitGroup
	per := (len(tags) + threads - 1) / threads
	start := time.Now()
	for t := 0; t < threads; t++ {
		lo := t * per
		hi := lo + per
		if hi > len(tags) {
			hi = len(tags)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(batch [][]string) {
			defer wg.Done()
			for _, tg := range batch {
				client.RelevantViews("bench_vc", tg)
			}
		}(tags[lo:hi])
	}
	wg.Wait()
	return time.Since(start) / time.Duration(len(tags))
}

// optimizerOverheads times Optimize for the three regimes.
func optimizerOverheads(w *workgen.Workload, an *analyzer.Analysis) (plain, create, use time.Duration, err error) {
	if len(an.Selected) == 0 {
		return 0, 0, 0, fmt.Errorf("bench: no views selected")
	}
	// Find a job containing the top view.
	jobs := w.JobsForInstance(0)
	comp := signature.NewComputer()
	var target *workgen.Job
	for i := range jobs {
		if planContainsNorm(comp, jobs[i], an.Selected[0].NormSig) {
			target = &jobs[i]
			break
		}
	}
	if target == nil {
		return 0, 0, 0, fmt.Errorf("bench: no job contains the selected view")
	}

	// Best-of-batches timing: the per-call work is microseconds, so GC
	// pauses and scheduler noise dominate a single mean. The minimum
	// batch average is the standard robust estimator here.
	timeIt := func(f func()) time.Duration {
		const batches, iters = 7, 100
		for i := 0; i < 20; i++ {
			f() // warm up
		}
		best := time.Duration(1<<62 - 1)
		for b := 0; b < batches; b++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start) / iters; d < best {
				best = d
			}
		}
		return best
	}

	// Plain: the full CloudViews optimization pipeline runs (signature
	// computation, matching, follow-up) but no annotation matches — the
	// common case for a job with no selected overlaps. This is the
	// baseline the paper's ±percentages are measured against.
	svcPlain := core.NewService(w.Catalog, core.Config{Enabled: true})
	noMatch := []metadata.Annotation{{NormSig: "no-such-signature", Tags: []string{"x"}}}
	plain = timeIt(func() {
		svcPlain.Opt.Optimize(target.Root, "plain", noMatch, 0)
	})

	// Create: the annotation matches and nothing is materialized yet, so
	// every Optimize proposes the build lock (re-proposal by the same
	// job succeeds) and wraps the subgraph in a Materialize operator.
	svcCreate := core.NewService(w.Catalog, core.Config{Enabled: true})
	svcCreate.Meta.LoadAnalysis(an.Annotations)
	annsCreate := svcCreate.Meta.RelevantViews(target.Meta.VC, []string{target.Meta.TemplateID, target.Template.Input})
	create = timeIt(func() {
		svcCreate.Opt.Optimize(target.Root, "creator", annsCreate, 0)
	})

	// Use: the view exists; every Optimize rewrites the plan to read it,
	// and the remaining passes run over the *smaller* tree (the paper's
	// −17% effect). Only the materialized annotation is loaded so the
	// measurement is pure consumption, not consume-plus-build.
	svcUse := core.NewService(w.Catalog, core.Config{Enabled: true})
	svcUse.Meta.LoadAnalysis(an.Annotations)
	r, err := svcUse.Run(context.Background(), core.JobSpec{Meta: target.Meta, Root: target.Root})
	if err != nil {
		return 0, 0, 0, err
	}
	if len(r.Decision.ViewsBuilt) == 0 {
		return 0, 0, 0, fmt.Errorf("bench: target job built nothing")
	}
	var annsUse []metadata.Annotation
	for _, a := range an.Annotations {
		if a.NormSig == r.Decision.ViewsBuilt[0].NormSig {
			annsUse = append(annsUse, a)
		}
	}
	use = timeIt(func() {
		svcUse.Opt.Optimize(target.Root, "user", annsUse, 1)
	})
	return plain, create, use, nil
}

// WriteOverheads renders the §7.3 table.
func WriteOverheads(w io.Writer, r *OverheadResult) {
	fmt.Fprintf(w, "analyzer: %d jobs, %d subgraphs in %v (%.0f jobs/s)\n",
		r.AnalyzerJobs, r.AnalyzerSubgraphs, r.AnalyzerWall,
		float64(r.AnalyzerJobs)/r.AnalyzerWall.Seconds())
	fmt.Fprintf(w, "metadata lookup: avg %v (1 thread) vs %v (5 threads) over %d lookups\n",
		r.LookupAvg1Thread, r.LookupAvg5Threads, r.Lookups)
	cr := (float64(r.OptimizeCreate)/float64(r.OptimizePlain) - 1) * 100
	ur := (float64(r.OptimizeUse)/float64(r.OptimizePlain) - 1) * 100
	fmt.Fprintf(w, "optimizer: plain %v, creating view %v (%+.0f%%), using view %v (%+.0f%%)\n",
		r.OptimizePlain, r.OptimizeCreate, cr, r.OptimizeUse, ur)
}
