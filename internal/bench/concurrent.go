package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/core"
	"cloudviews/internal/data"
	"cloudviews/internal/workgen"
)

// ConcurrentResult reports the concurrent-submission experiment: the same
// reuse-heavy workload pushed through the pipeline serially and as one
// RunBatch, with wall-clock (real, not simulated) timings. Unlike the
// paper figures this measures the harness itself — the parallel DAG
// scheduler plus the batched job pipeline — so the speedup is bounded by
// GOMAXPROCS, and the mismatch counters prove concurrency changed nothing
// about the answers.
type ConcurrentResult struct {
	Jobs        int
	Concurrency int
	SerialWall  time.Duration
	BatchWall   time.Duration
	// Speedup is SerialWall / BatchWall.
	Speedup float64
	// JobsPerSec is the batched pipeline's throughput.
	JobsPerSec float64
	// OutputMismatches counts jobs whose rows differed between the serial
	// and batched passes; DecisionMismatches counts differing view-reuse
	// decisions. Both must be zero.
	OutputMismatches   int
	DecisionMismatches int
}

// RunConcurrentSubmit runs the concurrency experiment at the given batch
// concurrency (≤ 0 means GOMAXPROCS).
//
// Setup (untimed): generate a sharing-heavy workload, run instance 0 as
// history, analyze, deliver instance 1, and warm two identical services —
// each builds every selected view via one serial pass — so both measured
// passes are pure-reuse and reuse identical view stores. Measured: the
// instance-1 jobs resubmitted serially on one service, then as a single
// RunBatch on the other.
func RunConcurrentSubmit(concurrency int) (*ConcurrentResult, error) {
	p := workgen.DefaultProfile("conc", 11)
	p.Templates = 48
	p.Users = 16
	p.CloneRate = 0.6
	w := workgen.Generate(p)

	hist := core.NewService(w.Catalog, core.Config{Enabled: false})
	histJobs := w.JobsForInstance(0)
	histSpecs := make([]core.JobSpec, len(histJobs))
	for i, j := range histJobs {
		histSpecs[i] = core.JobSpec{Meta: j.Meta, Root: j.Root}
	}
	if _, err := hist.RunBatch(context.Background(), histSpecs, core.BatchOptions{Concurrency: concurrency}); err != nil {
		return nil, err
	}
	an := analyzer.New(hist.Repo).Analyze(analyzer.Config{
		MinFrequency: 2,
		MinCostRatio: 0.1,
		MaxPerJob:    1,
		TopK:         4,
	})
	if len(an.Selected) == 0 {
		return nil, fmt.Errorf("bench: concurrent workload selected no views")
	}

	w.DeliverInstance(1)
	jobs := w.JobsForInstance(1)
	specs := make([]core.JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = core.JobSpec{Meta: j.Meta, Root: j.Root}
	}

	newWarm := func() (*core.Service, error) {
		s := core.NewService(w.Catalog, core.Config{Enabled: true, MaxViewsPerJob: 1})
		s.Meta.LoadAnalysis(an.Annotations)
		for _, spec := range specs {
			if _, err := s.Run(context.Background(), spec); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	sSerial, err := newWarm()
	if err != nil {
		return nil, err
	}
	sBatch, err := newWarm()
	if err != nil {
		return nil, err
	}

	start := time.Now()
	serial := make([]*core.JobResult, len(specs))
	for i, spec := range specs {
		r, err := sSerial.Run(context.Background(), spec)
		if err != nil {
			return nil, err
		}
		serial[i] = r
	}
	serialWall := time.Since(start)

	start = time.Now()
	batch, err := sBatch.RunBatch(context.Background(), specs, core.BatchOptions{Concurrency: concurrency})
	if err != nil {
		return nil, err
	}
	batchWall := time.Since(start)

	res := &ConcurrentResult{
		Jobs:        len(specs),
		Concurrency: concurrency,
		SerialWall:  serialWall,
		BatchWall:   batchWall,
		Speedup:     float64(serialWall) / float64(batchWall),
		JobsPerSec:  float64(len(specs)) / batchWall.Seconds(),
	}
	for i := range specs {
		if !sameOutputs(serial[i], batch[i]) {
			res.OutputMismatches++
		}
		if !sameDecision(serial[i], batch[i]) {
			res.DecisionMismatches++
		}
	}
	return res, nil
}

func sameOutputs(a, b *core.JobResult) bool {
	if len(a.Result.Outputs) != len(b.Result.Outputs) {
		return false
	}
	for name, rows := range a.Result.Outputs {
		if !data.RowsEqual(rows, b.Result.Outputs[name]) {
			return false
		}
	}
	return a.Result.TotalCPU == b.Result.TotalCPU
}

func sameDecision(a, b *core.JobResult) bool {
	sigs := func(r *core.JobResult) []string {
		out := make([]string, 0, len(r.Decision.ViewsUsed))
		for _, v := range r.Decision.ViewsUsed {
			out = append(out, v.PreciseSig)
		}
		sort.Strings(out)
		return out
	}
	sa, sb := sigs(a), sigs(b)
	if len(sa) != len(sb) || len(a.Decision.ViewsBuilt) != len(b.Decision.ViewsBuilt) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// WriteConcurrent renders the concurrency experiment summary.
func WriteConcurrent(w io.Writer, r *ConcurrentResult) {
	fmt.Fprintf(w, "concurrent submission: %d jobs, concurrency %d\n", r.Jobs, r.Concurrency)
	fmt.Fprintf(w, "serial %v, batched %v → %.2fx speedup, %.1f jobs/s\n",
		r.SerialWall.Round(time.Millisecond), r.BatchWall.Round(time.Millisecond), r.Speedup, r.JobsPerSec)
	fmt.Fprintf(w, "output mismatches %d, decision mismatches %d (must be 0)\n",
		r.OutputMismatches, r.DecisionMismatches)
}
