package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure1Shapes(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("clusters = %d", len(rows))
	}
	byName := map[string]ClusterOverlap{}
	for _, r := range rows {
		byName[r.Cluster] = r
	}
	// The paper's shape: all clusters except cluster3 have >45% of jobs
	// overlapping; cluster3 is the outlier.
	for _, name := range []string{"cluster1", "cluster2", "cluster4", "cluster5"} {
		if got := byName[name].Stats.PctJobsOverlapping; got < 45 {
			t.Errorf("%s: %%jobs overlapping = %.1f, want >= 45", name, got)
		}
	}
	c3 := byName["cluster3"].Stats.PctJobsOverlapping
	for _, name := range []string{"cluster1", "cluster2", "cluster4", "cluster5"} {
		if byName[name].Stats.PctJobsOverlapping <= c3 {
			t.Errorf("cluster3 (%.1f) should be the low-overlap outlier vs %s (%.1f)",
				c3, name, byName[name].Stats.PctJobsOverlapping)
		}
	}
	// Users with overlap exceed 65% on the high-overlap clusters.
	for _, name := range []string{"cluster1", "cluster2", "cluster4", "cluster5"} {
		if got := byName[name].Stats.PctUsersOverlapping; got < 65 {
			t.Errorf("%s: %%users overlapping = %.1f, want >= 65", name, got)
		}
	}
	var buf bytes.Buffer
	WriteFigure1(&buf, rows)
	if !strings.Contains(buf.String(), "cluster3") {
		t.Error("rendering lost clusters")
	}
}

func TestFigure2Shapes(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PctJobsOverlapping) < 10 {
		t.Fatalf("too few VCs: %d", len(r.PctJobsOverlapping))
	}
	// Heterogeneity across VCs: some high, some low.
	if r.PctJobsOverlapping[0] < 80 {
		t.Errorf("top VC overlap = %.1f, expected a near-saturated VC", r.PctJobsOverlapping[0])
	}
	last := r.PctJobsOverlapping[len(r.PctJobsOverlapping)-1]
	if last > 60 {
		t.Errorf("bottom VC overlap = %.1f, expected low-overlap VCs to exist", last)
	}
	// Average frequencies skewed: median modest, tail high.
	if len(r.AvgFrequency) == 0 {
		t.Fatal("no frequency series")
	}
	if r.AvgFrequency[0] <= r.AvgFrequency[len(r.AvgFrequency)-1] {
		t.Error("frequency series not skewed")
	}
	var buf bytes.Buffer
	WriteFigure2(&buf, r)
	if !strings.Contains(buf.String(), "Figure 2a") {
		t.Error("rendering incomplete")
	}
}

func TestFigure3And4And5Shapes(t *testing.T) {
	f3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	st := f3.Stats
	// Jobs in the largest BU carry multiple overlapping subgraphs each.
	if got := medianOf(st.OverlapsPerJob); got < 2 {
		t.Errorf("median overlaps per job = %.1f, want >= 2", got)
	}
	if len(st.OverlapsPerInput) == 0 || len(st.OverlapsPerUser) == 0 {
		t.Fatal("missing entity series")
	}

	f4, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Breakdown) < 5 {
		t.Fatalf("operator breakdown too thin: %d", len(f4.Breakdown))
	}
	var total float64
	for _, b := range f4.Breakdown {
		total += b.Pct
	}
	if total < 99.5 || total > 100.5 {
		t.Errorf("operator percentages sum to %.1f", total)
	}

	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// Heavy skew: mean frequency well above median (paper: 4.2 vs 2).
	if f5.Stats.AvgFrequency <= medianOf(f5.Stats.Frequencies) {
		t.Errorf("frequency not skewed: avg %.2f vs median %.2f",
			f5.Stats.AvgFrequency, medianOf(f5.Stats.Frequencies))
	}
	// Cost ratios concentrated at the low end (most overlaps are a small
	// fraction of their job).
	low := 0
	for _, cr := range f5.Stats.CostRatios {
		if cr <= 0.5 {
			low++
		}
	}
	if float64(low)/float64(len(f5.Stats.CostRatios)) < 0.5 {
		t.Error("cost ratio distribution not bottom-heavy")
	}
	var buf bytes.Buffer
	WriteFigure3(&buf, f3)
	WriteFigure4(&buf, f4)
	WriteFigure5(&buf, f5)
	if buf.Len() == 0 {
		t.Error("rendering empty")
	}
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j-1] > c[j]; j-- {
			c[j-1], c[j] = c[j], c[j-1]
		}
	}
	return c[len(c)/2]
}

func TestProductionShapes(t *testing.T) {
	r, err := RunProduction(DefaultProdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) < 8 {
		t.Fatalf("only %d jobs in the experiment", len(r.Jobs))
	}
	// The paper's headline shape: substantial overall improvements.
	if r.TotalLatencyImprovementPct < 20 {
		t.Errorf("total latency improvement = %.1f%%, want >= 20%%", r.TotalLatencyImprovementPct)
	}
	if r.AvgLatencyImprovementPct <= 0 {
		t.Errorf("average latency improvement = %.1f%%", r.AvgLatencyImprovementPct)
	}
	if r.TotalCPUImprovementPct < 15 {
		t.Errorf("total CPU improvement = %.1f%%, want >= 15%%", r.TotalCPUImprovementPct)
	}
	// Builders exist and pay for materialization in CPU (Figure 12's
	// negative bars).
	builders := 0
	buildersSlower := 0
	for _, j := range r.Jobs {
		if j.Builder {
			builders++
			if j.CPUImprovementPct() < 0 {
				buildersSlower++
			}
		}
	}
	if builders == 0 {
		t.Fatal("no builder jobs")
	}
	if buildersSlower == 0 {
		t.Error("at least one builder should pay a CPU penalty")
	}
	// Non-builders improve on average.
	var nb, nbImp float64
	for _, j := range r.Jobs {
		if !j.Builder {
			nb++
			nbImp += j.LatencyImprovementPct()
		}
	}
	if nb > 0 && nbImp/nb <= 0 {
		t.Error("consumers should improve on average")
	}
	var buf bytes.Buffer
	WriteProd(&buf, r)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("rendering incomplete")
	}
}

func TestTPCDSShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("tpc-ds run is slow")
	}
	r, err := RunTPCDS(DefaultTPCDSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Queries) != 99 {
		t.Fatalf("queries = %d", len(r.Queries))
	}
	// The paper's shape: a clear majority of queries improve with a
	// conservative top-10 selection, totals in the tens of percent,
	// and both peaks bounded (some queries slow down).
	if r.Improved < 50 {
		t.Errorf("improved = %d/99, want a clear majority", r.Improved)
	}
	if r.TotalImprovementPct < 5 {
		t.Errorf("total improvement = %.1f%%, want >= 5%%", r.TotalImprovementPct)
	}
	if r.PeakImprovementPct <= 0 {
		t.Error("no query improved at all")
	}
	var buf bytes.Buffer
	WriteTPCDS(&buf, r)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Error("rendering incomplete")
	}
}

func TestOverheadShapes(t *testing.T) {
	r, err := RunOverheads(7)
	if err != nil {
		t.Fatal(err)
	}
	if r.AnalyzerJobs == 0 || r.AnalyzerSubgraphs == 0 || r.AnalyzerWall <= 0 {
		t.Error("analyzer measurement empty")
	}
	if r.LookupAvg1Thread <= 0 || r.LookupAvg5Threads <= 0 {
		t.Error("lookup measurement empty")
	}
	// The optimizer orderings compare microsecond wall-clock timings, so a
	// load spike (the full suite runs packages in parallel) can invert
	// them spuriously; a real regression inverts them on every run.
	// Re-measure a bounded number of times before declaring failure.
	for attempt := 0; ; attempt++ {
		// Optimizing with a view to create must cost more than plain
		// optimization (the paper's +28%), and consuming a view shrinks
		// the tree so it must cost less than creating.
		if r.OptimizeCreate > r.OptimizePlain && r.OptimizeUse < r.OptimizeCreate {
			break
		}
		if attempt == 2 {
			t.Errorf("optimizer ordering: plain %v, create %v, use %v; want plain < create and use < create",
				r.OptimizePlain, r.OptimizeCreate, r.OptimizeUse)
			break
		}
		if r, err = RunOverheads(7); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	WriteOverheads(&buf, r)
	if !strings.Contains(buf.String(), "optimizer") {
		t.Error("rendering incomplete")
	}
}
