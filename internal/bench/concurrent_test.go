package bench

import (
	"strings"
	"testing"
)

func TestConcurrentSubmitShapes(t *testing.T) {
	r, err := RunConcurrentSubmit(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs < 8 {
		t.Fatalf("only %d jobs in the concurrent workload; too small to mean anything", r.Jobs)
	}
	if r.OutputMismatches != 0 {
		t.Errorf("%d jobs produced different rows under RunBatch", r.OutputMismatches)
	}
	if r.DecisionMismatches != 0 {
		t.Errorf("%d jobs made different reuse decisions under RunBatch", r.DecisionMismatches)
	}
	if r.SerialWall <= 0 || r.BatchWall <= 0 || r.JobsPerSec <= 0 {
		t.Errorf("degenerate timings: serial=%v batch=%v jobs/s=%v", r.SerialWall, r.BatchWall, r.JobsPerSec)
	}
	var sb strings.Builder
	WriteConcurrent(&sb, r)
	if !strings.Contains(sb.String(), "speedup") {
		t.Errorf("report missing speedup line:\n%s", sb.String())
	}
}
