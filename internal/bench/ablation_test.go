package bench

import "testing"

func TestFeedbackAblation(t *testing.T) {
	r, err := RunFeedbackAblation(2024)
	if err != nil {
		t.Fatal(err)
	}
	// Selection by measured statistics must realize more savings than
	// selection by the naive estimate (the §5.1 argument).
	if r.MeasuredStatsPct <= r.EstimatesPct {
		t.Errorf("feedback loop %.1f%% should beat estimates %.1f%%",
			r.MeasuredStatsPct, r.EstimatesPct)
	}
	if r.MeasuredStatsPct <= 0 {
		t.Errorf("measured-stats selection saved nothing: %.1f%%", r.MeasuredStatsPct)
	}
	t.Logf("feedback=%.1f%% estimates=%.1f%%", r.MeasuredStatsPct, r.EstimatesPct)
}

func TestPhysicalDesignAblation(t *testing.T) {
	r, err := RunPhysicalDesignAblation(2024)
	if err != nil {
		t.Fatal(err)
	}
	// A single-partition view collapses downstream parallelism; the
	// elected design must yield lower consumer latency (§5.3).
	if r.ElectedLatency >= r.NaiveLatency {
		t.Errorf("elected design latency %.1f should beat naive %.1f",
			r.ElectedLatency, r.NaiveLatency)
	}
	t.Logf("elected=%.1f naive=%.1f", r.ElectedLatency, r.NaiveLatency)
}

func TestCoordinationAblation(t *testing.T) {
	r, err := RunCoordinationAblation(2024)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinated submission realizes strictly more reuse than fully
	// concurrent uncoordinated arrival (§6.5).
	if r.CoordinatedPct <= r.UncoordinatedPct {
		t.Errorf("coordinated %.1f%% should beat uncoordinated %.1f%%",
			r.CoordinatedPct, r.UncoordinatedPct)
	}
	t.Logf("coordinated=%.1f%% uncoordinated=%.1f%%", r.CoordinatedPct, r.UncoordinatedPct)
}

func TestEarlyMatAblation(t *testing.T) {
	r, err := RunEarlyMatAblation(2024)
	if err != nil {
		t.Fatal(err)
	}
	// After a builder crash, early materialization lets the next job
	// read the checkpointed view; late publication forces a recompute.
	if r.EarlyCPU >= r.LateCPU {
		t.Errorf("early-mat recovery CPU %.1f should beat late %.1f", r.EarlyCPU, r.LateCPU)
	}
	t.Logf("early=%.1f late=%.1f", r.EarlyCPU, r.LateCPU)
}

func TestViewLimitAblation(t *testing.T) {
	r, err := RunViewLimitAblation(2024)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 2, 4} {
		if _, ok := r.ImprovementPct[limit]; !ok {
			t.Fatalf("missing limit %d", limit)
		}
	}
	// Allowing more views per job must not hurt overall improvement
	// dramatically; typically it helps (more of the selected views get
	// built in the first pass).
	if r.ImprovementPct[4] < r.ImprovementPct[1]-5 {
		t.Errorf("limit-4 improvement %.1f%% collapsed vs limit-1 %.1f%%",
			r.ImprovementPct[4], r.ImprovementPct[1])
	}
	t.Logf("limits: 1=%.1f%% 2=%.1f%% 4=%.1f%%",
		r.ImprovementPct[1], r.ImprovementPct[2], r.ImprovementPct[4])
}
