package bench

import (
	"context"
	"fmt"
	"io"
	"sort"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/core"
	"cloudviews/internal/report"
	"cloudviews/internal/tpcds"
	"cloudviews/internal/workload"
)

// TPCDSQueryResult is one query's baseline-vs-CloudViews runtime (one bar
// of Figure 13).
type TPCDSQueryResult struct {
	ID         int
	Baseline   float64
	CloudViews float64
	UsedViews  int
	BuiltViews int
}

// ImprovementPct returns the percentage runtime improvement.
func (q TPCDSQueryResult) ImprovementPct() float64 {
	return (1 - q.CloudViews/q.Baseline) * 100
}

// TPCDSResult is the §7.2 experiment.
type TPCDSResult struct {
	Queries []TPCDSQueryResult
	// Paper aggregates: 79/99 improved, avg ≈12.5%, total ≈17%.
	Improved            int
	AvgImprovementPct   float64
	TotalImprovementPct float64
	PeakImprovementPct  float64
	PeakSlowdownPct     float64
	ViewsSelected       int
}

// TPCDSConfig parameterizes the experiment.
type TPCDSConfig struct {
	Scale    float64
	Seed     int64
	TopViews int // the paper's conservative top-10
}

// DefaultTPCDSConfig mirrors the paper: all 99 queries, top-10 views.
func DefaultTPCDSConfig() TPCDSConfig {
	return TPCDSConfig{Scale: 1.0, Seed: 42, TopViews: 10}
}

// RunTPCDS executes the §7.2 experiment:
//
//  1. run all 99 queries without CloudViews (this pass doubles as the
//     analysis input, exactly as in the paper),
//  2. run the analyzer and select the top-K overlapping computations,
//  3. rerun the workload with CloudViews on, using the job-coordination
//     hints to submit one builder per view first (§6.5),
//  4. report per-query runtimes.
func RunTPCDS(cfg TPCDSConfig) (*TPCDSResult, error) {
	cat := tpcds.Generate(cfg.Scale, cfg.Seed)
	builder := &tpcds.Builder{Cat: cat}
	queries := builder.Queries()

	meta := func(q tpcds.Query) workload.JobMeta {
		return workload.JobMeta{
			JobID: q.Name, Cluster: "tpcds", BusinessUnit: "tpcds",
			VC: "tpcds_vc", User: "bench", TemplateID: q.Name, Period: 1,
		}
	}

	// Pass 1: baseline (also the analysis history). With CloudViews off
	// the 99 queries are independent, so the pass runs through the
	// concurrent submission pipeline; simulated latencies are unchanged
	// and the analyzer is order-insensitive.
	base := core.NewService(cat, core.Config{Enabled: false})
	baseSpecs := make([]core.JobSpec, len(queries))
	for i, q := range queries {
		baseSpecs[i] = core.JobSpec{Meta: meta(q), Root: q.Root}
	}
	baseBatch, err := base.RunBatch(context.Background(), baseSpecs, core.BatchOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline pass: %w", err)
	}
	baseline := map[int]float64{}
	for i, q := range queries {
		baseline[q.ID] = baseBatch[i].Result.Latency
	}

	// Pass 2: analyze. TPC-DS is not recurring, so candidate filters stay
	// permissive; the conservative part is the top-K cut.
	an := analyzer.New(base.Repo).Analyze(analyzer.Config{
		MinFrequency: 3,
		MinCostRatio: 0.05,
		TopK:         cfg.TopViews,
	})
	if len(an.Selected) == 0 {
		return nil, fmt.Errorf("bench: no overlapping computations selected")
	}

	// Pass 3: CloudViews run with coordinated submission order: the
	// analyzer's builder jobs run first and serially (each materializes a
	// view the rest depend on), then everything else reuses as one
	// concurrent batch — the §6.5 hint-driven schedule.
	cv := core.NewService(cat, core.Config{Enabled: true, MaxViewsPerJob: 1})
	cv.Meta.LoadAnalysis(an.Annotations)
	order := coordinateOrder(queries, an.JobOrder)
	builders := 0
	hinted := map[string]bool{}
	for _, id := range an.JobOrder {
		hinted[id] = true
	}
	for builders < len(order) && hinted[order[builders].Name] {
		builders++
	}
	results := map[int]TPCDSQueryResult{}
	record := func(q tpcds.Query, r *core.JobResult) {
		results[q.ID] = TPCDSQueryResult{
			ID:         q.ID,
			Baseline:   baseline[q.ID],
			CloudViews: r.Result.Latency,
			UsedViews:  len(r.Decision.ViewsUsed),
			BuiltViews: len(r.Decision.ViewsBuilt),
		}
	}
	for _, q := range order[:builders] {
		r, err := cv.Run(context.Background(), core.JobSpec{Meta: meta(q), Root: q.Root})
		if err != nil {
			return nil, fmt.Errorf("bench: cloudviews %s: %w", q.Name, err)
		}
		record(q, r)
	}
	rest := order[builders:]
	restSpecs := make([]core.JobSpec, len(rest))
	for i, q := range rest {
		restSpecs[i] = core.JobSpec{Meta: meta(q), Root: q.Root}
	}
	restBatch, err := cv.RunBatch(context.Background(), restSpecs, core.BatchOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: cloudviews batch: %w", err)
	}
	for i, q := range rest {
		record(q, restBatch[i])
	}

	res := &TPCDSResult{ViewsSelected: len(an.Selected)}
	var sumBase, sumCV, sumImp float64
	for id := 1; id <= 99; id++ {
		q := results[id]
		res.Queries = append(res.Queries, q)
		imp := q.ImprovementPct()
		if imp > 0 {
			res.Improved++
		}
		if imp > res.PeakImprovementPct {
			res.PeakImprovementPct = imp
		}
		if imp < res.PeakSlowdownPct {
			res.PeakSlowdownPct = imp
		}
		sumBase += q.Baseline
		sumCV += q.CloudViews
		sumImp += imp
	}
	res.AvgImprovementPct = sumImp / float64(len(res.Queries))
	res.TotalImprovementPct = (1 - sumCV/sumBase) * 100
	return res, nil
}

// coordinateOrder returns the queries with the analyzer-designated
// builders first (in hint order), then the rest by ID.
func coordinateOrder(queries []tpcds.Query, builderIDs []string) []tpcds.Query {
	isBuilder := map[string]int{}
	for i, id := range builderIDs {
		isBuilder[id] = i + 1
	}
	out := append([]tpcds.Query(nil), queries...)
	sort.SliceStable(out, func(i, j int) bool {
		bi, bj := isBuilder[out[i].Name], isBuilder[out[j].Name]
		switch {
		case bi != 0 && bj != 0:
			return bi < bj
		case bi != 0:
			return true
		case bj != 0:
			return false
		default:
			return out[i].ID < out[j].ID
		}
	})
	return out
}

// WriteTPCDS renders the Figure 13 series and aggregates.
func WriteTPCDS(w io.Writer, r *TPCDSResult) {
	t := &report.Table{Header: []string{"query", "baseline", "cloudviews", "Δ%", "used", "built"}}
	for _, q := range r.Queries {
		t.Add(fmt.Sprintf("q%d", q.ID), q.Baseline, q.CloudViews, q.ImprovementPct(), q.UsedViews, q.BuiltViews)
	}
	t.Write(w)
	fmt.Fprintf(w, "\nFigure 13: %d of %d queries improved; avg %.1f%%, total %.1f%%; peak +%.1f%% / %.1f%%\n",
		r.Improved, len(r.Queries), r.AvgImprovementPct, r.TotalImprovementPct,
		r.PeakImprovementPct, r.PeakSlowdownPct)
	fmt.Fprintf(w, "views selected: %d\n", r.ViewsSelected)
}
