// Package bench contains the experiment harnesses that regenerate every
// table and figure of the paper's evaluation (§2 workload analysis and §7
// performance evaluation). Each harness returns a structured result; the
// cmd/ binaries and the root bench_test.go render them.
package bench

import (
	"fmt"
	"io"
	"sort"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/exec"
	"cloudviews/internal/plan"
	"cloudviews/internal/report"
	"cloudviews/internal/storage"
	"cloudviews/internal/workgen"
	"cloudviews/internal/workload"
)

// ClusterProfiles returns the five cluster configurations behind Figure 1.
// They differ in how much script cloning and input sharing each cluster's
// tenants exhibit; cluster3 is the low-overlap outlier of the figure.
func ClusterProfiles() []workgen.Profile {
	mk := func(name string, seed int64, clone, uniq float64, templates int) workgen.Profile {
		p := workgen.DefaultProfile(name, seed)
		p.CloneRate = clone
		p.UniqueInputRate = uniq
		p.Templates = templates
		return p
	}
	return []workgen.Profile{
		mk("cluster1", 101, 0.55, 0.55, 140),
		mk("cluster2", 102, 0.65, 0.45, 160),
		mk("cluster3", 103, 0.10, 0.97, 120), // the low-overlap cluster
		mk("cluster4", 104, 0.60, 0.50, 150),
		mk("cluster5", 105, 0.70, 0.40, 140),
	}
}

// ClusterOverlap is one cluster's Figure 1 bar triple.
type ClusterOverlap struct {
	Cluster string
	Stats   *analyzer.OverlapStats
}

// RunWorkload executes one instance of every job of a generated cluster
// and returns the populated repository.
func RunWorkload(w *workgen.Workload, instance int64) (*workload.Repository, error) {
	ex := &exec.Executor{Catalog: w.Catalog, Store: storage.NewStore()}
	repo := workload.NewRepository()
	for _, j := range w.JobsForInstance(instance) {
		res, err := ex.Run(j.Root, j.Meta.JobID, instance)
		if err != nil {
			return nil, fmt.Errorf("bench: job %s: %w", j.Meta.JobID, err)
		}
		repo.Record(j.Meta, j.Root, res)
	}
	return repo, nil
}

// Figure1 measures the per-cluster overlap triple over the five profiles.
func Figure1() ([]ClusterOverlap, error) {
	var out []ClusterOverlap
	for _, p := range ClusterProfiles() {
		w := workgen.Generate(p)
		repo, err := RunWorkload(w, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, ClusterOverlap{
			Cluster: p.Name,
			Stats:   analyzer.ComputeOverlapStats(repo.Observations()),
		})
	}
	return out, nil
}

// WriteFigure1 renders the Figure 1 table.
func WriteFigure1(w io.Writer, rows []ClusterOverlap) {
	t := &report.Table{Header: []string{"cluster", "%overlapping jobs", "%users w/ overlap", "%overlapping subgraphs"}}
	for _, r := range rows {
		t.Add(r.Cluster, r.Stats.PctJobsOverlapping, r.Stats.PctUsersOverlapping, r.Stats.PctSubgraphsOverlapping)
	}
	t.Write(w)
}

// Figure2Result carries the per-VC series of Figures 2(a) and 2(b) for the
// largest cluster.
type Figure2Result struct {
	Stats *analyzer.OverlapStats
	// Sorted series, one entry per VC.
	PctJobsOverlapping []float64
	AvgFrequency       []float64
}

// Figure2 analyzes the largest cluster profile VC by VC.
func Figure2() (*Figure2Result, error) {
	p := largestCluster()
	w := workgen.Generate(p)
	repo, err := RunWorkload(w, 0)
	if err != nil {
		return nil, err
	}
	st := analyzer.ComputeOverlapStats(repo.Observations())
	res := &Figure2Result{Stats: st}
	for _, vc := range st.VCNames {
		res.PctJobsOverlapping = append(res.PctJobsOverlapping, st.VCJobOverlapPct[vc])
		if f, ok := st.VCAvgFrequency[vc]; ok {
			res.AvgFrequency = append(res.AvgFrequency, f)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(res.PctJobsOverlapping)))
	sort.Sort(sort.Reverse(sort.Float64Slice(res.AvgFrequency)))
	return res, nil
}

// largestCluster is the profile used by the "largest cluster / largest
// business unit" analyses (Figures 2–5): more VCs, more templates.
func largestCluster() workgen.Profile {
	p := workgen.DefaultProfile("largest", 999)
	p.BusinessUnits = 6
	p.VCsPerBU = 6
	p.Templates = 300
	p.Users = 60
	p.CloneRate = 0.6
	p.UniqueInputRate = 0.5
	// Deep pipelines: production jobs are large DAGs, so a typical shared
	// prefix is a small fraction of its job's cost (Figure 5d's skew).
	p.MaxExtraSteps = 7
	return p
}

// WriteFigure2 renders the Figure 2 summary (series percentiles).
func WriteFigure2(w io.Writer, r *Figure2Result) {
	fmt.Fprintf(w, "VCs analyzed: %d\n", len(r.PctJobsOverlapping))
	over50 := report.FractionAtLeast(r.PctJobsOverlapping, 50) * 100
	zero := 0
	full := 0
	for _, p := range r.PctJobsOverlapping {
		if p == 0 {
			zero++
		}
		if p == 100 {
			full++
		}
	}
	fmt.Fprintf(w, "Figure 2a: %.0f%% of VCs have >50%% of jobs overlapping; %d VCs at 0%%, %d VCs at 100%%\n",
		over50, zero, full)
	fmt.Fprintf(w, "Figure 2b: avg overlap frequency median=%.2f p75=%.2f p95=%.2f max=%.2f\n",
		report.Median(r.AvgFrequency), report.Percentile(r.AvgFrequency, 75),
		report.Percentile(r.AvgFrequency, 95), report.Percentile(r.AvgFrequency, 100))
}

// Figure3Result carries the business-unit overlap CDF series of
// Figure 3: overlaps per job, input, user, and VC.
type Figure3Result struct {
	Stats *analyzer.OverlapStats
}

// Figure3 analyzes the largest business unit of the largest cluster.
func Figure3() (*Figure3Result, error) {
	p := largestCluster()
	w := workgen.Generate(p)
	repo, err := RunWorkload(w, 0)
	if err != nil {
		return nil, err
	}
	// Largest business unit by observation count.
	counts := map[string]int{}
	for _, o := range repo.Observations() {
		counts[o.Job.BusinessUnit]++
	}
	bu, best := "", 0
	for b, c := range counts {
		if c > best {
			bu, best = b, c
		}
	}
	an := analyzer.New(repo)
	st := an.OverlapStats(analyzer.Config{BusinessUnits: []string{bu}})
	return &Figure3Result{Stats: st}, nil
}

// WriteFigure3 renders the four CDF summaries of Figure 3.
func WriteFigure3(w io.Writer, r *Figure3Result) {
	series := []struct {
		name string
		xs   []float64
	}{
		{"overlaps per job", r.Stats.OverlapsPerJob},
		{"overlaps per input", r.Stats.OverlapsPerInput},
		{"overlaps per user", r.Stats.OverlapsPerUser},
		{"overlaps per VC", r.Stats.OverlapsPerVC},
	}
	t := &report.Table{Header: []string{"entity", "n", "median", "p75", "p95", "max"}}
	for _, s := range series {
		t.Add(s.name, len(s.xs), report.Median(s.xs), report.Percentile(s.xs, 75),
			report.Percentile(s.xs, 95), report.Percentile(s.xs, 100))
	}
	t.Write(w)
}

// Figure4Result is the operator-wise overlap analysis.
type Figure4Result struct {
	Stats *analyzer.OverlapStats
	// Breakdown is OperatorPct sorted descending.
	Breakdown []OpShare
}

// OpShare is one bar of Figure 4(a).
type OpShare struct {
	Op  plan.OpKind
	Pct float64
}

// Figure4 computes the operator breakdown and per-operator frequency CDFs.
func Figure4() (*Figure4Result, error) {
	f3, err := Figure3()
	if err != nil {
		return nil, err
	}
	st := f3.Stats
	res := &Figure4Result{Stats: st}
	for op, pct := range st.OperatorPct {
		res.Breakdown = append(res.Breakdown, OpShare{Op: op, Pct: pct})
	}
	sort.Slice(res.Breakdown, func(i, j int) bool {
		if res.Breakdown[i].Pct != res.Breakdown[j].Pct {
			return res.Breakdown[i].Pct > res.Breakdown[j].Pct
		}
		return res.Breakdown[i].Op < res.Breakdown[j].Op
	})
	return res, nil
}

// WriteFigure4 renders Figure 4(a) plus the 4(b)–(d) frequency summaries.
func WriteFigure4(w io.Writer, r *Figure4Result) {
	t := &report.Table{Header: []string{"operator", "% of overlapping subgraphs"}}
	for _, b := range r.Breakdown {
		t.Add(b.Op.String(), b.Pct)
	}
	t.Write(w)
	for _, op := range []plan.OpKind{plan.OpExchange, plan.OpFilter, plan.OpProcess} {
		fs := r.Stats.OperatorFrequencies[op]
		if len(fs) == 0 {
			fmt.Fprintf(w, "%s: no overlapping subgraphs\n", op)
			continue
		}
		fmt.Fprintf(w, "%s frequency: n=%d median=%.1f p90=%.1f max=%.0f\n",
			op, len(fs), report.Median(fs), report.Percentile(fs, 90), report.Percentile(fs, 100))
	}
}

// Figure5Result carries the impact distributions of Figure 5.
type Figure5Result struct {
	Stats *analyzer.OverlapStats
}

// Figure5 measures frequency/runtime/size/cost-ratio distributions over
// the largest business unit.
func Figure5() (*Figure5Result, error) {
	f3, err := Figure3()
	if err != nil {
		return nil, err
	}
	return &Figure5Result{Stats: f3.Stats}, nil
}

// WriteFigure5 renders the Figure 5 summaries, echoing the paper's
// headline statistics (average frequency, share of sub-second overlaps,
// share of tiny views, cost-ratio skew).
func WriteFigure5(w io.Writer, r *Figure5Result) {
	st := r.Stats
	fmt.Fprintf(w, "overlapping computations: %d\n", len(st.Frequencies))
	fmt.Fprintf(w, "frequency: avg=%.2f median=%.0f p75=%.0f p95=%.0f p99=%.0f\n",
		st.AvgFrequency, report.Median(st.Frequencies), report.Percentile(st.Frequencies, 75),
		report.Percentile(st.Frequencies, 95), report.Percentile(st.Frequencies, 99))
	fmt.Fprintf(w, "runtime: %.0f%% of overlaps run below the cheap-view threshold; p99=%.1f cost-s\n",
		report.FractionAtMost(st.Runtimes, cheapRuntimeThreshold)*100,
		report.Percentile(st.Runtimes, 99))
	fmt.Fprintf(w, "size: %.0f%% of overlaps below %d bytes; p99=%.0f bytes\n",
		report.FractionAtMost(st.SizesBytes, smallViewBytes)*100, int(smallViewBytes),
		report.Percentile(st.SizesBytes, 99))
	fmt.Fprintf(w, "view/query cost ratio: %.0f%% <= 0.01, %.0f%% > 0.1, %.0f%% > 0.5\n",
		report.FractionAtMost(st.CostRatios, 0.01)*100,
		report.FractionAtLeast(st.CostRatios, 0.1)*100,
		report.FractionAtLeast(st.CostRatios, 0.5)*100)
}

// Thresholds for the Figure 5 headline fractions, in simulator units
// (paper: 1 s runtime, 0.1 MB size).
const (
	cheapRuntimeThreshold = 150.0
	smallViewBytes        = 4096.0
)
