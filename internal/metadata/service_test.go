package metadata

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cloudviews/internal/plan"
)

func ann(sig string, tags ...string) Annotation {
	return Annotation{
		NormSig:    sig,
		Tags:       tags,
		AvgRuntime: 10,
		Props:      plan.PhysicalProps{Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0}, Count: 4}},
	}
}

func TestLoadAndRelevantViews(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{
		ann("n1", "clicks", "tpl-a"),
		ann("n2", "clicks", "users"),
		ann("n3", "orders"),
	})
	got := s.RelevantViews("vc1", []string{"clicks"})
	if len(got) != 2 {
		t.Fatalf("relevant = %d, want 2", len(got))
	}
	// Union without duplicates across tags.
	got = s.RelevantViews("vc1", []string{"clicks", "users", "tpl-a"})
	if len(got) != 2 {
		t.Fatalf("deduped relevant = %d, want 2", len(got))
	}
	if len(s.RelevantViews("vc1", []string{"nothing"})) != 0 {
		t.Error("false positive for unknown tag")
	}
	if _, ok := s.Annotation("n3"); !ok {
		t.Error("Annotation lookup failed")
	}
	if _, ok := s.Annotation("missing"); ok {
		t.Error("Annotation false positive")
	}
	// Reload replaces annotations.
	s.LoadAnalysis([]Annotation{ann("n9", "clicks")})
	got = s.RelevantViews("vc1", []string{"clicks"})
	if len(got) != 1 || got[0].NormSig != "n9" {
		t.Errorf("after reload = %v", got)
	}
}

func TestBuildLockProtocol(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "t")})

	// First proposer wins.
	if !s.ProposeMaterialize("n1", "p1", "jobA", 100) {
		t.Fatal("first propose should succeed")
	}
	// Concurrent second job is refused while the lock is live.
	if s.ProposeMaterialize("n1", "p1", "jobB", 105) {
		t.Error("second propose should fail under live lock")
	}
	// Same job re-proposing is fine (idempotent within owner).
	if !s.ProposeMaterialize("n1", "p1", "jobA", 105) {
		t.Error("owner re-propose should succeed")
	}
	// Lock expiry (now + AvgRuntime(10) + 1): jobB can take over at 117.
	if !s.ProposeMaterialize("n1", "p1", "jobB", 117) {
		t.Error("expired lock should be stealable (fault tolerance)")
	}
	// Report releases the lock and registers the view.
	s.ReportMaterialized(ViewInfo{PreciseSig: "p1", NormSig: "n1", Path: "/v/p1", ExpiresAt: 999})
	if _, ok := s.LookupView("p1"); !ok {
		t.Fatal("view not registered")
	}
	// No one can propose a view that already exists.
	if s.ProposeMaterialize("n1", "p1", "jobC", 120) {
		t.Error("propose should fail for existing view")
	}
}

func TestAbortReleasesOnlyOwnLock(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1")})
	if !s.ProposeMaterialize("n1", "p1", "jobA", 0) {
		t.Fatal("propose failed")
	}
	s.AbortMaterialize("p1", "jobB") // not the owner: no-op
	if s.ProposeMaterialize("n1", "p1", "jobB", 1) {
		t.Error("lock should still be held after foreign abort")
	}
	s.AbortMaterialize("p1", "jobA")
	if !s.ProposeMaterialize("n1", "p1", "jobB", 2) {
		t.Error("lock should be free after owner abort")
	}
}

func TestDefaultLockTTLWithoutAnnotation(t *testing.T) {
	s := NewService()
	if !s.ProposeMaterialize("unknown", "p1", "jobA", 0) {
		t.Fatal("propose without annotation should still work")
	}
	if s.ProposeMaterialize("unknown", "p1", "jobB", 59) {
		t.Error("default TTL should hold at t=59")
	}
	if !s.ProposeMaterialize("unknown", "p1", "jobB", 61) {
		t.Error("default TTL should expire at t=61")
	}
}

func TestPurgeExpiredAndUnregister(t *testing.T) {
	s := NewService()
	s.ReportMaterialized(ViewInfo{PreciseSig: "p1", Path: "/v/1", ExpiresAt: 10})
	s.ReportMaterialized(ViewInfo{PreciseSig: "p2", Path: "/v/2", ExpiresAt: 20})
	paths := s.PurgeExpired(15)
	if len(paths) != 1 || paths[0] != "/v/1" {
		t.Errorf("purged = %v", paths)
	}
	if _, ok := s.LookupView("p1"); ok {
		t.Error("purged view still visible")
	}
	if _, ok := s.LookupView("p2"); !ok {
		t.Error("unexpired view lost")
	}
	s.Unregister("p2")
	if _, ok := s.LookupView("p2"); ok {
		t.Error("unregistered view still visible")
	}
}

func TestOnlyOneConcurrentBuilderWins(t *testing.T) {
	// Build-build synchronization: N goroutines race to materialize the
	// same precise signature; exactly one must win.
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1")})
	var wg sync.WaitGroup
	wins := make(chan string, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := fmt.Sprintf("job%d", i)
			if s.ProposeMaterialize("n1", "p-race", job, 0) {
				wins <- job
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("%d winners, want exactly 1: %v", len(winners), winners)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "t")})
	s.RelevantViews("vc1", []string{"t"})
	s.RelevantViews("vc1", []string{"t"})
	s.ProposeMaterialize("n1", "p1", "j", 0)
	a, v, l, lookups, proposals := s.Stats()
	if a != 1 || v != 0 || l != 1 || lookups != 2 || proposals != 1 {
		t.Errorf("stats = %d %d %d %d %d", a, v, l, lookups, proposals)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	s := NewService()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.LoadAnalysis([]Annotation{ann("n1", "clicks")}); err != nil {
		t.Fatal(err)
	}
	got := c.RelevantViews("vc1", []string{"clicks"})
	if len(got) != 1 || got[0].NormSig != "n1" {
		t.Fatalf("relevant over HTTP = %v", got)
	}
	if got[0].Props.Part.Kind != plan.PartHash {
		t.Error("physical props lost in JSON round trip")
	}
	if a, ok := c.Annotation("n1"); !ok || a.AvgRuntime != 10 {
		t.Errorf("annotation over HTTP = %v %v", a, ok)
	}
	if !c.ProposeMaterialize("n1", "p1", "jobA", 0) {
		t.Error("propose over HTTP failed")
	}
	if c.ProposeMaterialize("n1", "p1", "jobB", 1) {
		t.Error("lock not honored over HTTP")
	}
	c.ReportMaterialized(ViewInfo{PreciseSig: "p1", NormSig: "n1", Path: "/v/1", Rows: 42, ExpiresAt: 100})
	v, ok := c.LookupView("p1")
	if !ok || v.Rows != 42 || v.Path != "/v/1" {
		t.Errorf("view over HTTP = %+v %v", v, ok)
	}
	c.AbortMaterialize("p1", "jobA") // no-op, must not error
	if _, ok := c.LookupView("missing"); ok {
		t.Error("missing view false positive over HTTP")
	}
}

func TestClientSwallowsConnectionErrors(t *testing.T) {
	// Transparency (§4): an unreachable metadata service disables reuse
	// but never breaks the job.
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	if got := c.RelevantViews("vc1", []string{"t"}); got != nil {
		t.Errorf("unreachable service returned %v", got)
	}
	if c.ProposeMaterialize("n", "p", "j", 0) {
		t.Error("unreachable propose should be negative")
	}
	if _, ok := c.LookupView("p"); ok {
		t.Error("unreachable lookup should miss")
	}
	if _, ok := c.Annotation("n"); ok {
		t.Error("unreachable annotation should miss")
	}
	c.ReportMaterialized(ViewInfo{})
	c.AbortMaterialize("p", "j")
}

func TestOfflineVCConfiguration(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "t")})
	// Default: online.
	got := s.RelevantViews("vc-online", []string{"t"})
	if len(got) != 1 || got[0].Offline {
		t.Fatalf("online VC got %+v", got)
	}
	// Configure a VC for offline materialization (§6.2): its lookups come
	// back marked Offline; other VCs are unaffected.
	s.SetOfflineVC("vc-batch", true)
	got = s.RelevantViews("vc-batch", []string{"t"})
	if len(got) != 1 || !got[0].Offline {
		t.Fatalf("offline VC got %+v", got)
	}
	if s.RelevantViews("vc-online", []string{"t"})[0].Offline {
		t.Error("offline flag leaked to another VC")
	}
	// Stored annotation itself is untouched.
	if a, _ := s.Annotation("n1"); a.Offline {
		t.Error("offline marking mutated the stored annotation")
	}
	// Toggle back.
	s.SetOfflineVC("vc-batch", false)
	if s.RelevantViews("vc-batch", []string{"t"})[0].Offline {
		t.Error("offline flag survived unconfiguration")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "clicks"), ann("n2", "orders")})
	s.ReportMaterialized(ViewInfo{PreciseSig: "p1", NormSig: "n1", Path: "/v/1", Rows: 9, ExpiresAt: 50})
	s.SetOfflineVC("batch", true)
	// A held lock must NOT survive the snapshot (restart = lock expiry).
	if !s.ProposeMaterialize("n2", "p2", "jobA", 0) {
		t.Fatal("propose failed")
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Annotations and inverted index restored.
	if got := r.RelevantViews("vc", []string{"clicks"}); len(got) != 1 || got[0].NormSig != "n1" {
		t.Errorf("annotations lost: %v", got)
	}
	// Views restored.
	if v, ok := r.LookupView("p1"); !ok || v.Rows != 9 {
		t.Errorf("views lost: %+v %v", v, ok)
	}
	// Offline VC config restored.
	if got := r.RelevantViews("batch", []string{"clicks"}); !got[0].Offline {
		t.Error("offline VC config lost")
	}
	// Locks dropped: a different job can immediately propose p2.
	if !r.ProposeMaterialize("n2", "p2", "jobB", 0) {
		t.Error("stale lock survived restart")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	for _, src := range []string{"", "nope", `{"Format":"x","Version":1}`, `{"Format":"cloudviews-metadata","Version":9}`} {
		if _, err := Restore(strings.NewReader(src)); err == nil {
			t.Errorf("Restore(%q) should fail", src)
		}
	}
}

// populated returns a service with enough journaled state that truncation
// points land inside the record stream.
func populated(t *testing.T) *Service {
	t.Helper()
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "clicks"), ann("n2", "orders"), ann("n3", "events")})
	for i, sig := range []string{"p1", "p2", "p3"} {
		s.ReportMaterialized(ViewInfo{
			PreciseSig: sig, NormSig: "n1", Path: "/v/" + sig,
			Rows: int64(i + 1), ExpiresAt: 50,
		})
	}
	s.SetOfflineVC("batch", true)
	return s
}

// TestRestoreTruncatedJournal: a snapshot cut off at any byte past the
// header restores the valid prefix instead of erroring — the service
// always comes back up after a crash mid-Save.
func TestRestoreTruncatedJournal(t *testing.T) {
	var buf bytes.Buffer
	if err := populated(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	headerLen := bytes.IndexByte(full, '\n') + 1
	for cut := headerLen; cut <= len(full); cut += 7 {
		r, err := Restore(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("truncation at %d/%d bytes errored: %v", cut, len(full), err)
		}
		a, v, locks, _, _ := r.Stats()
		if a > 3 || v > 3 || locks != 0 {
			t.Fatalf("truncation at %d restored impossible state: %d anns %d views", cut, a, v)
		}
	}
	// The untruncated journal restores everything.
	r, err := Restore(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if a, v, _, _, _ := r.Stats(); a != 3 || v != 3 {
		t.Fatalf("full restore got %d anns %d views, want 3/3", a, v)
	}
}

// TestRestoreCorruptedTail: garbage after valid records loses only the
// records at and past the damage.
func TestRestoreCorruptedTail(t *testing.T) {
	var buf bytes.Buffer
	if err := populated(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), buf.Bytes()...)
	// Stomp the third line (first view record) with non-JSON bytes.
	lines := bytes.SplitAfter(damaged, []byte("\n"))
	corruptAt := 4 // header + 3 annotations
	prefix := bytes.Join(lines[:corruptAt], nil)
	damaged = append(prefix, []byte("##corrupt##\n")...)
	damaged = append(damaged, bytes.Join(lines[corruptAt:], nil)...)

	r, err := Restore(bytes.NewReader(damaged))
	if err != nil {
		t.Fatalf("corrupted tail errored the restore: %v", err)
	}
	a, v, _, _, _ := r.Stats()
	if a != 3 {
		t.Errorf("annotations before the damage lost: %d", a)
	}
	if v != 0 {
		t.Errorf("records past the damage should be dropped, got %d views", v)
	}
}

// TestRestoreLegacyV1Snapshot: pre-journal single-object snapshots still
// load (the payload rides in the header line).
func TestRestoreLegacyV1Snapshot(t *testing.T) {
	src := `{"Format":"cloudviews-metadata","Version":1,` +
		`"Annotations":[{"NormSig":"n1","Tags":["clicks"]}],` +
		`"Views":[{"PreciseSig":"p1","NormSig":"n1","Path":"/v/p1"}],` +
		`"OfflineVCs":["batch"]}`
	r, err := Restore(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.RelevantViews("batch", []string{"clicks"}); len(got) != 1 || !got[0].Offline {
		t.Errorf("v1 payload lost: %v", got)
	}
	if _, ok := r.LookupView("p1"); !ok {
		t.Error("v1 view registration lost")
	}
}

// blackoutHook fails every lookup.
type blackoutHook struct{}

func (blackoutHook) Lookup(string) error { return errors.New("metadata unreachable") }

// TestTryRelevantViewsFaultSeam: the fault hook fails TryRelevantViews
// while leaving the plain RelevantViews read path untouched.
func TestTryRelevantViewsFaultSeam(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "clicks")})
	if got, err := s.TryRelevantViews("vc", []string{"clicks"}); err != nil || len(got) != 1 {
		t.Fatalf("clean lookup = %v, %v", got, err)
	}
	s.Faults = blackoutHook{}
	if _, err := s.TryRelevantViews("vc", []string{"clicks"}); err == nil {
		t.Fatal("blackout not surfaced")
	}
	if got := s.RelevantViews("vc", []string{"clicks"}); len(got) != 1 {
		t.Fatal("RelevantViews must stay fault-free")
	}
}
