package metadata

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// persist.go makes the service state durable. The production metadata
// service is backed by AzureSQL, so annotations and view registrations
// survive restarts; here the same durability comes from a JSON journal.
// Build locks are deliberately NOT persisted: a restart behaves like lock
// expiry — in-flight builders re-propose, and the fault-tolerance path of
// §6.1 takes over.
//
// Format v2 is a line journal: a header line identifying the format,
// followed by one JSON record per line (annotations, then views, then
// offline-VC flags). The point of the line granularity is crash recovery —
// a snapshot torn mid-write (truncated file, corrupted tail) restores to
// the valid prefix instead of erroring the whole service, so the metadata
// service always comes back up; at worst it forgets the most recently
// journaled views, which consumers then rebuild. Files that are not
// metadata snapshots at all (wrong format tag, unknown version, leading
// garbage) still fail loudly — silently booting empty off a foreign file
// would be data loss, not recovery.

// header is the journal's first line. It embeds the legacy v1 payload
// fields so an old single-object snapshot decodes through the same struct.
type header struct {
	Format  string
	Version int

	// v1 payload (whole-state single object); unused in v2 headers.
	Annotations []Annotation `json:",omitempty"`
	Views       []ViewInfo   `json:",omitempty"`
	OfflineVCs  []string     `json:",omitempty"`
}

// record is one v2 journal line; exactly one field is set.
type record struct {
	Ann       *Annotation `json:",omitempty"`
	View      *ViewInfo   `json:",omitempty"`
	OfflineVC string      `json:",omitempty"`
}

const (
	snapshotFormat  = "cloudviews-metadata"
	snapshotVersion = 2
)

// Save writes a journal snapshot of the service's durable state. Reading
// one published state generation makes the snapshot internally consistent
// without blocking concurrent writers.
func (s *Service) Save(w io.Writer) error {
	st := s.cur.Load()
	var anns []Annotation
	for _, a := range st.annotations {
		anns = append(anns, *a)
	}
	var views []ViewInfo
	for _, v := range st.views {
		views = append(views, *v)
	}
	var vcs []string
	for vc := range st.offlineVCs {
		vcs = append(vcs, vc)
	}
	sort.Slice(anns, func(i, j int) bool { return anns[i].NormSig < anns[j].NormSig })
	sort.Slice(views, func(i, j int) bool { return views[i].PreciseSig < views[j].PreciseSig })
	sort.Strings(vcs)

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Format: snapshotFormat, Version: snapshotVersion}); err != nil {
		return fmt.Errorf("metadata: save: %w", err)
	}
	for i := range anns {
		if err := enc.Encode(record{Ann: &anns[i]}); err != nil {
			return fmt.Errorf("metadata: save: %w", err)
		}
	}
	for i := range views {
		if err := enc.Encode(record{View: &views[i]}); err != nil {
			return fmt.Errorf("metadata: save: %w", err)
		}
	}
	for _, vc := range vcs {
		if err := enc.Encode(record{OfflineVC: vc}); err != nil {
			return fmt.Errorf("metadata: save: %w", err)
		}
	}
	return bw.Flush()
}

// Restore loads a snapshot written by Save into a fresh service. A
// malformed header (not a metadata snapshot, or an unknown version) is an
// error; a torn record tail is not — the valid prefix is loaded and the
// rest is dropped, which is how the service recovers from a crash mid-Save
// or a truncated file.
func Restore(r io.Reader) (*Service, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("metadata: restore: %w", err)
	}
	if h.Format != snapshotFormat {
		return nil, fmt.Errorf("metadata: not a metadata snapshot (format %q)", h.Format)
	}
	anns, views, vcs := h.Annotations, h.Views, h.OfflineVCs
	switch h.Version {
	case 1:
		// Legacy single-object snapshot: the payload rode in the header.
	case snapshotVersion:
		for {
			var rec record
			if err := dec.Decode(&rec); err != nil {
				// io.EOF is the clean end; anything else is a torn or
				// corrupted tail — keep the valid prefix (recovery, not
				// failure: better to forget the newest records than to
				// refuse to start).
				break
			}
			switch {
			case rec.Ann != nil:
				anns = append(anns, *rec.Ann)
			case rec.View != nil:
				views = append(views, *rec.View)
			case rec.OfflineVC != "":
				vcs = append(vcs, rec.OfflineVC)
			}
		}
	default:
		return nil, fmt.Errorf("metadata: unsupported snapshot version %d", h.Version)
	}
	s := NewService()
	s.LoadAnalysis(anns)
	s.installViews(views)
	for _, vc := range vcs {
		s.SetOfflineVC(vc, true)
	}
	return s, nil
}
