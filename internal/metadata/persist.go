package metadata

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// persist.go makes the service state durable. The production metadata
// service is backed by AzureSQL, so annotations and view registrations
// survive restarts; here the same durability comes from a JSON snapshot.
// Build locks are deliberately NOT persisted: a restart behaves like lock
// expiry — in-flight builders re-propose, and the fault-tolerance path of
// §6.1 takes over.

type snapshot struct {
	Format      string
	Version     int
	Annotations []Annotation
	Views       []ViewInfo
	OfflineVCs  []string
}

const (
	snapshotFormat  = "cloudviews-metadata"
	snapshotVersion = 1
)

// Save writes a snapshot of the service's durable state. Reading one
// published state generation makes the snapshot internally consistent
// without blocking concurrent writers.
func (s *Service) Save(w io.Writer) error {
	st := s.cur.Load()
	snap := snapshot{Format: snapshotFormat, Version: snapshotVersion}
	for _, a := range st.annotations {
		snap.Annotations = append(snap.Annotations, *a)
	}
	for _, v := range st.views {
		snap.Views = append(snap.Views, *v)
	}
	for vc := range st.offlineVCs {
		snap.OfflineVCs = append(snap.OfflineVCs, vc)
	}
	sort.Slice(snap.Annotations, func(i, j int) bool { return snap.Annotations[i].NormSig < snap.Annotations[j].NormSig })
	sort.Slice(snap.Views, func(i, j int) bool { return snap.Views[i].PreciseSig < snap.Views[j].PreciseSig })
	sort.Strings(snap.OfflineVCs)

	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(&snap); err != nil {
		return fmt.Errorf("metadata: save: %w", err)
	}
	return bw.Flush()
}

// Restore loads a snapshot written by Save into a fresh service.
func Restore(r io.Reader) (*Service, error) {
	var snap snapshot
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("metadata: restore: %w", err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("metadata: not a metadata snapshot (format %q)", snap.Format)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("metadata: unsupported snapshot version %d", snap.Version)
	}
	s := NewService()
	s.LoadAnalysis(snap.Annotations)
	for _, v := range snap.Views {
		s.ReportMaterialized(v)
	}
	for _, vc := range snap.OfflineVCs {
		s.SetOfflineVC(vc, true)
	}
	return s, nil
}
