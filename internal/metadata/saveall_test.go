package metadata

import (
	"fmt"
	"testing"
)

// TestSaveAllMergesWithExisting pins SaveAll's upsert semantics: new
// signatures join the set, existing ones are replaced, everything else
// survives — unlike LoadAnalysis, which replaces the whole set.
func TestSaveAllMergesWithExisting(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{
		ann("n1", "clicks"),
		ann("n2", "orders"),
	})

	upd := ann("n2", "orders", "tpl-b")
	upd.Utility = 99
	s.SaveAll([]Annotation{upd, ann("n3", "users")})

	if _, ok := s.Annotation("n1"); !ok {
		t.Error("SaveAll dropped an untouched annotation")
	}
	if a, ok := s.Annotation("n2"); !ok || a.Utility != 99 || len(a.Tags) != 2 {
		t.Errorf("SaveAll did not replace n2: %+v", a)
	}
	if _, ok := s.Annotation("n3"); !ok {
		t.Error("SaveAll did not add n3")
	}

	// The tag index must reflect the merged set: new tag reaches n2, old
	// tags still reach their annotations.
	if got := s.RelevantViews("vc", []string{"tpl-b"}); len(got) != 1 || got[0].NormSig != "n2" {
		t.Errorf("tpl-b lookup = %v", got)
	}
	if got := s.RelevantViews("vc", []string{"clicks", "orders", "users"}); len(got) != 3 {
		t.Errorf("merged lookup = %d annotations, want 3", len(got))
	}

	// Empty batch is a no-op, not a clear.
	s.SaveAll(nil)
	if n, _, _, _, _ := s.Stats(); n != 3 {
		t.Errorf("after empty SaveAll: %d annotations, want 3", n)
	}
}

// TestSaveAllPreservesViewsAndLocks mirrors the LoadAnalysis guarantee:
// installing annotations must not disturb materialized views.
func TestSaveAllPreservesViewsAndLocks(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "t")})
	s.ReportMaterialized(ViewInfo{PreciseSig: "p1", NormSig: "n1", Path: "/views/v1"})

	s.SaveAll([]Annotation{ann("n2", "t2")})
	if _, ok := s.LookupView("p1"); !ok {
		t.Error("SaveAll dropped a materialized view")
	}
}

// TestInstallViewsBulk pins the bulk view-install path Restore uses: one
// swap for the whole batch, lock release included.
func TestInstallViewsBulk(t *testing.T) {
	s := NewService()
	s.LoadAnalysis([]Annotation{ann("n1", "t")})
	if !s.ProposeMaterialize("n1", "p0", "job1", 0) {
		t.Fatal("propose failed")
	}
	var vs []ViewInfo
	for i := 0; i < 50; i++ {
		vs = append(vs, ViewInfo{
			PreciseSig: fmt.Sprintf("p%d", i),
			NormSig:    "n1",
			Path:       fmt.Sprintf("/views/v%d", i),
		})
	}
	s.installViews(vs)
	for i := 0; i < 50; i++ {
		if _, ok := s.LookupView(fmt.Sprintf("p%d", i)); !ok {
			t.Fatalf("view p%d missing after bulk install", i)
		}
	}
	if _, _, locks, _, _ := s.Stats(); locks != 0 {
		t.Errorf("bulk install left %d locks, want 0", locks)
	}
}
