package metadata

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// API is the protocol surface the compiler, optimizer, and job manager use
// (Figure 9). The in-process Service implements it directly; Client
// implements it over HTTP against a Handler-wrapped Service.
type API interface {
	RelevantViews(vc string, jobTags []string) []Annotation
	Annotation(normSig string) (Annotation, bool)
	ProposeMaterialize(normSig, preciseSig, jobID string, now int64) bool
	ReportMaterialized(v ViewInfo)
	AbortMaterialize(preciseSig, jobID string)
	LookupView(preciseSig string) (ViewInfo, bool)
}

var _ API = (*Service)(nil)
var _ API = (*Client)(nil)

// Handler exposes a Service over HTTP with a JSON protocol. It is the
// deployment shape of the production metadata service (an RPC service in
// front of a consistent store).
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /relevant", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			VC   string
			Tags []string
		}
		if !decode(w, r, &req) {
			return
		}
		reply(w, s.RelevantViews(req.VC, req.Tags))
	})
	mux.HandleFunc("POST /annotation", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ NormSig string }
		if !decode(w, r, &req) {
			return
		}
		a, ok := s.Annotation(req.NormSig)
		reply(w, struct {
			OK  bool
			Ann Annotation
		}{ok, a})
	})
	mux.HandleFunc("POST /propose", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			NormSig, PreciseSig, JobID string
			Now                        int64
		}
		if !decode(w, r, &req) {
			return
		}
		ok := s.ProposeMaterialize(req.NormSig, req.PreciseSig, req.JobID, req.Now)
		reply(w, struct{ OK bool }{ok})
	})
	mux.HandleFunc("POST /report", func(w http.ResponseWriter, r *http.Request) {
		var v ViewInfo
		if !decode(w, r, &v) {
			return
		}
		s.ReportMaterialized(v)
		reply(w, struct{}{})
	})
	mux.HandleFunc("POST /abort", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ PreciseSig, JobID string }
		if !decode(w, r, &req) {
			return
		}
		s.AbortMaterialize(req.PreciseSig, req.JobID)
		reply(w, struct{}{})
	})
	mux.HandleFunc("POST /view", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ PreciseSig string }
		if !decode(w, r, &req) {
			return
		}
		v, ok := s.LookupView(req.PreciseSig)
		reply(w, struct {
			OK   bool
			View ViewInfo
		}{ok, v})
	})
	mux.HandleFunc("POST /load", func(w http.ResponseWriter, r *http.Request) {
		var anns []Annotation
		if !decode(w, r, &anns) {
			return
		}
		s.LoadAnalysis(anns)
		reply(w, struct{}{})
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Client talks the Handler protocol. Errors are swallowed into negative
// replies: a job that cannot reach the metadata service simply runs
// without computation reuse, never fails (transparency requirement, §4).
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("metadata: %s returned %s", path, r.Status)
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// RelevantViews implements API.
func (c *Client) RelevantViews(vc string, jobTags []string) []Annotation {
	var out []Annotation
	req := struct {
		VC   string
		Tags []string
	}{vc, jobTags}
	if err := c.post("/relevant", req, &out); err != nil {
		return nil
	}
	return out
}

// Annotation implements API.
func (c *Client) Annotation(normSig string) (Annotation, bool) {
	var resp struct {
		OK  bool
		Ann Annotation
	}
	if err := c.post("/annotation", struct{ NormSig string }{normSig}, &resp); err != nil {
		return Annotation{}, false
	}
	return resp.Ann, resp.OK
}

// ProposeMaterialize implements API.
func (c *Client) ProposeMaterialize(normSig, preciseSig, jobID string, now int64) bool {
	var resp struct{ OK bool }
	req := struct {
		NormSig, PreciseSig, JobID string
		Now                        int64
	}{normSig, preciseSig, jobID, now}
	if err := c.post("/propose", req, &resp); err != nil {
		return false
	}
	return resp.OK
}

// ReportMaterialized implements API.
func (c *Client) ReportMaterialized(v ViewInfo) {
	_ = c.post("/report", v, nil)
}

// AbortMaterialize implements API.
func (c *Client) AbortMaterialize(preciseSig, jobID string) {
	_ = c.post("/abort", struct{ PreciseSig, JobID string }{preciseSig, jobID}, nil)
}

// LookupView implements API.
func (c *Client) LookupView(preciseSig string) (ViewInfo, bool) {
	var resp struct {
		OK   bool
		View ViewInfo
	}
	if err := c.post("/view", struct{ PreciseSig string }{preciseSig}, &resp); err != nil {
		return ViewInfo{}, false
	}
	return resp.View, resp.OK
}

// LoadAnalysis pushes analyzer output to the remote service.
func (c *Client) LoadAnalysis(anns []Annotation) error {
	return c.post("/load", anns, nil)
}
