// Package metadata implements the CloudViews metadata service (paper §6.1
// and Figure 9): the lookup and coordination point between the analyzer
// and the runtime.
//
// The service stores the analyzer's annotations (normalized signatures of
// selected views with their mined physical design, expiry, and runtime),
// serves one inverted-index lookup per job, arbitrates exclusive build
// locks for build-build synchronization, and tracks which views are
// materialized and available. The production system backs this with
// AzureSQL; here the same protocol runs over an in-process store, with an
// optional net/http front end in this package for service-style deployment.
package metadata

import (
	"sort"
	"sync"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

// Annotation is one analyzer-selected overlapping computation: the promise
// that materializing subgraphs with this normalized signature pays off.
type Annotation struct {
	NormSig string
	// Tags are the inverted-index keys extracted from job metadata of the
	// jobs this computation occurred in (normalized input names and
	// template IDs). A job's lookup returns the union of annotations
	// matching any of its tags — possibly with false positives, which the
	// optimizer filters by actual signature match (§6.1).
	Tags []string
	// Props is the elected physical design for the materialized view (§5.3).
	Props plan.PhysicalProps
	// AvgRuntime is the mined average runtime of the subgraph; it sets
	// the expiry of the exclusive build lock (§6.1).
	AvgRuntime float64
	// ExpiryDelta is the view lifetime in instance units, from input
	// lineage (§5.4).
	ExpiryDelta int64
	// Utility and StorageBytes are reported for admin dashboards.
	Utility      float64
	StorageBytes int64
	// Frequency is the observed occurrence count in the analysis window.
	Frequency int
	// Offline marks annotations for VCs configured to pre-materialize
	// views ahead of the workload instead of online (§6.2).
	Offline bool
}

// ViewInfo describes a materialized, available view.
type ViewInfo struct {
	PreciseSig    string
	NormSig       string
	Path          string
	Schema        data.Schema
	Props         plan.PhysicalProps
	Rows          int64
	Bytes         int64
	ProducerJobID string
	ExpiresAt     int64
}

type buildLock struct {
	jobID     string
	expiresAt int64
}

// Service is the concurrent metadata store. The zero value is not usable;
// call NewService.
type Service struct {
	mu          sync.Mutex
	annotations map[string]*Annotation // by normalized signature
	tagIndex    map[string][]string    // tag -> normalized signatures
	locks       map[string]buildLock   // by precise signature
	views       map[string]*ViewInfo   // by precise signature
	offlineVCs  map[string]bool        // VCs configured for offline materialization (§6.2)

	// Counters for the overheads evaluation (§7.3).
	lookups   int64
	proposals int64
}

// NewService returns an empty metadata service.
func NewService() *Service {
	return &Service{
		annotations: map[string]*Annotation{},
		tagIndex:    map[string][]string{},
		locks:       map[string]buildLock{},
		views:       map[string]*ViewInfo{},
		offlineVCs:  map[string]bool{},
	}
}

// SetOfflineVC configures a VC for offline view materialization (§6.2):
// annotations served to that VC's jobs come back marked Offline, so the
// runtime pre-materializes them ahead of the workload instead of inline.
func (s *Service) SetOfflineVC(vc string, offline bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if offline {
		s.offlineVCs[vc] = true
	} else {
		delete(s.offlineVCs, vc)
	}
}

// LoadAnalysis installs the analyzer's output, replacing all previous
// annotations and rebuilding the inverted tag index. Materialized views
// and in-flight locks are preserved: reloading analysis must not orphan
// views that jobs are already using.
func (s *Service) LoadAnalysis(anns []Annotation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.annotations = make(map[string]*Annotation, len(anns))
	s.tagIndex = map[string][]string{}
	for i := range anns {
		a := anns[i]
		s.annotations[a.NormSig] = &a
		for _, tag := range a.Tags {
			s.tagIndex[tag] = append(s.tagIndex[tag], a.NormSig)
		}
	}
}

// RelevantViews is the per-job lookup (Figure 9, steps 1–2): it returns
// every annotation whose tags intersect the job's tags, in one round trip.
// The result may contain annotations whose signatures do not occur in the
// job (false positives); the optimizer matches actual signatures. If the
// requesting job's VC is configured for offline materialization, the
// returned annotations are marked Offline (§6.2).
func (s *Service) RelevantViews(vc string, jobTags []string) []Annotation {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	offline := s.offlineVCs[vc]
	seen := map[string]bool{}
	var out []Annotation
	for _, tag := range jobTags {
		for _, sig := range s.tagIndex[tag] {
			if seen[sig] {
				continue
			}
			seen[sig] = true
			a := *s.annotations[sig]
			if offline {
				a.Offline = true
			}
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NormSig < out[j].NormSig })
	return out
}

// Annotation returns the annotation for a normalized signature, if any.
func (s *Service) Annotation(normSig string) (Annotation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.annotations[normSig]
	if !ok {
		return Annotation{}, false
	}
	return *a, true
}

// ProposeMaterialize is the exclusive-lock acquisition (Figure 9, steps
// 3–4). It succeeds iff no view exists for the precise signature and no
// unexpired lock is held by another job. The lock expires at
// now + the annotation's mined average runtime, so a crashed builder
// cannot block materialization forever (fault tolerance, §6.1).
func (s *Service) ProposeMaterialize(normSig, preciseSig, jobID string, now int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proposals++
	if _, exists := s.views[preciseSig]; exists {
		return false
	}
	if l, held := s.locks[preciseSig]; held && l.expiresAt > now && l.jobID != jobID {
		return false
	}
	ttl := int64(60)
	if a, ok := s.annotations[normSig]; ok && a.AvgRuntime > 0 {
		ttl = int64(a.AvgRuntime) + 1
	}
	s.locks[preciseSig] = buildLock{jobID: jobID, expiresAt: now + ttl}
	return true
}

// ReportMaterialized publishes a built view and releases its lock
// (Figure 9, steps 5–6). Thanks to early materialization (§6.4) the job
// manager calls this the moment the view's files are sealed, which may be
// long before the producing job finishes.
func (s *Service) ReportMaterialized(v ViewInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.locks, v.PreciseSig)
	vv := v
	s.views[v.PreciseSig] = &vv
}

// AbortMaterialize releases a lock held by jobID without publishing a
// view (builder failed before sealing the files).
func (s *Service) AbortMaterialize(preciseSig, jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.locks[preciseSig]; ok && l.jobID == jobID {
		delete(s.locks, preciseSig)
	}
}

// LookupView returns the available view for a precise signature.
func (s *Service) LookupView(preciseSig string) (ViewInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.views[preciseSig]
	if !ok {
		return ViewInfo{}, false
	}
	return *v, true
}

// Views returns all available views, ordered by path.
func (s *Service) Views() []ViewInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ViewInfo, 0, len(s.views))
	for _, v := range s.views {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// PurgeExpired removes view registrations whose expiry has passed and
// returns their paths. Per §5.4 the metadata service is cleaned *before*
// the physical files are deleted, so callers purge here first and then
// delete from storage.
func (s *Service) PurgeExpired(now int64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var paths []string
	for sig, v := range s.views {
		if v.ExpiresAt <= now {
			paths = append(paths, v.Path)
			delete(s.views, sig)
		}
	}
	sort.Strings(paths)
	return paths
}

// Unregister removes a specific view registration (admin reclamation).
func (s *Service) Unregister(preciseSig string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.views, preciseSig)
}

// Stats reports service counters: annotation count, available views,
// held locks, lookups served, and proposals handled.
func (s *Service) Stats() (annotations, views, locks int, lookups, proposals int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.annotations), len(s.views), len(s.locks), s.lookups, s.proposals
}
