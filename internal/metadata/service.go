// Package metadata implements the CloudViews metadata service (paper §6.1
// and Figure 9): the lookup and coordination point between the analyzer
// and the runtime.
//
// The service stores the analyzer's annotations (normalized signatures of
// selected views with their mined physical design, expiry, and runtime),
// serves one inverted-index lookup per job, arbitrates exclusive build
// locks for build-build synchronization, and tracks which views are
// materialized and available. The production system backs this with
// AzureSQL; here the same protocol runs over an in-process store, with an
// optional net/http front end in this package for service-style deployment.
//
// Reads vastly outnumber writes — every submitted job performs a lookup,
// while writes happen once per analysis reload or materialized view — so
// the read paths (RelevantViews, Annotation, LookupView, Views) are served
// from an immutable copy-on-write state swapped atomically by writers.
// Readers never take the mutex; the mutex only serializes writers and the
// build-lock table, which is inherently read-modify-write.
package metadata

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

// Annotation is one analyzer-selected overlapping computation: the promise
// that materializing subgraphs with this normalized signature pays off.
type Annotation struct {
	NormSig string
	// Tags are the inverted-index keys extracted from job metadata of the
	// jobs this computation occurred in (normalized input names and
	// template IDs). A job's lookup returns the union of annotations
	// matching any of its tags — possibly with false positives, which the
	// optimizer filters by actual signature match (§6.1).
	Tags []string
	// Props is the elected physical design for the materialized view (§5.3).
	Props plan.PhysicalProps
	// AvgRuntime is the mined average runtime of the subgraph; it sets
	// the expiry of the exclusive build lock (§6.1).
	AvgRuntime float64
	// ExpiryDelta is the view lifetime in instance units, from input
	// lineage (§5.4).
	ExpiryDelta int64
	// Utility and StorageBytes are reported for admin dashboards.
	Utility      float64
	StorageBytes int64
	// Frequency is the observed occurrence count in the analysis window.
	Frequency int
	// Offline marks annotations for VCs configured to pre-materialize
	// views ahead of the workload instead of online (§6.2).
	Offline bool
}

// ViewInfo describes a materialized, available view.
type ViewInfo struct {
	PreciseSig string
	NormSig    string
	Path       string
	Schema     data.Schema
	Props      plan.PhysicalProps
	Rows       int64
	// Bytes is the view's logical (row-representation) size — what a
	// consumer materializes when scanning it, and what the optimizer's
	// reuse cost model prices.
	Bytes int64
	// EncodedBytes is the at-rest columnar payload size actually held by
	// storage (zero on records journaled before encoding existed).
	EncodedBytes  int64
	ProducerJobID string
	ExpiresAt     int64
}

type buildLock struct {
	jobID     string
	expiresAt int64
}

// state is one immutable generation of the read-mostly service state.
// Everything reachable from a published state is frozen: writers build
// fresh maps (sharing only whole sub-structures that did not change) and
// install the new generation with one atomic pointer swap.
type state struct {
	annotations map[string]*Annotation   // by normalized signature
	tagAnns     map[string][]*Annotation // tag -> annotations, sorted by NormSig
	views       map[string]*ViewInfo     // by precise signature
	offlineVCs  map[string]bool          // VCs configured for offline materialization (§6.2)
}

var emptyState = &state{
	annotations: map[string]*Annotation{},
	tagAnns:     map[string][]*Annotation{},
	views:       map[string]*ViewInfo{},
	offlineVCs:  map[string]bool{},
}

// FaultHook is the metadata service's fault-injection seam (see
// internal/fault): Lookup is consulted once per RelevantViews round trip
// and a non-nil error simulates the service being unreachable.
type FaultHook interface {
	Lookup(vc string) error
}

// ObsHook is the metadata service's observability seam (see
// internal/obs): LookupDone fires once per TryRelevantViews round trip
// with how many annotations were served (0 on failure). A nil hook costs
// nothing; hooks must not call back into the service.
type ObsHook interface {
	LookupDone(vc string, annotations int, err error)
}

// Service is the concurrent metadata store. The zero value is not usable;
// call NewService.
type Service struct {
	// Faults, if set, can fail lookups served through TryRelevantViews.
	// Production runs leave it nil.
	Faults FaultHook

	// Obs, if set, observes lookup round trips (see ObsHook).
	Obs ObsHook

	// mu serializes writers and guards the build-lock table. Read paths
	// never acquire it.
	mu    sync.Mutex
	cur   atomic.Pointer[state]
	locks map[string]buildLock // by precise signature

	// Counters for the overheads evaluation (§7.3).
	lookups   atomic.Int64
	proposals atomic.Int64
}

// NewService returns an empty metadata service.
func NewService() *Service {
	s := &Service{locks: map[string]buildLock{}}
	s.cur.Store(emptyState)
	return s
}

// clone returns a shallow copy of st whose maps can be swapped out
// individually by the caller before publishing.
func (st *state) clone() *state {
	cp := *st
	return &cp
}

func copyViews(m map[string]*ViewInfo) map[string]*ViewInfo {
	out := make(map[string]*ViewInfo, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SetOfflineVC configures a VC for offline view materialization (§6.2):
// annotations served to that VC's jobs come back marked Offline, so the
// runtime pre-materializes them ahead of the workload instead of inline.
func (s *Service) SetOfflineVC(vc string, offline bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load().clone()
	vcs := make(map[string]bool, len(st.offlineVCs)+1)
	for k, v := range st.offlineVCs {
		vcs[k] = v
	}
	if offline {
		vcs[vc] = true
	} else {
		delete(vcs, vc)
	}
	st.offlineVCs = vcs
	s.cur.Store(st)
}

// buildTagIndex derives the inverted tag index from an annotation map,
// pre-sorting each tag's list so RelevantViews can merge without sorting
// or deduplicating per call.
func buildTagIndex(annotations map[string]*Annotation) map[string][]*Annotation {
	tagAnns := make(map[string][]*Annotation)
	for _, a := range annotations {
		for _, tag := range a.Tags {
			tagAnns[tag] = append(tagAnns[tag], a)
		}
	}
	for _, list := range tagAnns {
		sort.Slice(list, func(i, j int) bool { return list[i].NormSig < list[j].NormSig })
	}
	return tagAnns
}

// LoadAnalysis installs the analyzer's output, replacing all previous
// annotations and rebuilding the inverted tag index. Materialized views
// and in-flight locks are preserved: reloading analysis must not orphan
// views that jobs are already using.
func (s *Service) LoadAnalysis(anns []Annotation) {
	annotations := make(map[string]*Annotation, len(anns))
	for i := range anns {
		a := anns[i]
		annotations[a.NormSig] = &a
	}
	tagAnns := buildTagIndex(annotations)
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load().clone()
	st.annotations = annotations
	st.tagAnns = tagAnns
	s.cur.Store(st)
}

// SaveAll upserts a batch of annotations — one tag-index rebuild and one
// state swap for the whole batch, not one per annotation. Unlike
// LoadAnalysis it merges: existing annotations whose signatures are not in
// the batch survive. This is the install path for scoped analyzer runs
// (per-cluster or per-VC configs), whose output covers only the scoped
// slice of the workload and must not clobber the annotations other scopes
// are serving.
func (s *Service) SaveAll(anns []Annotation) {
	if len(anns) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load().clone()
	annotations := make(map[string]*Annotation, len(st.annotations)+len(anns))
	for k, v := range st.annotations {
		annotations[k] = v
	}
	for i := range anns {
		a := anns[i]
		annotations[a.NormSig] = &a
	}
	st.annotations = annotations
	st.tagAnns = buildTagIndex(annotations)
	s.cur.Store(st)
}

// RelevantViews is the per-job lookup (Figure 9, steps 1–2): it returns
// every annotation whose tags intersect the job's tags, in one round trip,
// ordered by normalized signature. The result may contain annotations
// whose signatures do not occur in the job (false positives); the
// optimizer matches actual signatures. If the requesting job's VC is
// configured for offline materialization, the returned annotations are
// marked Offline (§6.2).
func (s *Service) RelevantViews(vc string, jobTags []string) []Annotation {
	s.lookups.Add(1)
	st := s.cur.Load()
	offline := st.offlineVCs[vc]

	// Collect the pre-sorted per-tag lists; the common cases (zero or one
	// non-empty tag) need no merge state at all.
	var listsBuf [8][]*Annotation
	lists := listsBuf[:0]
	total := 0
	for _, tag := range jobTags {
		if l := st.tagAnns[tag]; len(l) > 0 {
			lists = append(lists, l)
			total += len(l)
		}
	}
	if len(lists) == 0 {
		return nil
	}
	out := make([]Annotation, 0, total)
	if len(lists) == 1 {
		for _, a := range lists[0] {
			out = append(out, *a)
		}
	} else {
		// K-way merge of the NormSig-sorted lists. Annotations are unique
		// per NormSig, so equal heads are the same annotation reached via
		// different tags: emitting the minimum once and advancing every
		// list holding it yields the sorted, deduplicated union.
		var idxBuf [8]int
		idx := idxBuf[:len(lists)]
		if len(lists) > len(idxBuf) {
			idx = make([]int, len(lists))
		}
		for {
			var min *Annotation
			for i, l := range lists {
				if idx[i] < len(l) && (min == nil || l[idx[i]].NormSig < min.NormSig) {
					min = l[idx[i]]
				}
			}
			if min == nil {
				break
			}
			out = append(out, *min)
			for i, l := range lists {
				if idx[i] < len(l) && l[idx[i]].NormSig == min.NormSig {
					idx[i]++
				}
			}
		}
	}
	if offline {
		for i := range out {
			out[i].Offline = true
		}
	}
	return out
}

// TryRelevantViews is RelevantViews behind the fault seam: it fails when
// the (simulated) metadata service is unreachable instead of silently
// returning nothing. The job frontend treats that failure as a degradation
// signal — skip reuse for this job, count it, and run the original plan —
// never as a job abort.
func (s *Service) TryRelevantViews(vc string, jobTags []string) ([]Annotation, error) {
	if s.Faults != nil {
		if err := s.Faults.Lookup(vc); err != nil {
			err = fmt.Errorf("metadata: relevant-views lookup for %s: %w", vc, err)
			if s.Obs != nil {
				s.Obs.LookupDone(vc, 0, err)
			}
			return nil, err
		}
	}
	out := s.RelevantViews(vc, jobTags)
	if s.Obs != nil {
		s.Obs.LookupDone(vc, len(out), nil)
	}
	return out, nil
}

// Annotation returns the annotation for a normalized signature, if any.
func (s *Service) Annotation(normSig string) (Annotation, bool) {
	a, ok := s.cur.Load().annotations[normSig]
	if !ok {
		return Annotation{}, false
	}
	return *a, true
}

// ProposeMaterialize is the exclusive-lock acquisition (Figure 9, steps
// 3–4). It succeeds iff no view exists for the precise signature and no
// unexpired lock is held by another job. The lock expires at
// now + the annotation's mined average runtime, so a crashed builder
// cannot block materialization forever (fault tolerance, §6.1).
func (s *Service) ProposeMaterialize(normSig, preciseSig, jobID string, now int64) bool {
	s.proposals.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load()
	if _, exists := st.views[preciseSig]; exists {
		return false
	}
	if l, held := s.locks[preciseSig]; held && l.expiresAt > now && l.jobID != jobID {
		return false
	}
	ttl := int64(60)
	if a, ok := st.annotations[normSig]; ok && a.AvgRuntime > 0 {
		ttl = int64(a.AvgRuntime) + 1
	}
	s.locks[preciseSig] = buildLock{jobID: jobID, expiresAt: now + ttl}
	return true
}

// ReportMaterialized publishes a built view and releases its lock
// (Figure 9, steps 5–6). Thanks to early materialization (§6.4) the job
// manager calls this the moment the view's files are sealed, which may be
// long before the producing job finishes.
func (s *Service) ReportMaterialized(v ViewInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.locks, v.PreciseSig)
	st := s.cur.Load().clone()
	views := copyViews(st.views)
	vv := v
	views[v.PreciseSig] = &vv
	st.views = views
	s.cur.Store(st)
}

// installViews publishes a batch of views with one map copy and one state
// swap — the bulk path behind Restore, which previously paid a full
// copy-on-write clone per view (quadratic in catalog size).
func (s *Service) installViews(vs []ViewInfo) {
	if len(vs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load().clone()
	views := copyViews(st.views)
	for i := range vs {
		v := vs[i]
		delete(s.locks, v.PreciseSig)
		views[v.PreciseSig] = &v
	}
	st.views = views
	s.cur.Store(st)
}

// AbortMaterialize releases a lock held by jobID without publishing a
// view (builder failed before sealing the files).
func (s *Service) AbortMaterialize(preciseSig, jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.locks[preciseSig]; ok && l.jobID == jobID {
		delete(s.locks, preciseSig)
	}
}

// LookupView returns the available view for a precise signature.
func (s *Service) LookupView(preciseSig string) (ViewInfo, bool) {
	v, ok := s.cur.Load().views[preciseSig]
	if !ok {
		return ViewInfo{}, false
	}
	return *v, true
}

// Views returns all available views, ordered by path.
func (s *Service) Views() []ViewInfo {
	st := s.cur.Load()
	out := make([]ViewInfo, 0, len(st.views))
	for _, v := range st.views {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// PurgeExpired removes view registrations whose expiry has passed and
// returns their paths. Per §5.4 the metadata service is cleaned *before*
// the physical files are deleted, so callers purge here first and then
// delete from storage.
func (s *Service) PurgeExpired(now int64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load()
	var paths []string
	for _, v := range st.views {
		if v.ExpiresAt <= now {
			paths = append(paths, v.Path)
		}
	}
	if len(paths) == 0 {
		return nil
	}
	cp := st.clone()
	views := make(map[string]*ViewInfo, len(st.views))
	for sig, v := range st.views {
		if v.ExpiresAt > now {
			views[sig] = v
		}
	}
	cp.views = views
	s.cur.Store(cp)
	sort.Strings(paths)
	return paths
}

// Unregister removes a specific view registration (admin reclamation).
func (s *Service) Unregister(preciseSig string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load()
	if _, ok := st.views[preciseSig]; !ok {
		return
	}
	cp := st.clone()
	views := copyViews(st.views)
	delete(views, preciseSig)
	cp.views = views
	s.cur.Store(cp)
}

// Stats reports service counters: annotation count, available views,
// held locks, lookups served, and proposals handled.
func (s *Service) Stats() (annotations, views, locks int, lookups, proposals int64) {
	st := s.cur.Load()
	s.mu.Lock()
	locks = len(s.locks)
	s.mu.Unlock()
	return len(st.annotations), len(st.views), locks, s.lookups.Load(), s.proposals.Load()
}
