package metadata

import (
	"fmt"
	"testing"
)

// benchService loads a realistically sized annotation set: 200 selected
// views spread over 40 input tags plus one template tag each, the shape a
// warmed production metadata service serves.
func benchService() *Service {
	s := NewService()
	anns := make([]Annotation, 0, 200)
	for i := 0; i < 200; i++ {
		anns = append(anns, Annotation{
			NormSig:    fmt.Sprintf("norm-%03d", i),
			Tags:       []string{fmt.Sprintf("input-%d", i%40), fmt.Sprintf("template-%d", i)},
			AvgRuntime: float64(i + 1),
		})
	}
	s.LoadAnalysis(anns)
	return s
}

// BenchmarkMetadataLookupParallel measures RelevantViews under concurrent
// submission: every job in a batch performs one lookup, so the call must
// scale with GOMAXPROCS instead of serializing on the service mutex.
func BenchmarkMetadataLookupParallel(b *testing.B) {
	s := benchService()
	tags := []string{"input-7", "template-3", "input-21"}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if len(s.RelevantViews("vc1", tags)) == 0 {
				b.Fatal("lookup returned nothing")
			}
		}
	})
}

// BenchmarkMetadataLookupSerial is the single-goroutine reference point for
// the parallel benchmark's scaling.
func BenchmarkMetadataLookupSerial(b *testing.B) {
	s := benchService()
	tags := []string{"input-7", "template-3", "input-21"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(s.RelevantViews("vc1", tags)) == 0 {
			b.Fatal("lookup returned nothing")
		}
	}
}
