package data

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Table is a named, partitioned row set. GUID identifies the concrete data
// version: recurring jobs read the "same" table each instance but the GUID
// changes with every data delivery, which is what distinguishes the precise
// signature of one instance from the next.
type Table struct {
	Name       string
	GUID       string
	Schema     Schema
	Partitions [][]Row

	// Lazily computed NumRows/ByteSize, stored as n+1 so the zero value
	// means "stale" even for literal Table construction. AppendHash
	// invalidates; callers that write Partitions directly must finish doing
	// so before the first NumRows/ByteSize call. Atomics because concurrent
	// jobs scan shared catalog tables.
	cachedRows  atomic.Int64
	cachedBytes atomic.Int64
}

// NewTable creates a table with the given number of empty partitions.
func NewTable(name, guid string, schema Schema, partitions int) *Table {
	if partitions < 1 {
		partitions = 1
	}
	return &Table{
		Name:       name,
		GUID:       guid,
		Schema:     schema,
		Partitions: make([][]Row, partitions),
	}
}

// NumRows returns the total row count across partitions (cached between
// appends — extracts re-read table metadata on every job).
func (t *Table) NumRows() int64 {
	if c := t.cachedRows.Load(); c > 0 {
		return c - 1
	}
	var n int64
	for _, p := range t.Partitions {
		n += int64(len(p))
	}
	t.cachedRows.Store(n + 1)
	return n
}

// ByteSize returns the approximate total size of the table in bytes
// (cached between appends, like NumRows).
func (t *Table) ByteSize() int64 {
	if c := t.cachedBytes.Load(); c > 0 {
		return c - 1
	}
	var n int64
	for _, p := range t.Partitions {
		for _, r := range p {
			n += r.ByteSize()
		}
	}
	t.cachedBytes.Store(n + 1)
	return n
}

// AppendHash appends a row into the partition chosen by hashing the given
// key columns, or round-robin via rr when keys is empty.
func (t *Table) AppendHash(row Row, keys []int, rr *int) {
	var p int
	if len(keys) == 0 {
		p = *rr % len(t.Partitions)
		*rr++
	} else {
		p = int(row.Hash64(keys...) % uint64(len(t.Partitions)))
	}
	t.Partitions[p] = append(t.Partitions[p], row)
	t.cachedRows.Store(0)
	t.cachedBytes.Store(0)
}

// AllRows flattens the table into a single slice (test and report helper).
func (t *Table) AllRows() []Row {
	out := make([]Row, 0, t.NumRows())
	for _, p := range t.Partitions {
		out = append(out, p...)
	}
	return out
}

// Validate checks that every row matches the schema arity and kinds
// (NULL is allowed in any column). It returns the first violation found.
func (t *Table) Validate() error {
	for pi, p := range t.Partitions {
		for ri, r := range p {
			if len(r) != len(t.Schema) {
				return fmt.Errorf("table %s partition %d row %d: arity %d, schema wants %d",
					t.Name, pi, ri, len(r), len(t.Schema))
			}
			for ci, v := range r {
				if v.K != KindNull && v.K != t.Schema[ci].Kind {
					return fmt.Errorf("table %s partition %d row %d col %s: kind %s, schema wants %s",
						t.Name, pi, ri, t.Schema[ci].Name, v.K, t.Schema[ci].Kind)
				}
			}
		}
	}
	return nil
}

// Generator produces deterministic synthetic rows for a schema; it backs
// the workload and TPC-DS data generators.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the underlying deterministic source for callers that need
// custom distributions (e.g. Zipf skew in the workload generator).
func (g *Generator) Rand() *rand.Rand { return g.rng }

// Row generates one random row for the schema. Integer columns draw from
// [0, card); string columns pick one of card distinct tokens; dates draw
// from a 4-year window; floats are uniform in [0, 1000).
func (g *Generator) Row(schema Schema, card int64) Row {
	if card < 1 {
		card = 1
	}
	row := make(Row, len(schema))
	for i, c := range schema {
		switch c.Kind {
		case KindInt:
			row[i] = Int(g.rng.Int63n(card))
		case KindFloat:
			row[i] = Float(float64(g.rng.Int63n(1000000)) / 1000.0)
		case KindString:
			row[i] = String_(fmt.Sprintf("%s_%d", c.Name, g.rng.Int63n(card)))
		case KindBool:
			row[i] = Bool(g.rng.Intn(2) == 0)
		case KindDate:
			row[i] = Date(17000 + g.rng.Int63n(1461))
		default:
			row[i] = Null()
		}
	}
	return row
}

// Fill populates the table with n deterministic rows, hash-partitioned on
// the first column when the table has more than one partition.
func (g *Generator) Fill(t *Table, n int, card int64) {
	keys := []int{}
	if len(t.Partitions) > 1 && len(t.Schema) > 0 {
		keys = []int{0}
	}
	rr := 0
	for i := 0; i < n; i++ {
		t.AppendHash(g.Row(t.Schema, card), keys, &rr)
	}
}
