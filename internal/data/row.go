package data

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"strings"
)

// Row is a tuple of values laid out in schema order.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Hash64 hashes the subset of columns named by idx; with no indexes it
// hashes the whole row. Used for shuffles, hash joins, and grouping.
//
// Per-column hashes are combined with a rotate-xor-multiply step, so the
// mix is order-sensitive — (a,b) and (b,a) land in different buckets — and
// a duplicated key column cannot cancel itself back to the seed. The
// finalizer forces full avalanche: shuffle partitioning reduces the hash
// with `% count` for small power-of-two counts, so the low bits must
// depend on every input bit.
func (r Row) Hash64(idx ...int) uint64 {
	const seed = 14695981039346656037
	h := uint64(seed)
	if len(idx) == 0 {
		for _, v := range r {
			h = (bits.RotateLeft64(h, 25) ^ v.Hash64()) * 0x9e3779b97f4a7c15
		}
	} else {
		for _, i := range idx {
			h = (bits.RotateLeft64(h, 25) ^ r[i].Hash64()) * 0x9e3779b97f4a7c15
		}
	}
	// fmix64 finalizer (64-bit MurmurHash3).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ByteSize returns the approximate size of the row in bytes.
func (r Row) ByteSize() int64 {
	var n int64
	for _, v := range r {
		n += v.ByteSize()
	}
	return n
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CompareRows orders rows column-by-column over the key indexes; descending
// directions flip the per-column order. len(desc) may be shorter than keys,
// in which case missing entries are ascending.
func CompareRows(a, b Row, keys []int, desc []bool) int {
	for i, k := range keys {
		c := Compare(a[k], b[k])
		if c == 0 {
			continue
		}
		if i < len(desc) && desc[i] {
			return -c
		}
		return c
	}
	return 0
}

// SortRows sorts rows in place by the given key columns and directions,
// using a stable sort so equal keys preserve input order. The generic
// slices.SortStableFunc avoids sort.SliceStable's reflection-based swaps;
// both are stable under the same comparator, so the output order is
// identical element for element.
func SortRows(rows []Row, keys []int, desc []bool) {
	slices.SortStableFunc(rows, func(a, b Row) int {
		return CompareRows(a, b, keys, desc)
	})
}

// RowsEqual reports whether two row sets are equal as multisets, ignoring
// order. It is the comparator used by correctness tests (CloudViews must
// never change query results).
func RowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	ka := canonicalize(a)
	kb := canonicalize(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func canonicalize(rows []Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(keys)
	return keys
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Project returns the schema restricted to the given column indexes.
func (s Schema) Project(idx []int) Schema {
	out := make(Schema, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// Concat returns the concatenation of two schemas (join output shape).
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// String renders the schema as "name:kind, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}
