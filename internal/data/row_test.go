package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleSchema() Schema {
	return Schema{
		{Name: "id", Kind: KindInt},
		{Name: "name", Kind: KindString},
		{Name: "amount", Kind: KindFloat},
	}
}

func TestRowCloneIsIndependent(t *testing.T) {
	r := Row{Int(1), String_("a")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].AsInt() != 1 {
		t.Error("clone aliases original")
	}
}

func TestRowHashSubset(t *testing.T) {
	a := Row{Int(1), String_("x"), Float(3)}
	b := Row{Int(1), String_("y"), Float(4)}
	if a.Hash64(0) != b.Hash64(0) {
		t.Error("same key column should hash equal")
	}
	if a.Hash64() == b.Hash64() {
		t.Error("full-row hashes of different rows should differ")
	}
}

func TestRowHashMixIsOrderSensitive(t *testing.T) {
	// Symmetric keys must not collide: (a,b) vs (b,a).
	ab := Row{Int(7), Int(42)}
	ba := Row{Int(42), Int(7)}
	if ab.Hash64() == ba.Hash64() {
		t.Error("swapped key columns collide")
	}
	// A duplicated key column must not cancel itself out: hashing the same
	// column twice must still depend on the column's value.
	x := Row{Int(7)}
	y := Row{Int(42)}
	if x.Hash64(0, 0) == y.Hash64(0, 0) {
		t.Error("duplicated key column cancels to a value-independent hash")
	}
	if x.Hash64(0, 0) == (Row{}).Hash64() {
		t.Error("duplicated key column collapses to the empty-row hash")
	}
}

func TestRowHashLowBitsSpread(t *testing.T) {
	// Shuffle partitioning buckets rows with Hash64 % count for small
	// power-of-two counts, so the low bits must avalanche. Sequential keys
	// spread over 16 buckets must come out near-uniform.
	const n, buckets = 4096, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[Row{Int(int64(i))}.Hash64(0)%buckets]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d has %d of %d rows (want ≈%d)", b, c, n, want)
		}
	}
}

func TestCompareRowsAndSort(t *testing.T) {
	rows := []Row{
		{Int(2), String_("b")},
		{Int(1), String_("z")},
		{Int(2), String_("a")},
	}
	SortRows(rows, []int{0, 1}, nil)
	want := []Row{{Int(1), String_("z")}, {Int(2), String_("a")}, {Int(2), String_("b")}}
	for i := range want {
		if CompareRows(rows[i], want[i], []int{0, 1}, nil) != 0 {
			t.Fatalf("sorted[%d] = %v, want %v", i, rows[i], want[i])
		}
	}
	SortRows(rows, []int{0}, []bool{true})
	if rows[0][0].AsInt() != 2 || rows[2][0].AsInt() != 1 {
		t.Errorf("descending sort wrong: %v", rows)
	}
}

func TestRowsEqualMultiset(t *testing.T) {
	a := []Row{{Int(1)}, {Int(2)}, {Int(2)}}
	b := []Row{{Int(2)}, {Int(1)}, {Int(2)}}
	c := []Row{{Int(1)}, {Int(1)}, {Int(2)}}
	if !RowsEqual(a, b) {
		t.Error("permutations should be equal")
	}
	if RowsEqual(a, c) {
		t.Error("different multiplicities should differ")
	}
	if RowsEqual(a, a[:2]) {
		t.Error("different lengths should differ")
	}
}

func TestSchemaOps(t *testing.T) {
	s := sampleSchema()
	if s.ColumnIndex("name") != 1 || s.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
	p := s.Project([]int{2, 0})
	if p[0].Name != "amount" || p[1].Name != "id" {
		t.Errorf("Project wrong: %v", p)
	}
	cat := s.Concat(Schema{{Name: "extra", Kind: KindBool}})
	if len(cat) != 4 || cat[3].Name != "extra" {
		t.Errorf("Concat wrong: %v", cat)
	}
	if s.String() != "id:int, name:string, amount:float" {
		t.Errorf("String() = %q", s.String())
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "id" {
		t.Errorf("Names wrong: %v", names)
	}
}

func TestTableAppendAndValidate(t *testing.T) {
	tab := NewTable("t", "g1", sampleSchema(), 4)
	rr := 0
	for i := 0; i < 100; i++ {
		tab.AppendHash(Row{Int(int64(i)), String_("n"), Float(1)}, []int{0}, &rr)
	}
	if tab.NumRows() != 100 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Hash partitioning must be deterministic: same key, same partition.
	probe := Row{Int(7), String_("x"), Float(0)}
	p := int(probe.Hash64(0) % 4)
	found := false
	for _, r := range tab.Partitions[p] {
		if r[0].AsInt() == 7 {
			found = true
		}
	}
	if !found {
		t.Error("row with key 7 not in its hash partition")
	}
	// Validate catches kind violations.
	tab.Partitions[0] = append(tab.Partitions[0], Row{String_("bad"), String_("n"), Float(1)})
	if tab.Validate() == nil {
		t.Error("Validate should reject wrong-kind row")
	}
}

func TestTableRoundRobin(t *testing.T) {
	tab := NewTable("t", "g", Schema{{Name: "a", Kind: KindInt}}, 3)
	rr := 0
	for i := 0; i < 9; i++ {
		tab.AppendHash(Row{Int(int64(i))}, nil, &rr)
	}
	for p := range tab.Partitions {
		if len(tab.Partitions[p]) != 3 {
			t.Errorf("partition %d has %d rows, want 3", p, len(tab.Partitions[p]))
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(7).Row(sampleSchema(), 100)
	b := NewGenerator(7).Row(sampleSchema(), 100)
	if !RowsEqual([]Row{a}, []Row{b}) {
		t.Errorf("same seed produced %v vs %v", a, b)
	}
	tab := NewTable("t", "g", sampleSchema(), 2)
	NewGenerator(3).Fill(tab, 50, 10)
	if tab.NumRows() != 50 {
		t.Errorf("Fill produced %d rows", tab.NumRows())
	}
	if err := tab.Validate(); err != nil {
		t.Errorf("generated table invalid: %v", err)
	}
}

func TestSortRowsIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{Int(r.Int63n(10)), Int(r.Int63n(10))}
		}
		before := append([]Row(nil), rows...)
		SortRows(rows, []int{0}, nil)
		// Sorted output is a permutation of the input and ordered on key 0.
		if !RowsEqual(before, rows) {
			return false
		}
		for i := 1; i < len(rows); i++ {
			if Compare(rows[i-1][0], rows[i][0]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
