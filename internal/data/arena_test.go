package data

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
)

// refHash64 is the original hash/fnv-based implementation of Value.Hash64,
// kept as the reference the inlined version must match bit for bit: every
// hash feeds a partition assignment, so a divergence would silently change
// every shuffle and join in the engine.
func refHash64(v Value) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.K)
	switch v.K {
	case KindString:
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindFloat:
		bits := math.Float64bits(v.F)
		if v.F == 0 {
			bits = 0
		}
		putUint64(buf[1:], bits)
		h.Write(buf[:])
	default:
		putUint64(buf[1:], uint64(v.I))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func TestValueHash64MatchesFNVReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := []Value{
		Null(), Int(0), Int(-1), Int(math.MaxInt64), Float(0), Float(math.Copysign(0, -1)),
		Float(3.25), Float(math.Inf(1)), Bool(true), Bool(false), Date(19000),
		String_(""), String_("a"), String_("brand_z"),
	}
	for i := 0; i < 2000; i++ {
		switch i % 5 {
		case 0:
			cases = append(cases, Int(r.Int63()-r.Int63()))
		case 1:
			cases = append(cases, Float(r.NormFloat64()*1e6))
		case 2:
			buf := make([]byte, r.Intn(40))
			r.Read(buf)
			cases = append(cases, String_(string(buf)))
		case 3:
			cases = append(cases, Date(int64(r.Intn(40000))))
		default:
			cases = append(cases, Bool(r.Intn(2) == 0))
		}
	}
	for _, v := range cases {
		if got, want := v.Hash64(), refHash64(v); got != want {
			t.Fatalf("Hash64(%v) = %#x, reference fnv = %#x", v, got, want)
		}
	}
}

func TestRowArenaIsolation(t *testing.T) {
	a := NewRowArena()
	rows := make([]Row, 0, 1000)
	for i := 0; i < 1000; i++ {
		r := a.NewRow(3)
		r[0], r[1], r[2] = Int(int64(i)), String_("x"), Float(float64(i))
		rows = append(rows, r)
	}
	// Appending to one arena row must not clobber its neighbor.
	r0 := append(rows[0], Int(999))
	_ = r0
	for i, r := range rows {
		if r[0].AsInt() != int64(i) || r[2].AsFloat() != float64(i) {
			t.Fatalf("row %d corrupted: %v", i, r)
		}
	}
	if got := a.Concat(rows[1], rows[2]); len(got) != 6 || got[0].AsInt() != 1 || got[3].AsInt() != 2 {
		t.Fatalf("Concat = %v", got)
	}
	if got := a.Extend(rows[3], Bool(true)); len(got) != 4 || !got[3].Truth() {
		t.Fatalf("Extend = %v", got)
	}
	if got := a.NewRow(0); len(got) != 0 {
		t.Fatalf("NewRow(0) = %v", got)
	}
	// Oversized rows larger than a block still work.
	big := a.NewRow(3 * arenaBlockValues)
	if len(big) != 3*arenaBlockValues {
		t.Fatalf("oversized row len = %d", len(big))
	}
}

func TestScratchRowArenaReleaseClearsBlocks(t *testing.T) {
	a := NewScratchRowArena()
	for i := 0; i < 3*arenaBlockValues; i++ {
		r := a.NewRow(1)
		r[0] = String_("pinned")
	}
	a.Release()
	// Whatever block the pool hands back next must be fully cleared.
	b := *blockPool.Get().(*[]Value)
	for i := range b[:cap(b)] {
		if b[:cap(b)][i].K != KindNull || b[:cap(b)][i].S != "" {
			t.Fatalf("pooled block not cleared at %d: %v", i, b[:cap(b)][i])
		}
	}
	bb := b[:0]
	blockPool.Put(&bb)
	if a.block != nil || a.full != nil {
		t.Fatal("arena retains blocks after Release")
	}
}
