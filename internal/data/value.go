// Package data provides the typed value, row, schema, and partitioned table
// primitives shared by the plan, execution, and storage layers.
//
// Values are kept in a compact tagged union so rows can be hashed, compared,
// and shuffled without reflection. Dates are represented as days since the
// Unix epoch, which is all the recurring-workload machinery needs (recurring
// jobs vary date predicates per instance).
package data

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate // days since 1970-01-01
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // payload for KindInt, KindBool (0/1), KindDate
	F float64 // payload for KindFloat
	S string  // payload for KindString
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// String_ returns a string value. The trailing underscore avoids colliding
// with the fmt.Stringer method on Value.
func String_(v string) Value { return Value{K: KindString, S: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{K: KindBool, I: i}
}

// Date returns a date value expressed as days since the Unix epoch.
func Date(days int64) Value { return Value{K: KindDate, I: days} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truth reports whether v is a true boolean. NULL and non-booleans are false.
func (v Value) Truth() bool { return v.K == KindBool && v.I != 0 }

// AsFloat converts numeric values to float64; other kinds yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt converts numeric values to int64; other kinds yield 0.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value for debugging and report output.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return "d" + strconv.FormatInt(v.I, 10)
	default:
		return "?"
	}
}

// AppendString appends the String rendering of v to dst and returns the
// extended slice. Kept byte-identical to String: canonical plan encodings
// embed values, so the two renderings must never diverge.
func (v Value) AppendString(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, "NULL"...)
	case KindInt:
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindString:
		return append(dst, v.S...)
	case KindBool:
		if v.I != 0 {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case KindDate:
		return strconv.AppendInt(append(dst, 'd'), v.I, 10)
	default:
		return append(dst, '?')
	}
}

// numericKind reports whether k participates in numeric comparison.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
}

// rank groups kinds into comparison classes so mixed-kind ordering is a
// total order: NULL < all numerics < strings.
func rank(k Kind) int {
	switch {
	case k == KindNull:
		return 0
	case numericKind(k):
		return 1
	default:
		return 2
	}
}

// Compare orders two values: -1 if a < b, 0 if equal, +1 if a > b.
// NULL sorts before everything, numerics before strings. Numeric kinds
// compare by value so Int(3) equals Float(3.0).
func Compare(a, b Value) int {
	if ra, rb := rank(a.K), rank(b.K); ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	if a.K == KindNull {
		return 0
	}
	if numericKind(a.K) {
		if a.K == KindFloat || b.K == KindFloat {
			af, bf := a.AsFloat(), b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	// Both rank 2: compare as strings.
	switch {
	case a.S < b.S:
		return -1
	case a.S > b.S:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash64 returns a 64-bit hash of the value, consistent with Equal for
// same-kind values (the executor only hashes join/group keys of one kind).
func (v Value) Hash64() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.K)
	switch v.K {
	case KindString:
		buf[0] = byte(KindString)
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindFloat:
		bits := math.Float64bits(v.F)
		// Normalize -0.0 to 0.0 so Equal values hash alike.
		if v.F == 0 {
			bits = 0
		}
		putUint64(buf[1:], bits)
		h.Write(buf[:])
	default:
		putUint64(buf[1:], uint64(v.I))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// ByteSize returns the approximate in-memory size of the value in bytes,
// used by the cost model and storage accounting.
func (v Value) ByteSize() int64 {
	if v.K == KindString {
		return int64(16 + len(v.S))
	}
	return 16
}
