// Package data provides the typed value, row, schema, and partitioned table
// primitives shared by the plan, execution, and storage layers.
//
// Values are kept in a compact tagged union so rows can be hashed, compared,
// and shuffled without reflection. Dates are represented as days since the
// Unix epoch, which is all the recurring-workload machinery needs (recurring
// jobs vary date predicates per instance).
package data

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate // days since 1970-01-01
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // payload for KindInt, KindBool (0/1), KindDate
	F float64 // payload for KindFloat
	S string  // payload for KindString
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// String_ returns a string value. The trailing underscore avoids colliding
// with the fmt.Stringer method on Value.
func String_(v string) Value { return Value{K: KindString, S: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{K: KindBool, I: i}
}

// Date returns a date value expressed as days since the Unix epoch.
func Date(days int64) Value { return Value{K: KindDate, I: days} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truth reports whether v is a true boolean. NULL and non-booleans are false.
func (v Value) Truth() bool { return v.K == KindBool && v.I != 0 }

// AsFloat converts numeric values to float64; other kinds yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt converts numeric values to int64; other kinds yield 0.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value for debugging and report output.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return "d" + strconv.FormatInt(v.I, 10)
	default:
		return "?"
	}
}

// AppendString appends the String rendering of v to dst and returns the
// extended slice. Kept byte-identical to String: canonical plan encodings
// embed values, so the two renderings must never diverge.
func (v Value) AppendString(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, "NULL"...)
	case KindInt:
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindString:
		return append(dst, v.S...)
	case KindBool:
		if v.I != 0 {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case KindDate:
		return strconv.AppendInt(append(dst, 'd'), v.I, 10)
	default:
		return append(dst, '?')
	}
}

// numericKind reports whether k participates in numeric comparison.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
}

// rank groups kinds into comparison classes so mixed-kind ordering is a
// total order: NULL < all numerics < strings.
func rank(k Kind) int {
	switch {
	case k == KindNull:
		return 0
	case numericKind(k):
		return 1
	default:
		return 2
	}
}

// Compare orders two values: -1 if a < b, 0 if equal, +1 if a > b.
// NULL sorts before everything, numerics before strings. Numeric kinds
// compare by value so Int(3) equals Float(3.0).
func Compare(a, b Value) int {
	// Same-kind fast path: comparisons on the join/group/sort hot loops are
	// almost always same-kind. Each branch reproduces the mixed-kind logic
	// below exactly — in particular the float switch keeps NaN comparing
	// equal to everything, as </> both report false.
	if a.K == b.K {
		switch a.K {
		case KindInt, KindDate, KindBool:
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		case KindFloat:
			switch {
			case a.F < b.F:
				return -1
			case a.F > b.F:
				return 1
			}
			return 0
		case KindString:
			switch {
			case a.S < b.S:
				return -1
			case a.S > b.S:
				return 1
			}
			return 0
		case KindNull:
			return 0
		}
	}
	if ra, rb := rank(a.K), rank(b.K); ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	if a.K == KindNull {
		return 0
	}
	if numericKind(a.K) {
		if a.K == KindFloat || b.K == KindFloat {
			af, bf := a.AsFloat(), b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	// Both rank 2: compare as strings.
	switch {
	case a.S < b.S:
		return -1
	case a.S > b.S:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-1a 64-bit parameters. Hash64 computes FNV-1a inline rather than
// through hash/fnv: the streaming interface costs an indirect call per
// Write and a []byte(string) copy per string value, and value hashing sits
// on the shuffle/join/group hot path. The byte stream hashed is unchanged
// (kind tag, then payload little-endian), so every hash — and therefore
// every partition assignment — is identical to the hash/fnv-based
// implementation; TestValueHash64MatchesFNVReference pins the equality.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix8 folds an 8-byte little-endian payload into an FNV-1a state.
func fnvMix8(h, v uint64) uint64 {
	// Unrolled byte-at-a-time FNV-1a: the multiply chain is inherently
	// serial, but unrolling drops the loop-carried counter and branch.
	h = (h ^ (v & 0xff)) * fnvPrime64
	h = (h ^ (v >> 8 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 16 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 24 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 32 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 40 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 48 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 56)) * fnvPrime64
	return h
}

// Hash64 returns a 64-bit hash of the value, consistent with Equal for
// same-kind values (the executor only hashes join/group keys of one kind).
func (v Value) Hash64() uint64 {
	h := (uint64(fnvOffset64) ^ uint64(byte(v.K))) * fnvPrime64
	switch v.K {
	case KindString:
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * fnvPrime64
		}
		return h
	case KindFloat:
		bits := math.Float64bits(v.F)
		// Normalize -0.0 to 0.0 so Equal values hash alike.
		if v.F == 0 {
			bits = 0
		}
		return fnvMix8(h, bits)
	default:
		return fnvMix8(h, uint64(v.I))
	}
}

// ByteSize returns the approximate in-memory size of the value in bytes,
// used by the cost model and storage accounting.
func (v Value) ByteSize() int64 {
	if v.K == KindString {
		return int64(16 + len(v.S))
	}
	return 16
}
