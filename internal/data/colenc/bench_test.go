package colenc

import (
	"fmt"
	"testing"

	"cloudviews/internal/data"
)

// benchPartition builds a view-shaped partition: a sorted int key, a date
// column with long runs, a low-cardinality dimension string, a float
// measure, a bool flag — the column mix materialized views carry.
func benchPartition(rows int) []data.Row {
	words := []string{"store", "web", "catalog", "outlet", "kiosk", "phone", "mail", "partner"}
	out := make([]data.Row, rows)
	for i := range out {
		out[i] = data.Row{
			data.Int(int64(1_000_000 + i*3)),
			data.Date(int64(17000 + i/32)),
			data.String_(words[i%len(words)]),
			data.Float(float64(i%977) + 0.25),
			data.Bool(i%3 == 0),
		}
	}
	return out
}

func rowBytes(rows []data.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.ByteSize()
	}
	return n
}

// BenchmarkColencEncode reports encode throughput in MB/s of the *row*
// representation consumed, plus the at-rest compression as
// row-bytes-per-encoded-byte ("ratio" — higher is better; 1.0 is the old
// boxed-row footprint).
func BenchmarkColencEncode(b *testing.B) {
	for _, rows := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			part := benchPartition(rows)
			logical := rowBytes(part)
			enc, err := Encode(part)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(logical)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(part); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(logical)/float64(len(enc)), "ratio")
		})
	}
}

func BenchmarkColencDecode(b *testing.B) {
	for _, rows := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			part := benchPartition(rows)
			logical := rowBytes(part)
			enc, err := Encode(part)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(logical)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
