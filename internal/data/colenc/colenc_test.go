package colenc

import (
	"bytes"
	"math"
	"testing"

	"cloudviews/internal/data"
)

// valuesIdentical compares two values bit-exactly: same kind, same payload
// bits (so NaN equals NaN and -0.0 stays distinct from 0.0 — the codec
// must preserve rendering, not just Compare order).
func valuesIdentical(a, b data.Value) bool {
	if a.K != b.K {
		return false
	}
	switch a.K {
	case data.KindFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case data.KindString:
		return a.S == b.S
	default:
		return a.I == b.I
	}
}

func assertRoundTrip(t *testing.T, rows []data.Row) []byte {
	t.Helper()
	enc, err := Encode(rows)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(dec), len(rows))
	}
	for i := range rows {
		if len(dec[i]) != len(rows[i]) {
			t.Fatalf("row %d: arity %d, want %d", i, len(dec[i]), len(rows[i]))
		}
		for c := range rows[i] {
			if !valuesIdentical(dec[i][c], rows[i][c]) {
				t.Fatalf("row %d col %d: %#v != %#v", i, c, dec[i][c], rows[i][c])
			}
		}
	}
	// Determinism: re-encoding the decoded rows is byte-identical, which
	// is what lets the storage checksum live over encoded bytes.
	re, err := Encode(dec)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(enc), len(re))
	}
	return enc
}

func TestRoundTripAllKinds(t *testing.T) {
	rows := []data.Row{
		{data.Int(0), data.Float(1.5), data.String_("alpha"), data.Bool(true), data.Date(17000), data.Null()},
		{data.Int(-7), data.Float(-0.0), data.String_(""), data.Bool(false), data.Date(-1), data.Null()},
		{data.Int(math.MaxInt64), data.Float(math.NaN()), data.String_("alpha"), data.Null(), data.Date(math.MinInt64), data.Null()},
		{data.Int(math.MinInt64), data.Float(math.Inf(-1)), data.Null(), data.Bool(true), data.Date(0), data.Null()},
		{data.Null(), data.Null(), data.String_("β — utf8\x00bytes"), data.Bool(false), data.Date(math.MaxInt64), data.Null()},
	}
	assertRoundTrip(t, rows)
}

func TestRoundTripEmptyAndSingle(t *testing.T) {
	assertRoundTrip(t, nil)
	assertRoundTrip(t, []data.Row{})
	assertRoundTrip(t, []data.Row{{}})
	assertRoundTrip(t, []data.Row{{data.Int(42)}})
	// Zero-arity rows.
	assertRoundTrip(t, []data.Row{{}, {}, {}})
}

func TestRoundTripMixedKindColumn(t *testing.T) {
	rows := []data.Row{
		{data.Int(1)},
		{data.String_("two")},
		{data.Float(3.0)},
		{data.Bool(true)},
		{data.Date(5)},
		{data.Null()},
	}
	assertRoundTrip(t, rows)
}

func TestDictionaryCompression(t *testing.T) {
	// Heavy duplication must collapse: 1000 rows over 4 distinct strings.
	rows := make([]data.Row, 1000)
	words := []string{"january", "february", "march", "april"}
	for i := range rows {
		rows[i] = data.Row{data.String_(words[i%len(words)])}
	}
	enc := assertRoundTrip(t, rows)
	var raw int
	for _, r := range rows {
		raw += len(r[0].S)
	}
	if len(enc) >= raw/4 {
		t.Errorf("dictionary encoding: %d bytes for %d raw string bytes", len(enc), raw)
	}
	// Decoded duplicates share one string header with the dictionary.
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0][0].S != dec[4][0].S {
		t.Fatal("duplicate strings decoded to different values")
	}
}

func TestDeltaCompression(t *testing.T) {
	// Sorted int runs (the common view layout) encode near one byte/value.
	rows := make([]data.Row, 4096)
	for i := range rows {
		rows[i] = data.Row{data.Int(int64(1_000_000 + i)), data.Date(int64(17000 + i/16))}
	}
	enc := assertRoundTrip(t, rows)
	if len(enc) > len(rows)*4 {
		t.Errorf("delta encoding too large: %d bytes for %d rows", len(enc), len(rows))
	}
}

func TestEncodeRejectsRagged(t *testing.T) {
	_, err := Encode([]data.Row{{data.Int(1)}, {data.Int(1), data.Int(2)}})
	if err == nil {
		t.Fatal("ragged partition accepted")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	rows := make([]data.Row, 64)
	for i := range rows {
		rows[i] = data.Row{data.Int(int64(i * 3)), data.String_("s"), data.Float(float64(i))}
	}
	enc, err := Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := Decode(enc[:len(enc)/2]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := Decode([]byte{0x00, 0x01}); err == nil {
		t.Error("bad magic accepted")
	}
	// Trailing garbage is damage too.
	if _, err := Decode(append(append([]byte{}, enc...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// An implausible header must fail cleanly, not allocate wildly.
	huge := []byte{magic, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0x02}
	if _, err := Decode(huge); err == nil {
		t.Error("implausible shape accepted")
	}
}
