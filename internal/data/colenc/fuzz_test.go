package colenc

import (
	"bytes"
	"math"
	"testing"

	"cloudviews/internal/data"
)

// rowsFromFuzz deterministically derives a partition from fuzz bytes: the
// first byte picks the arity (0-7), then each value consumes a kind
// selector and payload bytes. The mapping deliberately produces every
// data.Kind, NULLs, empty and duplicate strings, negative ints, and
// extreme dates, plus mixed-kind columns (the selector is per value, not
// per column).
func rowsFromFuzz(in []byte) []data.Row {
	if len(in) == 0 {
		return nil
	}
	cols := int(in[0] % 8)
	in = in[1:]
	take := func() byte {
		if len(in) == 0 {
			return 0
		}
		b := in[0]
		in = in[1:]
		return b
	}
	take8 := func() uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v = v<<8 | uint64(take())
		}
		return v
	}
	var rows []data.Row
	for len(in) > 0 && len(rows) < 1024 {
		row := make(data.Row, cols)
		for c := 0; c < cols; c++ {
			switch take() % 8 {
			case 0:
				row[c] = data.Null()
			case 1:
				row[c] = data.Int(int64(take8()))
			case 2:
				row[c] = data.Float(math.Float64frombits(take8()))
			case 3:
				n := int(take() % 9)
				b := make([]byte, n)
				for i := range b {
					b[i] = take()
				}
				row[c] = data.String_(string(b))
			case 4:
				row[c] = data.Bool(take()%2 == 0)
			case 5:
				row[c] = data.Date(int64(take8()))
			case 6:
				// Extreme magnitudes.
				row[c] = data.Int(math.MinInt64 + int64(take()))
			default:
				// Duplicate-prone small strings (dictionary pressure).
				row[c] = data.String_(string([]byte{'a' + take()%3}))
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FuzzColencRoundTrip checks, for arbitrary derived partitions, that
// Decode(Encode(p)) reproduces every value bit-exactly and re-encodes
// byte-identically — the determinism the storage checksum depends on. The
// raw fuzz input is also fed straight to Decode, which must reject or
// accept it without panicking (corrupt-payload robustness).
func FuzzColencRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 0, 0, 0, 0, 0, 0, 0, 9, 3, 2, 'h', 'i', 0})
	f.Add([]byte{6, 2, 255, 255, 255, 255, 255, 255, 255, 255, 5, 0, 1, 4, 7})
	f.Add(bytes.Repeat([]byte{7, 42}, 64))
	f.Fuzz(func(t *testing.T, in []byte) {
		// Decode must never panic on arbitrary bytes; whatever it accepts
		// must at least be re-encodable (no ragged or malformed rows).
		if dec, err := Decode(in); err == nil {
			if _, eerr := Encode(dec); eerr != nil {
				t.Fatalf("decoded rows failed to re-encode: %v", eerr)
			}
		}

		rows := rowsFromFuzz(in)
		enc, err := Encode(rows)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode): %v", err)
		}
		if len(dec) != len(rows) {
			t.Fatalf("row count %d, want %d", len(dec), len(rows))
		}
		for i := range rows {
			if len(dec[i]) != len(rows[i]) {
				t.Fatalf("row %d arity %d, want %d", i, len(dec[i]), len(rows[i]))
			}
			for c := range rows[i] {
				a, b := dec[i][c], rows[i][c]
				if a.K != b.K || a.S != b.S ||
					(a.K == data.KindFloat && math.Float64bits(a.F) != math.Float64bits(b.F)) ||
					(a.K != data.KindFloat && a.I != b.I) {
					t.Fatalf("row %d col %d: %#v != %#v", i, c, a, b)
				}
			}
		}
		re, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatal("re-encode not byte-identical")
		}
	})
}
