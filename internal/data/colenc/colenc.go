// Package colenc is the columnar at-rest codec for materialized-view
// partitions.
//
// A partition ([]data.Row) is encoded into one self-describing byte block:
// values are laid out column-major as typed vectors — zigzag varint deltas
// for ints and dates, raw IEEE-754 bits for floats, a first-occurrence
// dictionary plus varint indexes for strings, packed bits for bools — with
// a per-column null bitmap. Columns whose values do not all share one kind
// fall back to a tagged per-value encoding, so the codec accepts any rows
// the engine can produce.
//
// The encoding is a pure function of the row values: equal partitions
// encode to identical bytes, and Decode(Encode(p)) re-encodes to the same
// bytes. That determinism is what lets the storage layer fold its
// integrity checksum over the encoded payload and still detect any
// reordering, truncation, or bit damage. Decode is defensive: arbitrary
// (corrupted) input returns an error, never a panic or out-of-range read.
//
// Decoded rows are fresh allocations carved from one contiguous value
// arena per partition; string values alias the decoded dictionary, so a
// column with heavy duplication decodes to shared string headers. Callers
// treat decoded rows as immutable, exactly like every other row in the
// engine.
package colenc

import (
	"encoding/binary"
	"fmt"
	"math"

	"cloudviews/internal/data"
)

// magic tags a version-1 encoded partition block.
const magic = 0xC1

// Column tags: 0 means every value in the column is NULL (or the partition
// is empty); 1-5 are the data.Kind values; tagMixed marks a column whose
// non-null values span more than one kind and are stored with per-value
// kind bytes.
const tagMixed = 6

// Encode encodes one partition into a columnar byte block. All rows must
// have the same arity (the engine never produces ragged partitions).
func Encode(rows []data.Row) ([]byte, error) {
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("colenc: ragged partition: row %d has %d columns, row 0 has %d", i, len(r), cols)
		}
	}
	buf := make([]byte, 0, 16+len(rows)*cols*2)
	buf = append(buf, magic)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	buf = binary.AppendUvarint(buf, uint64(cols))
	for c := 0; c < cols; c++ {
		buf = appendColumn(buf, rows, c)
	}
	return buf, nil
}

// columnTag scans column c and returns its encoding tag.
func columnTag(rows []data.Row, c int) byte {
	tag := byte(0)
	for _, r := range rows {
		k := r[c].K
		if k == data.KindNull {
			continue
		}
		if tag == 0 {
			tag = byte(k)
		} else if tag != byte(k) {
			return tagMixed
		}
	}
	return tag
}

func appendColumn(buf []byte, rows []data.Row, c int) []byte {
	tag := columnTag(rows, c)
	buf = append(buf, tag)
	if tag == 0 || len(rows) == 0 {
		return buf
	}
	// Null bitmap: bit i set means row i holds a value.
	bitmap := make([]byte, (len(rows)+7)/8)
	n := 0 // non-null count
	for i, r := range rows {
		if r[c].K != data.KindNull {
			bitmap[i>>3] |= 1 << (i & 7)
			n++
		}
	}
	buf = append(buf, bitmap...)
	switch data.Kind(tag) {
	case data.KindInt, data.KindDate:
		prev := int64(0)
		for _, r := range rows {
			if v := r[c]; v.K != data.KindNull {
				buf = binary.AppendUvarint(buf, zigzag(v.I-prev))
				prev = v.I
			}
		}
	case data.KindFloat:
		for _, r := range rows {
			if v := r[c]; v.K != data.KindNull {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
			}
		}
	case data.KindBool:
		packed := make([]byte, (n+7)/8)
		j := 0
		for _, r := range rows {
			if v := r[c]; v.K != data.KindNull {
				if v.I != 0 {
					packed[j>>3] |= 1 << (j & 7)
				}
				j++
			}
		}
		buf = append(buf, packed...)
	case data.KindString:
		buf = appendStringColumn(buf, rows, c)
	default: // tagMixed
		for _, r := range rows {
			v := r[c]
			if v.K == data.KindNull {
				continue
			}
			buf = append(buf, byte(v.K))
			switch v.K {
			case data.KindFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
			case data.KindString:
				buf = binary.AppendUvarint(buf, uint64(len(v.S)))
				buf = append(buf, v.S...)
			default: // int, date, bool: absolute zigzag varint
				buf = binary.AppendUvarint(buf, zigzag(v.I))
			}
		}
	}
	return buf
}

// appendStringColumn dictionary-encodes the non-null strings of column c:
// distinct values in first-occurrence order, then one varint index per
// value. Duplicate-heavy columns (the common case for dimension attributes)
// collapse to near one varint per row.
func appendStringColumn(buf []byte, rows []data.Row, c int) []byte {
	idx := map[string]uint64{}
	var dict []string
	for _, r := range rows {
		if v := r[c]; v.K != data.KindNull {
			if _, ok := idx[v.S]; !ok {
				idx[v.S] = uint64(len(dict))
				dict = append(dict, v.S)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, s := range dict {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	for _, r := range rows {
		if v := r[c]; v.K != data.KindNull {
			buf = binary.AppendUvarint(buf, idx[v.S])
		}
	}
	return buf
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// decoder walks an encoded block with bounds checking.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) err(format string, args ...any) error {
	return fmt.Errorf("colenc: corrupt block at offset %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, d.err("truncated")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.buf) {
		return nil, d.err("truncated (%d bytes wanted)", n)
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.err("bad varint")
	}
	d.pos += n
	return v, nil
}

// Shape caps: a corrupted header must not trigger an unbounded allocation
// before its truncation is noticed. The caps cannot be derived from the
// payload size — an all-null column legitimately encodes any row count
// into one tag byte — so they are absolute, far above any view this
// engine materializes.
const (
	maxRows   = 1 << 24
	maxCols   = 1 << 16
	maxValues = 1 << 24
)

// plausibleCount bounds counts whose items each consume at least one
// payload byte (dictionary entries).
func (d *decoder) plausibleCount(v uint64) bool {
	return v <= uint64(len(d.buf)-d.pos)
}

// Decode decodes one partition block produced by Encode. Rows are carved
// from a contiguous value arena; string values alias the block's decoded
// dictionary.
func Decode(payload []byte) ([]data.Row, error) {
	d := &decoder{buf: payload}
	m, err := d.byte()
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, d.err("bad magic 0x%02x", m)
	}
	nrows64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	ncols64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nrows64 > maxRows || ncols64 > maxCols || nrows64*ncols64 > maxValues {
		return nil, d.err("implausible shape %dx%d", nrows64, ncols64)
	}
	nrows, ncols := int(nrows64), int(ncols64)
	arena := make([]data.Value, nrows*ncols)
	rows := make([]data.Row, nrows)
	for i := range rows {
		rows[i] = data.Row(arena[i*ncols : (i+1)*ncols : (i+1)*ncols])
	}
	for c := 0; c < ncols; c++ {
		if err := d.column(rows, c, nrows); err != nil {
			return nil, err
		}
	}
	if d.pos != len(d.buf) {
		return nil, d.err("%d trailing bytes", len(d.buf)-d.pos)
	}
	return rows, nil
}

func (d *decoder) column(rows []data.Row, c, nrows int) error {
	tag, err := d.byte()
	if err != nil {
		return err
	}
	if tag == 0 || nrows == 0 {
		if tag != 0 && tag > tagMixed {
			return d.err("bad column tag %d", tag)
		}
		return nil // arena zero value is NULL
	}
	if tag > tagMixed {
		return d.err("bad column tag %d", tag)
	}
	bitmap, err := d.bytes((nrows + 7) / 8)
	if err != nil {
		return err
	}
	present := func(i int) bool { return bitmap[i>>3]&(1<<(i&7)) != 0 }
	switch data.Kind(tag) {
	case data.KindInt, data.KindDate:
		prev := int64(0)
		for i := 0; i < nrows; i++ {
			if !present(i) {
				continue
			}
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			prev += unzigzag(u)
			rows[i][c] = data.Value{K: data.Kind(tag), I: prev}
		}
	case data.KindFloat:
		for i := 0; i < nrows; i++ {
			if !present(i) {
				continue
			}
			b, err := d.bytes(8)
			if err != nil {
				return err
			}
			rows[i][c] = data.Value{K: data.KindFloat, F: math.Float64frombits(binary.LittleEndian.Uint64(b))}
		}
	case data.KindBool:
		n := 0
		for i := 0; i < nrows; i++ {
			if present(i) {
				n++
			}
		}
		packed, err := d.bytes((n + 7) / 8)
		if err != nil {
			return err
		}
		j := 0
		for i := 0; i < nrows; i++ {
			if !present(i) {
				continue
			}
			v := int64(0)
			if packed[j>>3]&(1<<(j&7)) != 0 {
				v = 1
			}
			rows[i][c] = data.Value{K: data.KindBool, I: v}
			j++
		}
	case data.KindString:
		dictLen, err := d.uvarint()
		if err != nil {
			return err
		}
		if !d.plausibleCount(dictLen) {
			return d.err("implausible dictionary size %d", dictLen)
		}
		dict := make([]string, dictLen)
		for i := range dict {
			sl, err := d.uvarint()
			if err != nil {
				return err
			}
			b, err := d.bytes(int(sl))
			if err != nil {
				return err
			}
			dict[i] = string(b)
		}
		for i := 0; i < nrows; i++ {
			if !present(i) {
				continue
			}
			idx, err := d.uvarint()
			if err != nil {
				return err
			}
			if idx >= dictLen {
				return d.err("dictionary index %d of %d", idx, dictLen)
			}
			rows[i][c] = data.Value{K: data.KindString, S: dict[idx]}
		}
	default: // tagMixed
		for i := 0; i < nrows; i++ {
			if !present(i) {
				continue
			}
			kb, err := d.byte()
			if err != nil {
				return err
			}
			switch data.Kind(kb) {
			case data.KindInt, data.KindDate, data.KindBool:
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				rows[i][c] = data.Value{K: data.Kind(kb), I: unzigzag(u)}
			case data.KindFloat:
				b, err := d.bytes(8)
				if err != nil {
					return err
				}
				rows[i][c] = data.Value{K: data.KindFloat, F: math.Float64frombits(binary.LittleEndian.Uint64(b))}
			case data.KindString:
				sl, err := d.uvarint()
				if err != nil {
					return err
				}
				b, err := d.bytes(int(sl))
				if err != nil {
					return err
				}
				rows[i][c] = data.Value{K: data.KindString, S: string(b)}
			default:
				return d.err("bad value kind %d in mixed column", kb)
			}
		}
	}
	return nil
}
