package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v      Value
		kind   Kind
		asInt  int64
		asF    float64
		isNull bool
	}{
		{Null(), KindNull, 0, 0, true},
		{Int(42), KindInt, 42, 42, false},
		{Float(2.5), KindFloat, 2, 2.5, false},
		{String_("x"), KindString, 0, 0, false},
		{Bool(true), KindBool, 1, 1, false},
		{Bool(false), KindBool, 0, 0, false},
		{Date(17532), KindDate, 17532, 17532, false},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.K, c.kind)
		}
		if c.v.AsInt() != c.asInt {
			t.Errorf("%v: AsInt %d, want %d", c.v, c.v.AsInt(), c.asInt)
		}
		if c.v.AsFloat() != c.asF {
			t.Errorf("%v: AsFloat %g, want %g", c.v, c.v.AsFloat(), c.asF)
		}
		if c.v.IsNull() != c.isNull {
			t.Errorf("%v: IsNull %v, want %v", c.v, c.v.IsNull(), c.isNull)
		}
	}
}

func TestTruth(t *testing.T) {
	if !Bool(true).Truth() {
		t.Error("Bool(true).Truth() = false")
	}
	for _, v := range []Value{Bool(false), Null(), Int(1), String_("true")} {
		if v.Truth() {
			t.Errorf("%v.Truth() = true, want false", v)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(3), Float(3.0), 0},
		{Date(10), Date(20), -1},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Null(), Int(-999), -1},
		{Int(-999), Null(), 1},
		{Null(), Null(), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Int(1), 0}, // numeric-kind cross comparison
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	vals := []Value{Null(), Int(0), Int(5), Float(5), Float(-1.5), String_(""), String_("z"), Bool(true), Date(100)}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
		}
	}
}

func TestHashEqualConsistency(t *testing.T) {
	// Equal same-kind values must hash equal.
	pairs := [][2]Value{
		{Int(7), Int(7)},
		{String_("abc"), String_("abc")},
		{Float(0.0), Float(-0.0)},
		{Date(42), Date(42)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("expected %v == %v", p[0], p[1])
		}
		if p[0].Hash64() != p[1].Hash64() {
			t.Errorf("equal values %v,%v hash differently", p[0], p[1])
		}
	}
}

func TestHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		seen[Int(i).Hash64()] = true
	}
	if len(seen) < 990 {
		t.Errorf("integer hash collides too much: %d distinct of 1000", len(seen))
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"42":    Int(42),
		"2.5":   Float(2.5),
		"hi":    String_("hi"),
		"true":  Bool(true),
		"false": Bool(false),
		"d99":   Date(99),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("%#v.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestByteSize(t *testing.T) {
	if Int(1).ByteSize() != 16 {
		t.Errorf("int size = %d, want 16", Int(1).ByteSize())
	}
	if String_("abcd").ByteSize() != 20 {
		t.Errorf("string size = %d, want 20", String_("abcd").ByteSize())
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Int(r.Int63n(1000) - 500)
	case 2:
		return Float(float64(r.Int63n(1000)) / 7)
	case 3:
		return String_(string(rune('a' + r.Intn(26))))
	case 4:
		return Bool(r.Intn(2) == 0)
	default:
		return Date(r.Int63n(20000))
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Property: Compare is reflexive-zero and transitive over random triples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		if Compare(a, a) != 0 {
			return false
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEqualImpliesEqualHashProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomValue(r)
		b := a
		return !Equal(a, b) || a.Hash64() == b.Hash64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
