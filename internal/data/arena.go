package data

import "sync"

// RowArena allocates many short-lived-to-build, long-lived-to-hold rows out
// of large Value blocks, replacing one make(Row, w) per emitted row with one
// block allocation per arenaBlockValues values. Operators that emit a fresh
// row per input row (project, join, process, reduce, aggregate emit) each
// build their output through an arena.
//
// Ownership rules (DESIGN.md §9):
//
//   - An arena is single-writer: one goroutine fills it. Parallel kernels
//     use one arena per partition, never a shared one.
//   - Rows returned by NewRow alias the arena's blocks. An emit arena
//     (NewRowArena) must never be released: its rows escape into operator
//     outputs, job results, and materialized views, so its blocks are owned
//     by the garbage collector once the operator returns.
//   - A scratch arena (NewScratchRowArena) recycles its blocks through a
//     process-wide sync.Pool on Release. It is only for rows that provably
//     do not outlive the operator — e.g. aggregate group keys, whose values
//     are copied into output rows at emit time. Releasing an arena whose
//     rows escaped is a use-after-free-by-pool bug; when in doubt, use an
//     emit arena.
type RowArena struct {
	block   []Value   // current block, full length; used marks the carved prefix
	used    int       // Values carved from block so far
	full    [][]Value // exhausted blocks (sliced to their used prefix), for Release
	pooled  bool      // blocks come from (and return to) blockPool
	firstSz int       // size of the first block; later blocks use arenaBlockValues
}

// arenaBlockValues is the number of Values per full-size arena block
// (~384 KiB at 48 bytes per Value).
const arenaBlockValues = 8192

// arenaFirstBlock keeps small emits cheap: the first block is modest and
// growth jumps to full-size blocks only if the arena keeps allocating.
const arenaFirstBlock = 512

var blockPool = sync.Pool{
	New: func() any {
		b := make([]Value, 0, arenaBlockValues)
		return &b
	},
}

// NewRowArena returns an emit arena whose blocks are garbage-collected with
// the rows allocated from them.
func NewRowArena() *RowArena {
	return &RowArena{firstSz: arenaFirstBlock}
}

// NewRowArenaSized returns an emit arena whose first block holds hint
// Values — for kernels that know their output volume up front (project and
// join emit about one row per input row), so the arena allocates once
// instead of stepping through growth blocks.
func NewRowArenaSized(hint int) *RowArena {
	if hint < arenaFirstBlock {
		hint = arenaFirstBlock
	}
	return &RowArena{firstSz: hint}
}

// NewScratchRowArena returns an arena backed by pooled full-size blocks.
// The caller must call Release exactly once, after the last row allocated
// from it is dead.
func NewScratchRowArena() *RowArena {
	return &RowArena{pooled: true, firstSz: arenaBlockValues}
}

// NewRow returns a zeroed row of the given width carved from the arena.
// The row has full capacity == width, so appending to it can never bleed
// into a neighboring row. The carve fast path is shaped to inline into
// per-row emit loops; only growth (and the width<=0 edge) takes a call.
func (a *RowArena) NewRow(width int) Row {
	off := a.used
	end := off + width
	if width <= 0 || end > len(a.block) {
		return a.newRowSlow(width)
	}
	a.used = end
	return Row(a.block[off:end:end])
}

func (a *RowArena) newRowSlow(width int) Row {
	if width <= 0 {
		return Row{}
	}
	a.grow(width)
	a.used = width
	return Row(a.block[0:width:width])
}

// NewRows fills out with len(out) fresh zeroed rows of the given width —
// the batch form of NewRow for kernels that emit one output row per input
// row (compiled projection). Rows come out identical to len(out) NewRow
// calls (full capacity == width, carved in order), but the cursor bumps
// once per block instead of once per row. When a block runs out, the next
// one is sized for everything still owed, so a pre-sized emit arena serves
// the whole batch from a single allocation.
func (a *RowArena) NewRows(out []Row, width int) {
	if width <= 0 {
		for i := range out {
			out[i] = Row{}
		}
		return
	}
	i := 0
	for i < len(out) {
		avail := (len(a.block) - a.used) / width
		if avail == 0 {
			a.grow((len(out) - i) * width)
			avail = len(a.block) / width
		}
		n := len(out) - i
		if n > avail {
			n = avail
		}
		off := a.used
		for j := 0; j < n; j++ {
			end := off + width
			out[i+j] = Row(a.block[off:end:end])
			off = end
		}
		a.used = off
		i += n
	}
}

// Concat returns a new arena row holding a ++ b — the join emit shape.
func (a *RowArena) Concat(x, y Row) Row {
	nr := a.NewRow(len(x) + len(y))
	copy(nr, x)
	copy(nr[len(x):], y)
	return nr
}

// Extend returns a new arena row holding r ++ extra — the process/reduce
// emit shape.
func (a *RowArena) Extend(r Row, extra Value) Row {
	nr := a.NewRow(len(r) + 1)
	copy(nr, r)
	nr[len(r)] = extra
	return nr
}

func (a *RowArena) grow(width int) {
	if a.block != nil && a.pooled {
		a.full = append(a.full, a.block[:a.used])
	}
	size := arenaBlockValues
	if a.block == nil && a.firstSz > 0 {
		size = a.firstSz
	}
	if width > size {
		size = width
	}
	if a.pooled && size <= arenaBlockValues {
		b := *blockPool.Get().(*[]Value)
		a.block = b[:cap(b)]
	} else {
		a.block = make([]Value, size)
	}
	a.used = 0
}

// Release returns a scratch arena's blocks to the pool. Blocks are cleared
// first so pooled memory cannot pin strings referenced by dead rows. On an
// emit (non-pooled) arena Release is a no-op.
func (a *RowArena) Release() {
	if !a.pooled {
		return
	}
	for _, b := range a.full {
		putBlock(b)
	}
	if a.block != nil {
		putBlock(a.block[:a.used])
	}
	a.full = nil
	a.block = nil
	a.used = 0
}

func putBlock(b []Value) {
	if cap(b) < arenaBlockValues {
		return // oversized-row one-off or undersized block; let GC take it
	}
	used := b[:len(b)]
	for i := range used {
		used[i] = Value{}
	}
	b = b[:0]
	blockPool.Put(&b)
}
