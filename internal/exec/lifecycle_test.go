package exec

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cloudviews/internal/plan"
)

// cancelHook cancels a context from inside the run: after the n-th vertex
// completes, the job's context is cancelled, so the next vertex-boundary
// checkpoint must stop the job.
type cancelHook struct {
	cancel context.CancelFunc
	after  int

	mu   sync.Mutex
	seen int
}

func (h *cancelHook) VertexDone(_, _ string, _ plan.OpKind, _ int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seen++
	if h.seen == h.after {
		h.cancel()
	}
	return nil
}

func (h *cancelHook) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

// TestRunCtxPreCancelled: a context cancelled before the run starts stops
// the job at the first checkpoint — no output, typed cause.
func TestRunCtxPreCancelled(t *testing.T) {
	e := env(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunCtx(ctx, retryPlan(), "pre", 0, 0)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled with nil result, got res=%v err=%v", res, err)
	}
}

// TestRunCtxCancelMidRun: cancelling after the first vertex completes
// stops the job cooperatively on both execution paths; the error carries
// context.Canceled and never a partial result.
func TestRunCtxCancelMidRun(t *testing.T) {
	for _, serial := range []bool{false, true} {
		e := env(t)
		e.Serial = serial
		ctx, cancel := context.WithCancel(context.Background())
		e.Faults = &cancelHook{cancel: cancel, after: 1}
		res, err := e.RunCtx(ctx, retryPlan(), "mid", 0, 0)
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v: want context.Canceled with nil result, got res=%v err=%v", serial, res, err)
		}
		cancel()
	}
}

// crashAndCancelHook fails one operator kind transiently forever and
// cancels the context on its first failure: the vertex has attempts left,
// so only the retry loop's pre-retry checkpoint can stop the job.
type crashAndCancelHook struct {
	kind   plan.OpKind
	cancel context.CancelFunc

	mu    sync.Mutex
	fired int
}

func (h *crashAndCancelHook) VertexDone(_, site string, k plan.OpKind, _ int) error {
	if k != h.kind {
		return nil
	}
	h.mu.Lock()
	h.fired++
	if h.fired == 1 {
		h.cancel()
	}
	h.mu.Unlock()
	return transientErr{"crash " + site}
}

func (h *crashAndCancelHook) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

// TestRunCtxCancelDoesNotBurnRetries: a cancelled job must not keep
// re-running a crashing vertex — the pre-retry checkpoint stops it even
// when the underlying failure is transient and attempts remain.
func TestRunCtxCancelDoesNotBurnRetries(t *testing.T) {
	e := env(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := &crashAndCancelHook{kind: plan.OpSort, cancel: cancel}
	e.Faults = hook
	_, err := e.RunCtx(ctx, retryPlan(), "noretry", 0, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if hook.fired != 1 {
		t.Fatalf("crashing vertex ran %d times after cancellation, want 1 (no retries burned)", hook.fired)
	}
}

// TestRunCtxDeadline: a deadline tighter than the plan's simulated latency
// fails with context.DeadlineExceeded; a looser one does not. The failure
// is identical on the serial walk and the DAG scheduler — the deadline is
// judged on simulated time, which does not depend on the schedule.
func TestRunCtxDeadline(t *testing.T) {
	clean, err := env(t).Run(retryPlan(), "clean", 0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Latency <= 1 {
		t.Fatalf("plan latency %v too small to test a deadline", clean.Latency)
	}

	var msgs [2]string
	for i, serial := range []bool{false, true} {
		e := env(t)
		e.Serial = serial
		// Deadline of 1 logical unit: the first real vertex blows it.
		res, derr := e.RunCtx(context.Background(), retryPlan(), "tight", 0, 1)
		if res != nil || !errors.Is(derr, context.DeadlineExceeded) {
			t.Fatalf("serial=%v: want DeadlineExceeded, got res=%v err=%v", serial, res, derr)
		}
		msgs[i] = derr.Error()

		// Deadline past the full latency: unaffected.
		ok, oerr := e.RunCtx(context.Background(), retryPlan(), "loose", 0, int64(clean.Latency)+10)
		if oerr != nil {
			t.Fatalf("serial=%v: loose deadline failed the job: %v", serial, oerr)
		}
		if len(ok.Outputs["o"]) == 0 {
			t.Fatalf("serial=%v: loose-deadline run produced no output", serial)
		}
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("deadline error diverges across schedulers:\n dag:    %s\n serial: %s", msgs[0], msgs[1])
	}
}
