package exec

import (
	"sync"

	"cloudviews/internal/plan"
)

// schedule.go is the stage-parallel DAG scheduler. Instead of walking the
// plan depth-first (which serializes independent subtrees — the two inputs
// of a join never overlapped in wall-clock time), execution is driven by
// dependency counting: every node knows how many distinct children it
// waits on, leaves are seeded into the shared worker pool, and each
// completion decrements its parents' counters, dispatching any node that
// becomes ready. Shared (spooled) subtrees are single nodes in the graph,
// so they execute exactly once — the scheduler subsumes the serial path's
// memoization.
//
// The simulated accounting is unchanged by design: per-node Stats are
// computed from the node's own output and its children's recorded stats,
// and the critical-path latency recurrence (max over children + own
// share) is order-independent, so NodeStats, TotalCPU, and Latency are
// byte-identical to the serial walk. TestParallelSchedulerMatchesSerial
// pins that equivalence.

// dagRun is the state of one scheduled execution.
type dagRun struct {
	e  *Executor
	st *execState

	mu      sync.Mutex
	waiting map[*plan.Node]int          // distinct children still running
	parents map[*plan.Node][]*plan.Node // distinct parents to notify
	outs    map[*plan.Node]partitions   // completed node outputs
	err     error                       // first operator error; stops dispatch
	wg      sync.WaitGroup              // in-flight node executions
}

// runDAG executes the plan rooted at root with the dependency-counting
// scheduler, filling st exactly as the serial walk would.
func (e *Executor) runDAG(root *plan.Node, st *execState) error {
	// Memoize derived schemas serially before going parallel: Schema()
	// lazily caches into the node, and operators (joins, aggregates) read
	// it during execution — a benign-looking but real data race if two
	// parents of a shared node derived it concurrently.
	nodes := plan.Nodes(root)
	for _, n := range nodes {
		n.Schema()
	}

	d := &dagRun{
		e:       e,
		st:      st,
		waiting: make(map[*plan.Node]int, len(nodes)),
		parents: make(map[*plan.Node][]*plan.Node, len(nodes)),
		outs:    make(map[*plan.Node]partitions, len(nodes)),
	}
	var ready []*plan.Node
	for _, n := range nodes {
		distinct := 0
		seen := map[*plan.Node]bool{}
		for _, c := range n.Children {
			if seen[c] {
				continue
			}
			seen[c] = true
			distinct++
			d.parents[c] = append(d.parents[c], n)
		}
		d.waiting[n] = distinct
		if distinct == 0 {
			ready = append(ready, n)
		}
	}
	for _, n := range ready {
		d.dispatch(n)
	}
	d.wg.Wait()
	return d.err
}

// dispatch hands a ready node to the worker pool, executing inline when
// every worker is busy (work-conserving, never blocking).
func (d *dagRun) dispatch(n *plan.Node) {
	if !pool.trySpawn(&d.wg, func() { d.exec(n) }) {
		d.wg.Add(1)
		d.exec(n)
		d.wg.Done()
	}
}

// exec runs one node whose children have all completed, records its stats
// and output, and dispatches any parent that became ready.
func (d *dagRun) exec(n *plan.Node) {
	d.mu.Lock()
	if d.err != nil {
		d.mu.Unlock()
		return
	}
	childParts := make([]partitions, len(n.Children))
	childStats := make([]*Stats, len(n.Children))
	var childLatency, childCumCost float64
	for i, c := range n.Children {
		childParts[i] = d.outs[c]
		cs := d.st.res.NodeStats[c]
		childStats[i] = cs
		if cs.Latency > childLatency {
			childLatency = cs.Latency
		}
		childCumCost += cs.CumulativeCost
	}
	d.mu.Unlock()

	out, outBytes, cost, vm, err := d.e.runVertex(n, childParts, childStats, d.st)

	// Stats assembly (including any residual byte walk) happens outside
	// the run lock; only the bookkeeping maps are guarded.
	var ns *Stats
	if err == nil {
		ns = nodeStats(out, outBytes, cost, childLatency, childCumCost)
		ns.Latency += vm.extra
		// Deadline enforcement mirrors the serial walk exactly: latency is
		// monotone up the tree, so whichever vertex observes the overrun
		// first, the job fails with the same (vertex-independent) error.
		if d.st.pastDeadline(ns.Latency) {
			err = d.st.deadlineErr()
			ns = nil
		}
	}
	if err == nil && d.e.Obs != nil {
		// Emit outside the run lock, like the kernel itself; the event is
		// self-contained and the collector order-normalizes.
		d.e.emitVertex(n, ns, childLatency, vm, d.st)
	}

	d.mu.Lock()
	if err != nil {
		if d.err == nil {
			d.err = err
		}
		d.mu.Unlock()
		return
	}
	if d.err != nil {
		d.mu.Unlock()
		return
	}
	d.outs[n] = out
	d.st.res.NodeStats[n] = ns
	var newlyReady []*plan.Node
	for _, p := range d.parents[n] {
		d.waiting[p]--
		if d.waiting[p] == 0 {
			newlyReady = append(newlyReady, p)
		}
	}
	d.mu.Unlock()
	for _, p := range newlyReady {
		d.dispatch(p)
	}
}
