// Package exec executes physical plans over real rows while maintaining a
// simulated cost clock.
//
// Execution is faithful (operators really filter, join, aggregate, and
// shuffle rows, so correctness of computation reuse is testable end to
// end), while latency and CPU consumption are *simulated* from a cost
// model — the substitution for SCOPE's production cluster documented in
// DESIGN.md. Per-operator statistics feed the CloudViews feedback loop.
//
// The data plane is partition-parallel: the heavy kernels (hash join,
// hash aggregate, exchange, sort, materialize layout enforcement) fan
// their per-partition work out through the shared bounded worker pool,
// with deterministic merge rules so output bytes never depend on
// scheduling (DESIGN.md §9). Simulated cost is computed from row/byte
// counts, so real parallelism never changes the simulated figures.
package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/storage"
)

// FaultHook is the executor's fault-injection seam (see internal/fault).
// VertexDone is consulted after each operator attempt finishes its kernel;
// a non-nil error crashes that attempt (the vertex-retry loop decides
// whether to re-run it). VertexDelay returns extra simulated latency for a
// straggling vertex. Both are keyed by a scheduler-independent site string
// ("<plan ordinal>/<op kind>") plus the attempt number, so a deterministic
// hook makes identical decisions on the serial and parallel paths.
type FaultHook interface {
	VertexDone(job, site string, kind plan.OpKind, attempt int) error
	VertexDelay(job, site string, kind plan.OpKind) float64
}

// ObsHook is the executor's observability seam (see internal/obs and the
// core observer that implements it). VertexDone is invoked once per
// *successful* vertex completion, after the node's stats are final, with
// an event built entirely from deterministic simulated quantities — so a
// collector that order-normalizes sees identical event sets on the serial
// and DAG paths. A nil hook costs one branch per vertex.
type ObsHook interface {
	VertexDone(job string, ev VertexEvent)
}

// VertexEvent describes one completed vertex for the observability layer.
type VertexEvent struct {
	// Site is the scheduler-independent vertex key "<ordinal>/<kind>";
	// Kind the operator kind alone.
	Site string
	Kind string
	// Start and End are the vertex's simulated interval in absolute
	// logical ticks (submission instant + child latency / node latency).
	Start, End float64
	// Rows, Bytes, and CPU are the node's output stats.
	Rows  int64
	Bytes int64
	CPU   float64
	// Attempts is how many times the vertex ran (1 = no retries);
	// RetryWait the simulated backoff those retries accumulated and
	// FaultDelay the injected straggler delay, both in ticks.
	Attempts   int
	RetryWait  float64
	FaultDelay float64
	// ViewPath is set for ViewScan and Materialize vertices. Cache is the
	// ViewScan's deterministic cache verdict ("hit"/"miss"), precomputed
	// at job start in plan order so it does not depend on which concurrent
	// consumer decodes first (exact runtime hit/miss counts live in the
	// storage layer's own hook).
	ViewPath string
	Cache    string
}

// RetryPolicy bounds the per-vertex retry loop. Zero values select the
// defaults; retries apply only to transient errors (see Transient).
type RetryPolicy struct {
	// MaxAttempts is the per-vertex attempt cap (default 4: one run plus
	// up to three retries).
	MaxAttempts int
	// JobBudget caps total retries across all vertices of one job
	// (default 16), so a systematically failing stage cannot retry forever
	// even with many partitioned siblings.
	JobBudget int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff, in
	// simulated seconds (defaults 1 and 30). Backoff is simulated time —
	// it feeds the latency clock, never a wall-clock sleep.
	BaseBackoff float64
	MaxBackoff  float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.JobBudget <= 0 {
		p.JobBudget = 16
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 1
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 30
	}
	return p
}

// Backoff returns the simulated wait before re-running a vertex whose
// attempt (0-based) just failed: BaseBackoff doubling per attempt, capped.
func (p RetryPolicy) Backoff(attempt int) float64 {
	d := p.BaseBackoff * math.Pow(2, float64(attempt))
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Transient reports whether err is marked retryable — anywhere in its
// chain, something implements Transient() true. Injected faults and other
// recoverable infrastructure errors carry the marker; semantic failures
// (corrupt views, schema mismatches) do not and fail the vertex at once.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Executor runs plans against a catalog of base tables and a view store.
type Executor struct {
	Catalog *catalog.Catalog
	Store   *storage.Store

	// OnViewMaterialized, if set, is invoked the moment a Materialize
	// operator finishes writing its view — before the rest of the job
	// runs. This is the early-materialization publication hook (§6.4):
	// the job manager reports the view while the job is still running.
	OnViewMaterialized func(v *storage.View)

	// Faults, if set, is consulted around every operator attempt on both
	// execution paths. Production runs leave it nil.
	Faults FaultHook

	// Obs, if set, receives one VertexEvent per successful vertex on both
	// execution paths (see ObsHook). Nil when observability is off.
	Obs ObsHook

	// Retry bounds the vertex-retry loop; the zero value means defaults.
	Retry RetryPolicy

	// Serial forces the depth-first reference walk instead of the DAG
	// scheduler. It exists for differential tests (the serial walk is the
	// executable spec the parallel scheduler is diffed against); fault
	// hooks and retries run identically on both paths.
	Serial bool
}

// Result is the outcome of one job execution.
type Result struct {
	// Outputs maps sink name to the produced rows.
	Outputs map[string][]data.Row
	// NodeStats holds per-operator runtime statistics keyed by the
	// executed plan's nodes.
	NodeStats map[*plan.Node]*Stats
	// TotalCPU is the job's total simulated CPU cost (the PN-hours proxy).
	TotalCPU float64
	// Latency is the job's simulated end-to-end latency (critical path).
	Latency float64
	// MaterializedPaths lists views written during execution.
	MaterializedPaths []string
	// Retries counts vertex attempts that were re-run after a transient
	// failure; RetryWait is the simulated backoff time they accumulated.
	Retries   int
	RetryWait float64
}

// partitions is the unit flowing between operators.
type partitions [][]data.Row

func (p partitions) rows() int64 {
	var n int64
	for _, part := range p {
		n += int64(len(part))
	}
	return n
}

func (p partitions) bytes() int64 {
	var n int64
	for _, part := range p {
		for _, r := range part {
			n += r.ByteSize()
		}
	}
	return n
}

func (p partitions) flatten() []data.Row {
	out := make([]data.Row, 0, p.rows())
	for _, part := range p {
		out = append(out, part...)
	}
	return out
}

type execState struct {
	res  *Result
	memo map[*plan.Node]partitions
	now  int64
	job  string
	// ctx is the job's lifecycle context; kernels poll it at chunk
	// boundaries and runVertex enforces it at vertex boundaries.
	ctx context.Context
	// deadline is the job's absolute logical-clock deadline (0 = none). A
	// vertex whose simulated completion time (now + latency) passes it
	// fails the job with context.DeadlineExceeded in its error chain.
	deadline int64
	// sites maps each node to its scheduler-independent fault-site key,
	// "<ordinal in plan.Nodes order>/<op kind>".
	sites map[*plan.Node]string
	// cacheVerdict is the deterministic per-ViewScan cache attribution for
	// observability (nil unless an ObsHook is installed): computed at job
	// start in plan order, so it never depends on which concurrent
	// consumer's decode raced into the hot cache first.
	cacheVerdict map[*plan.Node]string
	// budget is the job's remaining retry allowance, decremented atomically
	// by concurrent vertices.
	budget atomic.Int64
	// mu guards the Result fields that operators mutate directly (output
	// sinks, materialized paths, retry counters): independent nodes may
	// run concurrently under the DAG scheduler.
	mu sync.Mutex
}

// noteRetry records one granted retry and its simulated backoff.
func (st *execState) noteRetry(wait float64) {
	st.mu.Lock()
	st.res.Retries++
	st.res.RetryWait += wait
	st.mu.Unlock()
}

// checkpoint is the authoritative cancellation check at vertex boundaries:
// it fails the vertex the moment the job's context is done. Kernels also
// poll the context at chunk boundaries, but those polls only bail early
// (possibly leaving partial output, possibly missing a late cancel) — the
// vertex-boundary checkpoint is what guarantees partial kernel output is
// never consumed: a parent vertex checkpoints before touching child
// output, and Run checkpoints once more after the walk so a partial root
// can never masquerade as a completed job.
func (st *execState) checkpoint() error {
	if err := st.ctx.Err(); err != nil {
		return fmt.Errorf("exec: job %s stopped at cancellation checkpoint: %w", st.job, err)
	}
	return nil
}

// pastDeadline reports whether a vertex completing at simulated latency
// (relative to the job's submission instant st.now) lands past the job's
// absolute deadline. Node latency is monotone up the tree (max over
// children + own share), so "some vertex trips this" is equivalent to
// "the root would trip this": the job's outcome is deterministic even
// though which vertex catches it first varies under the DAG scheduler.
func (st *execState) pastDeadline(latency float64) bool {
	return st.deadline > 0 && float64(st.now)+latency > float64(st.deadline)
}

// deadlineErr builds the deadline failure. The message deliberately names
// only the job — never the catching vertex, which is scheduler-dependent —
// so serial and DAG executions fail byte-identically.
func (st *execState) deadlineErr() error {
	return fmt.Errorf("exec: job %s: simulated completion time passes the deadline (t=%d): %w",
		st.job, st.deadline, context.DeadlineExceeded)
}

// Run executes the plan rooted at root. jobID tags provenance of any views
// materialized; now is the simulated time used for view creation stamps.
//
// Independent subtrees execute concurrently on the shared worker pool
// (see schedule.go) unless Serial selects the depth-first reference walk.
// Every operator attempt flows through the vertex-retry loop (runVertex):
// transient failures — injected or infrastructural — re-run the vertex
// with capped exponential backoff under a per-job budget. The kernels are
// identical on both paths and fault sites are keyed by plan position, not
// completion order, so serial and scheduled executions produce
// byte-identical results even under a deterministic fault schedule.
func (e *Executor) Run(root *plan.Node, jobID string, now int64) (*Result, error) {
	return e.RunCtx(context.Background(), root, jobID, now, 0)
}

// RunCtx is Run under a job lifecycle: ctx cancellation stops execution
// cooperatively — checked authoritatively at every vertex boundary and
// polled at chunk boundaries inside the long kernels — and deadline (an
// absolute logical-clock instant, 0 = none) fails the job with
// context.DeadlineExceeded as soon as any vertex's simulated completion
// time passes it. Deadline enforcement is simulated-time against simulated
// cost, so it is as deterministic as the cost model; wall-clock has no say.
func (e *Executor) RunCtx(ctx context.Context, root *plan.Node, jobID string, now int64, deadline int64) (*Result, error) {
	st := &execState{
		res: &Result{
			Outputs:   map[string][]data.Row{},
			NodeStats: map[*plan.Node]*Stats{},
		},
		memo:     map[*plan.Node]partitions{},
		now:      now,
		job:      jobID,
		ctx:      ctx,
		deadline: deadline,
		sites:    map[*plan.Node]string{},
	}
	nodes := plan.Nodes(root)
	for i, n := range nodes {
		st.sites[n] = fmt.Sprintf("%d/%s", i, n.Kind)
	}
	if e.Obs != nil {
		// Deterministic cache attribution for the trace: walk ViewScans in
		// plan order; the first scan of a path reports the cache's state as
		// of job start, every later scan of the same path reports a hit
		// (the first scan's decode is resident by then). This is a verdict
		// about the *plan*, not about which goroutine won the decode race.
		st.cacheVerdict = map[*plan.Node]string{}
		seen := map[string]bool{}
		for _, n := range nodes {
			if n.Kind != plan.OpViewScan {
				continue
			}
			switch {
			case seen[n.ViewPath]:
				st.cacheVerdict[n] = "hit"
			case e.Store != nil && e.Store.CacheContains(n.ViewPath):
				st.cacheVerdict[n] = "hit"
			default:
				st.cacheVerdict[n] = "miss"
			}
			seen[n.ViewPath] = true
		}
	}
	st.budget.Store(int64(e.Retry.withDefaults().JobBudget))
	if e.Serial {
		if _, err := e.run(root, st); err != nil {
			return nil, err
		}
	} else if err := e.runDAG(root, st); err != nil {
		return nil, err
	}
	// Final checkpoint: a cancel that landed inside the root vertex's
	// kernel (which bails without error, leaving partial output) must not
	// surface as a successful result.
	if err := st.checkpoint(); err != nil {
		return nil, err
	}
	// Sum exclusive costs in deterministic plan order: float addition is
	// order-sensitive in the last bits, and reuse validation compares
	// TotalCPU across executions exactly.
	for _, n := range plan.Nodes(root) {
		st.res.TotalCPU += st.res.NodeStats[n].ExclusiveCost
	}
	st.res.Latency = st.res.NodeStats[root].Latency
	// Materialization completion order varies under the parallel
	// scheduler; report paths in a canonical order.
	sort.Strings(st.res.MaterializedPaths)
	return st.res, nil
}

func (e *Executor) run(n *plan.Node, st *execState) (partitions, error) {
	if out, ok := st.memo[n]; ok {
		return out, nil
	}
	childParts := make([]partitions, len(n.Children))
	childStats := make([]*Stats, len(n.Children))
	var childLatency float64
	var childCumCost float64
	for i, c := range n.Children {
		p, err := e.run(c, st)
		if err != nil {
			return nil, err
		}
		childParts[i] = p
		cs := st.res.NodeStats[c]
		childStats[i] = cs
		if cs.Latency > childLatency {
			childLatency = cs.Latency
		}
		childCumCost += cs.CumulativeCost
	}

	out, outBytes, cost, vm, err := e.runVertex(n, childParts, childStats, st)
	if err != nil {
		return nil, err
	}

	ns := nodeStats(out, outBytes, cost, childLatency, childCumCost)
	ns.Latency += vm.extra
	if st.pastDeadline(ns.Latency) {
		return nil, st.deadlineErr()
	}
	st.res.NodeStats[n] = ns
	st.memo[n] = out
	if e.Obs != nil {
		e.emitVertex(n, ns, childLatency, vm, st)
	}
	return out, nil
}

// vertexMeta is runVertex's per-vertex accounting beyond the kernel
// output: extra is the simulated latency added to the node (backoff waits
// plus injected straggler delay); attempts, retryWait, and faultDelay
// break it down for the observability event.
type vertexMeta struct {
	extra      float64
	attempts   int
	retryWait  float64
	faultDelay float64
}

// emitVertex reports one successful vertex to the observability hook. All
// fields derive from simulated quantities (stats, plan position, fault
// decisions), so the event set is identical across execution paths.
func (e *Executor) emitVertex(n *plan.Node, ns *Stats, childLatency float64, vm vertexMeta, st *execState) {
	ev := VertexEvent{
		Site:       st.sites[n],
		Kind:       n.Kind.String(),
		Start:      float64(st.now) + childLatency,
		End:        float64(st.now) + ns.Latency,
		Rows:       ns.Rows,
		Bytes:      ns.Bytes,
		CPU:        ns.ExclusiveCost,
		Attempts:   vm.attempts,
		RetryWait:  vm.retryWait,
		FaultDelay: vm.faultDelay,
	}
	switch n.Kind {
	case plan.OpViewScan:
		ev.ViewPath = n.ViewPath
		ev.Cache = st.cacheVerdict[n]
	case plan.OpMaterialize:
		ev.ViewPath = n.MatPath
	}
	e.Obs.VertexDone(st.job, ev)
}

// runVertex is the vertex-retry loop shared by the serial walk and the DAG
// scheduler: it runs one operator attempt (kernel plus fault hook) and
// re-runs it on transient failure, up to the policy's per-vertex attempt
// cap and the job's shared retry budget. Retried kernels are idempotent by
// construction — Output rewrites the same rows, Materialize deduplicates
// through the store's first-writer-wins Write — so a retry re-runs only
// this vertex, never its subtree. The returned vertexMeta carries the
// extra simulated latency for the node's stats (backoff waits plus
// injected straggler delay) and its breakdown for observability; it is
// deterministic because fault decisions are.
func (e *Executor) runVertex(n *plan.Node, in []partitions, inStats []*Stats, st *execState) (partitions, int64, float64, vertexMeta, error) {
	policy := e.Retry.withDefaults()
	site := st.sites[n]
	vm := vertexMeta{}
	// Vertex-boundary cancellation checkpoint — also the guard that keeps
	// any partial output a cancelled child kernel produced from being read.
	if err := st.checkpoint(); err != nil {
		return nil, 0, 0, vm, err
	}
	for attempt := 0; ; attempt++ {
		vm.attempts = attempt + 1
		out, outBytes, cost, err := e.apply(n, in, inStats, st)
		if err == nil && e.Faults != nil {
			if ferr := e.Faults.VertexDone(st.job, site, n.Kind, attempt); ferr != nil {
				err = fmt.Errorf("exec: vertex %s: %w", site, ferr)
			}
		}
		if err == nil {
			if e.Faults != nil {
				vm.faultDelay = e.Faults.VertexDelay(st.job, site, n.Kind)
				vm.extra += vm.faultDelay
			}
			return out, outBytes, cost, vm, nil
		}
		if !Transient(err) {
			return nil, 0, 0, vm, err
		}
		if attempt+1 >= policy.MaxAttempts {
			return nil, 0, 0, vm, fmt.Errorf("exec: vertex %s: attempts exhausted: %w", site, err)
		}
		// Re-check the lifecycle before burning a retry: a cancelled job
		// must not keep re-running a crashing vertex.
		if cerr := st.checkpoint(); cerr != nil {
			return nil, 0, 0, vm, cerr
		}
		if st.budget.Add(-1) < 0 {
			return nil, 0, 0, vm, fmt.Errorf("exec: vertex %s: job retry budget exhausted: %w", site, err)
		}
		wait := policy.Backoff(attempt)
		vm.extra += wait
		vm.retryWait += wait
		st.noteRetry(wait)
	}
}

// nodeStats assembles an operator's Stats, computing output rows exactly
// once and output bytes exactly once per invocation (operators that merely
// rearrange their input report the input's byte count instead of re-walking
// every row; outBytes < 0 requests a fresh — parallel — walk).
func nodeStats(out partitions, outBytes int64, cost, childLatency, childCumCost float64) *Stats {
	rows := out.rows()
	if outBytes < 0 {
		outBytes = parallelBytes(out, rows)
	}
	dop := len(out)
	if dop < 1 {
		dop = 1
	}
	return &Stats{
		Rows:           rows,
		Bytes:          outBytes,
		ExclusiveCost:  cost,
		CumulativeCost: childCumCost + cost,
		Latency:        childLatency + latencyShare(cost, out, rows),
		DOP:            dop,
	}
}

// latencyShare converts an operator's CPU cost into wall-clock time: the
// job waits for the *slowest* worker, so the share is cost weighted by the
// largest partition's fraction of the rows. Balanced partitions give the
// ideal cost/DOP; skewed layouts (including badly designed views, §5.3)
// straggle.
func latencyShare(cost float64, out partitions, total int64) float64 {
	dop := len(out)
	if dop <= 1 {
		return cost
	}
	if total == 0 {
		return cost / float64(dop)
	}
	maxPart := 0
	for _, p := range out {
		if len(p) > maxPart {
			maxPart = len(p)
		}
	}
	return cost * float64(maxPart) / float64(total)
}

// apply executes one operator and returns its output partitions, its
// output byte size when the operator knows it for free (-1 otherwise),
// and its exclusive simulated cost. Input sizes come from the children's
// already-recorded Stats, never from re-walking the input rows.
func (e *Executor) apply(n *plan.Node, in []partitions, inStats []*Stats, st *execState) (partitions, int64, float64, error) {
	ctx := st.ctx
	switch n.Kind {
	case plan.OpExtract:
		return e.applyExtract(n)
	case plan.OpViewScan:
		return e.applyViewScan(n, st)
	case plan.OpFilter:
		return applyFilter(ctx, n, in[0], inStats[0])
	case plan.OpProject:
		return applyProject(ctx, n, in[0], inStats[0])
	case plan.OpExchange:
		return applyExchange(ctx, n, in[0], inStats[0])
	case plan.OpHashJoin, plan.OpMergeJoin:
		return applyJoin(ctx, n, in[0], in[1], inStats[0], inStats[1])
	case plan.OpHashGbAgg:
		return applyHashAgg(ctx, n, in[0], inStats[0])
	case plan.OpStreamGbAgg:
		return applyStreamAgg(ctx, n, in[0], inStats[0])
	case plan.OpSort:
		return applySort(ctx, n, in[0], inStats[0])
	case plan.OpTop:
		return applyTop(n, in[0], inStats[0])
	case plan.OpUnionAll:
		return applyUnion(n, in, inStats)
	case plan.OpProcess:
		return applyProcess(ctx, n, in[0], inStats[0])
	case plan.OpReduce:
		return applyReduce(ctx, n, in[0], inStats[0])
	case plan.OpSpool:
		return in[0], inStats[0].Bytes, OperatorCost(n.Kind, 0, 0, 0), nil
	case plan.OpOutput:
		rows := in[0].flatten()
		st.mu.Lock()
		st.res.Outputs[n.OutputName] = rows
		st.mu.Unlock()
		return in[0], inStats[0].Bytes, OperatorCost(n.Kind, inStats[0].Rows, 0, 0), nil
	case plan.OpMaterialize:
		return e.applyMaterialize(n, in[0], inStats[0], st)
	default:
		return nil, 0, 0, fmt.Errorf("exec: unsupported operator %v", n.Kind)
	}
}

func (e *Executor) applyExtract(n *plan.Node) (partitions, int64, float64, error) {
	t, err := e.Catalog.Get(n.Table)
	if err != nil {
		return nil, 0, 0, err
	}
	if t.GUID != n.GUID {
		return nil, 0, 0, fmt.Errorf("exec: table %s has version %s, plan compiled against %s",
			n.Table, t.GUID, n.GUID)
	}
	out := make(partitions, len(t.Partitions))
	for i := range t.Partitions {
		out[i] = t.Partitions[i]
	}
	// Table metadata is cached on the table itself: recurring jobs extract
	// the same inputs over and over, and the byte walk dominated the scan.
	rows := t.NumRows()
	bytes := t.ByteSize()
	return out, bytes, OperatorCost(n.Kind, rows, 0, bytes), nil
}

func (e *Executor) applyViewScan(n *plan.Node, st *execState) (partitions, int64, float64, error) {
	// Consume (not Get): reading a view on behalf of a job verifies its
	// checksum and consults the storage fault hook, so a corrupt or
	// missing view surfaces here as a permanent storage error the job
	// frontend turns into quarantine-and-replan (or, when the store's
	// circuit breaker is open, a short-circuit the frontend turns into a
	// replan without quarantine). The job context lets a cancelled job
	// bail out of the partition-parallel decode at chunk boundaries.
	v, parts, err := e.Store.ConsumeCtx(st.ctx, n.ViewPath)
	if err != nil {
		return nil, 0, 0, err
	}
	// The copy here is shallow on purpose: only the outer partition slice
	// is duplicated, the row slices (and rows) alias the decoded view —
	// which the store's hot cache may be sharing with other consumers.
	// That is safe because the engine treats rows as immutable — operators
	// that reorder or extend rows (sort, exchange, project, process)
	// always work on freshly flattened slices or newly allocated rows,
	// never in place on their input. Concurrent consumers of one view
	// therefore share one decode without copies;
	// TestViewScanConcurrentConsumers enforces the no-mutation contract.
	// Stats and cost price the logical (row-representation) size the scan
	// materializes, not the smaller at-rest encoded footprint.
	out := make(partitions, len(parts))
	copy(out, parts)
	return out, v.LogicalBytes, OperatorCost(n.Kind, 0, v.Rows, v.LogicalBytes), nil
}

// forEachPartition runs fn over every input partition, fanning out
// through the shared worker pool when the data is large enough to
// amortize scheduling. Output order is deterministic: fn(i) writes slot i.
// Expressions and operator state are read-only during evaluation, so
// per-partition work is race-free. inRows is the caller's (already known)
// input row count, used only for the fan-out threshold.
//
// ctx is polled at partition (chunk) boundaries: once the job is
// cancelled, remaining partitions are skipped and their output slots stay
// nil. The partial result is never observed — the vertex-boundary
// checkpoint in runVertex fails the job before any parent consumes it.
func forEachPartition(ctx context.Context, in partitions, inRows int64, fn func(i int, part []data.Row) []data.Row) partitions {
	out := make(partitions, len(in))
	if len(in) < 2 || inRows < parallelRowThreshold {
		for i, part := range in {
			if ctx.Err() != nil {
				return out
			}
			out[i] = fn(i, part)
		}
		return out
	}
	parallelRange(len(in), func(i int) {
		if ctx.Err() != nil {
			return
		}
		out[i] = fn(i, in[i])
	})
	return out
}

// selPool recycles the selection buffers compiled filters fill per
// partition. The buffers hold row indexes only — they never escape the
// operator — so pooling them is safe regardless of where the kept rows
// flow.
var selPool = sync.Pool{
	New: func() any {
		s := make([]int32, 0, 1024)
		return &s
	},
}

func applyFilter(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	// Compile once per vertex. The compiled program is immutable after
	// Compile returns, so every partition worker shares it race-free; the
	// child schema supplies the kind hints for the specialized comparisons.
	prog := expr.Compile(n.Pred, n.Children[0].Schema())
	// Output bytes are summed during the gather (the selection already has
	// the kept rows in hand), replacing nodeStats' re-walk of the output.
	bytesPer := make([]int64, len(in))
	out := forEachPartition(ctx, in, inStats.Rows, func(i int, part []data.Row) []data.Row {
		if len(part) == 0 {
			return nil
		}
		selp := selPool.Get().(*[]int32)
		sel := prog.SelectInto(prog.NewCtx(), part, (*selp)[:0])
		if len(sel) == 0 {
			*selp = sel
			selPool.Put(selp)
			return nil
		}
		// The kept slice is long-lived (it may flow into outputs or
		// materialized views), so it is allocated exactly sized from the
		// selection count — the shrink-wrap contract without the
		// selectivity guess or the copy.
		kept := make([]data.Row, len(sel))
		var b int64
		for j, idx := range sel {
			r := part[idx]
			kept[j] = r
			b += r.ByteSize()
		}
		bytesPer[i] = b
		*selp = sel
		selPool.Put(selp)
		return kept
	})
	var outBytes int64
	for _, b := range bytesPer {
		outBytes += b
	}
	return out, outBytes, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}

func applyProject(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	// Compile the projection list once per vertex (shared read-only across
	// partition workers); EmitInto reports the exact output byte size, so
	// nodeStats skips its re-walk of the emitted rows.
	proj := expr.CompileProject(n.Exprs, n.Children[0].Schema())
	width := proj.Width()
	bytesPer := make([]int64, len(in))
	out := forEachPartition(ctx, in, inStats.Rows, func(i int, part []data.Row) []data.Row {
		arena := data.NewRowArenaSized(len(part) * width)
		rows := make([]data.Row, len(part))
		arena.NewRows(rows, width)
		bytesPer[i] = proj.EmitInto(proj.NewCtx(), part, rows)
		return rows
	})
	var outBytes int64
	for _, b := range bytesPer {
		outBytes += b
	}
	return out, outBytes, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}

func applyExchange(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	cost := OperatorCost(n.Kind, inStats.Rows, 0, inStats.Bytes)
	count := n.Part.Count
	if count < 1 {
		count = 1
	}
	switch n.Part.Kind {
	case plan.PartSingleton:
		return partitions{in.flatten()}, inStats.Bytes, cost, nil
	case plan.PartHash:
		cols := n.Part.Cols
		out := scatterRows(ctx, in, inStats.Rows, count, func(_, _ int, r data.Row) int {
			return int(r.Hash64(cols...) % uint64(count))
		})
		return out, inStats.Bytes, cost, nil
	case plan.PartRoundRobin:
		// A row's destination is its global scan index mod count; starts
		// turns (partition, offset) into that global index so the scatter
		// can run partition-parallel.
		starts := make([]int, len(in))
		idx := 0
		for i, part := range in {
			starts[i] = idx
			idx += len(part)
		}
		out := scatterRows(ctx, in, inStats.Rows, count, func(i, j int, _ data.Row) int {
			return (starts[i] + j) % count
		})
		return out, inStats.Bytes, cost, nil
	case plan.PartRange:
		// Parallel sort: a range exchange globally sorts on the range
		// columns (full-row tie-break for determinism) and slices into
		// equi-depth partitions. It pays sort cost on top of shuffle cost.
		keys := fullRowTieBreak(n.Part.Cols, in)
		rows := sortedFlatten(ctx, in, inStats.Rows, keys, nil)
		if nr := float64(len(rows)); nr > 1 {
			cost += nr * costPerRowSortBase * math.Log2(nr)
		}
		return sliceEquiDepth(rows, count), inStats.Bytes, cost, nil
	default:
		return in, inStats.Bytes, cost, nil
	}
}

func applySort(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	// Tie-break on the full row so sort order is a total order: a Top
	// above the sort must select the same rows whether its input was
	// recomputed or read back from a materialized view (whose physical
	// layout may legally differ).
	sortKeys := fullRowTieBreak(n.SortKeys, in)
	desc := append([]bool(nil), n.Desc...)
	rows := sortedFlatten(ctx, in, inStats.Rows, sortKeys, desc)
	return partitions{rows}, inStats.Bytes, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}

func applyTop(n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	rows := in.flatten()
	outBytes := inStats.Bytes
	if int64(len(rows)) > n.N {
		rows = rows[:n.N]
		outBytes = -1 // truncated: the survivors must be re-measured
	}
	return partitions{rows}, outBytes, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}

func applyUnion(n *plan.Node, in []partitions, inStats []*Stats) (partitions, int64, float64, error) {
	var totalParts int
	var totalRows, totalBytes int64
	for i, p := range in {
		totalParts += len(p)
		totalRows += inStats[i].Rows
		totalBytes += inStats[i].Bytes
	}
	// The output header is a fresh outer slice sized up front — it never
	// aliases any input's outer slice, so a downstream operator replacing
	// or reordering output partitions cannot corrupt a shared input.
	// (The inner partition slices are shared, like every pass-through
	// operator: rows are immutable and partition slices are never mutated
	// in place.)
	out := make(partitions, 0, totalParts)
	for _, p := range in {
		out = append(out, p...)
	}
	return out, totalBytes, OperatorCost(n.Kind, totalRows, 0, 0), nil
}

func applyProcess(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	out := forEachPartition(ctx, in, inStats.Rows, func(_ int, part []data.Row) []data.Row {
		arena := data.NewRowArenaSized(len(part) * (width(part) + 1))
		rows := make([]data.Row, len(part))
		for j, r := range part {
			rows[j] = arena.Extend(r, udoValue(r, n.UDOCodeHash))
		}
		return rows
	})
	return out, -1, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}

// width returns the column count of the first row, the emit-width hint for
// extend-shaped kernels (0 on empty input keeps the arena default-sized).
func width(rows []data.Row) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}

// udoValue is the deterministic stand-in body for user-defined operators:
// a hash of the input row mixed with the UDO code hash, so changing the
// user's code changes the output (which correctness tests rely on).
func udoValue(r data.Row, codeHash string) data.Value {
	h := r.Hash64() ^ data.String_(codeHash).Hash64()
	return data.Int(int64(h & 0x7fffffffffffffff))
}

func applyReduce(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	// Group rows, then append a deterministic per-group value derived
	// from the group key and the UDO code hash.
	rows := sortedFlatten(ctx, in, inStats.Rows, n.GroupBy, nil)
	arena := data.NewRowArenaSized(len(rows) * (width(rows) + 1))
	out := make([]data.Row, len(rows))
	var groupVal data.Value
	var prev data.Row
	for i, r := range rows {
		// Chunk-boundary cancellation poll for the serial group walk.
		if i&4095 == 0 && ctx.Err() != nil {
			break
		}
		if prev == nil || !sameKey(prev, r, n.GroupBy) {
			key := make([]data.Value, len(n.GroupBy))
			for k, g := range n.GroupBy {
				key[k] = r[g]
			}
			h := data.Row(key).Hash64() ^ data.String_(n.UDOCodeHash).Hash64()
			groupVal = data.Int(int64(h & 0x7fffffffffffffff))
			prev = r
		}
		out[i] = arena.Extend(r, groupVal)
	}
	return partitions{out}, -1, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}

func sameKey(a, b data.Row, keys []int) bool {
	for _, k := range keys {
		if !data.Equal(a[k], b[k]) {
			return false
		}
	}
	return true
}

func (e *Executor) applyMaterialize(n *plan.Node, in partitions, inStats *Stats, st *execState) (partitions, int64, float64, error) {
	// Enforce the mined physical design on the view copy.
	viewParts := enforceDesign(st.ctx, in, inStats.Rows, n.MatProps)
	// A cancel during layout enforcement leaves viewParts partial; the
	// checkpoint here keeps a half-built layout from ever reaching the
	// store. (A cancel landing after this check is handled by WriteCtx,
	// which re-checks before installing the encoded payload.)
	if err := st.checkpoint(); err != nil {
		return nil, 0, 0, err
	}
	rows := partitions(viewParts).rows()
	cost := OperatorCost(n.Kind, 0, rows, inStats.Bytes)
	v := &storage.View{
		Path:          n.MatPath,
		PreciseSig:    n.MatPreciseSig,
		NormSig:       n.MatNormSig,
		ProducerJobID: st.job,
		CreatedAt:     st.now,
		ExpiresAt:     1<<62 - 1, // runtime sets real expiry from the analyzer
		Schema:        n.Schema(),
		Props:         n.MatProps,
	}
	// Write encodes viewParts into the view's columnar at-rest payload
	// (partition-parallel) and records the payload checksum.
	created, err := e.Store.WriteCtx(st.ctx, v, viewParts)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("exec: materialize %s: %w", n.MatPath, err)
	}
	if !created {
		// Either lost the first-writer-wins race to another builder (this
		// job's build lock expired and both finished — the winner's copy
		// is byte-identical, so drop ours and let the winner publish), or
		// this is our own vertex retry after a crash that landed past the
		// write — the first attempt already published.
		return in, inStats.Bytes, cost, nil
	}
	if e.OnViewMaterialized != nil {
		e.OnViewMaterialized(v)
	}
	st.mu.Lock()
	st.res.MaterializedPaths = append(st.res.MaterializedPaths, n.MatPath)
	st.mu.Unlock()
	return in, inStats.Bytes, cost, nil
}

// enforceDesign lays rows out according to the view's physical design:
// hash or range partitioning on the design columns and per-partition sort
// order. The layout kernels are the same parallel scatter / sorted-merge
// primitives the exchange uses; the trailing per-partition sort fans out
// across partitions (each sorts a freshly built slice, never shared input).
func enforceDesign(ctx context.Context, in partitions, inRows int64, props plan.PhysicalProps) [][]data.Row {
	var parts partitions
	switch props.Part.Kind {
	case plan.PartRange:
		count := props.Part.Count
		if count < 1 {
			count = len(in)
			if count < 1 {
				count = 1
			}
		}
		keys := fullRowTieBreak(props.Part.Cols, in)
		rows := sortedFlatten(ctx, in, inRows, keys, nil)
		parts = sliceEquiDepth(rows, count)
	case plan.PartHash:
		count := props.Part.Count
		if count < 1 {
			count = len(in)
			if count < 1 {
				count = 1
			}
		}
		cols := props.Part.Cols
		parts = scatterRows(ctx, in, inRows, count, func(_, _ int, r data.Row) int {
			return int(r.Hash64(cols...) % uint64(count))
		})
	case plan.PartSingleton:
		parts = partitions{in.flatten()}
	default:
		parts = make(partitions, len(in))
		for i, p := range in {
			parts[i] = append([]data.Row(nil), p...)
		}
	}
	if len(props.Sort.Cols) > 0 {
		parallelRange(len(parts), func(i int) {
			if ctx.Err() != nil {
				return
			}
			data.SortRows(parts[i], props.Sort.Cols, props.Sort.Desc)
		})
	}
	return parts
}
