// Package exec executes physical plans over real rows while maintaining a
// simulated cost clock.
//
// Execution is faithful (operators really filter, join, aggregate, and
// shuffle rows, so correctness of computation reuse is testable end to
// end), while latency and CPU consumption are *simulated* from a cost
// model — the substitution for SCOPE's production cluster documented in
// DESIGN.md. Per-operator statistics feed the CloudViews feedback loop.
package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/plan"
	"cloudviews/internal/storage"
)

// Executor runs plans against a catalog of base tables and a view store.
type Executor struct {
	Catalog *catalog.Catalog
	Store   *storage.Store

	// OnViewMaterialized, if set, is invoked the moment a Materialize
	// operator finishes writing its view — before the rest of the job
	// runs. This is the early-materialization publication hook (§6.4):
	// the job manager reports the view while the job is still running.
	OnViewMaterialized func(v *storage.View)

	// FailAfter, if set, is consulted after each operator completes; a
	// non-nil error aborts the job. Used to inject job failures for the
	// early-materialization / checkpoint experiments.
	FailAfter func(n *plan.Node) error
}

// Result is the outcome of one job execution.
type Result struct {
	// Outputs maps sink name to the produced rows.
	Outputs map[string][]data.Row
	// NodeStats holds per-operator runtime statistics keyed by the
	// executed plan's nodes.
	NodeStats map[*plan.Node]*Stats
	// TotalCPU is the job's total simulated CPU cost (the PN-hours proxy).
	TotalCPU float64
	// Latency is the job's simulated end-to-end latency (critical path).
	Latency float64
	// MaterializedPaths lists views written during execution.
	MaterializedPaths []string
}

// partitions is the unit flowing between operators.
type partitions [][]data.Row

func (p partitions) rows() int64 {
	var n int64
	for _, part := range p {
		n += int64(len(part))
	}
	return n
}

func (p partitions) bytes() int64 {
	var n int64
	for _, part := range p {
		for _, r := range part {
			n += r.ByteSize()
		}
	}
	return n
}

func (p partitions) flatten() []data.Row {
	out := make([]data.Row, 0, p.rows())
	for _, part := range p {
		out = append(out, part...)
	}
	return out
}

type execState struct {
	res  *Result
	memo map[*plan.Node]partitions
	now  int64
	job  string
	// mu guards the Result fields that operators mutate directly (output
	// sinks, materialized paths): independent Output/Materialize nodes may
	// run concurrently under the DAG scheduler.
	mu sync.Mutex
}

// Run executes the plan rooted at root. jobID tags provenance of any views
// materialized; now is the simulated time used for view creation stamps.
//
// Independent subtrees execute concurrently on the shared worker pool
// (see schedule.go); the simulated cost accounting is unaffected. When
// FailAfter is set, execution falls back to the serial depth-first walk:
// fault injection crashes "after the Nth operator", which only means
// something under a deterministic operator completion order.
func (e *Executor) Run(root *plan.Node, jobID string, now int64) (*Result, error) {
	st := &execState{
		res: &Result{
			Outputs:   map[string][]data.Row{},
			NodeStats: map[*plan.Node]*Stats{},
		},
		memo: map[*plan.Node]partitions{},
		now:  now,
		job:  jobID,
	}
	if e.FailAfter != nil {
		if _, err := e.run(root, st); err != nil {
			return nil, err
		}
	} else if err := e.runDAG(root, st); err != nil {
		return nil, err
	}
	// Sum exclusive costs in deterministic plan order: float addition is
	// order-sensitive in the last bits, and reuse validation compares
	// TotalCPU across executions exactly.
	for _, n := range plan.Nodes(root) {
		st.res.TotalCPU += st.res.NodeStats[n].ExclusiveCost
	}
	st.res.Latency = st.res.NodeStats[root].Latency
	// Materialization completion order varies under the parallel
	// scheduler; report paths in a canonical order.
	sort.Strings(st.res.MaterializedPaths)
	return st.res, nil
}

func (e *Executor) run(n *plan.Node, st *execState) (partitions, error) {
	if out, ok := st.memo[n]; ok {
		return out, nil
	}
	childParts := make([]partitions, len(n.Children))
	var childLatency float64
	var childCumCost float64
	for i, c := range n.Children {
		p, err := e.run(c, st)
		if err != nil {
			return nil, err
		}
		childParts[i] = p
		cs := st.res.NodeStats[c]
		if cs.Latency > childLatency {
			childLatency = cs.Latency
		}
		childCumCost += cs.CumulativeCost
	}

	out, cost, err := e.apply(n, childParts, st)
	if err != nil {
		return nil, err
	}

	dop := len(out)
	if dop < 1 {
		dop = 1
	}
	s := &Stats{
		Rows:           out.rows(),
		Bytes:          out.bytes(),
		ExclusiveCost:  cost,
		CumulativeCost: childCumCost + cost,
		Latency:        childLatency + latencyShare(cost, out),
		DOP:            dop,
	}
	st.res.NodeStats[n] = s
	st.memo[n] = out

	if e.FailAfter != nil {
		if ferr := e.FailAfter(n); ferr != nil {
			return nil, ferr
		}
	}
	return out, nil
}

// latencyShare converts an operator's CPU cost into wall-clock time: the
// job waits for the *slowest* worker, so the share is cost weighted by the
// largest partition's fraction of the rows. Balanced partitions give the
// ideal cost/DOP; skewed layouts (including badly designed views, §5.3)
// straggle.
func latencyShare(cost float64, out partitions) float64 {
	dop := len(out)
	if dop <= 1 {
		return cost
	}
	total := out.rows()
	if total == 0 {
		return cost / float64(dop)
	}
	maxPart := 0
	for _, p := range out {
		if len(p) > maxPart {
			maxPart = len(p)
		}
	}
	return cost * float64(maxPart) / float64(total)
}

// apply executes one operator and returns its output partitions and its
// exclusive simulated cost.
func (e *Executor) apply(n *plan.Node, in []partitions, st *execState) (partitions, float64, error) {
	switch n.Kind {
	case plan.OpExtract:
		return e.applyExtract(n)
	case plan.OpViewScan:
		return e.applyViewScan(n)
	case plan.OpFilter:
		return applyFilter(n, in[0])
	case plan.OpProject:
		return applyProject(n, in[0])
	case plan.OpExchange:
		return applyExchange(n, in[0])
	case plan.OpHashJoin, plan.OpMergeJoin:
		return applyJoin(n, in[0], in[1])
	case plan.OpHashGbAgg:
		return applyHashAgg(n, in[0])
	case plan.OpStreamGbAgg:
		return applyStreamAgg(n, in[0])
	case plan.OpSort:
		return applySort(n, in[0])
	case plan.OpTop:
		return applyTop(n, in[0])
	case plan.OpUnionAll:
		return applyUnion(n, in)
	case plan.OpProcess:
		return applyProcess(n, in[0])
	case plan.OpReduce:
		return applyReduce(n, in[0])
	case plan.OpSpool:
		return in[0], OperatorCost(n.Kind, 0, 0, 0), nil
	case plan.OpOutput:
		rows := in[0].flatten()
		st.mu.Lock()
		st.res.Outputs[n.OutputName] = rows
		st.mu.Unlock()
		return in[0], OperatorCost(n.Kind, in[0].rows(), 0, 0), nil
	case plan.OpMaterialize:
		return e.applyMaterialize(n, in[0], st)
	default:
		return nil, 0, fmt.Errorf("exec: unsupported operator %v", n.Kind)
	}
}

func (e *Executor) applyExtract(n *plan.Node) (partitions, float64, error) {
	t, err := e.Catalog.Get(n.Table)
	if err != nil {
		return nil, 0, err
	}
	if t.GUID != n.GUID {
		return nil, 0, fmt.Errorf("exec: table %s has version %s, plan compiled against %s",
			n.Table, t.GUID, n.GUID)
	}
	out := make(partitions, len(t.Partitions))
	for i := range t.Partitions {
		out[i] = t.Partitions[i]
	}
	return out, OperatorCost(n.Kind, out.rows(), 0, out.bytes()), nil
}

func (e *Executor) applyViewScan(n *plan.Node) (partitions, float64, error) {
	v, err := e.Store.Get(n.ViewPath)
	if err != nil {
		return nil, 0, err
	}
	// The copy here is shallow on purpose: only the outer partition slice
	// is duplicated, the row slices (and rows) alias the stored view. That
	// is safe because the engine treats rows as immutable — operators that
	// reorder or extend rows (sort, exchange, project, process) always
	// work on freshly flattened slices or newly allocated rows, never in
	// place on their input. Concurrent consumers of one view therefore
	// share its partitions without copies; TestViewScanConcurrentConsumers
	// enforces the no-mutation contract.
	out := make(partitions, len(v.Partitions))
	copy(out, v.Partitions)
	return out, OperatorCost(n.Kind, 0, v.Rows, v.Bytes), nil
}

// forEachPartition runs fn over every input partition, fanning out
// through the shared worker pool when the data is large enough to
// amortize scheduling. Output order is deterministic: fn(i) writes slot i.
// Expressions and operator state are read-only during evaluation, so
// per-partition work is race-free. Partitions are claimed by atomic index,
// so the fan-out occupies at most the pool's worker budget (plus the
// calling goroutine) rather than one goroutine per partition.
func forEachPartition(in partitions, fn func(i int, part []data.Row) []data.Row) partitions {
	out := make(partitions, len(in))
	if len(in) < 2 || in.rows() < 256 {
		for i, part := range in {
			out[i] = fn(i, part)
		}
		return out
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(in) {
				return
			}
			out[i] = fn(i, in[i])
		}
	}
	var wg sync.WaitGroup
	for helpers := 0; helpers < len(in)-1; helpers++ {
		if !pool.trySpawn(&wg, work) {
			break
		}
	}
	work()
	wg.Wait()
	return out
}

func applyFilter(n *plan.Node, in partitions) (partitions, float64, error) {
	out := forEachPartition(in, func(_ int, part []data.Row) []data.Row {
		var kept []data.Row
		for _, r := range part {
			if n.Pred.Eval(r).Truth() {
				kept = append(kept, r)
			}
		}
		return kept
	})
	return out, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

func applyProject(n *plan.Node, in partitions) (partitions, float64, error) {
	out := forEachPartition(in, func(_ int, part []data.Row) []data.Row {
		rows := make([]data.Row, len(part))
		for j, r := range part {
			nr := make(data.Row, len(n.Exprs))
			for k, ex := range n.Exprs {
				nr[k] = ex.Eval(r)
			}
			rows[j] = nr
		}
		return rows
	})
	return out, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

func applyExchange(n *plan.Node, in partitions) (partitions, float64, error) {
	cost := OperatorCost(n.Kind, in.rows(), 0, in.bytes())
	switch n.Part.Kind {
	case plan.PartSingleton:
		return partitions{in.flatten()}, cost, nil
	case plan.PartHash:
		count := n.Part.Count
		if count < 1 {
			count = 1
		}
		out := make(partitions, count)
		for _, part := range in {
			for _, r := range part {
				p := int(r.Hash64(n.Part.Cols...) % uint64(count))
				out[p] = append(out[p], r)
			}
		}
		return out, cost, nil
	case plan.PartRoundRobin:
		count := n.Part.Count
		if count < 1 {
			count = 1
		}
		out := make(partitions, count)
		i := 0
		for _, part := range in {
			for _, r := range part {
				out[i%count] = append(out[i%count], r)
				i++
			}
		}
		return out, cost, nil
	case plan.PartRange:
		count := n.Part.Count
		if count < 1 {
			count = 1
		}
		// Parallel sort: a range exchange globally sorts on the range
		// columns (full-row tie-break for determinism) and slices into
		// equi-depth partitions. It pays sort cost on top of shuffle cost.
		rows := in.flatten()
		keys := append([]int(nil), n.Part.Cols...)
		if len(rows) > 0 {
			for i := range rows[0] {
				keys = append(keys, i)
			}
		}
		data.SortRows(rows, keys, nil)
		if nr := float64(len(rows)); nr > 1 {
			cost += nr * costPerRowSortBase * math.Log2(nr)
		}
		out := make(partitions, count)
		per := (len(rows) + count - 1) / count
		for i := 0; i < count; i++ {
			lo := i * per
			hi := lo + per
			if lo > len(rows) {
				lo = len(rows)
			}
			if hi > len(rows) {
				hi = len(rows)
			}
			out[i] = rows[lo:hi]
		}
		return out, cost, nil
	default:
		return in, cost, nil
	}
}

// applyJoin implements an inner equi-join. The build side is the right
// input; output rows are left ++ right, partitioned like the left input.
func applyJoin(n *plan.Node, left, right partitions) (partitions, float64, error) {
	// The build map holds every right-side row; sizing it up front avoids
	// rehash churn on large partitions.
	build := make(map[uint64][]data.Row, right.rows())
	for _, part := range right {
		for _, r := range part {
			h := r.Hash64(n.RightKeys...)
			build[h] = append(build[h], r)
		}
	}
	out := make(partitions, len(left))
	for i, part := range left {
		var rows []data.Row
		for _, l := range part {
			h := l.Hash64(n.LeftKeys...)
			for _, r := range build[h] {
				if joinKeysMatch(l, r, n.LeftKeys, n.RightKeys) {
					nr := make(data.Row, 0, len(l)+len(r))
					nr = append(nr, l...)
					nr = append(nr, r...)
					rows = append(rows, nr)
				}
			}
		}
		out[i] = rows
	}
	cost := OperatorCost(n.Kind, left.rows(), 0, 0) + float64(right.rows())*costPerRowJoinBuild
	return out, cost, nil
}

func joinKeysMatch(l, r data.Row, lk, rk []int) bool {
	for i := range lk {
		if !data.Equal(l[lk[i]], r[rk[i]]) {
			return false
		}
	}
	return true
}

type aggState struct {
	key    data.Row
	sums   []float64
	ints   []int64
	counts []int64
	mins   []data.Value
	maxs   []data.Value
	isFlt  []bool
}

func newAggState(n *plan.Node, in data.Schema, key data.Row) *aggState {
	a := &aggState{
		key:    key,
		sums:   make([]float64, len(n.Aggs)),
		ints:   make([]int64, len(n.Aggs)),
		counts: make([]int64, len(n.Aggs)),
		mins:   make([]data.Value, len(n.Aggs)),
		maxs:   make([]data.Value, len(n.Aggs)),
		isFlt:  make([]bool, len(n.Aggs)),
	}
	for i, spec := range n.Aggs {
		a.isFlt[i] = in[spec.Col].Kind == data.KindFloat
	}
	return a
}

func (a *aggState) update(n *plan.Node, r data.Row) {
	for i, spec := range n.Aggs {
		v := r[spec.Col]
		if v.IsNull() && spec.Fn != plan.AggCount {
			continue
		}
		switch spec.Fn {
		case plan.AggSum, plan.AggAvg:
			a.sums[i] += v.AsFloat()
			a.ints[i] += v.AsInt()
			a.counts[i]++
		case plan.AggCount:
			a.counts[i]++
		case plan.AggMin:
			if a.counts[i] == 0 || data.Compare(v, a.mins[i]) < 0 {
				a.mins[i] = v
			}
			a.counts[i]++
		case plan.AggMax:
			if a.counts[i] == 0 || data.Compare(v, a.maxs[i]) > 0 {
				a.maxs[i] = v
			}
			a.counts[i]++
		}
	}
}

func (a *aggState) emit(n *plan.Node) data.Row {
	out := make(data.Row, 0, len(a.key)+len(n.Aggs))
	out = append(out, a.key...)
	for i, spec := range n.Aggs {
		switch spec.Fn {
		case plan.AggSum:
			if a.isFlt[i] {
				out = append(out, data.Float(a.sums[i]))
			} else {
				out = append(out, data.Int(a.ints[i]))
			}
		case plan.AggAvg:
			if a.counts[i] == 0 {
				out = append(out, data.Null())
			} else {
				out = append(out, data.Float(a.sums[i]/float64(a.counts[i])))
			}
		case plan.AggCount:
			out = append(out, data.Int(a.counts[i]))
		case plan.AggMin:
			out = append(out, normAggValue(a.mins[i]))
		case plan.AggMax:
			out = append(out, normAggValue(a.maxs[i]))
		}
	}
	return out
}

// normAggValue maps date/bool extremes to ints per the schema derivation.
func normAggValue(v data.Value) data.Value {
	switch v.K {
	case data.KindDate, data.KindBool:
		return data.Int(v.I)
	default:
		return v
	}
}

func applyHashAgg(n *plan.Node, in partitions) (partitions, float64, error) {
	inSchema := n.Children[0].Schema()
	// Size the group map from the input row count, discounted for grouping:
	// far fewer groups than rows is the norm, but a fraction of the input
	// is a much better starting size than an empty map.
	groups := make(map[uint64][]*aggState, in.rows()/8+16)
	for _, part := range in {
		for _, r := range part {
			h := r.Hash64(n.GroupBy...)
			var st *aggState
			for _, cand := range groups[h] {
				if keyEqual(cand.key, r, n.GroupBy) {
					st = cand
					break
				}
			}
			if st == nil {
				key := make(data.Row, len(n.GroupBy))
				for i, g := range n.GroupBy {
					key[i] = r[g]
				}
				st = newAggState(n, inSchema, key)
				groups[h] = append(groups[h], st)
			}
			st.update(n, r)
		}
	}
	count := len(in)
	if count < 1 {
		count = 1
	}
	out := make(partitions, count)
	outKeys := make([]int, len(n.GroupBy))
	for i := range outKeys {
		outKeys[i] = i
	}
	for _, bucket := range groups {
		for _, st := range bucket {
			r := st.emit(n)
			p := 0
			if len(outKeys) > 0 {
				p = int(r.Hash64(outKeys...) % uint64(count))
			}
			out[p] = append(out[p], r)
		}
	}
	// Map iteration order is random; emit each partition in group-key
	// order so execution is deterministic (downstream Sort/Top tie-breaks
	// must not depend on map order — results would vary run to run).
	for _, part := range out {
		data.SortRows(part, outKeys, nil)
	}
	return out, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

func keyEqual(key data.Row, r data.Row, groupBy []int) bool {
	for i, g := range groupBy {
		if !data.Equal(key[i], r[g]) {
			return false
		}
	}
	return true
}

func applyStreamAgg(n *plan.Node, in partitions) (partitions, float64, error) {
	rows := in.flatten()
	data.SortRows(rows, n.GroupBy, nil)
	inSchema := n.Children[0].Schema()
	var out []data.Row
	var cur *aggState
	for _, r := range rows {
		if cur == nil || !keyEqual(cur.key, r, n.GroupBy) {
			if cur != nil {
				out = append(out, cur.emit(n))
			}
			key := make(data.Row, len(n.GroupBy))
			for i, g := range n.GroupBy {
				key[i] = r[g]
			}
			cur = newAggState(n, inSchema, key)
		}
		cur.update(n, r)
	}
	if cur != nil {
		out = append(out, cur.emit(n))
	}
	return partitions{out}, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

func applySort(n *plan.Node, in partitions) (partitions, float64, error) {
	rows := in.flatten()
	// Tie-break on the full row so sort order is a total order: a Top
	// above the sort must select the same rows whether its input was
	// recomputed or read back from a materialized view (whose physical
	// layout may legally differ).
	allCols := make([]int, 0)
	if len(rows) > 0 {
		for i := range rows[0] {
			allCols = append(allCols, i)
		}
	}
	sortKeys := append(append([]int(nil), n.SortKeys...), allCols...)
	desc := append([]bool(nil), n.Desc...)
	data.SortRows(rows, sortKeys, desc)
	return partitions{rows}, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

func applyTop(n *plan.Node, in partitions) (partitions, float64, error) {
	rows := in.flatten()
	if int64(len(rows)) > n.N {
		rows = rows[:n.N]
	}
	return partitions{rows}, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

func applyUnion(n *plan.Node, in []partitions) (partitions, float64, error) {
	var out partitions
	var total int64
	for _, p := range in {
		out = append(out, p...)
		total += p.rows()
	}
	return out, OperatorCost(n.Kind, total, 0, 0), nil
}

func applyProcess(n *plan.Node, in partitions) (partitions, float64, error) {
	out := forEachPartition(in, func(_ int, part []data.Row) []data.Row {
		rows := make([]data.Row, len(part))
		for j, r := range part {
			nr := make(data.Row, 0, len(r)+1)
			nr = append(nr, r...)
			nr = append(nr, udoValue(r, n.UDOCodeHash))
			rows[j] = nr
		}
		return rows
	})
	return out, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

// udoValue is the deterministic stand-in body for user-defined operators:
// a hash of the input row mixed with the UDO code hash, so changing the
// user's code changes the output (which correctness tests rely on).
func udoValue(r data.Row, codeHash string) data.Value {
	h := r.Hash64() ^ data.String_(codeHash).Hash64()
	return data.Int(int64(h & 0x7fffffffffffffff))
}

func applyReduce(n *plan.Node, in partitions) (partitions, float64, error) {
	// Group rows, then append a deterministic per-group value derived
	// from the group key and the UDO code hash.
	rows := in.flatten()
	data.SortRows(rows, n.GroupBy, nil)
	out := make([]data.Row, len(rows))
	var groupVal data.Value
	var prev data.Row
	for i, r := range rows {
		if prev == nil || !sameKey(prev, r, n.GroupBy) {
			key := make([]data.Value, len(n.GroupBy))
			for k, g := range n.GroupBy {
				key[k] = r[g]
			}
			h := data.Row(key).Hash64() ^ data.String_(n.UDOCodeHash).Hash64()
			groupVal = data.Int(int64(h & 0x7fffffffffffffff))
			prev = r
		}
		nr := make(data.Row, 0, len(r)+1)
		nr = append(nr, r...)
		nr = append(nr, groupVal)
		out[i] = nr
	}
	return partitions{out}, OperatorCost(n.Kind, in.rows(), 0, 0), nil
}

func sameKey(a, b data.Row, keys []int) bool {
	for _, k := range keys {
		if !data.Equal(a[k], b[k]) {
			return false
		}
	}
	return true
}

func (e *Executor) applyMaterialize(n *plan.Node, in partitions, st *execState) (partitions, float64, error) {
	// Enforce the mined physical design on the view copy.
	viewParts := enforceDesign(in, n.MatProps)
	var rows int64
	for _, p := range viewParts {
		rows += int64(len(p))
	}
	v := &storage.View{
		Path:          n.MatPath,
		PreciseSig:    n.MatPreciseSig,
		NormSig:       n.MatNormSig,
		ProducerJobID: st.job,
		CreatedAt:     st.now,
		ExpiresAt:     1<<62 - 1, // runtime sets real expiry from the analyzer
		Schema:        n.Schema(),
		Props:         n.MatProps,
		Partitions:    viewParts,
	}
	created, err := e.Store.Write(v)
	if err != nil {
		return nil, 0, fmt.Errorf("exec: materialize %s: %w", n.MatPath, err)
	}
	if !created {
		// Lost the first-writer-wins race to another builder (this job's
		// build lock expired and both finished): the winner's copy is
		// byte-identical, so drop ours and let the winner publish.
		return in, OperatorCost(n.Kind, 0, rows, in.bytes()), nil
	}
	if e.OnViewMaterialized != nil {
		e.OnViewMaterialized(v)
	}
	st.mu.Lock()
	st.res.MaterializedPaths = append(st.res.MaterializedPaths, n.MatPath)
	st.mu.Unlock()
	return in, OperatorCost(n.Kind, 0, rows, in.bytes()), nil
}

// enforceDesign lays rows out according to the view's physical design:
// hash or range partitioning on the design columns and per-partition sort
// order.
func enforceDesign(in partitions, props plan.PhysicalProps) [][]data.Row {
	var parts partitions
	switch props.Part.Kind {
	case plan.PartRange:
		count := props.Part.Count
		if count < 1 {
			count = len(in)
			if count < 1 {
				count = 1
			}
		}
		rows := in.flatten()
		keys := append([]int(nil), props.Part.Cols...)
		if len(rows) > 0 {
			for i := range rows[0] {
				keys = append(keys, i)
			}
		}
		data.SortRows(rows, keys, nil)
		parts = make(partitions, count)
		per := (len(rows) + count - 1) / count
		for i := 0; i < count; i++ {
			lo, hi := i*per, (i+1)*per
			if lo > len(rows) {
				lo = len(rows)
			}
			if hi > len(rows) {
				hi = len(rows)
			}
			parts[i] = rows[lo:hi]
		}
	case plan.PartHash:
		count := props.Part.Count
		if count < 1 {
			count = len(in)
			if count < 1 {
				count = 1
			}
		}
		parts = make(partitions, count)
		for _, p := range in {
			for _, r := range p {
				i := int(r.Hash64(props.Part.Cols...) % uint64(count))
				parts[i] = append(parts[i], r)
			}
		}
	case plan.PartSingleton:
		parts = partitions{in.flatten()}
	default:
		parts = make(partitions, len(in))
		for i, p := range in {
			parts[i] = append([]data.Row(nil), p...)
		}
	}
	if len(props.Sort.Cols) > 0 {
		for _, p := range parts {
			data.SortRows(p, props.Sort.Cols, props.Sort.Desc)
		}
	}
	return parts
}
