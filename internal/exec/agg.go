package exec

import (
	"context"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

// agg.go implements the partition-parallel hash aggregate. Each input
// partition is pre-aggregated into a local group table, and the partials
// are merged into a global table in partition-index order — a fixed merge
// order, so the result is a pure function of the input regardless of which
// pool worker ran which partition. Group state is columnar: one strided
// slice per accumulator kind instead of a 6-slice allocation per group,
// and group keys live in a pooled scratch arena (their values are copied
// into output rows at emit, so the keys never escape the operator).

// aggTable is a group-by accumulator table. Groups are identified by dense
// int32 ids in first-encounter order; per-group accumulator i lives at
// offset id*nAggs+i of the strided slices. Lookup goes through an
// open-addressed slot table keyed by the (already murmur-finalized) group
// hash — linear probing on (hash & mask) with equal-hash entries resolved
// by key comparison, which skips the re-hash and bucket machinery a Go map
// would pay on every row.
type aggTable struct {
	n     *plan.Node
	nAggs int
	isFlt []bool // per agg spec: float-typed input column

	// fastCol >= 0 selects the single-int-like-column path: groups are
	// found via intKeyHash probes, and the canonical row hash — needed
	// only for output partitioning — is computed once per group instead
	// of once per input row.
	fastCol int

	keys       []data.Row // group key rows, scratch-arena allocated
	hashes     []uint64   // canonical group-key hash, for output partitioning
	slotHashes []uint64   // probe hash per group (== hashes off the fast path)

	// Strided accumulators; slices a plan's agg specs never read stay nil.
	sums   []float64
	ints   []int64
	counts []int64
	mins   []data.Value
	maxs   []data.Value

	slots []int32 // open-addressed index: groupID+1, 0 = empty
	mask  uint64

	arena *data.RowArena // scratch arena owning the key rows
}

func newAggTable(n *plan.Node, inSchema data.Schema, hint int) *aggTable {
	if hint < 4 {
		hint = 4
	}
	size := nextPow2(2 * hint)
	t := &aggTable{
		n:          n,
		nAggs:      len(n.Aggs),
		isFlt:      make([]bool, len(n.Aggs)),
		fastCol:    -1,
		keys:       make([]data.Row, 0, hint),
		hashes:     make([]uint64, 0, hint),
		slotHashes: make([]uint64, 0, hint),
		counts:     make([]int64, 0, hint*len(n.Aggs)),
		slots:      make([]int32, size),
		mask:       uint64(size - 1),
		arena:      data.NewScratchRowArena(),
	}
	if len(n.GroupBy) == 1 && intLikeKind(inSchema[n.GroupBy[0]].Kind) {
		t.fastCol = n.GroupBy[0]
	}
	var needSum, needMin, needMax bool
	for i, spec := range n.Aggs {
		t.isFlt[i] = inSchema[spec.Col].Kind == data.KindFloat
		switch spec.Fn {
		case plan.AggSum, plan.AggAvg:
			needSum = true
		case plan.AggMin:
			needMin = true
		case plan.AggMax:
			needMax = true
		}
	}
	if needSum {
		t.sums = make([]float64, 0, hint*len(n.Aggs))
		t.ints = make([]int64, 0, hint*len(n.Aggs))
	}
	if needMin {
		t.mins = make([]data.Value, 0, hint*len(n.Aggs))
	}
	if needMax {
		t.maxs = make([]data.Value, 0, hint*len(n.Aggs))
	}
	return t
}

// growSlots doubles the slot table and re-places every group. Placement
// depends only on the (deterministic) group creation order, never on
// scheduling.
func (t *aggTable) growSlots() {
	size := len(t.slots) * 2
	slots := make([]int32, size)
	mask := uint64(size - 1)
	for id, h := range t.slotHashes {
		pos := h & mask
		for slots[pos] != 0 {
			pos = (pos + 1) & mask
		}
		slots[pos] = int32(id) + 1
	}
	t.slots, t.mask = slots, mask
}

// release returns the key arena's blocks to the pool. Call only after the
// table's keys are dead (post-emit, post-merge).
func (t *aggTable) release() { t.arena.Release() }

// addGroup appends a group with canonical hash h and probe hash slotH.
func (t *aggTable) addGroup(h, slotH uint64, key data.Row) int32 {
	id := int32(len(t.keys))
	t.keys = append(t.keys, key)
	t.hashes = append(t.hashes, h)
	t.slotHashes = append(t.slotHashes, slotH)
	for i := 0; i < t.nAggs; i++ {
		t.counts = append(t.counts, 0)
	}
	if t.sums != nil {
		for i := 0; i < t.nAggs; i++ {
			t.sums = append(t.sums, 0)
			t.ints = append(t.ints, 0)
		}
	}
	if t.mins != nil {
		for i := 0; i < t.nAggs; i++ {
			t.mins = append(t.mins, data.Value{})
		}
	}
	if t.maxs != nil {
		for i := 0; i < t.nAggs; i++ {
			t.maxs = append(t.maxs, data.Value{})
		}
	}
	return id
}

// groupForRow finds or creates the group for input row r, comparing the
// GroupBy columns against candidate keys along the probe sequence.
func (t *aggTable) groupForRow(h uint64, r data.Row) int32 {
	pos := h & t.mask
	for {
		c := t.slots[pos]
		if c == 0 {
			id := t.addGroupFromRow(h, r)
			t.slots[pos] = id + 1
			if len(t.keys)*4 > len(t.slots)*3 {
				t.growSlots()
			}
			return id
		}
		if id := c - 1; t.slotHashes[id] == h && keyEqual(t.keys[id], r, t.n.GroupBy) {
			return id
		}
		pos = (pos + 1) & t.mask
	}
}

// groupForIntRow is groupForRow for the single-int-like-key layout: probes
// by intKeyHash and compares the key by (kind, payload) identity, which is
// exactly data.Equal for int-like same-column values. The canonical hash
// is computed only when the group is first created.
func (t *aggTable) groupForIntRow(r data.Row) int32 {
	v := r[t.fastCol]
	h := intKeyHash(v)
	pos := h & t.mask
	for {
		c := t.slots[pos]
		if c == 0 {
			key := t.arena.NewRow(1)
			key[0] = v
			id := t.addGroup(r.Hash64(t.n.GroupBy...), h, key)
			t.slots[pos] = id + 1
			if len(t.keys)*4 > len(t.slots)*3 {
				t.growSlots()
			}
			return id
		}
		if id := c - 1; t.slotHashes[id] == h {
			if k := t.keys[id][0]; k.K == v.K && k.I == v.I {
				return id
			}
		}
		pos = (pos + 1) & t.mask
	}
}

func (t *aggTable) addGroupFromRow(h uint64, r data.Row) int32 {
	key := t.arena.NewRow(len(t.n.GroupBy))
	for i, g := range t.n.GroupBy {
		key[i] = r[g]
	}
	return t.addGroup(h, h, key)
}

// groupForKey finds or creates the group for an already-materialized key
// row (the merge path, probed by canonical hash). The key is copied into
// this table's arena on create, so the donor table can be released
// independently.
func (t *aggTable) groupForKey(h uint64, key data.Row) int32 {
	pos := h & t.mask
	for {
		c := t.slots[pos]
		if c == 0 {
			id := t.addGroup(h, h, t.arena.NewRow(len(key)))
			copy(t.keys[id], key)
			t.slots[pos] = id + 1
			if len(t.keys)*4 > len(t.slots)*3 {
				t.growSlots()
			}
			return id
		}
		if id := c - 1; t.slotHashes[id] == h && keyRowsEqual(t.keys[id], key) {
			return id
		}
		pos = (pos + 1) & t.mask
	}
}

func keyRowsEqual(a, b data.Row) bool {
	for i := range a {
		if !data.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// update folds input row r into group id, with the exact semantics of the
// old per-group aggState.update (nulls skipped except under COUNT; MIN/MAX
// replace on strict inequality only, keeping the first-encountered value
// among Compare-equal candidates).
func (t *aggTable) update(id int32, r data.Row) {
	base := int(id) * t.nAggs
	for i, spec := range t.n.Aggs {
		v := r[spec.Col]
		if v.IsNull() && spec.Fn != plan.AggCount {
			continue
		}
		o := base + i
		switch spec.Fn {
		case plan.AggSum, plan.AggAvg:
			t.sums[o] += v.AsFloat()
			t.ints[o] += v.AsInt()
			t.counts[o]++
		case plan.AggCount:
			t.counts[o]++
		case plan.AggMin:
			if t.counts[o] == 0 || data.Compare(v, t.mins[o]) < 0 {
				t.mins[o] = v
			}
			t.counts[o]++
		case plan.AggMax:
			if t.counts[o] == 0 || data.Compare(v, t.maxs[o]) > 0 {
				t.maxs[o] = v
			}
			t.counts[o]++
		}
	}
}

// mergeFrom folds a partial table into t. Partial groups are visited in
// their creation order (= that partition's scan order), and callers merge
// partitions in index order, so the global first-encounter order — which
// picks the byte-level representative key for Compare-equal values — is
// the same partition-major order the serial scan produced. MIN/MAX merge
// keeps t's value on Compare-ties, matching sequential strict-inequality
// replacement; SUM/AVG partial sums are combined in partition order (see
// DESIGN.md §9 on float reassociation).
func (t *aggTable) mergeFrom(o *aggTable) {
	for og := range o.keys {
		id := t.groupForKey(o.hashes[og], o.keys[og])
		ob := og * o.nAggs
		base := int(id) * t.nAggs
		for i, spec := range t.n.Aggs {
			po, to := ob+i, base+i
			switch spec.Fn {
			case plan.AggSum, plan.AggAvg:
				t.sums[to] += o.sums[po]
				t.ints[to] += o.ints[po]
				t.counts[to] += o.counts[po]
			case plan.AggCount:
				t.counts[to] += o.counts[po]
			case plan.AggMin:
				if o.counts[po] > 0 {
					if t.counts[to] == 0 || data.Compare(o.mins[po], t.mins[to]) < 0 {
						t.mins[to] = o.mins[po]
					}
					t.counts[to] += o.counts[po]
				}
			case plan.AggMax:
				if o.counts[po] > 0 {
					if t.counts[to] == 0 || data.Compare(o.maxs[po], t.maxs[to]) > 0 {
						t.maxs[to] = o.maxs[po]
					}
					t.counts[to] += o.counts[po]
				}
			}
		}
	}
}

// emit renders group id as an output row (key columns then aggregates)
// allocated from the emit arena.
func (t *aggTable) emit(id int32, arena *data.RowArena) data.Row {
	key := t.keys[id]
	out := arena.NewRow(len(key) + t.nAggs)
	copy(out, key)
	base := int(id) * t.nAggs
	for i, spec := range t.n.Aggs {
		o := base + i
		var v data.Value
		switch spec.Fn {
		case plan.AggSum:
			if t.isFlt[i] {
				v = data.Float(t.sums[o])
			} else {
				v = data.Int(t.ints[o])
			}
		case plan.AggAvg:
			if t.counts[o] == 0 {
				v = data.Null()
			} else {
				v = data.Float(t.sums[o] / float64(t.counts[o]))
			}
		case plan.AggCount:
			v = data.Int(t.counts[o])
		case plan.AggMin:
			v = normAggValue(t.mins[o])
		case plan.AggMax:
			v = normAggValue(t.maxs[o])
		}
		out[len(key)+i] = v
	}
	return out
}

// normAggValue maps date/bool extremes to ints per the schema derivation.
func normAggValue(v data.Value) data.Value {
	switch v.K {
	case data.KindDate, data.KindBool:
		return data.Int(v.I)
	default:
		return v
	}
}

func keyEqual(key data.Row, r data.Row, groupBy []int) bool {
	for i, g := range groupBy {
		if !data.Equal(key[i], r[g]) {
			return false
		}
	}
	return true
}

func applyHashAgg(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	inSchema := n.Children[0].Schema()
	scan := func(t *aggTable, part []data.Row) {
		// Chunk-boundary cancellation poll: a cancelled job leaves the
		// table partial; the vertex checkpoint discards it.
		if ctx.Err() != nil {
			return
		}
		if t.fastCol >= 0 {
			for _, r := range part {
				t.update(t.groupForIntRow(r), r)
			}
		} else {
			for _, r := range part {
				t.update(t.groupForRow(r.Hash64(n.GroupBy...), r), r)
			}
		}
	}
	var global *aggTable
	if inStats.Rows < parallelRowThreshold || len(in) == 1 {
		// Serial single-pass build over the partition-major scan order.
		global = newAggTable(n, inSchema, int(inStats.Rows/8)+16)
		for _, part := range in {
			scan(global, part)
		}
	} else {
		// Parallel pre-aggregation, then a deterministic partition-order
		// merge into a fresh global table pre-sized for the full input.
		// Merging partition 0 first reproduces the serial first-encounter
		// group order, and folding each partial's sums into zeroed global
		// accumulators adds exactly the values the reuse-partial-0 scheme
		// produced (0 + x == x in IEEE arithmetic for every x).
		partials := make([]*aggTable, len(in))
		parallelRange(len(in), func(i int) {
			t := newAggTable(n, inSchema, len(in[i])/8+16)
			scan(t, in[i])
			partials[i] = t
		})
		global = newAggTable(n, inSchema, int(inStats.Rows/8)+16)
		for _, p := range partials {
			global.mergeFrom(p)
			p.release()
		}
	}

	count := len(in)
	if count < 1 {
		count = 1
	}
	out := make(partitions, count)
	outKeys := make([]int, len(n.GroupBy))
	for i := range outKeys {
		outKeys[i] = i
	}
	// The emitted row starts with the key columns, so its hash over outKeys
	// equals the cached group-key hash — no rehash; a counting pass sizes
	// each output partition exactly before any row is emitted.
	targets := make([]int32, len(global.keys))
	sizes := make([]int64, count)
	if len(outKeys) > 0 {
		for id, h := range global.hashes {
			p := int32(h % uint64(count))
			targets[id] = p
			sizes[p]++
		}
	} else {
		sizes[0] = int64(len(global.keys))
	}
	for p := range out {
		if sizes[p] > 0 {
			out[p] = make([]data.Row, 0, sizes[p])
		}
	}
	emitArena := data.NewRowArenaSized(len(global.keys) * (len(n.GroupBy) + global.nAggs))
	for id := range global.keys {
		p := targets[id]
		out[p] = append(out[p], global.emit(int32(id), emitArena))
	}
	global.release()
	// Emit each partition in group-key order so execution is deterministic
	// (distinct groups always differ on some key column, so the order is a
	// strict total order independent of emit order).
	parallelRange(len(out), func(i int) {
		data.SortRows(out[i], outKeys, nil)
	})
	return out, -1, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}

func applyStreamAgg(ctx context.Context, n *plan.Node, in partitions, inStats *Stats) (partitions, int64, float64, error) {
	rows := sortedFlatten(ctx, in, inStats.Rows, n.GroupBy, nil)
	inSchema := n.Children[0].Schema()
	t := newAggTable(n, inSchema, 16)
	cur := int32(-1)
	for _, r := range rows {
		if cur < 0 || !keyEqual(t.keys[cur], r, n.GroupBy) {
			// Input is sorted, so groups are contiguous runs: append-only,
			// no hash chains needed (hash 0 is never consulted).
			cur = t.addGroupFromRow(0, r)
		}
		t.update(cur, r)
	}
	arena := data.NewRowArenaSized(len(t.keys) * (len(n.GroupBy) + t.nAggs))
	out := make([]data.Row, len(t.keys))
	for id := range t.keys {
		out[id] = t.emit(int32(id), arena)
	}
	t.release()
	return partitions{out}, -1, OperatorCost(n.Kind, inStats.Rows, 0, 0), nil
}
