package exec

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

func salesSchema() data.Schema {
	return data.Schema{
		{Name: "item", Kind: data.KindInt},
		{Name: "store", Kind: data.KindInt},
		{Name: "qty", Kind: data.KindInt},
		{Name: "price", Kind: data.KindFloat},
	}
}

func itemSchema() data.Schema {
	return data.Schema{
		{Name: "id", Kind: data.KindInt},
		{Name: "brand", Kind: data.KindString},
	}
}

// env builds an executor with a small deterministic sales/item catalog.
func env(t testing.TB) *Executor {
	t.Helper()
	cat := catalog.New()
	sales := data.NewTable("sales", "sales-v1", salesSchema(), 4)
	rr := 0
	for i := 0; i < 200; i++ {
		sales.AppendHash(data.Row{
			data.Int(int64(i % 20)),
			data.Int(int64(i % 5)),
			data.Int(int64(1 + i%3)),
			data.Float(float64(i%10) + 0.5),
		}, []int{0}, &rr)
	}
	items := data.NewTable("items", "items-v1", itemSchema(), 2)
	for i := 0; i < 20; i++ {
		items.AppendHash(data.Row{data.Int(int64(i)), data.String_("brand_" + string(rune('a'+i%4)))}, []int{0}, &rr)
	}
	cat.Register(sales)
	cat.Register(items)
	return &Executor{Catalog: cat, Store: storage.NewStore()}
}

func TestExtractAndGUIDMismatch(t *testing.T) {
	e := env(t)
	p := plan.Scan("sales", "sales-v1", salesSchema()).Output("o")
	res, err := e.Run(p, "j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["o"]) != 200 {
		t.Errorf("scan output %d rows, want 200", len(res.Outputs["o"]))
	}
	// Plan compiled against stale GUID must fail.
	stale := plan.Scan("sales", "sales-v0", salesSchema()).Output("o")
	if _, err := e.Run(stale, "j2", 0); err == nil {
		t.Error("stale GUID should fail")
	}
	// Unknown table fails.
	missing := plan.Scan("nope", "g", salesSchema()).Output("o")
	if _, err := e.Run(missing, "j3", 0); err == nil {
		t.Error("missing table should fail")
	}
}

func TestFilterProject(t *testing.T) {
	e := env(t)
	p := plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(expr.Eq(expr.C(1, "store"), expr.Lit(data.Int(2)))).
		Project([]string{"item", "rev"}, []expr.Expr{
			expr.C(0, "item"),
			expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
		}).
		Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Outputs["o"]
	if len(rows) != 40 { // store = i%5 == 2 -> 40 of 200
		t.Errorf("filter kept %d rows, want 40", len(rows))
	}
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("projected row has %d cols", len(r))
		}
		if r[1].K != data.KindFloat {
			t.Errorf("rev kind = %v", r[1].K)
		}
	}
}

func TestExchangeRepartitions(t *testing.T) {
	e := env(t)
	p := plan.Scan("sales", "sales-v1", salesSchema()).ShuffleHash([]int{1}, 7).Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeStats[p.Children[0]].DOP != 7 {
		t.Errorf("exchange DOP = %d, want 7", res.NodeStats[p.Children[0]].DOP)
	}
	if len(res.Outputs["o"]) != 200 {
		t.Error("exchange lost rows")
	}
	// Gather to one partition.
	g := plan.Scan("sales", "sales-v1", salesSchema()).Gather().Output("o")
	res, err = e.Run(g, "j2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeStats[g.Children[0]].DOP != 1 {
		t.Error("gather should have DOP 1")
	}
	// Round robin balances.
	rrp := plan.Scan("sales", "sales-v1", salesSchema()).
		Exchange(plan.Partitioning{Kind: plan.PartRoundRobin, Count: 4}).Output("o")
	res, err = e.Run(rrp, "j3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["o"]) != 200 {
		t.Error("round robin lost rows")
	}
}

func TestHashJoin(t *testing.T) {
	e := env(t)
	p := plan.Scan("sales", "sales-v1", salesSchema()).
		HashJoin(plan.Scan("items", "items-v1", itemSchema()), []int{0}, []int{0}).
		Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Outputs["o"]
	if len(rows) != 200 { // every sale matches exactly one item
		t.Errorf("join produced %d rows, want 200", len(rows))
	}
	for _, r := range rows {
		if len(r) != 6 {
			t.Fatalf("join row width %d, want 6", len(r))
		}
		if !data.Equal(r[0], r[4]) {
			t.Errorf("join key mismatch: %v", r)
		}
	}
}

func TestJoinHashCollisionSafety(t *testing.T) {
	// Rows whose keys differ must not join even if their hashes collide;
	// verify by joining on string keys with equal hash not possible to
	// force, so instead verify no cross-key pairs exist in output.
	e := env(t)
	p := plan.Scan("items", "items-v1", itemSchema()).
		HashJoin(plan.Scan("items", "items-v1", itemSchema()), []int{0}, []int{0}).
		Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["o"]) != 20 {
		t.Errorf("self join rows = %d, want 20", len(res.Outputs["o"]))
	}
}

func TestHashAggMatchesStreamAgg(t *testing.T) {
	e := env(t)
	aggs := []plan.AggSpec{
		{Fn: plan.AggSum, Col: 2},
		{Fn: plan.AggCount, Col: 2},
		{Fn: plan.AggMin, Col: 3},
		{Fn: plan.AggMax, Col: 3},
		{Fn: plan.AggAvg, Col: 3},
	}
	h := plan.Scan("sales", "sales-v1", salesSchema()).HashAgg([]int{0}, aggs).Output("o")
	s := plan.Scan("sales", "sales-v1", salesSchema()).StreamAgg([]int{0}, aggs).Output("o")
	rh, err := e.Run(h, "j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.Run(s, "j2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !data.RowsEqual(rh.Outputs["o"], rs.Outputs["o"]) {
		t.Error("hash agg and stream agg disagree")
	}
	if len(rh.Outputs["o"]) != 20 {
		t.Errorf("agg groups = %d, want 20", len(rh.Outputs["o"]))
	}
}

func TestAggNullHandling(t *testing.T) {
	cat := catalog.New()
	tab := data.NewTable("t", "g", data.Schema{
		{Name: "k", Kind: data.KindInt}, {Name: "v", Kind: data.KindInt},
	}, 1)
	rr := 0
	tab.AppendHash(data.Row{data.Int(1), data.Null()}, nil, &rr)
	tab.AppendHash(data.Row{data.Int(1), data.Int(10)}, nil, &rr)
	cat.Register(tab)
	e := &Executor{Catalog: cat, Store: storage.NewStore()}
	p := plan.Scan("t", "g", tab.Schema).HashAgg([]int{0}, []plan.AggSpec{
		{Fn: plan.AggSum, Col: 1}, {Fn: plan.AggCount, Col: 1}, {Fn: plan.AggMin, Col: 1},
	}).Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Outputs["o"][0]
	if r[1].AsInt() != 10 {
		t.Errorf("sum skipping null = %v", r[1])
	}
	if r[2].AsInt() != 2 { // count(*) semantics: counts rows
		t.Errorf("count = %v", r[2])
	}
	if r[3].AsInt() != 10 {
		t.Errorf("min skipping null = %v", r[3])
	}
}

func TestSortTopUnion(t *testing.T) {
	e := env(t)
	p := plan.Scan("sales", "sales-v1", salesSchema()).
		Sort([]int{3}, []bool{true}).
		Top(5).
		Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Outputs["o"]
	if len(rows) != 5 {
		t.Fatalf("top kept %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][3].AsFloat() < rows[i][3].AsFloat() {
			t.Error("not sorted descending")
		}
	}
	u := plan.Scan("items", "items-v1", itemSchema()).
		UnionAll(plan.Scan("items", "items-v1", itemSchema())).
		Output("o")
	res, err = e.Run(u, "j2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["o"]) != 40 {
		t.Errorf("union rows = %d, want 40", len(res.Outputs["o"]))
	}
}

func TestProcessAndReduceDeterminism(t *testing.T) {
	e := env(t)
	mk := func(hash string) *plan.Node {
		return plan.Scan("items", "items-v1", itemSchema()).Process("scrub", hash).Output("o")
	}
	r1, err := e.Run(mk("v1"), "j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(mk("v1"), "j2", 0)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := e.Run(mk("v2"), "j3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !data.RowsEqual(r1.Outputs["o"], r2.Outputs["o"]) {
		t.Error("same UDO code must be deterministic")
	}
	if data.RowsEqual(r1.Outputs["o"], r3.Outputs["o"]) {
		t.Error("different UDO code must change output")
	}
	// Reduce appends the same value to all rows of a group.
	red := plan.Scan("items", "items-v1", itemSchema()).Reduce("agg", "h", []int{1}).Output("o")
	rr, err := e.Run(red, "j4", 0)
	if err != nil {
		t.Fatal(err)
	}
	byBrand := map[string]data.Value{}
	for _, r := range rr.Outputs["o"] {
		brand := r[1].S
		if prev, ok := byBrand[brand]; ok && !data.Equal(prev, r[2]) {
			t.Errorf("group %s got different reduce values", brand)
		}
		byBrand[brand] = r[2]
	}
}

func TestSpoolSharedSubtreeRunsOnce(t *testing.T) {
	e := env(t)
	shared := plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1)))).
		Spool()
	top := shared.HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}}).
		HashJoin(shared, []int{0}, []int{0}).
		Output("o")
	res, err := e.Run(top, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The filter node must appear once in stats (executed once).
	filterCount := 0
	for n := range res.NodeStats {
		if n.Kind == plan.OpFilter {
			filterCount++
		}
	}
	if filterCount != 1 {
		t.Errorf("filter executed %d times, want 1", filterCount)
	}
	if len(res.Outputs["o"]) == 0 {
		t.Error("empty join output")
	}
}

func TestMaterializeAndViewScanEquivalence(t *testing.T) {
	e := env(t)
	base := plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1)))).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}})
	sig := signature.Of(base)
	props := plan.PhysicalProps{
		Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0}, Count: 3},
		Sort: plan.SortOrder{Cols: []int{0}},
	}
	path := storage.PathFor(sig.Precise, "builder")

	// Builder job: materialize + output.
	builder := base.Materialize(path, sig.Precise, sig.Normalized, props).Output("o")
	var published *storage.View
	e.OnViewMaterialized = func(v *storage.View) { published = v }
	resB, err := e.Run(builder, "builder", 5)
	if err != nil {
		t.Fatal(err)
	}
	if published == nil || published.Path != path {
		t.Fatal("early materialization hook not fired")
	}
	if published.ProducerJobID != "builder" || published.CreatedAt != 5 {
		t.Errorf("provenance wrong: %+v", published)
	}
	if len(resB.MaterializedPaths) != 1 {
		t.Errorf("MaterializedPaths = %v", resB.MaterializedPaths)
	}
	// Physical design enforced (decode the at-rest payload to check).
	v, parts, err := e.Store.Consume(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.PartitionCount() != 3 || len(parts) != 3 {
		t.Errorf("view has %d partitions, want 3", len(parts))
	}
	for _, part := range parts {
		for i := 1; i < len(part); i++ {
			if data.Compare(part[i-1][0], part[i][0]) > 0 {
				t.Error("view partition not sorted per design")
			}
		}
	}

	// Consumer job: read the view; result must equal recomputation.
	consumer := plan.ViewScan(path, base.Schema(), sig.Precise, sig.Normalized).Output("o")
	resC, err := e.Run(consumer, "consumer", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !data.RowsEqual(resB.Outputs["o"], resC.Outputs["o"]) {
		t.Error("view scan result differs from recomputation")
	}
	// And reading the view must be cheaper than recomputing.
	if resC.TotalCPU >= resB.TotalCPU {
		t.Errorf("view read CPU %.1f >= recompute CPU %.1f", resC.TotalCPU, resB.TotalCPU)
	}
	// Missing view fails.
	bad := plan.ViewScan("/views/none", base.Schema(), "x", "y").Output("o")
	if _, err := e.Run(bad, "j", 0); err == nil {
		t.Error("missing view should fail")
	}
}

// crashKind is a FaultHook that permanently crashes every vertex of one
// operator kind (the error carries no Transient marker).
type crashKind struct{ kind plan.OpKind }

func (c crashKind) VertexDone(_, _ string, k plan.OpKind, _ int) error {
	if k == c.kind {
		return errors.New("injected vertex failure")
	}
	return nil
}

func (c crashKind) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

func TestFailureInjectionAndEarlyMaterializationSurvives(t *testing.T) {
	e := env(t)
	base := plan.Scan("sales", "sales-v1", salesSchema()).
		HashAgg([]int{1}, []plan.AggSpec{{Fn: plan.AggCount, Col: 0}})
	sig := signature.Of(base)
	path := storage.PathFor(sig.Precise, "failing")
	p := base.Materialize(path, sig.Precise, sig.Normalized, plan.PhysicalProps{}).
		Sort([]int{0}, nil).
		Output("o")
	// Fail right after the sort: the view was already written (early
	// materialization acts as a checkpoint, paper §6.4 / §8). The crash is
	// permanent — no Transient marker — so the retry loop does not save it.
	e.Faults = crashKind{plan.OpSort}
	defer func() { e.Faults = nil }()
	if _, err := e.Run(p, "failing", 0); err == nil {
		t.Fatal("expected injected failure")
	}
	if e.Store.LookupPrecise(sig.Precise) == nil {
		t.Error("early-materialized view should survive the job failure")
	}
}

func TestStatsAccounting(t *testing.T) {
	e := env(t)
	p := plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}}).
		Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeStats) != 5 {
		t.Fatalf("stats for %d nodes, want 5", len(res.NodeStats))
	}
	// Cumulative cost at root equals total.
	rootStats := res.NodeStats[p]
	if diff := rootStats.CumulativeCost - res.TotalCPU; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cumulative %.3f != total %.3f", rootStats.CumulativeCost, res.TotalCPU)
	}
	// Latency is monotone up the plan: every child's latency is at most
	// its parent's.
	for cur := p; len(cur.Children) > 0; cur = cur.Children[0] {
		child := cur.Children[0]
		if res.NodeStats[child].Latency > res.NodeStats[cur].Latency {
			t.Errorf("child latency %.3f exceeds parent %.3f at %v",
				res.NodeStats[child].Latency, res.NodeStats[cur].Latency, cur)
		}
	}
	if res.Latency <= 0 || res.TotalCPU <= 0 {
		t.Error("zero latency or CPU")
	}
}

// TestReuseNeverChangesResults is the core §4 correctness invariant as a
// property test: for random pipelines, executing with a materialized view
// substituted for a random subgraph yields identical results.
func TestReuseNeverChangesResults(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomPipeline(r)
		orig, err := e.Run(root.Output("o"), "orig", 0)
		if err != nil {
			return false
		}
		// Pick a random non-leaf subgraph to materialize.
		nodes := plan.Nodes(root)
		cand := nodes[r.Intn(len(nodes))]
		sig := signature.Of(cand)
		path := storage.PathFor(sig.Precise, "p")
		if e.Store.LookupPrecise(sig.Precise) == nil {
			mat := cand.Materialize(path, sig.Precise, sig.Normalized, plan.PhysicalProps{}).Output("tmp")
			if _, err := e.Run(mat, "builder", 0); err != nil {
				return false
			}
		}
		view := e.Store.LookupPrecise(sig.Precise)
		// Rewrite the original plan to read the view.
		rewritten := plan.Rewrite(root, func(n *plan.Node) *plan.Node {
			if signature.Of(n).Precise == sig.Precise && n.Kind != plan.OpViewScan {
				return plan.ViewScan(view.Path, n.Schema(), sig.Precise, sig.Normalized)
			}
			return n
		})
		re, err := e.Run(rewritten.Output("o"), "reuse", 0)
		if err != nil {
			return false
		}
		return data.RowsEqual(orig.Outputs["o"], re.Outputs["o"])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomPipeline builds a random linear pipeline over the sales table.
func randomPipeline(r *rand.Rand) *plan.Node {
	n := plan.Scan("sales", "sales-v1", salesSchema())
	steps := 1 + r.Intn(3)
	for i := 0; i < steps; i++ {
		switch r.Intn(4) {
		case 0:
			n = n.Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(r.Int63n(3)))))
		case 1:
			n = n.ShuffleHash([]int{r.Intn(2)}, 1+r.Intn(6))
		case 2:
			n = n.Sort([]int{r.Intn(4)}, nil)
		default:
			return n.HashAgg([]int{r.Intn(2)}, []plan.AggSpec{{Fn: plan.AggSum, Col: 2}})
		}
	}
	return n
}

func BenchmarkExecutePipeline(b *testing.B) {
	e := env(b)
	p := plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}}).
		Output("o")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(p, "j", 0); err != nil {
			b.Fatal(err)
		}
	}
}
