package exec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

// TestExecutionDeterminismProperty asserts the executor is fully
// deterministic: the same plan over the same data yields byte-identical
// ordered outputs every run — including through Sort/Top tie-breaks and
// the (map-backed) hash aggregate. Reuse validation depends on this.
func TestExecutionDeterminismProperty(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomPipeline(r).Sort([]int{0}, nil).Top(7).Output("o")
		r1, err := e.Run(root, "a", 0)
		if err != nil {
			return false
		}
		r2, err := e.Run(plan.Clone(root), "b", 0)
		if err != nil {
			return false
		}
		a, b := r1.Outputs["o"], r2.Outputs["o"]
		if len(a) != len(b) {
			return false
		}
		// Ordered, exact comparison — multiset equality is not enough here.
		for i := range a {
			if data.CompareRows(a[i], b[i], allCols(a[i]), nil) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTopThroughViewMatchesRecompute pins the subtle tie-break case: a
// Top over a Sort selects identical rows whether the input subtree is
// recomputed or read from a materialized view with a different physical
// layout.
func TestTopThroughViewMatchesRecompute(t *testing.T) {
	e := env(t)
	base := plan.Scan("sales", "sales-v1", salesSchema()).
		HashAgg([]int{1}, []plan.AggSpec{{Fn: plan.AggCount, Col: 0}}) // many count ties
	sig := signature.Of(base)

	top := func(in *plan.Node) *plan.Node {
		// Sort on the tie-heavy count column, keep 3.
		return in.Sort([]int{1}, []bool{true}).Top(3).Output("o")
	}
	direct, err := e.Run(top(base), "direct", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Materialize with a hostile physical design: single partition sorted
	// by the opposite column.
	props := plan.PhysicalProps{
		Part: plan.Partitioning{Kind: plan.PartSingleton, Count: 1},
		Sort: plan.SortOrder{Cols: []int{0}, Desc: []bool{true}},
	}
	path := storage.PathFor(sig.Precise, "builder")
	mat := base.Materialize(path, sig.Precise, sig.Normalized, props).Output("x")
	if _, err := e.Run(mat, "builder", 0); err != nil {
		t.Fatal(err)
	}
	vs := plan.ViewScan(path, base.Schema(), sig.Precise, sig.Normalized)
	viaView, err := e.Run(top(vs), "viaview", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := direct.Outputs["o"], viaView.Outputs["o"]
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("top sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if data.CompareRows(a[i], b[i], allCols(a[i]), nil) != 0 {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func allCols(r data.Row) []int {
	out := make([]int, len(r))
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	e := env(t)
	h := plan.Scan("sales", "sales-v1", salesSchema()).
		HashJoin(plan.Scan("items", "items-v1", itemSchema()), []int{0}, []int{0}).
		Output("o")
	m := plan.Scan("sales", "sales-v1", salesSchema()).
		MergeJoin(plan.Scan("items", "items-v1", itemSchema()), []int{0}, []int{0}).
		Output("o")
	rh, err := e.Run(h, "h", 0)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := e.Run(m, "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !data.RowsEqual(rh.Outputs["o"], rm.Outputs["o"]) {
		t.Error("merge join and hash join disagree")
	}
}

func TestRangePartitionExchange(t *testing.T) {
	e := env(t)
	p := plan.Scan("sales", "sales-v1", salesSchema()).
		RangePartition([]int{3}, 4). // range on price
		Output("o")
	res, err := e.Run(p, "j", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["o"]) != 200 {
		t.Fatalf("range exchange lost rows: %d", len(res.Outputs["o"]))
	}
	ex := p.Children[0]
	if res.NodeStats[ex].DOP != 4 {
		t.Errorf("DOP = %d", res.NodeStats[ex].DOP)
	}
	// A range exchange costs more than a hash exchange (it sorts).
	h := plan.Scan("sales", "sales-v1", salesSchema()).ShuffleHash([]int{3}, 4).Output("o")
	rh, err := e.Run(h, "j2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeStats[ex].ExclusiveCost <= rh.NodeStats[h.Children[0]].ExclusiveCost {
		t.Error("range exchange should cost more than hash exchange")
	}
	// Derived properties: partitioned AND sorted.
	props := plan.DeriveProps(ex)
	if props.Part.Kind != plan.PartRange || len(props.Sort.Cols) != 1 || props.Sort.Cols[0] != 3 {
		t.Errorf("derived props = %+v", props)
	}
	// Verify global ordering across partitions: re-running and walking
	// output in partition order yields ascending price.
	outRows := res.Outputs["o"]
	for i := 1; i < len(outRows); i++ {
		if outRows[i-1][3].AsFloat() > outRows[i][3].AsFloat() {
			t.Fatal("range partitions not globally ordered")
		}
	}
}

func TestRangeDesignedView(t *testing.T) {
	e := env(t)
	base := plan.Scan("sales", "sales-v1", salesSchema()).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}})
	sig := signature.Of(base)
	props := plan.PhysicalProps{
		Part: plan.Partitioning{Kind: plan.PartRange, Cols: []int{0}, Count: 3},
	}
	path := storage.PathFor(sig.Precise, "b")
	mat := base.Materialize(path, sig.Precise, sig.Normalized, props).Output("x")
	if _, err := e.Run(mat, "b", 0); err != nil {
		t.Fatal(err)
	}
	v, parts, err := e.Store.Consume(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.PartitionCount() != 3 || len(parts) != 3 {
		t.Fatalf("partitions = %d", len(parts))
	}
	// Ranges are disjoint and ascending across partitions.
	var last data.Value
	started := false
	for _, part := range parts {
		for _, r := range part {
			if started && data.Compare(last, r[0]) > 0 {
				t.Fatal("range view not globally ordered")
			}
			last = r[0]
			started = true
		}
	}
}

// TestSkewStressParallelMatchesSerial hammers the parallel data plane with
// a pathologically skewed input: one hot join/group key concentrates ~90%
// of 6400 rows in a single partition of 64, so one worker drags while the
// rest finish instantly — the scheduling pattern most likely to expose an
// order-dependent merge. Twenty parallel executions of a
// filter→join→shuffle→agg→materialize→sort pipeline must each be
// byte-identical to the serial reference walk (Executor.Serial): ordered outputs,
// exact TotalCPU/Latency floats, per-node Stats, and MaterializedPaths.
func TestSkewStressParallelMatchesSerial(t *testing.T) {
	const parts = 64
	sch := data.Schema{
		{Name: "k", Kind: data.KindInt},
		{Name: "g", Kind: data.KindInt},
		{Name: "v", Kind: data.KindFloat},
	}
	dimSch := data.Schema{{Name: "id", Kind: data.KindInt}, {Name: "w", Kind: data.KindInt}}
	cat := catalog.New()
	fact := data.NewTable("skewfact", "sf-v1", sch, parts)
	rr := 0
	for i := 0; i < 6400; i++ {
		k := int64(7) // hot key: ~90% of rows land in one partition
		if i%10 == 0 {
			k = int64(i)
		}
		fact.AppendHash(data.Row{
			data.Int(k),
			data.Int(int64(i % 5)),
			data.Float(float64(i%97) + 0.5),
		}, []int{0}, &rr)
	}
	hot, total := 0, 0
	for _, p := range fact.Partitions {
		total += len(p)
		if len(p) > hot {
			hot = len(p)
		}
	}
	if hot < total/2 {
		t.Fatalf("fixture not skewed: hottest partition %d of %d rows", hot, total)
	}
	dim := data.NewTable("skewdim", "sd-v1", dimSch, 8)
	for i := 0; i < 100; i++ {
		dim.AppendHash(data.Row{data.Int(int64(i)), data.Int(int64(i % 3))}, []int{0}, &rr)
	}
	cat.Register(fact)
	cat.Register(dim)

	base := plan.Scan("skewfact", "sf-v1", sch).
		Filter(expr.B(expr.OpGe, expr.C(2, "v"), expr.Lit(data.Float(0)))).
		HashJoin(plan.Scan("skewdim", "sd-v1", dimSch), []int{0}, []int{0}).
		ShuffleHash([]int{1}, 16).
		HashAgg([]int{1}, []plan.AggSpec{
			{Fn: plan.AggSum, Col: 2},
			{Fn: plan.AggCount, Col: 0},
		})
	sig := signature.Of(base)
	path := storage.PathFor(sig.Precise, "skew")
	build := func() *plan.Node {
		return plan.Clone(base.Materialize(path, sig.Precise, sig.Normalized, plan.PhysicalProps{
			Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0}, Count: 8},
		}).Sort([]int{0}, nil).Output("o"))
	}

	// Fresh store per run so every execution materializes (and therefore
	// reports) the same path, rather than deduplicating against the
	// previous run's view.
	serRoot := build()
	serial := serialRun(t, &Executor{Catalog: cat, Store: storage.NewStore()}, serRoot, "skew")
	if len(serial.MaterializedPaths) != 1 || serial.MaterializedPaths[0] != path {
		t.Fatalf("serial MaterializedPaths = %v", serial.MaterializedPaths)
	}
	for run := 0; run < 20; run++ {
		root := build()
		par, err := (&Executor{Catalog: cat, Store: storage.NewStore()}).Run(root, "skew", 0)
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("skew run %d", run), root, serRoot, par, serial)
		if len(par.MaterializedPaths) != len(serial.MaterializedPaths) {
			t.Fatalf("run %d: MaterializedPaths %v vs %v", run, par.MaterializedPaths, serial.MaterializedPaths)
		}
		for i := range par.MaterializedPaths {
			if par.MaterializedPaths[i] != serial.MaterializedPaths[i] {
				t.Fatalf("run %d: MaterializedPaths %v vs %v", run, par.MaterializedPaths, serial.MaterializedPaths)
			}
		}
	}
}

func TestSkewedPartitionsStraggle(t *testing.T) {
	// Two tables with identical rows: one balanced across 4 partitions,
	// one with everything in a single hot partition. The same downstream
	// operator must show higher simulated latency on the skewed layout.
	cat := catalog.New()
	sch := data.Schema{{Name: "k", Kind: data.KindInt}, {Name: "v", Kind: data.KindFloat}}
	balanced := data.NewTable("balanced", "g", sch, 4)
	skewed := data.NewTable("skewed", "g", sch, 4)
	rr := 0
	for i := 0; i < 400; i++ {
		row := data.Row{data.Int(int64(i)), data.Float(float64(i))}
		balanced.AppendHash(row, nil, &rr) // round robin: balanced
		skewed.Partitions[0] = append(skewed.Partitions[0], row)
	}
	cat.Register(balanced)
	cat.Register(skewed)
	e := &Executor{Catalog: cat, Store: storage.NewStore()}

	run := func(table string) float64 {
		p := plan.Scan(table, "g", sch).
			Filter(expr.B(expr.OpGe, expr.C(0, "k"), expr.Lit(data.Int(0)))).
			Output("o")
		res, err := e.Run(p, table, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	if lb, ls := run("balanced"), run("skewed"); ls <= lb {
		t.Errorf("skewed latency %.1f should exceed balanced %.1f", ls, lb)
	}
}
