package exec

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

// serialRun executes the plan through the depth-first reference walk
// (Executor.Serial), giving tests a reference execution to diff the DAG
// scheduler against.
func serialRun(t *testing.T, e *Executor, root *plan.Node, jobID string) *Result {
	t.Helper()
	e.Serial = true
	defer func() { e.Serial = false }()
	res, err := e.Run(root, jobID, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelSchedulerMatchesSerial pins the DAG scheduler to the serial
// walk bit-for-bit: identical ordered outputs, identical per-node Stats,
// and identical TotalCPU/Latency floats (not approximately — the reuse
// validator compares them exactly).
func TestParallelSchedulerMatchesSerial(t *testing.T) {
	e := env(t)
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		root := randomPipeline(r).Sort([]int{0}, nil).Output("o")

		serRoot := plan.Clone(root)
		serial := serialRun(t, e, serRoot, "serial")
		par, err := e.Run(root, "par", 0)
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("seed %d", seed), root, serRoot, par, serial)
	}
}

// TestParallelSchedulerSharedSpool covers the DAG (not tree) case: a
// spooled subtree with two parents must execute once and account
// identically under both schedulers.
func TestParallelSchedulerSharedSpool(t *testing.T) {
	e := env(t)
	build := func() *plan.Node {
		shared := plan.Scan("sales", "sales-v1", salesSchema()).
			Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1)))).
			Spool()
		return shared.HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggCount, Col: 1}}).
			HashJoin(shared, []int{0}, []int{0}).
			Sort([]int{0}, nil).
			Output("o")
	}
	rootA, rootB := build(), build()
	serial := serialRun(t, e, rootA, "serial")
	par, err := e.Run(rootB, "par", 0)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "shared-spool", rootB, rootA, par, serial)

	filterCount := 0
	for n := range par.NodeStats {
		if n.Kind == plan.OpFilter {
			filterCount++
		}
	}
	if filterCount != 1 {
		t.Errorf("shared filter executed %d times under DAG scheduler, want 1", filterCount)
	}
}

// diffResults compares two executions of structurally identical plans.
// parRoot/serRoot are the respective roots; plan.Clone preserves node
// order, so plan.Nodes aligns the two NodeStats maps index-by-index.
func diffResults(t *testing.T, label string, parRoot, serRoot *plan.Node, par, serial *Result) {
	t.Helper()
	for name, sRows := range serial.Outputs {
		pRows := par.Outputs[name]
		if len(pRows) != len(sRows) {
			t.Fatalf("%s: output %q rows %d vs %d", label, name, len(pRows), len(sRows))
		}
		for i := range sRows {
			if data.CompareRows(pRows[i], sRows[i], allCols(sRows[i]), nil) != 0 {
				t.Fatalf("%s: output %q row %d: %v vs %v", label, name, i, pRows[i], sRows[i])
			}
		}
	}
	if len(par.Outputs) != len(serial.Outputs) {
		t.Fatalf("%s: output count %d vs %d", label, len(par.Outputs), len(serial.Outputs))
	}
	if par.TotalCPU != serial.TotalCPU {
		t.Errorf("%s: TotalCPU %v vs %v", label, par.TotalCPU, serial.TotalCPU)
	}
	if par.Latency != serial.Latency {
		t.Errorf("%s: Latency %v vs %v", label, par.Latency, serial.Latency)
	}
	pNodes, sNodes := plan.Nodes(parRoot), plan.Nodes(serRoot)
	if len(pNodes) != len(sNodes) {
		t.Fatalf("%s: node count %d vs %d", label, len(pNodes), len(sNodes))
	}
	for i := range pNodes {
		ps, ss := par.NodeStats[pNodes[i]], serial.NodeStats[sNodes[i]]
		if ps == nil || ss == nil {
			t.Fatalf("%s: node %d (%v) missing stats (par=%v serial=%v)", label, i, pNodes[i].Kind, ps, ss)
		}
		if *ps != *ss {
			t.Errorf("%s: node %d (%v) stats %+v vs %+v", label, i, pNodes[i].Kind, *ps, *ss)
		}
	}
}

// TestViewScanConcurrentConsumers enforces the aliasing contract that
// applyViewScan's shallow copy relies on: many consumers reading one
// materialized view concurrently never mutate the stored rows, and each
// gets exactly the rows a serial execution would.
func TestViewScanConcurrentConsumers(t *testing.T) {
	e := env(t)
	base := plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(0))))
	sig := signature.Of(base)
	path := storage.PathFor(sig.Precise, "builder")
	mat := base.Materialize(path, sig.Precise, sig.Normalized, plan.PhysicalProps{
		Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0}, Count: 4},
	}).Output("x")
	if _, err := e.Run(mat, "builder", 0); err != nil {
		t.Fatal(err)
	}
	v, decoded, err := e.Store.Consume(path)
	if err != nil {
		t.Fatal(err)
	}
	// Deep snapshot of the decoded view, values included — the hot cache
	// serves this exact decode to every consumer below, so any in-place
	// mutation by an operator would diverge from it. Also snapshot the
	// at-rest payload bytes.
	snapshot := make([][]data.Row, len(decoded))
	for i, part := range decoded {
		snapshot[i] = make([]data.Row, len(part))
		for j, row := range part {
			snapshot[i][j] = append(data.Row{}, row...)
		}
	}
	encSnapshot := make([][]byte, len(v.Encoded))
	for i, b := range v.Encoded {
		encSnapshot[i] = append([]byte(nil), b...)
	}

	// Consumers that reorder, drop, extend, and aggregate the view's rows —
	// every operator class that could plausibly mutate input in place.
	consumer := func(i int) *plan.Node {
		vs := plan.ViewScan(path, base.Schema(), sig.Precise, sig.Normalized)
		switch i % 4 {
		case 0:
			return vs.Sort([]int{3}, []bool{true}).Top(5).Output("o")
		case 1:
			return vs.Filter(expr.B(expr.OpGe, expr.C(0, "item"), expr.Lit(data.Int(7)))).Output("o")
		case 2:
			return vs.ShuffleHash([]int{1}, 3).
				HashAgg([]int{1}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}}).
				Sort([]int{0}, nil).Output("o")
		default:
			return vs.HashJoin(plan.Scan("items", "items-v1", itemSchema()), []int{0}, []int{0}).
				Sort([]int{0}, nil).Output("o")
		}
	}
	const consumers = 16
	want := make([]*Result, consumers)
	for i := range want {
		want[i] = serialRun(t, e, consumer(i), fmt.Sprintf("ref%d", i))
	}

	got := make([]*Result, consumers)
	errs := make([]error, consumers)
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = e.Run(consumer(i), fmt.Sprintf("c%d", i), 0)
		}(i)
	}
	wg.Wait()

	for i := 0; i < consumers; i++ {
		if errs[i] != nil {
			t.Fatalf("consumer %d: %v", i, errs[i])
		}
		a, b := got[i].Outputs["o"], want[i].Outputs["o"]
		if len(a) != len(b) {
			t.Fatalf("consumer %d: %d rows, want %d", i, len(a), len(b))
		}
		for j := range a {
			if data.CompareRows(a[j], b[j], allCols(a[j]), nil) != 0 {
				t.Fatalf("consumer %d row %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}

	// The stored view must be byte-identical to the pre-consumer snapshot:
	// both the at-rest encoded payload and the shared decode it serves.
	v2, decoded2, err := e.Store.Consume(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Encoded) != len(encSnapshot) {
		t.Fatalf("view partition count changed: %d vs %d", len(v2.Encoded), len(encSnapshot))
	}
	for i, b := range v2.Encoded {
		if !bytes.Equal(b, encSnapshot[i]) {
			t.Fatalf("encoded partition %d changed", i)
		}
	}
	if len(decoded2) != len(snapshot) {
		t.Fatalf("decoded partition count changed: %d vs %d", len(decoded2), len(snapshot))
	}
	for i, part := range decoded2 {
		if len(part) != len(snapshot[i]) {
			t.Fatalf("view partition %d length changed: %d vs %d", i, len(part), len(snapshot[i]))
		}
		for j, row := range part {
			if data.CompareRows(row, snapshot[i][j], allCols(row), nil) != 0 {
				t.Fatalf("stored view mutated at partition %d row %d: %v vs %v", i, j, row, snapshot[i][j])
			}
		}
	}
}
