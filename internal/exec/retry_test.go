package exec

import (
	"strings"
	"sync"
	"testing"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/fault"
	"cloudviews/internal/plan"
)

// transientErr is a retryable test failure.
type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

// flakyHook transiently fails the first `failures` attempts of every
// vertex of one operator kind, then lets it pass. Attempt-keyed, so it is
// deterministic under any scheduler.
type flakyHook struct {
	kind     plan.OpKind
	failures int

	mu    sync.Mutex
	fired int
}

func (f *flakyHook) VertexDone(_, site string, k plan.OpKind, attempt int) error {
	if k == f.kind && attempt < f.failures {
		f.mu.Lock()
		f.fired++
		f.mu.Unlock()
		return transientErr{"flaky vertex " + site}
	}
	return nil
}

func (f *flakyHook) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

func retryPlan() *plan.Node {
	return plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}}).
		Sort([]int{0}, nil).
		Output("o")
}

// TestVertexRetryRecovers: a vertex that fails transiently twice succeeds
// on its third attempt, the job completes, and the output is byte-identical
// to a clean run. Runs on the parallel path (hooks no longer force serial).
func TestVertexRetryRecovers(t *testing.T) {
	e := env(t)
	clean, err := e.Run(retryPlan(), "clean", 0)
	if err != nil {
		t.Fatal(err)
	}

	hook := &flakyHook{kind: plan.OpHashGbAgg, failures: 2}
	e.Faults = hook
	defer func() { e.Faults = nil }()
	res, err := e.Run(retryPlan(), "flaky", 0)
	if err != nil {
		t.Fatalf("retries should have saved the job: %v", err)
	}
	if hook.fired != 2 || res.Retries != 2 {
		t.Errorf("fired=%d retries=%d, want 2/2", hook.fired, res.Retries)
	}
	if res.RetryWait <= 0 {
		t.Error("retries accrued no simulated backoff")
	}
	cRows, fRows := clean.Outputs["o"], res.Outputs["o"]
	if len(cRows) != len(fRows) {
		t.Fatalf("row count %d vs clean %d", len(fRows), len(cRows))
	}
	for i := range cRows {
		if data.CompareRows(cRows[i], fRows[i], allCols(cRows[i]), nil) != 0 {
			t.Fatalf("row %d differs from clean run: %v vs %v", i, fRows[i], cRows[i])
		}
	}
	// Same CPU as clean (retries re-run work but the simulated cost model
	// charges the final successful attempt); latency gains the backoff.
	if res.TotalCPU != clean.TotalCPU {
		t.Errorf("TotalCPU %v != clean %v", res.TotalCPU, clean.TotalCPU)
	}
	if res.Latency <= clean.Latency {
		t.Errorf("latency %v should exceed clean %v by the backoff", res.Latency, clean.Latency)
	}
}

// TestRetryAttemptsExhausted: a vertex that never stops failing exhausts
// its per-vertex attempt cap and fails the job with a descriptive error.
func TestRetryAttemptsExhausted(t *testing.T) {
	e := env(t)
	e.Faults = &flakyHook{kind: plan.OpSort, failures: 1 << 30}
	defer func() { e.Faults = nil }()
	_, err := e.Run(retryPlan(), "doomed", 0)
	if err == nil || !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("want attempts-exhausted error, got %v", err)
	}
}

// TestRetryJobBudget: the per-job budget caps total retries across
// vertices even when each individual vertex would still have attempts left.
func TestRetryJobBudget(t *testing.T) {
	e := env(t)
	e.Retry = RetryPolicy{MaxAttempts: 4, JobBudget: 1}
	e.Faults = &flakyHook{kind: plan.OpFilter, failures: 2}
	defer func() { e.Faults = nil; e.Retry = RetryPolicy{} }()
	_, err := e.Run(retryPlan(), "budgeted", 0)
	if err == nil || !strings.Contains(err.Error(), "budget exhausted") {
		t.Fatalf("want budget-exhausted error, got %v", err)
	}
}

// TestBackoffShape pins the capped exponential: base doubling per attempt,
// clamped at the cap.
func TestBackoffShape(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 1, MaxBackoff: 30}.withDefaults()
	for i, want := range []float64{1, 2, 4, 8, 16, 30, 30} {
		if got := p.Backoff(i); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestFaultScheduleDeterministicAcrossSchedulers: with a seeded injector,
// the serial reference walk and the DAG scheduler absorb the same fault
// schedule and produce byte-identical results, stats, and retry counts —
// the property that lets the chaos soak byte-diff against clean baselines.
func TestFaultScheduleDeterministicAcrossSchedulers(t *testing.T) {
	cfg := fault.Config{Seed: 1234, VertexCrash: 0.25, VertexSlow: 0.2, SlowDelay: 7}
	run := func(serial bool) *Result {
		e := env(t)
		e.Serial = serial
		e.Faults = fault.NewInjector(cfg)
		root := retryPlan()
		res, err := e.Run(root, "chaos", 0)
		if err != nil {
			t.Fatalf("serial=%v: %v", serial, err)
		}
		return res
	}
	ser, par := run(true), run(false)
	if ser.Retries != par.Retries {
		t.Errorf("retries diverge: serial %d vs parallel %d", ser.Retries, par.Retries)
	}
	if ser.RetryWait != par.RetryWait || ser.Latency != par.Latency || ser.TotalCPU != par.TotalCPU {
		t.Errorf("accounting diverges: serial {%v %v %v} vs parallel {%v %v %v}",
			ser.RetryWait, ser.Latency, ser.TotalCPU, par.RetryWait, par.Latency, par.TotalCPU)
	}
	sRows, pRows := ser.Outputs["o"], par.Outputs["o"]
	if len(sRows) != len(pRows) {
		t.Fatalf("row counts diverge: %d vs %d", len(sRows), len(pRows))
	}
	for i := range sRows {
		if data.CompareRows(sRows[i], pRows[i], allCols(sRows[i]), nil) != 0 {
			t.Fatalf("row %d diverges: %v vs %v", i, sRows[i], pRows[i])
		}
	}
}
