package exec

import (
	"context"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

// join.go implements the partition-parallel hash join. The build side is
// sharded by the top bits of the key hash: each shard owns a disjoint
// hash range, so shards can be built concurrently with no contention,
// and the chain for any given hash lives entirely in one shard. Within a
// shard, rows are chained in global build-side scan order (partitions in
// index order, rows in order), which is exactly the candidate order the
// old single-map build produced — probe output is byte-identical.
//
// Chains are indexed by an open-addressed slot table instead of a Go map:
// the key hash is already computed (and murmur-finalized), so linear
// probing on (hash & mask) skips the map's internal re-hash and bucket
// machinery on every build insert and probe lookup.

// joinShardBits sizes the build fan-out; 16 shards saturates the worker
// pool on typical machines while keeping per-shard tables dense.
const joinShardBits = 4

// joinSlabRows is how many output rows' worth of Values one arena call
// reserves for the probe emit loop (see applyJoin).
const joinSlabRows = 128

// joinSlot is one open-addressed chain entry, packed so a probe touches a
// single cache line: the chain's key hash and the [head, tail] row indexes
// of its candidate list. head stores rowIdx+1 (0 = empty slot), which
// disambiguates occupancy without reserving any hash value.
type joinSlot struct {
	hash uint64
	head int32
	tail int32
}

// buildRow pairs a build-side row with its cached ByteSize so the probe
// emit path reads both from one cache line.
type buildRow struct {
	row   data.Row
	bytes int64
}

type joinShard struct {
	// slots is the open-addressed chain index, linear probing on
	// collision. Sized up front for the shard's row count at <=50% load,
	// so it never grows. next threads each chain's rows in insertion
	// order, -1 terminated. int32 indexing halves the chain memory —
	// build sides beyond 2^31 rows are far past this simulator's scale.
	slots []joinSlot

	rows []buildRow
	next []int32
}

// joinTable is the completed build side.
type joinTable struct {
	shards []joinShard
	shift  uint // shard index = hash >> shift
}

func newJoinShard(capRows int) joinShard {
	size := nextPow2(2 * capRows)
	return joinShard{
		slots: make([]joinSlot, size),
		rows:  make([]buildRow, 0, capRows),
		next:  make([]int32, 0, capRows),
	}
}

// buildJoinTable hashes and shards the build side in parallel, then builds
// each shard's chain index in parallel. fastKey selects the single
// int-like-column hash (see intKeyHash); the same flag must be used for
// the probe side so both sides hash identically.
func buildJoinTable(ctx context.Context, in partitions, inRows int64, keys []int, fastKey bool) *joinTable {
	if inRows < parallelRowThreshold || len(in) == 1 {
		// Serial single-shard build (shift 64 maps every hash to shard 0).
		sh := newJoinShard(int(inRows))
		for _, part := range in {
			if ctx.Err() != nil {
				break
			}
			for _, r := range part {
				if fastKey {
					sh.insert(intKeyHash(r[keys[0]]), r)
				} else {
					sh.insert(r.Hash64(keys...), r)
				}
			}
		}
		return &joinTable{shards: []joinShard{sh}, shift: 64}
	}

	const shardCount = 1 << joinShardBits
	shift := uint(64 - joinShardBits)

	// Scatter (hash, row) pairs by shard, preserving global scan order
	// within each shard: count, prefix, place — same scheme as
	// scatterRows, but carrying the already-computed hash alongside the
	// row so the build pass never rehashes.
	hashes := make([][]uint64, len(in))
	counts := make([][]int32, len(in))
	parallelRange(len(in), func(i int) {
		part := in[i]
		hs := make([]uint64, len(part))
		c := make([]int32, shardCount)
		// Chunk-boundary cancellation poll; skipped partitions keep their
		// zeroed hash/count buffers, so the later passes stay in bounds
		// (cancellation is monotone — see scatterRows).
		if ctx.Err() == nil {
			for j, r := range part {
				var h uint64
				if fastKey {
					h = intKeyHash(r[keys[0]])
				} else {
					h = r.Hash64(keys...)
				}
				hs[j] = h
				c[h>>shift]++
			}
		}
		hashes[i] = hs
		counts[i] = c
	})
	totals := make([]int64, shardCount)
	base := make([][]int64, len(in))
	for i := range in {
		b := make([]int64, shardCount)
		for s := 0; s < shardCount; s++ {
			b[s] = totals[s]
			totals[s] += int64(counts[i][s])
		}
		base[i] = b
	}
	shardRows := make([][]data.Row, shardCount)
	shardHashes := make([][]uint64, shardCount)
	for s := 0; s < shardCount; s++ {
		shardRows[s] = make([]data.Row, totals[s])
		shardHashes[s] = make([]uint64, totals[s])
	}
	parallelRange(len(in), func(i int) {
		if ctx.Err() != nil {
			return
		}
		pos := base[i]
		hs := hashes[i]
		for j, r := range in[i] {
			s := hs[j] >> shift
			shardRows[s][pos[s]] = r
			shardHashes[s][pos[s]] = hs[j]
			pos[s]++
		}
	})

	jt := &joinTable{shards: make([]joinShard, shardCount), shift: shift}
	parallelRange(shardCount, func(s int) {
		sh := newJoinShard(len(shardRows[s]))
		if ctx.Err() == nil {
			for k, r := range shardRows[s] {
				sh.insert(shardHashes[s][k], r)
			}
		}
		jt.shards[s] = sh
	})
	return jt
}

func (sh *joinShard) insert(h uint64, r data.Row) {
	idx := int32(len(sh.rows))
	sh.rows = append(sh.rows, buildRow{row: r, bytes: r.ByteSize()})
	sh.next = append(sh.next, -1)
	slots := sh.slots
	mask := uint64(len(slots) - 1) // power-of-two len, lets the compiler drop bounds checks
	pos := h & mask
	for {
		c := &slots[pos&mask]
		if c.head == 0 {
			*c = joinSlot{hash: h, head: idx + 1, tail: idx}
			return
		}
		if c.hash == h {
			sh.next[c.tail] = idx
			c.tail = idx
			return
		}
		pos++
	}
}

// chainFor returns the first row index of the candidate chain for hash h,
// or -1 when no build row hashed to h.
func (sh *joinShard) chainFor(h uint64) int32 {
	slots := sh.slots
	mask := uint64(len(slots) - 1)
	pos := h & mask
	for {
		c := slots[pos&mask]
		if c.head == 0 {
			return -1
		}
		if c.hash == h {
			return c.head - 1
		}
		pos++
	}
}

// applyJoin implements an inner equi-join. The build side is the right
// input; output rows are left ++ right, partitioned like the left input.
// Output bytes are accumulated from the build rows' cached sizes plus one
// lazy ByteSize per matching probe row — integer sums, so the total equals
// a fresh byte walk of the output exactly.
func applyJoin(ctx context.Context, n *plan.Node, left, right partitions, leftStats, rightStats *Stats) (partitions, int64, float64, error) {
	// Single int-like key columns (the common equi-join shape) hash via
	// intKeyHash on both sides; mixed or multi-column keys keep the
	// canonical row hash. Both schemes match exactly the pairs data.Equal
	// accepts, so the output is identical either way.
	fastKey := false
	if len(n.LeftKeys) == 1 && len(n.RightKeys) == 1 {
		lk := n.Children[0].Schema()[n.LeftKeys[0]].Kind
		rk := n.Children[1].Schema()[n.RightKeys[0]].Kind
		fastKey = lk == rk && intLikeKind(lk)
	}
	jt := buildJoinTable(ctx, right, rightStats.Rows, n.RightKeys, fastKey)
	outWidth := len(n.Children[0].Schema()) + len(n.Children[1].Schema())
	out := make(partitions, len(left))
	bytesPer := make([]int64, len(left))
	var lk0, rk0 int
	if fastKey {
		lk0, rk0 = n.LeftKeys[0], n.RightKeys[0]
	}
	// Emit rows are carved from chunked slabs: one arena call reserves
	// joinSlabRows output rows' worth of Values, and the loop sub-slices
	// rows out of the local slab. This keeps the per-match path free of
	// function calls, so the compiler holds the slab cursor and shard
	// state in registers. The unused tail of the final slab (< one chunk
	// per partition) stays zeroed arena memory, which is harmless.
	probe := func(i int) {
		// Chunk-boundary cancellation poll. Skipping also protects the
		// probe from a partially built table: the build passes bail under
		// the same (monotone) cancelled context.
		if ctx.Err() != nil {
			return
		}
		part := left[i]
		// Hint a whole number of slabs so chunk carving tiles the first
		// block exactly; the arena grows only when matches exceed the
		// one-output-row-per-input-row estimate.
		slabs := (len(part) + joinSlabRows - 1) / joinSlabRows
		arena := data.NewRowArenaSized(slabs * joinSlabRows * outWidth)
		rows := make([]data.Row, 0, len(part))
		var slab []data.Value
		fill := 0
		var pb int64
		if fastKey {
			// Key match is (kind, payload) identity — data.Equal for
			// same-kind int-like values — checked inline per candidate.
			for _, l := range part {
				lv := l[lk0]
				h := intKeyHash(lv)
				sh := &jt.shards[h>>jt.shift]
				lb := int64(-1)
				for idx := sh.chainFor(h); idx != -1; idx = sh.next[idx] {
					br := &sh.rows[idx]
					r := br.row
					if rv := r[rk0]; rv.K == lv.K && rv.I == lv.I {
						if fill+outWidth > len(slab) {
							slab = arena.NewRow(joinSlabRows * outWidth)
							fill = 0
						}
						nr := slab[fill : fill+outWidth : fill+outWidth]
						fill += outWidth
						copy(nr, l)
						copy(nr[len(l):], r)
						rows = append(rows, data.Row(nr))
						if lb < 0 {
							lb = l.ByteSize()
						}
						pb += lb + br.bytes
					}
				}
			}
		} else {
			for _, l := range part {
				h := l.Hash64(n.LeftKeys...)
				sh := &jt.shards[h>>jt.shift]
				lb := int64(-1)
				for idx := sh.chainFor(h); idx != -1; idx = sh.next[idx] {
					br := &sh.rows[idx]
					r := br.row
					if joinKeysMatch(l, r, n.LeftKeys, n.RightKeys) {
						if fill+outWidth > len(slab) {
							slab = arena.NewRow(joinSlabRows * outWidth)
							fill = 0
						}
						nr := slab[fill : fill+outWidth : fill+outWidth]
						fill += outWidth
						copy(nr, l)
						copy(nr[len(l):], r)
						rows = append(rows, data.Row(nr))
						if lb < 0 {
							lb = l.ByteSize()
						}
						pb += lb + br.bytes
					}
				}
			}
		}
		out[i] = rows
		bytesPer[i] = pb
	}
	if leftStats.Rows < parallelRowThreshold || len(left) == 1 {
		for i := range left {
			probe(i)
		}
	} else {
		parallelRange(len(left), probe)
	}
	var outBytes int64
	for _, b := range bytesPer {
		outBytes += b
	}
	cost := OperatorCost(n.Kind, leftStats.Rows, 0, 0) + float64(rightStats.Rows)*costPerRowJoinBuild
	return out, outBytes, cost, nil
}

func joinKeysMatch(l, r data.Row, lk, rk []int) bool {
	for i := range lk {
		if !data.Equal(l[lk[i]], r[rk[i]]) {
			return false
		}
	}
	return true
}
