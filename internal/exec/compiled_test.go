package exec

import (
	"fmt"
	"sync"
	"testing"

	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
)

// compiledRefPred is a predicate that exercises every compiler path at
// once: fused int comparison, float arithmetic, a builtin call, and a
// default-body UDF, glued by And/Or.
func compiledRefPred() expr.Expr {
	return expr.And(
		expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1))),
		expr.B(expr.OpOr,
			expr.B(expr.OpLt,
				expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
				expr.Lit(data.Float(12.0))),
			expr.Eq(
				expr.B(expr.OpMod,
					&expr.UDF{Name: "u", CodeHash: "h1", Args: []expr.Expr{expr.C(0, "item")}},
					expr.Lit(data.Int(3))),
				expr.Lit(data.Int(1)))))
}

// TestExecCompiledMatchesInterpreter runs filter and project vertices
// through the executor (which uses the compiled path) and checks every
// output row — and the filter's Stats.Bytes — against a reference computed
// by walking the input rows with the tree interpreter directly.
func TestExecCompiledMatchesInterpreter(t *testing.T) {
	e := env(t)
	scan := plan.Scan("sales", "sales-v1", salesSchema()).Output("in")
	inRes, err := e.Run(scan, "ref-in", 0)
	if err != nil {
		t.Fatal(err)
	}
	input := inRes.Outputs["in"]

	pred := compiledRefPred()
	projExprs := []expr.Expr{
		expr.C(0, "item"),
		expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
		expr.F("if",
			expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(2))),
			expr.Lit(data.String_("bulk")),
			expr.Lit(data.String_("single"))),
		expr.Lit(data.Null()),
	}

	// Interpreter reference: filter then project, row by row, in input
	// order (the executor preserves intra-partition order and the gathered
	// output concatenates partitions in order, same as the scan above).
	var wantRows []data.Row
	var wantFilterBytes int64
	for _, r := range input {
		if !pred.Eval(r).Truth() {
			continue
		}
		wantFilterBytes += r.ByteSize()
		out := make(data.Row, len(projExprs))
		for i, pe := range projExprs {
			out[i] = pe.Eval(r)
		}
		wantRows = append(wantRows, out)
	}
	if len(wantRows) == 0 || len(wantRows) == len(input) {
		t.Fatalf("degenerate reference: %d of %d rows kept", len(wantRows), len(input))
	}

	p := plan.Scan("sales", "sales-v1", salesSchema()).
		Filter(pred).
		Project([]string{"item", "rev", "bucket", "pad"}, projExprs).
		Output("o")
	res, err := e.Run(p, "compiled", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs["o"]
	if len(got) != len(wantRows) {
		t.Fatalf("executor produced %d rows, interpreter reference %d", len(got), len(wantRows))
	}
	for i := range got {
		if len(got[i]) != len(wantRows[i]) {
			t.Fatalf("row %d: width %d, want %d", i, len(got[i]), len(wantRows[i]))
		}
		for j := range got[i] {
			a, b := got[i][j], wantRows[i][j]
			if a.K != b.K || a.I != b.I || a.S != b.S || a.F != b.F {
				t.Fatalf("row %d col %d: executor %#v, interpreter %#v", i, j, a, b)
			}
		}
	}

	// The fused byte accounting must equal a plain ByteSize walk of the
	// rows each operator emitted.
	filterNode := p.Children[0].Children[0]
	if filterNode.Kind != plan.OpFilter {
		t.Fatalf("plan shape changed: %v", filterNode.Kind)
	}
	if fb := res.NodeStats[filterNode].Bytes; fb != wantFilterBytes {
		t.Errorf("filter Stats.Bytes = %d, reference walk %d", fb, wantFilterBytes)
	}
	var wantProjBytes int64
	for _, r := range wantRows {
		wantProjBytes += r.ByteSize()
	}
	projNode := p.Children[0]
	if pb := res.NodeStats[projNode].Bytes; pb != wantProjBytes {
		t.Errorf("project Stats.Bytes = %d, reference walk %d", pb, wantProjBytes)
	}
}

// TestCompiledSharedAcrossPartitionWorkers runs a filter+project job at a
// partition count well above the worker-pool budget, so one compiled
// program (and one projector) is evaluated concurrently by the partition
// workers forEachPartition fans out to; under -race this proves the
// read-only-program-plus-per-worker-Ctx contract at the executor level.
// The predicate includes a builtin and a UDF so the Ctx scratch-slice
// paths are part of the race surface. A second round runs concurrent jobs
// — each with its own plan tree, since plan.Node schema memoization is
// single-run — to put compile-and-evaluate itself under cross-job
// concurrency on the shared pool.
func TestCompiledSharedAcrossPartitionWorkers(t *testing.T) {
	e := env(t)
	build := func() *plan.Node {
		return plan.Scan("sales", "sales-v1", salesSchema()).
			ShuffleHash([]int{0}, 64).
			Filter(compiledRefPred()).
			Project([]string{"b", "rev"}, []expr.Expr{
				expr.F("concat", expr.Lit(data.String_("i")),
					expr.F("if", expr.B(expr.OpGt, expr.C(0, "item"), expr.Lit(data.Int(9))),
						expr.Lit(data.String_("+")), expr.Lit(data.String_("-")))),
				expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
			}).
			Output("o")
	}
	res, err := e.Run(build(), "race-single", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Outputs["o"]
	if len(want) == 0 {
		t.Fatal("empty output")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := e.Run(build(), fmt.Sprintf("race-%d", g), 0)
			if err != nil {
				t.Error(err)
				return
			}
			if len(r.Outputs["o"]) != len(want) {
				t.Errorf("job %d: %d rows, want %d", g, len(r.Outputs["o"]), len(want))
			}
		}(g)
	}
	wg.Wait()
}

// The Interp/Compiled benchmark pairs below isolate the partition-level
// scalar kernel — no job harness, no scan, no stats — so the ratio between
// the two is the pure expression-evaluation win the compiler delivers.
// BenchmarkExecFilter/BenchmarkExecProjectEmit measure the same kernels
// end-to-end, where fixed per-job costs (arena zeroing, GC, scheduling)
// dilute the ratio.

func benchFilterRows() []data.Row {
	rows := make([]data.Row, benchFactRows)
	for i := range rows {
		rows[i] = data.Row{
			data.Int(int64(i % benchDimRows)),
			data.Int(int64(i % 37)),
			data.Int(int64(1 + i%5)),
			data.Float(float64(i%1000) + 0.25),
		}
	}
	return rows
}

func benchKernelPred() expr.Expr {
	return expr.And(
		expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1))),
		expr.B(expr.OpLt,
			expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
			expr.Lit(data.Float(1500))))
}

func BenchmarkExecFilterInterp(b *testing.B) {
	rows := benchFilterRows()
	pred := benchKernelPred()
	kept := make([]data.Row, 0, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kept = kept[:0]
		for _, r := range rows {
			if pred.Eval(r).Truth() {
				kept = append(kept, r)
			}
		}
	}
	sinkRows = kept
}

func BenchmarkExecFilterCompiled(b *testing.B) {
	rows := benchFilterRows()
	prog := expr.Compile(benchKernelPred(), salesSchema())
	ctx := prog.NewCtx()
	sel := make([]int32, 0, len(rows))
	kept := make([]data.Row, 0, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = prog.SelectInto(ctx, rows, sel[:0])
		kept = kept[:0]
		for _, idx := range sel {
			kept = append(kept, rows[idx])
		}
	}
	sinkRows = kept
}

func benchProjectExprs() []expr.Expr {
	return []expr.Expr{
		expr.C(0, "item"),
		expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
		expr.C(2, "qty"),
	}
}

func BenchmarkExecProjectInterp(b *testing.B) {
	rows := benchFilterRows()
	exprs := benchProjectExprs()
	width := len(exprs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena := data.NewRowArenaSized(len(rows) * width)
		out := make([]data.Row, len(rows))
		arena.NewRows(out, width)
		for ri, r := range rows {
			dst := out[ri]
			for ci, pe := range exprs {
				dst[ci] = pe.Eval(r)
			}
		}
		sinkRows = out
	}
}

func BenchmarkExecProjectCompiled(b *testing.B) {
	rows := benchFilterRows()
	proj := expr.CompileProject(benchProjectExprs(), salesSchema())
	ctx := proj.NewCtx()
	width := proj.Width()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena := data.NewRowArenaSized(len(rows) * width)
		out := make([]data.Row, len(rows))
		arena.NewRows(out, width)
		proj.EmitInto(ctx, rows, out)
		sinkRows = out
	}
}

var sinkRows []data.Row
