package exec

import (
	"fmt"
	"testing"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
)

// Kernel benchmarks for the data plane: each heavy operator (join, hash
// agg, exchange, sort) over the same fact/dimension data at varying
// partition counts, plus a TPC-DS-shaped end-to-end job. scripts/bench.sh
// runs these and records seed-vs-current numbers in BENCH_exec.json; the
// -short smoke in scripts/check.sh runs every case once.

const (
	benchFactRows = 100_000
	benchDimRows  = 10_000
)

// benchSchemas matches the sales/items shape used by the unit tests but at
// benchmark scale.
func benchEnv(b *testing.B, parts int) *Executor {
	b.Helper()
	cat := catalog.New()
	// Fixture rows are carved from one contiguous slab (and brand strings
	// interned) so the steady-state heap is a handful of large objects,
	// and carved partition-contiguously — the layout upstream operators
	// produce, since their emit arenas are per-partition. A per-row-
	// allocated, partition-interleaved fixture would add a fixed GC-mark
	// and cache-miss cost to every measured iteration, diluting the
	// kernel cost the benchmark is after.
	slab := make([]data.Value, benchFactRows*4+benchDimRows*2)
	part := func(key int64) int {
		return int(data.Row{data.Int(key)}.Hash64(0) % uint64(parts))
	}
	factPart := make([]int, benchFactRows)
	dimPart := make([]int, benchDimRows)
	offs := make([]int, parts)
	for i := range factPart {
		factPart[i] = part(int64(i % benchDimRows))
		offs[factPart[i]] += 4
	}
	for i := range dimPart {
		dimPart[i] = part(int64(i))
		offs[dimPart[i]] += 2
	}
	next := 0
	for p, n := range offs {
		offs[p] = next
		next += n
	}
	carve := func(p, n int) data.Row {
		r := data.Row(slab[offs[p] : offs[p]+n : offs[p]+n])
		offs[p] += n
		return r
	}
	var brands [26]data.Value
	for i := range brands {
		brands[i] = data.String_("brand_" + string(rune('a'+i)))
	}
	fact := data.NewTable("fact", "fact-v1", salesSchema(), parts)
	rr := 0
	for i := 0; i < benchFactRows; i++ {
		r := carve(factPart[i], 4)
		r[0] = data.Int(int64(i % benchDimRows))
		r[1] = data.Int(int64(i % 37))
		r[2] = data.Int(int64(1 + i%5))
		r[3] = data.Float(float64(i%1000) + 0.25)
		fact.AppendHash(r, []int{0}, &rr)
	}
	dim := data.NewTable("dim", "dim-v1", itemSchema(), parts)
	for i := 0; i < benchDimRows; i++ {
		r := carve(dimPart[i], 2)
		r[0] = data.Int(int64(i))
		r[1] = brands[i%26]
		dim.AppendHash(r, []int{0}, &rr)
	}
	cat.Register(fact)
	cat.Register(dim)
	return &Executor{Catalog: cat, Store: storage.NewStore()}
}

// benchParts is the partition-count axis shared by the kernel benchmarks.
var benchParts = []int{4, 16, 64}

func runKernelBench(b *testing.B, build func(parts int) *plan.Node) {
	for _, parts := range benchParts {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			e := benchEnv(b, parts)
			root := build(parts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(root, "bench", 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExecJoin(b *testing.B) {
	runKernelBench(b, func(parts int) *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			HashJoin(plan.Scan("dim", "dim-v1", itemSchema()), []int{0}, []int{0}).
			Output("o")
	})
}

func BenchmarkExecHashAgg(b *testing.B) {
	runKernelBench(b, func(parts int) *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			HashAgg([]int{0}, []plan.AggSpec{
				{Fn: plan.AggSum, Col: 3},
				{Fn: plan.AggCount, Col: 2},
				{Fn: plan.AggMax, Col: 3},
			}).
			Output("o")
	})
}

func BenchmarkExecExchange(b *testing.B) {
	runKernelBench(b, func(parts int) *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			ShuffleHash([]int{1}, parts).
			Output("o")
	})
}

func BenchmarkExecSort(b *testing.B) {
	runKernelBench(b, func(parts int) *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			Sort([]int{3}, []bool{true}).
			Output("o")
	})
}

// BenchmarkExecFilter isolates the per-row predicate path: a TPC-DS-shaped
// conjunctive predicate (integer comparison AND an arithmetic bound) over
// the fact table. This is the scalar hot path the expression compiler
// targets — the ns/op here is dominated by predicate evaluation.
func BenchmarkExecFilter(b *testing.B) {
	runKernelBench(b, func(parts int) *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			Filter(expr.And(
				expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1))),
				expr.B(expr.OpLt,
					expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
					expr.Lit(data.Float(1500))))).
			Output("o")
	})
}

// BenchmarkExecProjectEmit isolates the per-row emit path (one fresh row
// per input row) — the allocs/op number is the headline for the row arena.
func BenchmarkExecProjectEmit(b *testing.B) {
	runKernelBench(b, func(parts int) *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			Project([]string{"item", "rev", "qty"}, []expr.Expr{
				expr.C(0, "item"),
				expr.B(expr.OpMul, expr.C(2, "qty"), expr.C(3, "price")),
				expr.C(2, "qty"),
			}).
			Output("o")
	})
}

// BenchmarkExecTPCDS is a TPC-DS-shaped end-to-end job: filtered fact scan,
// dimension join, shuffle on the group key, hash aggregate, global sort,
// top-k — the operator mix the reuse experiments execute all day.
func BenchmarkExecTPCDS(b *testing.B) {
	runKernelBench(b, func(parts int) *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			Filter(expr.B(expr.OpGt, expr.C(2, "qty"), expr.Lit(data.Int(1)))).
			HashJoin(plan.Scan("dim", "dim-v1", itemSchema()), []int{0}, []int{0}).
			ShuffleHash([]int{0}, parts).
			HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}, {Fn: plan.AggCount, Col: 2}}).
			Sort([]int{1}, []bool{true}).
			Top(100).
			Output("o")
	})
}

// BenchmarkStorageReuseHitJob is the end-to-end reuse path: a consumer job
// whose plan was rewritten onto a materialized view (view scan → sort →
// top-k) runs over the columnar view store. The first consume decodes the
// at-rest payload; every following iteration is served decoded rows from
// the storage hot-view cache — the latency a recurring job sees when its
// computation was already done.
func BenchmarkStorageReuseHitJob(b *testing.B) {
	for _, parts := range benchParts {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			e := benchEnv(b, parts)
			base := plan.Scan("fact", "fact-v1", salesSchema()).
				HashJoin(plan.Scan("dim", "dim-v1", itemSchema()), []int{0}, []int{0}).
				ShuffleHash([]int{0}, parts).
				HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}, {Fn: plan.AggCount, Col: 2}})
			sig := signature.Of(base)
			path := storage.PathFor(sig.Precise, "builder")
			props := plan.PhysicalProps{
				Part: plan.Partitioning{Kind: plan.PartHash, Cols: []int{0}, Count: parts},
			}
			builder := base.Materialize(path, sig.Precise, sig.Normalized, props).Output("o")
			if _, err := e.Run(builder, "builder", 0); err != nil {
				b.Fatal(err)
			}
			consumer := plan.ViewScan(path, base.Schema(), sig.Precise, sig.Normalized).
				Sort([]int{1}, []bool{true}).
				Top(100).
				Output("o")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(consumer, "consumer", 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// nopObsHook is an installed-but-empty vertex hook: the cost of the
// observability seam itself (event assembly + dynamic dispatch), with no
// consumer behind it.
type nopObsHook struct{}

func (nopObsHook) VertexDone(string, VertexEvent) {}

// BenchmarkExecObsOverhead runs the join kernel with the vertex seam
// empty (hook=off, the state after SetObserver(nil)) and with a no-op
// hook installed (hook=on). scripts/bench.sh records the pair in
// BENCH_obs.json; the service-level guard in scripts/check.sh bounds
// the end-to-end cost this seam contributes to.
func BenchmarkExecObsOverhead(b *testing.B) {
	build := func() *plan.Node {
		return plan.Scan("fact", "fact-v1", salesSchema()).
			HashJoin(plan.Scan("dim", "dim-v1", itemSchema()), []int{0}, []int{0}).
			Output("joined")
	}
	for _, mode := range []struct {
		name string
		hook ObsHook
	}{{"hook=off", nil}, {"hook=on", nopObsHook{}}} {
		b.Run(mode.name, func(b *testing.B) {
			e := benchEnv(b, 16)
			e.Obs = mode.hook
			root := build()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(root, "bench", 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
