package exec

import (
	"math"

	"cloudviews/internal/plan"
)

// The cost model assigns each operator a simulated CPU cost in abstract
// "cost-seconds" as a function of its input size. Latency divides cost by
// the degree of parallelism; total CPU (the paper's PN-hours) sums costs.
// The absolute scale is arbitrary; what the benchmarks depend on is the
// *relative* ordering the paper relies on: shuffles and sorts are the most
// expensive operators, scans and scalar maps are cheap, user-defined
// operators are expensive, and reading a materialized view costs less than
// recomputing the subgraph it replaces (but is not free — large views can
// make reuse a loss, which is why the optimizer stays cost-based).
const (
	costPerRowExtract   = 1.0
	costPerRowFilter    = 0.2
	costPerRowProject   = 0.35
	costPerRowJoinBuild = 1.2
	costPerRowJoinProbe = 0.8
	costPerRowAgg       = 1.0
	costPerRowSortBase  = 0.4 // multiplied by log2(rows)
	costPerRowExchange  = 1.6 // serialize + network + deserialize
	costPerRowUnion     = 0.05
	costPerRowTop       = 0.05
	costPerRowUDO       = 3.0 // user code dominates
	costPerRowViewRead  = 0.6
	costPerRowViewWrite = 1.0
	costPerByte         = 0.0008
	costStartup         = 2.0 // per-operator fixed overhead (scheduling, setup)
)

// OperatorCost returns the simulated exclusive CPU cost of running an
// operator over rowsIn input rows (rowsOut for write-side accounting).
func OperatorCost(kind plan.OpKind, rowsIn, rowsOut, bytesIn int64) float64 {
	rows := float64(rowsIn)
	c := costStartup + float64(bytesIn)*costPerByte
	switch kind {
	case plan.OpExtract:
		c += rows * costPerRowExtract
	case plan.OpFilter:
		c += rows * costPerRowFilter
	case plan.OpProject:
		c += rows * costPerRowProject
	case plan.OpHashJoin, plan.OpMergeJoin:
		// rowsIn carries probe side; build side is added by the caller.
		c += rows * costPerRowJoinProbe
	case plan.OpHashGbAgg, plan.OpStreamGbAgg:
		c += rows * costPerRowAgg
	case plan.OpSort:
		if rows > 1 {
			c += rows * costPerRowSortBase * math.Log2(rows)
		}
	case plan.OpExchange:
		c += rows * costPerRowExchange
	case plan.OpUnionAll:
		c += rows * costPerRowUnion
	case plan.OpTop:
		c += rows * costPerRowTop
	case plan.OpProcess, plan.OpReduce:
		c += rows * costPerRowUDO
	case plan.OpViewScan:
		c += float64(rowsOut) * costPerRowViewRead
	case plan.OpMaterialize:
		c += float64(rowsOut) * costPerRowViewWrite
	case plan.OpSpool, plan.OpOutput:
		// free pass-throughs beyond startup
	}
	return c
}

// Stats records the measured execution profile of one operator — the
// runtime statistics the feedback loop reconciles with compile-time plans
// (paper §5.1): cardinality, data size, exclusive cost, and latency.
type Stats struct {
	Rows           int64   // output cardinality
	Bytes          int64   // output size
	ExclusiveCost  float64 // this operator's own simulated CPU cost
	CumulativeCost float64 // cost of the whole subgraph rooted here
	Latency        float64 // critical-path simulated seconds up to and including this operator
	DOP            int     // degree of parallelism the operator ran with
}
