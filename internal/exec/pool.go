package exec

import (
	"runtime"
	"sync"
)

// pool is the package-level worker pool shared by every executor in the
// process. Both the DAG stage scheduler (schedule.go) and per-partition
// operator fan-out (forEachPartition) draw from the same token budget,
// sized to the machine, so concurrent jobs cannot multiply goroutines: a
// 256-partition table never spawns 256 goroutines per operator, and a
// batch of in-flight jobs shares one budget instead of stacking pools.
var pool = newWorkerPool(runtime.GOMAXPROCS(0))

type workerPool struct {
	tokens chan struct{}
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	return &workerPool{tokens: make(chan struct{}, size)}
}

// trySpawn runs fn on a pool worker if a token is free and returns true;
// otherwise it returns false and the caller should run fn inline. The
// inline fallback (rather than queueing) keeps the pool deadlock-free
// under nesting: an operator already running on a pool worker can fan its
// partitions out through the same pool without ever waiting on itself.
func (p *workerPool) trySpawn(wg *sync.WaitGroup, fn func()) bool {
	select {
	case p.tokens <- struct{}{}:
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-p.tokens }()
			fn()
		}()
		return true
	default:
		return false
	}
}

// size returns the pool's worker budget.
func (p *workerPool) size() int { return cap(p.tokens) }
