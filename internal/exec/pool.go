package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is the package-level worker pool shared by every executor in the
// process. Both the DAG stage scheduler (schedule.go) and per-partition
// operator fan-out (forEachPartition) draw from the same token budget,
// sized to the machine, so concurrent jobs cannot multiply goroutines: a
// 256-partition table never spawns 256 goroutines per operator, and a
// batch of in-flight jobs shares one budget instead of stacking pools.
var pool = newWorkerPool(runtime.GOMAXPROCS(0))

type workerPool struct {
	tokens chan struct{}
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	return &workerPool{tokens: make(chan struct{}, size)}
}

// trySpawn runs fn on a pool worker if a token is free and returns true;
// otherwise it returns false and the caller should run fn inline. The
// inline fallback (rather than queueing) keeps the pool deadlock-free
// under nesting: an operator already running on a pool worker can fan its
// partitions out through the same pool without ever waiting on itself.
func (p *workerPool) trySpawn(wg *sync.WaitGroup, fn func()) bool {
	select {
	case p.tokens <- struct{}{}:
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-p.tokens }()
			fn()
		}()
		return true
	default:
		return false
	}
}

// size returns the pool's worker budget.
func (p *workerPool) size() int { return cap(p.tokens) }

// parallelRange runs fn(i) for every i in [0, n), fanning out through the
// shared pool. Indexes are claimed by atomic counter, so the fan-out
// occupies at most the pool's worker budget plus the calling goroutine,
// and fn runs exactly once per index. fn must only write state owned by
// its index (output slot i, disjoint slice ranges); parallelRange returns
// only after every index completes, which establishes the happens-before
// edge making those writes visible to the caller.
func parallelRange(n int, fn func(i int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for helpers := 0; helpers < n-1; helpers++ {
		if !pool.trySpawn(&wg, work) {
			break
		}
	}
	work()
	wg.Wait()
}
