package exec

import (
	"context"
	"sync"

	"cloudviews/internal/data"
)

// shuffle.go holds the partition-parallel data-movement kernels shared by
// Exchange, Materialize (enforceDesign), Sort, StreamAgg, and Reduce:
// deterministic parallel scatter and the parallel-sort + k-way-merge pair.
// The determinism contract for every kernel here is documented in
// DESIGN.md §9: outputs are a pure function of (input partitions, operator
// parameters), never of goroutine scheduling.

// parallelRowThreshold is the input size below which the kernels stay
// serial: scatter matrices and per-partition sort copies cost more than
// they save on tiny inputs.
const parallelRowThreshold = 256

// intLikeKind reports whether k stores its payload in Value.I — the kinds
// eligible for the single-column key-hash fast path below.
func intLikeKind(k data.Kind) bool {
	return k == data.KindInt || k == data.KindDate || k == data.KindBool
}

// intKeyHash is the cheap deterministic hash for single int-like key
// columns (murmur fmix64 over payload and kind). Join chain lookup and
// group identification only need *a* deterministic, Equal-consistent hash
// — not the canonical Value.Hash64 byte-stream — because no output byte
// depends on those internal hash values: join output order follows build
// scan order, and aggregate output partitioning uses the canonical hash
// computed once per group. Mixing the kind keeps NULL (K=0, I=0) distinct
// from Int(0), matching data.Equal.
func intKeyHash(v data.Value) uint64 {
	h := uint64(v.I) ^ (uint64(v.K) * 0x9e3779b97f4a7c15)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// nextPow2 returns the smallest power of two >= n (and >= 8), the slot
// count used by the open-addressed hash indexes in join and agg.
func nextPow2(n int) int {
	s := 8
	for s < n {
		s <<= 1
	}
	return s
}

// int32Pool recycles per-partition target buffers for scatter passes. The
// buffers never escape scatterRows, so pooling them is safe.
var int32Pool = sync.Pool{New: func() any { return new([]int32) }}

func getInt32Buf(n int) (*[]int32, []int32) {
	p := int32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	return p, (*p)[:n]
}

// scatterRows repartitions in into count output partitions, where
// target(i, j, r) names the destination of row j of input partition i.
// Output partition p holds its rows in global input scan order (input
// partitions in index order, rows in order within each) — exactly the
// order the serial append loop produced. The scatter runs in three
// passes: a parallel count pass per input partition, a serial prefix-sum
// handing each (input, output) pair a disjoint destination range, and a
// parallel placement pass writing rows directly into the output slices.
// Writers touch disjoint ranges, so the placement pass is lock-free.
//
// Cancellation polls sit at partition boundaries. A cancelled scatter may
// return partial output (even output slices with nil row entries from a
// skipped placement pass) — callers never see it, because the job fails at
// the next vertex checkpoint — but every pass keeps its own bookkeeping
// intact: count buffers are still allocated and pooled buffers still
// returned, so no pass dereferences state a skipped sibling never built.
func scatterRows(ctx context.Context, in partitions, inRows int64, count int, target func(i, j int, r data.Row) int) partitions {
	if count < 1 {
		count = 1
	}
	if len(in) == 0 {
		return make(partitions, count)
	}
	if inRows < parallelRowThreshold || len(in) == 1 {
		// Serial fast path: the original append loop.
		out := make(partitions, count)
		for i, part := range in {
			if ctx.Err() != nil {
				return out
			}
			for j, r := range part {
				p := target(i, j, r)
				out[p] = append(out[p], r)
			}
		}
		return out
	}

	targets := make([]*[]int32, len(in))
	counts := make([][]int32, len(in))
	parallelRange(len(in), func(i int) {
		part := in[i]
		buf, t := getInt32Buf(len(part))
		c := make([]int32, count)
		if ctx.Err() == nil {
			for j, r := range part {
				p := target(i, j, r)
				t[j] = int32(p)
				c[p]++
			}
		}
		targets[i] = buf
		counts[i] = c
	})

	// Prefix sums: base[i][p] is where input i's rows destined for output p
	// begin within out[p].
	totals := make([]int64, count)
	base := make([][]int64, len(in))
	for i := range in {
		b := make([]int64, count)
		for p := 0; p < count; p++ {
			b[p] = totals[p]
			totals[p] += int64(counts[i][p])
		}
		base[i] = b
	}
	out := make(partitions, count)
	for p := range out {
		out[p] = make([]data.Row, totals[p])
	}
	parallelRange(len(in), func(i int) {
		// Cancellation is monotone, so a skipped placement pass implies the
		// matching count pass was (or will read as) skipped too — target
		// buffers holding stale pool garbage are never dereferenced.
		if ctx.Err() == nil {
			pos := base[i] // exclusively owned by this index after the prefix pass
			t := (*targets[i])[:len(in[i])]
			for j, r := range in[i] {
				p := t[j]
				out[p][pos[p]] = r
				pos[p]++
			}
		}
		int32Pool.Put(targets[i])
	})
	return out
}

// sortedFlatten returns all rows of in, stably sorted by keys/desc —
// byte-identical to data.SortRows over in.flatten(): each partition is
// copied and stably sorted in parallel, then merged k ways with ties
// breaking to the lower partition index. Because the flatten order is
// partition-major, "lower partition first on tie" reproduces exactly what
// one global stable sort over the flattened slice would produce.
func sortedFlatten(ctx context.Context, in partitions, inRows int64, keys []int, desc []bool) []data.Row {
	nonEmpty := 0
	for _, p := range in {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 || inRows < parallelRowThreshold {
		rows := in.flatten()
		data.SortRows(rows, keys, desc)
		return rows
	}
	// Copy every partition into one backing slice, sort the disjoint
	// sub-slices in parallel, then merge.
	backing := make([]data.Row, inRows)
	runs := make([][]data.Row, 0, nonEmpty)
	off := 0
	for _, p := range in {
		if len(p) == 0 {
			continue
		}
		runs = append(runs, backing[off:off+len(p):off+len(p)])
		copy(runs[len(runs)-1], p)
		off += len(p)
	}
	parallelRange(len(runs), func(i int) {
		if ctx.Err() != nil {
			return
		}
		data.SortRows(runs[i], keys, desc)
	})
	// A cancelled job skips the k-way merge entirely: the runs may be
	// unsorted, and the caller's vertex fails at its checkpoint anyway.
	if ctx.Err() != nil {
		return nil
	}
	return mergeRuns(runs, inRows, keys, desc)
}

// mergeRuns merges pre-sorted runs into one slice using a binary heap of
// run cursors. The heap comparator breaks ties on run index, which keeps
// the merge stable with respect to run order.
func mergeRuns(runs [][]data.Row, total int64, keys []int, desc []bool) []data.Row {
	if len(runs) == 1 {
		return runs[0]
	}
	out := make([]data.Row, 0, total)
	type cursor struct {
		rows []data.Row
		pos  int
		src  int
	}
	heap := make([]cursor, 0, len(runs))
	less := func(a, b cursor) bool {
		c := data.CompareRows(a.rows[a.pos], b.rows[b.pos], keys, desc)
		if c != 0 {
			return c < 0
		}
		return a.src < b.src
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && less(heap[l], heap[min]) {
				min = l
			}
			if r < len(heap) && less(heap[r], heap[min]) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for i, run := range runs {
		heap = append(heap, cursor{rows: run, src: i})
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		top := &heap[0]
		out = append(out, top.rows[top.pos])
		top.pos++
		if top.pos == len(top.rows) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return out
}

// sliceEquiDepth cuts a globally sorted row slice into count equi-depth
// partitions — the layout both the range exchange and range-designed
// views enforce.
func sliceEquiDepth(rows []data.Row, count int) partitions {
	out := make(partitions, count)
	per := (len(rows) + count - 1) / count
	for i := 0; i < count; i++ {
		lo, hi := i*per, (i+1)*per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		out[i] = rows[lo:hi]
	}
	return out
}

// fullRowTieBreak returns keys extended with every column of the row shape
// (taken from the first non-empty partition), making the sort key a total
// order for byte-distinct rows.
func fullRowTieBreak(keys []int, in partitions) []int {
	out := append([]int(nil), keys...)
	for _, p := range in {
		if len(p) > 0 {
			for i := range p[0] {
				out = append(out, i)
			}
			return out
		}
	}
	return out
}

// parallelBytes sums Row.ByteSize over all partitions, fanning the walk
// out per partition. Per-partition subtotals are combined in partition
// order; integer addition makes the result order-insensitive anyway.
func parallelBytes(in partitions, rows int64) int64 {
	if rows < parallelRowThreshold || len(in) < 2 {
		return in.bytes()
	}
	subs := make([]int64, len(in))
	parallelRange(len(in), func(i int) {
		var n int64
		for _, r := range in[i] {
			n += r.ByteSize()
		}
		subs[i] = n
	})
	var total int64
	for _, s := range subs {
		total += s
	}
	return total
}
