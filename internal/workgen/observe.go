package workgen

import (
	"math/rand"

	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/workload"
)

// observe.go synthesizes workload-repository observations directly from
// template plans, without executing anything — the fuel for analyzer tests
// and benchmarks at scales (hundreds of thousands of observations) where
// actually running every job would dominate by orders of magnitude.
// Signatures are the real thing, computed from the instantiated plans, so
// overlap structure (cloned prefixes, producer/consumer pipelines,
// recurrence) is exactly what execution would have produced; only the
// runtime statistics are drawn from a per-job deterministic generator.
// Data delivery is skipped: no plan runs, and the recurring day parameter
// already varies precise signatures across instances while normalized
// signatures — the analyzer's grouping key — stay stable.

// SyntheticObservations instantiates every template for recurring
// instances [0, instances) and returns one observation per subgraph, in
// submission order — the same order repository ingestion would record
// them. Statistics are deterministic: each job's generator is seeded from
// its job ID and the profile seed, so the output is a pure function of
// the profile regardless of how many instances are generated or batched.
func (w *Workload) SyntheticObservations(instances int64) []workload.Observation {
	var out []workload.Observation
	for i := int64(0); i < instances; i++ {
		for _, job := range w.JobsForInstance(i) {
			out = appendJobObservations(out, job, w.Profile.Seed)
		}
	}
	return out
}

// SyntheticUntil generates whole recurring instances until at least
// minObs observations exist (benchmarks ask for observation counts, not
// instance counts). Returns nil if the workload produces no observations.
func (w *Workload) SyntheticUntil(minObs int) []workload.Observation {
	var out []workload.Observation
	for i := int64(0); len(out) < minObs; i++ {
		n := len(out)
		for _, job := range w.JobsForInstance(i) {
			out = appendJobObservations(out, job, w.Profile.Seed)
		}
		if len(out) == n {
			// Nothing due this instance; every period divides some later
			// instance, so only an empty template set stalls forever.
			if i > 0 && n == 0 {
				return nil
			}
		}
	}
	return out
}

// appendJobObservations computes the job's subgraph signatures and
// synthesizes their runtime statistics.
func appendJobObservations(out []workload.Observation, job Job, seed int64) []workload.Observation {
	subs := signature.NewComputer().AllSubgraphs(job.Root)
	if len(subs) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(int64(signature.Hash64(job.Meta.JobID)) ^ seed))
	base := len(out)
	var maxCum float64
	for _, s := range subs {
		ops := plan.Count(s.Node)
		rows := 50 + rng.Int63n(20_000)
		bytes := rows * (16 + rng.Int63n(240))
		excl := 5 + rng.Float64()*300
		cum := excl + float64(ops-1)*(20+rng.Float64()*180)
		if cum > maxCum {
			maxCum = cum
		}
		out = append(out, workload.Observation{
			Job:            job.Meta,
			PreciseSig:     s.Sig.Precise,
			NormSig:        s.Sig.Normalized,
			RootOp:         s.Node.Kind,
			Rows:           rows,
			Bytes:          bytes,
			ExclusiveCost:  excl,
			CumulativeCost: cum,
			Latency:        cum * (0.4 + rng.Float64()*0.4),
			Inputs:         plan.Inputs(s.Node),
			Props:          plan.DeriveProps(s.Node),
			Ops:            ops,
		})
	}
	// Job totals: the root's cumulative cost plus unmodeled overhead.
	jobCPU := maxCum * (1.2 + rng.Float64()*0.6)
	jobLat := jobCPU * (0.3 + rng.Float64()*0.5)
	for i := base; i < len(out); i++ {
		out[i].JobCPU = jobCPU
		out[i].JobLatency = jobLat
	}
	return out
}
