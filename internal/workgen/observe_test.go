package workgen

import (
	"reflect"
	"testing"

	"cloudviews/internal/workload"
)

// TestSyntheticObservationsDeterministic pins the generator: same profile,
// same observations, bit for bit — and batching by instance must not
// change anything (each job's statistics generator is seeded from the job
// ID alone).
func TestSyntheticObservationsDeterministic(t *testing.T) {
	p := DefaultProfile("synth", 5)
	a := Generate(p).SyntheticObservations(3)
	b := Generate(p).SyntheticObservations(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same profile differ")
	}
	if len(a) == 0 {
		t.Fatal("no observations generated")
	}
}

// TestSyntheticObservationsShape checks the observations carry what the
// analyzer mines: real recurring overlap (same normalized signature across
// instances), varying precise signatures, plausible statistics, and job
// totals shared within a job.
func TestSyntheticObservationsShape(t *testing.T) {
	p := DefaultProfile("shape", 9)
	obs := Generate(p).SyntheticObservations(2)

	bySig := map[string][]int{}
	byJob := map[string]float64{}
	for i, o := range obs {
		if o.NormSig == "" || o.PreciseSig == "" {
			t.Fatalf("observation %d missing signatures", i)
		}
		if o.CumulativeCost < o.ExclusiveCost || o.Rows <= 0 || o.Bytes <= 0 {
			t.Fatalf("observation %d has implausible stats: %+v", i, o)
		}
		if prev, ok := byJob[o.Job.JobID]; ok && prev != o.JobCPU {
			t.Fatalf("job %s has inconsistent JobCPU", o.Job.JobID)
		}
		byJob[o.Job.JobID] = o.JobCPU
		if o.JobCPU < o.CumulativeCost {
			t.Fatalf("observation %d costs more than its job: %+v", i, o)
		}
		bySig[o.NormSig] = append(bySig[o.NormSig], i)
	}
	recurring, preciseVaries := 0, 0
	for _, idxs := range bySig {
		insts := map[int64]bool{}
		precise := map[string]bool{}
		for _, i := range idxs {
			insts[obs[i].Job.Instance] = true
			precise[obs[i].PreciseSig] = true
		}
		if len(insts) >= 2 {
			recurring++
			if len(precise) >= 2 {
				preciseVaries++
			}
		}
	}
	if recurring == 0 {
		t.Error("no normalized signature recurs across instances")
	}
	// Subgraphs above the recurring filter carry the day parameter, so
	// their precise signatures differ per instance (subgraphs below it —
	// bare scans, side branches — legitimately do not).
	if preciseVaries == 0 {
		t.Error("no recurring computation varies its precise signature across instances")
	}

	// SyntheticUntil delivers at least the requested volume and ingests
	// cleanly.
	more := Generate(p).SyntheticUntil(len(obs) + 100)
	if len(more) <= len(obs) {
		t.Fatalf("SyntheticUntil(%d) returned %d observations", len(obs)+100, len(more))
	}
	repo := workload.NewRepository()
	repo.Append(more...)
	if repo.NumJobs() == 0 || len(repo.Observations()) != len(more) {
		t.Fatalf("repository ingest lost observations")
	}
}
