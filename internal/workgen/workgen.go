// Package workgen generates recurring, overlapping analytics workloads
// that statistically resemble the production SCOPE workloads of paper §2:
// clusters of virtual clusters (VCs) grouped into business units, users
// submitting recurring job templates, and — crucially — computation
// overlap arising from the two mechanisms the paper identifies:
//
//  1. script cloning: users start from someone else's script and extend it
//     (a template shares a plan *prefix* with its parent), and
//  2. producer/consumer pipelines: many consumers apply the same
//     post-processing to the same cooked inputs.
//
// Templates are lists of deterministic "steps", so a cloned prefix
// instantiates to an identical subplan — identical signatures — across
// templates and recurring instances. Popularity of clone parents is
// Zipf-skewed, reproducing the heavy-tailed overlap frequencies of
// Figure 5(a).
package workgen

import (
	"fmt"
	"math/rand"

	"cloudviews/internal/catalog"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/workload"
)

// Profile configures one generated cluster.
type Profile struct {
	Name string
	// Seed makes the whole cluster deterministic.
	Seed int64
	// BusinessUnits and VCsPerBU shape the tenant hierarchy.
	BusinessUnits int
	VCsPerBU      int
	// Users across the cluster.
	Users int
	// Templates is the number of recurring script templates.
	Templates int
	// CloneRate is the probability that a new template clones an existing
	// template's prefix (the overlap knob; cluster3 in Figure 1 is low).
	CloneRate float64
	// ZipfS (>1) skews clone-parent popularity.
	ZipfS float64
	// InputsPerBU is how many cooked input streams each BU produces.
	InputsPerBU int
	// UniqueInputRate is the probability that a fresh (non-cloned)
	// template reads its own private input stream instead of a shared BU
	// stream. High values reduce cross-job overlap (cluster3 of Figure 1).
	UniqueInputRate float64
	// RowsPerInput is the per-instance batch size of each input.
	RowsPerInput int
	// DuplicateJobRate is the probability a template is submitted more
	// than once per instance (the "redundant jobs" of §8).
	DuplicateJobRate float64
	// MaxExtraSteps bounds how many operators a template appends beyond
	// its (possibly cloned) prefix.
	MaxExtraSteps int
	// KeyDomain is the cardinality of join/group keys. Wide domains keep
	// aggregation outputs large, so downstream operators stay expensive
	// and shared prefixes are a modest fraction of job cost (Figure 5d).
	KeyDomain int64
	// MaxSideBranches bounds the per-template unshared side branches
	// (each template draws 0..MaxSideBranches of them).
	MaxSideBranches int
}

// DefaultProfile returns a mid-sized cluster with substantial overlap.
func DefaultProfile(name string, seed int64) Profile {
	return Profile{
		Name:             name,
		Seed:             seed,
		BusinessUnits:    4,
		VCsPerBU:         5,
		Users:            30,
		Templates:        120,
		CloneRate:        0.6,
		ZipfS:            1.5,
		InputsPerBU:      3,
		UniqueInputRate:  0.45,
		RowsPerInput:     400,
		DuplicateJobRate: 0.05,
		MaxExtraSteps:    3,
		KeyDomain:        512,
		MaxSideBranches:  2,
	}
}

// stepKind enumerates template pipeline steps.
type stepKind int

const (
	stepFilterParam stepKind = iota // day == @day (recurring delta)
	stepFilterConst
	stepShuffle
	stepAgg
	stepProject
	stepSort
	stepProcess
	stepJoinDim
	stepTop
)

// step is one deterministic pipeline operation. Steps are pure data so a
// cloned prefix always instantiates to an identical subplan.
type step struct {
	kind stepKind
	// Parameters, interpreted per kind.
	a, b  int
	f     float64
	name  string
	count int
}

// Template is one recurring script.
type Template struct {
	ID     string
	BU     string
	VC     string
	User   string
	Period int64
	// Input is the primary cooked stream; Dim the joined dimension (if any).
	Input string
	// steps is the pipeline; a cloned template shares a prefix with its
	// parent (SharedPrefix steps).
	steps        []step
	SharedPrefix int
	ParentID     string
	// sides are the template's own side branches: independent pipelines
	// joined into the main one. Jobs are DAGs, not chains, and the
	// unshared branches are what keep a shared prefix a small fraction
	// of total job cost (Figure 5d).
	sides []sideBranch
	// Copies is how many times the template runs per instance.
	Copies int
}

// sideBranch is a fixed-shape scan→filter→shuffle→aggregate pipeline with
// template-specific constants, joined into the main pipeline on the key.
type sideBranch struct {
	input string
	f     float64
	parts int
}

// Workload is a generated cluster: catalog plus templates.
type Workload struct {
	Profile   Profile
	Catalog   *catalog.Catalog
	Templates []*Template
	inputs    []string
	dims      []string
	rng       *rand.Rand
}

// inputSchema is the shape of every cooked input stream.
func inputSchema() data.Schema {
	return data.Schema{
		{Name: "key", Kind: data.KindInt},
		{Name: "cat", Kind: data.KindString},
		{Name: "day", Kind: data.KindDate},
		{Name: "val", Kind: data.KindFloat},
		{Name: "cnt", Kind: data.KindInt},
	}
}

func dimSchema() data.Schema {
	return data.Schema{
		{Name: "id", Kind: data.KindInt},
		{Name: "label", Kind: data.KindString},
	}
}

// Generate builds the cluster: inputs registered in a fresh catalog (with
// instance 0 delivered) and all templates.
func Generate(p Profile) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	w := &Workload{Profile: p, Catalog: catalog.New(), rng: rng}

	// Producer tables: per-BU cooked streams plus one dimension each.
	for b := 0; b < p.BusinessUnits; b++ {
		bu := fmt.Sprintf("bu%d", b)
		for i := 0; i < p.InputsPerBU; i++ {
			w.inputs = append(w.inputs, fmt.Sprintf("%s_stream%d", bu, i))
		}
		w.dims = append(w.dims, fmt.Sprintf("%s_dim", bu))
	}
	for _, in := range w.inputs {
		w.Catalog.Register(data.NewTable(in, "pending", inputSchema(), 4))
	}
	keyDomain := p.KeyDomain
	if keyDomain < 1 {
		keyDomain = 64
	}
	for _, d := range w.dims {
		t := data.NewTable(d, "dim-v1", dimSchema(), 2)
		rr := 0
		for i := int64(0); i < keyDomain; i++ {
			t.AppendHash(data.Row{data.Int(i), data.String_(fmt.Sprintf("%s_%d", d, i%8))}, []int{0}, &rr)
		}
		w.Catalog.Register(t)
	}

	// Templates with Zipf-skewed cloning. Fresh templates may register
	// private input streams, so instance 0 is delivered afterwards.
	for i := 0; i < p.Templates; i++ {
		bu := i % p.BusinessUnits
		tpl := &Template{
			ID:     fmt.Sprintf("%s-tpl%03d", p.Name, i),
			BU:     fmt.Sprintf("bu%d", bu),
			VC:     fmt.Sprintf("bu%d_vc%d", bu, rng.Intn(p.VCsPerBU)),
			User:   fmt.Sprintf("user%02d", rng.Intn(max(1, p.Users))),
			Period: pickPeriod(rng),
			Copies: 1,
		}
		if rng.Float64() < p.DuplicateJobRate {
			// Most duplicated templates run 2–3 times per instance, but a
			// minority are scheduled far more often than new data arrives
			// (§8 "Discarding redundant jobs") — the heavy tail behind the
			// paper's within-VC overlap frequencies reaching 100+.
			if rng.Intn(5) == 0 {
				tpl.Copies = 6 + rng.Intn(14)
			} else {
				tpl.Copies = 2 + rng.Intn(2)
			}
		}
		// Clone propensity varies by business unit: some BUs are tight
		// producer/consumer pipelines full of derived scripts, others
		// mostly bespoke work. This is what makes per-VC overlap span
		// the 0–100% range of Figure 2(a).
		cloneRate := p.CloneRate * w.buFactor(bu)
		if cloneRate > 0.95 {
			cloneRate = 0.95
		}
		if len(w.Templates) > 0 && rng.Float64() < cloneRate {
			// Zipf over the templates created so far: early templates are
			// cloned most, producing the heavy-tailed overlap skew.
			zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(len(w.Templates)-1))
			parent := w.Templates[int(zipf.Uint64())]
			w.cloneExtend(tpl, parent)
		} else {
			w.fresh(tpl, bu)
		}
		// Template-specific side branches over the template's own input:
		// a second look at the same data joined back in. Keeping the
		// branch on the template's input (rather than a shared stream)
		// means side branches never leak overlap into otherwise-disjoint
		// VCs.
		sideCount := 0
		if p.MaxSideBranches > 0 {
			sideCount = rng.Intn(p.MaxSideBranches + 1)
		}
		for s := 0; s < sideCount; s++ {
			tpl.sides = append(tpl.sides, sideBranch{
				input: tpl.Input,
				f:     float64(rng.Intn(900) + 50),
				parts: 4 << rng.Intn(3),
			})
		}
		w.Templates = append(w.Templates, tpl)
	}
	w.DeliverInstance(0)
	return w
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pickPeriod(rng *rand.Rand) int64 {
	switch rng.Intn(10) {
	case 0:
		return 7 // weekly
	case 1:
		return 30 // monthly
	default:
		return 1 // hourly/daily
	}
}

// buFactor scales a business unit's propensity to share: low-index BUs
// are bespoke shops, high-index BUs are tight producer/consumer pipelines.
func (w *Workload) buFactor(bu int) float64 {
	return 0.3 + 1.4*float64(bu)/float64(max(1, w.Profile.BusinessUnits-1))
}

// fresh creates a template from scratch, over either a shared BU stream or
// a private stream of its own (no cross-job overlap possible on the latter
// except through cloning). Bespoke BUs (low buFactor) lean hard toward
// private inputs, which is what produces zero-overlap VCs (Figure 2a).
func (w *Workload) fresh(tpl *Template, bu int) {
	p := w.Profile
	uniq := 1 - (1-p.UniqueInputRate)*w.buFactor(bu)
	if uniq < 0.05 {
		uniq = 0.05
	}
	if uniq > 0.98 {
		uniq = 0.98
	}
	if w.rng.Float64() < uniq {
		name := fmt.Sprintf("%s_%s_priv%d", tpl.BU, tpl.User, len(w.inputs))
		w.Catalog.Register(data.NewTable(name, "pending", inputSchema(), 4))
		w.inputs = append(w.inputs, name)
		tpl.Input = name
	} else {
		tpl.Input = w.inputs[bu*p.InputsPerBU+w.rng.Intn(p.InputsPerBU)]
	}
	// Every recurring template starts with the same data preparation:
	// select the instance's batch, then repartition on the key. The
	// canonical leading shuffle is why so many production overlaps are
	// rooted at exchange operators (§2.3): independent templates over the
	// same stream share scan+filter+shuffle verbatim.
	tpl.steps = []step{{kind: stepFilterParam}, {kind: stepShuffle, count: 16}}
	w.appendRandomSteps(tpl, 1+w.rng.Intn(max(1, p.MaxExtraSteps)))
}

// cloneExtend copies the parent's prefix and appends new steps — the
// "start from someone else's script" mechanism.
func (w *Workload) cloneExtend(tpl *Template, parent *Template) {
	tpl.Input = parent.Input
	tpl.ParentID = parent.ID
	// The shared prefix is capped: users copy the data-preparation head
	// of a script (scan, recurring filter, a shuffle or sort), then add
	// their own substantial analysis. That keeps shared computations a
	// modest fraction of job cost (Figure 5d) while still rooting many
	// overlaps at shuffle/sort boundaries (§2.3). A third of the clones
	// copy the longest allowed prefix.
	maxPrefix := len(parent.steps)
	if maxPrefix > 5 {
		maxPrefix = 5
	}
	prefix := 1 + w.rng.Intn(maxPrefix)
	if w.rng.Intn(3) == 0 {
		prefix = maxPrefix
	}
	tpl.steps = append([]step(nil), parent.steps[:prefix]...)
	tpl.SharedPrefix = prefix
	w.appendRandomSteps(tpl, 2+w.rng.Intn(max(1, w.Profile.MaxExtraSteps)))
}

// appendRandomSteps extends the pipeline with schema-safe random steps.
// Shuffles and sorts are weighted high: overlaps concentrate at shuffle
// boundaries in production (paper §2.3), and pipelines repartition often.
func (w *Workload) appendRandomSteps(tpl *Template, n int) {
	rng := w.rng
	for i := 0; i < n; i++ {
		switch r := rng.Intn(100); {
		case r < 22: // shuffle (1 in 4 is a range exchange / parallel sort)
			tpl.steps = append(tpl.steps, step{kind: stepShuffle, count: 4 << rng.Intn(3), a: boolToInt(rng.Intn(4) == 0)})
		case r < 38: // sort
			tpl.steps = append(tpl.steps, step{kind: stepSort, a: rng.Intn(2)})
		case r < 50: // filter
			tpl.steps = append(tpl.steps, step{kind: stepFilterConst, f: float64(rng.Intn(800))})
		case r < 62: // group-by aggregate
			tpl.steps = append(tpl.steps, step{kind: stepAgg, a: rng.Intn(2)})
		case r < 70: // column remap
			tpl.steps = append(tpl.steps, step{kind: stepProject})
		case r < 80:
			// Shared UDO library: few distinct names cluster-wide, so
			// user code overlaps across teams (Figure 4d).
			tpl.steps = append(tpl.steps, step{kind: stepProcess,
				name: fmt.Sprintf("udolib%d", rng.Intn(4))})
		case r < 90:
			tpl.steps = append(tpl.steps, step{kind: stepJoinDim, name: tpl.BU + "_dim"})
		default:
			tpl.steps = append(tpl.steps, step{kind: stepTop, count: 10 + rng.Intn(90)})
		}
	}
}

// DeliverInstance installs instance i's data batch for every input stream.
func (w *Workload) DeliverInstance(i int64) {
	day := int64(17000 + i)
	keyDomain := w.Profile.KeyDomain
	if keyDomain < 1 {
		keyDomain = 64
	}
	for idx, in := range w.inputs {
		guid := fmt.Sprintf("%s-v%d", in, i)
		fill := func(t *data.Table) {
			g := data.NewGenerator(w.Profile.Seed ^ (int64(idx) << 16) ^ i)
			rr := 0
			for r := 0; r < w.Profile.RowsPerInput; r++ {
				t.AppendHash(data.Row{
					data.Int(g.Rand().Int63n(keyDomain)),
					data.String_(fmt.Sprintf("cat%d", g.Rand().Int63n(12))),
					data.Date(day),
					data.Float(float64(g.Rand().Int63n(1000))),
					data.Int(g.Rand().Int63n(10)),
				}, []int{0}, &rr)
			}
		}
		if err := w.Catalog.Deliver(in, guid, fill); err != nil {
			// First delivery happens before any reads; Register path
			// guarantees the table exists, so this is unreachable.
			panic(err)
		}
	}
}

// Job is one submittable job instance.
type Job struct {
	Meta workload.JobMeta
	Root *plan.Node
	// Template backs the job (for coordination experiments).
	Template *Template
}

// JobsForInstance instantiates every template for recurring instance i, in
// submission order (template order with duplicates appended).
func (w *Workload) JobsForInstance(i int64) []Job {
	var jobs []Job
	order := 0
	for _, tpl := range w.Templates {
		if i%tpl.Period != 0 {
			continue // not due this instance
		}
		for c := 0; c < tpl.Copies; c++ {
			jobID := fmt.Sprintf("%s-i%d", tpl.ID, i)
			if c > 0 {
				jobID = fmt.Sprintf("%s-dup%d", jobID, c)
			}
			jobs = append(jobs, Job{
				Meta: workload.JobMeta{
					JobID:        jobID,
					Cluster:      w.Profile.Name,
					BusinessUnit: tpl.BU,
					VC:           tpl.VC,
					User:         tpl.User,
					TemplateID:   tpl.ID,
					Instance:     i,
					Period:       tpl.Period,
					SubmitOrder:  order,
				},
				Root:     w.Instantiate(tpl, i),
				Template: tpl,
			})
			order++
		}
	}
	return jobs
}

// Instantiate builds the template's plan for recurring instance i: the
// main pipeline (whose prefix may be shared with other templates) with the
// template's own side branches joined in at the end.
func (w *Workload) Instantiate(tpl *Template, i int64) *plan.Node {
	day := int64(17000 + i)
	guid := w.Catalog.GUID(tpl.Input)
	n := plan.Scan(tpl.Input, guid, inputSchema())
	for _, s := range tpl.steps {
		n = applyStep(w.Catalog, n, s, day)
	}
	for _, sb := range tpl.sides {
		n = w.joinSideBranch(n, sb)
	}
	return n.Output(tpl.ID)
}

// joinSideBranch builds the branch pipeline and joins it into main on the
// key columns; if main has no integer column left the branch is skipped.
func (w *Workload) joinSideBranch(main *plan.Node, sb sideBranch) *plan.Node {
	intCol, _, _ := colsByKind(main.Schema())
	if intCol < 0 {
		return main
	}
	branch := plan.Scan(sb.input, w.Catalog.GUID(sb.input), inputSchema()).
		Filter(expr.B(expr.OpLt, expr.C(3, "val"), expr.Lit(data.Float(sb.f)))).
		ShuffleHash([]int{0}, sb.parts).
		HashAgg([]int{0}, []plan.AggSpec{
			{Fn: plan.AggCount, Col: 1},
			{Fn: plan.AggSum, Col: 3},
		})
	return main.HashJoin(branch, []int{intCol}, []int{0})
}

// applyStep interprets one step against the current plan node, keeping the
// pipeline schema-safe by inspecting the node's derived schema.
func applyStep(cat *catalog.Catalog, n *plan.Node, s step, day int64) *plan.Node {
	sch := n.Schema()
	intCol, floatCol, dateCol := colsByKind(sch)
	switch s.kind {
	case stepFilterParam:
		if dateCol < 0 {
			return n
		}
		return n.Filter(expr.Eq(expr.C(dateCol, sch[dateCol].Name), expr.P("day", data.Date(day))))
	case stepFilterConst:
		if floatCol >= 0 {
			return n.Filter(expr.B(expr.OpLt, expr.C(floatCol, sch[floatCol].Name), expr.Lit(data.Float(s.f))))
		}
		if intCol >= 0 {
			return n.Filter(expr.B(expr.OpGe, expr.C(intCol, sch[intCol].Name), expr.Lit(data.Int(int64(s.f)/100))))
		}
		return n
	case stepShuffle:
		if intCol < 0 {
			return n
		}
		if s.a == 1 {
			return n.RangePartition([]int{intCol}, s.count)
		}
		return n.ShuffleHash([]int{intCol}, s.count)
	case stepAgg:
		if intCol < 0 {
			return n
		}
		aggs := []plan.AggSpec{{Fn: plan.AggCount, Col: intCol}}
		if floatCol >= 0 {
			aggs = append(aggs, plan.AggSpec{Fn: plan.AggSum, Col: floatCol})
			if s.a == 1 {
				aggs = append(aggs, plan.AggSpec{Fn: plan.AggMax, Col: floatCol})
			}
		}
		return n.HashAgg([]int{intCol}, aggs)
	case stepProject:
		cols := make([]int, 0, len(sch))
		for i := range sch {
			if i != 1 || len(sch) <= 2 { // drop one column when possible
				cols = append(cols, i)
			}
		}
		return n.ProjectCols(cols...)
	case stepSort:
		col := intCol
		if s.a == 1 && floatCol >= 0 {
			col = floatCol
		}
		if col < 0 {
			col = 0
		}
		return n.Sort([]int{col}, []bool{true})
	case stepProcess:
		return n.Process(s.name, s.name+"-code-v1")
	case stepJoinDim:
		if intCol < 0 {
			return n
		}
		dim, err := cat.Get(s.name)
		if err != nil {
			return n
		}
		return n.HashJoin(plan.Scan(s.name, dim.GUID, dim.Schema), []int{intCol}, []int{0})
	case stepTop:
		return n.Top(int64(s.count))
	default:
		return n
	}
}

// colsByKind returns the first int, float, and date column indexes (-1 if
// absent).
func colsByKind(sch data.Schema) (intCol, floatCol, dateCol int) {
	intCol, floatCol, dateCol = -1, -1, -1
	for i, c := range sch {
		switch c.Kind {
		case data.KindInt:
			if intCol < 0 {
				intCol = i
			}
		case data.KindFloat:
			if floatCol < 0 {
				floatCol = i
			}
		case data.KindDate:
			if dateCol < 0 {
				dateCol = i
			}
		}
	}
	return
}
