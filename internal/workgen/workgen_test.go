package workgen

import (
	"strings"
	"testing"

	"cloudviews/internal/exec"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/storage"
	"cloudviews/internal/workload"
)

func smallProfile(seed int64) Profile {
	p := DefaultProfile("test", seed)
	p.Templates = 40
	p.Users = 10
	p.RowsPerInput = 100
	return p
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(smallProfile(7))
	b := Generate(smallProfile(7))
	if len(a.Templates) != len(b.Templates) {
		t.Fatal("template counts differ")
	}
	ja := a.JobsForInstance(0)
	jb := b.JobsForInstance(0)
	if len(ja) != len(jb) {
		t.Fatalf("job counts differ: %d vs %d", len(ja), len(jb))
	}
	for i := range ja {
		sa := signature.Of(ja[i].Root)
		sb := signature.Of(jb[i].Root)
		if sa != sb {
			t.Fatalf("job %d signatures differ across same-seed generations", i)
		}
	}
}

func TestClonedTemplatesShareSubgraphs(t *testing.T) {
	w := Generate(smallProfile(3))
	var clone *Template
	for _, tpl := range w.Templates {
		if tpl.ParentID != "" {
			clone = tpl
			break
		}
	}
	if clone == nil {
		t.Fatal("no cloned template generated at clone rate 0.6")
	}
	var parent *Template
	for _, tpl := range w.Templates {
		if tpl.ID == clone.ParentID {
			parent = tpl
		}
	}
	if parent == nil {
		t.Fatal("parent missing")
	}
	// The clone's plan contains a subgraph with the same normalized
	// signature as a subgraph of the parent's plan.
	comp := signature.NewComputer()
	parentSigs := map[string]bool{}
	for _, s := range comp.AllSubgraphs(w.Instantiate(parent, 0)) {
		parentSigs[s.Sig.Normalized] = true
	}
	overlap := 0
	for _, s := range comp.AllSubgraphs(w.Instantiate(clone, 0)) {
		if parentSigs[s.Sig.Normalized] {
			overlap++
		}
	}
	// At least scan + the shared prefix steps overlap.
	if overlap < clone.SharedPrefix {
		t.Errorf("clone overlaps on %d subgraphs, shared prefix is %d", overlap, clone.SharedPrefix)
	}
}

func TestInstancesNormalizeButDontMatchPrecisely(t *testing.T) {
	w := Generate(smallProfile(5))
	tpl := w.Templates[0]
	p0 := w.Instantiate(tpl, 0)
	w.DeliverInstance(1)
	p1 := w.Instantiate(tpl, 1)
	s0, s1 := signature.Of(p0), signature.Of(p1)
	if s0.Normalized != s1.Normalized {
		t.Error("recurring instances must share normalized signature")
	}
	if s0.Precise == s1.Precise {
		t.Error("recurring instances must differ precisely")
	}
}

func TestAllJobsExecute(t *testing.T) {
	w := Generate(smallProfile(11))
	ex := &exec.Executor{Catalog: w.Catalog, Store: storage.NewStore()}
	jobs := w.JobsForInstance(0)
	if len(jobs) < len(w.Templates) {
		t.Fatalf("only %d jobs for %d templates", len(jobs), len(w.Templates))
	}
	repo := workload.NewRepository()
	for _, j := range jobs {
		res, err := ex.Run(j.Root, j.Meta.JobID, 0)
		if err != nil {
			t.Fatalf("job %s: %v", j.Meta.JobID, err)
		}
		if res.TotalCPU <= 0 {
			t.Errorf("job %s has zero cost", j.Meta.JobID)
		}
		repo.Record(j.Meta, j.Root, res)
	}
	if repo.NumJobs() != len(jobs) {
		t.Error("repository missed jobs")
	}
}

func TestPeriodsGateSubmission(t *testing.T) {
	w := Generate(smallProfile(13))
	weekly := 0
	for _, tpl := range w.Templates {
		if tpl.Period == 7 {
			weekly++
		}
	}
	if weekly == 0 {
		t.Skip("no weekly templates in this seed")
	}
	w.DeliverInstance(1)
	for _, j := range w.JobsForInstance(1) {
		if j.Meta.Period == 7 {
			t.Error("weekly template submitted at instance 1")
		}
	}
}

func TestDuplicateJobsShareEverything(t *testing.T) {
	p := smallProfile(17)
	p.DuplicateJobRate = 1.0
	w := Generate(p)
	jobs := w.JobsForInstance(0)
	byTemplate := map[string][]Job{}
	for _, j := range jobs {
		byTemplate[j.Meta.TemplateID] = append(byTemplate[j.Meta.TemplateID], j)
	}
	foundDup := false
	for _, group := range byTemplate {
		if len(group) < 2 {
			continue
		}
		foundDup = true
		s0 := signature.Of(group[0].Root)
		s1 := signature.Of(group[1].Root)
		if s0.Precise != s1.Precise {
			t.Error("duplicate jobs must match precisely (full-job overlap)")
		}
		if group[0].Meta.JobID == group[1].Meta.JobID {
			t.Error("duplicate jobs need distinct IDs")
		}
		if !strings.Contains(group[1].Meta.JobID, "dup") {
			t.Error("duplicate naming convention broken")
		}
	}
	if !foundDup {
		t.Fatal("duplicate rate 1.0 produced no duplicates")
	}
}

func TestTenantStructure(t *testing.T) {
	w := Generate(smallProfile(19))
	vcs := map[string]bool{}
	bus := map[string]bool{}
	for _, tpl := range w.Templates {
		vcs[tpl.VC] = true
		bus[tpl.BU] = true
		if !strings.HasPrefix(tpl.VC, tpl.BU+"_") {
			t.Errorf("VC %s not under BU %s", tpl.VC, tpl.BU)
		}
	}
	if len(bus) != w.Profile.BusinessUnits {
		t.Errorf("BUs = %d, want %d", len(bus), w.Profile.BusinessUnits)
	}
	if len(vcs) < 2 {
		t.Error("degenerate VC distribution")
	}
}

func TestPlansAreValid(t *testing.T) {
	// Every generated plan derives a schema at every node and has an
	// Output root — i.e. applyStep kept the pipeline well formed.
	w := Generate(smallProfile(23))
	for _, tpl := range w.Templates {
		root := w.Instantiate(tpl, 0)
		if root.Kind != plan.OpOutput {
			t.Fatalf("template %s root is %v", tpl.ID, root.Kind)
		}
		plan.Walk(root, func(n *plan.Node) {
			if n.Schema() == nil {
				t.Errorf("template %s: node %v has nil schema", tpl.ID, n)
			}
		})
	}
}

func TestHeavyDuplicateTail(t *testing.T) {
	p := smallProfile(29)
	p.Templates = 200
	p.DuplicateJobRate = 0.5
	w := Generate(p)
	maxCopies := 0
	for _, tpl := range w.Templates {
		if tpl.Copies > maxCopies {
			maxCopies = tpl.Copies
		}
	}
	// With a heavy duplicate rate, the §8 "redundant jobs" tail appears:
	// some template is scheduled many times per instance.
	if maxCopies < 6 {
		t.Errorf("max copies = %d, want a heavy-tailed duplicate", maxCopies)
	}
}

func TestRangeExchangesAppear(t *testing.T) {
	p := smallProfile(31)
	p.Templates = 120
	w := Generate(p)
	ranges := 0
	for _, tpl := range w.Templates {
		plan.Walk(w.Instantiate(tpl, 0), func(n *plan.Node) {
			if n.Kind == plan.OpExchange && n.Part.Kind == plan.PartRange {
				ranges++
			}
		})
	}
	if ranges == 0 {
		t.Error("no range exchanges generated (parallel sorts missing)")
	}
}

func TestBUFactorSpreadsSharing(t *testing.T) {
	p := DefaultProfile("spread", 37)
	p.Templates = 200
	w := Generate(p)
	// Higher-index BUs must clone more than lower-index ones.
	clones := map[string]int{}
	totals := map[string]int{}
	for _, tpl := range w.Templates {
		totals[tpl.BU]++
		if tpl.ParentID != "" {
			clones[tpl.BU]++
		}
	}
	lowRate := float64(clones["bu0"]) / float64(totals["bu0"])
	highRate := float64(clones["bu3"]) / float64(totals["bu3"])
	if highRate <= lowRate {
		t.Errorf("bu3 clone rate %.2f should exceed bu0's %.2f", highRate, lowRate)
	}
}

func TestSideBranchesStayOnOwnInput(t *testing.T) {
	p := smallProfile(41)
	p.MaxSideBranches = 2
	w := Generate(p)
	for _, tpl := range w.Templates {
		inputs := plan.Inputs(w.Instantiate(tpl, 0))
		for _, in := range inputs {
			if in != tpl.Input && !strings.HasSuffix(in, "_dim") {
				t.Fatalf("template %s reads foreign stream %s (side-branch leak)", tpl.ID, in)
			}
		}
	}
}
