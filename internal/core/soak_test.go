package core

import (
	"testing"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/workgen"
)

// TestMultiInstanceSoak drives a generated cluster through several
// recurring instances end to end: instance 0 builds history, the analyzer
// installs annotations, and every later instance delivers fresh data,
// purges expired views, and runs all jobs with result validation on. This
// is the lifecycle the paper's production deployment lives in.
func TestMultiInstanceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	p := workgen.DefaultProfile("soak", 77)
	p.Templates = 60
	p.Users = 15
	p.RowsPerInput = 200
	w := workgen.Generate(p)

	svc := NewService(w.Catalog, Config{Enabled: true, ValidateResults: true, MaxViewsPerJob: 1})

	const instances = 5
	var reusedTotal, builtTotal int
	storeSizes := make([]int, 0, instances)
	for inst := int64(0); inst < instances; inst++ {
		if inst > 0 {
			w.DeliverInstance(inst)
		}
		svc.BeginInstance(inst)
		for _, j := range w.JobsForInstance(inst) {
			r, err := svc.Submit(JobSpec{Meta: j.Meta, Root: j.Root})
			if err != nil {
				t.Fatalf("instance %d job %s: %v", inst, j.Meta.JobID, err)
			}
			reusedTotal += len(r.Decision.ViewsUsed)
			builtTotal += len(r.Decision.ViewsBuilt)
		}
		if inst == 0 {
			an := svc.RunAnalyzer(analyzer.Config{MinFrequency: 2, MinCostRatio: 0.2, TopK: 5})
			if len(an.Selected) == 0 {
				t.Fatal("analyzer selected nothing from instance 0")
			}
		}
		storeSizes = append(storeSizes, svc.Store.Len())
	}

	// Reuse must actually happen after the analysis lands.
	if builtTotal == 0 {
		t.Error("no views built across the soak")
	}
	if reusedTotal == 0 {
		t.Error("no views reused across the soak")
	}
	if reusedTotal < builtTotal {
		t.Errorf("reuse (%d) should exceed builds (%d) — each view serves several jobs",
			reusedTotal, builtTotal)
	}
	// Expiry keeps the store bounded: the view count must not grow
	// monotonically across instances once expiry kicks in.
	last := storeSizes[len(storeSizes)-1]
	peak := 0
	for _, s := range storeSizes {
		if s > peak {
			peak = s
		}
	}
	if last > peak {
		t.Errorf("store still growing at the end: sizes %v", storeSizes)
	}
	if peak == 0 {
		t.Error("store never held a view")
	}
	// The analysis stayed fresh (templates did not change).
	if svc.AnalysisStale() {
		t.Error("analysis flagged stale on an unchanged workload")
	}
	t.Logf("soak: built=%d reused=%d store sizes per instance=%v", builtTotal, reusedTotal, storeSizes)
}

// TestSoakWithWeeklyTemplates verifies longer-period templates interleave
// correctly: weekly jobs appear only at instance 0 and 7, and views over
// inputs consumed weekly outlive the week (the §5.4 lineage rule).
func TestSoakWithWeeklyTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	p := workgen.DefaultProfile("weekly", 13)
	p.Templates = 50
	p.RowsPerInput = 150
	w := workgen.Generate(p)

	hasWeekly := false
	for _, tpl := range w.Templates {
		if tpl.Period == 7 {
			hasWeekly = true
		}
	}
	if !hasWeekly {
		t.Skip("seed produced no weekly templates")
	}

	svc := NewService(w.Catalog, Config{Enabled: true, MaxViewsPerJob: 1})
	for inst := int64(0); inst < 8; inst++ {
		if inst > 0 {
			w.DeliverInstance(inst)
		}
		svc.BeginInstance(inst)
		jobs := w.JobsForInstance(inst)
		weeklySeen := false
		for _, j := range jobs {
			if j.Meta.Period == 7 {
				weeklySeen = true
			}
			if _, err := svc.Submit(JobSpec{Meta: j.Meta, Root: j.Root}); err != nil {
				t.Fatalf("instance %d: %v", inst, err)
			}
		}
		if inst == 0 {
			svc.RunAnalyzer(analyzer.Config{MinFrequency: 2, TopK: 5})
		}
		if weeklySeen && inst%7 != 0 {
			t.Errorf("weekly job ran at instance %d", inst)
		}
		if inst%7 == 0 && !weeklySeen {
			t.Errorf("no weekly job at instance %d", inst)
		}
	}
}
