package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/catalog"
	"cloudviews/internal/fault"
)

// traceRun drives one fixed-seed faulty workload through a fresh service
// on the requested execution path and returns every job's exported trace
// bytes. Everything that feeds a trace is simulated (logical ticks,
// seeded faults, simulated CPU), so two runs differing only in
// Executor.Serial must export identical bytes.
func traceRun(t *testing.T, serial bool) map[string][]byte {
	t.Helper()
	cat := catalog.New()
	deliver(t, cat, 0)
	s := NewService(cat, Config{Enabled: true})
	s.Exec.Serial = serial
	s.Sched = newSchedulerWithVC("vc1", 100)
	s.SetObserver(s.Observer()) // rewire hooks now that Sched is attached
	s.InstallFaults(fault.NewInjector(fault.Config{
		Seed: 7, VertexCrash: 0.15, VertexSlow: 0.3, SlowDelay: 5,
	}))

	var ids []string
	submit := func(spec JobSpec) {
		t.Helper()
		if _, err := s.Run(context.Background(), spec); err != nil {
			t.Fatalf("job %s: %v", spec.Meta.JobID, err)
		}
		ids = append(ids, spec.Meta.JobID)
	}
	submit(specA("a0", 0))
	submit(specB("b0", 0))
	if an := s.RunAnalyzer(analyzer.Config{MinFrequency: 2, TopK: 1}); len(an.Selected) == 0 {
		t.Fatal("analyzer selected nothing")
	}
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	submit(specA("a1", 1)) // builds the annotated view
	submit(specB("b1", 1)) // reuses it

	out := map[string][]byte{}
	for _, id := range ids {
		tr, ok := s.Trace(id)
		if !ok {
			t.Fatalf("no trace retained for %s", id)
		}
		out[id] = tr.JSON()
	}
	return out
}

// TestTraceDeterminismSerialVsDAG pins the tentpole invariant: for a
// fixed seed, the exported trace of every job is byte-identical whether
// the plan ran on the serial reference walk or the parallel DAG
// scheduler.
func TestTraceDeterminismSerialVsDAG(t *testing.T) {
	serial := traceRun(t, true)
	dag := traceRun(t, false)
	if len(serial) != len(dag) {
		t.Fatalf("job count differs: serial=%d dag=%d", len(serial), len(dag))
	}
	for id, sj := range serial {
		if !bytes.Equal(sj, dag[id]) {
			t.Errorf("trace for %s differs across execution paths\nserial: %s\ndag:    %s", id, sj, dag[id])
		}
	}
	// The reusing job's trace must carry the full span taxonomy.
	b1 := serial["b1"]
	for _, want := range []string{
		`"outcome":"ok"`, `"name":"admission"`, `"name":"optimize"`,
		`"name":"match"`, `"name":"inject"`, `"name":"execute"`,
		`"name":"schedule"`, `"name":"storage.decode"`, `"cache":`,
	} {
		if !bytes.Contains(b1, []byte(want)) {
			t.Errorf("trace for b1 missing %s:\n%s", want, b1)
		}
	}
	if !bytes.Contains(serial["a1"], []byte(`"name":"publish"`)) {
		t.Errorf("builder job a1 has no publish span:\n%s", serial["a1"])
	}
}

// TestSnapshotConcurrentWithBatch reads Snapshot continuously while a
// batch executes (the -race stanza in scripts/check.sh runs this under
// the race detector) and then checks the settled ledger adds up.
func TestSnapshotConcurrentWithBatch(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)

	const batch = 24
	specs := make([]JobSpec, batch)
	for i := range specs {
		if i%2 == 0 {
			specs[i] = specA(fmt.Sprintf("a1-%d", i), 1)
		} else {
			specs[i] = specB(fmt.Sprintf("b1-%d", i), 1)
		}
	}

	var bad atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			st := s.Snapshot()
			if st.SchemaVersion != StatsSchemaVersion {
				bad.Add(1)
			}
			if st.Recovery.QuarantinedViews > st.Recovery.DegradedReplans {
				bad.Add(1) // a quarantine always pairs with a replan
			}
		}
	}()
	if _, err := s.RunBatch(context.Background(), specs, BatchOptions{Concurrency: 8}); err != nil {
		t.Fatal(err)
	}
	<-done
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d inconsistent snapshots observed mid-batch", n)
	}

	st := s.Snapshot()
	m := st.Metrics.Counters
	const total = 2 + batch // seedHistory + the batch
	if m["jobs.submitted"] != total || m["jobs.completed"] != total {
		t.Fatalf("job ledger: submitted=%d completed=%d want %d/%d",
			m["jobs.submitted"], m["jobs.completed"], total, total)
	}
	if m["jobs.failed"] != 0 {
		t.Fatalf("unexpected failures: %d", m["jobs.failed"])
	}
	if m["exec.vertices"] == 0 || m["meta.lookups"] == 0 || m["storage.views_written"] == 0 {
		t.Fatalf("core counters not flowing: %v", m)
	}
	if h := st.Metrics.Histograms["job.latency_ticks"]; h.Count != total {
		t.Fatalf("latency histogram count=%d want %d", h.Count, total)
	}
	if m["analyzer.runs"] != 1 {
		t.Fatalf("analyzer.runs=%d want 1", m["analyzer.runs"])
	}
	if len(st.Breakers) != 2 || st.Breakers[0].Dep != "metadata" || st.Breakers[1].Dep != "viewstore" {
		t.Fatalf("breaker stats malformed: %+v", st.Breakers)
	}
}

// TestRecoveryStatsSnapshotConsistent pins the grouped-counter fix:
// Recovery must never observe a quarantine without its paired replan,
// which plain atomic loads could tear between the two increments.
func TestRecoveryStatsSnapshotConsistent(t *testing.T) {
	s := newService(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.recovery.bump(func() {
					s.recovery.quarantined.Add(1)
					s.recovery.replans.Add(1)
				})
			}
		}()
	}
	for i := 0; i < 500; i++ {
		rs := s.Recovery()
		if rs.QuarantinedViews != rs.DegradedReplans {
			t.Fatalf("torn snapshot: quarantined=%d replans=%d",
				rs.QuarantinedViews, rs.DegradedReplans)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTracingDisabled: TraceCapacity < 0 turns tracing off while metrics
// keep flowing; SetObserver(nil) strips everything.
func TestTracingDisabled(t *testing.T) {
	cat := catalog.New()
	deliver(t, cat, 0)
	s := NewService(cat, Config{Enabled: true, TraceCapacity: -1})
	if _, err := s.Run(context.Background(), specA("a0", 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Trace("a0"); ok {
		t.Fatal("trace retained with tracing disabled")
	}
	if n := s.Snapshot().Metrics.Counters["jobs.completed"]; n != 1 {
		t.Fatalf("metrics should flow without tracing, jobs.completed=%d", n)
	}

	s.SetObserver(nil)
	if _, err := s.Run(context.Background(), specB("b0", 0)); err != nil {
		t.Fatal(err)
	}
	if len(s.Snapshot().Metrics.Counters) != 0 {
		t.Fatal("metrics present after SetObserver(nil)")
	}
}

// TestTraceCapacityEviction: the ring keeps only the newest traces.
func TestTraceCapacityEviction(t *testing.T) {
	cat := catalog.New()
	deliver(t, cat, 0)
	s := NewService(cat, Config{Enabled: true, TraceCapacity: 1})
	for _, id := range []string{"a0", "a1"} {
		if _, err := s.Run(context.Background(), specA(id, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Trace("a0"); ok {
		t.Fatal("oldest trace should have been evicted at capacity 1")
	}
	if _, ok := s.Trace("a1"); !ok {
		t.Fatal("newest trace missing")
	}
}

// TestLifecycleOutcomeMetrics: shed and deadline outcomes reach both the
// job counters and the trace root outcome.
func TestLifecycleOutcomeMetrics(t *testing.T) {
	cat := catalog.New()
	deliver(t, cat, 0)
	s := NewService(cat, Config{Enabled: true})
	if _, err := s.Run(context.Background(), specA("ok", 0)); err != nil {
		t.Fatal(err)
	}
	// Deadline 1 tick: the job's simulated latency cannot fit.
	spec := specB("late", 0)
	spec.Deadline = 1
	if _, err := s.Run(context.Background(), spec); err == nil {
		t.Fatal("expected deadline failure")
	}
	m := s.Snapshot().Metrics.Counters
	if m["jobs.failed"] != 1 || m["jobs.deadline_exceeded"] != 1 {
		t.Fatalf("deadline not counted: %v", m)
	}
	tr, ok := s.Trace("late")
	if !ok {
		t.Fatal("failed job should still be traced")
	}
	if !bytes.Contains(tr.JSON(), []byte(`"outcome":"deadline"`)) {
		t.Fatalf("trace outcome wrong: %s", tr.JSON())
	}
}
