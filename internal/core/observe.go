// observe.go wires the deterministic observability layer (internal/obs)
// into the service and carries the redesigned public API surface: the
// ctx-first submission pair Run/RunBatch, the single versioned stats
// view Snapshot, and per-job trace export via Trace.
//
// One Observer implements every layer's observability hook (executor
// vertices, view-store reads and writes, metadata lookups, cluster
// admission, analyzer runs, breaker transitions) — the same
// one-object-implements-all-seams shape as fault.Injector. Metrics are
// bumped synchronously at each hook; traces are assembled per job by the
// submitting goroutine from simulated quantities only, so a fixed-seed
// run exports byte-identical trace JSON whether the executor ran the
// plan serially or on the parallel DAG scheduler.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/breaker"
	"cloudviews/internal/cluster"
	"cloudviews/internal/exec"
	"cloudviews/internal/metadata"
	"cloudviews/internal/obs"
	"cloudviews/internal/plan"
	"cloudviews/internal/storage"
)

// Observer owns the service's metrics registry and trace store and
// implements every layer's observability hook. One Observer serves one
// Service; NewService installs one by default, SetObserver(nil) removes
// it (the measured no-op baseline).
type Observer struct {
	metrics *obs.Registry
	traces  *obs.TraceStore // nil = tracing disabled (metrics stay on)

	// Hot-path instruments are resolved once at construction so hooks
	// never touch the registry's name index.
	jobsSubmitted, jobsCompleted, jobsFailed *obs.Counter
	jobsShed, jobsCancelled, jobsDeadline    *obs.Counter
	jobLatency                               *obs.Histogram
	vertices, vertexRetries                  *obs.Counter
	retryWait                                *obs.Histogram
	cacheHits, cacheMisses, consumeErrors    *obs.Counter
	viewsWritten, encodedWritten             *obs.Counter
	metaLookups, metaLookupErrors            *obs.Counter
	metaAnnotations                          *obs.Counter
	schedAdmitted                            *obs.Counter
	schedQueueDepth                          *obs.Gauge
	queueWait                                *obs.Histogram
	breakerTrips, breakerCloses              *obs.Counter
	analyzerRuns, analyzerCandidates         *obs.Counter
	analyzerSelected                         *obs.Counter
	reuseSkipped                             *obs.Counter
}

// Compile-time proof the Observer satisfies every layer's hook seam.
var (
	_ exec.ObsHook     = (*Observer)(nil)
	_ storage.ObsHook  = (*Observer)(nil)
	_ metadata.ObsHook = (*Observer)(nil)
	_ cluster.ObsHook  = (*Observer)(nil)
	_ analyzer.ObsHook = (*Observer)(nil)
)

// NewObserver builds an observer. traceCapacity sizes the per-job trace
// ring: 0 selects obs.DefaultTraceCapacity, negative disables tracing
// entirely (metrics remain live) — the same zero-default / negative-off
// convention as Config.CacheBytes.
func NewObserver(traceCapacity int) *Observer {
	reg := obs.NewRegistry()
	o := &Observer{
		metrics:            reg,
		jobsSubmitted:      reg.Counter("jobs.submitted"),
		jobsCompleted:      reg.Counter("jobs.completed"),
		jobsFailed:         reg.Counter("jobs.failed"),
		jobsShed:           reg.Counter("jobs.shed"),
		jobsCancelled:      reg.Counter("jobs.cancelled"),
		jobsDeadline:       reg.Counter("jobs.deadline_exceeded"),
		jobLatency:         reg.Histogram("job.latency_ticks"),
		vertices:           reg.Counter("exec.vertices"),
		vertexRetries:      reg.Counter("exec.vertex_retries"),
		retryWait:          reg.Histogram("exec.retry_wait_ticks"),
		cacheHits:          reg.Counter("cache.hits"),
		cacheMisses:        reg.Counter("cache.misses"),
		consumeErrors:      reg.Counter("storage.consume_errors"),
		viewsWritten:       reg.Counter("storage.views_written"),
		encodedWritten:     reg.Counter("storage.encoded_bytes_written"),
		metaLookups:        reg.Counter("meta.lookups"),
		metaLookupErrors:   reg.Counter("meta.lookup_errors"),
		metaAnnotations:    reg.Counter("meta.annotations_served"),
		schedAdmitted:      reg.Counter("sched.admitted"),
		schedQueueDepth:    reg.Gauge("sched.queue_depth"),
		queueWait:          reg.Histogram("sched.queue_wait_ticks"),
		breakerTrips:       reg.Counter("breaker.trips"),
		breakerCloses:      reg.Counter("breaker.closes"),
		analyzerRuns:       reg.Counter("analyzer.runs"),
		analyzerCandidates: reg.Counter("analyzer.candidates"),
		analyzerSelected:   reg.Counter("analyzer.selected"),
		reuseSkipped:       reg.Counter("reuse.skipped"),
	}
	if traceCapacity >= 0 {
		o.traces = obs.NewTraceStore(traceCapacity)
	}
	return o
}

// Metrics returns a consistent snapshot of every registered instrument.
func (o *Observer) Metrics() obs.MetricsSnapshot { return o.metrics.Snapshot() }

// vertexMetrics feeds the executor counters for one completed vertex.
func (o *Observer) vertexMetrics(ev exec.VertexEvent) {
	o.vertices.Inc()
	if r := ev.Attempts - 1; r > 0 {
		o.vertexRetries.Add(int64(r))
		o.retryWait.Observe(int64(ev.RetryWait))
	}
}

// VertexDone implements exec.ObsHook (metrics only; per-job tracing uses
// a vertexCollector installed by execute).
func (o *Observer) VertexDone(_ string, ev exec.VertexEvent) { o.vertexMetrics(ev) }

// ViewConsumed implements storage.ObsHook.
func (o *Observer) ViewConsumed(_ string, cacheHit bool, err error) {
	if err != nil {
		o.consumeErrors.Inc()
		return
	}
	if cacheHit {
		o.cacheHits.Inc()
	} else {
		o.cacheMisses.Inc()
	}
}

// ViewWritten implements storage.ObsHook.
func (o *Observer) ViewWritten(_ string, encodedBytes int64, _ bool) {
	o.viewsWritten.Inc()
	o.encodedWritten.Add(encodedBytes)
}

// LookupDone implements metadata.ObsHook.
func (o *Observer) LookupDone(_ string, annotations int, err error) {
	o.metaLookups.Inc()
	if err != nil {
		o.metaLookupErrors.Inc()
		return
	}
	o.metaAnnotations.Add(int64(annotations))
}

// Admitted implements cluster.ObsHook. Invoked under the scheduler's
// lock, so it only touches atomics.
func (o *Observer) Admitted(_ string, _ int, at, start int64, depth int) {
	o.schedAdmitted.Inc()
	o.schedQueueDepth.Set(int64(depth))
	o.queueWait.Observe(start - at)
}

// AnalyzeDone implements analyzer.ObsHook.
func (o *Observer) AnalyzeDone(_, _, candidates, selected int) {
	o.analyzerRuns.Inc()
	o.analyzerCandidates.Add(int64(candidates))
	o.analyzerSelected.Add(int64(selected))
}

// breakerChange is wired as breaker.Breaker.OnStateChange.
func (o *Observer) breakerChange(_ string, from, to breaker.State, _ int64) {
	switch {
	case to == breaker.Open:
		o.breakerTrips.Inc()
	case to == breaker.Closed && from == breaker.HalfOpen:
		o.breakerCloses.Inc()
	}
}

// vertexCollector is the per-execution-attempt executor hook: it feeds
// vertex metrics immediately and, when the job is traced, buffers the
// events for the submitting goroutine to attach under the attempt's
// execute span after the executor joins. Events buffered by a failed
// attempt are discarded — the executor stops at the first error, and
// which sibling vertices had already completed under the DAG scheduler
// is scheduling-dependent, so only successful attempts carry vertex
// children (that is what keeps traces byte-deterministic across
// execution paths).
type vertexCollector struct {
	o      *Observer
	buffer bool
	mu     sync.Mutex
	events []exec.VertexEvent
}

func (c *vertexCollector) VertexDone(_ string, ev exec.VertexEvent) {
	c.o.vertexMetrics(ev)
	if c.buffer {
		c.mu.Lock()
		c.events = append(c.events, ev)
		c.mu.Unlock()
	}
}

// traceBuilder assembles one job's span tree on the submitting
// goroutine. A nil *traceBuilder (observer absent or tracing disabled)
// is fully operational as a no-op: span returns a nil *obs.Span, whose
// Set/Child are themselves nil-safe, so the instrumented pipeline never
// branches on whether tracing is on.
type traceBuilder struct {
	o     *Observer
	trace *obs.Trace
	root  *obs.Span
}

// beginTrace opens a job trace rooted at a "submit" span, or returns nil
// when tracing is off.
func (s *Service) beginTrace(spec JobSpec, now int64) *traceBuilder {
	o := s.obsv
	if o == nil || o.traces == nil {
		return nil
	}
	root := &obs.Span{Name: "submit", Start: float64(now), End: float64(now)}
	if spec.Meta.VC != "" {
		root.Set("vc", spec.Meta.VC)
	}
	return &traceBuilder{o: o, trace: &obs.Trace{JobID: spec.Meta.JobID, Root: root}, root: root}
}

// span adds a direct child of the root span.
func (t *traceBuilder) span(name string, start, end float64, attrs ...obs.Attr) *obs.Span {
	if t == nil {
		return nil
	}
	return t.root.Child(name, start, end, attrs...)
}

// finish stamps the root span's end and outcome and publishes the trace.
func (t *traceBuilder) finish(end float64, err error) {
	if t == nil {
		return
	}
	t.root.End = end
	t.root.Set("outcome", outcomeOf(err))
	t.o.traces.Put(t.trace)
}

// outcomeOf renders a submission outcome as a stable attribute value.
func outcomeOf(err error) string {
	if err == nil {
		return "ok"
	}
	var je *JobError
	if errors.As(err, &je) {
		return je.Reason.String()
	}
	return "error"
}

// errClass coarsely classifies an execution error for trace attributes;
// the classes are stable strings so traces stay comparable across runs.
func errClass(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	}
	var (
		oe *breaker.OpenError
		ce *storage.CorruptError
		nf *storage.NotFoundError
	)
	switch {
	case errors.As(err, &oe):
		return "breaker-open"
	case errors.As(err, &ce):
		return "corrupt-view"
	case errors.As(err, &nf):
		return "missing-view"
	}
	return "error"
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// SetObserver replaces the service's observability layer, wiring o's
// hooks into every layer: executor, view store, metadata service, the
// scheduler (if one is attached), and the dependency breakers. Passing
// nil removes every hook — the no-op baseline the overhead benchmarks
// measure. Like InstallFaults, call it before submissions begin; hooks
// are read without synchronization. A scheduler attached after the last
// SetObserver call is not instrumented until SetObserver runs again
// (NewService installs the default observer before a scheduler can
// exist, so attach Sched, then call s.SetObserver(s.Observer())).
func (s *Service) SetObserver(o *Observer) {
	s.obsv = o
	var (
		execHook  exec.ObsHook
		storeHook storage.ObsHook
		metaHook  metadata.ObsHook
		schedHook cluster.ObsHook
		brkHook   func(string, breaker.State, breaker.State, int64)
	)
	if o != nil {
		execHook, storeHook, metaHook, schedHook, brkHook = o, o, o, o, o.breakerChange
	}
	s.Exec.Obs = execHook
	s.Store.Obs = storeHook
	s.Meta.Obs = metaHook
	if s.Sched != nil {
		s.Sched.Obs = schedHook
	}
	for _, b := range []*breaker.Breaker{s.metaBreaker, s.storeBreaker} {
		if b != nil {
			b.OnStateChange = brkHook
		}
	}
}

// Observer returns the installed observability layer (nil when removed).
func (s *Service) Observer() *Observer { return s.obsv }

// Trace returns the retained trace for jobID. The second result is false
// when the job was never traced or its trace has been evicted. Callers
// must treat the trace as immutable; Trace.JSON renders it as stable
// order-normalized bytes.
func (s *Service) Trace(jobID string) (*obs.Trace, bool) {
	o := s.obsv
	if o == nil || o.traces == nil {
		return nil, false
	}
	return o.traces.Get(jobID)
}

// StatsSchemaVersion identifies the ServiceStats layout; consumers that
// persist snapshots can detect layout changes across releases.
const StatsSchemaVersion = 1

// SchedulerStats is the admission-side slice of a snapshot.
type SchedulerStats struct {
	// InFlight is how many submissions are currently executing.
	InFlight int
	// Draining reports whether Drain has latched the service shut.
	Draining bool
}

// BreakerStats is one dependency breaker's counters at snapshot time.
type BreakerStats struct {
	Dep            string
	State          string
	Opens          int64
	ShortCircuits  int64
	Probes         int64
	ProbeSuccesses int64
	ProbeFailures  int64
}

// ServiceStats is the unified stats surface: one versioned value holding
// every subsystem's counters, replacing the scatter of per-subsystem
// accessors (Recovery, StorageStats, InFlight, Draining, …) that callers
// previously had to stitch together. The legacy accessors remain and
// report identical numbers; Snapshot is the canonical read.
type ServiceStats struct {
	// SchemaVersion is StatsSchemaVersion at build time.
	SchemaVersion int
	Recovery      RecoveryStats
	Storage       StorageStats
	Scheduler     SchedulerStats
	Breakers      []BreakerStats
	// Metrics is the observability registry's snapshot; empty maps when
	// no observer is installed.
	Metrics obs.MetricsSnapshot
}

// Snapshot returns a consistent point-in-time view of the whole service.
// Safe to call concurrently with submissions: every subsystem is read
// through its own synchronized snapshot path.
func (s *Service) Snapshot() ServiceStats {
	st := ServiceStats{
		SchemaVersion: StatsSchemaVersion,
		Recovery:      s.Recovery(),
		Storage:       s.StorageStats(),
		Scheduler:     SchedulerStats{InFlight: s.InFlight(), Draining: s.Draining()},
	}
	for _, b := range []*breaker.Breaker{s.metaBreaker, s.storeBreaker} {
		if b == nil {
			continue
		}
		st.Breakers = append(st.Breakers, BreakerStats{
			Dep:            b.Name(),
			State:          b.State().String(),
			Opens:          b.Opens(),
			ShortCircuits:  b.ShortCircuits(),
			Probes:         b.Probes(),
			ProbeSuccesses: b.ProbeSuccesses(),
			ProbeFailures:  b.ProbeFailures(),
		})
	}
	if s.obsv != nil {
		st.Metrics = s.obsv.Metrics()
	}
	return st
}

// Run submits one job through the full CloudViews pipeline under the
// caller's context and records it in the workload repository. This is
// the canonical single-job entry point; Submit and SubmitCtx are thin
// deprecated wrappers over it. User plans are never mutated —
// optimization operates on an internal clone (transparency, §4).
// Cancelling ctx stops the job at the next vertex or chunk boundary,
// releases its build locks and reservations, retracts any views it
// published, and returns a ReasonCancelled JobError.
func (s *Service) Run(ctx context.Context, spec JobSpec) (*JobResult, error) {
	return s.submitAt(ctx, spec, s.Clock.Now())
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Concurrency bounds how many jobs of the batch run simultaneously;
	// values ≤ 1 select one worker per CPU.
	Concurrency int
}

// RunBatch submits a batch of jobs with up to opts.Concurrency in
// flight, returning results in submission order. This is the paper's
// operating regime — tens of thousands of concurrent jobs per cluster
// (§2.1) — where build-build and build-consume coordination (§6.5) is
// real: in-flight jobs arbitrate materialization through the metadata
// service's locks, and a view sealed early (§6.4) is visible to every
// other job in the batch immediately.
//
// All jobs share one submission timestamp (the clock at batch start),
// modeling a concurrent arrival wave: admission queueing and lock TTLs
// see the jobs as simultaneous, so a batch job cannot steal a build lock
// another batch job still holds. Outputs are deterministic; which job
// wins a build lock (and therefore pays materialization cost) depends on
// scheduling, exactly as with concurrent submitters in production.
//
// Each job runs against a private clone of its plan, so specs may share
// subtrees (or whole plans) with each other and with the caller.
// Cancelling ctx stops every job still in flight. Per-job failures are
// aggregated with errors.Join — results keeps its per-index entries, and
// each joined error is wrapped with the batch index and job ID.
func (s *Service) RunBatch(ctx context.Context, specs []JobSpec, opts BatchOptions) ([]*JobResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	concurrency := batchConcurrency(opts.Concurrency)
	now := s.Clock.Now()
	// Clone every plan up front, serially: plan nodes memoize derived
	// state (schemas) in place, which would race if two in-flight jobs
	// shared nodes.
	jobs := make([]JobSpec, len(specs))
	for i, spec := range specs {
		spec.Root = plan.Clone(spec.Root)
		jobs[i] = spec
	}
	results := make([]*JobResult, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := range jobs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = s.submitAt(ctx, jobs[i], now)
		}(i)
	}
	wg.Wait()
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("core: batch job %d (%s): %w", i, jobs[i].Meta.JobID, err))
		}
	}
	return results, errors.Join(joined...)
}

// batchConcurrency resolves the batch concurrency option: ≤ 1 means one
// worker per CPU (a single caller-managed worker is what Run is for).
func batchConcurrency(c int) int {
	if c <= 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c
}

// sortedPaths returns the map's values (sig → path) sorted, for
// deterministic span emission order.
func sortedPaths(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
