package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"cloudviews/internal/data"
	"cloudviews/internal/plan"
)

// crashAtStep permanently crashes the failAt-th completing vertex.
type crashAtStep struct {
	failAt int64
	step   atomic.Int64
}

func (c *crashAtStep) VertexDone(_, _ string, _ plan.OpKind, _ int) error {
	if c.step.Add(1) == c.failAt {
		return errors.New("injected")
	}
	return nil
}

func (c *crashAtStep) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

// TestRandomFailureInjection crashes jobs at random operators and checks
// the system's crash invariants after every failure:
//
//  1. metadata and storage stay consistent — every registered view has
//     its files and vice versa (modulo unregistered orphans, which only
//     the reclamation path creates),
//  2. progress is never wedged — a follow-up job by another submitter
//     either reuses a surviving view or wins the (released or expired)
//     build lock and builds it,
//  3. results stay correct — the follow-up job's output matches a clean
//     baseline execution.
func TestRandomFailureInjection(t *testing.T) {
	const rounds = 25
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round)))
		s := newService(t)
		s.Config.ValidateResults = false
		seedHistory(t, s)
		deliver(t, s.Catalog, 1)

		// Crash the builder at a uniformly random operator position.
		// Under the parallel scheduler *which* operator is the Nth to
		// complete varies run to run — irrelevant here, since the
		// invariants must hold no matter where the crash lands.
		hook := &crashAtStep{failAt: int64(rng.Intn(10))}
		s.Exec.Faults = hook
		_, err := s.Submit(specA(fmt.Sprintf("crash-%d", round), 1))
		s.Exec.Faults = nil
		crashed := err != nil

		// Invariant 1: store/metadata consistency.
		metaViews := s.Meta.Views()
		for _, mv := range metaViews {
			if _, serr := s.Store.Get(mv.Path); serr != nil {
				t.Fatalf("round %d: metadata references missing file %s", round, mv.Path)
			}
		}
		if s.Store.Len() < len(metaViews) {
			t.Fatalf("round %d: store (%d) lost views metadata still has (%d)",
				round, s.Store.Len(), len(metaViews))
		}

		// Invariant 2 + 3: a different submitter makes progress with
		// correct results.
		follow, err := s.Submit(specB(fmt.Sprintf("follow-%d", round), 1))
		if err != nil {
			t.Fatalf("round %d (crashed=%v): follow-up failed: %v", round, crashed, err)
		}
		if len(follow.Decision.ViewsUsed)+len(follow.Decision.ViewsBuilt) == 0 {
			t.Fatalf("round %d: follow-up neither built nor reused (wedged lock?)", round)
		}
		baseline, err := s.runBaseline(specB("base", 1))
		if err != nil {
			t.Fatal(err)
		}
		if !data.RowsEqual(baseline.Outputs["activeUsers"], follow.Result.Outputs["activeUsers"]) {
			t.Fatalf("round %d: follow-up results corrupted", round)
		}
	}
}
