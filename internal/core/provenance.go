package core

import (
	"context"
	"fmt"
	"strings"

	"cloudviews/internal/metadata"
)

// provenance.go implements the debuggability requirement of §4 (goal 6):
// operators and customers can trace which views a job created or used,
// which job produced any view, and why the view was selected in the first
// place.

// ViewProvenance explains one materialized view.
type ViewProvenance struct {
	Path          string
	PreciseSig    string
	NormSig       string
	ProducerJobID string
	ExpiresAt     int64
	Rows          int64
	Bytes         int64
	// Selection rationale from the analyzer's annotation (why this
	// computation was picked): observed frequency and net utility.
	Frequency int
	Utility   float64
	// Annotated reports whether the current analysis still backs the
	// view; false means it is an orphan of an earlier analysis.
	Annotated bool
}

// ViewProvenance traces a materialized view by its physical path or
// precise signature (both are embedded in the path, per §6.2).
func (s *Service) ViewProvenance(pathOrSig string) (ViewProvenance, error) {
	for _, v := range s.Meta.Views() {
		if v.Path == pathOrSig || v.PreciseSig == pathOrSig ||
			strings.Contains(v.Path, pathOrSig) {
			p := ViewProvenance{
				Path:          v.Path,
				PreciseSig:    v.PreciseSig,
				NormSig:       v.NormSig,
				ProducerJobID: v.ProducerJobID,
				ExpiresAt:     v.ExpiresAt,
				Rows:          v.Rows,
				Bytes:         v.Bytes,
			}
			if ann, ok := s.Meta.Annotation(v.NormSig); ok {
				p.Annotated = true
				p.Frequency = ann.Frequency
				p.Utility = ann.Utility
			}
			return p, nil
		}
	}
	return ViewProvenance{}, fmt.Errorf("core: no materialized view matches %q", pathOrSig)
}

// Replay re-executes a completed job exactly as it ran: the preserved
// annotations (the "job resource" of §6.2) are fed back to the optimizer,
// so the same reuse and materialization decisions reproduce — as long as
// the referenced data versions and views still exist. It returns the
// replayed result for comparison against the original.
func (s *Service) Replay(jr *JobResult) (*JobResult, error) {
	replaySpec := jr.Spec
	replaySpec.Meta.JobID = jr.Spec.Meta.JobID + "-replay"
	now := s.Clock.Now()
	out := &JobResult{Spec: replaySpec, Plan: replaySpec.Root, Decision: jr.Decision}

	if s.vcEnabled(replaySpec.Meta.VC) {
		// Use the preserved annotations, not a fresh metadata lookup:
		// reproducibility must not depend on the analysis having changed.
		out.Plan, out.Decision = s.Opt.Optimize(replaySpec.Root, replaySpec.Meta.JobID, jr.AnnotationsUsed, now)
	}
	res, err := s.execute(context.Background(), out.Plan, replaySpec, out.Decision, now, 0, nil, 0)
	if err != nil {
		return nil, err
	}
	out.Result = res
	return out, nil
}

// annotationsSnapshot copies the annotations handed to the optimizer so
// the job result preserves them (§6.2: "the compiler also preserves the
// annotations as a job resource for future reproducibility").
func annotationsSnapshot(anns []metadata.Annotation) []metadata.Annotation {
	if len(anns) == 0 {
		return nil
	}
	return append([]metadata.Annotation(nil), anns...)
}
