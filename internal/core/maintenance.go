package core

import (
	"sort"
	"sync"
)

// maintenance.go carries the operational features around the core runtime:
// workload-change detection (§6.2/§7.3) and admin storage reclamation
// (§5.4).

// changeTracker counts views built per recurring instance. The paper
// detects workload changes "by monitoring changes in the number of
// materialized views created over time": when a template changes, its
// normalized signature stops matching the loaded annotations, builds stop,
// and the drop signals that the analyzer should rerun.
type changeTracker struct {
	mu            sync.Mutex
	currentBuilds int
	lastBuilds    int
	haveBaseline  bool
}

func (c *changeTracker) recordBuild() {
	c.mu.Lock()
	c.currentBuilds++
	c.mu.Unlock()
}

// roll closes the current instance's counter.
func (c *changeTracker) roll() {
	c.mu.Lock()
	c.lastBuilds = c.currentBuilds
	c.currentBuilds = 0
	c.haveBaseline = true
	c.mu.Unlock()
}

// AnalysisStale reports whether the loaded analysis looks outdated: the
// metadata service advertises annotations, but the last completed
// recurring instance materialized fewer than half the advertised views.
// A true result is the signal to rerun the CloudViews analyzer (§6.2:
// "this also indicates that it is time to rerun the workload analysis").
func (s *Service) AnalysisStale() bool {
	annotations, _, _, _, _ := s.Meta.Stats()
	if annotations == 0 {
		return false
	}
	s.changes.mu.Lock()
	defer s.changes.mu.Unlock()
	if !s.changes.haveBaseline {
		return false
	}
	return s.changes.lastBuilds*2 < annotations
}

// ViewsBuiltLastInstance reports how many views the last completed
// instance materialized (admin dashboards).
func (s *Service) ViewsBuiltLastInstance() int {
	s.changes.mu.Lock()
	defer s.changes.mu.Unlock()
	return s.changes.lastBuilds
}

// ReclaimStorage frees at least wantBytes of view storage by evicting the
// lowest-utility views first — the §5.4 admin operation ("running the
// same view selection routines ... replacing the max objective function
// with a min"). Utility comes from the loaded annotations; views without
// an annotation (orphans from a previous analysis) rank lowest of all.
// The metadata registration is removed before the physical file, per the
// §5.4 ordering. It returns the purged paths.
func (s *Service) ReclaimStorage(wantBytes int64) []string {
	type scored struct {
		preciseSig string
		path       string
		bytes      int64
		utility    float64
		orphan     bool
	}
	var all []scored
	for _, v := range s.Meta.Views() {
		// Reclamation frees at-rest bytes, so account the encoded payload
		// size; fall back to the logical size for records journaled before
		// encoding existed.
		bytes := v.EncodedBytes
		if bytes == 0 {
			bytes = v.Bytes
		}
		sc := scored{preciseSig: v.PreciseSig, path: v.Path, bytes: bytes}
		if ann, ok := s.Meta.Annotation(v.NormSig); ok {
			sc.utility = ann.Utility
		} else {
			sc.orphan = true
		}
		all = append(all, sc)
	}
	// Views in storage that the metadata service no longer knows about
	// are pure waste: reclaim them first.
	known := map[string]bool{}
	for _, sc := range all {
		known[sc.path] = true
	}
	for _, v := range s.Store.Views() {
		if !known[v.Path] {
			all = append(all, scored{preciseSig: v.PreciseSig, path: v.Path, bytes: v.Bytes, orphan: true})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].orphan != all[j].orphan {
			return all[i].orphan
		}
		if all[i].utility != all[j].utility {
			return all[i].utility < all[j].utility
		}
		return all[i].path < all[j].path
	})
	var purged []string
	var freed int64
	for _, sc := range all {
		if freed >= wantBytes {
			break
		}
		s.Meta.Unregister(sc.preciseSig)
		s.Store.Delete(sc.path)
		purged = append(purged, sc.path)
		freed += sc.bytes
	}
	return purged
}
