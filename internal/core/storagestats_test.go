package core

import (
	"testing"

	"cloudviews/internal/catalog"
	"cloudviews/internal/storage"
)

// TestStorageStatsGauges checks the service-level byte gauges: after a
// build-then-reuse instance the resident encoded footprint is the store's
// real (compressed) payload size, strictly below the logical row bytes the
// metadata service advertises, and the decoded hot-view cache reports the
// reuse traffic it served.
func TestStorageStatsGauges(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(specB("b1", 1)); err != nil {
		t.Fatal(err)
	}

	st := s.StorageStats()
	if st.Views != s.Store.Len() || st.Views == 0 {
		t.Fatalf("Views gauge = %d, store has %d", st.Views, s.Store.Len())
	}
	if st.ResidentEncodedBytes != s.Store.TotalBytes() || st.ResidentEncodedBytes <= 0 {
		t.Fatalf("ResidentEncodedBytes = %d", st.ResidentEncodedBytes)
	}
	var logical int64
	for _, v := range s.Meta.Views() {
		if v.EncodedBytes <= 0 {
			t.Fatalf("view %s registered without encoded size", v.Path)
		}
		if v.EncodedBytes >= v.Bytes {
			t.Errorf("view %s: encoded %d not below logical %d", v.Path, v.EncodedBytes, v.Bytes)
		}
		logical += v.Bytes
	}
	if st.ResidentEncodedBytes >= logical {
		t.Errorf("resident encoded %d should undercut logical %d", st.ResidentEncodedBytes, logical)
	}
	// The reuse job consumed the view: the cache saw the traffic and holds
	// the decoded rows.
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Error("cache counters never moved during a build-and-reuse instance")
	}
	if st.Cache.Entries == 0 || st.Cache.Bytes == 0 {
		t.Errorf("cache gauges empty after reuse: %+v", st.Cache)
	}
}

// TestConfigCacheBytes verifies the service-level cache knob: zero keeps
// the store default, negative disables, positive resizes.
func TestConfigCacheBytes(t *testing.T) {
	cat := catalog.New()
	deliver(t, cat, 0)
	if got := NewService(cat, Config{}).Store.CacheBudget(); got != storage.DefaultCacheBudget {
		t.Errorf("default budget = %d", got)
	}
	if got := NewService(cat, Config{CacheBytes: 1 << 20}).Store.CacheBudget(); got != 1<<20 {
		t.Errorf("explicit budget = %d", got)
	}
	s := NewService(cat, Config{Enabled: true, CacheBytes: -1})
	if s.Store.CacheBudget() >= 0 {
		t.Errorf("negative CacheBytes must disable the cache, budget = %d", s.Store.CacheBudget())
	}
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	for _, spec := range []JobSpec{specA("a1", 1), specB("b1", 1)} {
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.StorageStats(); st.Cache.Entries != 0 {
		t.Errorf("disabled cache admitted entries: %+v", st.Cache)
	}
}
