package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudviews/internal/catalog"
	"cloudviews/internal/fault"
	"cloudviews/internal/plan"
)

// newBreakerService builds a validating service with explicit breaker
// parameters (threshold consecutive failures, cooldown logical seconds).
func newBreakerService(t testing.TB, threshold int, cooldown int64) *Service {
	t.Helper()
	cat := catalog.New()
	deliver(t, cat, 0)
	return NewService(cat, Config{
		Enabled: true, ValidateResults: true,
		BreakerThreshold: threshold, BreakerCooldown: cooldown,
	})
}

// TestShedUnmeetableDeadline: a job whose queue-time estimate provably
// misses its deadline is rejected before execution with a typed shed
// error, and the Shed counter moves; a meetable deadline still runs.
func TestShedUnmeetableDeadline(t *testing.T) {
	s := newService(t)
	s.Sched = newSchedulerWithVC("vc1", 4)
	// Saturate the VC far past any reasonable deadline.
	if _, err := s.Sched.Admit("vc1", 4, s.Clock.Now(), 100000); err != nil {
		t.Fatal(err)
	}
	now := s.Clock.Now()

	spec := specA("shed1", 0)
	spec.Deadline = now + 10
	res, err := s.Submit(spec)
	if res != nil || err == nil {
		t.Fatalf("unmeetable deadline must shed, got res=%v err=%v", res, err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Reason != ReasonShed {
		t.Fatalf("want *JobError{ReasonShed}, got %v", err)
	}
	if je.JobID != "shed1" {
		t.Errorf("JobError.JobID = %q, want shed1", je.JobID)
	}
	if got := s.Recovery().Shed; got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}
	// Nothing executed: no locks, no views, no store writes.
	if _, _, locks, _, _ := s.Meta.Stats(); locks != 0 {
		t.Errorf("shed job left %d build locks", locks)
	}
	if s.Store.Len() != 0 {
		t.Errorf("shed job wrote %d views", s.Store.Len())
	}

	// A deadline past the backlog is admitted and completes.
	ok := specA("shed2", 0)
	ok.Deadline = now + 1000000
	if _, err := s.Submit(ok); err != nil {
		t.Fatalf("meetable deadline should run: %v", err)
	}
	if got := s.Recovery().Shed; got != 1 {
		t.Errorf("Shed moved to %d on a successful job", got)
	}
}

// TestDeadlineExceededFailsJob: a deadline tighter than the job's
// simulated latency fails execution with a ReasonDeadline JobError, and
// Config.DefaultDeadline applies it to jobs without an explicit one.
func TestDeadlineExceededFailsJob(t *testing.T) {
	s := newService(t)
	clean, err := s.Submit(specA("clean", 0))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Result.Latency <= 1 {
		t.Fatalf("plan latency %v too small to test deadlines", clean.Result.Latency)
	}

	spec := specA("dl1", 0)
	spec.Deadline = s.Clock.Now() + 1
	_, err = s.Submit(spec)
	var je *JobError
	if !errors.As(err, &je) || je.Reason != ReasonDeadline {
		t.Fatalf("want *JobError{ReasonDeadline}, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause should unwrap to context.DeadlineExceeded: %v", err)
	}
	if got := s.Recovery().DeadlineExceeded; got != 1 {
		t.Errorf("DeadlineExceeded = %d, want 1", got)
	}
	if _, _, locks, _, _ := s.Meta.Stats(); locks != 0 {
		t.Errorf("deadline-failed job left %d build locks", locks)
	}

	// DefaultDeadline covers jobs that didn't set one.
	s.Config.DefaultDeadline = 1
	if _, err := s.Submit(specA("dl2", 0)); err == nil {
		t.Fatal("DefaultDeadline=1 should fail the job")
	} else if !errors.As(err, &je) || je.Reason != ReasonDeadline {
		t.Fatalf("want ReasonDeadline under DefaultDeadline, got %v", err)
	}
	// An explicit per-job deadline overrides the default.
	wide := specA("dl3", 0)
	wide.Deadline = s.Clock.Now() + 1_000_000
	if _, err := s.Submit(wide); err != nil {
		t.Fatalf("explicit deadline should override DefaultDeadline: %v", err)
	}
	s.Config.DefaultDeadline = 0
}

// sealThenCancelHook cancels the job's context the moment its Materialize
// vertex completes — after the view sealed and was early-published, before
// the rest of the plan runs. The cancelled job must then retract it.
type sealThenCancelHook struct {
	cancel context.CancelFunc
	mu     sync.Mutex
	done   bool
}

func (h *sealThenCancelHook) VertexDone(_, _ string, k plan.OpKind, _ int) error {
	if k == plan.OpMaterialize {
		h.mu.Lock()
		if !h.done {
			h.done = true
			h.cancel()
		}
		h.mu.Unlock()
	}
	return nil
}

func (h *sealThenCancelHook) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

// TestCancelMidJobRetractsEverything: a job cancelled after it
// early-published a view stops at the next checkpoint, releases its build
// lock, retracts the published view (metadata first, then the file), and
// leaves the reuse machinery fully functional for the next submitter.
func TestCancelMidJobRetractsEverything(t *testing.T) {
	s := newService(t)
	s.Sched = newSchedulerWithVC("vc1", 64)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	metaBefore, storeBefore := len(s.Meta.Views()), s.Store.Len()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := &sealThenCancelHook{cancel: cancel}
	s.Exec.Faults = hook
	res, err := s.SubmitCtx(ctx, specA("cx1", 1))
	s.Exec.Faults = nil
	if res != nil || err == nil {
		t.Fatalf("cancelled job must fail, got res=%v err=%v", res, err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Reason != ReasonCancelled {
		t.Fatalf("want *JobError{ReasonCancelled}, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause should unwrap to context.Canceled: %v", err)
	}
	if !hook.done {
		t.Fatal("hook never saw a Materialize seal — the test exercised nothing")
	}
	if got := s.Recovery().Cancelled; got != 1 {
		t.Errorf("Cancelled = %d, want 1", got)
	}

	// Nothing left behind: no locks, no reservations, no published views.
	if _, _, locks, _, _ := s.Meta.Stats(); locks != 0 {
		t.Errorf("cancelled job left %d build locks", locks)
	}
	if live := s.Sched.LiveReservations("vc1", s.Clock.Now()); live != 0 {
		t.Errorf("cancelled job left %d live reservations", live)
	}
	for _, v := range s.Meta.Views() {
		if v.ProducerJobID == "cx1" {
			t.Errorf("cancelled job still published view %s", v.Path)
		}
	}
	for _, v := range s.Store.Views() {
		if v.ProducerJobID == "cx1" {
			t.Errorf("cancelled job left file %s in the store", v.Path)
		}
	}
	if got := len(s.Meta.Views()); got != metaBefore {
		t.Errorf("metadata views %d, want %d (retraction incomplete)", got, metaBefore)
	}
	if got := s.Store.Len(); got != storeBefore {
		t.Errorf("store views %d, want %d (retraction incomplete)", got, storeBefore)
	}

	// The released lock lets the next submitter build the same view.
	r2, err := s.Submit(specA("cx2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Decision.ViewsBuilt) != 1 {
		t.Errorf("follow-up built %d views, want 1 (lock wedged?)", len(r2.Decision.ViewsBuilt))
	}
}

// TestMetadataBreakerLifecycle: consecutive metadata-lookup failures trip
// the metadata breaker; while it is open, jobs degrade to their baseline
// plan without touching the metadata service at all; after the cooldown a
// half-open probe against the healed service closes it and reuse resumes.
// No job fails at any point.
func TestMetadataBreakerLifecycle(t *testing.T) {
	// Cooldown far beyond what job completions advance the clock by, so
	// the open phase is observable; the heal phase advances the clock
	// explicitly to let the probe through.
	const cooldown = 1 << 20
	s := newBreakerService(t, 3, cooldown)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}

	s.Meta.Faults = blackout{}
	for i := 0; i < 3; i++ {
		r, err := s.Submit(specB(fmt.Sprintf("b%d", i), 1))
		if err != nil {
			t.Fatalf("blackout job %d must degrade, not fail: %v", i, err)
		}
		if !r.Decision.MetaUnavailable {
			t.Errorf("blackout job %d not flagged MetaUnavailable", i)
		}
	}
	if got := s.Recovery().BreakerOpens; got != 1 {
		t.Fatalf("BreakerOpens = %d after %d consecutive failures, want 1", got, 3)
	}

	// Open breaker: the next job degrades without a metadata round trip.
	_, _, _, lookupsBefore, _ := s.Meta.Stats()
	r, err := s.Submit(specB("b-open", 1))
	if err != nil {
		t.Fatalf("short-circuited job must not fail: %v", err)
	}
	if r.Decision.BreakerOpen != "metadata" || !r.Decision.MetaUnavailable {
		t.Errorf("open-breaker decision = %+v, want BreakerOpen=metadata", r.Decision)
	}
	if _, _, _, lookupsAfter, _ := s.Meta.Stats(); lookupsAfter != lookupsBefore {
		t.Errorf("open breaker still performed %d lookups", lookupsAfter-lookupsBefore)
	}
	if got := s.Recovery().BreakerShortCircuits; got < 1 {
		t.Errorf("BreakerShortCircuits = %d, want >= 1", got)
	}

	// Heal the dependency and push the logical clock past the cooldown:
	// the next job is the half-open probe, its successful lookup closes
	// the breaker, and the very same job resumes reuse.
	s.Meta.Faults = nil
	s.Clock.AdvanceTo(s.Clock.Now() + cooldown + 1)
	r2, err := s.Submit(specB("heal", 1))
	if err != nil {
		t.Fatalf("healed probe job failed: %v", err)
	}
	if len(r2.Decision.ViewsUsed) == 0 {
		t.Errorf("reuse did not resume on the healed probe: %+v", r2.Decision)
	}
	if got := s.Recovery().BreakerOpens; got != 1 {
		t.Errorf("breaker re-opened against a healthy service: opens = %d", got)
	}
}

// TestStoreBreakerDegradesToBaseline: when every view read fails, the
// store breaker (threshold below the vertex-retry cap) opens mid-job; the
// short-circuit is not a view failure, so the job replans to its baseline
// without quarantining the perfectly good view, and succeeds. When reads
// heal, the half-open probe restores reuse.
func TestStoreBreakerDegradesToBaseline(t *testing.T) {
	s := newBreakerService(t, 2, 1)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	ra, err := s.Submit(specA("a1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Decision.ViewsBuilt) != 1 {
		t.Fatalf("setup: builder built %d views, want 1", len(ra.Decision.ViewsBuilt))
	}
	viewsBefore := len(s.Meta.Views())

	// Every storage read fails from here on.
	s.Store.Faults = fault.NewInjector(fault.Config{Seed: 42, StorageRead: 1.0})
	rb, err := s.Submit(specB("b1", 1))
	s.Store.Faults = nil
	if err != nil {
		t.Fatalf("store blackout must degrade, not fail: %v", err)
	}
	if rb.Decision.BreakerOpen != "viewstore" {
		t.Errorf("decision BreakerOpen = %q, want viewstore", rb.Decision.BreakerOpen)
	}
	if len(rb.Decision.ViewsUsed) != 0 {
		t.Errorf("degraded job still reads %d views", len(rb.Decision.ViewsUsed))
	}
	rec := s.Recovery()
	if rec.QuarantinedViews != 0 {
		t.Errorf("healthy view quarantined %d times for a dependency outage", rec.QuarantinedViews)
	}
	if rec.DegradedReplans < 1 {
		t.Errorf("DegradedReplans = %d, want >= 1", rec.DegradedReplans)
	}
	if rec.BreakerOpens < 1 {
		t.Errorf("BreakerOpens = %d, want >= 1", rec.BreakerOpens)
	}
	if got := len(s.Meta.Views()); got != viewsBefore {
		t.Errorf("view count %d after outage, want %d (view should survive)", got, viewsBefore)
	}

	// Reads healed: the probe closes the breaker and the view is reused.
	rc, err := s.Submit(specB("b2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Decision.ViewsUsed) != 1 {
		t.Errorf("reuse did not resume after reads healed: %+v", rc.Decision)
	}
}

// TestDrainStopsAdmissionAndFlushes: Drain on an idle service returns at
// once, flushes the metadata journal, and subsequent submissions are shed
// with ErrDraining.
func TestDrainStopsAdmissionAndFlushes(t *testing.T) {
	s := newService(t)
	if _, err := s.Submit(specA("d0", 0)); err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	if err := s.Drain(context.Background(), &journal); err != nil {
		t.Fatalf("drain of an idle service failed: %v", err)
	}
	if journal.Len() == 0 {
		t.Error("drain flushed an empty metadata journal")
	}
	if !s.Draining() {
		t.Error("service does not report draining")
	}
	_, err := s.Submit(specA("d1", 0))
	var je *JobError
	if !errors.As(err, &je) || je.Reason != ReasonShed {
		t.Fatalf("post-drain submit: want *JobError{ReasonShed}, got %v", err)
	}
	if !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit should wrap ErrDraining: %v", err)
	}
	if got := s.Recovery().Shed; got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}
}

// blockHook parks the first vertex of a job until released, letting the
// test hold a submission in flight deterministically.
type blockHook struct {
	release chan struct{}
	once    sync.Once
}

func (h *blockHook) VertexDone(string, string, plan.OpKind, int) error {
	h.once.Do(func() { <-h.release })
	return nil
}

func (h *blockHook) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

// TestDrainWaitsForInFlight: Drain with an expired context reports the
// jobs still in flight; once they run down, a fresh Drain succeeds and
// the in-flight job itself completed normally.
func TestDrainWaitsForInFlight(t *testing.T) {
	s := newService(t)
	hook := &blockHook{release: make(chan struct{})}
	s.Exec.Faults = hook

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(specA("slow", 0))
		done <- err
	}()
	for i := 0; s.InFlight() == 0; i++ {
		if i > 2000 {
			t.Fatal("submission never reached in-flight state")
		}
		time.Sleep(time.Millisecond)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Drain(expired, nil)
	if err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("drain under load with expired ctx: want in-flight error, got %v", err)
	}

	close(hook.release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight job should complete despite drain: %v", err)
	}
	if err := s.Drain(context.Background(), nil); err != nil {
		t.Fatalf("drain after run-down failed: %v", err)
	}
}

// TestBatchConcurrencyResolution pins the documented contract: ≤ 1 means
// one worker per CPU (the doc said so; the code used to say < 1).
func TestBatchConcurrencyResolution(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	for _, c := range []int{1, 0, -5} {
		if got := batchConcurrency(c); got != procs {
			t.Errorf("batchConcurrency(%d) = %d, want GOMAXPROCS %d", c, got, procs)
		}
	}
	for _, c := range []int{2, 7} {
		if got := batchConcurrency(c); got != c {
			t.Errorf("batchConcurrency(%d) = %d, want %d", c, got, c)
		}
	}
}

// TestSubmitBatchAggregatesFailures: a batch with several failing jobs
// reports every failure (errors.Join), keeps per-index results for the
// jobs that succeeded, and the typed causes stay reachable via errors.As.
func TestSubmitBatchAggregatesFailures(t *testing.T) {
	s := newService(t)
	s.Sched = newSchedulerWithVC("vc1", 4)
	if _, err := s.Sched.Admit("vc1", 4, s.Clock.Now(), 100000); err != nil {
		t.Fatal(err)
	}
	now := s.Clock.Now()
	ok := specA("okjob", 0)
	bad1 := specA("badjob1", 0)
	bad1.Deadline = now + 5
	bad2 := specB("badjob2", 0)
	bad2.Deadline = now + 7

	results, err := s.SubmitBatch([]JobSpec{ok, bad1, bad2}, 2)
	if err == nil {
		t.Fatal("batch with shed jobs returned no error")
	}
	if results[0] == nil || results[1] != nil || results[2] != nil {
		t.Fatalf("per-index results wrong: %v", results)
	}
	for _, id := range []string{"badjob1", "badjob2"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("aggregated error does not mention %s: %v", id, err)
		}
	}
	var je *JobError
	if !errors.As(err, &je) || je.Reason != ReasonShed {
		t.Fatalf("typed cause lost in aggregation: %v", err)
	}
	if got := s.Recovery().Shed; got != 2 {
		t.Errorf("Shed = %d, want 2", got)
	}
}

// TestMaxInFlightBlocksAndReleases exercises the admission slot pool
// directly: with one slot, a second enter blocks until exit, and a
// cancelled waiter is turned away with its context's error.
func TestMaxInFlightBlocksAndReleases(t *testing.T) {
	s := newService(t)
	s.Config.MaxInFlight = 1
	if err := s.admit.enter(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() { second <- s.admit.enter(context.Background(), 1) }()
	select {
	case err := <-second:
		t.Fatalf("second enter should block on the full slot pool, returned %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	s.admit.exit()
	if err := <-second; err != nil {
		t.Fatalf("released slot should admit the waiter: %v", err)
	}

	// A waiter whose context dies while queued gets the context error.
	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan error, 1)
	go func() { waiting <- s.admit.enter(ctx, 1) }()
	cancel()
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: want context.Canceled, got %v", err)
	}
	s.admit.exit()

	// Functional smoke: a bounded service still completes a wide batch.
	s2 := newService(t)
	s2.Config.MaxInFlight = 2
	var batch []JobSpec
	for i := 0; i < 6; i++ {
		batch = append(batch, specA(fmt.Sprintf("mif%d", i), 0))
	}
	if _, err := s2.SubmitBatch(batch, 6); err != nil {
		t.Fatalf("bounded batch failed: %v", err)
	}
	if got := s2.InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after batch, want 0", got)
	}
}
