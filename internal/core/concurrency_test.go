package core

import (
	"fmt"
	"sort"
	"testing"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/data"
)

// warmService builds a service with seeded history, analyzed annotations,
// instance 1 delivered, and the annotated view already materialized by a
// serial builder job — the steady state where a batch of consumers should
// all reuse and none build.
func warmService(t testing.TB) *Service {
	t.Helper()
	s := newService(t)
	s.Config.ValidateResults = false
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	r, err := s.Submit(specA("warm-builder", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsBuilt) != 1 {
		t.Fatalf("warm builder built %d views, want 1", len(r.Decision.ViewsBuilt))
	}
	return s
}

// consumerSpecs is a deterministic mixed batch over both templates.
func consumerSpecs(n int) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		if i%2 == 0 {
			specs[i] = specA(fmt.Sprintf("consume-a%d", i), 1)
		} else {
			specs[i] = specB(fmt.Sprintf("consume-b%d", i), 1)
		}
	}
	return specs
}

func usedSigs(r *JobResult) []string {
	sigs := make([]string, 0, len(r.Decision.ViewsUsed))
	for _, v := range r.Decision.ViewsUsed {
		sigs = append(sigs, v.PreciseSig)
	}
	sort.Strings(sigs)
	return sigs
}

// TestSubmitBatchMatchesSerial is the concurrency determinism test: the
// same workload submitted serially on one warmed service and through
// SubmitBatch(concurrency 8) on an identically-warmed service must yield
// identical per-job outputs, identical simulated TotalCPU, and identical
// view-reuse decisions.
func TestSubmitBatchMatchesSerial(t *testing.T) {
	sSerial, sBatch := warmService(t), warmService(t)
	specs := consumerSpecs(16)

	serial := make([]*JobResult, len(specs))
	for i, spec := range specs {
		r, err := sSerial.Submit(spec)
		if err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		serial[i] = r
	}
	batch, err := sBatch.SubmitBatch(specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(serial) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(serial))
	}

	for i := range specs {
		sr, br := serial[i], batch[i]
		for name, rows := range sr.Result.Outputs {
			if !data.RowsEqual(rows, br.Result.Outputs[name]) {
				t.Errorf("job %d output %q differs between serial and batch", i, name)
			}
		}
		if len(br.Result.Outputs) != len(sr.Result.Outputs) {
			t.Errorf("job %d output count %d vs %d", i, len(br.Result.Outputs), len(sr.Result.Outputs))
		}
		if br.Result.TotalCPU != sr.Result.TotalCPU {
			t.Errorf("job %d TotalCPU %v (batch) vs %v (serial)", i, br.Result.TotalCPU, sr.Result.TotalCPU)
		}
		if got, want := usedSigs(br), usedSigs(sr); len(got) != len(want) {
			t.Errorf("job %d ViewsUsed %v vs %v", i, got, want)
		} else {
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("job %d ViewsUsed[%d] %q vs %q", i, j, got[j], want[j])
				}
			}
		}
		if len(sr.Decision.ViewsUsed) == 0 {
			t.Errorf("job %d reused nothing — warm service should always hit the view", i)
		}
		if len(sr.Decision.ViewsBuilt)+len(br.Decision.ViewsBuilt) != 0 {
			t.Errorf("job %d built views on a warmed service", i)
		}
	}
}

// TestSubmitBatchConcurrentSoak drives a cold batch — builders and
// consumers racing for the build lock — through SubmitBatch with a VC
// scheduler attached, and checks the §6.5 invariants: every job succeeds,
// exactly one build happens per annotated signature, and every job of a
// template produces the same rows. Run it under -race to check the whole
// submission pipeline (repo, clock, scheduler, metadata, view store).
func TestSubmitBatchConcurrentSoak(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	s.Sched = newSchedulerWithVC("vc1", 8)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)

	specs := consumerSpecs(24) // no warm builder: the batch must elect one
	results, err := s.SubmitBatch(specs, 8)
	if err != nil {
		t.Fatal(err)
	}

	buildsBySig := map[string]int{}
	refByOutput := map[string][]data.Row{}
	for i, r := range results {
		if r == nil {
			t.Fatalf("job %d: nil result without error", i)
		}
		for _, b := range r.Decision.ViewsBuilt {
			buildsBySig[b.PreciseSig]++
		}
		for name, rows := range r.Result.Outputs {
			if ref, ok := refByOutput[name]; !ok {
				refByOutput[name] = rows
			} else if !data.RowsEqual(ref, rows) {
				t.Errorf("job %d output %q differs from its template peers", i, name)
			}
		}
		if r.FinishTime < r.StartTime {
			t.Errorf("job %d finished at %d before starting at %d", i, r.FinishTime, r.StartTime)
		}
	}
	if len(buildsBySig) == 0 {
		t.Error("no job built the annotated view")
	}
	for sig, n := range buildsBySig {
		if n != 1 {
			t.Errorf("signature %s built %d times, want 1 (build-build sync)", sig, n)
		}
	}
	if s.Store.Len() != len(buildsBySig) {
		t.Errorf("store holds %d views, want %d", s.Store.Len(), len(buildsBySig))
	}

	// The repository recorded every job; a fresh analysis still works on
	// concurrently recorded history.
	an := s.RunAnalyzer(analyzer.Config{MinFrequency: 2, TopK: 1})
	if len(an.Selected) == 0 {
		t.Error("analyzer found nothing in concurrently recorded history")
	}
}
