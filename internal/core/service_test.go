package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cloudviews/internal/analyzer"
	"cloudviews/internal/catalog"
	"cloudviews/internal/cluster"
	"cloudviews/internal/data"
	"cloudviews/internal/expr"
	"cloudviews/internal/plan"
	"cloudviews/internal/signature"
	"cloudviews/internal/workload"
)

func eventSchema() data.Schema {
	return data.Schema{
		{Name: "uid", Kind: data.KindInt},
		{Name: "action", Kind: data.KindString},
		{Name: "day", Kind: data.KindDate},
		{Name: "dur", Kind: data.KindFloat},
	}
}

// guidFor names the data version delivered for an instance.
func guidFor(instance int64) string { return fmt.Sprintf("events-v%d", instance) }

// deliver installs the data batch for a recurring instance: every row of
// the batch carries the instance's date.
func deliver(t testing.TB, cat *catalog.Catalog, instance int64) {
	t.Helper()
	day := 17000 + instance
	fill := func(tab *data.Table) {
		g := data.NewGenerator(100 + instance)
		rr := 0
		for i := 0; i < 500; i++ {
			tab.AppendHash(data.Row{
				data.Int(g.Rand().Int63n(50)),
				data.String_(fmt.Sprintf("act_%d", g.Rand().Int63n(8))),
				data.Date(day),
				data.Float(float64(g.Rand().Int63n(1000))),
			}, []int{0}, &rr)
		}
	}
	if instance == 0 {
		tab := data.NewTable("events", guidFor(0), eventSchema(), 4)
		fill(tab)
		cat.Register(tab)
		return
	}
	if err := cat.Deliver("events", guidFor(instance), fill); err != nil {
		t.Fatal(err)
	}
}

// sharedSub is the overlapping computation of the recurring template.
func sharedSub(instance int64) *plan.Node {
	return plan.Scan("events", guidFor(instance), eventSchema()).
		Filter(expr.Eq(expr.C(2, "day"), expr.P("day", data.Date(17000+instance)))).
		ShuffleHash([]int{0}, 4).
		HashAgg([]int{0}, []plan.AggSpec{{Fn: plan.AggSum, Col: 3}, {Fn: plan.AggCount, Col: 1}})
}

// specA and specB are two recurring templates sharing sharedSub.
func specA(job string, instance int64) JobSpec {
	return JobSpec{
		Meta: workload.JobMeta{
			JobID: job, Cluster: "c1", BusinessUnit: "bu1", VC: "vc1",
			User: "u1", TemplateID: "tplA", Instance: instance, Period: 1,
		},
		Root: sharedSub(instance).Sort([]int{1}, []bool{true}).Top(10).Output("topUsers"),
	}
}

func specB(job string, instance int64) JobSpec {
	return JobSpec{
		Meta: workload.JobMeta{
			JobID: job, Cluster: "c1", BusinessUnit: "bu1", VC: "vc1",
			User: "u2", TemplateID: "tplB", Instance: instance, Period: 1,
		},
		Root: sharedSub(instance).
			Filter(expr.B(expr.OpGt, expr.C(2, "count_action"), expr.Lit(data.Int(2)))).
			Output("activeUsers"),
	}
}

func newSchedulerWithVC(name string, capacity int) *cluster.Scheduler {
	s := cluster.NewScheduler()
	s.AddVC(name, capacity)
	return s
}

// newService builds a validating service with one delivered instance.
func newService(t testing.TB) *Service {
	t.Helper()
	cat := catalog.New()
	deliver(t, cat, 0)
	return NewService(cat, Config{Enabled: true, ValidateResults: true})
}

// seedHistory runs instance 0 (no annotations yet) and the analyzer,
// establishing the feedback loop for later instances.
func seedHistory(t testing.TB, s *Service) *analyzer.Analysis {
	t.Helper()
	for i, spec := range []JobSpec{specA("a0", 0), specB("b0", 0)} {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("seed job %d: %v", i, err)
		}
	}
	// TopK=1 keeps exactly one annotated view (the highest-utility shared
	// subgraph), which the assertions below rely on.
	an := s.RunAnalyzer(analyzer.Config{MinFrequency: 2, TopK: 1})
	if len(an.Selected) == 0 {
		t.Fatal("analyzer selected nothing from seed history")
	}
	return an
}

func TestEndToEndBuildAndReuse(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)

	// Instance 1: new data, same templates.
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)
	ra, err := s.Submit(specA("a1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Decision.ViewsBuilt) != 1 {
		t.Fatalf("first job of the instance should build, built=%d used=%d",
			len(ra.Decision.ViewsBuilt), len(ra.Decision.ViewsUsed))
	}
	rb, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Decision.ViewsUsed) != 1 {
		t.Fatalf("second job should reuse, built=%d used=%d",
			len(rb.Decision.ViewsBuilt), len(rb.Decision.ViewsUsed))
	}
	// ValidateResults already compared outputs against baselines.
	// Reuse must reduce CPU vs the validated baseline.
	if rb.Result.TotalCPU >= rb.BaselineResult.TotalCPU {
		t.Errorf("reuse CPU %.1f >= baseline %.1f", rb.Result.TotalCPU, rb.BaselineResult.TotalCPU)
	}
	if rb.Result.Latency >= rb.BaselineResult.Latency {
		t.Errorf("reuse latency %.1f >= baseline %.1f", rb.Result.Latency, rb.BaselineResult.Latency)
	}
	// Exactly one view exists.
	if s.Store.Len() != 1 {
		t.Errorf("store has %d views, want 1", s.Store.Len())
	}
}

func TestDisabledServiceNeverTouchesPlans(t *testing.T) {
	cat := catalog.New()
	deliver(t, cat, 0)
	s := NewService(cat, Config{Enabled: false})
	if _, err := s.Submit(specA("a0", 0)); err != nil {
		t.Fatal(err)
	}
	an := s.RunAnalyzer(analyzer.Config{MinFrequency: 1})
	_ = an
	r, err := s.Submit(specA("a1", 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsBuilt)+len(r.Decision.ViewsUsed) != 0 {
		t.Error("disabled service made reuse decisions")
	}
	if s.Store.Len() != 0 {
		t.Error("disabled service materialized views")
	}
}

func TestPerVCOptIn(t *testing.T) {
	cat := catalog.New()
	deliver(t, cat, 0)
	s := NewService(cat, Config{Enabled: true, VCEnabled: map[string]bool{"vc9": true}})
	seedSpec := specA("a0", 0) // vc1: not enabled
	if _, err := s.Submit(seedSpec); err != nil {
		t.Fatal(err)
	}
	s.RunAnalyzer(analyzer.Config{MinFrequency: 1})
	r, err := s.Submit(specB("b0", 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsBuilt) != 0 {
		t.Error("opt-out VC still got views")
	}
}

func TestNewInstanceInvalidatesOldViews(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	// Instance 2 delivers fresh data: the instance-1 view must not match.
	deliver(t, s.Catalog, 2)
	s.BeginInstance(2)
	r, err := s.Submit(specB("b2", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsUsed) != 0 {
		t.Error("stale view reused across instances")
	}
	if len(r.Decision.ViewsBuilt) != 1 {
		t.Error("new instance should build a fresh view")
	}
}

func TestExpiryPurgesViews(t *testing.T) {
	s := newService(t)
	an := seedHistory(t, s)
	delta := an.Selected[0].ExpiryDelta
	if delta != 2 { // period 1 + 1 slack
		t.Fatalf("expiry delta = %d, want 2", delta)
	}
	deliver(t, s.Catalog, 1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	if s.Store.Len() != 1 {
		t.Fatal("view not built")
	}
	// The view expires at instance 1+2=3: still alive at 2, gone at 3.
	s.BeginInstance(2)
	if s.Store.Len() != 1 {
		t.Error("view purged too early")
	}
	s.BeginInstance(3)
	if s.Store.Len() != 0 {
		t.Error("expired view not purged from storage")
	}
	if len(s.Meta.Views()) != 0 {
		t.Error("expired view not purged from metadata")
	}
}

// crashKindHook is an exec.FaultHook that permanently crashes every vertex
// of one operator kind (no Transient marker, so retries don't save it).
type crashKindHook struct{ kind plan.OpKind }

func (c crashKindHook) VertexDone(_, _ string, k plan.OpKind, _ int) error {
	if k == c.kind {
		return errors.New("injected failure")
	}
	return nil
}

func (c crashKindHook) VertexDelay(string, string, plan.OpKind) float64 { return 0 }

func TestBuilderFailureReleasesLockAndKeepsSealedViews(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)

	// Make the builder fail after the Materialize seals (at the Sort
	// above it). The view survives as a checkpoint.
	s.Exec.Faults = crashKindHook{plan.OpSort}
	if _, err := s.Submit(specA("a1-fail", 1)); err == nil {
		t.Fatal("expected injected failure")
	}
	s.Exec.Faults = nil
	if s.Store.Len() != 1 {
		t.Fatal("early-materialized view should survive builder failure")
	}
	// The next job reuses the checkpointed view.
	r, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsUsed) != 1 {
		t.Error("surviving view not reused")
	}
}

func TestBuilderFailureBeforeSealAllowsRetry(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)

	// Fail before the Materialize runs: at the Exchange under it.
	s.Exec.Faults = crashKindHook{plan.OpExchange}
	if _, err := s.Submit(specA("a1-fail", 1)); err == nil {
		t.Fatal("expected injected failure")
	}
	s.Exec.Faults = nil
	if s.Store.Len() != 0 {
		t.Fatal("no view should exist after pre-seal failure")
	}
	// The abort released the lock, so the next job can build immediately.
	r, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsBuilt) != 1 {
		t.Error("lock not released after failed builder")
	}
}

func TestConcurrentSubmissionsSingleBuilder(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	s.BeginInstance(1)

	const n = 8
	var wg sync.WaitGroup
	results := make([]*JobResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specA(fmt.Sprintf("conc-%d", i), 1)
			results[i], errs[i] = s.Submit(spec)
		}(i)
	}
	wg.Wait()
	builders := 0
	var reference []data.Row
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		builders += len(results[i].Decision.ViewsBuilt)
		out := results[i].Result.Outputs["topUsers"]
		if reference == nil {
			reference = out
		} else if !data.RowsEqual(reference, out) {
			t.Errorf("job %d output differs under concurrency", i)
		}
	}
	if builders != 1 {
		t.Errorf("%d builders, want exactly 1 (build-build sync)", builders)
	}
	if s.Store.Len() != 1 {
		t.Errorf("store has %d views, want 1", s.Store.Len())
	}
}

func TestOfflinePhase(t *testing.T) {
	s := newService(t)
	an := seedHistory(t, s)
	// Re-load the annotations flagged offline.
	for i := range an.Annotations {
		an.Annotations[i].Offline = true
	}
	s.Meta.LoadAnalysis(an.Annotations)

	deliver(t, s.Catalog, 1)
	built, err := s.RunOfflinePhase(specA("offline-a1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if built == 0 {
		t.Fatal("offline phase built nothing")
	}
	// The online jobs of the instance reuse the pre-built views.
	r, err := s.Submit(specA("a1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsUsed) == 0 {
		t.Error("online job did not reuse offline-built view")
	}
	if len(r.Decision.ViewsBuilt) != 0 {
		t.Error("online job rebuilt an offline view")
	}
}

func TestSchedulerQueueing(t *testing.T) {
	s := newService(t)
	s.Config.ValidateResults = false
	sched := newSchedulerWithVC("vc1", 1)
	s.Sched = sched
	r1, err := s.Submit(specA("q1", 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Submit(specA("q2", 0))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StartTime < r1.FinishTime {
		t.Errorf("job 2 started at %d before job 1 finished at %d on a 1-token VC",
			r2.StartTime, r1.FinishTime)
	}
}

func TestViewScanStatsImproveEstimates(t *testing.T) {
	s := newService(t)
	seedHistory(t, s)
	deliver(t, s.Catalog, 1)
	if _, err := s.Submit(specA("a1", 1)); err != nil {
		t.Fatal(err)
	}
	rb, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Decision.ViewsUsed) != 1 {
		t.Fatal("no reuse")
	}
	// The view scan carries actual statistics.
	found := false
	plan.Walk(rb.Plan, func(n *plan.Node) {
		if n.Kind == plan.OpViewScan {
			found = true
			if n.ViewRows <= 0 {
				t.Error("view scan missing injected actual rows")
			}
		}
	})
	if !found {
		t.Fatal("rewritten plan has no view scan")
	}
}

func TestSignatureStabilityAcrossServiceRestart(t *testing.T) {
	// The analyzer's annotations survive a "restart" (new service over the
	// same catalog): normalized signatures are stable identifiers.
	s1 := newService(t)
	an := seedHistory(t, s1)

	cat2 := s1.Catalog
	s2 := NewService(cat2, Config{Enabled: true})
	s2.Meta.LoadAnalysis(an.Annotations)
	r, err := s2.Submit(specA("restarted", 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsBuilt) != 1 {
		t.Error("annotations did not match after restart")
	}
	sig := signature.Of(sharedSub(0))
	if r.Decision.ViewsBuilt[0].PreciseSig != sig.Precise {
		t.Error("rebuilt view has unexpected signature")
	}
}

func TestVCLevelOfflineMode(t *testing.T) {
	// §6.2: offline mode is configured at the VC level in the metadata
	// service; annotations served to that VC come back marked offline, so
	// the offline phase builds them and online jobs only consume.
	s := newService(t)
	seedHistory(t, s)
	s.Meta.SetOfflineVC("vc1", true)

	deliver(t, s.Catalog, 1)
	// Online submission without the offline phase: nothing builds inline.
	r, err := s.Submit(specA("a1-online", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Decision.ViewsBuilt) != 0 {
		t.Fatal("offline-mode VC built a view inline")
	}
	// The offline phase pre-materializes.
	built, err := s.RunOfflinePhase(specA("a1-offline", 1))
	if err != nil {
		t.Fatal(err)
	}
	if built != 1 {
		t.Fatalf("offline phase built %d", built)
	}
	// Subsequent online jobs reuse.
	r2, err := s.Submit(specB("b1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Decision.ViewsUsed) != 1 || len(r2.Decision.ViewsBuilt) != 0 {
		t.Errorf("offline-mode consumer: used=%d built=%d",
			len(r2.Decision.ViewsUsed), len(r2.Decision.ViewsBuilt))
	}
}
