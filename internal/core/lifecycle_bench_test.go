package core

import (
	"context"
	"errors"
	"testing"
)

// BenchmarkSubmitCancelled measures the lifecycle rejection fast path: the
// cost of turning away a pre-cancelled submission on a fully warmed
// service. This is the overhead budget of the admission gate plus the
// first cancellation checkpoint — every later checkpoint on the happy
// path is the same single ctx.Err() poll, so if this number grows the
// per-vertex and per-chunk polls have grown with it.
func BenchmarkSubmitCancelled(b *testing.B) {
	s := newService(b)
	s.Config.MaxInFlight = 8
	seedHistory(b, s)
	deliver(b, s.Catalog, 1)
	s.BeginInstance(1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := specA("bench-cancelled", 1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SubmitCtx(ctx, spec); !errors.Is(err, context.Canceled) {
			b.Fatalf("want context.Canceled, got %v", err)
		}
	}
	b.StopTimer()

	// The fast path must account for every rejection and leak nothing.
	if got := s.Recovery().Cancelled; got < int64(b.N) {
		b.Fatalf("Cancelled counter %d < %d rejections", got, b.N)
	}
	if n := s.InFlight(); n != 0 {
		b.Fatalf("%d submissions still in flight after rejection loop", n)
	}
}
