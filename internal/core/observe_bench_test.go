package core

import (
	"context"
	"testing"
)

// benchSubmitService warms a reuse-hitting service for the submit
// benchmarks: history seeded, analyzer run, and the instance's shared
// view already built, so every measured iteration runs the steady-state
// pipeline (lookup → reuse → execute → record).
func benchSubmitService(b *testing.B, obs string) (*Service, JobSpec) {
	b.Helper()
	s := newService(b)
	s.Config.ValidateResults = false
	seedHistory(b, s)
	deliver(b, s.Catalog, 1)
	s.BeginInstance(1)
	if _, err := s.Run(context.Background(), specA("warm", 1)); err != nil {
		b.Fatal(err)
	}
	switch obs {
	case "off":
		s.SetObserver(nil) // every hook seam nil — the no-op baseline
	case "metrics":
		s.SetObserver(NewObserver(-1)) // counters on, tracing off
	case "trace":
		// default observer: metrics + tracing
	}
	return s, specB("bench", 1)
}

// BenchmarkSubmit measures one warmed reuse-path submission under three
// observability levels. scripts/check.sh guards obs=off vs obs=metrics
// (the always-on hooks) within OBS_OVERHEAD_PCT; scripts/bench.sh
// records all three in BENCH_obs.json — obs=off doubling as the
// pre-observability seed baseline, and obs=trace showing the opt-out
// cost of full span capture (TraceCapacity: -1 turns it off).
func BenchmarkSubmit(b *testing.B) {
	for _, mode := range []string{"off", "metrics", "trace"} {
		b.Run("obs="+mode, func(b *testing.B) {
			s, spec := benchSubmitService(b, mode)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
